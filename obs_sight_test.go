package sight

// Tests for the redesigned Observer-aware public API: the
// worker-invariant event stream, the inertness of tracing, grouped
// option validation, and the AsFallible annotator adaptation rules.

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"sightrisk/internal/obs"
)

func ringObserved(t *testing.T, net *Network, owner UserID, ann Annotator, workers int) []Event {
	t.Helper()
	ring := obs.NewRing(1 << 14)
	opts := DefaultOptions()
	opts.Workers = workers
	opts.Observability.Observer = ring
	opts.Observability.Trace.Digests = true
	if _, err := EstimateRisk(context.Background(), net, owner, ann, opts); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	if ring.Dropped() != 0 {
		t.Fatalf("workers=%d: ring dropped %d events", workers, ring.Dropped())
	}
	return ring.Events()
}

// TestEventStreamWorkerInvariant is the stream's core guarantee: on a
// complete run the delivered event sequence — boundaries, queries,
// digests, attribution — is identical at every Workers value. Only
// Seq/Time/Dur (zeroed by Canonical) may differ.
func TestEventStreamWorkerInvariant(t *testing.T) {
	net, owner := demoNetwork(t, 5, 60)
	ann := AnnotatorFunc(func(s UserID) Label {
		if net.Attribute(s, AttrGender) == "male" {
			return Risky
		}
		return NotRisky
	})
	ref := ringObserved(t, net, owner, ann, 1)
	if len(ref) == 0 {
		t.Fatal("serial run emitted no events")
	}
	if ref[0].Kind != obs.KindRunStart || ref[len(ref)-1].Kind != obs.KindRunEnd {
		t.Fatalf("stream not bracketed by run.start/run.end: first %v last %v", ref[0].Kind, ref[len(ref)-1].Kind)
	}
	for _, workers := range []int{2, 8} {
		got := ringObserved(t, net, owner, ann, workers)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d events, serial %d", workers, len(got), len(ref))
		}
		for i := range got {
			if got[i].Canonical() != ref[i].Canonical() {
				t.Fatalf("workers=%d: event %d differs:\n  serial:   %+v\n  parallel: %+v",
					workers, i, ref[i].Canonical(), got[i].Canonical())
			}
		}
	}
}

// TestTracerDoesNotChangeReport: attaching an observer (with digests)
// must be pure observation — the Report is byte-identical to an
// unobserved run's.
func TestTracerDoesNotChangeReport(t *testing.T) {
	net, owner := demoNetwork(t, 5, 60)
	ann := AnnotatorFunc(func(s UserID) Label {
		if net.Attribute(s, AttrLocale) != "en_US" {
			return VeryRisky
		}
		return NotRisky
	})
	plain, err := EstimateRisk(context.Background(), net, owner, ann, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Observability.Observer = NewTracer(io.Discard)
	opts.Observability.Trace.Digests = true
	traced, err := EstimateRisk(context.Background(), net, owner, ann, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffReports(t, plain, traced); d != "" {
		t.Fatalf("tracing changed the report: %s", d)
	}
}

// TestValidateReportsAllViolations: a many-ways-broken Options comes
// back with every violation in one error, not just the first.
func TestValidateReportsAllViolations(t *testing.T) {
	opts := DefaultOptions()
	opts.Pooling.Alpha = 0
	opts.Pooling.Beta = 1.5
	opts.Learning.PerRound = 0
	opts.Learning.Confidence = 150
	opts.Learning.Sampler = "psychic"
	opts.Workers = -1
	err := opts.Validate()
	if err == nil {
		t.Fatal("expected validation failure")
	}
	for _, want := range []string{
		"Pooling.Alpha", "Pooling.Beta", "Learning.PerRound",
		"Learning.Confidence", `sampler "psychic"`, "Workers",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error misses %q:\n%v", want, err)
		}
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("DefaultOptions invalid: %v", err)
	}
}

// TestAsFallible pins the adaptation rules of the unified annotator
// parameter.
func TestAsFallible(t *testing.T) {
	if _, err := AsFallible(nil); err == nil {
		t.Error("nil annotator accepted")
	}
	if _, err := AsFallible(42); err == nil || !strings.Contains(err.Error(), "int") {
		t.Errorf("non-annotator should fail naming its type, got %v", err)
	}
	fallible := FallibleAnnotatorFunc(func(ctx context.Context, s UserID) (Label, error) {
		return Risky, nil
	})
	got, err := AsFallible(fallible)
	if err != nil {
		t.Fatal(err)
	}
	if l, err := got.LabelStranger(context.Background(), 1); err != nil || l != Risky {
		t.Fatalf("fallible pass-through broken: %v %v", l, err)
	}
	plain := AnnotatorFunc(func(s UserID) Label { return VeryRisky })
	wrapped, err := AsFallible(plain)
	if err != nil {
		t.Fatal(err)
	}
	if l, err := wrapped.LabelStranger(context.Background(), 1); err != nil || l != VeryRisky {
		t.Fatalf("infallible wrap broken: %v %v", l, err)
	}
}

// TestDeprecatedWrappers: the thin pre-redesign entry points still work
// and agree with the unified EstimateRisk.
func TestDeprecatedWrappers(t *testing.T) {
	net, owner := demoNetwork(t, 4, 40)
	ann := AnnotatorFunc(func(s UserID) Label {
		if net.Attribute(s, AttrGender) == "male" {
			return Risky
		}
		return NotRisky
	})
	want, err := EstimateRisk(context.Background(), net, owner, ann, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	infal, err := EstimateRiskInfallible(net, owner, ann, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d := diffReports(t, want, infal); d != "" {
		t.Fatalf("EstimateRiskInfallible differs: %s", d)
	}
	viaCtx, err := EstimateRiskContext(context.Background(), net, owner, Infallible(ann), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d := diffReports(t, want, viaCtx); d != "" {
		t.Fatalf("EstimateRiskContext differs: %s", d)
	}
	if _, err := EstimateRiskContext(context.Background(), net, owner, nil, DefaultOptions()); err == nil {
		t.Error("EstimateRiskContext accepted nil annotator")
	}
	if _, err := EstimateRiskInfallible(net, owner, nil, DefaultOptions()); err == nil {
		t.Error("EstimateRiskInfallible accepted nil annotator")
	}
}

// TestEstimateRiskRejectsInvalidOptions: validation errors surface
// before any work happens, and carry the errors.Join structure.
func TestEstimateRiskRejectsInvalidOptions(t *testing.T) {
	net, owner := demoNetwork(t, 3, 20)
	ann := AnnotatorFunc(func(UserID) Label { return NotRisky })
	opts := DefaultOptions()
	opts.Pooling.Alpha = -1
	opts.Learning.StableRounds = 0
	_, err := EstimateRisk(context.Background(), net, owner, ann, opts)
	if err == nil {
		t.Fatal("invalid options accepted")
	}
	var joined interface{ Unwrap() []error }
	if !errors.As(err, &joined) || len(joined.Unwrap()) != 2 {
		t.Fatalf("expected a 2-error join, got %v", err)
	}
}
