// Package infogain implements entropy, information gain, information
// gain ratio and the normalized attribute-importance measure of the
// paper's Definition 6, used to mine which profile attributes and
// benefit items drive an owner's risk judgments (Tables I and II).
package infogain

import (
	"math"
	"sort"
)

// Entropy returns the Shannon entropy (base 2) of a discrete
// distribution given as counts. Zero counts are ignored; an empty or
// all-zero distribution has entropy 0.
func Entropy(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// Sample is one (attribute value, class) observation — e.g. one
// stranger's gender together with the owner's risk label for them.
type Sample struct {
	Value string
	Class int
}

// counts groups samples by value and tallies class frequencies.
type grouped struct {
	total      int
	classTotal map[int]int
	byValue    map[string]map[int]int
	valueSize  map[string]int
}

func group(samples []Sample) grouped {
	g := grouped{
		classTotal: make(map[int]int),
		byValue:    make(map[string]map[int]int),
		valueSize:  make(map[string]int),
	}
	for _, s := range samples {
		g.total++
		g.classTotal[s.Class]++
		m := g.byValue[s.Value]
		if m == nil {
			m = make(map[int]int)
			g.byValue[s.Value] = m
		}
		m[s.Class]++
		g.valueSize[s.Value]++
	}
	return g
}

func mapEntropy(counts map[int]int) float64 {
	vals := make([]int, 0, len(counts))
	for _, c := range counts {
		vals = append(vals, c)
	}
	return Entropy(vals)
}

// Gain returns the information gain of the attribute over the class:
// H(class) - Σ_v p(v)·H(class|v).
func Gain(samples []Sample) float64 {
	g := group(samples)
	if g.total == 0 {
		return 0
	}
	base := mapEntropy(g.classTotal)
	cond := 0.0
	for v, classCounts := range g.byValue {
		p := float64(g.valueSize[v]) / float64(g.total)
		cond += p * mapEntropy(classCounts)
	}
	gain := base - cond
	if gain < 0 { // guard tiny negative float error
		return 0
	}
	return gain
}

// SplitInfo returns the intrinsic entropy of the attribute's value
// distribution, the denominator of the gain ratio.
func SplitInfo(samples []Sample) float64 {
	g := group(samples)
	vals := make([]int, 0, len(g.valueSize))
	for _, c := range g.valueSize {
		vals = append(vals, c)
	}
	return Entropy(vals)
}

// CorrectedGain returns the information gain minus its expected value
// under independence of attribute and class — Quinlan's bias
// correction (analyzed by Mingers): a random attribute with V values
// over N samples and C classes has expected gain ≈
// (V-1)(C-1) / (2·N·ln 2). Without this correction a high-cardinality
// attribute (e.g. last name, where most values are unique) scores a
// spuriously large gain because each singleton value is trivially
// pure. Negative corrected gains clamp to 0.
func CorrectedGain(samples []Sample) float64 {
	g := group(samples)
	if g.total == 0 {
		return 0
	}
	v := float64(len(g.valueSize))
	c := float64(len(g.classTotal))
	expected := (v - 1) * (c - 1) / (2 * float64(g.total) * math.Ln2)
	corrected := Gain(samples) - expected
	if corrected < 0 {
		return 0
	}
	return corrected
}

// GainRatio returns the bias-corrected information gain divided by
// split information (Quinlan's gain ratio). Attributes with a single
// value (split info 0) have ratio 0: they cannot explain any label
// variation.
func GainRatio(samples []Sample) float64 {
	si := SplitInfo(samples)
	if si == 0 {
		return 0
	}
	return CorrectedGain(samples) / si
}

// Importance normalizes a map of per-attribute gain ratios so they sum
// to 1 (Definition 6). When every ratio is 0, importance is uniform
// over the attributes — no attribute explains anything, so none
// dominates.
func Importance(ratios map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(ratios))
	sum := 0.0
	for _, r := range ratios {
		sum += r
	}
	if sum == 0 {
		if len(ratios) == 0 {
			return out
		}
		u := 1 / float64(len(ratios))
		for k := range ratios {
			out[k] = u
		}
		return out
	}
	for k, r := range ratios {
		out[k] = r / sum
	}
	return out
}

// Ranked is an attribute with its importance, used to order Table I /
// Table II rows.
type Ranked struct {
	Attribute  string
	Importance float64
}

// Rank sorts the importance map by descending importance (ties by
// attribute name for determinism).
func Rank(importance map[string]float64) []Ranked {
	out := make([]Ranked, 0, len(importance))
	for k, v := range importance {
		out = append(out, Ranked{Attribute: k, Importance: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Importance != out[j].Importance {
			return out[i].Importance > out[j].Importance
		}
		return out[i].Attribute < out[j].Attribute
	})
	return out
}
