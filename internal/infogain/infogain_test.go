package infogain

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEntropy(t *testing.T) {
	cases := []struct {
		counts []int
		want   float64
	}{
		{nil, 0},
		{[]int{0, 0}, 0},
		{[]int{5}, 0},
		{[]int{1, 1}, 1},
		{[]int{1, 1, 1, 1}, 2},
		{[]int{3, 1}, -(0.75*math.Log2(0.75) + 0.25*math.Log2(0.25))},
	}
	for _, tt := range cases {
		if got := Entropy(tt.counts); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Entropy(%v) = %g, want %g", tt.counts, got, tt.want)
		}
	}
}

func samplesFrom(values []string, classes []int) []Sample {
	out := make([]Sample, len(values))
	for i := range values {
		out[i] = Sample{Value: values[i], Class: classes[i]}
	}
	return out
}

func TestGainPerfectPredictor(t *testing.T) {
	// Value fully determines class: gain = H(class) = 1 bit.
	s := samplesFrom(
		[]string{"a", "a", "b", "b"},
		[]int{1, 1, 2, 2},
	)
	if got := Gain(s); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Gain = %g, want 1", got)
	}
}

func TestGainIndependentAttribute(t *testing.T) {
	// Value carries no information about class: gain 0.
	s := samplesFrom(
		[]string{"a", "b", "a", "b"},
		[]int{1, 1, 2, 2},
	)
	if got := Gain(s); math.Abs(got) > 1e-12 {
		t.Fatalf("Gain = %g, want 0", got)
	}
}

func TestGainEmpty(t *testing.T) {
	if Gain(nil) != 0 {
		t.Fatal("Gain(nil) != 0")
	}
}

func TestSplitInfo(t *testing.T) {
	s := samplesFrom([]string{"a", "a", "b", "b"}, []int{1, 2, 1, 2})
	if got := SplitInfo(s); math.Abs(got-1) > 1e-12 {
		t.Fatalf("SplitInfo = %g, want 1", got)
	}
}

func TestCorrectedGainKillsUniqueValues(t *testing.T) {
	// A "last name"-style attribute: every value unique. Raw gain is
	// the full class entropy (spurious); the bias correction must
	// remove essentially all of it.
	n := 60
	values := make([]string, n)
	classes := make([]int, n)
	rng := rand.New(rand.NewSource(1))
	for i := range values {
		values[i] = string(rune('A'+i%26)) + string(rune('a'+i/26))
		classes[i] = 1 + rng.Intn(3)
	}
	s := samplesFrom(values, classes)
	raw := Gain(s)
	if raw < 1 {
		t.Fatalf("setup: raw gain = %g, expected spuriously high", raw)
	}
	if got := CorrectedGain(s); got > 0.15*raw {
		t.Fatalf("CorrectedGain = %g, want near 0 (raw %g)", got, raw)
	}
}

func TestCorrectedGainKeepsRealSignal(t *testing.T) {
	// A two-valued perfect predictor over many samples keeps nearly
	// all of its gain after correction.
	n := 100
	values := make([]string, n)
	classes := make([]int, n)
	for i := range values {
		if i%2 == 0 {
			values[i], classes[i] = "a", 1
		} else {
			values[i], classes[i] = "b", 3
		}
	}
	s := samplesFrom(values, classes)
	if got := CorrectedGain(s); got < 0.95 {
		t.Fatalf("CorrectedGain = %g, want ~1", got)
	}
}

func TestGainRatio(t *testing.T) {
	// Perfect two-valued predictor: ratio ≈ gain / splitinfo ≈ 1.
	s := samplesFrom(
		[]string{"a", "a", "a", "a", "b", "b", "b", "b"},
		[]int{1, 1, 1, 1, 2, 2, 2, 2},
	)
	if got := GainRatio(s); math.Abs(got-1) > 0.2 {
		t.Fatalf("GainRatio = %g, want ≈ 1", got)
	}
	// Single-valued attribute: split info 0 → ratio 0.
	s = samplesFrom([]string{"x", "x"}, []int{1, 2})
	if got := GainRatio(s); got != 0 {
		t.Fatalf("GainRatio single-value = %g, want 0", got)
	}
}

func TestImportanceNormalizes(t *testing.T) {
	imp := Importance(map[string]float64{"a": 3, "b": 1})
	if math.Abs(imp["a"]-0.75) > 1e-12 || math.Abs(imp["b"]-0.25) > 1e-12 {
		t.Fatalf("Importance = %v", imp)
	}
}

func TestImportanceAllZero(t *testing.T) {
	imp := Importance(map[string]float64{"a": 0, "b": 0, "c": 0})
	for k, v := range imp {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("Importance[%s] = %g, want uniform 1/3", k, v)
		}
	}
	if len(Importance(nil)) != 0 {
		t.Fatal("Importance(nil) not empty")
	}
}

func TestRank(t *testing.T) {
	ranked := Rank(map[string]float64{"mid": 0.3, "top": 0.5, "low": 0.2})
	want := []string{"top", "mid", "low"}
	for i, r := range ranked {
		if r.Attribute != want[i] {
			t.Fatalf("Rank = %v, want order %v", ranked, want)
		}
	}
	// Ties break by name for determinism.
	ranked = Rank(map[string]float64{"b": 0.5, "a": 0.5})
	if ranked[0].Attribute != "a" {
		t.Fatalf("tie order = %v, want a first", ranked)
	}
}

// TestPropGainBounds: 0 ≤ corrected gain ≤ gain ≤ H(class) for random
// samples, and importance always sums to 1 (or is empty).
func TestPropGainBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		values := []string{"a", "b", "c", "d"}
		samples := make([]Sample, n)
		classCounts := map[int]int{}
		for i := range samples {
			samples[i] = Sample{
				Value: values[rng.Intn(len(values))],
				Class: 1 + rng.Intn(3),
			}
			classCounts[samples[i].Class]++
		}
		var counts []int
		for _, c := range classCounts {
			counts = append(counts, c)
		}
		hClass := Entropy(counts)
		g := Gain(samples)
		cg := CorrectedGain(samples)
		if g < -1e-12 || g > hClass+1e-9 {
			return false
		}
		if cg < 0 || cg > g+1e-12 {
			return false
		}
		imp := Importance(map[string]float64{"x": g, "y": cg, "z": 0.1})
		sum := 0.0
		for _, v := range imp {
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
