package core

import (
	"fmt"
	"math/rand"
	"sync"

	"sightrisk/internal/active"
	"sightrisk/internal/classify"
	"sightrisk/internal/cluster"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/parallel"
	"sightrisk/internal/profile"
)

// runPoolsParallel is the concurrent counterpart of RunOwner's serial
// pool loop. It produces byte-identical PoolRuns in pool order, for
// any deterministic annotator, by splitting the work into two stages:
//
//  1. Weight matrices. Each pool's PS() matrix is self-contained
//     (pool-local value frequencies, own backing array), so all builds
//     run on a bounded worker Group with index-ordered results.
//
//  2. Sessions. Every pool gets its own goroutine — the query Gate's
//     rotation must be able to wait on any pool, so sessions cannot
//     share a bounded pool of goroutines — while the CPU-heavy
//     classifier solves share `workers` Limiter permits. All annotator
//     queries are routed through the Gate, which serializes them in a
//     rotation over pool indices that depends only on each session's
//     own deterministic behavior. The owner is therefore asked one
//     question at a time, in the same order for every Workers > 1
//     value and every run. (Workers == 1 keeps the legacy order: all
//     of pool 0's questions, then pool 1's, and so on.)
//
// Failures cancel cooperatively: the first error flips the Group's
// flag, in-flight sessions abort at their next classifier call, and
// Wait reports the lowest-pool-index root cause so errors are as
// deterministic as results.
func (e *Engine) runPoolsParallel(store *profile.Store, owner graph.UserID, pools []cluster.Pool, ann active.Annotator, learn active.Config, exp float64, workers int) ([]PoolRun, error) {
	weights := make([][][]float64, len(pools))
	build := parallel.NewGroup(workers)
	for i := range pools {
		i := i
		build.Go(i, func() error {
			if build.Canceled() {
				return parallel.ErrCanceled
			}
			w, err := cluster.PoolWeights(store, pools[i], e.cfg.PSAttributes, exp)
			if err != nil {
				return fmt.Errorf("core: %w", err)
			}
			weights[i] = w
			return nil
		})
	}
	if err := build.Wait(); err != nil {
		return nil, err
	}

	gate := parallel.NewGate(len(pools))
	limiter := parallel.NewLimiter(workers)
	sessions := parallel.NewGroup(len(pools)) // one goroutine per pool; CPU bounded by limiter
	runs := make([]PoolRun, len(pools))

	// Progress reports completions as they happen; done counts and
	// label totals stay monotone, but the completion order (unlike the
	// results) is scheduler-dependent.
	var progressMu sync.Mutex
	poolsDone, labelsSoFar := 0, 0

	for i := range pools {
		i := i
		sessions.Go(i, func() error {
			defer gate.Done(i)
			cfg := learn
			cfg.Rand = rand.New(rand.NewSource(poolSeed(e.cfg.Seed, owner, i)))
			cfg.Classifier = &limitedClassifier{
				inner:    sessionClassifier(learn.Classifier),
				limiter:  limiter,
				canceled: sessions.Canceled,
			}
			sess, err := active.NewSession(pools[i].Members, weights[i], gatedAnnotator{gate: gate, slot: i, inner: ann}, cfg)
			if err != nil {
				return fmt.Errorf("core: pool %s: %w", pools[i].ID(), err)
			}
			res, err := sess.Run()
			if err != nil {
				return fmt.Errorf("core: pool %s: %w", pools[i].ID(), err)
			}
			runs[i] = PoolRun{Pool: pools[i], Result: res}
			if e.cfg.Progress != nil {
				progressMu.Lock()
				poolsDone++
				labelsSoFar += res.QueriedCount()
				e.cfg.Progress(poolsDone, len(pools), labelsSoFar)
				progressMu.Unlock()
			}
			return nil
		})
	}
	if err := sessions.Wait(); err != nil {
		return nil, err
	}
	return runs, nil
}

// sessionClassifier mirrors active.NewSession's default: a nil
// configured classifier means each session gets its own Harmonic
// instance (so the warm-start scratch state is never shared). A
// non-nil classifier is shared across concurrent sessions and must be
// stateless across Predict calls — true of every classifier in this
// module (Harmonic, Majority, KNN keep no per-call state).
func sessionClassifier(configured classify.Classifier) classify.Classifier {
	if configured != nil {
		return configured
	}
	return classify.NewHarmonic()
}

// gatedAnnotator routes one pool's owner queries through the rotation
// gate: LabelStranger holds the pool's turn for exactly one question.
// This is what makes the active.Annotator contract single-threaded —
// implementations are never called concurrently, with or without
// Workers — and what keeps the question order deterministic.
type gatedAnnotator struct {
	gate  *parallel.Gate
	slot  int
	inner active.Annotator
}

func (a gatedAnnotator) LabelStranger(s graph.UserID) label.Label {
	a.gate.Acquire(a.slot)
	defer a.gate.Release(a.slot)
	return a.inner.LabelStranger(s)
}

// warmStarter mirrors the optional warm-start fast path the active
// package probes for (active.warmStartClassifier).
type warmStarter interface {
	PredictFrom(weights [][]float64, labeled map[int]label.Label, init [][3]float64) ([]classify.Prediction, error)
}

// limitedClassifier wraps a session's classifier so each solve (the
// pipeline's CPU hot spot) holds one Limiter permit, and so in-flight
// sessions abort promptly after another pool fails. It forwards the
// warm-start path exactly as the session would have used it on the
// bare classifier, keeping parallel predictions bit-identical to
// serial ones.
type limitedClassifier struct {
	inner    classify.Classifier
	limiter  *parallel.Limiter
	canceled func() bool
}

func (c *limitedClassifier) Name() string { return c.inner.Name() }

func (c *limitedClassifier) Predict(weights [][]float64, labeled map[int]label.Label) ([]classify.Prediction, error) {
	return c.PredictFrom(weights, labeled, nil)
}

func (c *limitedClassifier) PredictFrom(weights [][]float64, labeled map[int]label.Label, init [][3]float64) ([]classify.Prediction, error) {
	if c.canceled() {
		return nil, parallel.ErrCanceled
	}
	var preds []classify.Prediction
	var err error
	c.limiter.Do(func() {
		if ws, ok := c.inner.(warmStarter); ok && init != nil {
			preds, err = ws.PredictFrom(weights, labeled, init)
			return
		}
		preds, err = c.inner.Predict(weights, labeled)
	})
	return preds, err
}

var _ classify.Classifier = (*limitedClassifier)(nil)
var _ warmStarter = (*limitedClassifier)(nil)
