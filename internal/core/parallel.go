package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sightrisk/internal/active"
	"sightrisk/internal/classify"
	"sightrisk/internal/cluster"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/obs"
	"sightrisk/internal/parallel"
	"sightrisk/internal/profile"
)

// runPoolsParallel is the concurrent counterpart of RunOwner's serial
// pool loop. It produces byte-identical PoolRuns in pool order, for
// any deterministic annotator, by splitting the work into two stages:
//
//  1. Weight matrices. Each pool's PS() matrix is self-contained
//     (pool-local value frequencies, own backing array), so all builds
//     run on a bounded worker Group with index-ordered results.
//
//  2. Sessions. Every pool gets its own goroutine — the query Gate's
//     rotation must be able to wait on any pool, so sessions cannot
//     share a bounded pool of goroutines — while the CPU-heavy
//     classifier solves share `workers` Limiter permits. All annotator
//     queries are routed through the Gate, which serializes them in a
//     rotation over pool indices that depends only on each session's
//     own deterministic behavior. The owner is therefore asked one
//     question at a time, in the same order for every Workers > 1
//     value and every run. (Workers == 1 keeps the legacy order: all
//     of pool 0's questions, then pool 1's, and so on.)
//
// Failures cancel cooperatively: the first error flips the Group's
// flag, in-flight sessions abort at their next classifier call, and
// Wait reports the lowest-pool-index root cause so errors are as
// deterministic as results.
//
// Interruptions (abandonment, ctx cancellation) are not failures:
// the interrupted session stores its partial result, the shared
// abandonment latch fails every later query fast, and the run's
// Partial/Cause fields record the lowest-pool-index interrupt so the
// degraded outcome is as deterministic as a successful one. When ctx
// is canceled the gate is aborted, so sessions blocked waiting their
// turn unblock promptly instead of waiting out other pools' compute.
func (e *Engine) runPoolsParallel(ctx context.Context, run *OwnerRun, store *profile.Store, owner graph.UserID, pools []cluster.Pool, chain func(string) active.FallibleAnnotator, k *checkpointer, learn active.Config, exp float64, workers int, reuse []*PoolRun) error {
	sink := e.cfg.Observer
	weights := make([][][]float64, len(pools))
	wkeys := make([]cluster.Key, len(pools))
	var durs []time.Duration
	if sink != nil {
		durs = make([]time.Duration, len(pools))
	}
	build := parallel.NewGroup(workers)
	for i := range pools {
		i := i
		if reuse != nil && reuse[i] != nil {
			// Reused pools skip their weight build entirely — the spliced
			// result already carries the content key that proved the
			// matrix unchanged.
			continue
		}
		build.Go(i, func() error {
			if build.Canceled() {
				return parallel.ErrCanceled
			}
			var start time.Time
			if durs != nil {
				start = time.Now()
			}
			w, err := e.poolWeights(store, pools[i], exp)
			if err != nil {
				return fmt.Errorf("core: %w", err)
			}
			if durs != nil {
				durs[i] = time.Since(start)
			}
			weights[i] = w
			wkeys[i] = cluster.PoolKey(store, pools[i], e.cfg.PSAttributes, exp)
			return nil
		})
	}
	if err := build.Wait(); err != nil {
		return err
	}

	// Each pool's events go into a private buffer, flushed to the real
	// sink in pool order after every session finished — so the observed
	// stream is identical to the serial path's, for any Workers value.
	var bufs []*obs.Buffer
	if sink != nil {
		bufs = make([]*obs.Buffer, len(pools))
		for i := range bufs {
			bufs[i] = &obs.Buffer{}
		}
	}

	gate := parallel.NewGate(len(pools))
	limiter := parallel.NewLimiter(workers)
	sessions := parallel.NewGroup(len(pools)) // one goroutine per pool; CPU bounded by limiter
	runs := make([]PoolRun, len(pools))
	causes := make([]error, len(pools))

	// Bridge ctx cancellation to the gate so waiters wake immediately.
	watcherDone := make(chan struct{})
	defer close(watcherDone)
	go func() {
		select {
		case <-ctx.Done():
			gate.Abort()
		case <-watcherDone:
		}
	}()

	// Progress reports completions as they happen; done counts and
	// label totals stay monotone, but the completion order (unlike the
	// results) is scheduler-dependent.
	var progressMu sync.Mutex
	poolsDone, labelsSoFar := 0, 0
	progress := func(queried int) {
		if e.cfg.Progress == nil {
			return
		}
		progressMu.Lock()
		poolsDone++
		labelsSoFar += queried
		e.cfg.Progress(poolsDone, len(pools), labelsSoFar)
		progressMu.Unlock()
	}

	for i := range pools {
		i := i
		sessions.Go(i, func() error {
			defer gate.Done(i)
			poolID := pools[i].ID()
			if reuse != nil && reuse[i] != nil {
				// Splice the prior result; the slot drops out of the query
				// rotation immediately (via the deferred Done), exactly like
				// a session that asks no questions.
				if k != nil {
					k.markDone(poolID)
				}
				runs[i] = reusedPoolRun(pools[i], reuse[i])
				if bufs != nil {
					bufs[i].Observe(obs.Event{Kind: obs.KindPoolStart, Tenant: e.cfg.Tenant, Owner: int64(owner), Pool: poolID, N: len(pools[i].Members)})
					bufs[i].Observe(obs.Event{Kind: obs.KindPoolEnd, Tenant: e.cfg.Tenant, Owner: int64(owner), Pool: poolID, N: len(runs[i].Result.Rounds), Note: "reused"})
				}
				if m := e.cfg.Metrics; m != nil {
					m.PoolsReused.Add(1)
				}
				progress(0)
				return nil
			}
			cfg := learn
			cfg.Rand = rand.New(rand.NewSource(poolSeed(e.cfg.Seed, owner, i)))
			cfg.Classifier = &limitedClassifier{
				inner:    e.parallelClassifier(learn.Classifier),
				limiter:  limiter,
				canceled: sessions.Canceled,
			}
			if k != nil {
				cfg.AfterRound = func(r active.Round) error { return k.afterRound(poolID, r) }
			}
			if bufs != nil {
				bufs[i].Observe(obs.Event{Kind: obs.KindPoolStart, Tenant: e.cfg.Tenant, Owner: int64(owner), Pool: poolID, N: len(pools[i].Members)})
				bufs[i].Observe(obs.Event{Kind: obs.KindPoolWeights, Tenant: e.cfg.Tenant, Owner: int64(owner), Pool: poolID, N: len(pools[i].Members), Dur: durs[i]})
				cfg.Observe = e.poolObserve(bufs[i], owner, poolID)
				cfg.Digests = e.cfg.Trace.Digests
			}
			ann := gatedAnnotator{gate: gate, slot: i, inner: chain(poolID)}
			sess, err := active.NewSession(pools[i].Members, weights[i], ann, cfg)
			if err != nil {
				return fmt.Errorf("core: pool %s: %w", poolID, err)
			}
			res, err := sess.RunContext(ctx)
			switch {
			case err == nil:
				if k != nil {
					k.markDone(poolID)
				}
				runs[i] = PoolRun{Pool: pools[i], Result: res, Status: PoolComplete, WeightKey: wkeys[i]}
			case isInterrupt(err) && res != nil:
				causes[i] = err
				runs[i] = PoolRun{Pool: pools[i], Result: res, Status: PoolPartial, WeightKey: wkeys[i]}
			default:
				return fmt.Errorf("core: pool %s: %w", poolID, err)
			}
			if bufs != nil {
				bufs[i].Observe(obs.Event{Kind: obs.KindPoolEnd, Tenant: e.cfg.Tenant, Owner: int64(owner), Pool: poolID, N: len(res.Rounds), Note: string(res.Reason)})
			}
			if m := e.cfg.Metrics; m != nil {
				m.Rounds.Add(uint64(len(res.Rounds)))
				m.RoundsPerPool.Observe(len(res.Rounds))
				m.Queries.Add(uint64(res.QueriedCount()))
			}
			progress(res.QueriedCount())
			return nil
		})
	}
	if err := sessions.Wait(); err != nil {
		return err
	}
	if bufs != nil {
		// Flush per-pool buffers in pool order: the merged stream now
		// reads exactly like the serial path's.
		for _, b := range bufs {
			b.FlushTo(sink)
		}
	}
	run.Pools = runs
	for _, cause := range causes {
		if cause != nil {
			run.Partial = true
			run.Cause = cause
			break
		}
	}
	// OnPool fires at merge time, in pool order — the parallel path
	// cannot stream mid-run without leaking scheduler-dependent order.
	for i := range runs {
		e.emitPool(run, runs[i], i, len(runs))
	}
	return nil
}

// parallelClassifier mirrors active.NewSession's default: a nil
// configured classifier means each session gets its own Harmonic
// instance (so the warm-start scratch state is never shared), wired to
// the engine's solver metrics like the serial path. A non-nil
// classifier is shared across concurrent sessions and must be
// stateless across Predict calls — true of every classifier in this
// module (Harmonic, Majority, KNN keep no per-call state).
func (e *Engine) parallelClassifier(configured classify.Classifier) classify.Classifier {
	if configured != nil {
		return configured
	}
	return e.newClassifier()
}

// gatedAnnotator routes one pool's owner queries through the rotation
// gate: LabelStranger holds the pool's turn for exactly one question.
// This is what makes the annotator contract single-threaded —
// implementations are never called concurrently, with or without
// Workers — and what keeps the question order deterministic. The gate
// sits above the replay cache on purpose: a query answered from a
// resumed checkpoint still takes its turn in the rotation, so a
// resumed run replays the exact query order of the original.
type gatedAnnotator struct {
	gate  *parallel.Gate
	slot  int
	inner active.FallibleAnnotator
}

func (a gatedAnnotator) LabelStranger(ctx context.Context, s graph.UserID) (label.Label, error) {
	if !a.gate.Acquire(a.slot) {
		// Aborted: the run's context is gone.
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return 0, context.Canceled
	}
	defer a.gate.Release(a.slot)
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return a.inner.LabelStranger(ctx, s)
}

// warmStarter mirrors the optional warm-start fast path the active
// package probes for (active.warmStartClassifier).
type warmStarter interface {
	PredictFrom(weights [][]float64, labeled map[int]label.Label, init [][3]float64) ([]classify.Prediction, error)
}

// limitedClassifier wraps a session's classifier so each solve (the
// pipeline's CPU hot spot) holds one Limiter permit, and so in-flight
// sessions abort promptly after another pool fails. It forwards the
// warm-start path exactly as the session would have used it on the
// bare classifier, keeping parallel predictions bit-identical to
// serial ones.
type limitedClassifier struct {
	inner    classify.Classifier
	limiter  *parallel.Limiter
	canceled func() bool
}

func (c *limitedClassifier) Name() string { return c.inner.Name() }

func (c *limitedClassifier) Predict(weights [][]float64, labeled map[int]label.Label) ([]classify.Prediction, error) {
	return c.PredictFrom(weights, labeled, nil)
}

func (c *limitedClassifier) PredictFrom(weights [][]float64, labeled map[int]label.Label, init [][3]float64) ([]classify.Prediction, error) {
	if c.canceled() {
		return nil, parallel.ErrCanceled
	}
	var preds []classify.Prediction
	var err error
	c.limiter.Do(func() {
		if ws, ok := c.inner.(warmStarter); ok && init != nil {
			preds, err = ws.PredictFrom(weights, labeled, init)
			return
		}
		preds, err = c.inner.Predict(weights, labeled)
	})
	return preds, err
}

var _ classify.Classifier = (*limitedClassifier)(nil)
var _ warmStarter = (*limitedClassifier)(nil)
