package core

import (
	"fmt"
	"math"
)

// naNEqual treats NaN as equal to NaN: pipeline outputs carry NaN
// sentinels (round-1 RMSE, trivial-pool means) that must survive a
// determinism comparison.
func naNEqual(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return a == b
}

// DiffRuns returns a description of the first difference between two
// owner runs, or "" when they are identical — bit-identical floats,
// NaN aware. It compares everything a Report is assembled from, so a
// "" result means the two runs produce byte-identical reports. The
// determinism test suite and the fleet scheduler's serial-equivalence
// checks (tests and `riskbench -tenants`) all rely on it.
func DiffRuns(a, b *OwnerRun) string {
	if a == nil || b == nil {
		if a == b {
			return ""
		}
		return fmt.Sprintf("nil run: %v vs %v", a == nil, b == nil)
	}
	if a.Owner != b.Owner {
		return fmt.Sprintf("owner %d vs %d", a.Owner, b.Owner)
	}
	if len(a.Strangers) != len(b.Strangers) {
		return fmt.Sprintf("stranger count %d vs %d", len(a.Strangers), len(b.Strangers))
	}
	for i := range a.Strangers {
		if a.Strangers[i] != b.Strangers[i] {
			return fmt.Sprintf("stranger[%d] %d vs %d", i, a.Strangers[i], b.Strangers[i])
		}
	}
	if len(a.Pools) != len(b.Pools) {
		return fmt.Sprintf("pool count %d vs %d", len(a.Pools), len(b.Pools))
	}
	for pi := range a.Pools {
		pa, pb := a.Pools[pi], b.Pools[pi]
		if pa.Pool.ID() != pb.Pool.ID() {
			return fmt.Sprintf("pool[%d] id %s vs %s", pi, pa.Pool.ID(), pb.Pool.ID())
		}
		if len(pa.Pool.Members) != len(pb.Pool.Members) {
			return fmt.Sprintf("pool %s member count %d vs %d", pa.Pool.ID(), len(pa.Pool.Members), len(pb.Pool.Members))
		}
		for i := range pa.Pool.Members {
			if pa.Pool.Members[i] != pb.Pool.Members[i] {
				return fmt.Sprintf("pool %s member[%d] %d vs %d", pa.Pool.ID(), i, pa.Pool.Members[i], pb.Pool.Members[i])
			}
		}
		ra, rb := pa.Result, pb.Result
		if ra.Reason != rb.Reason {
			return fmt.Sprintf("pool %s reason %s vs %s", pa.Pool.ID(), ra.Reason, rb.Reason)
		}
		if len(ra.Labels) != len(rb.Labels) {
			return fmt.Sprintf("pool %s label count %d vs %d", pa.Pool.ID(), len(ra.Labels), len(rb.Labels))
		}
		for u, l := range ra.Labels {
			if rb.Labels[u] != l {
				return fmt.Sprintf("pool %s label[%d] %v vs %v", pa.Pool.ID(), u, l, rb.Labels[u])
			}
		}
		if len(ra.OwnerLabeled) != len(rb.OwnerLabeled) {
			return fmt.Sprintf("pool %s queried count %d vs %d", pa.Pool.ID(), len(ra.OwnerLabeled), len(rb.OwnerLabeled))
		}
		for u := range ra.OwnerLabeled {
			if !rb.OwnerLabeled[u] {
				return fmt.Sprintf("pool %s: %d owner-labeled in one run only", pa.Pool.ID(), u)
			}
		}
		for u, p := range ra.Predicted {
			q, ok := rb.Predicted[u]
			if !ok {
				return fmt.Sprintf("pool %s: prediction for %d missing", pa.Pool.ID(), u)
			}
			if p.Label != q.Label || !naNEqual(p.Expected, q.Expected) ||
				!naNEqual(p.Scores[0], q.Scores[0]) || !naNEqual(p.Scores[1], q.Scores[1]) || !naNEqual(p.Scores[2], q.Scores[2]) {
				return fmt.Sprintf("pool %s prediction[%d] %+v vs %+v", pa.Pool.ID(), u, p, q)
			}
		}
		if len(ra.Rounds) != len(rb.Rounds) {
			return fmt.Sprintf("pool %s rounds %d vs %d", pa.Pool.ID(), len(ra.Rounds), len(rb.Rounds))
		}
		for i := range ra.Rounds {
			ta, tb := ra.Rounds[i], rb.Rounds[i]
			if ta.Number != tb.Number || !naNEqual(ta.RMSE, tb.RMSE) ||
				ta.ExactMatches != tb.ExactMatches || ta.ExactTotal != tb.ExactTotal ||
				ta.Unstabilized != tb.Unstabilized {
				return fmt.Sprintf("pool %s round %d: %+v vs %+v", pa.Pool.ID(), i+1, ta, tb)
			}
			if len(ta.Queried) != len(tb.Queried) {
				return fmt.Sprintf("pool %s round %d queried %v vs %v", pa.Pool.ID(), i+1, ta.Queried, tb.Queried)
			}
			for qi := range ta.Queried {
				if ta.Queried[qi] != tb.Queried[qi] {
					return fmt.Sprintf("pool %s round %d queried %v vs %v", pa.Pool.ID(), i+1, ta.Queried, tb.Queried)
				}
			}
		}
	}
	return ""
}
