package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"sightrisk/internal/active"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
)

// CheckpointVersion is the format version written into every
// checkpoint. Loading a checkpoint with a different version fails
// loudly instead of resuming from state the engine no longer
// understands.
const CheckpointVersion = 1

// QA records one answered owner question.
type QA struct {
	Stranger graph.UserID `json:"stranger"`
	Label    label.Label  `json:"label"`
}

// PoolCheckpoint is the durable state of one pool's session: the
// owner's answers in the order they were given, how many rounds have
// completed, and whether the session finished.
type PoolCheckpoint struct {
	Answers []QA `json:"answers,omitempty"`
	Rounds  int  `json:"rounds"`
	Done    bool `json:"done"`
}

// Checkpoint is the JSON-serializable state of an interrupted owner
// run. It deliberately stores only what cannot be recomputed: the
// owner's answers. Everything else — pool membership, query order,
// classifier output — is a deterministic function of the study inputs
// and the seed, so a resumed run replays the answers through the
// exact same pipeline and lands on the byte-identical report an
// uninterrupted run would produce (at any Workers setting).
type Checkpoint struct {
	Version int                        `json:"version"`
	Owner   graph.UserID               `json:"owner"`
	Seed    int64                      `json:"seed"`
	Pools   map[string]*PoolCheckpoint `json:"pools"`
}

// NewCheckpoint returns an empty checkpoint for the owner/seed pair.
func NewCheckpoint(owner graph.UserID, seed int64) *Checkpoint {
	return &Checkpoint{Version: CheckpointVersion, Owner: owner, Seed: seed, Pools: map[string]*PoolCheckpoint{}}
}

// answers flattens a pool's recorded answers into a lookup map.
func (pc *PoolCheckpoint) answers() map[graph.UserID]label.Label {
	if pc == nil {
		return nil
	}
	out := make(map[graph.UserID]label.Label, len(pc.Answers))
	for _, qa := range pc.Answers {
		out[qa.Stranger] = qa.Label
	}
	return out
}

// clone deep-copies the checkpoint so a sink can retain the snapshot
// while the run keeps mutating its own state.
func (c *Checkpoint) clone() *Checkpoint {
	out := &Checkpoint{Version: c.Version, Owner: c.Owner, Seed: c.Seed, Pools: make(map[string]*PoolCheckpoint, len(c.Pools))}
	for id, pc := range c.Pools {
		cp := &PoolCheckpoint{Rounds: pc.Rounds, Done: pc.Done}
		cp.Answers = append(cp.Answers, pc.Answers...)
		out.Pools[id] = cp
	}
	return out
}

// MarshalIndented renders the checkpoint as stable, human-inspectable
// JSON (pool IDs sorted by Go's map marshaling rules).
func (c *Checkpoint) MarshalIndented() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// SaveCheckpointFile atomically and durably writes the checkpoint as
// JSON: a temp file in the target directory, fsynced, renamed over the
// destination, with the directory fsynced after the rename. A crash —
// or a node death — at any point leaves either the previous checkpoint
// or the new one, never a truncated or unsynced file; that guarantee
// is what lets a surviving replica resume from the shared store.
func SaveCheckpointFile(path string, c *Checkpoint) error {
	data, err := c.MarshalIndented()
	if err != nil {
		return fmt.Errorf("core: marshal checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".checkpoint-*.json")
	if err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("core: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	// Make the rename itself durable. Directory fsync is best-effort:
	// some filesystems reject it, and the data fsync above already
	// rules out the truncated-checkpoint failure mode.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// LoadCheckpointFile reads a checkpoint written by SaveCheckpointFile.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: read checkpoint: %w", err)
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("core: parse checkpoint %s: %w", path, err)
	}
	if c.Version != CheckpointVersion {
		return nil, fmt.Errorf("core: checkpoint %s has version %d, this engine writes version %d", path, c.Version, CheckpointVersion)
	}
	if c.Pools == nil {
		c.Pools = map[string]*PoolCheckpoint{}
	}
	return &c, nil
}

// validateResume checks that a checkpoint belongs to this run.
func (c *Checkpoint) validateResume(owner graph.UserID, seed int64) error {
	if c.Version != CheckpointVersion {
		return fmt.Errorf("core: resume checkpoint has version %d, want %d", c.Version, CheckpointVersion)
	}
	if c.Owner != owner {
		return fmt.Errorf("core: resume checkpoint is for owner %d, run is for owner %d", c.Owner, owner)
	}
	if c.Seed != seed {
		return fmt.Errorf("core: resume checkpoint was taken at seed %d, run uses seed %d — query order would diverge", c.Seed, seed)
	}
	return nil
}

// checkpointer accumulates per-pool answers during a run and pushes
// deep-copied snapshots into the configured sink. It is shared by all
// concurrently running pool sessions, so every method locks.
type checkpointer struct {
	mu   sync.Mutex
	cp   *Checkpoint
	sink func(*Checkpoint) error
}

func newCheckpointer(owner graph.UserID, seed int64, sink func(*Checkpoint) error) *checkpointer {
	return &checkpointer{cp: NewCheckpoint(owner, seed), sink: sink}
}

// record stores one answered question for the pool. Called from the
// recording annotator, under the engine's query serialization, but
// locked anyway so the invariant doesn't hinge on gate behavior.
func (k *checkpointer) record(poolID string, s graph.UserID, l label.Label) {
	if k == nil {
		return
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	pc := k.cp.Pools[poolID]
	if pc == nil {
		pc = &PoolCheckpoint{}
		k.cp.Pools[poolID] = pc
	}
	pc.Answers = append(pc.Answers, QA{Stranger: s, Label: l})
}

// afterRound bumps the pool's completed-round count and flushes a
// snapshot to the sink — the "checkpoint after each round" contract.
func (k *checkpointer) afterRound(poolID string, round active.Round) error {
	if k == nil {
		return nil
	}
	k.mu.Lock()
	pc := k.cp.Pools[poolID]
	if pc == nil {
		pc = &PoolCheckpoint{}
		k.cp.Pools[poolID] = pc
	}
	if round.Number > pc.Rounds {
		pc.Rounds = round.Number
	}
	k.mu.Unlock()
	return k.flush()
}

// markDone records that the pool's session finished cleanly.
func (k *checkpointer) markDone(poolID string) {
	if k == nil {
		return
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	pc := k.cp.Pools[poolID]
	if pc == nil {
		pc = &PoolCheckpoint{}
		k.cp.Pools[poolID] = pc
	}
	pc.Done = true
}

// flush pushes a deep-copied snapshot to the sink (nil sink: no-op).
func (k *checkpointer) flush() error {
	if k == nil || k.sink == nil {
		return nil
	}
	k.mu.Lock()
	snap := k.cp.clone()
	k.mu.Unlock()
	if err := k.sink(snap); err != nil {
		return fmt.Errorf("core: checkpoint sink: %w", err)
	}
	return nil
}

// sortedPoolIDs returns the checkpoint's pool IDs in stable order —
// handy for deterministic reporting/tests.
func (c *Checkpoint) sortedPoolIDs() []string {
	ids := make([]string, 0, len(c.Pools))
	for id := range c.Pools {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
