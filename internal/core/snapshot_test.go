package core

import (
	"context"
	"testing"

	"sightrisk/internal/active"
	"sightrisk/internal/cluster"
)

// TestRunOwnerSnapshotAndCacheEquivalence: supplying a pre-frozen
// Config.Snapshot and a shared Config.Weights cache changes nothing
// about the result — runs are deeply identical to the default
// configuration — and the cache actually hits when the same owner runs
// again (the fleet scheduler's tenant-replica pattern).
func TestRunOwnerSnapshotAndCacheEquivalence(t *testing.T) {
	study := studyWorld(t)
	o := study.Owners[0]

	base := New(DefaultConfig())
	want, err := base.RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.Snapshot = study.Graph.Snapshot()
	cfg.Weights = cluster.NewWeightCache()
	engine := New(cfg)
	got, err := engine.RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffOwnerRuns(got, want); d != "" {
		t.Fatalf("snapshot+cache run differs from default run: %s", d)
	}
	first := cfg.Weights.Stats()
	if first.Misses == 0 || first.Hits != 0 {
		t.Fatalf("first run stats = %+v, want all misses", first)
	}

	// Second run over identical content: every pool's weights hit.
	again, err := engine.RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffOwnerRuns(again, want); d != "" {
		t.Fatalf("second cached run differs: %s", d)
	}
	second := cfg.Weights.Stats()
	if second.Misses != first.Misses {
		t.Fatalf("second run built new matrices: %+v -> %+v", first, second)
	}
	if second.Hits != first.Misses {
		t.Fatalf("second run hits = %d, want %d", second.Hits, first.Misses)
	}
}

// TestRunOwnerParallelWithCache: the cache is also safe and identical
// under the parallel pool path.
func TestRunOwnerParallelWithCache(t *testing.T) {
	study := studyWorld(t)
	o := study.Owners[1]

	base := New(DefaultConfig())
	want, err := base.RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.Workers = 4
	cfg.Snapshot = study.Graph.Snapshot()
	cfg.Weights = cluster.NewWeightCache()
	got, err := New(cfg).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffOwnerRuns(got, want); d != "" {
		t.Fatalf("parallel snapshot+cache run differs from serial default run: %s", d)
	}
}
