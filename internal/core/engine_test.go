package core

import (
	"context"
	"math"
	"testing"

	"sightrisk/internal/active"
	"sightrisk/internal/cluster"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/synthetic"
)

func studyWorld(t *testing.T) *synthetic.Study {
	t.Helper()
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 2
	cfg.Ego.Strangers = 250
	cfg.Seed = 13
	s, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunOwnerEndToEnd(t *testing.T) {
	study := studyWorld(t)
	engine := New(DefaultConfig())
	o := study.Owners[0]
	run, err := engine.RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
	if err != nil {
		t.Fatal(err)
	}
	if run.Owner != o.ID {
		t.Fatalf("owner = %d", run.Owner)
	}
	// Pools partition the strangers.
	var pools []cluster.Pool
	for _, pr := range run.Pools {
		pools = append(pools, pr.Pool)
	}
	if err := cluster.Validate(pools, run.Strangers); err != nil {
		t.Fatalf("pools: %v", err)
	}
	// Every stranger gets a valid final label.
	labels := run.Labels()
	if len(labels) != len(run.Strangers) {
		t.Fatalf("labels for %d of %d strangers", len(labels), len(run.Strangers))
	}
	for s, l := range labels {
		if !l.Valid() {
			t.Fatalf("invalid label for %d", s)
		}
	}
	// Owner effort is a strict subset of the stranger set.
	if q := run.QueriedCount(); q <= 0 || q >= len(run.Strangers) {
		t.Fatalf("queried %d of %d", q, len(run.Strangers))
	}
	// Prediction quality: far above the 1/3 random baseline.
	rate, total := run.ExactMatchRate()
	if total == 0 {
		t.Fatal("no validation comparisons recorded")
	}
	if rate < 0.5 {
		t.Fatalf("exact match rate %.2f implausibly low", rate)
	}
	if r := run.MeanRoundsToStop(); math.IsNaN(r) || r < 1 {
		t.Fatalf("mean rounds = %g", r)
	}
	if r := run.FinalRMSE(); math.IsNaN(r) || r < 0 || r > 2 {
		t.Fatalf("final RMSE = %g", r)
	}
}

func TestRunOwnerAgainstGroundTruth(t *testing.T) {
	study := studyWorld(t)
	engine := New(DefaultConfig())
	o := study.Owners[1]
	run, err := engine.RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
	if err != nil {
		t.Fatal(err)
	}
	labels := run.Labels()
	agree := 0
	for s, l := range labels {
		if l == o.LabelStranger(s) {
			agree++
		}
	}
	if rate := float64(agree) / float64(len(labels)); rate < 0.6 {
		t.Fatalf("ground-truth agreement %.2f, want > 0.6", rate)
	}
}

func TestRunOwnerErrors(t *testing.T) {
	study := studyWorld(t)
	engine := New(DefaultConfig())
	o := study.Owners[0]
	if _, err := engine.RunOwner(context.Background(), nil, study.Profiles, o.ID, active.Infallible(o), 80); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := engine.RunOwner(context.Background(), study.Graph, nil, o.ID, active.Infallible(o), 80); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := engine.RunOwner(context.Background(), study.Graph, study.Profiles, 987654, active.Infallible(o), 80); err == nil {
		t.Fatal("unknown owner accepted")
	}
	bad := DefaultConfig()
	bad.Pool.Alpha = 0
	if _, err := New(bad).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), 80); err == nil {
		t.Fatal("alpha 0 accepted")
	}
}

func TestConfidenceOverride(t *testing.T) {
	study := studyWorld(t)
	o := study.Owners[0]
	// Confidence 100 forces exhaustion: every stranger owner-labeled.
	engine := New(DefaultConfig())
	run, err := engine.RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), 100)
	if err != nil {
		t.Fatal(err)
	}
	if run.QueriedCount() != len(run.Strangers) {
		t.Fatalf("confidence 100 queried %d of %d", run.QueriedCount(), len(run.Strangers))
	}
	// NaN keeps the engine default (80), which converges early.
	run2, err := engine.RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), math.NaN())
	if err != nil {
		t.Fatal(err)
	}
	if run2.QueriedCount() >= run.QueriedCount() {
		t.Fatalf("default confidence queried %d, not fewer than %d", run2.QueriedCount(), run.QueriedCount())
	}
}

func TestVeryRiskyShareByNSG(t *testing.T) {
	study := studyWorld(t)
	engine := New(DefaultConfig())
	o := study.Owners[0]
	run, err := engine.RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
	if err != nil {
		t.Fatal(err)
	}
	shares := run.VeryRiskyShareByNSG()
	if len(shares) != DefaultConfig().Pool.Alpha {
		t.Fatalf("shares len = %d", len(shares))
	}
	for gi, members := range run.NSG.Groups {
		if len(members) == 0 {
			if !math.IsNaN(shares[gi]) {
				t.Fatalf("empty group %d share = %g, want NaN", gi+1, shares[gi])
			}
			continue
		}
		if shares[gi] < 0 || shares[gi] > 1 {
			t.Fatalf("group %d share = %g", gi+1, shares[gi])
		}
	}
}

func TestNSPStrategyRuns(t *testing.T) {
	study := studyWorld(t)
	cfg := DefaultConfig()
	cfg.Pool.Strategy = cluster.NSP
	engine := New(cfg)
	o := study.Owners[0]
	run, err := engine.RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range run.Pools {
		if pr.Pool.ClusterIndex != 0 {
			t.Fatalf("NSP pool %s has cluster index %d", pr.Pool.ID(), pr.Pool.ClusterIndex)
		}
	}
	if len(run.Labels()) != len(run.Strangers) {
		t.Fatal("NSP run did not label every stranger")
	}
}

func TestDeterministicRuns(t *testing.T) {
	study := studyWorld(t)
	o := study.Owners[0]
	run1, err := New(DefaultConfig()).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
	if err != nil {
		t.Fatal(err)
	}
	run2, err := New(DefaultConfig()).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
	if err != nil {
		t.Fatal(err)
	}
	l1, l2 := run1.Labels(), run2.Labels()
	for s, l := range l1 {
		if l2[s] != l {
			t.Fatalf("label for %d differs between identical runs", s)
		}
	}
	if run1.QueriedCount() != run2.QueriedCount() {
		t.Fatal("queried counts differ between identical runs")
	}
}

func TestOwnerLabelsTakePrecedence(t *testing.T) {
	// Wherever the owner labeled directly, the final label must be the
	// owner's, not the classifier's.
	study := studyWorld(t)
	o := study.Owners[0]
	run, err := New(DefaultConfig()).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range run.Pools {
		for m, owned := range pr.Result.OwnerLabeled {
			if owned && pr.Result.Labels[m] != o.LabelStranger(m) {
				t.Fatalf("owner-labeled %d carries %v, owner says %v",
					m, pr.Result.Labels[m], o.LabelStranger(m))
			}
		}
	}
}

// staticAnnotator labels everything the same — degenerate but legal.
type staticAnnotator struct{ l label.Label }

func (s staticAnnotator) LabelStranger(graph.UserID) label.Label { return s.l }

var _ active.Annotator = staticAnnotator{}

func TestUniformAnnotatorConvergesFast(t *testing.T) {
	study := studyWorld(t)
	o := study.Owners[0]
	run, err := New(DefaultConfig()).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(staticAnnotator{label.NotRisky}), 80)
	if err != nil {
		t.Fatal(err)
	}
	for s, l := range run.Labels() {
		if l != label.NotRisky {
			t.Fatalf("stranger %d labeled %v under constant annotator", s, l)
		}
	}
	rate, _ := run.ExactMatchRate()
	if !math.IsNaN(rate) && rate < 0.99 {
		t.Fatalf("constant annotator exact match %.2f", rate)
	}
}
