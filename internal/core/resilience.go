package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"sightrisk/internal/active"
	"sightrisk/internal/classify"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
)

// PoolStatus tells callers whether a pool's labels were learned by a
// finished session or synthesized after an interruption.
type PoolStatus string

// Pool completion states.
const (
	// PoolComplete: the session ran to its stopping rule; labels are
	// owner labels plus converged classifier predictions.
	PoolComplete PoolStatus = "complete"
	// PoolPartial: the session was interrupted; labels beyond the
	// owner's answers are fallback predictions (last round's
	// classifier output where one exists, majority/prior otherwise).
	PoolPartial PoolStatus = "partial"
)

// isInterrupt reports whether err is an interruption the engine
// degrades gracefully from — owner abandonment or cancellation — as
// opposed to a hard failure that should surface as an error.
func isInterrupt(err error) bool {
	return err != nil && (errors.Is(err, active.ErrAbandoned) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded))
}

// abandonLatch makes abandonment sticky across pools: after one query
// returns a terminal interrupt, every subsequent query in any pool
// fails fast with the same error instead of re-asking an owner who
// already walked away.
type abandonLatch struct {
	mu  sync.Mutex
	err error
}

func (a *abandonLatch) trip(err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err == nil {
		a.err = err
	}
}

func (a *abandonLatch) tripped() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// latchAnnotator short-circuits queries once the shared latch has
// tripped, and trips it on terminal interrupts from the inner
// annotator.
type latchAnnotator struct {
	latch *abandonLatch
	inner active.FallibleAnnotator
}

func (l latchAnnotator) LabelStranger(ctx context.Context, s graph.UserID) (label.Label, error) {
	if err := l.latch.tripped(); err != nil {
		return 0, err
	}
	lab, err := l.inner.LabelStranger(ctx, s)
	if isInterrupt(err) {
		l.latch.trip(err)
	}
	return lab, err
}

// graceAnnotator gives each in-flight query a grace period past
// cancellation of the run's context, so the answer the owner is
// typing right now can still land (and be checkpointed) instead of
// being dropped on the floor. Sessions stop issuing *new* queries at
// the next boundary regardless — the grace context only shields the
// query already underway.
type graceAnnotator struct {
	grace time.Duration
	inner active.FallibleAnnotator
}

func (g graceAnnotator) LabelStranger(ctx context.Context, s graph.UserID) (label.Label, error) {
	gctx, stop := graceContext(ctx, g.grace)
	defer stop()
	return g.inner.LabelStranger(gctx, s)
}

// graceContext returns a context that is canceled `grace` after the
// parent is — never sooner. The caller must call stop to release the
// watcher goroutine.
func graceContext(parent context.Context, grace time.Duration) (context.Context, context.CancelFunc) {
	if grace <= 0 {
		return parent, func() {}
	}
	ctx, cancel := context.WithCancel(context.WithoutCancel(parent))
	stopped := make(chan struct{})
	go func() {
		select {
		case <-parent.Done():
			t := time.NewTimer(grace)
			defer t.Stop()
			select {
			case <-t.C:
				cancel()
			case <-stopped:
			}
		case <-stopped:
		}
	}()
	return ctx, func() {
		close(stopped)
		cancel()
	}
}

// replayAnnotator answers queries from a resumed checkpoint's cache
// without consulting the inner annotator. Because it sits below the
// turn gate, a cached query still takes its slot in the deterministic
// rotation — so a resumed run issues the exact query sequence the
// original did and never re-asks an answered question.
type replayAnnotator struct {
	cache map[graph.UserID]label.Label
	inner active.FallibleAnnotator
}

func (r replayAnnotator) LabelStranger(ctx context.Context, s graph.UserID) (label.Label, error) {
	if l, ok := r.cache[s]; ok {
		return l, nil
	}
	return r.inner.LabelStranger(ctx, s)
}

// recordAnnotator feeds every successful answer into the shared
// checkpointer. It sits above the replay cache, so a resumed run
// re-records replayed answers into its fresh checkpoint and the new
// checkpoint stays a superset of the old one.
type recordAnnotator struct {
	k      *checkpointer
	poolID string
	inner  active.FallibleAnnotator
}

func (r recordAnnotator) LabelStranger(ctx context.Context, s graph.UserID) (label.Label, error) {
	l, err := r.inner.LabelStranger(ctx, s)
	if err == nil {
		r.k.record(r.poolID, s, l)
	}
	return l, err
}

// fillFallbacks completes every partial pool's label map: members the
// interrupted session left unlabeled get the pool's majority owner
// label (ties break toward the riskier label — when in doubt, warn),
// falling back to the run-wide majority and finally to Risky when the
// owner answered nothing at all. All non-owner-labeled members of a
// partial pool are marked as fallback so callers can tell learned
// labels from synthesized ones.
func fillFallbacks(run *OwnerRun) {
	var global [4]int
	for _, p := range run.Pools {
		for m := range p.Result.OwnerLabeled {
			global[int(p.Result.Labels[m])]++
		}
	}
	globalMaj, globalOK := majorityLabel(global)
	for i := range run.Pools {
		p := &run.Pools[i]
		if p.Status != PoolPartial {
			continue
		}
		var local [4]int
		for m := range p.Result.OwnerLabeled {
			local[int(p.Result.Labels[m])]++
		}
		fallback := label.Risky
		if l, ok := majorityLabel(local); ok {
			fallback = l
		} else if globalOK {
			fallback = globalMaj
		}
		p.Fallback = make(map[graph.UserID]bool)
		for _, m := range p.Result.Pool {
			if p.Result.OwnerLabeled[m] {
				continue
			}
			p.Fallback[m] = true
			if _, ok := p.Result.Labels[m]; !ok {
				p.Result.Labels[m] = fallback
				var scores [3]float64
				scores[int(fallback)-1] = 1
				p.Result.Predicted[m] = classify.Prediction{Label: fallback, Scores: scores, Expected: float64(fallback)}
			}
		}
	}
}

// majorityLabel picks the most frequent label from counts (indexed by
// label value); ties break toward the riskier label. ok is false when
// no labels were counted.
func majorityLabel(counts [4]int) (label.Label, bool) {
	best, bestCount := label.Label(0), 0
	for l := int(label.Min); l <= int(label.Max); l++ {
		if counts[l] >= bestCount && counts[l] > 0 {
			best, bestCount = label.Label(l), counts[l]
		}
	}
	return best, bestCount > 0
}
