package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"sightrisk/internal/active"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/synthetic"
)

// diffOwnerRuns is the historical name the determinism tests use for
// the exported NaN-aware comparator (see diff.go).
func diffOwnerRuns(a, b *OwnerRun) string { return DiffRuns(a, b) }

// TestParallelMatchesSerial is the core determinism guarantee: for a
// seeded synthetic study, every Workers value yields the exact
// OwnerRun the legacy serial path (Workers 1) produces — same labels,
// same query traces, same round telemetry, bit-identical floats.
func TestParallelMatchesSerial(t *testing.T) {
	study := studyWorld(t)
	for _, o := range study.Owners {
		cfg := DefaultConfig()
		cfg.Workers = 1
		serial, err := New(cfg).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0), 16} {
			cfg := DefaultConfig()
			cfg.Workers = workers
			par, err := New(cfg).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if d := diffOwnerRuns(serial, par); d != "" {
				t.Fatalf("owner %d workers=%d differs from serial: %s", o.ID, workers, d)
			}
		}
	}
}

// recordingAnnotator wraps an annotator, recording the exact query
// order and failing loudly if two LabelStranger calls ever overlap —
// the annotator thread-safety contract under test.
type recordingAnnotator struct {
	inner  active.Annotator
	inside atomic.Int32
	racy   atomic.Bool
	order  []graph.UserID
}

func (r *recordingAnnotator) LabelStranger(s graph.UserID) label.Label {
	if r.inside.Add(1) != 1 {
		r.racy.Store(true)
	}
	r.order = append(r.order, s) // unsynchronized on purpose: the gate must serialize us
	l := r.inner.LabelStranger(s)
	r.inside.Add(-1)
	return l
}

// TestAnnotatorSerializedDeterministicOrder: with any Workers > 1 the
// owner must see strictly serialized queries in an order that is a
// deterministic function of the study — identical run to run and
// identical across different worker counts.
func TestAnnotatorSerializedDeterministicOrder(t *testing.T) {
	study := studyWorld(t)
	o := study.Owners[0]
	ask := func(workers int) []graph.UserID {
		t.Helper()
		cfg := DefaultConfig()
		cfg.Workers = workers
		rec := &recordingAnnotator{inner: o}
		if _, err := New(cfg).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(rec), o.Confidence); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rec.racy.Load() {
			t.Fatalf("workers=%d: LabelStranger calls overlapped", workers)
		}
		return rec.order
	}

	want := ask(2)
	if len(want) == 0 {
		t.Fatal("no queries recorded")
	}
	for _, workers := range []int{2, 3, 4, 8} {
		for trial := 0; trial < 2; trial++ {
			got := ask(workers)
			if len(got) != len(want) {
				t.Fatalf("workers=%d trial %d: %d queries, want %d", workers, trial, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d trial %d: query %d asked about %d, want %d (order must not depend on scheduling)",
						workers, trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestParallelStress is the short-mode-friendly race stressor: several
// owners run concurrently against the shared graph and profile store,
// each with a parallel pool pipeline and a tiny round budget (many
// small sessions → much goroutine churn). Run under -race this
// exercises every shared read path (graph adjacency, profile store,
// pool building, PS contexts).
func TestParallelStress(t *testing.T) {
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 4
	cfg.Ego.Strangers = 120
	cfg.Ego.Friends = 18
	cfg.Seed = 31
	study, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ecfg := DefaultConfig()
	ecfg.Workers = 8
	ecfg.Learn.MaxRounds = 2 // tiny budgets: more pools in flight per unit work
	var wg sync.WaitGroup
	errs := make([]error, len(study.Owners))
	for i, o := range study.Owners {
		i, o := i, o
		wg.Add(1)
		go func() {
			defer wg.Done()
			run, err := New(ecfg).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
			if err != nil {
				errs[i] = err
				return
			}
			if len(run.Labels()) != len(run.Strangers) {
				errs[i] = fmt.Errorf("owner %d: %d labels for %d strangers", o.ID, len(run.Labels()), len(run.Strangers))
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// poisonAnnotator returns an invalid label for one specific stranger.
type poisonAnnotator struct {
	inner  active.Annotator
	victim graph.UserID
}

func (p poisonAnnotator) LabelStranger(s graph.UserID) label.Label {
	if s == p.victim {
		return label.Label(99)
	}
	return p.inner.LabelStranger(s)
}

// TestParallelErrorPropagation: a failure inside one pool's session
// must cancel the run and surface deterministically, naming the
// failing pool, under both the serial and the parallel path.
func TestParallelErrorPropagation(t *testing.T) {
	study := studyWorld(t)
	o := study.Owners[0]
	victim := o.Strangers()[0]
	var msgs []string
	for _, workers := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Learn.Confidence = 100 // exhaustive: the victim is guaranteed to be queried
		_, err := New(cfg).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(poisonAnnotator{inner: o, victim: victim}), math.NaN())
		if err == nil {
			t.Fatalf("workers=%d: invalid label not rejected", workers)
		}
		if !strings.Contains(err.Error(), "invalid label") {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("error differs between serial and parallel:\n  serial:   %s\n  parallel: %s", msgs[0], msgs[1])
	}
}

// TestParallelProgressMonotone: the Progress callback keeps its
// monotone contract under concurrency and ends on (total, total).
func TestParallelProgressMonotone(t *testing.T) {
	study := studyWorld(t)
	o := study.Owners[0]
	cfg := DefaultConfig()
	cfg.Workers = 4
	var lastDone, lastLabels, calls, total int
	cfg.Progress = func(done, tot, labels int) {
		calls++
		total = tot
		if done != lastDone+1 {
			t.Errorf("done jumped %d -> %d", lastDone, done)
		}
		if labels < lastLabels {
			t.Errorf("labels went backwards %d -> %d", lastLabels, labels)
		}
		lastDone, lastLabels = done, labels
	}
	run, err := New(cfg).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 || lastDone != total || len(run.Pools) != total {
		t.Fatalf("progress ended at %d/%d after %d calls, %d pools", lastDone, total, calls, len(run.Pools))
	}
	if lastLabels != run.QueriedCount() {
		t.Fatalf("final labels %d, run queried %d", lastLabels, run.QueriedCount())
	}
}
