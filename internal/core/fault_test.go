package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"sightrisk/internal/active"
	"sightrisk/internal/faults"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/synthetic"
)

// fastRetry is the fault-matrix retry policy: enough attempts to absorb
// every scripted failure, with sub-microsecond backoff so tests don't
// sleep.
func fastRetry(attempts int) active.RetryPolicy {
	return active.RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
}

// cpSink captures the latest checkpoint snapshot the engine flushed.
type cpSink struct {
	mu     sync.Mutex
	last   *Checkpoint
	writes int
}

func (s *cpSink) put(c *Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.last = c
	s.writes++
	return nil
}

func (s *cpSink) latest() *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// askRecorder tracks which strangers actually reached the inner
// annotator (queries answered from a replay cache never get here).
// The engine serializes annotator calls, so no locking is needed.
type askRecorder struct {
	inner active.FallibleAnnotator
	asked []graph.UserID
}

func (r *askRecorder) LabelStranger(ctx context.Context, s graph.UserID) (label.Label, error) {
	r.asked = append(r.asked, s)
	return r.inner.LabelStranger(ctx, s)
}

// renderRun dumps every label-bearing field of a run into a canonical
// string (sorted keys, NaN-stable float formatting) so two runs can be
// compared byte for byte.
func renderRun(r *OwnerRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "owner=%d partial=%v strangers=%v\n", r.Owner, r.Partial, r.Strangers)
	for _, p := range r.Pools {
		fmt.Fprintf(&b, "pool %s status=%s reason=%s\n", p.Pool.ID(), p.Status, p.Result.Reason)
		members := append([]graph.UserID(nil), p.Result.Pool...)
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		for _, m := range members {
			pred := p.Result.Predicted[m]
			fmt.Fprintf(&b, "  %d label=%d owner=%v fallback=%v pred=%d exp=%v scores=%v\n",
				m, p.Result.Labels[m], p.Result.OwnerLabeled[m], p.Fallback[m],
				pred.Label, pred.Expected, pred.Scores)
		}
		for _, rd := range p.Result.Rounds {
			fmt.Fprintf(&b, "  round %d queried=%v rmse=%v matches=%d/%d unstab=%d\n",
				rd.Number, rd.Queried, rd.RMSE, rd.ExactMatches, rd.ExactTotal, rd.Unstabilized)
		}
	}
	return b.String()
}

// scriptAt builds a fault script of n entries failing (transiently)
// exactly at the given query indices.
func scriptAt(n int, at ...int) []error {
	s := make([]error, n)
	for _, i := range at {
		s[i] = active.Transient(fmt.Errorf("scripted failure at query %d", i))
	}
	return s
}

// TestTransientFailuresRetriedToIdentity is the first row block of the
// fault matrix: a transient annotator failure at the first, a middle
// and the last query — retried under the policy — must leave the run
// byte-identical to a failure-free one, at Workers 1 and 4.
func TestTransientFailuresRetriedToIdentity(t *testing.T) {
	study := studyWorld(t)
	o := study.Owners[0]
	for _, workers := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Retry = fastRetry(3)
		clean, err := New(cfg).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
		if err != nil {
			t.Fatal(err)
		}
		total := clean.QueriedCount()
		if total < 10 {
			t.Fatalf("study too small: %d queries", total)
		}
		scenarios := map[string][]int{
			"first query":   {0},
			"middle query":  {total / 2},
			"last query":    {total - 1},
			"three at once": {0, total / 2, total - 1},
		}
		for name, at := range scenarios {
			inj, err := faults.Wrap(active.Infallible(o), faults.Config{Script: scriptAt(total, at...)})
			if err != nil {
				t.Fatal(err)
			}
			run, err := New(cfg).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, inj, o.Confidence)
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, name, err)
			}
			if d := diffOwnerRuns(clean, run); d != "" {
				t.Fatalf("workers=%d %s: differs from clean run: %s", workers, name, d)
			}
			if got, want := renderRun(run), renderRun(clean); got != want {
				t.Fatalf("workers=%d %s: canonical rendering differs", workers, name)
			}
			if st := inj.Stats(); st.Failures != len(at) {
				t.Fatalf("workers=%d %s: %d failures injected, want %d", workers, name, st.Failures, len(at))
			}
		}
		// Probabilistic flakiness with a deep retry budget converges too.
		inj, err := faults.Wrap(active.Infallible(o), faults.Config{Seed: 99, FailProb: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Retry = fastRetry(10)
		run, err := New(cfg).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, inj, o.Confidence)
		if err != nil {
			t.Fatalf("workers=%d flaky: %v", workers, err)
		}
		if d := diffOwnerRuns(clean, run); d != "" {
			t.Fatalf("workers=%d flaky run differs from clean: %s", workers, d)
		}
		if st := inj.Stats(); st.Failures == 0 {
			t.Fatalf("workers=%d: flaky injector never fired", workers)
		}
	}
}

// TestRetryExhaustionIsAHardError: a failure that outlives its retry
// budget is not an interruption — the run must fail loudly.
func TestRetryExhaustionIsAHardError(t *testing.T) {
	study := studyWorld(t)
	o := study.Owners[0]
	boom := active.Transient(errors.New("persistent outage"))
	ann := active.FallibleFunc(func(context.Context, graph.UserID) (label.Label, error) {
		return 0, boom
	})
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.Retry = fastRetry(3)
	_, err := New(cfg).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, ann, o.Confidence)
	if err == nil {
		t.Fatal("exhausted retries did not surface as an error")
	}
	if !strings.Contains(err.Error(), "persistent outage") {
		t.Fatalf("error lost the cause: %v", err)
	}
}

// TestAbandonmentDegradesGracefully is the abandonment block of the
// fault matrix: the owner walks away after K answers, at Workers 1 and
// 4. The run must return a partial report (nil error) in which every
// stranger still carries a valid label, finished pools stay complete,
// and interrupted pools mark their synthesized labels as fallbacks.
func TestAbandonmentDegradesGracefully(t *testing.T) {
	study := studyWorld(t)
	o := study.Owners[0]
	clean, err := New(DefaultConfig()).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
	if err != nil {
		t.Fatal(err)
	}
	abandonAt := clean.QueriedCount() * 2 / 3
	for _, workers := range []int{1, 4} {
		run := abandonedRun(t, study, o, workers, abandonAt)
		if !run.Partial {
			t.Fatalf("workers=%d: abandoned run not marked partial", workers)
		}
		if !errors.Is(run.Cause, active.ErrAbandoned) {
			t.Fatalf("workers=%d: cause = %v, want ErrAbandoned", workers, run.Cause)
		}
		if run.QueriedCount() != abandonAt {
			t.Fatalf("workers=%d: %d owner labels, want exactly %d", workers, run.QueriedCount(), abandonAt)
		}
		labels := run.Labels()
		if len(labels) != len(run.Strangers) {
			t.Fatalf("workers=%d: %d labels for %d strangers", workers, len(labels), len(run.Strangers))
		}
		for s, l := range labels {
			if !l.Valid() {
				t.Fatalf("workers=%d: invalid label for %d", workers, s)
			}
		}
		partials := 0
		for _, p := range run.Pools {
			switch p.Status {
			case PoolComplete:
				if p.Fallback != nil {
					t.Fatalf("workers=%d: complete pool %s carries fallbacks", workers, p.Pool.ID())
				}
			case PoolPartial:
				partials++
				for _, m := range p.Result.Pool {
					if p.Result.OwnerLabeled[m] == p.Fallback[m] {
						t.Fatalf("workers=%d: pool %s member %d: owner-labeled=%v fallback=%v",
							workers, p.Pool.ID(), m, p.Result.OwnerLabeled[m], p.Fallback[m])
					}
				}
				if p.Result.Reason != active.StopInterrupted {
					t.Fatalf("workers=%d: partial pool %s reason %s", workers, p.Pool.ID(), p.Result.Reason)
				}
			default:
				t.Fatalf("workers=%d: pool %s has no status", workers, p.Pool.ID())
			}
		}
		if partials == 0 {
			t.Fatalf("workers=%d: abandonment produced no partial pool", workers)
		}
		// Abandonment is deterministic: the same run again is identical.
		again := abandonedRun(t, study, o, workers, abandonAt)
		if renderRun(run) != renderRun(again) {
			t.Fatalf("workers=%d: two identical abandoned runs differ", workers)
		}
	}
}

func abandonedRun(t *testing.T, study *synthetic.Study, o *synthetic.Owner, workers, abandonAt int) *OwnerRun {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Workers = workers
	inj, err := faults.Wrap(active.Infallible(o), faults.Config{AbandonAfter: abandonAt})
	if err != nil {
		t.Fatal(err)
	}
	run, err := New(cfg).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, inj, o.Confidence)
	if err != nil {
		t.Fatalf("workers=%d: abandoned run errored: %v", workers, err)
	}
	return run
}

// TestCheckpointResumeByteIdentical is the acceptance scenario: a
// seeded fault run killed mid-session via abandonment, resumed from
// its checkpoint, must reproduce the uninterrupted run byte for byte —
// at Workers 1 and 4, and across worker counts — without ever
// re-asking an answered question.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	study := studyWorld(t)
	o := study.Owners[0]
	clean, err := New(DefaultConfig()).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
	if err != nil {
		t.Fatal(err)
	}
	total := clean.QueriedCount()
	abandonAt := total / 3

	interrupt := func(workers int) *Checkpoint {
		t.Helper()
		sink := &cpSink{}
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Checkpoint = sink.put
		inj, err := faults.Wrap(active.Infallible(o), faults.Config{AbandonAfter: abandonAt})
		if err != nil {
			t.Fatal(err)
		}
		run, err := New(cfg).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, inj, o.Confidence)
		if err != nil {
			t.Fatalf("workers=%d interrupted run: %v", workers, err)
		}
		if !run.Partial {
			t.Fatalf("workers=%d: interrupted run not partial", workers)
		}
		cp := sink.latest()
		if cp == nil || sink.writes == 0 {
			t.Fatalf("workers=%d: no checkpoint flushed", workers)
		}
		answered := 0
		for _, pc := range cp.Pools {
			answered += len(pc.Answers)
		}
		if answered != abandonAt {
			t.Fatalf("workers=%d: checkpoint holds %d answers, want %d", workers, answered, abandonAt)
		}
		return cp
	}

	resume := func(cp *Checkpoint, workers int, tag string) {
		t.Helper()
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Resume = cp
		rec := &askRecorder{inner: active.Infallible(o)}
		run, err := New(cfg).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, rec, o.Confidence)
		if err != nil {
			t.Fatalf("%s: resume failed: %v", tag, err)
		}
		if run.Partial {
			t.Fatalf("%s: resumed run still partial", tag)
		}
		if d := diffOwnerRuns(clean, run); d != "" {
			t.Fatalf("%s: resumed run differs from uninterrupted: %s", tag, d)
		}
		if got, want := renderRun(run), renderRun(clean); got != want {
			t.Fatalf("%s: canonical rendering differs from uninterrupted run", tag)
		}
		// Never re-ask an answered question — and ask all the rest.
		cached := map[graph.UserID]bool{}
		for _, pc := range cp.Pools {
			for _, qa := range pc.Answers {
				cached[qa.Stranger] = true
			}
		}
		for _, s := range rec.asked {
			if cached[s] {
				t.Fatalf("%s: resumed run re-asked checkpointed stranger %d", tag, s)
			}
		}
		if len(rec.asked) != total-abandonAt {
			t.Fatalf("%s: resumed run asked %d fresh questions, want %d", tag, len(rec.asked), total-abandonAt)
		}
	}

	cp1 := interrupt(1)
	cp4 := interrupt(4)
	resume(cp1, 1, "w1->w1")
	resume(cp4, 4, "w4->w4")
	resume(cp1, 4, "w1->w4") // checkpoint survives a worker-count change
	resume(cp4, 1, "w4->w1")
}

// TestCancellationStopsAtQueryBoundary: after the run's context is
// canceled, not a single further question reaches the annotator — the
// run stops within the in-flight query, serial and parallel alike.
func TestCancellationStopsAtQueryBoundary(t *testing.T) {
	study := studyWorld(t)
	o := study.Owners[0]
	const cancelAt = 7
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		calls := 0
		ann := active.FallibleFunc(func(_ context.Context, s graph.UserID) (label.Label, error) {
			calls++
			if calls == cancelAt {
				cancel()
			}
			return o.LabelStranger(s), nil
		})
		cfg := DefaultConfig()
		cfg.Workers = workers
		run, err := New(cfg).RunOwner(ctx, study.Graph, study.Profiles, o.ID, ann, o.Confidence)
		cancel()
		if err != nil {
			t.Fatalf("workers=%d: canceled run errored: %v", workers, err)
		}
		if !run.Partial || !errors.Is(run.Cause, context.Canceled) {
			t.Fatalf("workers=%d: partial=%v cause=%v, want canceled partial run", workers, run.Partial, run.Cause)
		}
		if calls != cancelAt {
			t.Fatalf("workers=%d: annotator saw %d calls after cancellation at %d", workers, calls, cancelAt)
		}
		if len(run.Labels()) != len(run.Strangers) {
			t.Fatalf("workers=%d: canceled run left strangers unlabeled", workers)
		}
	}
}

// TestSessionTimeoutDegrades: Retry.SessionTimeout expiring behaves
// exactly like cancellation — a partial report, not an error.
func TestSessionTimeoutDegrades(t *testing.T) {
	study := studyWorld(t)
	o := study.Owners[0]
	inj, err := faults.Wrap(active.Infallible(o), faults.Config{Latency: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.Retry.SessionTimeout = 40 * time.Millisecond
	run, err := New(cfg).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, inj, o.Confidence)
	if err != nil {
		t.Fatalf("timed-out run errored: %v", err)
	}
	if !run.Partial || !errors.Is(run.Cause, context.DeadlineExceeded) {
		t.Fatalf("partial=%v cause=%v, want deadline-exceeded partial run", run.Partial, run.Cause)
	}
	if len(run.Labels()) != len(run.Strangers) {
		t.Fatal("timed-out run left strangers unlabeled")
	}
}

// TestAbandonGraceShieldsInFlightQuery: with AbandonGrace set, the
// answer the owner is producing when the run is canceled still lands
// (and counts); without it, the in-flight query dies with the context.
func TestAbandonGraceShieldsInFlightQuery(t *testing.T) {
	study := studyWorld(t)
	o := study.Owners[0]
	const cancelAt = 5
	run := func(grace time.Duration) *OwnerRun {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		calls := 0
		ann := active.FallibleFunc(func(qctx context.Context, s graph.UserID) (label.Label, error) {
			calls++
			if calls == cancelAt {
				cancel()
				// The owner needs a beat to finish typing the answer.
				select {
				case <-qctx.Done():
					return 0, qctx.Err()
				case <-time.After(20 * time.Millisecond):
				}
			}
			return o.LabelStranger(s), nil
		})
		cfg := DefaultConfig()
		cfg.Workers = 1
		cfg.AbandonGrace = grace
		r, err := New(cfg).RunOwner(ctx, study.Graph, study.Profiles, o.ID, ann, o.Confidence)
		if err != nil {
			t.Fatalf("grace=%v: %v", grace, err)
		}
		if !r.Partial {
			t.Fatalf("grace=%v: run not partial", grace)
		}
		return r
	}
	with := run(5 * time.Second)
	without := run(0)
	if with.QueriedCount() != cancelAt {
		t.Fatalf("with grace: %d owner labels, want %d (in-flight answer kept)", with.QueriedCount(), cancelAt)
	}
	if without.QueriedCount() != cancelAt-1 {
		t.Fatalf("without grace: %d owner labels, want %d (in-flight answer dropped)", without.QueriedCount(), cancelAt-1)
	}
}

// TestCheckpointSinkFailureAborts: durability is load-bearing — a sink
// error is a hard failure even though interruptions are not.
func TestCheckpointSinkFailureAborts(t *testing.T) {
	study := studyWorld(t)
	o := study.Owners[0]
	cfg := DefaultConfig()
	cfg.Workers = 1
	sinkErr := errors.New("disk full")
	cfg.Checkpoint = func(*Checkpoint) error { return sinkErr }
	_, err := New(cfg).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence)
	if !errors.Is(err, sinkErr) {
		t.Fatalf("sink failure surfaced as %v", err)
	}
}

// TestResumeValidation: a checkpoint from another owner, another seed
// or another format version must be rejected before any question is
// asked.
func TestResumeValidation(t *testing.T) {
	study := studyWorld(t)
	o := study.Owners[0]
	cases := map[string]*Checkpoint{
		"wrong owner":   NewCheckpoint(o.ID+1, DefaultConfig().Seed),
		"wrong seed":    NewCheckpoint(o.ID, DefaultConfig().Seed+5),
		"wrong version": {Version: CheckpointVersion + 1, Owner: o.ID, Seed: DefaultConfig().Seed},
	}
	for name, cp := range cases {
		cfg := DefaultConfig()
		cfg.Resume = cp
		asked := false
		ann := active.FallibleFunc(func(_ context.Context, s graph.UserID) (label.Label, error) {
			asked = true
			return o.LabelStranger(s), nil
		})
		if _, err := New(cfg).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, ann, o.Confidence); err == nil {
			t.Fatalf("%s: accepted", name)
		}
		if asked {
			t.Fatalf("%s: asked a question before rejecting the checkpoint", name)
		}
	}
}

// TestCheckpointFileRoundtrip: SaveCheckpointFile/LoadCheckpointFile
// preserve the checkpoint exactly and refuse foreign versions.
func TestCheckpointFileRoundtrip(t *testing.T) {
	cp := NewCheckpoint(42, 7)
	cp.Pools["g3-c1"] = &PoolCheckpoint{
		Answers: []QA{{Stranger: 10, Label: label.Risky}, {Stranger: 11, Label: label.NotRisky}},
		Rounds:  2,
	}
	cp.Pools["g4-c0"] = &PoolCheckpoint{Done: true}
	path := filepath.Join(t.TempDir(), "run.checkpoint.json")
	if err := SaveCheckpointFile(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Owner != cp.Owner || got.Seed != cp.Seed || len(got.Pools) != 2 {
		t.Fatalf("roundtrip mangled checkpoint: %+v", got)
	}
	pc := got.Pools["g3-c1"]
	if pc == nil || len(pc.Answers) != 2 || pc.Answers[0] != (QA{Stranger: 10, Label: label.Risky}) || pc.Rounds != 2 {
		t.Fatalf("pool state mangled: %+v", pc)
	}
	if !got.Pools["g4-c0"].Done {
		t.Fatal("Done flag lost")
	}
	if ids := got.sortedPoolIDs(); len(ids) != 2 || ids[0] != "g3-c1" {
		t.Fatalf("sortedPoolIDs = %v", ids)
	}
	// Version drift is refused.
	bad := NewCheckpoint(1, 1)
	bad.Version = CheckpointVersion + 1
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := SaveCheckpointFile(badPath, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpointFile(badPath); err == nil {
		t.Fatal("foreign version loaded")
	}
	if _, err := LoadCheckpointFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

// TestEngineConfigValidation covers the robustness-field validation the
// engine performs before touching the graph.
func TestEngineConfigValidation(t *testing.T) {
	study := studyWorld(t)
	o := study.Owners[0]
	mutations := map[string]func(*Config){
		"negative workers":       func(c *Config) { c.Workers = -1 },
		"negative grace":         func(c *Config) { c.AbandonGrace = -time.Second },
		"negative weight exp":    func(c *Config) { c.WeightExponent = -1 },
		"retry jitter > 1":       func(c *Config) { c.Retry.Jitter = 1.5 },
		"negative retry base":    func(c *Config) { c.Retry.BaseDelay = -time.Second },
		"negative retry tries":   func(c *Config) { c.Retry.MaxAttempts = -2 },
		"alpha <= 0":             func(c *Config) { c.Pool.Alpha = 0 },
		"rmse threshold <= 0":    func(c *Config) { c.Learn.RMSEThreshold = 0 },
		"confidence out of band": func(c *Config) { c.Learn.Confidence = 101 },
		"negative per-round":     func(c *Config) { c.Learn.PerRound = -1 },
	}
	for name, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg).RunOwner(context.Background(), study.Graph, study.Profiles, o.ID, active.Infallible(o), o.Confidence); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}
