// Package core orchestrates the full risk-estimation pipeline of the
// paper for one owner: stranger enumeration → network similarity
// groups → profile clustering → per-pool active-learning sessions →
// aggregated risk report. It is the internal engine behind the public
// sight package and the experiments harness.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"sightrisk/internal/active"
	"sightrisk/internal/classify"
	"sightrisk/internal/cluster"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/obs"
	"sightrisk/internal/parallel"
	"sightrisk/internal/profile"
	"sightrisk/internal/stats"
)

// Config parameterizes an engine run.
type Config struct {
	// Pool controls NSG/Squeezer pool construction (paper: α = 10,
	// β = 0.4, NPP strategy).
	Pool cluster.PoolConfig
	// Learn controls the per-pool active-learning sessions. The
	// Confidence field may be overridden per owner via RunOwner's
	// confidence argument (pass NaN to keep Learn.Confidence).
	Learn active.Config
	// PSAttributes are the attributes the classifier's edge weights
	// are computed over; empty means the paper's clustering
	// attributes.
	PSAttributes []profile.Attribute
	// Progress, when non-nil, is invoked after each pool's session
	// completes with the number of pools finished, the total pool
	// count, and the owner labels collected so far. Useful for
	// interactive frontends (sessions can take a while on big
	// neighborhoods).
	Progress func(poolsDone, poolsTotal, labelsSoFar int)
	// WeightExponent sharpens classifier edge weights: w = PS^exp.
	// Zhu et al. use a rapidly decaying RBF kernel over Euclidean
	// distance; raising the categorical PS to a power plays the same
	// role, letting same-attribute neighbors dominate label
	// propagation. 0 means the default of 4; 1 uses raw PS.
	WeightExponent float64
	// Seed drives the sampling RNGs (one derived stream per pool).
	Seed int64
	// Workers bounds how many per-pool computations (weight-matrix
	// builds and classifier solves) run concurrently. 0 means
	// runtime.GOMAXPROCS(0); 1 runs the exact legacy serial path.
	// Results are identical for every value — see RunOwner.
	Workers int
	// Snapshot, when non-nil, is a frozen CSR view of the run's graph:
	// stranger enumeration and NSG construction route through its
	// allocation-free sorted-slice walks instead of the mutable graph's
	// map walks, with bit-identical results. The caller must take the
	// snapshot from the same graph passed to RunOwner (the fleet
	// scheduler shares one snapshot across every tenant's runs). When
	// nil and the pool config uses the paper's NS, RunOwner freezes its
	// own snapshot — one O(V+E log d) pass that the per-stranger NS
	// computations repay. A custom Pool.NetworkSim keeps the legacy
	// *graph.Graph path, snapshot or not.
	//
	// With a Snapshot set (and the paper's NS), RunOwner also accepts a
	// nil graph: every structural query is answered by the snapshot.
	// This is how mmap-backed snapshot files (graph/snapfile) run — no
	// mutable graph is ever materialized.
	Snapshot *graph.Snapshot
	// Weights, when non-nil, is a shared content-keyed cache for the
	// per-pool PS weight matrices. Pools whose membership, attribute
	// values, attrs and exponent have been seen before — by any owner,
	// tenant, or prior run sharing the cache — reuse the cached matrix
	// instead of rebuilding the O(n²) computation. Matrices are read
	// only; sharing is safe because the engine never mutates them.
	Weights *cluster.WeightCache
	// Retry controls how transient annotator failures are retried and
	// which deadlines bound queries and the whole session. The zero
	// value performs a single attempt with no deadlines.
	Retry active.RetryPolicy
	// Checkpoint, when non-nil, receives a deep-copied snapshot of the
	// run's checkpoint after every completed round (and once more when
	// the run ends). A returned error aborts the run — losing
	// durability silently would defeat the point.
	Checkpoint func(*Checkpoint) error
	// Resume, when non-nil, seeds the run with a prior checkpoint's
	// answers: questions already answered are replayed from the cache
	// and never re-asked, and the finished run is byte-identical to an
	// uninterrupted one. The checkpoint must match the run's owner and
	// seed.
	Resume *Checkpoint
	// AbandonGrace extends each in-flight owner query this long past
	// cancellation of the run's context, so the answer currently being
	// produced can still complete and be checkpointed. New queries are
	// never started after cancellation regardless. 0 means in-flight
	// queries are canceled immediately with the run.
	AbandonGrace time.Duration
	// Observer, when non-nil, receives the structured event stream of
	// the run: run/pool boundaries, every owner query, every learning
	// round. The stream is identical for every Workers value on complete
	// runs — the parallel path buffers per-pool events and flushes them
	// in pool order. Nil costs nothing (no events are built).
	Observer obs.Observer
	// Trace tunes what the Observer stream carries (e.g. order-sensitive
	// stage digests for the determinism auditor).
	Trace obs.TraceConfig
	// Metrics, when non-nil, accumulates lock-free per-stage counters
	// across runs (pool builds, rounds, queries, solver iterations,
	// cache hits, retries). Shared safely by concurrent engines.
	Metrics *obs.Metrics
	// Tenant stamps every emitted event with a tenant identity; the
	// fleet scheduler sets it so multi-tenant streams stay attributable.
	Tenant string
	// Reuse, when non-nil, is a prior complete OwnerRun for the same
	// owner, seed and options whose per-pool results may be spliced into
	// this run (incremental re-estimation). The pipeline still rebuilds
	// strangers, NSG and pools from the current graph; a rebuilt pool is
	// then served from the prior run — session skipped entirely — iff it
	// sits at the same index with the same id and member list and its
	// weight-content key (cluster.PoolKey) is unchanged. Those conditions
	// pin every input of the session (members, weight matrix, the
	// index-derived RNG stream), so with a deterministic annotator and
	// unchanged Learn options the spliced result is byte-identical to a
	// full recompute. A Reuse run that does not match (different owner,
	// seed, or a partial run) is ignored — the engine silently falls back
	// to computing every pool.
	Reuse *OwnerRun
	// OnPool, when non-nil, is invoked once per pool, in pool order, as
	// results become final: on the serial path right after each pool
	// finishes (streaming), on the parallel path at merge time after all
	// sessions complete. Partial pools are reported before fallback
	// labels are synthesized; the assembled report remains authoritative.
	// The callback must not mutate the run.
	OnPool func(run *OwnerRun, pr PoolRun, index, total int)
}

// DefaultConfig returns the paper's experimental configuration.
func DefaultConfig() Config {
	return Config{
		Pool:  cluster.DefaultPoolConfig(),
		Learn: active.DefaultConfig(),
		Seed:  1,
	}
}

// Validate checks the engine configuration and returns a descriptive
// error for out-of-range fields instead of letting the run silently
// misbehave.
func (c Config) Validate() error {
	if err := c.Pool.Validate(); err != nil {
		return err
	}
	if err := c.Learn.Validate(); err != nil {
		return err
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers must be >= 0, got %d", c.Workers)
	}
	if c.WeightExponent < 0 {
		return fmt.Errorf("core: WeightExponent must be >= 0, got %g", c.WeightExponent)
	}
	if c.AbandonGrace < 0 {
		return fmt.Errorf("core: AbandonGrace must be >= 0, got %v", c.AbandonGrace)
	}
	return c.Retry.Validate()
}

// PoolRun is the outcome of one pool's learning session.
type PoolRun struct {
	Pool   cluster.Pool
	Result *active.Result
	// Status distinguishes pools whose session ran to its stopping
	// rule (PoolComplete) from pools interrupted by abandonment or
	// cancellation (PoolPartial).
	Status PoolStatus
	// Fallback marks the members of a partial pool whose final label
	// was synthesized (last predictions or majority/prior) rather than
	// learned by a finished session. Nil for complete pools.
	Fallback map[graph.UserID]bool
	// WeightKey is the content key of the pool's weight artifacts
	// (cluster.PoolKey) — the pool-level invalidation handle for
	// incremental re-estimation. Zero on interrupted pools that never
	// reached their weight build.
	WeightKey cluster.Key
	// Reused reports that this pool's Result was spliced from
	// Config.Reuse instead of re-running its session.
	Reused bool
}

// OwnerRun is the outcome of the full pipeline for one owner.
type OwnerRun struct {
	Owner     graph.UserID
	Strangers []graph.UserID
	NSG       *cluster.NSG
	Pools     []PoolRun
	// Partial reports that the run degraded gracefully: the owner
	// abandoned the session or the context was canceled, finished
	// pools kept their learned labels, and interrupted pools carry
	// fallback labels (see PoolRun.Status / Fallback).
	Partial bool
	// Cause is the interruption behind a partial run (ErrAbandoned or
	// a context error); nil for complete runs.
	Cause error
	// Seed records the Config.Seed the run was produced under, so a
	// later run can check the per-pool RNG streams line up before
	// splicing results via Config.Reuse.
	Seed int64
}

// Labels gathers the final risk label of every stranger across pools.
func (r *OwnerRun) Labels() map[graph.UserID]label.Label {
	out := make(map[graph.UserID]label.Label, len(r.Strangers))
	for _, p := range r.Pools {
		for u, l := range p.Result.Labels {
			out[u] = l
		}
	}
	return out
}

// QueriedCount sums the owner labels collected across pools — the
// owner effort the paper wants minimized (paper mean: 86 labels for
// 3,661 strangers).
func (r *OwnerRun) QueriedCount() int {
	total := 0
	for _, p := range r.Pools {
		total += p.Result.QueriedCount()
	}
	return total
}

// ExactMatchRate returns the fraction of validation comparisons where
// the previous round's prediction exactly matched the owner label
// (paper: 83.36%), plus the number of comparisons. NaN with no
// comparisons.
func (r *OwnerRun) ExactMatchRate() (rate float64, total int) {
	matches := 0
	for _, p := range r.Pools {
		m, t := p.Result.ExactMatchStats()
		matches += m
		total += t
	}
	if total == 0 {
		return math.NaN(), 0
	}
	return float64(matches) / float64(total), total
}

// MeanRoundsToStop averages session length over the owner's
// non-trivial pools (paper: 3.29 rounds). NaN when every pool was
// trivial.
func (r *OwnerRun) MeanRoundsToStop() float64 {
	var rounds []float64
	for _, p := range r.Pools {
		if p.Result.Reason == active.StopTrivial {
			continue
		}
		rounds = append(rounds, float64(p.Result.RoundsToStop()))
	}
	return stats.Mean(rounds)
}

// FinalRMSE averages the last observed validation RMSE over pools that
// measured one.
func (r *OwnerRun) FinalRMSE() float64 {
	var vals []float64
	for _, p := range r.Pools {
		for i := len(p.Result.Rounds) - 1; i >= 0; i-- {
			if !math.IsNaN(p.Result.Rounds[i].RMSE) {
				vals = append(vals, p.Result.Rounds[i].RMSE)
				break
			}
		}
	}
	return stats.MeanIgnoringNaN(vals)
}

// VeryRiskyShareByNSG returns, per network similarity group (1-based
// index = slice index + 1), the share of strangers labeled very risky
// — Figure 7's series. Groups without strangers yield NaN.
func (r *OwnerRun) VeryRiskyShareByNSG() []float64 {
	labels := r.Labels()
	out := make([]float64, r.NSG.Alpha)
	for gi, members := range r.NSG.Groups {
		if len(members) == 0 {
			out[gi] = math.NaN()
			continue
		}
		very := 0
		for _, m := range members {
			if labels[m] == label.VeryRisky {
				very++
			}
		}
		out[gi] = float64(very) / float64(len(members))
	}
	return out
}

// Engine runs the pipeline.
type Engine struct {
	cfg Config
}

// New returns an engine with the given config.
func New(cfg Config) *Engine { return &Engine{cfg: cfg} }

// RunOwner executes the pipeline for one owner. confidence, when not
// NaN, overrides Learn.Confidence (the paper lets each owner choose
// their own). The annotator supplies owner labels on demand; wrap a
// legacy infallible annotator with active.Infallible.
//
// ctx bounds the run: cancellation (or Retry.SessionTimeout expiring)
// aborts cleanly at the next query boundary. Interruptions — ctx
// cancellation or the annotator returning active.ErrAbandoned — do
// not fail the run; it degrades gracefully into a partial OwnerRun
// (Partial true, Cause set) in which finished pools keep their
// learned labels and interrupted pools carry fallback labels. Only
// hard failures (unexpected annotator errors, classifier errors,
// failed checkpoint writes) return an error.
//
// With Config.Workers != 1 the per-pool work — weight-matrix builds
// and active-learning sessions — runs concurrently, bounded by
// Workers. The returned OwnerRun is identical to the serial one for
// any deterministic annotator: pools are merged back in pool order,
// every pool keeps its own derived RNG stream, and annotator queries
// are serialized in a deterministic rotation (see runPoolsParallel).
// The annotator therefore never needs to be thread-safe; it must only
// be deterministic per stranger if reproducible reports are wanted.
func (e *Engine) RunOwner(ctx context.Context, g *graph.Graph, store *profile.Store, owner graph.UserID, ann active.FallibleAnnotator, confidence float64) (*OwnerRun, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := e.cfg.Validate(); err != nil {
		return nil, err
	}
	if store == nil {
		return nil, fmt.Errorf("core: profile store must not be nil")
	}
	// A nil graph is allowed when a frozen snapshot can serve every
	// structural query (the mmap-backed path, where no mutable graph
	// ever exists); the legacy NetworkSim path walks the graph itself.
	if g == nil && (e.cfg.Snapshot == nil || e.cfg.Pool.NetworkSim != nil) {
		return nil, fmt.Errorf("core: graph and profile store must not be nil")
	}
	if ann == nil {
		return nil, fmt.Errorf("core: annotator must not be nil")
	}
	if g != nil {
		if !g.HasNode(owner) {
			return nil, fmt.Errorf("core: owner %d not in graph", owner)
		}
	} else if !e.cfg.Snapshot.HasNode(owner) {
		return nil, fmt.Errorf("core: owner %d not in graph", owner)
	}
	if e.cfg.Resume != nil {
		if err := e.cfg.Resume.validateResume(owner, e.cfg.Seed); err != nil {
			return nil, err
		}
	}
	if e.cfg.Retry.SessionTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.Retry.SessionTimeout)
		defer cancel()
	}
	var strangers []graph.UserID
	var pools []cluster.Pool
	var nsg *cluster.NSG
	var err error
	if e.cfg.Pool.NetworkSim == nil {
		// Fast path: the paper's NS over a frozen snapshot. Bit-identical
		// to the mutable-graph path (see the snapshot equivalence tests).
		snap := e.cfg.Snapshot
		if snap == nil {
			snap = g.Snapshot()
		}
		strangers = snap.Strangers(owner)
		pools, nsg, err = cluster.BuildPoolsSnapshot(snap, store, owner, strangers, e.cfg.Pool)
	} else {
		// Measure ablations supply graph-based measures; stay on the
		// legacy path.
		strangers = g.Strangers(owner)
		pools, nsg, err = cluster.BuildPools(g, store, owner, strangers, e.cfg.Pool)
	}
	if err != nil {
		return nil, fmt.Errorf("core: owner %d: %w", owner, err)
	}

	run := &OwnerRun{Owner: owner, Strangers: strangers, NSG: nsg, Seed: e.cfg.Seed}
	learn := e.cfg.Learn
	if !math.IsNaN(confidence) {
		learn.Confidence = confidence
	}

	if m := e.cfg.Metrics; m != nil {
		m.Runs.Add(1)
		m.NSBuilds.Add(uint64(len(strangers)))
		m.PoolsBuilt.Add(uint64(len(pools)))
		if e.cfg.Pool.Strategy == cluster.NPP {
			m.SqueezerPasses.Add(uint64(nonEmptyGroups(nsg)))
		}
		for _, p := range pools {
			m.PoolSizes.Observe(len(p.Members))
		}
		if e.cfg.Weights != nil {
			e.cfg.Weights.SetMetrics(m)
		}
	}
	if sink := e.cfg.Observer; sink != nil {
		sink.Observe(obs.Event{Kind: obs.KindRunStart, Tenant: e.cfg.Tenant, Owner: int64(owner), N: len(strangers)})
		if e.cfg.Trace.Digests {
			sink.Observe(obs.Event{Kind: obs.KindNSG, Tenant: e.cfg.Tenant, Owner: int64(owner), N: nonEmptyGroups(nsg), Digest: nsgDigest(nsg)})
			sink.Observe(obs.Event{Kind: obs.KindPools, Tenant: e.cfg.Tenant, Owner: int64(owner), N: len(pools), Digest: poolsDigest(pools)})
		}
	}

	// Assemble the fault-tolerance middleware around the caller's
	// annotator, innermost first: retries for transient failures, the
	// abandonment grace window, then the shared abandonment latch. The
	// per-pool layers (replay cache, checkpoint recorder) are stacked
	// on top by chain(), and the parallel path finally adds the turn
	// gate above everything so cached and fresh queries alike keep
	// their deterministic slot in the rotation.
	var k *checkpointer
	if e.cfg.Checkpoint != nil {
		k = newCheckpointer(owner, e.cfg.Seed, e.cfg.Checkpoint)
	}
	var onRetry func()
	if m := e.cfg.Metrics; m != nil {
		onRetry = func() { m.Retries.Add(1) }
	}
	base := active.WithRetryHook(ann, e.cfg.Retry, onRetry)
	if e.cfg.AbandonGrace > 0 {
		base = graceAnnotator{grace: e.cfg.AbandonGrace, inner: base}
	}
	base = latchAnnotator{latch: &abandonLatch{}, inner: base}
	chain := func(poolID string) active.FallibleAnnotator {
		a := base
		if e.cfg.Resume != nil {
			if pc := e.cfg.Resume.Pools[poolID]; pc != nil && len(pc.Answers) > 0 {
				a = replayAnnotator{cache: pc.answers(), inner: a}
			}
		}
		if k != nil {
			a = recordAnnotator{k: k, poolID: poolID, inner: a}
		}
		return a
	}

	exp := e.cfg.WeightExponent
	if exp == 0 {
		exp = 4
	}
	reuse := e.reusePlan(store, owner, pools, exp)
	if workers := parallel.ResolveWorkers(e.cfg.Workers); workers > 1 && len(pools) > 1 {
		if err := e.runPoolsParallel(ctx, run, store, owner, pools, chain, k, learn, exp, workers, reuse); err != nil {
			return nil, err
		}
	} else if err := e.runPoolsSerial(ctx, run, store, owner, pools, chain, k, learn, exp, reuse); err != nil {
		return nil, err
	}
	if run.Partial {
		fillFallbacks(run)
	}
	if err := k.flush(); err != nil {
		return nil, err
	}
	if sink := e.cfg.Observer; sink != nil {
		ev := obs.Event{Kind: obs.KindRunEnd, Tenant: e.cfg.Tenant, Owner: int64(owner), N: run.QueriedCount()}
		if run.Partial {
			ev.Note = "partial"
		}
		sink.Observe(ev)
	}
	return run, nil
}

// nonEmptyGroups counts the NSG groups that actually hold strangers —
// the number of Squeezer passes NPP pooling performs.
func nonEmptyGroups(nsg *cluster.NSG) int {
	n := 0
	for _, g := range nsg.Groups {
		if len(g) > 0 {
			n++
		}
	}
	return n
}

// nsgDigest fingerprints NSG membership: group index, size, and member
// ids in stored order. Any assignment or ordering difference between
// two runs changes it.
func nsgDigest(nsg *cluster.NSG) obs.Digest {
	d := obs.NewDigest()
	for gi, g := range nsg.Groups {
		d = d.Int(int64(gi)).Int(int64(len(g)))
		for _, m := range g {
			d = d.Int(int64(m))
		}
	}
	return d
}

// poolsDigest fingerprints the pool partition: pool ids, sizes and
// member order — the inputs every downstream stage depends on.
func poolsDigest(pools []cluster.Pool) obs.Digest {
	d := obs.NewDigest()
	for _, p := range pools {
		d = d.Str(p.ID()).Int(int64(len(p.Members)))
		for _, m := range p.Members {
			d = d.Int(int64(m))
		}
	}
	return d
}

// poolObserve adapts sink into the active session's per-event hook,
// stamping tenant/owner/pool identity onto every event. A nil sink
// yields a nil hook so the session skips event construction entirely.
func (e *Engine) poolObserve(sink obs.Observer, owner graph.UserID, poolID string) func(obs.Event) {
	if sink == nil {
		return nil
	}
	tenant := e.cfg.Tenant
	return func(ev obs.Event) {
		ev.Tenant = tenant
		ev.Owner = int64(owner)
		ev.Pool = poolID
		sink.Observe(ev)
	}
}

// newClassifier builds a fresh per-pool harmonic classifier, wired into
// the metrics' solver counters when configured.
func (e *Engine) newClassifier() *classify.Harmonic {
	h := classify.NewHarmonic()
	if m := e.cfg.Metrics; m != nil {
		h.Iterations = func(iters int) {
			m.HarmonicSolves.Add(1)
			m.HarmonicIters.Add(uint64(iters))
			m.SolveIters.Observe(iters)
		}
	}
	return h
}

// reusePlan maps each freshly-built pool index to the prior PoolRun
// (from Config.Reuse) whose result can be spliced in verbatim, or nil
// where the pool must run. A pool is reusable iff the prior run
// matches this one's owner and seed, completed fully, and the pool at
// the same index has the same id, identical members and an unchanged
// weight-content key — together those pin every session input: the
// member list, the weight matrix (content-keyed) and the RNG stream
// (derived from seed, owner and pool index). Returns nil when nothing
// is reusable.
func (e *Engine) reusePlan(store *profile.Store, owner graph.UserID, pools []cluster.Pool, exp float64) []*PoolRun {
	prior := e.cfg.Reuse
	if prior == nil || prior.Owner != owner || prior.Seed != e.cfg.Seed || prior.Partial {
		return nil
	}
	var plan []*PoolRun
	n := len(pools)
	if len(prior.Pools) < n {
		n = len(prior.Pools)
	}
	for i := 0; i < n; i++ {
		pp := &prior.Pools[i]
		if pp.Status != PoolComplete || pp.Result == nil || pp.WeightKey.IsZero() {
			continue
		}
		if pp.Pool.ID() != pools[i].ID() || !sameMembers(pp.Pool.Members, pools[i].Members) {
			continue
		}
		if cluster.PoolKey(store, pools[i], e.cfg.PSAttributes, exp) != pp.WeightKey {
			continue
		}
		if plan == nil {
			plan = make([]*PoolRun, len(pools))
		}
		plan[i] = pp
	}
	return plan
}

// sameMembers reports whether two member lists are identical in
// content and order (pool order is part of the session's inputs).
func sameMembers(a, b []graph.UserID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// reusedPoolRun splices a prior pool result into the current run.
func reusedPoolRun(pool cluster.Pool, prior *PoolRun) PoolRun {
	return PoolRun{
		Pool:      pool,
		Result:    prior.Result,
		Status:    PoolComplete,
		WeightKey: prior.WeightKey,
		Reused:    true,
	}
}

// emitPool delivers one finalized pool to the OnPool callback.
func (e *Engine) emitPool(run *OwnerRun, pr PoolRun, index, total int) {
	if e.cfg.OnPool != nil {
		e.cfg.OnPool(run, pr, index, total)
	}
}

// poolWeights builds (or, with a shared Weights cache configured,
// fetches) the pool's PS weight matrix. Cached matrices are shared and
// read-only — identical by content to a fresh build.
func (e *Engine) poolWeights(store *profile.Store, pool cluster.Pool, exp float64) ([][]float64, error) {
	if e.cfg.Weights != nil {
		return e.cfg.Weights.PoolWeights(store, pool, e.cfg.PSAttributes, exp)
	}
	return cluster.PoolWeights(store, pool, e.cfg.PSAttributes, exp)
}

// runPoolsSerial is the legacy one-pool-at-a-time path (Workers == 1,
// or a single pool). On interruption it stops asking questions: the
// interrupted pool keeps its partial result and every remaining pool
// is synthesized as an empty partial run for fillFallbacks to
// complete. Pools with a reuse plan entry splice the prior result and
// skip their session (and weight build) entirely.
func (e *Engine) runPoolsSerial(ctx context.Context, run *OwnerRun, store *profile.Store, owner graph.UserID, pools []cluster.Pool, chain func(string) active.FallibleAnnotator, k *checkpointer, learn active.Config, exp float64, reuse []*PoolRun) error {
	labelsTotal := 0
	sink := e.cfg.Observer
	for pi, pool := range pools {
		poolID := pool.ID()
		if run.Partial {
			pr := PoolRun{Pool: pool, Result: emptyInterruptedResult(pool), Status: PoolPartial}
			run.Pools = append(run.Pools, pr)
			if sink != nil {
				sink.Observe(obs.Event{Kind: obs.KindPoolStart, Tenant: e.cfg.Tenant, Owner: int64(owner), Pool: poolID, N: len(pool.Members)})
				sink.Observe(obs.Event{Kind: obs.KindPoolEnd, Tenant: e.cfg.Tenant, Owner: int64(owner), Pool: poolID, Note: "interrupted"})
			}
			e.emitPool(run, pr, pi, len(pools))
			if e.cfg.Progress != nil {
				e.cfg.Progress(pi+1, len(pools), labelsTotal)
			}
			continue
		}
		if reuse != nil && reuse[pi] != nil {
			pr := reusedPoolRun(pool, reuse[pi])
			run.Pools = append(run.Pools, pr)
			if k != nil {
				k.markDone(poolID)
			}
			if sink != nil {
				sink.Observe(obs.Event{Kind: obs.KindPoolStart, Tenant: e.cfg.Tenant, Owner: int64(owner), Pool: poolID, N: len(pool.Members)})
				sink.Observe(obs.Event{Kind: obs.KindPoolEnd, Tenant: e.cfg.Tenant, Owner: int64(owner), Pool: poolID, N: len(pr.Result.Rounds), Note: "reused"})
			}
			if m := e.cfg.Metrics; m != nil {
				m.PoolsReused.Add(1)
			}
			e.emitPool(run, pr, pi, len(pools))
			if e.cfg.Progress != nil {
				e.cfg.Progress(pi+1, len(pools), labelsTotal)
			}
			continue
		}
		if sink != nil {
			sink.Observe(obs.Event{Kind: obs.KindPoolStart, Tenant: e.cfg.Tenant, Owner: int64(owner), Pool: poolID, N: len(pool.Members)})
		}
		var wstart time.Time
		if sink != nil {
			wstart = time.Now()
		}
		weights, err := e.poolWeights(store, pool, exp)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		wkey := cluster.PoolKey(store, pool, e.cfg.PSAttributes, exp)
		if sink != nil {
			sink.Observe(obs.Event{Kind: obs.KindPoolWeights, Tenant: e.cfg.Tenant, Owner: int64(owner), Pool: poolID, N: len(pool.Members), Dur: time.Since(wstart)})
		}
		cfg := learn
		cfg.Rand = rand.New(rand.NewSource(poolSeed(e.cfg.Seed, owner, pi)))
		if k != nil {
			cfg.AfterRound = func(r active.Round) error { return k.afterRound(poolID, r) }
		}
		cfg.Observe = e.poolObserve(sink, owner, poolID)
		cfg.Digests = e.cfg.Trace.Digests
		if cfg.Classifier == nil {
			cfg.Classifier = e.newClassifier()
		}
		sess, err := active.NewSession(pool.Members, weights, chain(poolID), cfg)
		if err != nil {
			return fmt.Errorf("core: pool %s: %w", poolID, err)
		}
		res, err := sess.RunContext(ctx)
		switch {
		case err == nil:
			if k != nil {
				k.markDone(poolID)
			}
			run.Pools = append(run.Pools, PoolRun{Pool: pool, Result: res, Status: PoolComplete, WeightKey: wkey})
		case isInterrupt(err) && res != nil:
			run.Partial = true
			run.Cause = err
			run.Pools = append(run.Pools, PoolRun{Pool: pool, Result: res, Status: PoolPartial, WeightKey: wkey})
		default:
			return fmt.Errorf("core: pool %s: %w", poolID, err)
		}
		if sink != nil {
			ev := obs.Event{Kind: obs.KindPoolEnd, Tenant: e.cfg.Tenant, Owner: int64(owner), Pool: poolID, N: len(res.Rounds), Note: string(res.Reason)}
			sink.Observe(ev)
		}
		if m := e.cfg.Metrics; m != nil {
			m.Rounds.Add(uint64(len(res.Rounds)))
			m.RoundsPerPool.Observe(len(res.Rounds))
			m.Queries.Add(uint64(res.QueriedCount()))
		}
		// Satellite fix: accumulate the owner-label total instead of
		// rescanning every finished pool via run.QueriedCount().
		labelsTotal += res.QueriedCount()
		e.emitPool(run, run.Pools[len(run.Pools)-1], pi, len(pools))
		if e.cfg.Progress != nil {
			e.cfg.Progress(pi+1, len(pools), labelsTotal)
		}
	}
	return nil
}

// emptyInterruptedResult stands in for a session that was never
// started because the run was already interrupted.
func emptyInterruptedResult(pool cluster.Pool) *active.Result {
	return &active.Result{
		Pool:         pool.Members,
		Labels:       make(map[graph.UserID]label.Label),
		OwnerLabeled: make(map[graph.UserID]bool),
		Predicted:    make(map[graph.UserID]classify.Prediction),
		Reason:       active.StopInterrupted,
	}
}

// poolSeed derives the per-pool sampling RNG seed. It depends only on
// the base seed, the owner and the pool's index in pool order, so the
// serial and parallel paths draw identical query samples.
func poolSeed(seed int64, owner graph.UserID, pool int) int64 {
	return seed + int64(owner)*7919 + int64(pool)*104729
}
