// Package core orchestrates the full risk-estimation pipeline of the
// paper for one owner: stranger enumeration → network similarity
// groups → profile clustering → per-pool active-learning sessions →
// aggregated risk report. It is the internal engine behind the public
// sight package and the experiments harness.
package core

import (
	"fmt"
	"math"
	"math/rand"

	"sightrisk/internal/active"
	"sightrisk/internal/cluster"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/parallel"
	"sightrisk/internal/profile"
	"sightrisk/internal/stats"
)

// Config parameterizes an engine run.
type Config struct {
	// Pool controls NSG/Squeezer pool construction (paper: α = 10,
	// β = 0.4, NPP strategy).
	Pool cluster.PoolConfig
	// Learn controls the per-pool active-learning sessions. The
	// Confidence field may be overridden per owner via RunOwner's
	// confidence argument (pass NaN to keep Learn.Confidence).
	Learn active.Config
	// PSAttributes are the attributes the classifier's edge weights
	// are computed over; empty means the paper's clustering
	// attributes.
	PSAttributes []profile.Attribute
	// Progress, when non-nil, is invoked after each pool's session
	// completes with the number of pools finished, the total pool
	// count, and the owner labels collected so far. Useful for
	// interactive frontends (sessions can take a while on big
	// neighborhoods).
	Progress func(poolsDone, poolsTotal, labelsSoFar int)
	// WeightExponent sharpens classifier edge weights: w = PS^exp.
	// Zhu et al. use a rapidly decaying RBF kernel over Euclidean
	// distance; raising the categorical PS to a power plays the same
	// role, letting same-attribute neighbors dominate label
	// propagation. 0 means the default of 4; 1 uses raw PS.
	WeightExponent float64
	// Seed drives the sampling RNGs (one derived stream per pool).
	Seed int64
	// Workers bounds how many per-pool computations (weight-matrix
	// builds and classifier solves) run concurrently. 0 means
	// runtime.GOMAXPROCS(0); 1 runs the exact legacy serial path.
	// Results are identical for every value — see RunOwner.
	Workers int
}

// DefaultConfig returns the paper's experimental configuration.
func DefaultConfig() Config {
	return Config{
		Pool:  cluster.DefaultPoolConfig(),
		Learn: active.DefaultConfig(),
		Seed:  1,
	}
}

// PoolRun is the outcome of one pool's learning session.
type PoolRun struct {
	Pool   cluster.Pool
	Result *active.Result
}

// OwnerRun is the outcome of the full pipeline for one owner.
type OwnerRun struct {
	Owner     graph.UserID
	Strangers []graph.UserID
	NSG       *cluster.NSG
	Pools     []PoolRun
}

// Labels gathers the final risk label of every stranger across pools.
func (r *OwnerRun) Labels() map[graph.UserID]label.Label {
	out := make(map[graph.UserID]label.Label, len(r.Strangers))
	for _, p := range r.Pools {
		for u, l := range p.Result.Labels {
			out[u] = l
		}
	}
	return out
}

// QueriedCount sums the owner labels collected across pools — the
// owner effort the paper wants minimized (paper mean: 86 labels for
// 3,661 strangers).
func (r *OwnerRun) QueriedCount() int {
	total := 0
	for _, p := range r.Pools {
		total += p.Result.QueriedCount()
	}
	return total
}

// ExactMatchRate returns the fraction of validation comparisons where
// the previous round's prediction exactly matched the owner label
// (paper: 83.36%), plus the number of comparisons. NaN with no
// comparisons.
func (r *OwnerRun) ExactMatchRate() (rate float64, total int) {
	matches := 0
	for _, p := range r.Pools {
		m, t := p.Result.ExactMatchStats()
		matches += m
		total += t
	}
	if total == 0 {
		return math.NaN(), 0
	}
	return float64(matches) / float64(total), total
}

// MeanRoundsToStop averages session length over the owner's
// non-trivial pools (paper: 3.29 rounds). NaN when every pool was
// trivial.
func (r *OwnerRun) MeanRoundsToStop() float64 {
	var rounds []float64
	for _, p := range r.Pools {
		if p.Result.Reason == active.StopTrivial {
			continue
		}
		rounds = append(rounds, float64(p.Result.RoundsToStop()))
	}
	return stats.Mean(rounds)
}

// FinalRMSE averages the last observed validation RMSE over pools that
// measured one.
func (r *OwnerRun) FinalRMSE() float64 {
	var vals []float64
	for _, p := range r.Pools {
		for i := len(p.Result.Rounds) - 1; i >= 0; i-- {
			if !math.IsNaN(p.Result.Rounds[i].RMSE) {
				vals = append(vals, p.Result.Rounds[i].RMSE)
				break
			}
		}
	}
	return stats.MeanIgnoringNaN(vals)
}

// VeryRiskyShareByNSG returns, per network similarity group (1-based
// index = slice index + 1), the share of strangers labeled very risky
// — Figure 7's series. Groups without strangers yield NaN.
func (r *OwnerRun) VeryRiskyShareByNSG() []float64 {
	labels := r.Labels()
	out := make([]float64, r.NSG.Alpha)
	for gi, members := range r.NSG.Groups {
		if len(members) == 0 {
			out[gi] = math.NaN()
			continue
		}
		very := 0
		for _, m := range members {
			if labels[m] == label.VeryRisky {
				very++
			}
		}
		out[gi] = float64(very) / float64(len(members))
	}
	return out
}

// Engine runs the pipeline.
type Engine struct {
	cfg Config
}

// New returns an engine with the given config.
func New(cfg Config) *Engine { return &Engine{cfg: cfg} }

// RunOwner executes the pipeline for one owner. confidence, when not
// NaN, overrides Learn.Confidence (the paper lets each owner choose
// their own). The annotator supplies owner labels on demand.
//
// With Config.Workers != 1 the per-pool work — weight-matrix builds
// and active-learning sessions — runs concurrently, bounded by
// Workers. The returned OwnerRun is identical to the serial one for
// any deterministic annotator: pools are merged back in pool order,
// every pool keeps its own derived RNG stream, and annotator queries
// are serialized in a deterministic rotation (see runPoolsParallel).
// The annotator therefore never needs to be thread-safe; it must only
// be deterministic per stranger if reproducible reports are wanted.
func (e *Engine) RunOwner(g *graph.Graph, store *profile.Store, owner graph.UserID, ann active.Annotator, confidence float64) (*OwnerRun, error) {
	if g == nil || store == nil {
		return nil, fmt.Errorf("core: graph and profile store must not be nil")
	}
	if !g.HasNode(owner) {
		return nil, fmt.Errorf("core: owner %d not in graph", owner)
	}
	strangers := g.Strangers(owner)
	pools, nsg, err := cluster.BuildPools(g, store, owner, strangers, e.cfg.Pool)
	if err != nil {
		return nil, fmt.Errorf("core: owner %d: %w", owner, err)
	}

	run := &OwnerRun{Owner: owner, Strangers: strangers, NSG: nsg}
	learn := e.cfg.Learn
	if !math.IsNaN(confidence) {
		learn.Confidence = confidence
	}

	exp := e.cfg.WeightExponent
	if exp == 0 {
		exp = 4
	}
	if workers := parallel.ResolveWorkers(e.cfg.Workers); workers > 1 && len(pools) > 1 {
		poolRuns, err := e.runPoolsParallel(store, owner, pools, ann, learn, exp, workers)
		if err != nil {
			return nil, err
		}
		run.Pools = poolRuns
		return run, nil
	}
	for pi, pool := range pools {
		weights, err := cluster.PoolWeights(store, pool, e.cfg.PSAttributes, exp)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		cfg := learn
		cfg.Rand = rand.New(rand.NewSource(poolSeed(e.cfg.Seed, owner, pi)))
		sess, err := active.NewSession(pool.Members, weights, ann, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: pool %s: %w", pool.ID(), err)
		}
		res, err := sess.Run()
		if err != nil {
			return nil, fmt.Errorf("core: pool %s: %w", pool.ID(), err)
		}
		run.Pools = append(run.Pools, PoolRun{Pool: pool, Result: res})
		if e.cfg.Progress != nil {
			e.cfg.Progress(pi+1, len(pools), run.QueriedCount())
		}
	}
	return run, nil
}

// poolSeed derives the per-pool sampling RNG seed. It depends only on
// the base seed, the owner and the pool's index in pool order, so the
// serial and parallel paths draw identical query samples.
func poolSeed(seed int64, owner graph.UserID, pool int) int64 {
	return seed + int64(owner)*7919 + int64(pool)*104729
}
