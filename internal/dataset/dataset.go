// Package dataset bundles everything one risk-estimation study needs —
// the social graph, the profile store, the owner roster with their
// confidences and θ weights, and any collected risk labels — and
// persists it as a single JSON document. The sightctl command uses it
// to generate, inspect and re-run studies, and the crawler uses it for
// incremental snapshots.
package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"sightrisk/internal/benefit"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/profile"
	"sightrisk/internal/synthetic"
)

// OwnerRecord is one study participant.
type OwnerRecord struct {
	// ID is the owner's user id in the dataset's graph.
	ID graph.UserID `json:"id"`
	// Confidence is the owner's self-reported confidence in [0,100].
	Confidence float64 `json:"confidence"`
	// Theta holds the owner's benefit-item weights, keyed by item name.
	Theta map[string]float64 `json:"theta,omitempty"`
	// Labels are collected owner risk judgments, keyed by stranger id.
	Labels map[graph.UserID]label.Label `json:"labels,omitempty"`
}

// Dataset is a persistable study.
type Dataset struct {
	// Name is a free-form label for the study.
	Name string `json:"name"`
	// Graph is the study's social graph.
	Graph *graph.Graph `json:"graph"`
	// Profiles holds every user's profile.
	Profiles []*profile.Profile `json:"profiles"`
	// Owners are the study participants with their ground truth.
	Owners []OwnerRecord `json:"owners"`
}

// New returns an empty dataset with an initialized graph.
func New(name string) *Dataset {
	return &Dataset{Name: name, Graph: graph.New()}
}

// FromStudy converts a generated synthetic study (including each
// owner's ground-truth labels for every stranger, materialized through
// the simulated annotator) into a dataset. labelAll controls whether
// ground-truth labels are materialized; without them the dataset
// carries only structure and the annotator must be recreated.
func FromStudy(study *synthetic.Study, labelAll bool) *Dataset {
	ds := &Dataset{Name: "synthetic-study", Graph: study.Graph}
	for _, u := range study.Profiles.Users() {
		ds.Profiles = append(ds.Profiles, study.Profiles.Get(u))
	}
	for _, o := range study.Owners {
		rec := OwnerRecord{
			ID:         o.ID,
			Confidence: o.Confidence,
			Theta:      thetaToMap(o.Theta),
		}
		if labelAll {
			rec.Labels = make(map[graph.UserID]label.Label, len(o.Strangers()))
			for _, s := range o.Strangers() {
				rec.Labels[s] = o.LabelStranger(s)
			}
		}
		ds.Owners = append(ds.Owners, rec)
	}
	return ds
}

func thetaToMap(t benefit.Theta) map[string]float64 {
	out := make(map[string]float64, len(t))
	for k, v := range t {
		out[string(k)] = v
	}
	return out
}

// ProfileStore reconstructs a profile.Store from the dataset.
func (d *Dataset) ProfileStore() *profile.Store {
	store := profile.NewStore()
	for _, p := range d.Profiles {
		store.Put(p)
	}
	return store
}

// Owner returns the record for the given owner id.
func (d *Dataset) Owner(id graph.UserID) (OwnerRecord, bool) {
	for _, o := range d.Owners {
		if o.ID == id {
			return o, true
		}
	}
	return OwnerRecord{}, false
}

// OwnerIDs lists the owners in ascending order.
func (d *Dataset) OwnerIDs() []graph.UserID {
	out := make([]graph.UserID, 0, len(d.Owners))
	for _, o := range d.Owners {
		out = append(out, o.ID)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks internal consistency: owners exist in the graph,
// labels are valid and refer to graph nodes, profiles refer to graph
// nodes.
func (d *Dataset) Validate() error {
	if d.Graph == nil {
		return fmt.Errorf("dataset: nil graph")
	}
	for _, p := range d.Profiles {
		if !d.Graph.HasNode(p.User) {
			return fmt.Errorf("dataset: profile for unknown user %d", p.User)
		}
	}
	for _, o := range d.Owners {
		if !d.Graph.HasNode(o.ID) {
			return fmt.Errorf("dataset: owner %d not in graph", o.ID)
		}
		for s, l := range o.Labels {
			if !l.Valid() {
				return fmt.Errorf("dataset: owner %d has invalid label %d for %d", o.ID, int(l), s)
			}
			if !d.Graph.HasNode(s) {
				return fmt.Errorf("dataset: owner %d labels unknown user %d", o.ID, s)
			}
		}
	}
	return nil
}

// Save writes the dataset as JSON to the named file.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: save: %w", err)
	}
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(d); err != nil {
		f.Close()
		return fmt.Errorf("dataset: save: %w", err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("dataset: save: %w", err)
	}
	return f.Close()
}

// Load reads a dataset from the named JSON file and validates it.
func Load(path string) (*Dataset, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: load: %w", err)
	}
	var d Dataset
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("dataset: load %s: %w", path, err)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: load %s: %w", path, err)
	}
	return &d, nil
}

// StoredAnnotator answers risk queries from a dataset's stored labels.
// Strangers without a stored label yield Fallback (or panic when
// Fallback is unset, signalling a dataset/engine mismatch).
type StoredAnnotator struct {
	// Labels maps stranger id to the stored judgment.
	Labels map[graph.UserID]label.Label
	// Fallback answers strangers missing from Labels (0 panics).
	Fallback label.Label
}

// LabelStranger implements active.Annotator.
func (a StoredAnnotator) LabelStranger(s graph.UserID) label.Label {
	if l, ok := a.Labels[s]; ok {
		return l
	}
	if a.Fallback.Valid() {
		return a.Fallback
	}
	panic(fmt.Sprintf("dataset: no stored label for stranger %d and no fallback", s))
}
