package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"sightrisk/internal/graph"
	"sightrisk/internal/graph/snapfile"
	"sightrisk/internal/profile"
)

// Runtime is a dataset in its serving shape: the frozen graph
// snapshot, a profile store, and the owner roster — everything the
// engine and the fleet need, decoupled from how the dataset is stored.
// A JSON study materializes all of it up front; a packed .snap file
// keeps the graph and profiles on mmap'd pages (Graph is nil,
// profiles materialize lazily) so preloading a million-node dataset
// costs page-table setup, not a parse.
type Runtime struct {
	// Name labels the dataset.
	Name string
	// Graph is the live mutable graph, nil when snapshot-backed.
	Graph *graph.Graph
	// Snapshot is the frozen CSR view every job shares.
	Snapshot *graph.Snapshot
	// Profiles holds the user profiles (lazy when snapshot-backed).
	Profiles *profile.Store
	// Owners are the study participants with their ground truth.
	Owners []OwnerRecord

	closer io.Closer
}

// Owner returns the record for the given owner id.
func (r *Runtime) Owner(id graph.UserID) (OwnerRecord, bool) {
	for _, o := range r.Owners {
		if o.ID == id {
			return o, true
		}
	}
	return OwnerRecord{}, false
}

// Mapped reports whether the runtime is backed by a mapped snapshot
// file rather than materialized JSON.
func (r *Runtime) Mapped() bool { return r.closer != nil }

// Close releases the underlying snapshot mapping, if any. The runtime
// must not be used afterwards.
func (r *Runtime) Close() error {
	if r.closer == nil {
		return nil
	}
	c := r.closer
	r.closer = nil
	return c.Close()
}

// Runtime materializes the dataset's serving shape: one frozen
// snapshot and one profile store, shared by every job that references
// the dataset.
func (d *Dataset) Runtime() *Runtime {
	return &Runtime{
		Name:     d.Name,
		Graph:    d.Graph,
		Snapshot: d.Graph.Snapshot(),
		Profiles: d.ProfileStore(),
		Owners:   d.Owners,
	}
}

// snapAux is the JSON document PackSnap stores in the snapshot file's
// aux section: the dataset metadata the CSR arrays cannot carry.
type snapAux struct {
	Name   string        `json:"name"`
	Owners []OwnerRecord `json:"owners,omitempty"`
}

// PackSnap writes the dataset as a snapshot file (graph/snapfile
// container): CSR arrays plus interned profiles, with the name and
// owner roster in the aux section. The result opens via OpenRuntime
// with mmap — no JSON parse, lazy profiles.
func PackSnap(d *Dataset, path string) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("dataset: pack: %w", err)
	}
	snap := d.Graph.Snapshot()
	table, err := snapfile.TableFromStore(snap.Nodes(), d.ProfileStore())
	if err != nil {
		return fmt.Errorf("dataset: pack: %w", err)
	}
	aux, err := json.Marshal(snapAux{Name: d.Name, Owners: d.Owners})
	if err != nil {
		return fmt.Errorf("dataset: pack: %w", err)
	}
	if err := snapfile.Create(path, snapfile.Contents{Snapshot: snap, Profiles: table, Aux: aux}); err != nil {
		return fmt.Errorf("dataset: pack: %w", err)
	}
	return nil
}

// OpenRuntime opens a dataset file in its serving shape, sniffing the
// format: a snapfile container (by magic) is mmap'd — zero parse, lazy
// profiles — while anything else loads as a JSON dataset. The caller
// owns the returned runtime and must Close it.
func OpenRuntime(path string) (*Runtime, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open %s: %w", path, err)
	}
	head := make([]byte, len(snapfile.Magic))
	n, _ := io.ReadFull(f, head)
	f.Close()
	if n == len(head) && strings.HasPrefix(string(head), snapfile.Magic) {
		return openSnapRuntime(path)
	}
	d, err := Load(path)
	if err != nil {
		return nil, err
	}
	return d.Runtime(), nil
}

// openSnapRuntime maps a snapshot file and assembles the runtime
// around it: the snapshot and profile columns alias the mapped pages,
// and the owner roster decodes from the aux section.
func openSnapRuntime(path string) (*Runtime, error) {
	f, err := snapfile.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open %s: %w", path, err)
	}
	rt := &Runtime{Snapshot: f.Snapshot(), closer: f}
	if table := f.Profiles(); table != nil {
		rt.Profiles = table.Store()
	} else {
		rt.Profiles = profile.NewStore()
	}
	if aux := f.Aux(); len(aux) > 0 {
		var meta snapAux
		if err := json.Unmarshal(aux, &meta); err != nil {
			f.Close()
			return nil, fmt.Errorf("dataset: open %s: aux metadata: %w", path, err)
		}
		rt.Name = meta.Name
		for _, o := range meta.Owners {
			if !rt.Snapshot.HasNode(o.ID) {
				f.Close()
				return nil, fmt.Errorf("dataset: open %s: owner %d not in graph", path, o.ID)
			}
		}
		rt.Owners = meta.Owners
	}
	return rt, nil
}
