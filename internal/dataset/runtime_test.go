package dataset

import (
	"path/filepath"
	"testing"

	"sightrisk/internal/profile"
)

func TestPackSnapOpenRuntime(t *testing.T) {
	ds := FromStudy(study(t), true)
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "study.snap")
	if err := PackSnap(ds, snapPath); err != nil {
		t.Fatalf("pack: %v", err)
	}
	rt, err := OpenRuntime(snapPath)
	if err != nil {
		t.Fatalf("open runtime: %v", err)
	}
	defer rt.Close()

	if !rt.Mapped() {
		t.Fatal("snapshot runtime not mapped")
	}
	if rt.Graph != nil {
		t.Fatal("snapshot runtime carries a live graph")
	}
	if rt.Name != ds.Name {
		t.Fatalf("name %q, want %q", rt.Name, ds.Name)
	}
	if rt.Snapshot.NumNodes() != ds.Graph.NumNodes() || rt.Snapshot.NumEdges() != ds.Graph.NumEdges() {
		t.Fatalf("graph shape changed: %d/%d vs %d/%d",
			rt.Snapshot.NumNodes(), rt.Snapshot.NumEdges(), ds.Graph.NumNodes(), ds.Graph.NumEdges())
	}

	// Owner roster survives through the aux section, labels included.
	if len(rt.Owners) != len(ds.Owners) {
		t.Fatalf("owners = %d, want %d", len(rt.Owners), len(ds.Owners))
	}
	for i, o := range ds.Owners {
		ro := rt.Owners[i]
		if ro.ID != o.ID || ro.Confidence != o.Confidence || len(ro.Labels) != len(o.Labels) {
			t.Fatalf("owner %d record changed in pack round trip", o.ID)
		}
		for s, l := range o.Labels {
			if ro.Labels[s] != l {
				t.Fatalf("owner %d label for %d changed", o.ID, s)
			}
		}
	}
	if _, ok := rt.Owner(rt.Owners[0].ID); !ok {
		t.Fatal("runtime Owner lookup failed")
	}

	// Profiles materialize lazily off the mapped pages and match the
	// JSON store exactly.
	jsonStore := ds.ProfileStore()
	for _, p := range ds.Profiles {
		rp := rt.Profiles.Get(p.User)
		if rp == nil {
			t.Fatalf("profile %d missing from snap runtime", p.User)
		}
		jp := jsonStore.Get(p.User)
		for _, a := range profile.AllAttributes() {
			if rp.Attr(a) != jp.Attr(a) {
				t.Fatalf("profile %d attr %s: %q vs %q", p.User, a, rp.Attr(a), jp.Attr(a))
			}
		}
		for _, it := range profile.Items() {
			if rp.IsVisible(it) != jp.IsVisible(it) {
				t.Fatalf("profile %d item %s visibility differs", p.User, it)
			}
		}
	}
}

func TestOpenRuntimeJSONFallback(t *testing.T) {
	ds := FromStudy(study(t), true)
	path := filepath.Join(t.TempDir(), "study.json")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	rt, err := OpenRuntime(path)
	if err != nil {
		t.Fatalf("open runtime: %v", err)
	}
	defer rt.Close()
	if rt.Mapped() {
		t.Fatal("JSON runtime claims to be mapped")
	}
	if rt.Graph == nil || rt.Snapshot == nil || rt.Profiles == nil {
		t.Fatal("JSON runtime incomplete")
	}
	if rt.Snapshot.NumNodes() != ds.Graph.NumNodes() {
		t.Fatal("graph shape changed")
	}
	if len(rt.Owners) != len(ds.Owners) {
		t.Fatal("owner roster changed")
	}
}

func TestOpenRuntimeErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenRuntime(filepath.Join(dir, "absent")); err == nil {
		t.Fatal("missing file accepted")
	}
	// A file starting with the snapfile magic but otherwise garbage
	// must fail cleanly, not fall back to JSON.
	bad := filepath.Join(dir, "bad.snap")
	if err := writeFile(bad, "SIGHTSNPgarbage"); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRuntime(bad); err == nil {
		t.Fatal("corrupt snap accepted")
	}
	// Garbage without the magic is treated as JSON and fails there.
	notjson := filepath.Join(dir, "bad.json")
	if err := writeFile(notjson, "{broken"); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRuntime(notjson); err == nil {
		t.Fatal("broken JSON accepted")
	}
}

func TestRuntimeCloseIdempotent(t *testing.T) {
	ds := FromStudy(study(t), false)
	path := filepath.Join(t.TempDir(), "s.snap")
	if err := PackSnap(ds, path); err != nil {
		t.Fatal(err)
	}
	rt, err := OpenRuntime(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
