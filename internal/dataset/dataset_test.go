package dataset

import (
	"os"
	"path/filepath"
	"testing"

	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/profile"
	"sightrisk/internal/synthetic"
)

func study(t *testing.T) *synthetic.Study {
	t.Helper()
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 2
	cfg.Ego.Strangers = 80
	cfg.Ego.Friends = 20
	cfg.Seed = 9
	s, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFromStudyWithLabels(t *testing.T) {
	s := study(t)
	ds := FromStudy(s, true)
	if err := ds.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if len(ds.Owners) != 2 {
		t.Fatalf("owners = %d", len(ds.Owners))
	}
	for _, o := range ds.Owners {
		strangers := ds.Graph.Strangers(o.ID)
		if len(o.Labels) != len(strangers) {
			t.Fatalf("owner %d: %d labels for %d strangers", o.ID, len(o.Labels), len(strangers))
		}
		if len(o.Theta) != 7 {
			t.Fatalf("owner %d theta has %d items", o.ID, len(o.Theta))
		}
		if o.Confidence < 60 || o.Confidence > 95 {
			t.Fatalf("owner %d confidence %g", o.ID, o.Confidence)
		}
	}
	if len(ds.Profiles) != s.Profiles.Len() {
		t.Fatalf("profiles = %d, want %d", len(ds.Profiles), s.Profiles.Len())
	}
}

func TestFromStudyWithoutLabels(t *testing.T) {
	ds := FromStudy(study(t), false)
	for _, o := range ds.Owners {
		if len(o.Labels) != 0 {
			t.Fatalf("owner %d has %d labels, want none", o.ID, len(o.Labels))
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := FromStudy(study(t), true)
	path := filepath.Join(t.TempDir(), "study.json")
	if err := ds.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if back.Graph.NumNodes() != ds.Graph.NumNodes() || back.Graph.NumEdges() != ds.Graph.NumEdges() {
		t.Fatal("graph changed in round trip")
	}
	if len(back.Profiles) != len(ds.Profiles) {
		t.Fatal("profiles changed in round trip")
	}
	for i, o := range ds.Owners {
		bo := back.Owners[i]
		if bo.ID != o.ID || bo.Confidence != o.Confidence {
			t.Fatal("owner record changed in round trip")
		}
		for s, l := range o.Labels {
			if bo.Labels[s] != l {
				t.Fatalf("label for %d changed", s)
			}
		}
	}
	// Profile store reconstruction keeps attributes and visibility.
	store := back.ProfileStore()
	for _, p := range ds.Profiles {
		bp := store.Get(p.User)
		if bp == nil {
			t.Fatalf("profile %d lost", p.User)
		}
		for _, a := range profile.AllAttributes() {
			if bp.Attr(a) != p.Attr(a) {
				t.Fatalf("profile %d attr %s changed", p.User, a)
			}
		}
		for _, i := range profile.Items() {
			if bp.IsVisible(i) != p.IsVisible(i) {
				t.Fatalf("profile %d item %s visibility changed", p.User, i)
			}
		}
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := writeFile(bad, "{broken"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("broken JSON accepted")
	}
}

func TestValidateCatchesInconsistencies(t *testing.T) {
	ds := New("t")
	if err := ds.Graph.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	// Profile for unknown user.
	ds.Profiles = append(ds.Profiles, profile.NewProfile(99))
	if err := ds.Validate(); err == nil {
		t.Fatal("unknown profile user accepted")
	}
	ds.Profiles = nil
	// Owner not in graph.
	ds.Owners = []OwnerRecord{{ID: 50}}
	if err := ds.Validate(); err == nil {
		t.Fatal("unknown owner accepted")
	}
	// Invalid label.
	ds.Owners = []OwnerRecord{{ID: 1, Labels: map[graph.UserID]label.Label{2: label.Label(9)}}}
	if err := ds.Validate(); err == nil {
		t.Fatal("invalid label accepted")
	}
	// Label for unknown user.
	ds.Owners = []OwnerRecord{{ID: 1, Labels: map[graph.UserID]label.Label{77: label.Risky}}}
	if err := ds.Validate(); err == nil {
		t.Fatal("label for unknown user accepted")
	}
	// Nil graph.
	ds2 := &Dataset{}
	if err := ds2.Validate(); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestOwnerLookup(t *testing.T) {
	ds := FromStudy(study(t), false)
	ids := ds.OwnerIDs()
	if len(ids) != 2 || ids[0] >= ids[1] {
		t.Fatalf("OwnerIDs = %v", ids)
	}
	if _, ok := ds.Owner(ids[0]); !ok {
		t.Fatal("Owner lookup failed")
	}
	if _, ok := ds.Owner(123456); ok {
		t.Fatal("Owner lookup found ghost")
	}
}

func TestStoredAnnotator(t *testing.T) {
	ann := StoredAnnotator{
		Labels:   map[graph.UserID]label.Label{1: label.VeryRisky},
		Fallback: label.Risky,
	}
	if got := ann.LabelStranger(1); got != label.VeryRisky {
		t.Fatalf("stored label = %v", got)
	}
	if got := ann.LabelStranger(2); got != label.Risky {
		t.Fatalf("fallback label = %v", got)
	}
	noFallback := StoredAnnotator{Labels: map[graph.UserID]label.Label{}}
	defer func() {
		if recover() == nil {
			t.Fatal("missing label without fallback did not panic")
		}
	}()
	noFallback.LabelStranger(3)
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
