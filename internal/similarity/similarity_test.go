package similarity

import (
	"testing"

	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

func build(t *testing.T, edges [][2]graph.UserID) *graph.Graph {
	t.Helper()
	g := graph.New()
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestJaccard(t *testing.T) {
	// o knows {10,11,12}; s knows {10,11,13}. Intersection 2, union 4.
	g := build(t, [][2]graph.UserID{
		{1, 10}, {1, 11}, {1, 12},
		{2, 10}, {2, 11}, {2, 13},
	})
	if got, want := Jaccard(g, 1, 2), 2.0/4.0; got != want {
		t.Fatalf("Jaccard = %g, want %g", got, want)
	}
	if got := Jaccard(g, 1, 1); got != 1 {
		t.Fatalf("self Jaccard = %g, want 1", got)
	}
	if got := Jaccard(g, 98, 99); got != 0 {
		t.Fatalf("Jaccard of absent users = %g, want 0", got)
	}
}

func TestCommonNeighbors(t *testing.T) {
	g := build(t, [][2]graph.UserID{{1, 10}, {2, 10}, {1, 11}, {2, 12}})
	if got := CommonNeighbors(g, 1, 2); got != 1 {
		t.Fatalf("CommonNeighbors = %d, want 1", got)
	}
}

func TestNSZeroWithoutMutuals(t *testing.T) {
	g := build(t, [][2]graph.UserID{{1, 10}, {2, 20}})
	if got := NS(g, 1, 2); got != 0 {
		t.Fatalf("NS without mutuals = %g, want 0", got)
	}
}

func TestNSSymmetric(t *testing.T) {
	g := build(t, [][2]graph.UserID{
		{1, 10}, {1, 11}, {1, 12},
		{2, 10}, {2, 11},
		{10, 11},
	})
	if NS(g, 1, 2) != NS(g, 2, 1) {
		t.Fatalf("NS asymmetric: %g vs %g", NS(g, 1, 2), NS(g, 2, 1))
	}
}

func TestNSDensityBoost(t *testing.T) {
	// Same overlap structure, but in gDense the mutual friends are
	// connected to each other. NS must rank the dense case higher —
	// the property the paper borrows from [9].
	edges := [][2]graph.UserID{
		{1, 10}, {1, 11}, {1, 12}, {1, 13},
		{2, 10}, {2, 11}, {2, 20},
	}
	gSparse := build(t, edges)
	gDense := build(t, append(edges, [2]graph.UserID{10, 11}))
	sparse, dense := NS(gSparse, 1, 2), NS(gDense, 1, 2)
	if !(dense > sparse) {
		t.Fatalf("dense NS %g not above sparse NS %g", dense, sparse)
	}
	// Fully dense mutual community doubles the Jaccard contribution.
	if want := 2 * sparse; dense != want {
		t.Fatalf("dense NS = %g, want %g", dense, want)
	}
}

func TestNSRange(t *testing.T) {
	// A configuration that would exceed 1 without the cap: two users
	// sharing all friends with a dense mutual community.
	g := build(t, [][2]graph.UserID{
		{1, 10}, {1, 11},
		{2, 10}, {2, 11},
		{10, 11},
	})
	got := NS(g, 1, 2)
	if got != 1 {
		t.Fatalf("NS = %g, want capped at 1", got)
	}
}

func TestNSIncreasesWithOverlap(t *testing.T) {
	// s2 shares 2 of owner's friends, s1 shares 1; same degrees.
	g := build(t, [][2]graph.UserID{
		{1, 10}, {1, 11}, {1, 12},
		{100, 10}, {100, 50},
		{200, 10}, {200, 11},
	})
	if !(NS(g, 1, 200) > NS(g, 1, 100)) {
		t.Fatalf("NS(200)=%g should exceed NS(100)=%g", NS(g, 1, 200), NS(g, 1, 100))
	}
}

func makeProfile(u graph.UserID, gender, locale, last string) *profile.Profile {
	p := profile.NewProfile(u)
	p.SetAttr(profile.AttrGender, gender)
	p.SetAttr(profile.AttrLocale, locale)
	p.SetAttr(profile.AttrLastName, last)
	return p
}

func poolStore(profiles ...*profile.Profile) (*profile.Store, []graph.UserID) {
	s := profile.NewStore()
	ids := make([]graph.UserID, 0, len(profiles))
	for _, p := range profiles {
		s.Put(p)
		ids = append(ids, p.User)
	}
	return s, ids
}

func TestPSIdenticalProfiles(t *testing.T) {
	a := makeProfile(1, "male", "en_US", "Smith-1")
	b := makeProfile(2, "male", "en_US", "Smith-1")
	store, pool := poolStore(a, b)
	ctx := NewPSContext(store, pool, nil)
	if got := ctx.PS(a, b); got != 1 {
		t.Fatalf("PS of identical profiles = %g, want 1", got)
	}
}

func TestPSNonIdenticalNonZero(t *testing.T) {
	a := makeProfile(1, "male", "en_US", "Smith-1")
	b := makeProfile(2, "female", "it_IT", "Rossi-2")
	store, pool := poolStore(a, b)
	ctx := NewPSContext(store, pool, nil)
	got := ctx.PS(a, b)
	if got <= 0 || got >= 1 {
		t.Fatalf("PS of disjoint profiles = %g, want in (0,1)", got)
	}
}

func TestPSFrequencyEffect(t *testing.T) {
	// In a pool dominated by en_US and it_IT, an en_US/it_IT mismatch
	// (both common) scores above a pl_PL/tr_TR mismatch (both rare).
	var profiles []*profile.Profile
	for i := 0; i < 10; i++ {
		loc := "en_US"
		if i%2 == 0 {
			loc = "it_IT"
		}
		profiles = append(profiles, makeProfile(graph.UserID(i), "male", loc, "X-1"))
	}
	rare1 := makeProfile(100, "male", "pl_PL", "X-1")
	rare2 := makeProfile(101, "male", "tr_TR", "X-1")
	profiles = append(profiles, rare1, rare2)
	store, pool := poolStore(profiles...)
	ctx := NewPSContext(store, pool, nil)

	common := ctx.PS(profiles[0], profiles[1]) // it_IT vs en_US
	rare := ctx.PS(rare1, rare2)               // pl_PL vs tr_TR
	if !(common > rare) {
		t.Fatalf("common mismatch PS %g should exceed rare mismatch PS %g", common, rare)
	}
}

func TestPSNilProfiles(t *testing.T) {
	store, pool := poolStore(makeProfile(1, "male", "en_US", "A-1"))
	ctx := NewPSContext(store, pool, nil)
	if got := ctx.PS(nil, store.Get(1)); got != 0 {
		t.Fatalf("PS with nil = %g, want 0", got)
	}
}

func TestPSMissingValuesFloor(t *testing.T) {
	a := profile.NewProfile(1) // all attributes unset
	b := makeProfile(2, "male", "en_US", "A-1")
	store, pool := poolStore(a, b)
	ctx := NewPSContext(store, pool, nil)
	got := ctx.PS(a, b)
	if got <= 0 {
		t.Fatalf("PS with missing values = %g, want > 0 (floor)", got)
	}
	if got >= 0.5 {
		t.Fatalf("PS with missing values = %g, want small", got)
	}
}

func TestPSCustomAttributes(t *testing.T) {
	a := makeProfile(1, "male", "en_US", "A-1")
	b := makeProfile(2, "male", "it_IT", "B-1")
	store, pool := poolStore(a, b)
	ctx := NewPSContext(store, pool, []profile.Attribute{profile.AttrGender})
	if got := ctx.PS(a, b); got != 1 {
		t.Fatalf("PS over gender only = %g, want 1", got)
	}
	if got := len(ctx.Attributes()); got != 1 {
		t.Fatalf("Attributes() len = %d, want 1", got)
	}
}

func TestMatrixSymmetricUnitDiagonal(t *testing.T) {
	profiles := []*profile.Profile{
		makeProfile(1, "male", "en_US", "A-1"),
		makeProfile(2, "female", "en_US", "B-1"),
		makeProfile(3, "male", "it_IT", "A-1"),
	}
	store, pool := poolStore(profiles...)
	ctx := NewPSContext(store, pool, nil)
	m := ctx.Matrix(profiles)
	if len(m) != 3 {
		t.Fatalf("matrix size %d, want 3", len(m))
	}
	for i := range m {
		if m[i][i] != 1 {
			t.Fatalf("diagonal[%d] = %g, want 1", i, m[i][i])
		}
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Fatalf("matrix asymmetric at (%d,%d)", i, j)
			}
			if m[i][j] < 0 || m[i][j] > 1 {
				t.Fatalf("matrix[%d][%d] = %g out of [0,1]", i, j, m[i][j])
			}
		}
	}
	// Matrix entries agree with pairwise PS.
	if m[0][1] != ctx.PS(profiles[0], profiles[1]) {
		t.Fatal("matrix entry disagrees with PS()")
	}
}
