package similarity

import (
	"math"
	"testing"

	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

// FuzzProfileSimilarity feeds arbitrary attribute values (including
// empty strings, unicode, and values absent from the frequency
// context) through PS and checks its contract: the result is always a
// real number in [0,1], symmetric in its arguments, 1 on identical
// profiles, and the computation never panics.
func FuzzProfileSimilarity(f *testing.F) {
	attrs := profile.ClusteringAttributes()
	f.Add("male", "en_US", "Doe", "female", "it_IT", "Rossi", "male", "en_US")
	f.Add("", "", "", "", "", "", "", "")
	f.Add("x", "x", "x", "x", "x", "x", "x", "x")
	f.Add("héllo", "日本語", "O'Brien", "a\x00b", " ", "\t", "zz", "en_US")
	f.Add("male", "en_US", "Doe", "male", "en_US", "Doe", "rare", "unseen")
	f.Fuzz(func(t *testing.T, g1, l1, n1, g2, l2, n2, poolG, poolL string) {
		// Pool of two profiles supplying the value-frequency context;
		// the compared profiles may hold values the pool never saw.
		store := profile.NewStore()
		pool := []graph.UserID{1, 2}
		for i, u := range pool {
			p := profile.NewProfile(u)
			p.SetAttr(profile.AttrGender, poolG)
			p.SetAttr(profile.AttrLocale, poolL)
			if i == 1 {
				p.SetAttr(profile.AttrLastName, n1)
			}
			store.Put(p)
		}
		ctx := NewPSContext(store, pool, attrs)

		pa := profile.NewProfile(10)
		pa.SetAttr(profile.AttrGender, g1)
		pa.SetAttr(profile.AttrLocale, l1)
		pa.SetAttr(profile.AttrLastName, n1)
		pb := profile.NewProfile(11)
		pb.SetAttr(profile.AttrGender, g2)
		pb.SetAttr(profile.AttrLocale, l2)
		pb.SetAttr(profile.AttrLastName, n2)

		ab := ctx.PS(pa, pb)
		ba := ctx.PS(pb, pa)
		if math.IsNaN(ab) || ab < 0 || ab > 1 {
			t.Fatalf("PS = %g, want [0,1]", ab)
		}
		if ab != ba {
			t.Fatalf("PS not symmetric: %g vs %g", ab, ba)
		}
		if self := ctx.PS(pa, pa); self != 1 && hasAllAttrs(pa, attrs) {
			t.Fatalf("PS(p,p) = %g with all attributes set, want 1", self)
		}
		if ctx.PS(nil, pb) != 0 || ctx.PS(pa, nil) != 0 {
			t.Fatal("PS with nil profile must be 0")
		}

		// The matrix path must agree with pairwise PS and stay
		// symmetric with a unit diagonal.
		m := ctx.Matrix([]*profile.Profile{pa, pb})
		if m[0][0] != 1 || m[1][1] != 1 {
			t.Fatalf("diagonal %g/%g, want 1", m[0][0], m[1][1])
		}
		if m[0][1] != ab || m[1][0] != ab {
			t.Fatalf("matrix entry %g/%g, pairwise %g", m[0][1], m[1][0], ab)
		}
	})
}

func hasAllAttrs(p *profile.Profile, attrs []profile.Attribute) bool {
	for _, a := range attrs {
		if p.Attr(a) == "" {
			return false
		}
	}
	return true
}
