package similarity

import "sightrisk/internal/graph"

// SnapshotMeasure is a network-similarity measure over a frozen graph
// snapshot — the fast-path twin of NetworkMeasure. Every snapshot
// measure returns exactly the value its graph twin returns on the
// graph the snapshot was taken from (same integer counts feed the same
// float expressions), so routing through a snapshot never changes
// results.
type SnapshotMeasure func(s *graph.Snapshot, a, b graph.UserID) float64

// JaccardSnapshot is Jaccard over a frozen snapshot.
func JaccardSnapshot(s *graph.Snapshot, a, b graph.UserID) float64 {
	mutual := s.CountMutualFriends(a, b)
	union := s.Degree(a) + s.Degree(b) - mutual
	if union == 0 {
		return 0
	}
	return float64(mutual) / float64(union)
}

// CommonNeighborsSnapshot is CommonNeighbors over a frozen snapshot.
func CommonNeighborsSnapshot(s *graph.Snapshot, a, b graph.UserID) int {
	return s.CountMutualFriends(a, b)
}

// NSSnapshot is NS over a frozen snapshot. It allocates a fresh
// intersection buffer per call; hot loops (NSG construction) should
// use NSInto with a reused buffer instead.
func NSSnapshot(s *graph.Snapshot, o, t graph.UserID) float64 {
	ns, _ := NSInto(s, o, t, nil)
	return ns
}

// NSInto computes NS(o,t) over a frozen snapshot using buf as the
// mutual-friend scratch space, returning the similarity and the
// (possibly grown) buffer for reuse. With a warm buffer the whole
// computation is allocation-free: one sorted-slice intersection plus
// an induced-edge count over the already-sorted intersection.
//
// The arithmetic mirrors NS exactly — same integer counts, same
// operation order — so NSInto(snapshot of g) == NS(g) bit for bit.
func NSInto(s *graph.Snapshot, o, t graph.UserID, buf []graph.UserID) (float64, []graph.UserID) {
	buf = s.AppendMutualFriends(buf[:0], o, t)
	if len(buf) == 0 {
		return 0, buf
	}
	union := s.Degree(o) + s.Degree(t) - len(buf)
	if union == 0 {
		return 0, buf
	}
	j := float64(len(buf)) / float64(union)
	ns := j * (1 + s.DensityOfMutualSorted(buf))
	if ns > 1 {
		ns = 1
	}
	return ns, buf
}
