package similarity

import (
	"math/rand"
	"testing"

	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

// randomSimGraph builds a seeded random graph with non-contiguous ids.
func randomSimGraph(seed int64, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	ids := make([]graph.UserID, n)
	for i := range ids {
		ids[i] = graph.UserID(i*5 + 2)
		g.AddNode(ids[i])
	}
	for k := 0; k < m; k++ {
		a := ids[rng.Intn(n)]
		b := ids[rng.Intn(n)]
		if a != b {
			_ = g.AddEdge(a, b)
		}
	}
	return g
}

// TestSnapshotMeasureEquivalence: NS, Jaccard, and CommonNeighbors over
// a frozen Snapshot return exactly — bit for bit — what their mutable-
// graph twins return, across seeded random graphs and all node pairs.
func TestSnapshotMeasureEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g := randomSimGraph(seed, 40, 200)
		s := g.Snapshot()
		nodes := g.Nodes()
		buf := make([]graph.UserID, 0, 64)
		for _, a := range nodes {
			for _, b := range nodes {
				if got, want := NSSnapshot(s, a, b), NS(g, a, b); got != want {
					t.Fatalf("seed %d: NSSnapshot(%d,%d) = %v, want %v", seed, a, b, got, want)
				}
				var got float64
				got, buf = NSInto(s, a, b, buf)
				if want := NS(g, a, b); got != want {
					t.Fatalf("seed %d: NSInto(%d,%d) = %v, want %v", seed, a, b, got, want)
				}
				if got, want := JaccardSnapshot(s, a, b), Jaccard(g, a, b); got != want {
					t.Fatalf("seed %d: JaccardSnapshot(%d,%d) = %v, want %v", seed, a, b, got, want)
				}
				if got, want := CommonNeighborsSnapshot(s, a, b), CommonNeighbors(g, a, b); got != want {
					t.Fatalf("seed %d: CommonNeighborsSnapshot(%d,%d) = %d, want %d", seed, a, b, got, want)
				}
			}
		}
	}
}

// sparseRandomPool is randomPool with holes: some profiles are missing
// some attributes, exercising the floor branch of the per-attribute
// similarity in both Matrix implementations.
func sparseRandomPool(seed int64, n int) (*profile.Store, []graph.UserID, []*profile.Profile) {
	rng := rand.New(rand.NewSource(seed))
	genders := []string{"male", "female"}
	locales := []string{"en_US", "it_IT", "tr_TR", "pl_PL"}
	store := profile.NewStore()
	ids := make([]graph.UserID, 0, n)
	var profiles []*profile.Profile
	for i := 0; i < n; i++ {
		p := profile.NewProfile(graph.UserID(i))
		if rng.Intn(4) != 0 {
			p.SetAttr(profile.AttrGender, genders[rng.Intn(len(genders))])
		}
		if rng.Intn(4) != 0 {
			p.SetAttr(profile.AttrLocale, locales[rng.Intn(len(locales))])
		}
		if rng.Intn(4) != 0 {
			p.SetAttr(profile.AttrLastName, locales[rng.Intn(len(locales))]+"-fam")
		}
		store.Put(p)
		ids = append(ids, p.User)
		profiles = append(profiles, p)
	}
	return store, ids, profiles
}

// TestMatrixMatchesPairwisePS pins the indexed Matrix to the pairwise
// oracle on pools with missing attribute values (TestPropMatrixMatchesPS
// covers fully-populated pools). Exact float equality is required: the
// indexed path must evaluate the same expressions in the same order.
func TestMatrixMatchesPairwisePS(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		store, ids, profiles := sparseRandomPool(seed, 30)
		ctx := NewPSContext(store, ids, nil)
		got := ctx.Matrix(profiles)
		want := ctx.MatrixReference(profiles)
		for i := range profiles {
			for j := range profiles {
				if got[i][j] != want[i][j] {
					t.Fatalf("seed %d: Matrix[%d][%d] = %v, want %v", seed, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestMatrixDisjointPools: the context pool and the matrix profiles may
// differ (values absent from the frequency tables); both paths must
// still agree.
func TestMatrixDisjointPools(t *testing.T) {
	store, ids, _ := sparseRandomPool(1, 20)
	ctx := NewPSContext(store, ids, nil)
	_, _, outsiders := sparseRandomPool(99, 12)
	got := ctx.Matrix(outsiders)
	want := ctx.MatrixReference(outsiders)
	for i := range outsiders {
		for j := range outsiders {
			if got[i][j] != want[i][j] {
				t.Fatalf("Matrix[%d][%d] = %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestMatrixEmptyInputs covers the degenerate shapes.
func TestMatrixEmptyInputs(t *testing.T) {
	store, ids, _ := sparseRandomPool(2, 5)
	ctx := NewPSContext(store, ids, nil)
	if m := ctx.Matrix(nil); len(m) != 0 {
		t.Fatalf("Matrix(nil) = %v, want empty", m)
	}
	_, _, profiles := sparseRandomPool(3, 3)
	m := ctx.Matrix(profiles)
	for i := range m {
		if m[i][i] != 1 {
			t.Fatalf("diagonal[%d] = %v, want 1", i, m[i][i])
		}
	}
}

// BenchmarkPSMatrix guards the indexed-Matrix optimization: the indexed
// path must beat the pairwise oracle on both ns/op and allocs/op.
func BenchmarkPSMatrix(b *testing.B) {
	store, ids, profiles := sparseRandomPool(1, 120)
	ctx := NewPSContext(store, ids, nil)
	b.Run("pairwise", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = ctx.MatrixReference(profiles)
		}
	})
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = ctx.Matrix(profiles)
		}
	})
}

// BenchmarkNS contrasts NS on the mutable graph against the snapshot
// fast path with a reused intersection buffer.
func BenchmarkNS(b *testing.B) {
	g := randomSimGraph(1, 400, 6000)
	s := g.Snapshot()
	nodes := g.Nodes()
	b.Run("graph", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = NS(g, nodes[i%100], nodes[100+i%100])
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]graph.UserID, 0, 128)
		for i := 0; i < b.N; i++ {
			_, buf = NSInto(s, nodes[i%100], nodes[100+i%100], buf)
		}
	})
}
