package similarity

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

// randomPool builds a random profile pool for property tests.
func randomPool(seed int64, n int) (*profile.Store, []graph.UserID, []*profile.Profile) {
	rng := rand.New(rand.NewSource(seed))
	genders := []string{"male", "female"}
	locales := []string{"en_US", "it_IT", "tr_TR", "pl_PL"}
	store := profile.NewStore()
	ids := make([]graph.UserID, 0, n)
	var profiles []*profile.Profile
	for i := 0; i < n; i++ {
		p := profile.NewProfile(graph.UserID(i))
		p.SetAttr(profile.AttrGender, genders[rng.Intn(len(genders))])
		p.SetAttr(profile.AttrLocale, locales[rng.Intn(len(locales))])
		p.SetAttr(profile.AttrLastName, locales[rng.Intn(len(locales))]+"-fam")
		store.Put(p)
		ids = append(ids, p.User)
		profiles = append(profiles, p)
	}
	return store, ids, profiles
}

// TestPropPSRangeAndSymmetry: PS stays in (0,1] and is symmetric for
// any random pool.
func TestPropPSRangeAndSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		store, ids, profiles := randomPool(seed, 12)
		ctx := NewPSContext(store, ids, nil)
		for i := range profiles {
			for j := range profiles {
				v := ctx.PS(profiles[i], profiles[j])
				if v <= 0 || v > 1 {
					return false
				}
				if v != ctx.PS(profiles[j], profiles[i]) {
					return false
				}
			}
			if ctx.PS(profiles[i], profiles[i]) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropNSRange: NS stays in [0,1] and equals 0 exactly when there
// are no mutual friends, for random graphs.
func TestPropNSRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		const n = 25
		for i := 0; i < 60; i++ {
			a := graph.UserID(rng.Intn(n))
			b := graph.UserID(rng.Intn(n))
			if a != b {
				_ = g.AddEdge(a, b)
			}
		}
		for a := graph.UserID(0); a < n; a++ {
			for b := a + 1; b < n; b++ {
				v := NS(g, a, b)
				if v < 0 || v > 1 {
					return false
				}
				if (len(g.MutualFriends(a, b)) == 0) != (v == 0) {
					return false
				}
				if v != NS(g, b, a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropMatrixMatchesPS: the precomputed matrix always agrees with
// pairwise PS calls.
func TestPropMatrixMatchesPS(t *testing.T) {
	f := func(seed int64) bool {
		store, ids, profiles := randomPool(seed, 10)
		ctx := NewPSContext(store, ids, nil)
		m := ctx.Matrix(profiles)
		for i := range profiles {
			for j := range profiles {
				want := ctx.PS(profiles[i], profiles[j])
				if i == j {
					want = 1
				}
				if m[i][j] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
