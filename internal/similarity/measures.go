package similarity

import (
	"fmt"
	"math"
	"sort"

	"sightrisk/internal/graph"
)

// NetworkMeasure scores the network similarity of two users in [0,1].
// NS is the paper's measure; the alternatives below are the classical
// measures of the large-scale comparison the paper cites (Spertus et
// al., KDD 2005), normalized into [0,1] so they can drive the NSG
// bucketing interchangeably.
type NetworkMeasure func(g *graph.Graph, a, b graph.UserID) float64

// Cosine is the cosine similarity of the friend sets:
// |M| / sqrt(deg(a)·deg(b)).
func Cosine(g *graph.Graph, a, b graph.UserID) float64 {
	m := len(g.MutualFriends(a, b))
	if m == 0 {
		return 0
	}
	da, db := g.Degree(a), g.Degree(b)
	if da == 0 || db == 0 {
		return 0
	}
	return float64(m) / math.Sqrt(float64(da)*float64(db))
}

// Overlap is the overlap coefficient: |M| / min(deg(a), deg(b)).
func Overlap(g *graph.Graph, a, b graph.UserID) float64 {
	m := len(g.MutualFriends(a, b))
	if m == 0 {
		return 0
	}
	d := g.Degree(a)
	if db := g.Degree(b); db < d {
		d = db
	}
	if d == 0 {
		return 0
	}
	v := float64(m) / float64(d)
	if v > 1 {
		v = 1
	}
	return v
}

// AdamicAdar is the Adamic-Adar measure normalized by the maximum
// attainable from a's friend list: Σ_{m∈M} 1/log2(1+deg(m)) divided by
// Σ_{m∈F(a)} 1/log2(1+deg(m)). Mutual friends with small degree
// (exclusive acquaintances) weigh more than hubs.
func AdamicAdar(g *graph.Graph, a, b graph.UserID) float64 {
	mutual := g.MutualFriends(a, b)
	if len(mutual) == 0 {
		return 0
	}
	score := 0.0
	for _, m := range mutual {
		score += 1 / math.Log2(1+float64(g.Degree(m)))
	}
	max := 0.0
	for _, f := range g.Friends(a) {
		max += 1 / math.Log2(1+float64(g.Degree(f)))
	}
	if max == 0 {
		return 0
	}
	v := score / max
	if v > 1 {
		v = 1
	}
	return v
}

// JaccardMeasure adapts Jaccard to the NetworkMeasure signature.
func JaccardMeasure(g *graph.Graph, a, b graph.UserID) float64 {
	return Jaccard(g, a, b)
}

// Measures returns the registry of network measures by name; "NS" is
// the paper's density-boosted measure.
func Measures() map[string]NetworkMeasure {
	return map[string]NetworkMeasure{
		"NS":          NS,
		"jaccard":     JaccardMeasure,
		"cosine":      Cosine,
		"overlap":     Overlap,
		"adamic-adar": AdamicAdar,
	}
}

// MeasureNames lists the registry keys in a stable order with "NS"
// first.
func MeasureNames() []string {
	names := make([]string, 0, len(Measures()))
	for n := range Measures() {
		if n != "NS" {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return append([]string{"NS"}, names...)
}

// MeasureByName looks a measure up, erroring on unknown names.
func MeasureByName(name string) (NetworkMeasure, error) {
	m, ok := Measures()[name]
	if !ok {
		return nil, fmt.Errorf("similarity: unknown network measure %q", name)
	}
	return m, nil
}
