package similarity

import (
	"math"
	"math/rand"
	"testing"

	"sightrisk/internal/graph"
)

// measureWorld builds a graph where users 1 and 2 share mutual friends
// 10 and 11; 1 also knows 12 and 13.
func measureWorld(t *testing.T) *graph.Graph {
	t.Helper()
	return build(t, [][2]graph.UserID{
		{1, 10}, {1, 11}, {1, 12}, {1, 13},
		{2, 10}, {2, 11},
		{10, 50}, {10, 51}, // friend 10 is a small hub
		{98, 99}, // disconnected pair: no mutual friends with anyone
	})
}

func TestCosine(t *testing.T) {
	g := measureWorld(t)
	// |M| = 2, deg(1) = 4, deg(2) = 2 → 2/sqrt(8).
	want := 2 / math.Sqrt(8)
	if got := Cosine(g, 1, 2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Cosine = %g, want %g", got, want)
	}
	if got := Cosine(g, 1, 99); got != 0 {
		t.Fatalf("Cosine without mutuals = %g", got)
	}
	if got := Cosine(g, 98, 99); got != 0 {
		t.Fatalf("Cosine of absent users = %g", got)
	}
}

func TestOverlap(t *testing.T) {
	g := measureWorld(t)
	// |M| = 2, min degree = 2 → 1.
	if got := Overlap(g, 1, 2); got != 1 {
		t.Fatalf("Overlap = %g, want 1", got)
	}
	if got := Overlap(g, 1, 99); got != 0 {
		t.Fatalf("Overlap without mutuals = %g", got)
	}
}

func TestAdamicAdar(t *testing.T) {
	g := measureWorld(t)
	got := AdamicAdar(g, 1, 2)
	if got <= 0 || got > 1 {
		t.Fatalf("AdamicAdar = %g, want in (0,1]", got)
	}
	// Mutual friend 10 has degree 4 (hub-ish), 11 degree 2: the
	// exclusive friend 11 contributes more.
	c11 := 1 / math.Log2(1+2.0)
	c10 := 1 / math.Log2(1+4.0)
	if !(c11 > c10) {
		t.Fatal("test premise broken")
	}
	max := 0.0
	for _, f := range g.Friends(1) {
		max += 1 / math.Log2(1+float64(g.Degree(f)))
	}
	want := (c10 + c11) / max
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("AdamicAdar = %g, want %g", got, want)
	}
	if got := AdamicAdar(g, 1, 99); got != 0 {
		t.Fatalf("AdamicAdar without mutuals = %g", got)
	}
}

func TestMeasureRegistry(t *testing.T) {
	names := MeasureNames()
	if names[0] != "NS" {
		t.Fatalf("first measure = %q, want NS", names[0])
	}
	if len(names) != 5 {
		t.Fatalf("measures = %v", names)
	}
	for _, n := range names {
		if _, err := MeasureByName(n); err != nil {
			t.Fatalf("MeasureByName(%q): %v", n, err)
		}
	}
	if _, err := MeasureByName("nope"); err == nil {
		t.Fatal("unknown measure accepted")
	}
}

func TestAllMeasuresInUnitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.New()
	const n = 40
	for i := 0; i < 140; i++ {
		a := graph.UserID(rng.Intn(n))
		b := graph.UserID(rng.Intn(n))
		if a != b {
			_ = g.AddEdge(a, b)
		}
	}
	for name, m := range Measures() {
		for a := graph.UserID(0); a < n; a += 3 {
			for b := a + 1; b < n; b += 2 {
				v := m(g, a, b)
				if v < 0 || v > 1 || math.IsNaN(v) {
					t.Fatalf("%s(%d,%d) = %g out of [0,1]", name, a, b, v)
				}
				// All measures are zero exactly without mutual friends.
				if (len(g.MutualFriends(a, b)) == 0) != (v == 0) {
					t.Fatalf("%s(%d,%d) = %g disagrees with mutual-friend emptiness", name, a, b, v)
				}
			}
		}
	}
}
