// Package similarity implements the similarity measures the ICDE 2012
// risk paper builds on: the network similarity NS() and profile
// similarity PS() of the authors' IRI 2011 companion paper, plus the
// classical measures (Jaccard, common neighbors) used for comparison.
//
// The companion paper's closed forms are not restated in the risk
// paper, so NS and PS here are documented reconstructions that satisfy
// every property the risk pipeline relies on (see DESIGN.md §2):
//
//   - NS(o,s) ∈ [0,1], zero without mutual friends, increasing in
//     mutual-friend overlap, and boosted when the mutual friends form a
//     dense community around the owner.
//   - PS(p,q) ∈ [0,1], per-attribute value 1 on identical values and a
//     non-zero frequency-based value on non-identical values.
package similarity

import (
	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

// Jaccard returns |F(a) ∩ F(b)| / |F(a) ∪ F(b)| over friend sets.
// Users with no friends yield 0.
func Jaccard(g *graph.Graph, a, b graph.UserID) float64 {
	mutual := len(g.MutualFriends(a, b))
	union := g.Degree(a) + g.Degree(b) - mutual
	if union == 0 {
		return 0
	}
	return float64(mutual) / float64(union)
}

// CommonNeighbors returns the number of mutual friends of a and b.
func CommonNeighbors(g *graph.Graph, a, b graph.UserID) int {
	return len(g.MutualFriends(a, b))
}

// NS returns the network similarity between owner o and stranger s,
// in [0,1].
//
// Reconstruction of the measure of Akcora et al. (IRI 2011): unlike
// plain mutual-friend measures it also considers the connections among
// the mutual friends — a stranger attached to a dense community around
// the owner scores higher. We take the Jaccard overlap of the friend
// sets and scale it by (1 + density(M)), where density(M) is the edge
// density of the subgraph induced by the mutual friends M, capping at
// 1:
//
//	NS(o,s) = min(1, Jaccard(o,s) · (1 + density(M)))
//
// Properties used downstream: NS = 0 iff no mutual friends; NS grows
// with overlap; two strangers with equal overlap differ by mutual-
// community density.
func NS(g *graph.Graph, o, s graph.UserID) float64 {
	mutual := g.MutualFriends(o, s)
	if len(mutual) == 0 {
		return 0
	}
	union := g.Degree(o) + g.Degree(s) - len(mutual)
	if union == 0 {
		return 0
	}
	j := float64(len(mutual)) / float64(union)
	ns := j * (1 + g.InducedDensity(mutual))
	if ns > 1 {
		ns = 1
	}
	return ns
}

// PSContext carries the value-frequency context PS needs: the paper
// computes the non-identical attribute similarity "by considering the
// frequency of the item values in the data set (i.e., the profiles in
// the considered pool)".
type PSContext struct {
	attrs []profile.Attribute
	// freq[attr][value] is the number of pool profiles carrying value.
	freq map[profile.Attribute]map[string]int
	// total[attr] is the number of pool profiles with the attribute set.
	total map[profile.Attribute]int
}

// NewPSContext builds the frequency context over the given pool of
// users for the given attributes. An empty attribute list defaults to
// the paper's clustering attributes.
func NewPSContext(store *profile.Store, pool []graph.UserID, attrs []profile.Attribute) *PSContext {
	if len(attrs) == 0 {
		attrs = profile.ClusteringAttributes()
	}
	ctx := &PSContext{
		attrs: attrs,
		freq:  make(map[profile.Attribute]map[string]int, len(attrs)),
		total: make(map[profile.Attribute]int, len(attrs)),
	}
	for _, a := range attrs {
		f := store.ValueFrequencies(pool, a)
		ctx.freq[a] = f
		n := 0
		for _, c := range f {
			n += c
		}
		ctx.total[a] = n
	}
	return ctx
}

// Attributes returns the attributes the context was built over.
func (c *PSContext) Attributes() []profile.Attribute { return c.attrs }

// attrSim is the per-attribute similarity: 1 for identical values, and
// for non-identical values a non-zero value derived from how frequent
// the two values are in the pool — two strangers holding common values
// (e.g. the pool's dominant locale pair) are considered more similar
// than strangers holding rare, idiosyncratic values. Missing values
// contribute a small floor.
func (c *PSContext) attrSim(a profile.Attribute, va, vb string) float64 {
	const floor = 0.05
	if va == "" || vb == "" {
		return floor
	}
	if va == vb {
		return 1
	}
	n := c.total[a]
	if n == 0 {
		return floor
	}
	rel := float64(c.freq[a][va]+c.freq[a][vb]) / (2 * float64(n))
	// Scale into (0, 1): a mismatch is never as good as a match.
	s := 0.5 * rel
	if s < floor {
		s = floor
	}
	return s
}

// PS returns the profile similarity of the two profiles in [0,1]:
// the mean of the per-attribute similarities over the context's
// attributes. Nil profiles yield 0.
func (c *PSContext) PS(pa, pb *profile.Profile) float64 {
	if pa == nil || pb == nil || len(c.attrs) == 0 {
		return 0
	}
	sum := 0.0
	for _, a := range c.attrs {
		sum += c.attrSim(a, pa.Attr(a), pb.Attr(a))
	}
	return sum / float64(len(c.attrs))
}

// Matrix precomputes the symmetric PS matrix for a pool of profiles.
// Entry (i,j) is PS(profiles[i], profiles[j]); the diagonal is 1.
//
// The O(n²·|attrs|) inner loop runs over precomputed per-profile value
// codes and frequency counts — the attribute strings and frequency
// maps are read exactly once per profile, not once per pair — so each
// pair costs only integer compares and float arithmetic. The result is
// bit-identical to evaluating PS pairwise (same counts, same operation
// order); TestMatrixMatchesPairwisePS pins that down and
// BenchmarkPSMatrix guards the speedup.
func (c *PSContext) Matrix(profiles []*profile.Profile) [][]float64 {
	n := len(profiles)
	m := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range m {
		m[i] = backing[i*n : (i+1)*n]
	}
	if n == 0 {
		return m
	}
	nA := len(c.attrs)
	if nA == 0 {
		return m // PS of any pair is 0; leave zeros, diagonal below
	}

	// Index pass: one read of every (profile, attribute) pair. code is
	// a dense id per distinct value (-1 for unset), cnt the pool
	// frequency of that value.
	codes := make([][]int32, nA) // codes[a][i]
	counts := make([][]int, nA)  // counts[a][i] = freq of profile i's value
	totals := make([]int, nA)    // pool profiles with the attribute set
	for ai, a := range c.attrs {
		codes[ai] = make([]int32, n)
		counts[ai] = make([]int, n)
		totals[ai] = c.total[a]
		valueCode := make(map[string]int32, 16)
		freq := c.freq[a]
		for i, p := range profiles {
			v := p.Attr(a)
			if v == "" {
				codes[ai][i] = -1
				continue
			}
			code, ok := valueCode[v]
			if !ok {
				code = int32(len(valueCode))
				valueCode[v] = code
			}
			codes[ai][i] = code
			counts[ai][i] = freq[v]
		}
	}

	const floor = 0.05
	nAttrs := float64(nA)
	for i := 0; i < n; i++ {
		m[i][i] = 1
		for j := i + 1; j < n; j++ {
			sum := 0.0
			for ai := 0; ai < nA; ai++ {
				ci, cj := codes[ai][i], codes[ai][j]
				switch {
				case ci < 0 || cj < 0:
					sum += floor
				case ci == cj:
					sum += 1
				default:
					total := totals[ai]
					if total == 0 {
						sum += floor
						continue
					}
					rel := float64(counts[ai][i]+counts[ai][j]) / (2 * float64(total))
					s := 0.5 * rel
					if s < floor {
						s = floor
					}
					sum += s
				}
			}
			v := sum / nAttrs
			m[i][j] = v
			m[j][i] = v
		}
	}
	return m
}

// MatrixReference is the pre-optimization Matrix: PS evaluated pair by
// pair, re-reading attribute strings in the O(n²) inner loop. Kept as
// the oracle for the equivalence test and as the baseline side of
// BenchmarkPSMatrix and the riskbench micro-benchmarks. Use Matrix in
// production code.
func (c *PSContext) MatrixReference(profiles []*profile.Profile) [][]float64 {
	n := len(profiles)
	m := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range m {
		m[i] = backing[i*n : (i+1)*n]
	}
	for i := 0; i < n; i++ {
		m[i][i] = 1
		for j := i + 1; j < n; j++ {
			v := c.PS(profiles[i], profiles[j])
			m[i][j] = v
			m[j][i] = v
		}
	}
	return m
}
