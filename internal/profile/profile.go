// Package profile models OSN user profiles as the ICDE 2012 risk paper
// uses them: a small set of categorical profile attributes (gender,
// locale, last name, hometown, education, work, location) and a set of
// benefit items (wall, photos, friends list, location, education, work,
// hometown) each of which is either visible or hidden to non-friends.
//
// Profile attributes drive clustering (Squeezer) and classifier edge
// weights; benefit-item visibility drives the benefit measure B(o,s)
// and the visibility statistics of the paper's Tables IV and V.
package profile

import (
	"fmt"
	"sort"
	"sync"

	"sightrisk/internal/graph"
)

// Attribute names a categorical profile attribute. The paper clusters
// with gender, last name and locale, and additionally mines hometown,
// education, work and location as benefit items.
type Attribute string

// The profile attributes used throughout the reproduction.
const (
	AttrGender    Attribute = "gender"
	AttrLocale    Attribute = "locale"
	AttrLastName  Attribute = "last name"
	AttrHometown  Attribute = "hometown"
	AttrEducation Attribute = "education"
	AttrWork      Attribute = "work"
	AttrLocation  Attribute = "location"
)

// ClusteringAttributes are the three attributes the paper feeds to the
// Squeezer algorithm (Section IV-D).
func ClusteringAttributes() []Attribute {
	return []Attribute{AttrGender, AttrLocale, AttrLastName}
}

// AllAttributes returns every attribute a profile may carry, in a
// stable order.
func AllAttributes() []Attribute {
	return []Attribute{
		AttrGender, AttrLocale, AttrLastName, AttrHometown,
		AttrEducation, AttrWork, AttrLocation,
	}
}

// Item names a benefit item on a profile (Section II, "Benefits").
type Item string

// The seven benefit items of the paper (Tables II-V).
const (
	ItemWall     Item = "wall"
	ItemPhoto    Item = "photo"
	ItemFriend   Item = "friend"
	ItemLocation Item = "location"
	ItemEdu      Item = "education"
	ItemWork     Item = "work"
	ItemHometown Item = "hometown"
)

// Items returns all benefit items in the paper's Table IV column order.
func Items() []Item {
	return []Item{
		ItemWall, ItemPhoto, ItemFriend, ItemLocation,
		ItemEdu, ItemWork, ItemHometown,
	}
}

// Profile is one user's categorical attributes and benefit-item
// visibility. Visibility is as seen by a non-friend (the owner judging
// the stranger).
type Profile struct {
	User    graph.UserID         `json:"user"`
	Attrs   map[Attribute]string `json:"attrs"`
	Visible map[Item]bool        `json:"visible"`
}

// NewProfile returns an empty profile for the user.
func NewProfile(u graph.UserID) *Profile {
	return &Profile{
		User:    u,
		Attrs:   make(map[Attribute]string),
		Visible: make(map[Item]bool),
	}
}

// Attr returns the value of the attribute, or "" when unset.
func (p *Profile) Attr(a Attribute) string { return p.Attrs[a] }

// SetAttr sets an attribute value.
func (p *Profile) SetAttr(a Attribute, v string) { p.Attrs[a] = v }

// IsVisible reports whether the benefit item is visible to non-friends.
// This is Vs(i, o) of the benefit measure.
func (p *Profile) IsVisible(i Item) bool { return p.Visible[i] }

// SetVisible sets the visibility bit of a benefit item.
func (p *Profile) SetVisible(i Item, v bool) { p.Visible[i] = v }

// Clone returns a deep copy.
func (p *Profile) Clone() *Profile {
	c := NewProfile(p.User)
	for k, v := range p.Attrs {
		c.Attrs[k] = v
	}
	for k, v := range p.Visible {
		c.Visible[k] = v
	}
	return c
}

// Validate checks that the profile carries at least the clustering
// attributes the pipeline depends on.
func (p *Profile) Validate() error {
	for _, a := range ClusteringAttributes() {
		if p.Attrs[a] == "" {
			return fmt.Errorf("profile: user %d missing attribute %q", p.User, a)
		}
	}
	return nil
}

// Store maps users to profiles. It is a plain map wrapper with
// deterministic iteration helpers; synchronization, when needed, is the
// caller's concern (the pipeline builds stores once and then only
// reads).
//
// A store built with NewLazyStore additionally materializes missing
// profiles on demand from a fetch function and is safe for concurrent
// readers — the shape mmap-backed snapshot files (graph/snapfile)
// serve multi-gigabyte profile sets through without decoding them all
// up front.
type Store struct {
	byUser map[graph.UserID]*Profile

	// fetch, when non-nil, materializes profiles absent from byUser on
	// first access (nil result = user has no profile); mu then guards
	// byUser because the engine reads stores from concurrent workers.
	fetch func(graph.UserID) *Profile
	mu    sync.RWMutex
}

// NewStore returns an empty profile store.
func NewStore() *Store {
	return &Store{byUser: make(map[graph.UserID]*Profile)}
}

// NewLazyStore returns a store that materializes profiles on first
// access through fetch and caches them thereafter. fetch must be
// deterministic (same user → equivalent profile) and safe for
// concurrent calls; it returns nil for users without a profile. Unlike
// a plain store, a lazy store is safe for concurrent use. Len and
// Users report only the profiles materialized (or Put) so far — the
// backing source, not the cache, is the authority on the full
// population.
func NewLazyStore(fetch func(graph.UserID) *Profile) *Store {
	return &Store{byUser: make(map[graph.UserID]*Profile), fetch: fetch}
}

// Put inserts or replaces the profile.
func (s *Store) Put(p *Profile) {
	if s.fetch != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	s.byUser[p.User] = p
}

// Get returns the profile for the user, or nil when absent. On a lazy
// store a miss consults the fetch function and caches its result.
func (s *Store) Get(u graph.UserID) *Profile {
	if s.fetch == nil {
		return s.byUser[u]
	}
	s.mu.RLock()
	p, ok := s.byUser[u]
	s.mu.RUnlock()
	if ok {
		return p
	}
	p = s.fetch(u)
	if p == nil {
		return nil
	}
	s.mu.Lock()
	// Keep the first materialization if another goroutine raced us, so
	// callers always observe one stable pointer per user.
	if prev, ok := s.byUser[u]; ok {
		p = prev
	} else {
		s.byUser[u] = p
	}
	s.mu.Unlock()
	return p
}

// Has reports whether the user has a profile.
func (s *Store) Has(u graph.UserID) bool {
	return s.Get(u) != nil
}

// Len returns the number of stored profiles (on a lazy store: the
// number materialized so far).
func (s *Store) Len() int {
	if s.fetch != nil {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	return len(s.byUser)
}

// Users returns all user ids in ascending order (on a lazy store: the
// users materialized so far).
func (s *Store) Users() []graph.UserID {
	if s.fetch != nil {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	out := make([]graph.UserID, 0, len(s.byUser))
	for u := range s.byUser {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Profiles returns the profiles of the given users, skipping users
// without one.
func (s *Store) Profiles(users []graph.UserID) []*Profile {
	out := make([]*Profile, 0, len(users))
	for _, u := range users {
		if p := s.Get(u); p != nil {
			out = append(out, p)
		}
	}
	return out
}

// ValueFrequencies counts, for one attribute, how often each value
// occurs among the given users. Unset values are skipped. This feeds
// the frequency-based part of the PS profile-similarity measure.
func (s *Store) ValueFrequencies(users []graph.UserID, a Attribute) map[string]int {
	freq := make(map[string]int)
	for _, u := range users {
		p := s.Get(u)
		if p == nil {
			continue
		}
		if v := p.Attrs[a]; v != "" {
			freq[v]++
		}
	}
	return freq
}

// VisibilityRate returns the fraction of the given users whose item i
// is visible; users without a profile are skipped. Returns 0 for an
// empty selection.
func (s *Store) VisibilityRate(users []graph.UserID, i Item) float64 {
	n, vis := 0, 0
	for _, u := range users {
		p := s.Get(u)
		if p == nil {
			continue
		}
		n++
		if p.Visible[i] {
			vis++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(vis) / float64(n)
}
