package profile

import (
	"testing"

	"sightrisk/internal/graph"
)

func TestNewProfile(t *testing.T) {
	p := NewProfile(7)
	if p.User != 7 {
		t.Fatalf("User = %d, want 7", p.User)
	}
	if p.Attr(AttrGender) != "" {
		t.Fatal("fresh profile has non-empty attribute")
	}
	if p.IsVisible(ItemPhoto) {
		t.Fatal("fresh profile has visible item")
	}
}

func TestSetAttr(t *testing.T) {
	p := NewProfile(1)
	p.SetAttr(AttrGender, "female")
	p.SetAttr(AttrLocale, "it_IT")
	if got := p.Attr(AttrGender); got != "female" {
		t.Fatalf("gender = %q", got)
	}
	p.SetAttr(AttrGender, "male") // overwrite
	if got := p.Attr(AttrGender); got != "male" {
		t.Fatalf("gender after overwrite = %q", got)
	}
}

func TestVisibility(t *testing.T) {
	p := NewProfile(1)
	p.SetVisible(ItemWall, true)
	if !p.IsVisible(ItemWall) {
		t.Fatal("wall should be visible")
	}
	p.SetVisible(ItemWall, false)
	if p.IsVisible(ItemWall) {
		t.Fatal("wall should be hidden")
	}
}

func TestClone(t *testing.T) {
	p := NewProfile(1)
	p.SetAttr(AttrGender, "male")
	p.SetVisible(ItemPhoto, true)
	c := p.Clone()
	c.SetAttr(AttrGender, "female")
	c.SetVisible(ItemPhoto, false)
	if p.Attr(AttrGender) != "male" || !p.IsVisible(ItemPhoto) {
		t.Fatal("mutating clone affected original")
	}
}

func TestValidate(t *testing.T) {
	p := NewProfile(1)
	if err := p.Validate(); err == nil {
		t.Fatal("empty profile validated")
	}
	p.SetAttr(AttrGender, "male")
	p.SetAttr(AttrLocale, "en_US")
	if err := p.Validate(); err == nil {
		t.Fatal("profile without last name validated")
	}
	p.SetAttr(AttrLastName, "Smith-1")
	if err := p.Validate(); err != nil {
		t.Fatalf("complete profile failed validation: %v", err)
	}
}

func TestClusteringAttributesSubsetOfAll(t *testing.T) {
	all := map[Attribute]bool{}
	for _, a := range AllAttributes() {
		all[a] = true
	}
	for _, a := range ClusteringAttributes() {
		if !all[a] {
			t.Fatalf("clustering attribute %q not in AllAttributes", a)
		}
	}
	if len(ClusteringAttributes()) != 3 {
		t.Fatalf("clustering attributes = %d, want 3 (gender, locale, last name)", len(ClusteringAttributes()))
	}
}

func TestItemsCount(t *testing.T) {
	if got := len(Items()); got != 7 {
		t.Fatalf("Items() has %d entries, want 7", got)
	}
	seen := map[Item]bool{}
	for _, i := range Items() {
		if seen[i] {
			t.Fatalf("duplicate item %q", i)
		}
		seen[i] = true
	}
}

func newStore(t *testing.T, n int) *Store {
	t.Helper()
	s := NewStore()
	for i := 0; i < n; i++ {
		p := NewProfile(graph.UserID(i))
		if i%2 == 0 {
			p.SetAttr(AttrGender, "male")
		} else {
			p.SetAttr(AttrGender, "female")
		}
		p.SetVisible(ItemPhoto, i%4 != 0)
		s.Put(p)
	}
	return s
}

func TestStorePutGet(t *testing.T) {
	s := newStore(t, 4)
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if s.Get(2) == nil || s.Get(2).User != 2 {
		t.Fatal("Get(2) wrong")
	}
	if s.Get(99) != nil {
		t.Fatal("Get(absent) != nil")
	}
	if !s.Has(0) || s.Has(99) {
		t.Fatal("Has wrong")
	}
}

func TestStoreUsersSorted(t *testing.T) {
	s := NewStore()
	for _, id := range []graph.UserID{9, 2, 5} {
		s.Put(NewProfile(id))
	}
	got := s.Users()
	want := []graph.UserID{2, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Users = %v, want %v", got, want)
		}
	}
}

func TestStoreProfilesSkipsMissing(t *testing.T) {
	s := newStore(t, 3)
	got := s.Profiles([]graph.UserID{0, 99, 2})
	if len(got) != 2 {
		t.Fatalf("Profiles returned %d, want 2", len(got))
	}
	if got[0].User != 0 || got[1].User != 2 {
		t.Fatalf("Profiles order wrong: %v, %v", got[0].User, got[1].User)
	}
}

func TestValueFrequencies(t *testing.T) {
	s := newStore(t, 6)
	freq := s.ValueFrequencies([]graph.UserID{0, 1, 2, 3, 4, 5}, AttrGender)
	if freq["male"] != 3 || freq["female"] != 3 {
		t.Fatalf("frequencies = %v", freq)
	}
	// Unset attributes are skipped.
	freq = s.ValueFrequencies([]graph.UserID{0, 1}, AttrLocale)
	if len(freq) != 0 {
		t.Fatalf("locale frequencies = %v, want empty", freq)
	}
	// Users without profiles are skipped.
	freq = s.ValueFrequencies([]graph.UserID{99, 0}, AttrGender)
	if freq["male"] != 1 || len(freq) != 1 {
		t.Fatalf("frequencies with missing profile = %v", freq)
	}
}

func TestVisibilityRate(t *testing.T) {
	s := newStore(t, 8) // photo hidden for ids 0,4; visible for 6 of 8
	got := s.VisibilityRate([]graph.UserID{0, 1, 2, 3, 4, 5, 6, 7}, ItemPhoto)
	if want := 6.0 / 8.0; got != want {
		t.Fatalf("VisibilityRate = %g, want %g", got, want)
	}
	if got := s.VisibilityRate(nil, ItemPhoto); got != 0 {
		t.Fatalf("VisibilityRate(empty) = %g, want 0", got)
	}
	if got := s.VisibilityRate([]graph.UserID{99}, ItemPhoto); got != 0 {
		t.Fatalf("VisibilityRate(missing profiles) = %g, want 0", got)
	}
}
