// Package privscore implements the privacy-score framework of Liu &
// Terzi (ICDM 2009) — the paper's citation [29] and the related work
// it explicitly contrasts itself against: a per-user score measuring
// the privacy risk a user's own sharing behaviour creates, computed
// from item sensitivity and item visibility.
//
// Two estimators are provided, following the original paper:
//
//   - Naive: sensitivity of item i is the share of users hiding it
//     (β_i = (N - |R_i|)/N), and the privacy score of user j is
//     PR(j) = Σ_i β_i · V(i,j).
//   - IRT: a two-parameter Item Response Theory model where the
//     probability user j reveals item i follows a logistic curve in
//     the user's latent attitude θ_j with per-item discrimination α_i
//     and difficulty (sensitivity) β_i, fit by alternating
//     Newton-Raphson steps. The privacy score is Σ_i β̂_i · V(i,j)
//     with difficulties min-max rescaled to [0,1].
//
// The contrast experiment (experiments.PrivacyScoreContrast) shows why
// the risk paper needed a different notion: Liu-Terzi scores measure
// the *stranger's own* exposure, which owners read as benefit, not as
// the subjective interaction risk the labels capture.
package privscore

import (
	"fmt"
	"math"

	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

// Matrix is the binary response matrix of a population: rows are
// users, columns the benefit items, entries the visibility bits.
type Matrix struct {
	Users []graph.UserID
	Items []profile.Item
	// V[u][i] is 1 when item i of user u is visible.
	V [][]float64
}

// BuildMatrix extracts the response matrix for the given users from a
// profile store; users without a profile are skipped.
func BuildMatrix(store *profile.Store, users []graph.UserID) Matrix {
	items := profile.Items()
	m := Matrix{Items: items}
	for _, u := range users {
		p := store.Get(u)
		if p == nil {
			continue
		}
		row := make([]float64, len(items))
		for i, item := range items {
			if p.IsVisible(item) {
				row[i] = 1
			}
		}
		m.Users = append(m.Users, u)
		m.V = append(m.V, row)
	}
	return m
}

// Scores maps users to privacy scores; higher means more exposed.
type Scores struct {
	// ByUser is the per-user privacy score.
	ByUser map[graph.UserID]float64
	// Sensitivity is the fitted per-item sensitivity in [0,1].
	Sensitivity map[profile.Item]float64
}

// Naive computes Liu & Terzi's naive estimator: item sensitivity is
// the population share hiding the item, and the score sums the
// sensitivities of the items the user reveals.
func Naive(m Matrix) (Scores, error) {
	if len(m.Users) == 0 {
		return Scores{}, fmt.Errorf("privscore: empty response matrix")
	}
	n := float64(len(m.Users))
	sens := make([]float64, len(m.Items))
	for i := range m.Items {
		revealed := 0.0
		for _, row := range m.V {
			revealed += row[i]
		}
		sens[i] = (n - revealed) / n
	}
	out := Scores{
		ByUser:      make(map[graph.UserID]float64, len(m.Users)),
		Sensitivity: make(map[profile.Item]float64, len(m.Items)),
	}
	for i, item := range m.Items {
		out.Sensitivity[item] = sens[i]
	}
	for ui, u := range m.Users {
		score := 0.0
		for i := range m.Items {
			score += sens[i] * m.V[ui][i]
		}
		out.ByUser[u] = score
	}
	return out, nil
}

// IRTConfig tunes the IRT fit.
type IRTConfig struct {
	// Iterations of the alternating optimization (default 30).
	Iterations int
	// LearningRate for the Newton-damped updates (default 0.5).
	LearningRate float64
}

// IRT fits the two-parameter logistic IRT model and returns privacy
// scores PR(j) = Σ_i β̂_i · V(i,j) with difficulties rescaled to
// [0,1]. The fit alternates damped Newton updates on user attitudes
// θ_j and item parameters (α_i, β_i), which is the standard joint
// maximum-likelihood scheme; it is regularized lightly so degenerate
// all-visible/all-hidden rows cannot blow parameters up.
func IRT(m Matrix, cfg IRTConfig) (Scores, error) {
	if len(m.Users) == 0 {
		return Scores{}, fmt.Errorf("privscore: empty response matrix")
	}
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 30
	}
	lr := cfg.LearningRate
	if lr <= 0 {
		lr = 0.5
	}
	nu, ni := len(m.Users), len(m.Items)

	theta := make([]float64, nu) // user attitudes
	alpha := make([]float64, ni) // item discriminations
	beta := make([]float64, ni)  // item difficulties (sensitivities)
	for i := range alpha {
		alpha[i] = 1
	}
	// Initialize difficulties from the naive hidden share mapped onto
	// a logit scale, and attitudes from each user's reveal rate.
	for i := 0; i < ni; i++ {
		revealed := 0.0
		for _, row := range m.V {
			revealed += row[i]
		}
		p := clampP(revealed / float64(nu))
		beta[i] = -math.Log(p / (1 - p)) // common items have low difficulty
	}
	for j, row := range m.V {
		revealed := 0.0
		for _, v := range row {
			revealed += v
		}
		p := clampP(revealed / float64(ni))
		theta[j] = math.Log(p / (1 - p))
	}

	const reg = 0.05 // L2 regularization toward the init-friendly origin
	sigmoid := func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

	for it := 0; it < iters; it++ {
		// Update attitudes with item parameters fixed.
		for j := 0; j < nu; j++ {
			grad, hess := -reg*theta[j], -reg
			for i := 0; i < ni; i++ {
				p := sigmoid(alpha[i] * (theta[j] - beta[i]))
				grad += alpha[i] * (m.V[j][i] - p)
				hess -= alpha[i] * alpha[i] * p * (1 - p)
			}
			theta[j] = clamp(theta[j]-lr*grad/hess, -6, 6)
		}
		// Update item parameters with attitudes fixed.
		for i := 0; i < ni; i++ {
			gradB, hessB := -reg*beta[i], -reg
			gradA, hessA := -reg*(alpha[i]-1), -reg
			for j := 0; j < nu; j++ {
				d := theta[j] - beta[i]
				p := sigmoid(alpha[i] * d)
				gradB += -alpha[i] * (m.V[j][i] - p)
				hessB -= alpha[i] * alpha[i] * p * (1 - p)
				gradA += d * (m.V[j][i] - p)
				hessA -= d * d * p * (1 - p)
			}
			beta[i] = clamp(beta[i]-lr*gradB/hessB, -8, 8)
			alpha[i] = clamp(alpha[i]-lr*gradA/hessA, 0.2, 5)
		}
	}

	// Min-max rescale difficulties into [0,1] sensitivities.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range beta {
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	sens := make([]float64, ni)
	for i, b := range beta {
		if hi > lo {
			sens[i] = (b - lo) / (hi - lo)
		} else {
			sens[i] = 0.5
		}
	}

	out := Scores{
		ByUser:      make(map[graph.UserID]float64, nu),
		Sensitivity: make(map[profile.Item]float64, ni),
	}
	for i, item := range m.Items {
		out.Sensitivity[item] = sens[i]
	}
	for ui, u := range m.Users {
		score := 0.0
		for i := range m.Items {
			score += sens[i] * m.V[ui][i]
		}
		out.ByUser[u] = score
	}
	return out, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampP(p float64) float64 {
	const eps = 0.02
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

// PearsonByUser computes the Pearson correlation between two score
// maps over their common users. Returns NaN with fewer than two
// common users or zero variance.
func PearsonByUser(a, b map[graph.UserID]float64) float64 {
	var xs, ys []float64
	for u, x := range a {
		if y, ok := b[u]; ok {
			xs = append(xs, x)
			ys = append(ys, y)
		}
	}
	return Pearson(xs, ys)
}

// Pearson computes the Pearson correlation of two equal-length series.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}
