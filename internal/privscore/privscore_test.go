package privscore

import (
	"math"
	"math/rand"
	"testing"

	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

// fixedMatrix builds a small deterministic response matrix:
//   - item "photo" visible for everyone (sensitivity 0),
//   - item "work" hidden for everyone (sensitivity 1),
//   - item "wall" visible for the first half.
func fixedMatrix(n int) Matrix {
	m := Matrix{Items: []profile.Item{profile.ItemPhoto, profile.ItemWork, profile.ItemWall}}
	for j := 0; j < n; j++ {
		row := []float64{1, 0, 0}
		if j < n/2 {
			row[2] = 1
		}
		m.Users = append(m.Users, graph.UserID(j+1))
		m.V = append(m.V, row)
	}
	return m
}

func TestBuildMatrix(t *testing.T) {
	store := profile.NewStore()
	for i := 1; i <= 3; i++ {
		p := profile.NewProfile(graph.UserID(i))
		p.SetVisible(profile.ItemPhoto, i != 2)
		store.Put(p)
	}
	m := BuildMatrix(store, []graph.UserID{1, 2, 3, 99})
	if len(m.Users) != 3 {
		t.Fatalf("users = %d (user 99 has no profile)", len(m.Users))
	}
	if len(m.Items) != 7 {
		t.Fatalf("items = %d", len(m.Items))
	}
	// Photo column: visible for users 1 and 3.
	photoIdx := -1
	for i, item := range m.Items {
		if item == profile.ItemPhoto {
			photoIdx = i
		}
	}
	if m.V[0][photoIdx] != 1 || m.V[1][photoIdx] != 0 || m.V[2][photoIdx] != 1 {
		t.Fatal("photo column wrong")
	}
}

func TestNaiveSensitivity(t *testing.T) {
	m := fixedMatrix(10)
	s, err := Naive(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Sensitivity[profile.ItemPhoto]; got != 0 {
		t.Fatalf("photo sensitivity = %g, want 0 (everyone reveals)", got)
	}
	if got := s.Sensitivity[profile.ItemWork]; got != 1 {
		t.Fatalf("work sensitivity = %g, want 1 (everyone hides)", got)
	}
	if got := s.Sensitivity[profile.ItemWall]; got != 0.5 {
		t.Fatalf("wall sensitivity = %g, want 0.5", got)
	}
}

func TestNaiveScores(t *testing.T) {
	m := fixedMatrix(10)
	s, err := Naive(m)
	if err != nil {
		t.Fatal(err)
	}
	// First half reveal photo (0) + wall (0.5) → 0.5; second half only
	// photo → 0.
	for j, u := range m.Users {
		want := 0.0
		if j < 5 {
			want = 0.5
		}
		if got := s.ByUser[u]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("score[%d] = %g, want %g", u, got, want)
		}
	}
}

func TestNaiveEmpty(t *testing.T) {
	if _, err := Naive(Matrix{}); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := IRT(Matrix{}, IRTConfig{}); err == nil {
		t.Fatal("empty matrix accepted by IRT")
	}
}

// syntheticIRTMatrix samples a response matrix from a known 2PL model
// so the fit can be validated against ground truth.
func syntheticIRTMatrix(nu int, betas []float64, seed int64) (Matrix, []float64) {
	rng := rand.New(rand.NewSource(seed))
	items := profile.Items()[:len(betas)]
	m := Matrix{Items: items}
	thetas := make([]float64, nu)
	for j := 0; j < nu; j++ {
		thetas[j] = rng.NormFloat64() * 1.5
		row := make([]float64, len(betas))
		for i, b := range betas {
			p := 1 / (1 + math.Exp(-(thetas[j] - b)))
			if rng.Float64() < p {
				row[i] = 1
			}
		}
		m.Users = append(m.Users, graph.UserID(j+1))
		m.V = append(m.V, row)
	}
	return m, thetas
}

func TestIRTRecoversDifficultyOrdering(t *testing.T) {
	// Items with increasing true difficulty must come out with
	// increasing fitted sensitivity.
	trueBetas := []float64{-2, -0.5, 0.5, 2}
	m, _ := syntheticIRTMatrix(400, trueBetas, 3)
	s, err := IRT(m, IRTConfig{})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for i := range trueBetas {
		got := s.Sensitivity[m.Items[i]]
		if got < prev {
			t.Fatalf("fitted sensitivities not increasing: item %d has %g after %g", i, got, prev)
		}
		prev = got
	}
	// Extremes hit the min-max rescale bounds.
	if s.Sensitivity[m.Items[0]] != 0 || s.Sensitivity[m.Items[3]] != 1 {
		t.Fatalf("rescale bounds: %g / %g", s.Sensitivity[m.Items[0]], s.Sensitivity[m.Items[3]])
	}
}

func TestIRTScoresTrackExposure(t *testing.T) {
	// Users revealing more sensitive items must score higher.
	trueBetas := []float64{-1, 0, 1}
	m, _ := syntheticIRTMatrix(300, trueBetas, 4)
	s, err := IRT(m, IRTConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Score correlates positively with the raw reveal count.
	reveal := make(map[graph.UserID]float64, len(m.Users))
	for j, u := range m.Users {
		total := 0.0
		for _, v := range m.V[j] {
			total += v
		}
		reveal[u] = total
	}
	if r := PearsonByUser(s.ByUser, reveal); math.IsNaN(r) || r < 0.5 {
		t.Fatalf("IRT score vs reveal-count correlation = %g, want strongly positive", r)
	}
}

func TestIRTDegenerateMatrix(t *testing.T) {
	// All-visible matrix: the fit must not blow up, scores finite.
	m := Matrix{Items: []profile.Item{profile.ItemPhoto, profile.ItemWall}}
	for j := 0; j < 5; j++ {
		m.Users = append(m.Users, graph.UserID(j+1))
		m.V = append(m.V, []float64{1, 1})
	}
	s, err := IRT(m, IRTConfig{Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	for u, v := range s.ByUser {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("score[%d] = %g", u, v)
		}
	}
}

func TestPearson(t *testing.T) {
	if got := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Pearson of perfectly correlated = %g", got)
	}
	if got := Pearson([]float64{1, 2, 3}, []float64{6, 4, 2}); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Pearson of anti-correlated = %g", got)
	}
	if !math.IsNaN(Pearson([]float64{1}, []float64{2})) {
		t.Fatal("Pearson of single point should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 1}, []float64{2, 3})) {
		t.Fatal("Pearson with zero variance should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 2}, []float64{1})) {
		t.Fatal("Pearson with mismatched lengths should be NaN")
	}
}

func TestPearsonByUser(t *testing.T) {
	a := map[graph.UserID]float64{1: 1, 2: 2, 3: 3, 9: 100}
	b := map[graph.UserID]float64{1: 10, 2: 20, 3: 30, 8: -5}
	if got := PearsonByUser(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("PearsonByUser = %g, want 1 over common users", got)
	}
	if !math.IsNaN(PearsonByUser(a, map[graph.UserID]float64{42: 1})) {
		t.Fatal("no common users should yield NaN")
	}
}

func TestNaiveAndIRTAgreeOnOrdering(t *testing.T) {
	// On a well-behaved matrix the two estimators should broadly agree
	// about who is most exposed.
	m, _ := syntheticIRTMatrix(300, []float64{-1.5, -0.5, 0.5, 1.5}, 5)
	naive, err := Naive(m)
	if err != nil {
		t.Fatal(err)
	}
	irt, err := IRT(m, IRTConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r := PearsonByUser(naive.ByUser, irt.ByUser); math.IsNaN(r) || r < 0.7 {
		t.Fatalf("naive vs IRT correlation = %g, want high", r)
	}
}
