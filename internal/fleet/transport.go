package fleet

import (
	"context"
	"fmt"
	"sync"

	"sightrisk/internal/graph"
	"sightrisk/internal/label"
)

// Question is one owner-label query in a batched round-trip.
type Question struct {
	// Tenant names the tenant the question belongs to.
	Tenant string
	// Owner is the user being asked.
	Owner graph.UserID
	// Stranger is the user the owner is asked to label.
	Stranger graph.UserID
}

// Transport answers label questions in batches: one LabelBatch call is
// one round-trip to wherever the annotators live (a labeling service,
// a user-facing prompt queue). The returned slice answers questions
// positionally; an error fails every question in the batch.
//
// LabelBatch is never called concurrently with itself, and a batch
// never carries two questions from the same owner (each owner job has
// at most one question outstanding), so implementations may fan out
// per owner internally without reordering concerns.
type Transport interface {
	// LabelBatch answers one batch of questions positionally.
	LabelBatch(ctx context.Context, qs []Question) ([]label.Label, error)
}

// BatchStats reports how well the fleet amortized round-trips.
type BatchStats struct {
	Questions  int // questions answered through the transport
	RoundTrips int // LabelBatch calls
}

// MeanBatchSize returns Questions / RoundTrips (0 when unused).
func (s BatchStats) MeanBatchSize() float64 {
	if s.RoundTrips == 0 {
		return 0
	}
	return float64(s.Questions) / float64(s.RoundTrips)
}

// pendingQ is one enqueued question waiting for a round-trip.
type pendingQ struct {
	q    Question
	done chan struct{}
	lbl  label.Label
	err  error
}

// batcher gathers label questions from concurrently running owner jobs
// and flushes them through the Transport in batches. The flush rule
// never deadlocks: a batch goes out when either
//
//   - every registered job is waiting (each running job has at most
//     one outstanding question, so once pending + in-flight questions
//     cover all registered jobs, nobody else can arrive), or
//   - the batch reached maxBatch.
//
// Jobs register before their first question and deregister when they
// finish; deregistration re-evaluates the rule so a shrinking fleet
// still drains its tail.
type batcher struct {
	ctx       context.Context
	transport Transport
	maxBatch  int

	mu         sync.Mutex
	cond       *sync.Cond
	pending    []*pendingQ
	inFlight   int
	registered int
	closed     bool
	aborted    error
	questions  int
	roundTrips int
}

func newBatcher(ctx context.Context, t Transport, maxBatch int) *batcher {
	b := &batcher{ctx: ctx, transport: t, maxBatch: maxBatch}
	b.cond = sync.NewCond(&b.mu)
	go b.flushLoop()
	return b
}

// register marks one more job as running (a potential question
// source).
func (b *batcher) register() {
	b.mu.Lock()
	b.registered++
	b.mu.Unlock()
}

// deregister marks a job finished and wakes the flusher: with one
// fewer potential asker, the pending batch may now be complete.
func (b *batcher) deregister() {
	b.mu.Lock()
	b.registered--
	b.mu.Unlock()
	b.cond.Broadcast()
}

// ask enqueues a question and blocks until its round-trip completes.
func (b *batcher) ask(q Question) (label.Label, error) {
	b.mu.Lock()
	if b.aborted != nil || b.closed {
		err := b.aborted
		b.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("fleet: transport closed")
		}
		return 0, err
	}
	pq := &pendingQ{q: q, done: make(chan struct{})}
	b.pending = append(b.pending, pq)
	b.mu.Unlock()
	b.cond.Broadcast()
	<-pq.done
	return pq.lbl, pq.err
}

// ready reports (under mu) whether a batch should go out.
func (b *batcher) ready() bool {
	if len(b.pending) == 0 {
		return false
	}
	return len(b.pending) >= b.maxBatch || len(b.pending)+b.inFlight >= b.registered
}

// flushLoop is the single flusher goroutine: it serializes round-trips
// (LabelBatch is never concurrent with itself) and fulfills waiters.
func (b *batcher) flushLoop() {
	for {
		b.mu.Lock()
		for !b.ready() && !b.closed && b.aborted == nil {
			b.cond.Wait()
		}
		if b.aborted != nil || (b.closed && len(b.pending) == 0) {
			// Fail anything still pending and exit.
			pend := b.pending
			b.pending = nil
			err := b.aborted
			if err == nil {
				err = fmt.Errorf("fleet: transport closed")
			}
			b.mu.Unlock()
			for _, pq := range pend {
				pq.err = err
				close(pq.done)
			}
			return
		}
		batch := b.pending
		if len(batch) > b.maxBatch {
			batch = batch[:b.maxBatch]
		}
		b.pending = b.pending[len(batch):]
		b.inFlight += len(batch)
		b.questions += len(batch)
		b.roundTrips++
		b.mu.Unlock()

		qs := make([]Question, len(batch))
		for i, pq := range batch {
			qs[i] = pq.q
		}
		labels, err := b.transport.LabelBatch(b.ctx, qs)
		if err == nil && len(labels) != len(qs) {
			err = fmt.Errorf("fleet: transport answered %d of %d questions", len(labels), len(qs))
		}
		for i, pq := range batch {
			if err != nil {
				pq.err = err
			} else {
				pq.lbl = labels[i]
			}
			close(pq.done)
		}
		b.mu.Lock()
		b.inFlight -= len(batch)
		b.mu.Unlock()
	}
}

// close drains and stops the flusher; pending questions fail.
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// abort fails all current and future questions with err.
func (b *batcher) abort(err error) {
	b.mu.Lock()
	if b.aborted == nil {
		b.aborted = err
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *batcher) stats() BatchStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BatchStats{Questions: b.questions, RoundTrips: b.roundTrips}
}

// annotator adapts the batcher to the engine's annotator interface for
// one owner job.
func (b *batcher) annotator(tenant string, owner graph.UserID) *batchAnnotator {
	return &batchAnnotator{b: b, tenant: tenant, owner: owner}
}

type batchAnnotator struct {
	b      *batcher
	tenant string
	owner  graph.UserID
}

func (a *batchAnnotator) LabelStranger(_ context.Context, s graph.UserID) (label.Label, error) {
	return a.b.ask(Question{Tenant: a.tenant, Owner: a.owner, Stranger: s})
}
