package fleet

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"sightrisk/internal/active"
	"sightrisk/internal/core"
	"sightrisk/internal/graph"
	"sightrisk/internal/graph/snapfile"
	"sightrisk/internal/label"
	"sightrisk/internal/synthetic"
)

// fleetStudy generates a deterministic small study. Distinct calls
// with the same seed yield content-identical but structurally separate
// studies — the tenant-replica pattern (owner annotators memoize and
// are not thread-safe, so tenants never share Owner structs).
func fleetStudy(t testing.TB, owners, strangers int, seed int64) *synthetic.Study {
	t.Helper()
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = owners
	cfg.Ego.Strangers = strangers
	cfg.Seed = seed
	s, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func tenantOf(id string, s *synthetic.Study) Tenant {
	t := Tenant{ID: id, Graph: s.Graph, Store: s.Profiles}
	for _, o := range s.Owners {
		t.Jobs = append(t.Jobs, OwnerJob{
			Owner:      o.ID,
			Annotator:  active.Infallible(o),
			Confidence: o.Confidence,
		})
	}
	return t
}

// diffRuns compares the observable content of two owner runs via the
// engine's exported NaN-aware comparator, plus the Partial flag the
// fleet surfaces for budget/cancellation accounting.
func diffRuns(a, b *core.OwnerRun) string {
	if a == nil || b == nil {
		return fmt.Sprintf("nil run: %v vs %v", a == nil, b == nil)
	}
	if a.Partial != b.Partial {
		return "partial flag mismatch"
	}
	return core.DiffRuns(a, b)
}

// serialBaseline runs every owner standalone on the engine's serial
// path — the reference the fleet must reproduce byte for byte.
func serialBaseline(t testing.TB, s *synthetic.Study) map[graph.UserID]*core.OwnerRun {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Workers = 1
	out := make(map[graph.UserID]*core.OwnerRun, len(s.Owners))
	for _, o := range s.Owners {
		run, err := core.New(cfg).RunOwner(context.Background(), s.Graph, s.Profiles, o.ID, active.Infallible(o), o.Confidence)
		if err != nil {
			t.Fatal(err)
		}
		out[o.ID] = run
	}
	return out
}

// TestFleetMatchesSerial is the tentpole guarantee: every owner's run
// out of the concurrent multi-tenant scheduler is identical to its
// standalone serial run.
func TestFleetMatchesSerial(t *testing.T) {
	ref := fleetStudy(t, 3, 150, 7)
	want := serialBaseline(t, ref)

	tenants := []Tenant{
		tenantOf("t0", fleetStudy(t, 3, 150, 7)),
		tenantOf("t1", fleetStudy(t, 3, 150, 7)),
	}
	res, err := Run(context.Background(), Config{Engine: core.DefaultConfig(), Workers: 4}, tenants)
	if err != nil {
		t.Fatal(err)
	}
	for ti, tr := range res.Tenants {
		for ji, run := range tr.Runs {
			if tr.Errs[ji] != nil {
				t.Fatalf("tenant %d job %d: %v", ti, ji, tr.Errs[ji])
			}
			if d := diffRuns(run, want[run.Owner]); d != "" {
				t.Fatalf("tenant %d owner %d differs from serial: %s", ti, run.Owner, d)
			}
		}
	}
	if res.Stats.Owners != 6 || res.Stats.Skipped != 0 || res.Stats.Errors != 0 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if res.Stats.Queries == 0 {
		t.Fatal("no queries accounted")
	}
	// Tenant replicas carry identical pool content: the shared weight
	// cache must have hit for the entire second tenant.
	if res.Stats.Cache.Hits == 0 {
		t.Fatalf("cache never hit across identical tenants: %+v", res.Stats.Cache)
	}
}

// TestFleetDRRFairShare: with equal shares and equal-cost queues the
// deterministic dispatcher alternates tenants; with triple shares a
// tenant earns proportionally more dispatches per rotation.
func TestFleetDRRFairShare(t *testing.T) {
	s0 := fleetStudy(t, 4, 60, 3)
	s1 := fleetStudy(t, 4, 60, 3)
	var order []int
	cfg := Config{
		Engine:  core.DefaultConfig(),
		Workers: 1,
		onDispatch: func(tenant, job int, skipped bool) {
			order = append(order, tenant)
		},
	}
	if _, err := Run(context.Background(), cfg, []Tenant{tenantOf("a", s0), tenantOf("b", s1)}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 8 {
		t.Fatalf("dispatched %d jobs, want 8", len(order))
	}
	// Equal shares, equal costs: strict alternation a,b,a,b,...
	for i, ten := range order {
		if ten != i%2 {
			t.Fatalf("dispatch order %v not round-robin", order)
		}
	}

	// Shares weight the rotation: tenant a at 3 shares should dispatch
	// its whole queue before b finishes half of its own.
	s0, s1 = fleetStudy(t, 4, 60, 3), fleetStudy(t, 4, 60, 3)
	order = nil
	cfg.onDispatch = func(tenant, job int, skipped bool) { order = append(order, tenant) }
	tenants := []Tenant{tenantOf("a", s0), tenantOf("b", s1)}
	tenants[0].Shares = 3
	if _, err := Run(context.Background(), cfg, tenants); err != nil {
		t.Fatal(err)
	}
	aDone := 0
	for i, ten := range order {
		if ten == 0 {
			aDone++
			if aDone == 4 {
				// All of a's jobs dispatched; b must still have jobs left.
				if i >= len(order)-1 {
					t.Fatalf("shares had no effect: %v", order)
				}
				bSoFar := i + 1 - aDone
				if bSoFar > 2 {
					t.Fatalf("tenant b dispatched %d of 4 before weighted tenant a finished: %v", bSoFar, order)
				}
			}
		}
	}
}

// TestFleetCostBudget: MaxCost deterministically skips jobs whose
// estimated stranger cost would cross the cap.
func TestFleetCostBudget(t *testing.T) {
	s := fleetStudy(t, 3, 80, 5)
	ten := tenantOf("a", s)
	// Budget for roughly one job: each owner has ~80 strangers.
	ten.Budget.MaxCost = 100
	res, err := Run(context.Background(), Config{Engine: core.DefaultConfig(), Workers: 2}, []Tenant{ten})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tenants[0]
	if tr.Runs[0] == nil || tr.Skipped[0] != "" {
		t.Fatalf("first job should run: skipped=%q err=%v", tr.Skipped[0], tr.Errs[0])
	}
	for ji := 1; ji < len(tr.Runs); ji++ {
		if tr.Skipped[ji] != SkipCost {
			t.Fatalf("job %d: skipped=%q, want %q", ji, tr.Skipped[ji], SkipCost)
		}
		if tr.Runs[ji] != nil {
			t.Fatalf("job %d ran over budget", ji)
		}
	}
	if tr.CostDispatched > ten.Budget.MaxCost {
		t.Fatalf("dispatched cost %d over cap %d", tr.CostDispatched, ten.Budget.MaxCost)
	}
	if res.Stats.Skipped != 2 {
		t.Fatalf("stats.Skipped = %d", res.Stats.Skipped)
	}
}

// TestFleetQueryBudget: MaxQueries stops a tenant at a job boundary
// once its finished jobs spent the budget, deterministically, while an
// unbudgeted tenant is unaffected.
func TestFleetQueryBudget(t *testing.T) {
	budgeted := tenantOf("budgeted", fleetStudy(t, 3, 80, 5))
	budgeted.Budget.MaxQueries = 1 // first finished job exceeds this
	free := tenantOf("free", fleetStudy(t, 3, 80, 5))
	res, err := Run(context.Background(), Config{Engine: core.DefaultConfig(), Workers: 4}, []Tenant{budgeted, free})
	if err != nil {
		t.Fatal(err)
	}
	b, f := res.Tenants[0], res.Tenants[1]
	if b.Runs[0] == nil {
		t.Fatalf("budgeted job 0 should run: %v", b.Errs[0])
	}
	if b.Queries <= 1 {
		t.Fatalf("budgeted tenant spent %d queries, expected > 1 from job 0", b.Queries)
	}
	for ji := 1; ji < len(b.Runs); ji++ {
		if b.Skipped[ji] != SkipQueries || b.Runs[ji] != nil {
			t.Fatalf("budgeted job %d: skipped=%q run=%v", ji, b.Skipped[ji], b.Runs[ji] != nil)
		}
	}
	for ji := range f.Runs {
		if f.Runs[ji] == nil {
			t.Fatalf("free tenant job %d did not run: %v", ji, f.Errs[ji])
		}
	}
}

// ownersTransport answers batched questions from the studies' own
// synthetic owners, recording round-trips and batch sizes.
type ownersTransport struct {
	mu      sync.Mutex
	owners  map[string]map[graph.UserID]*synthetic.Owner
	batches []int
}

func newOwnersTransport() *ownersTransport {
	return &ownersTransport{owners: make(map[string]map[graph.UserID]*synthetic.Owner)}
}

func (tr *ownersTransport) add(tenant string, s *synthetic.Study) {
	m := make(map[graph.UserID]*synthetic.Owner, len(s.Owners))
	for _, o := range s.Owners {
		m[o.ID] = o
	}
	tr.owners[tenant] = m
}

func (tr *ownersTransport) LabelBatch(_ context.Context, qs []Question) ([]label.Label, error) {
	tr.mu.Lock()
	tr.batches = append(tr.batches, len(qs))
	tr.mu.Unlock()
	out := make([]label.Label, len(qs))
	for i, q := range qs {
		o := tr.owners[q.Tenant][q.Owner]
		if o == nil {
			return nil, fmt.Errorf("unknown owner %d of tenant %q", q.Owner, q.Tenant)
		}
		out[i] = o.LabelStranger(q.Stranger)
	}
	return out, nil
}

// TestFleetBatchedTransport: questions from concurrent owners share
// round-trips, and the batched answers leave every per-owner run
// byte-identical to its serial baseline.
func TestFleetBatchedTransport(t *testing.T) {
	ref := fleetStudy(t, 4, 100, 11)
	want := serialBaseline(t, ref)

	s0, s1 := fleetStudy(t, 4, 100, 11), fleetStudy(t, 4, 100, 11)
	transport := newOwnersTransport()
	transport.add("t0", s0)
	transport.add("t1", s1)
	t0, t1 := tenantOf("t0", s0), tenantOf("t1", s1)
	// Annotators are ignored with a transport; drop them to prove it.
	for i := range t0.Jobs {
		t0.Jobs[i].Annotator = nil
	}
	cfg := Config{Engine: core.DefaultConfig(), Workers: 4, Transport: transport, MaxBatch: 8}
	res, err := Run(context.Background(), cfg, []Tenant{t0, t1})
	if err != nil {
		t.Fatal(err)
	}
	for ti, tr := range res.Tenants {
		for ji, run := range tr.Runs {
			if tr.Errs[ji] != nil {
				t.Fatalf("tenant %d job %d: %v", ti, ji, tr.Errs[ji])
			}
			if d := diffRuns(run, want[run.Owner]); d != "" {
				t.Fatalf("tenant %d owner %d differs under batched transport: %s", ti, run.Owner, d)
			}
		}
	}
	st := res.Stats.Batch
	if st.Questions != res.Stats.Queries {
		t.Fatalf("transport answered %d questions, fleet accounted %d queries", st.Questions, res.Stats.Queries)
	}
	if st.RoundTrips >= st.Questions {
		t.Fatalf("no batching: %d round-trips for %d questions", st.RoundTrips, st.Questions)
	}
	maxBatch := 0
	for _, n := range transport.batches {
		if n > maxBatch {
			maxBatch = n
		}
	}
	if maxBatch < 2 {
		t.Fatalf("largest batch %d, want >= 2 (batch sizes: %v)", maxBatch, transport.batches)
	}
	if maxBatch > cfg.MaxBatch {
		t.Fatalf("batch of %d exceeds MaxBatch %d", maxBatch, cfg.MaxBatch)
	}
}

// TestFleetCancellation: canceling the context mid-run terminates Run
// promptly with every job accounted as run, skipped, or errored.
func TestFleetCancellation(t *testing.T) {
	tenants := []Tenant{
		tenantOf("a", fleetStudy(t, 4, 120, 2)),
		tenantOf("b", fleetStudy(t, 4, 120, 2)),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before the fleet starts: everything degrades
	res, err := Run(ctx, Config{Engine: core.DefaultConfig(), Workers: 2}, tenants)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Tenants {
		for ji := range tr.Runs {
			ran := tr.Runs[ji] != nil
			errored := tr.Errs[ji] != nil
			skipped := tr.Skipped[ji] != ""
			if !ran && !errored && !skipped {
				t.Fatalf("tenant %s job %d unaccounted after cancellation", tr.ID, ji)
			}
			// A canceled run that still produced output must be partial.
			if ran && !tr.Runs[ji].Partial {
				t.Fatalf("tenant %s job %d: complete run under canceled ctx", tr.ID, ji)
			}
		}
	}
}

// TestFleetConcurrentStress exercises many tenants over one shared
// cache and worker pool — the -race target for the scheduler.
func TestFleetConcurrentStress(t *testing.T) {
	var tenants []Tenant
	for i := 0; i < 6; i++ {
		tenants = append(tenants, tenantOf(fmt.Sprintf("t%d", i), fleetStudy(t, 2, 60, 9)))
	}
	tenants[1].Budget.MaxQueries = 3
	tenants[2].Budget.MaxCost = 70
	tenants[3].Shares = 4
	res, err := Run(context.Background(), Config{Engine: core.DefaultConfig(), Workers: 8}, tenants)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Owners == 0 {
		t.Fatal("nothing ran")
	}
	if res.Stats.Errors != 0 {
		for _, tr := range res.Tenants {
			for ji, e := range tr.Errs {
				if e != nil {
					t.Errorf("tenant %s job %d: %v", tr.ID, ji, e)
				}
			}
		}
		t.FailNow()
	}
}

// TestFleetValidation: configuration errors are reported, not paniced.
func TestFleetValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Engine: core.DefaultConfig()}, nil); err == nil {
		t.Fatal("expected error for empty fleet")
	}
	if _, err := Run(context.Background(), Config{Engine: core.DefaultConfig()}, []Tenant{{ID: "x"}}); err == nil {
		t.Fatal("expected error for nil graph/store")
	}
	s := fleetStudy(t, 1, 40, 1)
	ten := tenantOf("a", s)
	ten.Jobs[0].Annotator = nil
	res, err := Run(context.Background(), Config{Engine: core.DefaultConfig()}, []Tenant{ten})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tenants[0].Errs[0] == nil {
		t.Fatal("expected per-job error for missing annotator")
	}
}

// BenchmarkFleet is the bench-smoke target: a small fleet end to end,
// reporting owners/sec via the package's own accounting.
func BenchmarkFleet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tenants := []Tenant{
			tenantOf("t0", fleetStudy(b, 2, 80, 4)),
			tenantOf("t1", fleetStudy(b, 2, 80, 4)),
		}
		res, err := Run(context.Background(), Config{Engine: core.DefaultConfig(), Workers: 4}, tenants)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Owners != 4 {
			b.Fatalf("ran %d owners", res.Stats.Owners)
		}
	}
}

// TestFleetSnapshotOnlyTenant: a tenant backed purely by an mmap'd
// snapshot file (nil Graph) produces runs byte-identical to the same
// tenant holding the live graph.
func TestFleetSnapshotOnlyTenant(t *testing.T) {
	ref := fleetStudy(t, 2, 100, 11)
	want := serialBaseline(t, ref)

	s := fleetStudy(t, 2, 100, 11)
	snap := s.Graph.Snapshot()
	table, err := snapfile.TableFromStore(snap.Nodes(), s.Profiles)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tenant.snap")
	if err := snapfile.Create(path, snapfile.Contents{Snapshot: snap, Profiles: table}); err != nil {
		t.Fatal(err)
	}
	f, err := snapfile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	tn := Tenant{ID: "mmap", Snapshot: f.Snapshot(), Store: f.Profiles().Store()}
	for _, o := range s.Owners {
		tn.Jobs = append(tn.Jobs, OwnerJob{Owner: o.ID, Annotator: active.Infallible(o), Confidence: o.Confidence})
	}
	res, err := Run(context.Background(), Config{Engine: core.DefaultConfig(), Workers: 2}, []Tenant{tn})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tenants[0]
	for ji, run := range tr.Runs {
		if tr.Errs[ji] != nil {
			t.Fatalf("job %d: %v", ji, tr.Errs[ji])
		}
		if d := diffRuns(run, want[run.Owner]); d != "" {
			t.Fatalf("owner %d differs from serial graph-backed run: %s", run.Owner, d)
		}
	}

	// A tenant with neither graph nor snapshot is a config error.
	if _, err := Run(context.Background(), Config{Engine: core.DefaultConfig()}, []Tenant{{ID: "x", Store: s.Profiles}}); err == nil {
		t.Fatal("tenant without graph or snapshot accepted")
	}
	// A nil-graph tenant with a custom NetworkSim is a config error.
	bad := Config{Engine: core.DefaultConfig()}
	bad.Engine.Pool.NetworkSim = func(g *graph.Graph, o, u graph.UserID) float64 { return 0 }
	if _, err := Run(context.Background(), bad, []Tenant{{ID: "x", Snapshot: f.Snapshot(), Store: s.Profiles}}); err == nil {
		t.Fatal("nil-graph tenant with custom NetworkSim accepted")
	}
}
