package fleet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sightrisk/internal/active"
	"sightrisk/internal/core"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
)

func newTestScheduler(t *testing.T, workers int) *Scheduler {
	t.Helper()
	s, err := NewScheduler(SchedulerConfig{Engine: core.DefaultConfig(), Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSchedulerMatchesSerial: every run out of the incremental
// scheduler — jobs admitted one at a time, executed concurrently — is
// identical to its standalone serial run, same as the batch fleet.
func TestSchedulerMatchesSerial(t *testing.T) {
	study := fleetStudy(t, 3, 120, 11)
	want := serialBaseline(t, study)
	s := newTestScheduler(t, 4)
	defer s.Close()

	snap := study.Graph.Snapshot()
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		got = make(map[graph.UserID]*core.OwnerRun)
	)
	for _, o := range study.Owners {
		adm, err := s.Admit("tenant-a")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		o := o
		go func() {
			defer wg.Done()
			run, err := adm.Run(context.Background(), Job{
				Graph:      study.Graph,
				Store:      study.Profiles,
				Snapshot:   snap,
				Owner:      o.ID,
				Annotator:  active.Infallible(o),
				Confidence: o.Confidence,
			})
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			got[o.ID] = run
			mu.Unlock()
		}()
	}
	wg.Wait()
	for id, ref := range want {
		if d := diffRuns(ref, got[id]); d != "" {
			t.Errorf("owner %d diverged from serial baseline: %s", id, d)
		}
	}
	st := s.Stats()
	if st.Completed != len(study.Owners) {
		t.Errorf("Completed = %d, want %d", st.Completed, len(study.Owners))
	}
	if st.Active != 0 {
		t.Errorf("Active = %d after all runs released, want 0", st.Active)
	}
}

// TestSchedulerActiveLimit: a tenant at MaxActive admitted jobs gets
// an OverBudgetError with a short RetryAfter, and admission recovers
// once a job releases.
func TestSchedulerActiveLimit(t *testing.T) {
	s := newTestScheduler(t, 2)
	defer s.Close()
	s.Limit("t", TenantLimits{MaxActive: 1})

	adm, err := s.Admit("t")
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Admit("t")
	var over *OverBudgetError
	if !errors.As(err, &over) {
		t.Fatalf("second Admit: got %v, want *OverBudgetError", err)
	}
	if over.Reason != SkipActive {
		t.Errorf("Reason = %q, want %q", over.Reason, SkipActive)
	}
	if over.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0 (clears when a job finishes)", over.RetryAfter)
	}
	// Other tenants are unaffected.
	if adm2, err := s.Admit("u"); err != nil {
		t.Errorf("other tenant rejected: %v", err)
	} else {
		adm2.Cancel()
	}
	adm.Cancel()
	if adm3, err := s.Admit("t"); err != nil {
		t.Errorf("Admit after release: %v", err)
	} else {
		adm3.Cancel()
	}
}

// TestSchedulerQueryBudget: once a tenant's finished jobs spend its
// query budget, further admissions are rejected with SkipQueries.
func TestSchedulerQueryBudget(t *testing.T) {
	study := fleetStudy(t, 1, 100, 3)
	s := newTestScheduler(t, 1)
	defer s.Close()
	s.Limit("t", TenantLimits{MaxQueries: 1})

	o := study.Owners[0]
	adm, err := s.Admit("t")
	if err != nil {
		t.Fatal(err)
	}
	run, err := adm.Run(context.Background(), Job{
		Graph: study.Graph, Store: study.Profiles,
		Owner: o.ID, Annotator: active.Infallible(o), Confidence: o.Confidence,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.QueriedCount() < 1 {
		t.Fatalf("run spent %d queries, test needs >= 1", run.QueriedCount())
	}
	_, err = s.Admit("t")
	var over *OverBudgetError
	if !errors.As(err, &over) {
		t.Fatalf("Admit over budget: got %v, want *OverBudgetError", err)
	}
	if over.Reason != SkipQueries {
		t.Errorf("Reason = %q, want %q", over.Reason, SkipQueries)
	}
	if over.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", over.RetryAfter)
	}
	if usage := s.Stats().Tenants["t"]; usage.Queries != run.QueriedCount() {
		t.Errorf("accounted queries = %d, want %d", usage.Queries, run.QueriedCount())
	}
}

// TestSchedulerQueuedCancellation: a job canceled while waiting for a
// worker slot returns the context error and releases its admission.
func TestSchedulerQueuedCancellation(t *testing.T) {
	study := fleetStudy(t, 1, 60, 5)
	s := newTestScheduler(t, 1)
	defer s.Close()

	// Occupy the only worker with a job blocked on its annotator.
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	o := study.Owners[0]
	blocker := active.FallibleFunc(func(ctx context.Context, u graph.UserID) (label.Label, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return o.LabelStranger(u), nil
	})
	admA, err := s.Admit("t")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := admA.Run(context.Background(), Job{
			Graph: study.Graph, Store: study.Profiles,
			Owner: o.ID, Annotator: blocker, Confidence: o.Confidence,
		}); err != nil {
			t.Error(err)
		}
	}()
	<-started

	admB, err := s.Admit("t")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := admB.Run(ctx, Job{
		Graph: study.Graph, Store: study.Profiles,
		Owner: o.ID, Annotator: active.Infallible(o), Confidence: o.Confidence,
	}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("queued Run under expired ctx: got %v, want deadline exceeded", err)
	}
	close(release)
	<-done
	if st := s.Stats(); st.Active != 0 {
		t.Errorf("Active = %d after release, want 0", st.Active)
	}
}

// TestSchedulerClose: a closed scheduler rejects admissions.
func TestSchedulerClose(t *testing.T) {
	s := newTestScheduler(t, 1)
	s.Close()
	if _, err := s.Admit("t"); err == nil {
		t.Fatal("Admit after Close succeeded")
	}
}

// TestSchedulerConfigureCannotBreakSerialPath: a Configure callback
// that tries to set Workers (or detach the shared weight cache) is
// overridden — the serial path is what makes served output
// byte-identical to standalone runs.
func TestSchedulerConfigureCannotBreakSerialPath(t *testing.T) {
	study := fleetStudy(t, 1, 80, 9)
	want := serialBaseline(t, study)
	s := newTestScheduler(t, 2)
	defer s.Close()

	o := study.Owners[0]
	adm, err := s.Admit("t")
	if err != nil {
		t.Fatal(err)
	}
	run, err := adm.Run(context.Background(), Job{
		Graph: study.Graph, Store: study.Profiles,
		Owner: o.ID, Annotator: active.Infallible(o), Confidence: o.Confidence,
		Configure: func(c *core.Config) {
			c.Workers = 8 // must be ignored
			c.Weights = nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := diffRuns(want[o.ID], run); d != "" {
		t.Errorf("run diverged from serial baseline: %s", d)
	}
}
