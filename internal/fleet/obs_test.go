package fleet

// Observability contract of the fleet scheduler: every event carries
// tenant/owner attribution, each owner job's events land as one
// contiguous block regardless of scheduler concurrency, and every
// dispatch decision is visible in the stream and the metrics.

import (
	"context"
	"testing"

	"sightrisk/internal/core"
	"sightrisk/internal/obs"
)

func TestFleetObservability(t *testing.T) {
	ring := obs.NewRing(1 << 15)
	metrics := &obs.Metrics{}
	ecfg := core.DefaultConfig()
	ecfg.Observer = ring
	ecfg.Metrics = metrics

	tenants := []Tenant{
		tenantOf("t0", fleetStudy(t, 3, 120, 7)),
		tenantOf("t1", fleetStudy(t, 3, 120, 7)),
	}
	res, err := Run(context.Background(), Config{Engine: ecfg, Workers: 4}, tenants)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Owners != 6 || res.Stats.Errors != 0 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if ring.Dropped() != 0 {
		t.Fatalf("ring dropped %d events", ring.Dropped())
	}
	events := ring.Events()

	// Dispatch decisions: one per owner job, attributed to its tenant,
	// mirrored in the counters.
	dispatched := map[string]int{}
	for _, ev := range events {
		if ev.Kind == obs.KindDispatch {
			if ev.Tenant == "" || ev.Owner == 0 {
				t.Fatalf("dispatch event without attribution: %+v", ev)
			}
			dispatched[ev.Tenant]++
		}
	}
	if dispatched["t0"] != 3 || dispatched["t1"] != 3 {
		t.Fatalf("dispatch events per tenant = %v, want 3+3", dispatched)
	}
	if got := metrics.FleetDispatched.Load(); got != 6 {
		t.Fatalf("FleetDispatched = %d, want 6", got)
	}
	if got := metrics.FleetSkipped.Load(); got != 0 {
		t.Fatalf("FleetSkipped = %d, want 0", got)
	}

	// Engine-run events: per owner job one contiguous
	// run.start..run.end block whose every event carries the same
	// tenant and owner. Dispatch events are emitted live by the
	// scheduler goroutine and may interleave between (not within)
	// flushed blocks, so they are filtered out first.
	type jobKey struct {
		tenant string
		owner  int64
	}
	seen := map[jobKey]int{}
	var cur *jobKey
	for _, ev := range events {
		if ev.Kind == obs.KindDispatch || ev.Kind == obs.KindSkip {
			continue
		}
		if ev.Tenant == "" || ev.Owner == 0 {
			t.Fatalf("engine event without attribution: %+v", ev)
		}
		k := jobKey{ev.Tenant, ev.Owner}
		switch {
		case ev.Kind == obs.KindRunStart:
			if cur != nil {
				t.Fatalf("run.start for %+v inside open block %+v", k, *cur)
			}
			cur = &k
			seen[k]++
		case cur == nil:
			t.Fatalf("event outside any run block: %+v", ev)
		case *cur != k:
			t.Fatalf("block %+v interleaved with event of %+v", *cur, k)
		}
		if ev.Kind == obs.KindRunEnd {
			cur = nil
		}
	}
	if cur != nil {
		t.Fatalf("unterminated run block %+v", *cur)
	}
	if len(seen) != 6 {
		t.Fatalf("saw %d distinct (tenant, owner) blocks, want 6: %v", len(seen), seen)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("job %+v ran %d blocks, want 1", k, n)
		}
	}
}
