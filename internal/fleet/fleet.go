// Package fleet schedules the risk pipeline for a *fleet* of owners —
// many tenants, each bringing their own social graph and owner jobs —
// over one shared worker budget. It is the multi-tenant runner from
// ROADMAP's production-scale north star: the paper's deployment target
// is an OSN-scale service where millions of owners request risk
// estimates, so runs must share compute fairly and reuse whatever is
// content-identical across tenants.
//
// The scheduler provides:
//
//   - Deficit-round-robin fair share. Tenants are visited in a fixed
//     rotation; each visit earns the tenant a quantum of cost credit
//     (weighted by Tenant.Shares) and jobs are dispatched while the
//     tenant's deficit covers the head job's cost (its estimated
//     stranger count). Heavy tenants therefore cannot starve light
//     ones, and dispatch order is fully deterministic.
//
//   - Per-tenant budget accounting. Tenant.Budget caps the estimated
//     structural cost a tenant may dispatch (MaxCost, decided
//     deterministically at dispatch time) and the owner queries it may
//     spend (MaxQueries, decided at job boundaries from the actual
//     query spend of the tenant's finished jobs). Jobs over budget are
//     skipped, never half-run.
//
//   - Batched annotator transport. With Config.Transport set, label
//     questions from concurrently running owners are gathered into one
//     round-trip (Transport.LabelBatch) instead of one per question —
//     the fleet-level amortization that matters when annotators sit
//     behind real network latency.
//
//   - Shared caches. All tenants share one content-keyed weight-matrix
//     cache (cluster.WeightCache) and each tenant's jobs share one
//     frozen graph snapshot, so identical pool content across owners,
//     tenants and repeat runs is computed once.
//
// Per-owner output is byte-identical to a standalone serial
// core.Engine run: every owner job runs the engine's exact legacy
// serial path (Workers = 1); fleet parallelism comes only from running
// independent owner jobs concurrently, and nothing an owner's session
// observes — pool order, RNG streams, answer values — depends on the
// other jobs.
package fleet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sightrisk/internal/active"
	"sightrisk/internal/cluster"
	"sightrisk/internal/core"
	"sightrisk/internal/graph"
	"sightrisk/internal/obs"
	"sightrisk/internal/parallel"
	"sightrisk/internal/profile"
)

// OwnerJob is one owner's risk-estimation request.
type OwnerJob struct {
	// Owner is the user the estimate is for.
	Owner graph.UserID
	// Annotator answers the owner's label queries. Ignored when the
	// fleet runs with a batched Transport (questions are routed there
	// instead).
	Annotator active.FallibleAnnotator
	// Confidence overrides the engine's Learn.Confidence; NaN keeps it.
	Confidence float64
}

// Budget caps a tenant's resource consumption. Zero values mean
// unlimited.
type Budget struct {
	// MaxCost caps the summed estimated cost (stranger count) of the
	// tenant's dispatched jobs. Enforced deterministically at dispatch
	// time: a job whose cost would cross the cap is skipped.
	MaxCost int
	// MaxQueries caps the owner-label queries the tenant's jobs spend.
	// Enforced at job boundaries against the actual spend of finished
	// jobs; to keep the skip decision deterministic, a tenant with a
	// query budget runs its jobs one at a time (other tenants still run
	// concurrently).
	MaxQueries int
}

// Tenant is one isolated customer of the fleet: a graph, its profile
// store, and the owner jobs to run on them.
type Tenant struct {
	// ID names the tenant in results, stats and transport questions.
	ID string
	// Graph is the tenant's social graph. It may be nil when Snapshot
	// is set — the mmap-backed tenant shape, where a graph/snapfile
	// mapping is the only graph representation that exists — as long as
	// the engine runs the paper's network-similarity (no custom
	// Pool.NetworkSim, which needs a live *graph.Graph).
	Graph *graph.Graph
	// Store holds the tenant's user profiles.
	Store *profile.Store
	// Snapshot is the frozen view shared by the tenant's jobs; taken
	// from Graph at Run start when nil.
	Snapshot *graph.Snapshot
	// Jobs are the owner estimates to run.
	Jobs []OwnerJob
	// Shares weights the tenant's DRR credit per rotation visit.
	// 0 means 1.
	Shares int
	// Budget caps the tenant's resource consumption.
	Budget Budget
}

// Config parameterizes a fleet run.
type Config struct {
	// Engine is the per-owner pipeline configuration. Workers is
	// ignored: every owner job runs the exact serial path so its output
	// is byte-identical to a standalone run.
	Engine core.Config
	// Workers bounds how many owner jobs run concurrently across all
	// tenants. 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Quantum is the DRR credit (in cost units = strangers) a tenant
	// earns per rotation visit, before Shares weighting. 0 picks the
	// largest single job cost, so every visit can dispatch at least one
	// job (the classic O(1) DRR setting).
	Quantum int
	// Weights is the shared weight-matrix cache; a private one is
	// created when nil.
	Weights *cluster.WeightCache
	// Transport, when non-nil, answers label questions in cross-owner
	// batches. See Transport.
	Transport Transport
	// MaxBatch caps questions per round-trip. 0 means 16.
	MaxBatch int

	// onDispatch, when set (tests), observes the deterministic dispatch
	// sequence: tenant index, job index, skipped.
	onDispatch func(tenant, job int, skipped bool)
}

// SkipReason says why a job was not run.
type SkipReason string

const (
	// SkipCost: the job's estimated cost would cross Budget.MaxCost.
	SkipCost SkipReason = "cost-budget"
	// SkipQueries: the tenant's finished jobs spent Budget.MaxQueries.
	SkipQueries SkipReason = "query-budget"
)

// TenantResult collects one tenant's outcomes in job order. Runs[i] is
// nil exactly when Errs[i] != nil or Skipped[i] != "".
type TenantResult struct {
	// ID echoes the tenant's id.
	ID string
	// Runs holds the completed runs, one slot per job.
	Runs []*core.OwnerRun
	// Errs holds per-job hard failures.
	Errs []error
	// Skipped holds per-job budget skips ("" when the job ran).
	Skipped []SkipReason
	// Queries is the owner-label spend of the tenant's finished jobs.
	Queries int
	// CostDispatched is the estimated cost the scheduler charged.
	CostDispatched int
}

// Stats aggregates fleet-level throughput accounting.
type Stats struct {
	Owners  int                // jobs run to completion (including partial runs)
	Skipped int                // jobs skipped over budgets
	Errors  int                // jobs that failed hard
	Queries int                // owner labels spent across the fleet
	Elapsed time.Duration      // wall time of the whole fleet run
	Cache   cluster.CacheStats // shared weight-cache accounting
	Batch   BatchStats         // batched-transport accounting
}

// OwnersPerSec returns completed owners per second of wall time.
func (s Stats) OwnersPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Owners) / s.Elapsed.Seconds()
}

// QueriesPerSec returns owner queries answered per second of wall time.
func (s Stats) QueriesPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Queries) / s.Elapsed.Seconds()
}

// Result is the outcome of a fleet run.
type Result struct {
	// Tenants holds per-tenant outcomes, in input order.
	Tenants []TenantResult
	// Stats aggregates fleet-level throughput accounting.
	Stats Stats
}

// job is one dispatched unit.
type job struct {
	tenant, index int
	owner         graph.UserID
	ann           active.FallibleAnnotator
	confidence    float64
	cost          int
	// waitFor, when non-nil, gates execution on the previous job of a
	// query-budgeted tenant (closed when that job finishes).
	waitFor chan struct{}
	// done is closed when this job finishes (run or skipped).
	done chan struct{}
}

// Run executes every tenant's jobs and returns the per-tenant results
// plus fleet statistics. ctx cancellation stops dispatching new jobs
// and degrades in-flight ones into partial runs (the engine's graceful
// interruption semantics); Run still returns the work completed.
//
// Per-job failures (hard annotator or classifier errors) are recorded
// in TenantResult.Errs and do not abort the fleet. Run itself errors
// only on configuration problems.
func Run(ctx context.Context, cfg Config, tenants []Tenant) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("fleet: no tenants")
	}
	for ti := range tenants {
		t := &tenants[ti]
		if t.Store == nil {
			return nil, fmt.Errorf("fleet: tenant %q: store must not be nil", t.ID)
		}
		if t.Graph == nil && t.Snapshot == nil {
			return nil, fmt.Errorf("fleet: tenant %q: graph or snapshot must not be nil", t.ID)
		}
		if t.Graph == nil && cfg.Engine.Pool.NetworkSim != nil {
			return nil, fmt.Errorf("fleet: tenant %q: a custom NetworkSim needs a live graph, not only a snapshot", t.ID)
		}
		if t.Snapshot == nil {
			t.Snapshot = t.Graph.Snapshot()
		}
	}
	if cfg.Weights == nil {
		cfg.Weights = cluster.NewWeightCache()
	}
	ecfg := cfg.Engine
	ecfg.Workers = 1 // exact serial path per owner: byte-identical output
	ecfg.Weights = cfg.Weights
	if err := ecfg.Validate(); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}

	res := &Result{Tenants: make([]TenantResult, len(tenants))}
	jobs := make([][]*job, len(tenants))
	maxCost := 1
	for ti := range tenants {
		t := &tenants[ti]
		res.Tenants[ti] = TenantResult{
			ID:      t.ID,
			Runs:    make([]*core.OwnerRun, len(t.Jobs)),
			Errs:    make([]error, len(t.Jobs)),
			Skipped: make([]SkipReason, len(t.Jobs)),
		}
		jobs[ti] = make([]*job, len(t.Jobs))
		for ji, oj := range t.Jobs {
			cost := len(t.Snapshot.Strangers(oj.Owner))
			if cost < 1 {
				cost = 1
			}
			if cost > maxCost {
				maxCost = cost
			}
			jobs[ti][ji] = &job{
				tenant: ti, index: ji,
				owner: oj.Owner, ann: oj.Annotator, confidence: oj.Confidence,
				cost: cost,
				done: make(chan struct{}),
			}
		}
	}
	quantum := cfg.Quantum
	if quantum <= 0 {
		quantum = maxCost
	}

	var batch *batcher
	if cfg.Transport != nil {
		maxBatch := cfg.MaxBatch
		if maxBatch <= 0 {
			maxBatch = 16
		}
		batch = newBatcher(ctx, cfg.Transport, maxBatch)
		defer batch.close()
		// Fail pending questions promptly on cancellation so jobs
		// blocked in a round-trip degrade into partial runs instead of
		// waiting out the batch.
		stopWatch := make(chan struct{})
		defer close(stopWatch)
		go func() {
			select {
			case <-ctx.Done():
				batch.abort(ctx.Err())
			case <-stopWatch:
			}
		}()
	}

	workers := parallel.ResolveWorkers(cfg.Workers)
	dispatch := make(chan *job)
	r := &runner{cfg: ecfg, tenants: tenants, res: res, batch: batch}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range dispatch {
				r.run(ctx, j)
			}
		}()
	}

	start := time.Now()
	dispatchAll(ctx, cfg, tenants, jobs, quantum, res, dispatch)
	close(dispatch)
	wg.Wait()
	elapsed := time.Since(start)

	stats := Stats{Elapsed: elapsed, Cache: cfg.Weights.Stats()}
	if batch != nil {
		stats.Batch = batch.stats()
	}
	for ti := range res.Tenants {
		tr := &res.Tenants[ti]
		for ji := range tr.Runs {
			switch {
			case tr.Skipped[ji] != "":
				stats.Skipped++
			case tr.Errs[ji] != nil:
				stats.Errors++
			case tr.Runs[ji] != nil:
				stats.Owners++
			}
		}
		stats.Queries += tr.Queries
	}
	res.Stats = stats
	return res, nil
}

// dispatchAll is the deficit-round-robin dispatcher: a single
// goroutine visiting tenants in index order, so the dispatch sequence
// is a pure function of the job set and budgets.
func dispatchAll(ctx context.Context, cfg Config, tenants []Tenant, jobs [][]*job, quantum int, res *Result, dispatch chan<- *job) {
	heads := make([]int, len(tenants))    // next undispatched job per tenant
	deficits := make([]int, len(tenants)) // DRR credit per tenant
	prevDone := make([]chan struct{}, len(tenants))
	remaining := 0
	for _, js := range jobs {
		remaining += len(js)
	}
	for remaining > 0 {
		if ctx.Err() != nil {
			// Canceled: mark everything undispatched as skipped by the
			// context (recorded as an error, not a silent absence).
			for ti, js := range jobs {
				for ; heads[ti] < len(js); heads[ti]++ {
					res.Tenants[ti].Errs[js[heads[ti]].index] = ctx.Err()
					remaining--
				}
			}
			return
		}
		for ti := range tenants {
			js := jobs[ti]
			if heads[ti] >= len(js) {
				deficits[ti] = 0
				continue
			}
			shares := tenants[ti].Shares
			if shares <= 0 {
				shares = 1
			}
			deficits[ti] += quantum * shares
			for heads[ti] < len(js) && deficits[ti] >= js[heads[ti]].cost {
				if ctx.Err() != nil {
					break
				}
				j := js[heads[ti]]
				tr := &res.Tenants[ti]
				budget := tenants[ti].Budget
				if budget.MaxCost > 0 && tr.CostDispatched+j.cost > budget.MaxCost {
					tr.Skipped[j.index] = SkipCost
					close(j.done)
					if cfg.onDispatch != nil {
						cfg.onDispatch(ti, j.index, true)
					}
					obs.Emit(cfg.Engine.Observer, obs.Event{Kind: obs.KindSkip, Tenant: tenants[ti].ID, Owner: int64(j.owner), N: j.cost, Note: string(SkipCost)})
					if m := cfg.Engine.Metrics; m != nil {
						m.FleetSkipped.Add(1)
					}
					heads[ti]++
					remaining--
					continue
				}
				if budget.MaxQueries > 0 {
					// Serialize the tenant: the query-budget decision for
					// this job needs the actual spend of every prior job.
					j.waitFor = prevDone[ti]
					prevDone[ti] = j.done
				}
				deficits[ti] -= j.cost
				tr.CostDispatched += j.cost
				if cfg.onDispatch != nil {
					cfg.onDispatch(ti, j.index, false)
				}
				obs.Emit(cfg.Engine.Observer, obs.Event{Kind: obs.KindDispatch, Tenant: tenants[ti].ID, Owner: int64(j.owner), N: j.cost})
				if m := cfg.Engine.Metrics; m != nil {
					m.FleetDispatched.Add(1)
				}
				select {
				case dispatch <- j:
				case <-ctx.Done():
					// The job was charged but never ran; record the
					// cancellation.
					res.Tenants[ti].Errs[j.index] = ctx.Err()
					close(j.done)
				}
				heads[ti]++
				remaining--
			}
		}
	}
}

// runner executes dispatched jobs on the worker goroutines. Per-job
// result slots (Runs[i], Errs[i], Skipped[i]) are written by exactly
// one goroutine; the per-tenant Queries accumulator is shared, so it
// is guarded by mu.
type runner struct {
	cfg     core.Config
	tenants []Tenant
	res     *Result
	batch   *batcher
	mu      sync.Mutex
	// flushMu serializes per-job event-buffer flushes into the shared
	// observer, keeping every owner run's events contiguous in the
	// stream (worker goroutines would otherwise interleave them).
	flushMu sync.Mutex
}

func (r *runner) queries(tenant int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.res.Tenants[tenant].Queries
}

func (r *runner) addQueries(tenant, n int) {
	r.mu.Lock()
	r.res.Tenants[tenant].Queries += n
	r.mu.Unlock()
}

func (r *runner) run(ctx context.Context, j *job) {
	defer close(j.done)
	t := &r.tenants[j.tenant]
	tr := &r.res.Tenants[j.tenant]
	if j.waitFor != nil {
		// Query-budgeted tenant: wait out the previous job so the
		// budget decision below sees its actual spend.
		select {
		case <-j.waitFor:
		case <-ctx.Done():
			tr.Errs[j.index] = ctx.Err()
			return
		}
	}
	if max := t.Budget.MaxQueries; max > 0 && r.queries(j.tenant) >= max {
		tr.Skipped[j.index] = SkipQueries
		obs.Emit(r.cfg.Observer, obs.Event{Kind: obs.KindSkip, Tenant: t.ID, Owner: int64(j.owner), N: j.cost, Note: string(SkipQueries)})
		if m := r.cfg.Metrics; m != nil {
			m.FleetSkipped.Add(1)
		}
		return
	}
	ann := j.ann
	if r.batch != nil {
		ann = r.batch.annotator(t.ID, j.owner)
		// The flush rule counts running transport-backed jobs; see
		// batcher.
		r.batch.register()
		defer r.batch.deregister()
	}
	if ann == nil {
		tr.Errs[j.index] = fmt.Errorf("fleet: tenant %q owner %d: no annotator and no transport", t.ID, j.owner)
		return
	}
	ecfg := r.cfg
	ecfg.Snapshot = t.Snapshot
	ecfg.Tenant = t.ID
	if base := r.cfg.Observer; base != nil {
		// Buffer the whole owner run and flush it as one contiguous
		// block, so concurrent jobs never interleave their events and
		// every event carries its tenant/owner attribution intact.
		buf := &obs.Buffer{}
		ecfg.Observer = buf
		defer func() {
			r.flushMu.Lock()
			buf.FlushTo(base)
			r.flushMu.Unlock()
		}()
	}
	run, err := core.New(ecfg).RunOwner(ctx, t.Graph, t.Store, j.owner, ann, j.confidence)
	if err != nil {
		tr.Errs[j.index] = err
		return
	}
	tr.Runs[j.index] = run
	r.addQueries(j.tenant, run.QueriedCount())
}
