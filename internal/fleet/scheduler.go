package fleet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sightrisk/internal/active"
	"sightrisk/internal/cluster"
	"sightrisk/internal/core"
	"sightrisk/internal/graph"
	"sightrisk/internal/parallel"
	"sightrisk/internal/profile"
)

// Scheduler is the long-lived, incremental counterpart of Run: where
// Run executes a fixed batch of tenants' jobs and returns, a Scheduler
// accepts jobs one at a time — the arrival pattern of a serving layer
// — while preserving the fleet invariants: one shared worker budget
// across all tenants, per-tenant admission control, one shared
// content-keyed weight cache, and the exact serial engine path per job
// so every job's output is byte-identical to a standalone run.
//
// The flow is two-phase so a front end can reject over-budget work
// synchronously (HTTP 429) before queueing anything: Admit reserves a
// slot claim against the tenant's limits, then Admission.Run executes
// the job when a shared worker slot frees up. Each phase is cheap;
// the expensive wait (for a worker) happens inside Run under the
// job's own context.
type Scheduler struct {
	ecfg    core.Config
	weights *cluster.WeightCache
	sem     chan struct{}

	mu      sync.Mutex
	tenants map[string]*schedTenant
	closed  bool
	active  int
	ran     int
}

// schedTenant is one tenant's admission-control state.
type schedTenant struct {
	limits  TenantLimits
	active  int
	queries int
}

// TenantLimits caps a tenant's use of a Scheduler. Zero values mean
// unlimited.
type TenantLimits struct {
	// MaxActive caps the tenant's admitted-but-unreleased jobs
	// (queued plus running). Admissions beyond it fail with
	// ErrOverBudget (reason SkipActive) until a job finishes.
	MaxActive int
	// MaxQueries caps the total owner-label queries spent by the
	// tenant's finished jobs, the same resource Budget.MaxQueries
	// meters in batch runs. Once crossed, further admissions fail with
	// ErrOverBudget (reason SkipQueries).
	MaxQueries int
}

// SkipActive reports a job rejected because the tenant is already at
// its concurrent-admission limit (Scheduler admission only; batch runs
// have no equivalent, they own the whole job set).
const SkipActive SkipReason = "active-limit"

// OverBudgetError reports an admission rejected by a tenant limit.
// RetryAfter is the front end's backoff hint: concurrency rejections
// clear as soon as any job finishes (short hint), budget exhaustion
// clears only when an operator raises the limit (long hint).
type OverBudgetError struct {
	// Tenant is the rejected tenant.
	Tenant string
	// Reason says which limit rejected it.
	Reason SkipReason
	// RetryAfter is the suggested wait before retrying the admission.
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverBudgetError) Error() string {
	return fmt.Sprintf("fleet: tenant %q over budget (%s)", e.Tenant, e.Reason)
}

// SchedulerConfig parameterizes NewScheduler.
type SchedulerConfig struct {
	// Engine is the default per-job pipeline configuration. Workers is
	// ignored: every job runs the exact serial path (see Config.Engine).
	Engine core.Config
	// Workers bounds how many jobs run concurrently across all tenants.
	// 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Weights is the shared weight-matrix cache; a private one is
	// created when nil.
	Weights *cluster.WeightCache
}

// Job is one owner estimate submitted to a Scheduler.
type Job struct {
	// Graph and Store hold the tenant's social graph and profiles.
	// Graph may be nil when Snapshot is set (an mmap-backed
	// graph/snapfile tenant) and the engine runs the paper's
	// network-similarity.
	Graph *graph.Graph
	// Store holds the tenant's user profiles.
	Store *profile.Store
	// Snapshot, when non-nil, is the frozen CSR view shared by the
	// tenant's jobs (the engine freezes its own otherwise).
	Snapshot *graph.Snapshot
	// Owner is the user the estimate is for.
	Owner graph.UserID
	// Annotator answers the owner's label queries.
	Annotator active.FallibleAnnotator
	// Confidence overrides the engine's Learn.Confidence; NaN keeps it.
	Confidence float64
	// Configure, when non-nil, adjusts the job's engine config after
	// the scheduler applies its own fields (seed, resume checkpoint,
	// checkpoint sink, observer, deadline-bearing retry policy, ...).
	// It must not touch Workers, Weights, Snapshot or Tenant — the
	// scheduler owns those.
	Configure func(*core.Config)
}

// NewScheduler validates the configuration and returns a ready
// scheduler.
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) {
	ecfg := cfg.Engine
	ecfg.Workers = 1 // exact serial path per job: byte-identical output
	if err := ecfg.Validate(); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	weights := cfg.Weights
	if weights == nil {
		weights = cluster.NewWeightCache()
	}
	return &Scheduler{
		ecfg:    ecfg,
		weights: weights,
		sem:     make(chan struct{}, parallel.ResolveWorkers(cfg.Workers)),
		tenants: map[string]*schedTenant{},
	}, nil
}

// Limit sets (or replaces) a tenant's admission limits. Unknown
// tenants are created on first use with unlimited budgets, so calling
// Limit is only needed to constrain one.
func (s *Scheduler) Limit(tenant string, limits TenantLimits) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenant(tenant).limits = limits
}

// tenant returns the tenant's state, creating it unlimited. Callers
// hold mu.
func (s *Scheduler) tenant(id string) *schedTenant {
	t := s.tenants[id]
	if t == nil {
		t = &schedTenant{}
		s.tenants[id] = t
	}
	return t
}

// Admission is a reserved slot claim: the tenant's limits have been
// checked and its active count charged. Exactly one of Run or Cancel
// must be called to release it.
type Admission struct {
	s      *Scheduler
	tenant string
	done   bool
}

// Admit checks the tenant's limits and reserves an admission. It
// never blocks: rejections return *OverBudgetError immediately so a
// serving front end can answer 429 before queueing the job.
func (s *Scheduler) Admit(tenant string) (*Admission, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("fleet: scheduler closed")
	}
	t := s.tenant(tenant)
	if max := t.limits.MaxQueries; max > 0 && t.queries >= max {
		return nil, &OverBudgetError{Tenant: tenant, Reason: SkipQueries, RetryAfter: time.Minute}
	}
	if max := t.limits.MaxActive; max > 0 && t.active >= max {
		return nil, &OverBudgetError{Tenant: tenant, Reason: SkipActive, RetryAfter: time.Second}
	}
	t.active++
	s.active++
	return &Admission{s: s, tenant: tenant}, nil
}

// Cancel releases the admission without running a job.
func (a *Admission) Cancel() {
	if a.done {
		return
	}
	a.done = true
	a.s.release(a.tenant, 0)
}

// Run executes the job on the admission's slot: it waits for a shared
// worker (honoring ctx), runs the engine's exact serial path with the
// scheduler's shared weight cache, accounts the tenant's query spend,
// and releases the admission. The returned run is byte-identical to a
// standalone serial core.Engine run of the same job — scheduler
// concurrency never leaks into results.
//
// Interruptions degrade into partial runs per the engine's contract;
// Run itself errors on hard failures and on cancellation while still
// queued.
func (a *Admission) Run(ctx context.Context, job Job) (*core.OwnerRun, error) {
	if a.done {
		return nil, fmt.Errorf("fleet: admission already released")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	queries := 0
	defer func() {
		a.done = true
		a.s.release(a.tenant, queries)
	}()
	select {
	case a.s.sem <- struct{}{}:
		defer func() { <-a.s.sem }()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	ecfg := a.s.ecfg
	ecfg.Weights = a.s.weights
	ecfg.Snapshot = job.Snapshot
	ecfg.Tenant = a.tenant
	if job.Configure != nil {
		job.Configure(&ecfg)
		ecfg.Workers = 1 // the serial path is non-negotiable
		ecfg.Weights = a.s.weights
	}
	run, err := core.New(ecfg).RunOwner(ctx, job.Graph, job.Store, job.Owner, job.Annotator, job.Confidence)
	if err != nil {
		return nil, err
	}
	queries = run.QueriedCount()
	a.s.mu.Lock()
	a.s.ran++
	a.s.mu.Unlock()
	return run, nil
}

// release returns an admission slot and accounts the query spend.
func (s *Scheduler) release(tenant string, queries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenant(tenant)
	t.active--
	s.active--
	t.queries += queries
}

// TenantUsage is one tenant's point-in-time accounting.
type TenantUsage struct {
	// Active is the tenant's admitted-but-unreleased jobs.
	Active int `json:"active"`
	// Queries is the owner-label spend of the tenant's finished jobs.
	Queries int `json:"queries"`
	// MaxActive / MaxQueries echo the configured limits (0 unlimited).
	MaxActive int `json:"max_active,omitempty"`
	// MaxQueries echoes the configured query budget (0 unlimited).
	MaxQueries int `json:"max_queries,omitempty"`
}

// SchedulerStats is a point-in-time snapshot of a Scheduler.
type SchedulerStats struct {
	// Workers is the shared worker budget.
	Workers int `json:"workers"`
	// Active is the total admitted-but-unreleased jobs.
	Active int `json:"active"`
	// Completed is the number of jobs run to completion (including
	// partial runs).
	Completed int `json:"completed"`
	// Tenants maps tenant id to its usage.
	Tenants map[string]TenantUsage `json:"tenants,omitempty"`
	// Cache reports the shared weight cache.
	Cache cluster.CacheStats `json:"cache"`
}

// Stats snapshots the scheduler for monitoring surfaces (/varz).
func (s *Scheduler) Stats() SchedulerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SchedulerStats{
		Workers:   cap(s.sem),
		Active:    s.active,
		Completed: s.ran,
		Cache:     s.weights.Stats(),
	}
	if len(s.tenants) > 0 {
		st.Tenants = make(map[string]TenantUsage, len(s.tenants))
		for id, t := range s.tenants {
			st.Tenants[id] = TenantUsage{
				Active: t.active, Queries: t.queries,
				MaxActive: t.limits.MaxActive, MaxQueries: t.limits.MaxQueries,
			}
		}
	}
	return st
}

// Close rejects all future admissions. Jobs already admitted run to
// completion; callers wanting a faster stop cancel their contexts.
func (s *Scheduler) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}
