package active

import (
	"context"
	"errors"
	"testing"
	"time"

	"sightrisk/internal/graph"
	"sightrisk/internal/label"
)

// instantSleep records requested backoff delays without waiting.
func instantSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return nil
	}
}

func TestRetryPolicyValidation(t *testing.T) {
	bad := []RetryPolicy{
		{MaxAttempts: -1},
		{BaseDelay: -time.Second},
		{MaxDelay: -time.Second},
		{QueryTimeout: -time.Second},
		{SessionTimeout: -time.Second},
		{Jitter: -0.1},
		{Jitter: 1.1},
		{Multiplier: -2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad policy %d accepted: %+v", i, p)
		}
	}
	if err := (RetryPolicy{MaxAttempts: 5, Jitter: 0.5, Multiplier: 3}).Validate(); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
}

func TestWithRetryDisabledIsPassthrough(t *testing.T) {
	inner := FallibleFunc(func(context.Context, graph.UserID) (label.Label, error) {
		return label.Risky, nil
	})
	for _, p := range []RetryPolicy{{}, {MaxAttempts: 1}} {
		if got := WithRetry(inner, p); got == nil {
			t.Fatal("nil annotator")
		} else if _, wrapped := got.(*retrier); wrapped {
			t.Fatalf("disabled policy %+v still wrapped the annotator", p)
		}
	}
	if _, wrapped := WithRetry(inner, RetryPolicy{MaxAttempts: 2}).(*retrier); !wrapped {
		t.Fatal("enabled policy did not wrap")
	}
}

func TestRetryTransientThenSucceed(t *testing.T) {
	attempts := 0
	inner := FallibleFunc(func(context.Context, graph.UserID) (label.Label, error) {
		attempts++
		if attempts <= 2 {
			return 0, Transient(errors.New("blip"))
		}
		return label.VeryRisky, nil
	})
	var delays []time.Duration
	ann := WithRetry(inner, RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    15 * time.Millisecond,
		Multiplier:  2,
		Sleep:       instantSleep(&delays),
	})
	l, err := ann.LabelStranger(context.Background(), 7)
	if err != nil || l != label.VeryRisky {
		t.Fatalf("got (%v, %v), want (VeryRisky, nil)", l, err)
	}
	if attempts != 3 {
		t.Fatalf("%d attempts, want 3", attempts)
	}
	// Backoff grows by the multiplier and is capped by MaxDelay.
	if len(delays) != 2 || delays[0] != 10*time.Millisecond || delays[1] != 15*time.Millisecond {
		t.Fatalf("backoff schedule %v, want [10ms 15ms]", delays)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	attempts := 0
	boom := Transient(errors.New("still down"))
	inner := FallibleFunc(func(context.Context, graph.UserID) (label.Label, error) {
		attempts++
		return 0, boom
	})
	var delays []time.Duration
	ann := WithRetry(inner, RetryPolicy{MaxAttempts: 4, Sleep: instantSleep(&delays)})
	if _, err := ann.LabelStranger(context.Background(), 1); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the transient cause", err)
	}
	if attempts != 4 || len(delays) != 3 {
		t.Fatalf("attempts=%d delays=%d, want 4 attempts and 3 sleeps", attempts, len(delays))
	}
}

func TestRetryTerminalErrorsPassThrough(t *testing.T) {
	for name, terminal := range map[string]error{
		"abandoned": ErrAbandoned,
		"canceled":  context.Canceled,
		"plain":     errors.New("bad label"),
	} {
		attempts := 0
		inner := FallibleFunc(func(context.Context, graph.UserID) (label.Label, error) {
			attempts++
			return 0, terminal
		})
		ann := WithRetry(inner, RetryPolicy{MaxAttempts: 5, Sleep: instantSleep(new([]time.Duration))})
		if _, err := ann.LabelStranger(context.Background(), 1); !errors.Is(err, terminal) {
			t.Fatalf("%s: got %v", name, err)
		}
		if attempts != 1 {
			t.Fatalf("%s: terminal error retried %d times", name, attempts)
		}
	}
}

func TestRetryStopsWhenSessionDies(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	inner := FallibleFunc(func(context.Context, graph.UserID) (label.Label, error) {
		attempts++
		cancel() // session dies while the query is failing
		return 0, Transient(errors.New("blip"))
	})
	ann := WithRetry(inner, RetryPolicy{MaxAttempts: 10, Sleep: instantSleep(new([]time.Duration))})
	if _, err := ann.LabelStranger(ctx, 1); err == nil {
		t.Fatal("canceled session returned success")
	}
	if attempts != 1 {
		t.Fatalf("retried %d times after the session context died", attempts)
	}
}

func TestQueryTimeoutBoundsEachAttempt(t *testing.T) {
	attempts := 0
	inner := FallibleFunc(func(ctx context.Context, _ graph.UserID) (label.Label, error) {
		attempts++
		if attempts < 3 {
			<-ctx.Done() // hang until the per-attempt deadline fires
			return 0, ctx.Err()
		}
		return label.NotRisky, nil
	})
	ann := WithRetry(inner, RetryPolicy{
		MaxAttempts:  3,
		QueryTimeout: 5 * time.Millisecond,
		Sleep:        instantSleep(new([]time.Duration)),
	})
	l, err := ann.LabelStranger(context.Background(), 1)
	if err != nil || l != label.NotRisky {
		t.Fatalf("got (%v, %v), want recovery on attempt 3", l, err)
	}
	if attempts != 3 {
		t.Fatalf("%d attempts, want 3 (two deadline hits retried)", attempts)
	}
}

func TestTransientClassification(t *testing.T) {
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) != nil")
	}
	base := errors.New("io glitch")
	te := Transient(base)
	if !IsTransient(te) || !errors.Is(te, base) {
		t.Fatalf("Transient lost its nature: %v", te)
	}
	if !IsTransient(Transient(Transient(base))) {
		t.Fatal("nested transient not recognized")
	}
	for name, err := range map[string]error{
		"nil":       nil,
		"plain":     base,
		"abandoned": ErrAbandoned,
		"canceled":  context.Canceled,
		"deadline":  context.DeadlineExceeded,
	} {
		if IsTransient(err) {
			t.Fatalf("%s misclassified transient", name)
		}
	}
}

func TestSessionInterruptReturnsPartialResult(t *testing.T) {
	members, weights, truth := twoGroupPool(30, label.NotRisky, label.VeryRisky)
	calls := 0
	ann := FallibleFunc(func(_ context.Context, s graph.UserID) (label.Label, error) {
		calls++
		if calls > 4 {
			return 0, ErrAbandoned
		}
		return truth[s], nil
	})
	sess, err := NewSession(members, weights, ann, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.RunContext(context.Background())
	if !errors.Is(err, ErrAbandoned) {
		t.Fatalf("err = %v, want ErrAbandoned", err)
	}
	if res == nil {
		t.Fatal("interrupted session returned no partial result")
	}
	if res.Reason != StopInterrupted {
		t.Fatalf("reason = %s, want %s", res.Reason, StopInterrupted)
	}
	if res.QueriedCount() != 4 {
		t.Fatalf("partial result has %d owner labels, want the 4 answered", res.QueriedCount())
	}
	for s, ok := range res.OwnerLabeled {
		if ok && res.Labels[s] != truth[s] {
			t.Fatalf("answered label for %d lost: %v", s, res.Labels[s])
		}
	}
}

func TestSessionCancellationBeforeFirstQuery(t *testing.T) {
	members, weights, truth := twoGroupPool(30, label.NotRisky, label.Risky)
	asked := 0
	ann := FallibleFunc(func(_ context.Context, s graph.UserID) (label.Label, error) {
		asked++
		return truth[s], nil
	})
	sess, err := NewSession(members, weights, ann, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := sess.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Reason != StopInterrupted {
		t.Fatalf("res = %+v, want interrupted partial result", res)
	}
	if asked != 0 {
		t.Fatalf("canceled session still asked %d questions", asked)
	}
}

func TestAfterRoundErrorAbortsSession(t *testing.T) {
	members, weights, truth := twoGroupPool(30, label.NotRisky, label.VeryRisky)
	sinkErr := errors.New("checkpoint sink full")
	cfg := DefaultConfig()
	rounds := 0
	cfg.AfterRound = func(r Round) error {
		rounds++
		if r.Number == 2 {
			return sinkErr
		}
		return nil
	}
	sess, err := NewSession(members, weights, Infallible(truthAnnotator(truth)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunContext(context.Background()); !errors.Is(err, sinkErr) {
		t.Fatalf("err = %v, want the AfterRound error", err)
	}
	if rounds != 2 {
		t.Fatalf("AfterRound ran %d times, want 2 (abort on the failing round)", rounds)
	}
}

func TestAfterRoundSeesEveryRound(t *testing.T) {
	members, weights, truth := twoGroupPool(24, label.NotRisky, label.VeryRisky)
	cfg := DefaultConfig()
	var seen []int
	queried := 0
	cfg.AfterRound = func(r Round) error {
		seen = append(seen, r.Number)
		queried += len(r.Queried)
		return nil
	}
	sess, err := NewSession(members, weights, Infallible(truthAnnotator(truth)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Rounds) {
		t.Fatalf("AfterRound saw %d rounds, result has %d", len(seen), len(res.Rounds))
	}
	for i, n := range seen {
		if n != i+1 {
			t.Fatalf("round numbers out of order: %v", seen)
		}
	}
	if queried != res.QueriedCount() {
		t.Fatalf("AfterRound saw %d queries, result has %d", queried, res.QueriedCount())
	}
}
