package active

import (
	"context"
	"errors"

	"sightrisk/internal/graph"
	"sightrisk/internal/label"
)

// ErrAbandoned is the terminal error an annotator returns when the
// owner has walked away for good — in the paper's deployment the human
// owner of the "Sight" app simply stops answering. It is permanent by
// contract: once an annotator returns ErrAbandoned it must keep
// returning it (the engine enforces this with a latch regardless).
// The engine reacts by degrading gracefully: finished pools keep their
// learned labels, interrupted pools fall back to majority predictions,
// and the run yields a partial report instead of an error.
var ErrAbandoned = errors.New("active: owner abandoned the session")

// FallibleAnnotator is the fault-aware annotator contract. Real owner
// frontends fail: API calls time out, rate limits hit, the owner walks
// away mid-session. LabelStranger reports those conditions instead of
// being forced to invent a label.
//
// Error classification:
//   - transient errors (wrapped with Transient, or implementing
//     `Transient() bool`) are retried by the engine's RetryPolicy;
//   - ErrAbandoned and context errors are terminal and trigger
//     graceful degradation;
//   - any other error is terminal and aborts the run with that error.
//
// The concurrency contract matches Annotator: calls are always
// serialized by the engine, in a deterministic order, so
// implementations need no locking.
type FallibleAnnotator interface {
	// LabelStranger returns the owner's risk label for the stranger,
	// or an error. ctx carries the engine's cancellation signal plus
	// any per-query deadline; implementations doing I/O should honor
	// it.
	LabelStranger(ctx context.Context, s graph.UserID) (label.Label, error)
}

// FallibleFunc adapts a function to FallibleAnnotator.
type FallibleFunc func(ctx context.Context, s graph.UserID) (label.Label, error)

// LabelStranger implements FallibleAnnotator.
func (f FallibleFunc) LabelStranger(ctx context.Context, s graph.UserID) (label.Label, error) {
	return f(ctx, s)
}

// Infallible adapts a legacy never-failing Annotator to the fallible
// contract. The adapter ignores the context (the wrapped annotator
// cannot be interrupted mid-call); the engine still checks the context
// at every query boundary, so cancellation is honored between
// questions.
func Infallible(a Annotator) FallibleAnnotator {
	return infallibleAdapter{a}
}

type infallibleAdapter struct{ a Annotator }

func (ad infallibleAdapter) LabelStranger(_ context.Context, s graph.UserID) (label.Label, error) {
	return ad.a.LabelStranger(s), nil
}

// transientError marks an error as retriable.
type transientError struct{ err error }

func (e *transientError) Error() string   { return e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

// Transient wraps err so the engine's retry policy treats it as
// retriable (a timeout, a rate limit, a dropped connection — the
// failures the paper's crawler fought for weeks). A nil err returns
// nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err}
}

// IsTransient reports whether err is retriable: wrapped with Transient
// or carrying a `Transient() bool` method anywhere in its chain.
// ErrAbandoned and context cancellation/deadline errors are never
// transient — they are terminal by definition.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrAbandoned) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	return false
}
