package active

import (
	"sightrisk/internal/graph"
	"sightrisk/internal/label"

	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// RetryPolicy controls how the engine handles transient annotator
// failures: how often a single query is retried, how retries back off,
// and the deadlines bounding one query attempt and one whole owner
// session. The zero value disables retrying (one attempt, no
// deadlines).
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per query (the first
	// try included). Values <= 1 mean a single attempt.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; 0 defaults
	// to 50ms when retries are enabled.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff; 0 defaults to 2s.
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts; values < 1 default
	// to 2.
	Multiplier float64
	// Jitter in [0,1] randomizes each delay by ±Jitter/2 of its value,
	// decorrelating retry storms. Jitter only affects timing, never
	// results, so reports stay deterministic.
	Jitter float64
	// QueryTimeout bounds each individual attempt; 0 means no
	// per-attempt deadline. An attempt that exceeds it counts as a
	// transient failure (retried while attempts remain) as long as the
	// session itself is still alive.
	QueryTimeout time.Duration
	// SessionTimeout bounds the whole owner run. When it expires the
	// run degrades gracefully to a partial report, exactly like
	// context cancellation.
	SessionTimeout time.Duration
	// Seed drives the jitter RNG (deterministic backoff schedules for
	// reproducible fault tests).
	Seed int64
	// Sleep waits between attempts; nil uses a timer honoring ctx.
	// Tests inject instant sleeps here.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Validate rejects nonsensical policies with descriptive errors.
func (p RetryPolicy) Validate() error {
	if p.MaxAttempts < 0 {
		return fmt.Errorf("active: RetryPolicy.MaxAttempts must be >= 0, got %d", p.MaxAttempts)
	}
	if p.BaseDelay < 0 || p.MaxDelay < 0 || p.QueryTimeout < 0 || p.SessionTimeout < 0 {
		return fmt.Errorf("active: RetryPolicy durations must be >= 0 (base %v, max %v, query %v, session %v)",
			p.BaseDelay, p.MaxDelay, p.QueryTimeout, p.SessionTimeout)
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		return fmt.Errorf("active: RetryPolicy.Jitter must be in [0,1], got %g", p.Jitter)
	}
	if p.Multiplier < 0 {
		return fmt.Errorf("active: RetryPolicy.Multiplier must be >= 0, got %g", p.Multiplier)
	}
	return nil
}

// enabled reports whether the policy changes anything over a bare
// annotator call.
func (p RetryPolicy) enabled() bool {
	return p.MaxAttempts > 1 || p.QueryTimeout > 0
}

// WithRetry wraps the annotator with the policy: transient failures
// are retried with exponential backoff and jitter, each attempt
// optionally bounded by QueryTimeout. Terminal errors (ErrAbandoned,
// context errors from the session, anything not marked transient) pass
// through immediately. A policy that is effectively disabled returns
// the annotator unchanged.
func WithRetry(inner FallibleAnnotator, p RetryPolicy) FallibleAnnotator {
	return WithRetryHook(inner, p, nil)
}

// WithRetryHook is WithRetry with an observation hook: onRetry, when
// non-nil, fires once per re-attempt decision (after a transient
// failure, before the backoff sleep). The engine's metrics layer counts
// annotator retries through it.
func WithRetryHook(inner FallibleAnnotator, p RetryPolicy, onRetry func()) FallibleAnnotator {
	if !p.enabled() {
		return inner
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = timerSleep
	}
	return &retrier{inner: inner, p: p, sleep: sleep, rng: rand.New(rand.NewSource(p.Seed)), onRetry: onRetry}
}

type retrier struct {
	inner   FallibleAnnotator
	p       RetryPolicy
	sleep   func(context.Context, time.Duration) error
	rng     *rand.Rand
	onRetry func()
}

func (r *retrier) LabelStranger(ctx context.Context, s graph.UserID) (label.Label, error) {
	attempts := r.p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	delay := r.p.BaseDelay
	if delay <= 0 {
		delay = 50 * time.Millisecond
	}
	maxDelay := r.p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 2 * time.Second
	}
	mult := r.p.Multiplier
	if mult < 1 {
		mult = 2
	}
	var err error
	for attempt := 1; ; attempt++ {
		var l label.Label
		l, err = r.attempt(ctx, s)
		if err == nil {
			return l, nil
		}
		if ctx.Err() != nil {
			// The session itself is gone — don't burn retries.
			return 0, err
		}
		// A per-attempt deadline is a transient condition of this
		// attempt, not of the session (checked above).
		retriable := IsTransient(err) || errors.Is(err, context.DeadlineExceeded)
		if !retriable || attempt >= attempts {
			return 0, err
		}
		if r.onRetry != nil {
			r.onRetry()
		}
		if serr := r.sleep(ctx, r.jittered(delay)); serr != nil {
			return 0, serr
		}
		delay = time.Duration(float64(delay) * mult)
		if delay > maxDelay {
			delay = maxDelay
		}
	}
}

func (r *retrier) attempt(ctx context.Context, s graph.UserID) (label.Label, error) {
	if r.p.QueryTimeout > 0 {
		actx, cancel := context.WithTimeout(ctx, r.p.QueryTimeout)
		defer cancel()
		return r.inner.LabelStranger(actx, s)
	}
	return r.inner.LabelStranger(ctx, s)
}

// jittered spreads d by ±Jitter/2. The engine serializes annotator
// calls, so the RNG needs no locking.
func (r *retrier) jittered(d time.Duration) time.Duration {
	if r.p.Jitter <= 0 {
		return d
	}
	f := 1 + r.p.Jitter*(r.rng.Float64()-0.5)
	return time.Duration(float64(d) * f)
}

func timerSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
