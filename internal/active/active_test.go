package active

import (
	"math"
	"math/rand"
	"testing"

	"sightrisk/internal/classify"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
)

// twoGroupPool builds a pool whose first half is one homogeneous group
// and second half another, with block-structured weights (the shape
// real NPP pools have). truth assigns labels per half.
func twoGroupPool(n int, la, lb label.Label) (members []graph.UserID, weights [][]float64, truth map[graph.UserID]label.Label) {
	members = make([]graph.UserID, n)
	truth = make(map[graph.UserID]label.Label, n)
	for i := range members {
		members[i] = graph.UserID(100 + i)
		if i < n/2 {
			truth[members[i]] = la
		} else {
			truth[members[i]] = lb
		}
	}
	weights = make([][]float64, n)
	for i := range weights {
		weights[i] = make([]float64, n)
		for j := range weights[i] {
			if i == j {
				continue
			}
			if (i < n/2) == (j < n/2) {
				weights[i][j] = 0.9
			} else {
				weights[i][j] = 0.05
			}
		}
	}
	return members, weights, truth
}

func truthAnnotator(truth map[graph.UserID]label.Label) Annotator {
	return AnnotatorFunc(func(s graph.UserID) label.Label { return truth[s] })
}

func newSession(t *testing.T, members []graph.UserID, weights [][]float64, ann Annotator, cfg Config) *Session {
	t.Helper()
	s, err := NewSession(members, weights, Infallible(ann), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	members, weights, truth := twoGroupPool(6, label.NotRisky, label.Risky)
	ann := truthAnnotator(truth)
	bad := []Config{
		{PerRound: 0, Confidence: 80, StableRounds: 2, RMSEThreshold: 0.5},
		{PerRound: 3, Confidence: -1, StableRounds: 2, RMSEThreshold: 0.5},
		{PerRound: 3, Confidence: 101, StableRounds: 2, RMSEThreshold: 0.5},
		{PerRound: 3, Confidence: 80, StableRounds: 0, RMSEThreshold: 0.5},
		{PerRound: 3, Confidence: 80, StableRounds: 2, RMSEThreshold: -0.1},
	}
	for i, cfg := range bad {
		if _, err := NewSession(members, weights, Infallible(ann), cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if _, err := NewSession(members, weights, nil, DefaultConfig()); err == nil {
		t.Fatal("nil annotator accepted")
	}
	if _, err := NewSession(members, weights[:3], Infallible(ann), DefaultConfig()); err == nil {
		t.Fatal("mismatched matrix accepted")
	}
	ragged := [][]float64{{0, 1}, {1}}
	if _, err := NewSession(members[:2], ragged, Infallible(ann), DefaultConfig()); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestChangeTolerance(t *testing.T) {
	// Definition 5: tolerance = (Lmax - Lmin)(100 - c)/100 = 2(100-c)/100.
	cases := []struct{ c, want float64 }{
		{100, 0}, {0, 2}, {50, 1}, {80, 0.4}, {78.39, 0.4322},
	}
	for _, tt := range cases {
		if got := ChangeTolerance(tt.c); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("ChangeTolerance(%g) = %g, want %g", tt.c, got, tt.want)
		}
	}
}

func TestTrivialPoolFullyLabeled(t *testing.T) {
	members, weights, truth := twoGroupPool(3, label.Risky, label.VeryRisky)
	sess := newSession(t, members, weights, truthAnnotator(truth), DefaultConfig())
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopTrivial {
		t.Fatalf("reason = %v, want trivial", res.Reason)
	}
	if res.QueriedCount() != 3 {
		t.Fatalf("queried = %d, want 3", res.QueriedCount())
	}
	for m, want := range truth {
		if res.Labels[m] != want {
			t.Fatalf("label[%d] = %v, want %v", m, res.Labels[m], want)
		}
		if !res.OwnerLabeled[m] {
			t.Fatalf("member %d not marked owner-labeled", m)
		}
	}
}

func TestEmptyPool(t *testing.T) {
	sess := newSession(t, nil, nil, truthAnnotator(nil), DefaultConfig())
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopTrivial || len(res.Labels) != 0 {
		t.Fatalf("empty pool result: %+v", res)
	}
}

func TestConvergesOnSeparablePool(t *testing.T) {
	members, weights, truth := twoGroupPool(40, label.NotRisky, label.VeryRisky)
	cfg := DefaultConfig()
	cfg.Rand = rand.New(rand.NewSource(5))
	sess := newSession(t, members, weights, truthAnnotator(truth), cfg)
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopConverged {
		t.Fatalf("reason = %v, want converged (rounds: %d)", res.Reason, len(res.Rounds))
	}
	// Far fewer owner labels than pool members.
	if res.QueriedCount() >= len(members) {
		t.Fatalf("queried %d of %d members", res.QueriedCount(), len(members))
	}
	// All final labels correct on this cleanly separable pool.
	for m, want := range truth {
		if res.Labels[m] != want {
			t.Fatalf("label[%d] = %v, want %v", m, res.Labels[m], want)
		}
	}
	// Every member has a prediction entry.
	if len(res.Predicted) != len(members) {
		t.Fatalf("predictions for %d members, want %d", len(res.Predicted), len(members))
	}
}

func TestMaxRoundsStops(t *testing.T) {
	// A noisy annotator prevents convergence; MaxRounds must bound the
	// session.
	members, weights, _ := twoGroupPool(60, label.NotRisky, label.VeryRisky)
	rng := rand.New(rand.NewSource(9))
	noisy := AnnotatorFunc(func(s graph.UserID) label.Label {
		return label.Label(1 + rng.Intn(3))
	})
	cfg := DefaultConfig()
	cfg.MaxRounds = 4
	cfg.Rand = rand.New(rand.NewSource(5))
	sess := newSession(t, members, weights, noisy, cfg)
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopMaxRounds {
		t.Fatalf("reason = %v, want max-rounds", res.Reason)
	}
	if len(res.Rounds) != 4 {
		t.Fatalf("rounds = %d, want 4", len(res.Rounds))
	}
}

func TestExhaustionWhenNeverStable(t *testing.T) {
	// Confidence 100 → tolerance 0 → |change| >= 0 always holds → the
	// pool never stabilizes and the owner labels everything (the
	// manual-labeling escape hatch the paper describes).
	members, weights, truth := twoGroupPool(12, label.NotRisky, label.Risky)
	cfg := DefaultConfig()
	cfg.Confidence = 100
	cfg.Rand = rand.New(rand.NewSource(5))
	sess := newSession(t, members, weights, truthAnnotator(truth), cfg)
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopExhausted {
		t.Fatalf("reason = %v, want exhausted", res.Reason)
	}
	if res.QueriedCount() != len(members) {
		t.Fatalf("queried %d, want all %d", res.QueriedCount(), len(members))
	}
}

func TestRMSEMeasuredAgainstPriorPredictions(t *testing.T) {
	// Homogeneous pool: after round 1 every prediction equals the
	// true label, so every later round's validation RMSE must be 0.
	members, weights, truth := twoGroupPool(20, label.Risky, label.Risky)
	cfg := DefaultConfig()
	cfg.Rand = rand.New(rand.NewSource(2))
	sess := newSession(t, members, weights, truthAnnotator(truth), cfg)
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) < 2 {
		t.Fatalf("rounds = %d, want >= 2", len(res.Rounds))
	}
	if !math.IsNaN(res.Rounds[0].RMSE) {
		t.Fatalf("round 1 RMSE = %g, want NaN", res.Rounds[0].RMSE)
	}
	for _, rd := range res.Rounds[1:] {
		if rd.RMSE != 0 {
			t.Fatalf("round %d RMSE = %g, want 0", rd.Number, rd.RMSE)
		}
		if rd.ExactMatches != rd.ExactTotal {
			t.Fatalf("round %d matches %d/%d", rd.Number, rd.ExactMatches, rd.ExactTotal)
		}
	}
	matches, total := res.ExactMatchStats()
	if total == 0 || matches != total {
		t.Fatalf("exact stats %d/%d", matches, total)
	}
}

func TestUnstabilizedCounting(t *testing.T) {
	members, weights, truth := twoGroupPool(20, label.NotRisky, label.VeryRisky)
	cfg := DefaultConfig()
	cfg.Rand = rand.New(rand.NewSource(3))
	sess := newSession(t, members, weights, truthAnnotator(truth), cfg)
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds[0].Unstabilized != -1 {
		t.Fatalf("round 1 unstabilized = %d, want -1", res.Rounds[0].Unstabilized)
	}
	for _, rd := range res.Rounds[1:] {
		if rd.Unstabilized < 0 || rd.Unstabilized > len(members) {
			t.Fatalf("round %d unstabilized = %d out of range", rd.Number, rd.Unstabilized)
		}
	}
}

func TestInvalidAnnotatorLabel(t *testing.T) {
	members, weights, _ := twoGroupPool(10, label.NotRisky, label.Risky)
	bad := AnnotatorFunc(func(graph.UserID) label.Label { return label.Label(9) })
	sess := newSession(t, members, weights, bad, DefaultConfig())
	if _, err := sess.Run(); err == nil {
		t.Fatal("invalid annotator label accepted")
	}
	// Trivial pools validate too.
	sessTrivial := newSession(t, members[:2], [][]float64{{0, 1}, {1, 0}}, bad, DefaultConfig())
	if _, err := sessTrivial.Run(); err == nil {
		t.Fatal("invalid annotator label accepted on trivial pool")
	}
}

func TestLabelsCoverPool(t *testing.T) {
	members, weights, truth := twoGroupPool(30, label.NotRisky, label.Risky)
	cfg := DefaultConfig()
	cfg.Rand = rand.New(rand.NewSource(7))
	sess := newSession(t, members, weights, truthAnnotator(truth), cfg)
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != len(members) {
		t.Fatalf("labels for %d members, want %d", len(res.Labels), len(members))
	}
	for _, m := range members {
		if !res.Labels[m].Valid() {
			t.Fatalf("invalid final label for %d", m)
		}
	}
}

func TestQueriedNeverRepeats(t *testing.T) {
	members, weights, truth := twoGroupPool(24, label.NotRisky, label.VeryRisky)
	seen := map[graph.UserID]int{}
	counting := AnnotatorFunc(func(s graph.UserID) label.Label {
		seen[s]++
		return truth[s]
	})
	cfg := DefaultConfig()
	cfg.Confidence = 100 // force exhaustion: every member queried once
	cfg.Rand = rand.New(rand.NewSource(4))
	sess := newSession(t, members, weights, counting, cfg)
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	for m, n := range seen {
		if n != 1 {
			t.Fatalf("member %d queried %d times", m, n)
		}
	}
	if len(seen) != len(members) {
		t.Fatalf("queried %d distinct members, want %d", len(seen), len(members))
	}
}

func TestAlternativeClassifier(t *testing.T) {
	members, weights, truth := twoGroupPool(20, label.Risky, label.Risky)
	cfg := DefaultConfig()
	cfg.Classifier = classify.Majority{}
	cfg.Rand = rand.New(rand.NewSource(6))
	sess := newSession(t, members, weights, truthAnnotator(truth), cfg)
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range members {
		if res.Labels[m] != label.Risky {
			t.Fatalf("label[%d] = %v, want risky", m, res.Labels[m])
		}
	}
}
