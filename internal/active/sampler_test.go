package active

import (
	"math"
	"math/rand"
	"testing"

	"sightrisk/internal/classify"
	"sightrisk/internal/label"
)

func predsWithMargins(margins []float64) []classify.Prediction {
	// Build predictions whose top-two margin equals the given value.
	out := make([]classify.Prediction, len(margins))
	for i, m := range margins {
		top := (1 + m) / 2
		second := (1 - m) / 2
		out[i] = classify.Prediction{Scores: [3]float64{top, second, 0}}
	}
	return out
}

func TestRandomSamplerDistinctAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	unlabeled := []int{3, 5, 7, 9, 11}
	got := (RandomSampler{}).Select(rng, unlabeled, nil, nil, 3)
	if len(got) != 3 {
		t.Fatalf("selected %d, want 3", len(got))
	}
	seen := map[int]bool{}
	valid := map[int]bool{3: true, 5: true, 7: true, 9: true, 11: true}
	for _, idx := range got {
		if seen[idx] {
			t.Fatalf("duplicate selection %d", idx)
		}
		if !valid[idx] {
			t.Fatalf("selected %d not in unlabeled set", idx)
		}
		seen[idx] = true
	}
	// k larger than the pool clamps.
	got = (RandomSampler{}).Select(rng, unlabeled, nil, nil, 99)
	if len(got) != len(unlabeled) {
		t.Fatalf("clamped selection = %d", len(got))
	}
}

func TestUncertaintySamplerPicksSmallestMargins(t *testing.T) {
	preds := predsWithMargins([]float64{0.9, 0.1, 0.5, 0.05, 0.7})
	rng := rand.New(rand.NewSource(1))
	got := (UncertaintySampler{}).Select(rng, []int{0, 1, 2, 3, 4}, preds, nil, 2)
	// Smallest margins: index 3 (0.05) then 1 (0.1).
	if got[0] != 3 || got[1] != 1 {
		t.Fatalf("selected %v, want [3 1]", got)
	}
}

func TestUncertaintySamplerRound1FallsBackToRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	got := (UncertaintySampler{}).Select(rng, []int{0, 1, 2}, nil, nil, 2)
	if len(got) != 2 {
		t.Fatalf("selected %d", len(got))
	}
}

func TestDensitySamplerPicksDenseNodes(t *testing.T) {
	// Node 0 is similar to everyone; node 2 to nobody.
	w := [][]float64{
		{0, 0.9, 0.9},
		{0.9, 0, 0.1},
		{0.9, 0.1, 0},
	}
	rng := rand.New(rand.NewSource(1))
	got := (DensitySampler{}).Select(rng, []int{0, 1, 2}, nil, w, 1)
	if got[0] != 0 {
		t.Fatalf("selected %v, want node 0 (densest)", got)
	}
}

func TestDensitySamplerEmptyWeightsFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	got := (DensitySampler{}).Select(rng, []int{4, 5}, nil, nil, 1)
	if len(got) != 1 {
		t.Fatalf("selected %v", got)
	}
}

func TestUncertaintyDensitySampler(t *testing.T) {
	// Node 1 is uncertain but isolated; node 0 is uncertain and dense:
	// the combined sampler prefers node 0.
	preds := predsWithMargins([]float64{0.1, 0.1, 0.9})
	w := [][]float64{
		{0, 0.8, 0.8},
		{0.8, 0, 0.0},
		{0.8, 0.0, 0},
	}
	rng := rand.New(rand.NewSource(1))
	got := (UncertaintyDensitySampler{}).Select(rng, []int{0, 1, 2}, preds, w, 1)
	if got[0] != 0 {
		t.Fatalf("selected %v, want node 0", got)
	}
	// Round 1: density-only fallback still works.
	got = (UncertaintyDensitySampler{}).Select(rng, []int{0, 1, 2}, nil, w, 1)
	if got[0] != 0 {
		t.Fatalf("round-1 fallback selected %v, want node 0", got)
	}
}

func TestSamplerNames(t *testing.T) {
	names := map[string]Sampler{
		"random":              RandomSampler{},
		"uncertainty":         UncertaintySampler{},
		"density":             DensitySampler{},
		"uncertainty-density": UncertaintyDensitySampler{},
	}
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}

func TestCombinedStopper(t *testing.T) {
	s := CombinedStopper{RMSEThreshold: 0.5, StableRounds: 2}
	if s.ShouldStop(StopState{LastRMSE: math.NaN(), StableStreak: 5}) {
		t.Fatal("stopped without any validation RMSE")
	}
	if s.ShouldStop(StopState{LastRMSE: 0.6, StableStreak: 5}) {
		t.Fatal("stopped above RMSE threshold")
	}
	if s.ShouldStop(StopState{LastRMSE: 0.1, StableStreak: 1}) {
		t.Fatal("stopped with short stable streak")
	}
	if !s.ShouldStop(StopState{LastRMSE: 0.1, StableStreak: 2}) {
		t.Fatal("did not stop with both criteria met")
	}
}

func TestMaxConfidenceStopper(t *testing.T) {
	s := MaxConfidenceStopper{Confidence: 0.9}
	confident := []classify.Prediction{
		{Scores: [3]float64{0.95, 0.05, 0}},
		{Scores: [3]float64{0, 0.02, 0.98}},
	}
	unsure := []classify.Prediction{
		{Scores: [3]float64{0.95, 0.05, 0}},
		{Scores: [3]float64{0.5, 0.3, 0.2}},
	}
	if s.ShouldStop(StopState{Round: 1, Predictions: confident, Labeled: map[int]struct{}{}}) {
		t.Fatal("stopped in round 1")
	}
	if !s.ShouldStop(StopState{Round: 3, Predictions: confident, Labeled: map[int]struct{}{}}) {
		t.Fatal("did not stop with confident predictions")
	}
	if s.ShouldStop(StopState{Round: 3, Predictions: unsure, Labeled: map[int]struct{}{}}) {
		t.Fatal("stopped with an unsure prediction")
	}
	// Labeled members are exempt from the confidence bar.
	if !s.ShouldStop(StopState{Round: 3, Predictions: unsure, Labeled: map[int]struct{}{1: {}}}) {
		t.Fatal("labeled member blocked stopping")
	}
}

func TestOverallUncertaintyStopper(t *testing.T) {
	s := OverallUncertaintyStopper{Threshold: 0.5}
	sharp := []classify.Prediction{{Scores: [3]float64{1, 0, 0}}}
	flat := []classify.Prediction{{Scores: [3]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}}}
	if s.ShouldStop(StopState{Round: 1, Predictions: sharp, Labeled: map[int]struct{}{}}) {
		t.Fatal("stopped in round 1")
	}
	if !s.ShouldStop(StopState{Round: 2, Predictions: sharp, Labeled: map[int]struct{}{}}) {
		t.Fatal("did not stop with zero-entropy predictions")
	}
	if s.ShouldStop(StopState{Round: 2, Predictions: flat, Labeled: map[int]struct{}{}}) {
		t.Fatal("stopped with maximum-entropy predictions")
	}
	// All labeled → nothing left to be uncertain about.
	if !s.ShouldStop(StopState{Round: 2, Predictions: flat, Labeled: map[int]struct{}{0: {}}}) {
		t.Fatal("did not stop with everything labeled")
	}
}

func TestSessionWithUncertaintySampler(t *testing.T) {
	members, weights, truth := twoGroupPool(30, label.NotRisky, label.VeryRisky)
	cfg := DefaultConfig()
	cfg.Sampler = UncertaintySampler{}
	cfg.Rand = rand.New(rand.NewSource(11))
	sess := newSession(t, members, weights, truthAnnotator(truth), cfg)
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	for m, want := range truth {
		if res.Labels[m] != want {
			t.Fatalf("label[%d] = %v, want %v", m, res.Labels[m], want)
		}
	}
}

func TestSessionWithMaxConfidenceStopper(t *testing.T) {
	members, weights, truth := twoGroupPool(30, label.Risky, label.Risky)
	cfg := DefaultConfig()
	cfg.Stopper = MaxConfidenceStopper{Confidence: 0.9}
	cfg.Rand = rand.New(rand.NewSource(12))
	sess := newSession(t, members, weights, truthAnnotator(truth), cfg)
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopConverged {
		t.Fatalf("reason = %v, want converged", res.Reason)
	}
	if res.QueriedCount() >= len(members) {
		t.Fatal("confidence stopper did not save effort")
	}
}
