// Package active implements the paper's risk learning process
// (Section III): per-pool rounds of owner labeling and classifier
// prediction, with the accuracy (Definition 4), classification-change
// stabilization (Definition 5) and combined stopping rule of
// Section III-D.
//
// Each pool of strangers runs an independent Session. In every round
// the session samples a handful of still-unlabeled strangers from the
// pool, asks the Annotator (the owner — in this reproduction usually a
// simulated owner) for their risk labels, retrains the classifier on
// all collected labels, and predicts labels for the remaining
// strangers. Labels queried in round i+1 double as validation for the
// predictions of round i, which is how RMSE is measured without extra
// owner effort.
package active

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"sightrisk/internal/classify"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/obs"
)

// Annotator supplies owner risk judgments. Implementations may be a
// live UI or a simulated owner model. Annotator is the infallible
// legacy contract: LabelStranger cannot fail and cannot be
// interrupted. Annotators that can fail — real owner frontends with
// timeouts, rate limits and abandonment — implement FallibleAnnotator
// instead; wrap an Annotator with Infallible to use it where a
// FallibleAnnotator is expected.
//
// Concurrency contract: a Session calls LabelStranger from the single
// goroutine running Session.Run, and the core engine's parallel path
// serializes the calls of concurrent sessions through a deterministic
// turn gate — so implementations are never invoked concurrently and
// need no internal locking. Implementations that want reproducible
// pipeline output must be deterministic per stranger (same stranger →
// same label, regardless of question order).
type Annotator interface {
	// LabelStranger returns the owner's risk label for the stranger.
	LabelStranger(s graph.UserID) label.Label
}

// warmStartClassifier is the optional fast path a classifier may
// offer: seed the solve with the previous round's solution.
type warmStartClassifier interface {
	PredictFrom(weights [][]float64, labeled map[int]label.Label, init [][3]float64) ([]classify.Prediction, error)
}

// AnnotatorFunc adapts a function to the Annotator interface.
type AnnotatorFunc func(s graph.UserID) label.Label

// LabelStranger implements Annotator.
func (f AnnotatorFunc) LabelStranger(s graph.UserID) label.Label { return f(s) }

// Config parameterizes a learning session.
type Config struct {
	// PerRound is the number of strangers the owner labels each round
	// (paper: 3).
	PerRound int
	// Confidence is the owner-selected confidence c ∈ [0,100] used by
	// the classification-change tolerance (paper's user mean: ~78.39).
	Confidence float64
	// StableRounds is n: consecutive rounds without classification
	// change required to stop (paper: 2).
	StableRounds int
	// RMSEThreshold is the accuracy part of the stopping rule
	// (paper: 0.5).
	RMSEThreshold float64
	// MaxRounds caps the session to guarantee termination even with a
	// never-satisfied rule; 0 means "until the pool is exhausted".
	MaxRounds int
	// Classifier predicts labels from the labeled subset; nil defaults
	// to a per-session harmonic-function classifier. A non-nil
	// instance may be shared by concurrently running sessions (the
	// engine's parallel path does), so it must keep no mutable
	// per-call state — true of every classifier, sampler and stopper
	// in this module.
	Classifier classify.Classifier
	// Sampler selects each round's query set; nil defaults to the
	// paper's uniform RandomSampler.
	Sampler Sampler
	// Stopper decides when querying may stop; nil defaults to the
	// paper's CombinedStopper built from RMSEThreshold and
	// StableRounds.
	Stopper Stopper
	// Rand drives stranger sampling; nil defaults to a fixed seed so
	// sessions are reproducible.
	Rand *rand.Rand
	// AfterRound, when non-nil, is invoked after every completed round
	// with that round's trace — the engine uses it to checkpoint the
	// session so an interrupted run can resume without re-asking the
	// owner anything. Returning an error aborts the session with that
	// error (a failed checkpoint write should stop the run, not
	// silently lose durability).
	AfterRound func(Round) error
	// Observe, when non-nil, receives the session's structured events:
	// one KindQuery per owner label collected and one KindRound per
	// completed round. The engine decorates the hook with tenant, owner
	// and pool attribution before forwarding to its Observer; events
	// are emitted from the session goroutine in session order. Nil
	// costs nothing on the query/round hot path.
	Observe func(obs.Event)
	// Digests, when true, attaches an order-sensitive FNV-64a digest of
	// each round's predictions (label + expected value per member, in
	// member order) to the round events — the determinism auditor's
	// per-round fingerprint of classifier output and tie-breaks.
	Digests bool
}

// DefaultConfig returns the paper's experimental setting: 3 labels per
// round, confidence 80, n = 2 stable rounds, RMSE threshold 0.5.
func DefaultConfig() Config {
	return Config{
		PerRound:      3,
		Confidence:    80,
		StableRounds:  2,
		RMSEThreshold: 0.5,
	}
}

func (c Config) validate() error {
	if c.PerRound < 1 {
		return fmt.Errorf("active: PerRound must be >= 1, got %d", c.PerRound)
	}
	if c.Confidence < 0 || c.Confidence > 100 {
		return fmt.Errorf("active: Confidence must be in [0,100], got %g", c.Confidence)
	}
	if c.StableRounds < 1 {
		return fmt.Errorf("active: StableRounds must be >= 1, got %d", c.StableRounds)
	}
	if c.RMSEThreshold <= 0 {
		return fmt.Errorf("active: RMSEThreshold must be > 0, got %g", c.RMSEThreshold)
	}
	return nil
}

// Validate checks the configuration and returns a descriptive error
// for out-of-range fields (PerRound < 1, Confidence outside [0,100],
// StableRounds < 1, RMSEThreshold <= 0).
func (c Config) Validate() error { return c.validate() }

// ChangeTolerance returns Definition 5's tolerance for confidence c:
// (Lmax - Lmin) · (100 - c) / 100. A stranger's prediction is
// "unstabilized" in a round when the absolute change of its predicted
// label from the previous round is >= this tolerance. Note the literal
// consequence the paper points out: with c = 100 the tolerance is 0
// and even an unchanged label (change 0 >= 0) counts as unstabilized,
// so the session never stabilizes and the owner labels everything.
func ChangeTolerance(confidence float64) float64 {
	return float64(label.Max-label.Min) * (100 - confidence) / 100
}

// StopReason records why a session ended.
type StopReason string

// Session outcomes.
const (
	StopConverged   StopReason = "converged"    // RMSE and stabilization both satisfied
	StopExhausted   StopReason = "exhausted"    // every stranger in the pool was labeled
	StopMaxRounds   StopReason = "max-rounds"   // MaxRounds reached before convergence
	StopTrivial     StopReason = "trivial-pool" // pool too small to need prediction
	StopInterrupted StopReason = "interrupted"  // annotator failure, abandonment or cancellation
)

// Round is the trace of one labeling round.
type Round struct {
	// Number is the 1-based round index.
	Number int
	// Queried lists the strangers labeled this round.
	Queried []graph.UserID
	// RMSE compares this round's fresh owner labels against the
	// previous round's predictions (Definition 4). NaN in round 1,
	// where no prior predictions exist.
	RMSE float64
	// ExactMatches counts queried strangers whose previous-round
	// prediction exactly equals the owner label; ExactTotal is the
	// number of comparisons (0 in round 1).
	ExactMatches, ExactTotal int
	// Unstabilized counts pool strangers whose predicted label moved
	// by at least the confidence tolerance relative to the previous
	// round (Definition 5); -1 in round 1.
	Unstabilized int
}

// Result is the outcome of a pool session.
type Result struct {
	Pool []graph.UserID
	// Labels holds the final label of every pool member: the owner's
	// label where one was collected, the classifier's otherwise.
	Labels map[graph.UserID]label.Label
	// OwnerLabeled marks which members the owner labeled directly.
	OwnerLabeled map[graph.UserID]bool
	// Predicted holds the last classifier prediction for every member
	// (labeled members echo their owner label).
	Predicted map[graph.UserID]classify.Prediction
	Rounds    []Round
	Reason    StopReason
}

// QueriedCount returns the number of owner labels the session used.
func (r *Result) QueriedCount() int { return len(r.OwnerLabeled) }

// RoundsToStop returns the number of rounds the session ran.
func (r *Result) RoundsToStop() int { return len(r.Rounds) }

// ExactMatchStats sums the validation comparisons over all rounds and
// returns (matches, total). total is 0 for single-round sessions.
func (r *Result) ExactMatchStats() (matches, total int) {
	for _, rd := range r.Rounds {
		matches += rd.ExactMatches
		total += rd.ExactTotal
	}
	return matches, total
}

// Session runs the active-learning loop for one pool.
type Session struct {
	cfg     Config
	members []graph.UserID
	weights [][]float64
	ann     FallibleAnnotator
	clf     classify.Classifier
	sampler Sampler
	stopper Stopper
	rng     *rand.Rand
}

// NewSession prepares a session over the pool members with the given
// symmetric profile-similarity weight matrix (weights[i][j] between
// members[i] and members[j]). The annotator is fallible; wrap a legacy
// infallible Annotator with Infallible.
func NewSession(members []graph.UserID, weights [][]float64, ann FallibleAnnotator, cfg Config) (*Session, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if ann == nil {
		return nil, fmt.Errorf("active: annotator must not be nil")
	}
	if len(weights) != len(members) {
		return nil, fmt.Errorf("active: weight matrix is %dx?, want %dx%d", len(weights), len(members), len(members))
	}
	for i, row := range weights {
		if len(row) != len(members) {
			return nil, fmt.Errorf("active: weight row %d has %d entries, want %d", i, len(row), len(members))
		}
	}
	clf := cfg.Classifier
	if clf == nil {
		clf = classify.NewHarmonic()
	}
	sampler := cfg.Sampler
	if sampler == nil {
		sampler = RandomSampler{}
	}
	stopper := cfg.Stopper
	if stopper == nil {
		stopper = CombinedStopper{RMSEThreshold: cfg.RMSEThreshold, StableRounds: cfg.StableRounds}
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Session{
		cfg:     cfg,
		members: members,
		weights: weights,
		ann:     ann,
		clf:     clf,
		sampler: sampler,
		stopper: stopper,
		rng:     rng,
	}, nil
}

// Run executes the session without external cancellation; it is
// RunContext with a background context.
func (s *Session) Run() (*Result, error) { return s.RunContext(context.Background()) }

// RunContext executes rounds until the stopping condition of
// Section III-D holds: the most recent validation RMSE is below the
// threshold AND no classification change occurred for StableRounds
// consecutive rounds — or until the pool is exhausted or MaxRounds is
// hit.
//
// ctx is checked at every query boundary (before each owner question
// and at each round start); cancellation aborts the session at the
// next boundary. When the annotator fails or ctx is canceled,
// RunContext returns BOTH a partial Result (Reason StopInterrupted,
// carrying every owner label gathered so far plus the last round's
// predictions where available) and the error — callers decide whether
// to degrade gracefully from the partial state or to fail.
func (s *Session) RunContext(ctx context.Context) (*Result, error) {
	n := len(s.members)
	res := &Result{
		Pool:         s.members,
		Labels:       make(map[graph.UserID]label.Label, n),
		OwnerLabeled: make(map[graph.UserID]bool, n),
		Predicted:    make(map[graph.UserID]classify.Prediction, n),
	}
	if n == 0 {
		res.Reason = StopTrivial
		return res, nil
	}
	// Pools at or below the per-round budget are labeled outright:
	// prediction would save no owner effort.
	if n <= s.cfg.PerRound {
		tr := Round{Number: 1, RMSE: math.NaN(), Unstabilized: -1}
		for _, m := range s.members {
			if err := ctx.Err(); err != nil {
				res.Reason = StopInterrupted
				res.Rounds = []Round{tr}
				return res, err
			}
			l, err := s.ann.LabelStranger(ctx, m)
			if err != nil {
				res.Reason = StopInterrupted
				res.Rounds = []Round{tr}
				return res, err
			}
			if !l.Valid() {
				return nil, fmt.Errorf("active: annotator returned invalid label %d for %d", int(l), m)
			}
			res.Labels[m] = l
			res.OwnerLabeled[m] = true
			res.Predicted[m] = clampedPrediction(l)
			tr.Queried = append(tr.Queried, m)
			if s.cfg.Observe != nil {
				s.cfg.Observe(obs.Event{Kind: obs.KindQuery, Round: 1, User: int64(m), Label: int(l)})
			}
		}
		res.Reason = StopTrivial
		res.Rounds = []Round{tr}
		if s.cfg.Observe != nil {
			var dig obs.Digest
			if s.cfg.Digests {
				d := obs.NewDigest()
				for _, m := range s.members {
					p := res.Predicted[m]
					d = d.Int(int64(p.Label)).Float(p.Expected)
				}
				dig = d
			}
			s.cfg.Observe(obs.Event{Kind: obs.KindRound, Round: 1, N: -1, Value: -1, Digest: dig})
		}
		if s.cfg.AfterRound != nil {
			if err := s.cfg.AfterRound(tr); err != nil {
				return nil, err
			}
		}
		return res, nil
	}

	labeled := make(map[int]label.Label) // index -> owner label
	unlabeled := make([]int, 0, n)       // indices still unlabeled
	for i := range s.members {
		unlabeled = append(unlabeled, i)
	}
	var prev []classify.Prediction // previous round's predictions
	tolerance := ChangeTolerance(s.cfg.Confidence)

	stableStreak := 0
	lastRMSE := math.NaN()

	// interrupt assembles the partial result handed back alongside a
	// terminal annotator error or cancellation: owner labels collected
	// so far, plus the previous round's predictions for everyone else
	// (when at least one round completed).
	interrupt := func(err error) (*Result, error) {
		for i, m := range s.members {
			if l, ok := labeled[i]; ok {
				res.Labels[m] = l
				res.OwnerLabeled[m] = true
				res.Predicted[m] = clampedPrediction(l)
			} else if prev != nil {
				res.Predicted[m] = prev[i]
				res.Labels[m] = prev[i].Label
			}
		}
		res.Reason = StopInterrupted
		return res, err
	}

	for round := 1; ; round++ {
		if s.cfg.MaxRounds > 0 && round > s.cfg.MaxRounds {
			res.Reason = StopMaxRounds
			break
		}
		if err := ctx.Err(); err != nil {
			return interrupt(err)
		}
		// Sample this round's query set from the unlabeled pool.
		k := s.cfg.PerRound
		if k > len(unlabeled) {
			k = len(unlabeled)
		}
		queryIdx := s.sampler.Select(s.rng, unlabeled, prev, s.weights, k)
		tr := Round{Number: round, RMSE: math.NaN(), Unstabilized: -1}

		// Collect owner labels; validate the previous round's
		// predictions on exactly these strangers (Definition 4).
		var sqErr float64
		for _, idx := range queryIdx {
			m := s.members[idx]
			if err := ctx.Err(); err != nil {
				return interrupt(err)
			}
			l, err := s.ann.LabelStranger(ctx, m)
			if err != nil {
				return interrupt(err)
			}
			if !l.Valid() {
				return nil, fmt.Errorf("active: annotator returned invalid label %d for %d", int(l), m)
			}
			labeled[idx] = l
			tr.Queried = append(tr.Queried, m)
			if s.cfg.Observe != nil {
				s.cfg.Observe(obs.Event{Kind: obs.KindQuery, Round: round, User: int64(m), Label: int(l)})
			}
			if prev != nil {
				d := float64(l - prev[idx].Label)
				sqErr += d * d
				tr.ExactTotal++
				if prev[idx].Label == l {
					tr.ExactMatches++
				}
			}
		}
		unlabeled = removeIndices(unlabeled, queryIdx)
		if prev != nil && tr.ExactTotal > 0 {
			tr.RMSE = math.Sqrt(sqErr / float64(tr.ExactTotal))
			lastRMSE = tr.RMSE
		}

		// Retrain and predict, warm-starting from the previous round's
		// solution when the classifier supports it (the harmonic fixed
		// point is unique given the labels, so warm starting only
		// shortens the convergence path).
		var preds []classify.Prediction
		var err error
		if ws, ok := s.clf.(warmStartClassifier); ok && prev != nil {
			init := make([][3]float64, len(prev))
			for i, p := range prev {
				init[i] = p.Scores
			}
			preds, err = ws.PredictFrom(s.weights, labeled, init)
		} else {
			preds, err = s.clf.Predict(s.weights, labeled)
		}
		if err != nil {
			return nil, fmt.Errorf("active: round %d: %w", round, err)
		}

		// Stabilization check (Definition 5) against the previous
		// round's predictions, over the whole pool.
		if prev != nil {
			unstab := 0
			for i := range preds {
				if math.Abs(float64(preds[i].Label-prev[i].Label)) >= tolerance {
					unstab++
				}
			}
			tr.Unstabilized = unstab
			if unstab == 0 {
				stableStreak++
			} else {
				stableStreak = 0
			}
		}
		prev = preds
		res.Rounds = append(res.Rounds, tr)
		if s.cfg.Observe != nil {
			rmse := tr.RMSE
			if math.IsNaN(rmse) {
				rmse = -1 // JSON cannot carry NaN; -1 marks "no validation"
			}
			s.cfg.Observe(obs.Event{Kind: obs.KindRound, Round: round, N: tr.Unstabilized, Value: rmse, Digest: s.predsDigest(preds)})
		}
		if s.cfg.AfterRound != nil {
			if err := s.cfg.AfterRound(tr); err != nil {
				return nil, err
			}
		}

		if len(unlabeled) == 0 {
			res.Reason = StopExhausted
			break
		}
		labeledSet := make(map[int]struct{}, len(labeled))
		for idx := range labeled {
			labeledSet[idx] = struct{}{}
		}
		if s.stopper.ShouldStop(StopState{
			Round:        round,
			LastRMSE:     lastRMSE,
			StableStreak: stableStreak,
			Predictions:  preds,
			Labeled:      labeledSet,
		}) {
			res.Reason = StopConverged
			break
		}
	}

	// Assemble final labels from the last prediction pass.
	for i, m := range s.members {
		if l, ok := labeled[i]; ok {
			res.Labels[m] = l
			res.OwnerLabeled[m] = true
			res.Predicted[m] = clampedPrediction(l)
			continue
		}
		res.Predicted[m] = prev[i]
		res.Labels[m] = prev[i].Label
	}
	return res, nil
}

// predsDigest folds a prediction pass into an order-sensitive
// fingerprint (label plus expected-value bits per member, in member
// order); zero when digests are disabled. ULP-level differences in the
// harmonic solution — the raw material of tie-break flips — change it.
func (s *Session) predsDigest(preds []classify.Prediction) obs.Digest {
	if !s.cfg.Digests {
		return 0
	}
	d := obs.NewDigest()
	for _, p := range preds {
		d = d.Int(int64(p.Label)).Float(p.Expected)
	}
	return d
}

func clampedPrediction(l label.Label) classify.Prediction {
	var scores [3]float64
	scores[int(l)-1] = 1
	return classify.Prediction{Label: l, Scores: scores, Expected: float64(l)}
}

// removeIndices returns pool minus the given values, preserving order.
func removeIndices(pool []int, drop []int) []int {
	dropSet := make(map[int]struct{}, len(drop))
	for _, d := range drop {
		dropSet[d] = struct{}{}
	}
	out := pool[:0]
	for _, p := range pool {
		if _, ok := dropSet[p]; !ok {
			out = append(out, p)
		}
	}
	return out
}
