package active

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sightrisk/internal/graph"
	"sightrisk/internal/label"
)

// TestPropSessionInvariants: for random pools, random block-structured
// weights and random (but consistent) annotators, every session run
// satisfies the core invariants:
//
//   - every pool member ends with a valid label and a prediction;
//   - the owner-labeled set is a subset of the pool and its labels
//     equal the annotator's;
//   - the trace has >= 1 round and round numbers are 1..n;
//   - round 1 carries no RMSE and no stabilization count;
//   - the queried count equals the owner-labeled set size.
func TestPropSessionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		members := make([]graph.UserID, n)
		truth := make(map[graph.UserID]label.Label, n)
		for i := range members {
			members[i] = graph.UserID(1000 + i)
			truth[members[i]] = label.Label(1 + rng.Intn(3))
		}
		weights := make([][]float64, n)
		for i := range weights {
			weights[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := rng.Float64()
				weights[i][j] = v
				weights[j][i] = v
			}
		}
		cfg := DefaultConfig()
		cfg.PerRound = 1 + rng.Intn(4)
		cfg.Confidence = float64(50 + rng.Intn(50))
		cfg.MaxRounds = 1 + rng.Intn(20)
		cfg.Rand = rand.New(rand.NewSource(seed ^ 0x9e37))
		switch rng.Intn(3) {
		case 1:
			cfg.Sampler = UncertaintySampler{}
		case 2:
			cfg.Sampler = DensitySampler{}
		}
		ann := AnnotatorFunc(func(s graph.UserID) label.Label { return truth[s] })
		sess, err := NewSession(members, weights, Infallible(ann), cfg)
		if err != nil {
			return false
		}
		res, err := sess.Run()
		if err != nil {
			return false
		}
		if len(res.Labels) != n || len(res.Predicted) != n {
			return false
		}
		for _, m := range members {
			if !res.Labels[m].Valid() {
				return false
			}
		}
		queried := 0
		for m, owned := range res.OwnerLabeled {
			if !owned {
				continue
			}
			queried++
			if truth[m] != res.Labels[m] {
				return false
			}
		}
		if queried != res.QueriedCount() {
			return false
		}
		if len(res.Rounds) < 1 {
			return false
		}
		for i, rd := range res.Rounds {
			if rd.Number != i+1 {
				return false
			}
		}
		first := res.Rounds[0]
		if !math.IsNaN(first.RMSE) || first.Unstabilized != -1 || first.ExactTotal != 0 {
			return false
		}
		switch res.Reason {
		case StopConverged, StopExhausted, StopMaxRounds, StopTrivial:
		default:
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
