package active

import (
	"math"
	"math/rand"
	"sort"

	"sightrisk/internal/classify"
)

// Sampler selects which unlabeled strangers the owner is asked to
// label in a round. The paper samples randomly within each network-
// and-profile pool (the pools themselves being the "clustering-based
// approach" to informativeness); the active-learning literature the
// paper cites (Settles' survey) offers sharper pool-based criteria,
// implemented here for the ablation benches.
type Sampler interface {
	// Name identifies the sampler in reports.
	Name() string
	// Select returns k distinct indices drawn from unlabeled. prev is
	// the previous round's predictions for every pool member (nil in
	// round 1); weights is the pool's symmetric similarity matrix.
	Select(rng *rand.Rand, unlabeled []int, prev []classify.Prediction, weights [][]float64, k int) []int
}

// RandomSampler is the paper's strategy: uniform sampling without
// replacement from the pool's unlabeled strangers.
type RandomSampler struct{}

// Name implements Sampler.
func (RandomSampler) Name() string { return "random" }

// Select implements Sampler.
func (RandomSampler) Select(rng *rand.Rand, unlabeled []int, _ []classify.Prediction, _ [][]float64, k int) []int {
	if k > len(unlabeled) {
		k = len(unlabeled)
	}
	idx := rng.Perm(len(unlabeled))[:k]
	out := make([]int, k)
	for i, p := range idx {
		out[i] = unlabeled[p]
	}
	return out
}

// UncertaintySampler queries the strangers whose current prediction is
// least certain — smallest margin between the top two class scores.
// Round 1 (no predictions yet) falls back to random.
type UncertaintySampler struct{}

// Name implements Sampler.
func (UncertaintySampler) Name() string { return "uncertainty" }

// Select implements Sampler.
func (UncertaintySampler) Select(rng *rand.Rand, unlabeled []int, prev []classify.Prediction, weights [][]float64, k int) []int {
	if prev == nil {
		return RandomSampler{}.Select(rng, unlabeled, prev, weights, k)
	}
	if k > len(unlabeled) {
		k = len(unlabeled)
	}
	type cand struct {
		idx    int
		margin float64
	}
	cands := make([]cand, 0, len(unlabeled))
	for _, idx := range unlabeled {
		cands = append(cands, cand{idx: idx, margin: margin(prev[idx].Scores)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].margin != cands[j].margin {
			return cands[i].margin < cands[j].margin
		}
		return cands[i].idx < cands[j].idx
	})
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].idx
	}
	return out
}

// margin returns the gap between the two largest class scores; small
// margins mean uncertain predictions.
func margin(scores [3]float64) float64 {
	s := scores
	sort.Float64s(s[:])
	return s[2] - s[1]
}

// DensitySampler queries representative strangers: those with the
// highest mean similarity to the remaining unlabeled pool (density-
// weighted selection). Labels on dense-region members propagate
// furthest through the harmonic classifier.
type DensitySampler struct{}

// Name implements Sampler.
func (DensitySampler) Name() string { return "density" }

// Select implements Sampler.
func (DensitySampler) Select(rng *rand.Rand, unlabeled []int, prev []classify.Prediction, weights [][]float64, k int) []int {
	if len(weights) == 0 {
		return RandomSampler{}.Select(rng, unlabeled, prev, weights, k)
	}
	if k > len(unlabeled) {
		k = len(unlabeled)
	}
	type cand struct {
		idx     int
		density float64
	}
	cands := make([]cand, 0, len(unlabeled))
	for _, idx := range unlabeled {
		total := 0.0
		for _, other := range unlabeled {
			if other == idx {
				continue
			}
			total += weights[idx][other]
		}
		d := 0.0
		if len(unlabeled) > 1 {
			d = total / float64(len(unlabeled)-1)
		}
		cands = append(cands, cand{idx: idx, density: d})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].density != cands[j].density {
			return cands[i].density > cands[j].density
		}
		return cands[i].idx < cands[j].idx
	})
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].idx
	}
	return out
}

// UncertaintyDensitySampler combines the two informativeness signals
// multiplicatively: query strangers that are both uncertain and
// representative (the standard fix for uncertainty sampling's
// outlier-chasing).
type UncertaintyDensitySampler struct{}

// Name implements Sampler.
func (UncertaintyDensitySampler) Name() string { return "uncertainty-density" }

// Select implements Sampler.
func (UncertaintyDensitySampler) Select(rng *rand.Rand, unlabeled []int, prev []classify.Prediction, weights [][]float64, k int) []int {
	if prev == nil {
		return DensitySampler{}.Select(rng, unlabeled, prev, weights, k)
	}
	if k > len(unlabeled) {
		k = len(unlabeled)
	}
	type cand struct {
		idx   int
		score float64
	}
	cands := make([]cand, 0, len(unlabeled))
	for _, idx := range unlabeled {
		total := 0.0
		for _, other := range unlabeled {
			if other == idx {
				continue
			}
			total += weights[idx][other]
		}
		density := 0.0
		if len(unlabeled) > 1 {
			density = total / float64(len(unlabeled)-1)
		}
		uncertainty := 1 - margin(prev[idx].Scores)
		cands = append(cands, cand{idx: idx, score: uncertainty * (density + 1e-9)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].idx < cands[j].idx
	})
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].idx
	}
	return out
}

// Stopper decides when a session may stop querying the owner, given
// the session state after a round. The paper combines an accuracy bar
// with classification-change stabilization; the multi-criteria
// strategies of Zhu, Wang & Hovy (the paper's citation [19]) offer
// confidence-based alternatives.
type Stopper interface {
	// Name identifies the stopper in reports.
	Name() string
	// ShouldStop inspects the post-round state.
	ShouldStop(s StopState) bool
}

// StopState is the information a Stopper may use.
type StopState struct {
	// Round is the 1-based round just finished.
	Round int
	// LastRMSE is the most recent validation RMSE (NaN before any
	// validation happened).
	LastRMSE float64
	// StableStreak counts consecutive rounds without classification
	// change (Definition 5).
	StableStreak int
	// Predictions is the current prediction for every pool member.
	Predictions []classify.Prediction
	// Labeled marks pool members already owner-labeled.
	Labeled map[int]struct{}
}

// CombinedStopper is the paper's rule (Section III-D): validation RMSE
// below the threshold AND no classification change for StableRounds
// consecutive rounds.
type CombinedStopper struct {
	RMSEThreshold float64
	StableRounds  int
}

// Name implements Stopper.
func (CombinedStopper) Name() string { return "combined" }

// ShouldStop implements Stopper.
func (c CombinedStopper) ShouldStop(s StopState) bool {
	return !math.IsNaN(s.LastRMSE) && s.LastRMSE < c.RMSEThreshold && s.StableStreak >= c.StableRounds
}

// MaxConfidenceStopper stops when every unlabeled prediction is at
// least Confidence sure of its class — the "max-confidence" criterion
// of the multi-criteria stopping literature.
type MaxConfidenceStopper struct {
	// Confidence is the per-prediction top-score bar in [0,1]
	// (e.g. 0.9).
	Confidence float64
}

// Name implements Stopper.
func (MaxConfidenceStopper) Name() string { return "max-confidence" }

// ShouldStop implements Stopper.
func (m MaxConfidenceStopper) ShouldStop(s StopState) bool {
	if s.Round < 2 {
		return false
	}
	for i, p := range s.Predictions {
		if _, ok := s.Labeled[i]; ok {
			continue
		}
		if top(p.Scores) < m.Confidence {
			return false
		}
	}
	return true
}

// OverallUncertaintyStopper stops when the mean entropy of the
// unlabeled predictions drops below Threshold bits — the "overall
// uncertainty" criterion.
type OverallUncertaintyStopper struct {
	// Threshold is the mean-entropy bar in bits (3-class entropy tops
	// out at log2(3) ≈ 1.585).
	Threshold float64
}

// Name implements Stopper.
func (OverallUncertaintyStopper) Name() string { return "overall-uncertainty" }

// ShouldStop implements Stopper.
func (o OverallUncertaintyStopper) ShouldStop(s StopState) bool {
	if s.Round < 2 {
		return false
	}
	total, n := 0.0, 0
	for i, p := range s.Predictions {
		if _, ok := s.Labeled[i]; ok {
			continue
		}
		total += entropy3(p.Scores)
		n++
	}
	if n == 0 {
		return true
	}
	return total/float64(n) < o.Threshold
}

func top(scores [3]float64) float64 {
	best := scores[0]
	for _, v := range scores[1:] {
		if v > best {
			best = v
		}
	}
	return best
}

func entropy3(scores [3]float64) float64 {
	h := 0.0
	for _, p := range scores {
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}
