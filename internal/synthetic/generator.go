package synthetic

import (
	"fmt"
	"math"
	"math/rand"

	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

// EgoConfig parameterizes one owner's ego network: the owner, their
// direct friends organized in communities, and the stranger ring
// (friends of friends).
type EgoConfig struct {
	// Friends is the owner's direct friend count.
	Friends int
	// Strangers is the number of second-hop contacts to generate.
	Strangers int
	// CommunitySize is the approximate number of friends per community
	// (school, work, hometown, ...). Must be >= 2.
	CommunitySize int
	// IntraCommunityP is the friend-friend edge probability inside a
	// community; CrossCommunityP across communities.
	IntraCommunityP, CrossCommunityP float64
	// MutualExponent shapes the distribution of a stranger's mutual-
	// friend count m: m = 1 + floor((maxMutual-1)·u^MutualExponent).
	// Larger exponents skew harder toward m = 1, reproducing the
	// paper's Figure 4 (most strangers weakly connected; "some
	// strangers can have more than 40 mutual friends").
	MutualExponent float64
	// MaxMutual caps a stranger's mutual-friend count (paper: > 40
	// observed; we default to 40).
	MaxMutual int
	// OwnerLocaleP is the probability a stranger shares the owner's
	// locale.
	OwnerLocaleP float64
	// StrangerEdgeP is the probability of adding an edge between two
	// consecutive same-community strangers (realism for the crawler;
	// does not affect NS).
	StrangerEdgeP float64
	// Topology selects how the owner's friends are wired to each other
	// (default Communities; see the robustness experiment).
	Topology Topology
}

// DefaultEgoConfig mirrors the paper's population scale per owner:
// ~130 friends (Facebook's contemporary mean) and 3,661 strangers
// (the paper's per-owner mean).
func DefaultEgoConfig() EgoConfig {
	return EgoConfig{
		Friends:         130,
		Strangers:       3661,
		CommunitySize:   18,
		IntraCommunityP: 0.35,
		CrossCommunityP: 0.02,
		MutualExponent:  12,
		MaxMutual:       40,
		OwnerLocaleP:    0.9,
		StrangerEdgeP:   0.15,
	}
}

func (c EgoConfig) validate() error {
	if c.Friends < 2 {
		return fmt.Errorf("synthetic: Friends must be >= 2, got %d", c.Friends)
	}
	if c.Strangers < 1 {
		return fmt.Errorf("synthetic: Strangers must be >= 1, got %d", c.Strangers)
	}
	if c.CommunitySize < 2 {
		return fmt.Errorf("synthetic: CommunitySize must be >= 2, got %d", c.CommunitySize)
	}
	if c.MutualExponent <= 0 {
		return fmt.Errorf("synthetic: MutualExponent must be > 0, got %g", c.MutualExponent)
	}
	if c.MaxMutual < 1 {
		return fmt.Errorf("synthetic: MaxMutual must be >= 1, got %d", c.MaxMutual)
	}
	return nil
}

// EgoNet is a generated owner-centric network fragment.
type EgoNet struct {
	Owner     graph.UserID   // the ego node
	Friends   []graph.UserID // the owner's direct friends
	Strangers []graph.UserID // friends-of-friends outside the friend set
	// Community[f] is the community index of friend f.
	Community map[graph.UserID]int
}

// idAllocator deals fresh user ids across ego networks.
type idAllocator struct{ next graph.UserID }

func (a *idAllocator) take() graph.UserID {
	a.next++
	return a.next
}

// generateEgo builds one owner's ego network into g and store. The
// ownerLocale pins the owner's and most strangers' locale;
// communityBase offsets community hints so value pools differ across
// owners.
func generateEgo(rng *rand.Rand, g *graph.Graph, store *profile.Store, ids *idAllocator, cfg EgoConfig, ownerLocale string, ownerGender string, communityBase int) (*EgoNet, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pools := newValuePools(rng)

	net := &EgoNet{Owner: ids.take(), Community: make(map[graph.UserID]int)}
	g.AddNode(net.Owner)
	ownerProfile := profile.NewProfile(net.Owner)
	pools.fillProfileAttrs(ownerProfile, ownerLocale, communityBase, -1)
	if ownerGender != "" {
		ownerProfile.SetAttr(profile.AttrGender, ownerGender)
	}
	fillVisibility(rng, ownerProfile)
	store.Put(ownerProfile)

	// Friends, partitioned into communities.
	nComm := (cfg.Friends + cfg.CommunitySize - 1) / cfg.CommunitySize
	if nComm < 1 {
		nComm = 1
	}
	communities := make([][]graph.UserID, nComm)
	for i := 0; i < cfg.Friends; i++ {
		f := ids.take()
		c := i % nComm
		net.Friends = append(net.Friends, f)
		net.Community[f] = c
		communities[c] = append(communities[c], f)
		if err := g.AddEdge(net.Owner, f); err != nil {
			return nil, err
		}
		p := profile.NewProfile(f)
		fam := -1
		if rng.Float64() < 0.15 {
			fam = communityBase + c // family clusters inside communities
		}
		pools.fillProfileAttrs(p, pools.locale(ownerLocale, cfg.OwnerLocaleP), communityBase+c, fam)
		fillVisibility(rng, p)
		store.Put(p)
	}

	// Friend-friend edges per the configured topology (communities by
	// default; small-world / scale-free for robustness runs).
	if err := wireFriends(rng, g, net.Friends, net.Community, cfg); err != nil {
		return nil, err
	}

	// Strangers: each attaches to m mutual friends, mostly inside one
	// community so that high-m strangers sit next to dense communities
	// (which is what NS rewards).
	var prevStranger graph.UserID
	var prevCommunity int
	for i := 0; i < cfg.Strangers; i++ {
		s := ids.take()
		net.Strangers = append(net.Strangers, s)
		c := rng.Intn(nComm)
		maxM := cfg.MaxMutual
		// Cap mutual friends at two fifths of the owner's friend count
		// so NS (Jaccard-based, density-boosted) tops out just below
		// 0.6, matching the paper's observation that no stranger
		// exceeds that network similarity (its Figure 4 populates
		// groups up to [0.5, 0.6)).
		if limit := cfg.Friends * 2 / 5; maxM > limit {
			maxM = limit
		}
		if maxM < 1 {
			maxM = 1
		}
		u := rng.Float64()
		m := 1 + int(math.Floor(float64(maxM-1)*math.Pow(u, cfg.MutualExponent)))

		attached := make(map[graph.UserID]struct{}, m)
		comm := communities[c]
		for len(attached) < m {
			var f graph.UserID
			if rng.Float64() < 0.8 && len(attached) < len(comm) {
				f = comm[rng.Intn(len(comm))]
			} else {
				f = net.Friends[rng.Intn(len(net.Friends))]
			}
			if _, dup := attached[f]; dup {
				continue
			}
			attached[f] = struct{}{}
			if err := g.AddEdge(s, f); err != nil {
				return nil, err
			}
		}

		p := profile.NewProfile(s)
		fam := -1
		if rng.Float64() < 0.1 {
			fam = communityBase + c
		}
		pools.fillProfileAttrs(p, pools.locale(ownerLocale, cfg.OwnerLocaleP), communityBase+c, fam)
		fillVisibility(rng, p)
		store.Put(p)

		// Occasional stranger-stranger edge inside the same community.
		if prevStranger != 0 && prevCommunity == c && rng.Float64() < cfg.StrangerEdgeP {
			if err := g.AddEdge(prevStranger, s); err != nil {
				return nil, err
			}
		}
		prevStranger, prevCommunity = s, c
	}
	return net, nil
}
