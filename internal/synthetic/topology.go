package synthetic

import (
	"fmt"
	"math/rand"
	"sort"

	"sightrisk/internal/graph"
)

// Topology selects how an owner's friends are wired to each other.
// The risk pipeline's claims should not depend on the generator's
// exact shape, so the robustness experiment re-runs the headline
// results across these topologies.
type Topology int

// Friend-graph topologies.
const (
	// Communities is the default: friends partitioned into dense
	// communities with sparse cross links (schools, workplaces, ...).
	Communities Topology = iota
	// SmallWorld is a Watts-Strogatz ring lattice with rewiring: high
	// clustering, short paths, no explicit communities.
	SmallWorld
	// ScaleFree is Barabási-Albert preferential attachment: a few hub
	// friends collect most intra-circle edges.
	ScaleFree
)

// String implements fmt.Stringer.
func (t Topology) String() string {
	switch t {
	case Communities:
		return "communities"
	case SmallWorld:
		return "small-world"
	case ScaleFree:
		return "scale-free"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// wireFriends connects the owner's friends per the configured
// topology. Friends are already connected to the owner; this adds the
// friend-friend edges whose density the NS measure rewards.
func wireFriends(rng *rand.Rand, g *graph.Graph, friends []graph.UserID, community map[graph.UserID]int, cfg EgoConfig) error {
	switch cfg.Topology {
	case Communities:
		for i, a := range friends {
			for _, b := range friends[i+1:] {
				p := cfg.CrossCommunityP
				if community[a] == community[b] {
					p = cfg.IntraCommunityP
				}
				if rng.Float64() < p {
					if err := g.AddEdge(a, b); err != nil {
						return err
					}
				}
			}
		}
		return nil
	case SmallWorld:
		// Ring lattice with k nearest neighbors on each side, then
		// rewiring with probability 0.1.
		n := len(friends)
		if n < 2 {
			return nil
		}
		k := 3
		if k >= n {
			k = n - 1
		}
		for i := 0; i < n; i++ {
			for d := 1; d <= k; d++ {
				j := (i + d) % n
				target := friends[j]
				if rng.Float64() < 0.1 { // rewire
					target = friends[rng.Intn(n)]
					if target == friends[i] {
						continue
					}
				}
				if err := g.AddEdge(friends[i], target); err != nil {
					return err
				}
			}
		}
		return nil
	case ScaleFree:
		// Barabási-Albert: each friend after the first attaches to m
		// earlier friends with probability proportional to their
		// current intra-circle degree (plus one, so isolated nodes
		// remain reachable).
		n := len(friends)
		if n < 2 {
			return nil
		}
		const m = 3
		deg := make([]int, n)
		for i := 1; i < n; i++ {
			links := m
			if links > i {
				links = i
			}
			chosen := map[int]bool{}
			for len(chosen) < links {
				total := 0
				for j := 0; j < i; j++ {
					if !chosen[j] {
						total += deg[j] + 1
					}
				}
				pick := rng.Intn(total)
				for j := 0; j < i; j++ {
					if chosen[j] {
						continue
					}
					pick -= deg[j] + 1
					if pick < 0 {
						chosen[j] = true
						break
					}
				}
			}
			// Insert edges in sorted order: ranging over the chosen map
			// would vary the adjacency insertion order (and so neighbor
			// iteration order) between runs of the same seed.
			picked := make([]int, 0, len(chosen))
			for j := range chosen {
				picked = append(picked, j)
			}
			sort.Ints(picked)
			for _, j := range picked {
				if err := g.AddEdge(friends[i], friends[j]); err != nil {
					return err
				}
				deg[i]++
				deg[j]++
			}
		}
		return nil
	default:
		return fmt.Errorf("synthetic: unknown topology %v", cfg.Topology)
	}
}
