package synthetic

import (
	"fmt"
	"math/rand"

	"sightrisk/internal/graph"
	"sightrisk/internal/label"
)

// Churn mutates an owner's neighborhood in place the way the paper
// says live graphs move (Section III): strangers acquire new
// connections to the owner's friends — "new connections between
// strangers themselves, which might impact their similarity measures
// with the owner" — so network similarities drift between runs. It
// adds up to newEdges fresh stranger→friend edges, sampled uniformly,
// and returns the number actually added (duplicates are skipped, so
// saturated neighborhoods add fewer).
//
// Churn invalidates nothing structurally: the stranger set is
// unchanged (edges to friends keep strangers at distance 2), only NS
// scores move — which is exactly the drift the on-the-fly pool
// construction must absorb.
func Churn(study *Study, owner *Owner, newEdges int, seed int64) (int, error) {
	if study == nil || owner == nil {
		return 0, fmt.Errorf("synthetic: churn needs a study and an owner")
	}
	if newEdges < 0 {
		return 0, fmt.Errorf("synthetic: newEdges must be >= 0, got %d", newEdges)
	}
	friends := owner.Net.Friends
	strangers := owner.Net.Strangers
	if len(friends) == 0 || len(strangers) == 0 {
		return 0, nil
	}
	rng := rand.New(rand.NewSource(seed))
	added := 0
	// Bound attempts so saturated neighborhoods terminate.
	for attempts := 0; added < newEdges && attempts < 20*newEdges+100; attempts++ {
		s := strangers[rng.Intn(len(strangers))]
		f := friends[rng.Intn(len(friends))]
		if study.Graph.HasEdge(s, f) {
			continue
		}
		// Keep the paper's Figure 4 property: cap mutual friends below
		// ~2/5 of the owner's friend count so NS stays under 0.6.
		if len(study.Graph.MutualFriends(owner.ID, s)) >= len(friends)*2/5 {
			continue
		}
		if err := study.Graph.AddEdge(s, f); err != nil {
			return added, err
		}
		added++
	}
	// Drop memoized labels: the owner re-judges strangers whose
	// closeness changed (deterministically, via the same attitude).
	owner.cache = make(map[graph.UserID]label.Label)
	return added, nil
}
