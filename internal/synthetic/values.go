// Package synthetic generates the study population that replaces the
// paper's live Facebook data (DESIGN.md §2): community-structured
// owner ego-networks, categorical profiles with homophilous value
// assignment, a benefit-item visibility model calibrated to the
// paper's measured gender and locale marginals (Tables IV and V), and
// simulated owners whose latent risk attitudes reproduce the paper's
// mined attribute-importance structure (Tables I-III).
package synthetic

import (
	"fmt"
	"math/rand"

	"sightrisk/internal/profile"
)

// Locale codes used by the paper's Table V.
const (
	LocaleTR = "tr_TR"
	LocaleDE = "de_DE"
	LocaleUS = "en_US"
	LocaleIT = "it_IT"
	LocaleGB = "en_GB"
	LocaleES = "es_ES"
	LocalePL = "pl_PL"
)

// Locales returns the seven locales of Table V in the paper's order.
func Locales() []string {
	return []string{LocaleTR, LocaleDE, LocaleUS, LocaleIT, LocaleGB, LocaleES, LocalePL}
}

// Genders used by Table IV.
const (
	GenderMale   = "male"
	GenderFemale = "female"
)

// surnameStems provides per-locale surname material; actual last names
// are a stem plus a numeric family index so each locale has hundreds
// of distinct family names with realistic reuse inside communities.
var surnameStems = map[string][]string{
	LocaleTR: {"Yilmaz", "Kaya", "Demir", "Celik", "Sahin", "Ozturk", "Aydin", "Arslan"},
	LocaleDE: {"Mueller", "Schmidt", "Schneider", "Fischer", "Weber", "Wagner", "Becker"},
	LocaleUS: {"Smith", "Johnson", "Williams", "Brown", "Jones", "Miller", "Davis"},
	LocaleIT: {"Rossi", "Russo", "Ferrari", "Esposito", "Bianchi", "Romano", "Colombo"},
	LocaleGB: {"Taylor", "Wilson", "Evans", "Thomas", "Roberts", "Walker", "Wright"},
	LocaleES: {"Garcia", "Fernandez", "Gonzalez", "Rodriguez", "Lopez", "Martinez"},
	LocalePL: {"Nowak", "Kowalski", "Wisniewski", "Wojcik", "Kowalczyk", "Kaminski"},
}

// hometownStems provides per-locale hometown material.
var hometownStems = map[string][]string{
	LocaleTR: {"Istanbul", "Ankara", "Izmir", "Bursa", "Antalya"},
	LocaleDE: {"Berlin", "Hamburg", "Munich", "Cologne", "Frankfurt"},
	LocaleUS: {"New York", "Chicago", "Houston", "Phoenix", "Seattle"},
	LocaleIT: {"Milan", "Rome", "Naples", "Turin", "Varese"},
	LocaleGB: {"London", "Manchester", "Birmingham", "Leeds", "Glasgow"},
	LocaleES: {"Madrid", "Barcelona", "Valencia", "Seville", "Bilbao"},
	LocalePL: {"Warsaw", "Krakow", "Lodz", "Wroclaw", "Poznan"},
}

var educationStems = []string{
	"State University", "Tech Institute", "City College", "National University",
	"Polytechnic", "High School No.", "Community College",
}

var workStems = []string{
	"Acme Corp", "Globex", "Initech", "Umbrella Labs", "Wayne Industries",
	"Stark Retail", "Cyberdyne Services", "Wonka Foods",
}

// valuePools deals locale-consistent attribute values with controlled
// cardinality, so pools have the frequency structure PS() and Squeezer
// rely on.
type valuePools struct {
	rng *rand.Rand
}

func newValuePools(rng *rand.Rand) *valuePools { return &valuePools{rng: rng} }

// surname draws a last name for the locale; familyHint, when >= 0,
// pins the family so community members can share names.
func (v *valuePools) surname(locale string, familyHint int) string {
	stems := surnameStems[locale]
	if len(stems) == 0 {
		stems = surnameStems[LocaleUS]
	}
	fam := familyHint
	if fam < 0 {
		fam = v.rng.Intn(200)
	}
	return fmt.Sprintf("%s-%d", stems[fam%len(stems)], fam)
}

// hometown draws a hometown; communityHint pins the dominant town of a
// community.
func (v *valuePools) hometown(locale string, communityHint int) string {
	stems := hometownStems[locale]
	if len(stems) == 0 {
		stems = hometownStems[LocaleUS]
	}
	if communityHint >= 0 && v.rng.Float64() < 0.7 {
		return stems[communityHint%len(stems)]
	}
	return stems[v.rng.Intn(len(stems))]
}

// education draws an education string; community members often share.
func (v *valuePools) education(communityHint int) string {
	if communityHint >= 0 && v.rng.Float64() < 0.6 {
		return fmt.Sprintf("%s %d", educationStems[communityHint%len(educationStems)], communityHint%9+1)
	}
	return fmt.Sprintf("%s %d", educationStems[v.rng.Intn(len(educationStems))], v.rng.Intn(9)+1)
}

// work draws an employer string.
func (v *valuePools) work(communityHint int) string {
	if communityHint >= 0 && v.rng.Float64() < 0.4 {
		return workStems[communityHint%len(workStems)]
	}
	return workStems[v.rng.Intn(len(workStems))]
}

// gender draws a gender with the given male probability.
func (v *valuePools) gender(pMale float64) string {
	if v.rng.Float64() < pMale {
		return GenderMale
	}
	return GenderFemale
}

// neighborLocale maps each locale to the foreign locale most common
// among its users' contacts (diaspora/neighbor effects); real 2-hop
// networks are locale-concentrated rather than uniformly mixed.
var neighborLocale = map[string]string{
	LocaleTR: LocaleDE, // Turkish diaspora in Germany
	LocaleDE: LocaleTR,
	LocaleUS: LocaleGB,
	LocaleGB: LocaleUS,
	LocaleIT: LocaleES,
	LocaleES: LocaleIT,
	LocalePL: LocaleDE,
}

// locale draws a stranger locale: with probability pOwn the owner's
// locale; otherwise mostly the owner's neighbor locale, occasionally
// any of the seven.
func (v *valuePools) locale(ownerLocale string, pOwn float64) string {
	if v.rng.Float64() < pOwn {
		return ownerLocale
	}
	if n, ok := neighborLocale[ownerLocale]; ok && v.rng.Float64() < 0.75 {
		return n
	}
	all := Locales()
	return all[v.rng.Intn(len(all))]
}

// fillProfileAttrs populates all categorical attributes of p.
func (v *valuePools) fillProfileAttrs(p *profile.Profile, locale string, communityHint, familyHint int) {
	p.SetAttr(profile.AttrGender, v.gender(0.55))
	p.SetAttr(profile.AttrLocale, locale)
	p.SetAttr(profile.AttrLastName, v.surname(locale, familyHint))
	p.SetAttr(profile.AttrHometown, v.hometown(locale, communityHint))
	p.SetAttr(profile.AttrEducation, v.education(communityHint))
	p.SetAttr(profile.AttrWork, v.work(communityHint))
	p.SetAttr(profile.AttrLocation, v.hometown(locale, -1))
}
