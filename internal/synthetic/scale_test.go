package synthetic

import (
	"math"
	"sort"
	"testing"

	"sightrisk/internal/graph"
	"sightrisk/internal/graph/snapfile"
)

func TestGenerateScaleBasics(t *testing.T) {
	cfg := DefaultScaleConfig(5000)
	cfg.ProfileFrac = 0.85
	sg, err := GenerateScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := sg.Snapshot
	if snap.NumNodes() != cfg.Nodes {
		t.Fatalf("NumNodes = %d, want %d", snap.NumNodes(), cfg.Nodes)
	}
	// Chung–Lu dedup and self-loop rejection lose some edges; the mean
	// degree should still land in the right ballpark.
	avg := 2 * float64(snap.NumEdges()) / float64(snap.NumNodes())
	if avg < cfg.AvgDegree*0.6 || avg > cfg.AvgDegree*1.1 {
		t.Fatalf("average degree %.2f too far from target %.1f", avg, cfg.AvgDegree)
	}
	// Dense ids 1..n.
	nodes := snap.Nodes()
	if nodes[0] != 1 || nodes[len(nodes)-1] != graph.UserID(cfg.Nodes) {
		t.Fatalf("ids not dense 1..n: first %d last %d", nodes[0], nodes[len(nodes)-1])
	}
	if sg.Profiles.Len() != cfg.Nodes {
		t.Fatalf("profile table rows = %d, want %d", sg.Profiles.Len(), cfg.Nodes)
	}
	frac := float64(sg.Profiles.NumProfiles()) / float64(cfg.Nodes)
	if math.Abs(frac-cfg.ProfileFrac) > 0.05 {
		t.Fatalf("profile fraction %.3f, want ~%.2f", frac, cfg.ProfileFrac)
	}
	if len(sg.Owners) == 0 {
		t.Fatal("no owners selected")
	}
	for _, o := range sg.Owners {
		d := snap.Degree(o)
		if d < 10 || d > 120 {
			t.Fatalf("owner %d degree %d outside [10,120]", o, d)
		}
		if sg.Profiles.Get(o) == nil {
			t.Fatalf("owner %d has no profile", o)
		}
	}
}

func TestGenerateScaleDeterministic(t *testing.T) {
	cfg := DefaultScaleConfig(2000)
	a, err := GenerateScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Snapshot.NumEdges() != b.Snapshot.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.Snapshot.NumEdges(), b.Snapshot.NumEdges())
	}
	for _, id := range a.Snapshot.Nodes() {
		fa, fb := a.Snapshot.Friends(id), b.Snapshot.Friends(id)
		if len(fa) != len(fb) {
			t.Fatalf("node %d: degree %d vs %d", id, len(fa), len(fb))
		}
		for i := range fa {
			if fa[i] != fb[i] {
				t.Fatalf("node %d: friend lists differ", id)
			}
		}
	}
	// A different seed must produce a different graph.
	cfg.Seed = 99
	c, err := GenerateScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Snapshot.NumEdges() == a.Snapshot.NumEdges() {
		same := true
		for _, id := range a.Snapshot.Nodes() {
			fa, fc := a.Snapshot.Friends(id), c.Snapshot.Friends(id)
			if len(fa) != len(fc) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical degree sequences")
		}
	}
}

func TestGenerateScaleHeavyTail(t *testing.T) {
	sg, err := GenerateScale(DefaultScaleConfig(20000))
	if err != nil {
		t.Fatal(err)
	}
	snap := sg.Snapshot
	degs := make([]int, snap.NumNodes())
	maxDeg := 0
	for i, id := range snap.Nodes() {
		degs[i] = snap.Degree(id)
		if degs[i] > maxDeg {
			maxDeg = degs[i]
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	avg := 2 * float64(snap.NumEdges()) / float64(snap.NumNodes())
	// Heavy tail: the hubs should dwarf the mean, and the top 1% of
	// nodes should hold a disproportionate share of the edge ends.
	if float64(maxDeg) < 8*avg {
		t.Fatalf("max degree %d not heavy-tailed vs mean %.1f", maxDeg, avg)
	}
	top := len(degs) / 100
	topSum := 0
	for _, d := range degs[:top] {
		topSum += d
	}
	share := float64(topSum) / float64(2*snap.NumEdges())
	if share < 0.05 {
		t.Fatalf("top 1%% of nodes hold only %.1f%% of edge ends", 100*share)
	}
}

func TestGenerateScaleRoundTripsThroughSnapfile(t *testing.T) {
	if testing.Short() {
		t.Skip("snapfile round trip at 50k nodes skipped in short mode")
	}
	sg, err := GenerateScale(DefaultScaleConfig(50000))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/scale.snap"
	if err := snapfile.Create(path, snapfile.Contents{Snapshot: sg.Snapshot, Profiles: sg.Profiles}); err != nil {
		t.Fatal(err)
	}
	f, err := snapfile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Snapshot().NumNodes() != sg.Snapshot.NumNodes() || f.Snapshot().NumEdges() != sg.Snapshot.NumEdges() {
		t.Fatalf("round trip changed counts: %d/%d vs %d/%d",
			f.Snapshot().NumNodes(), f.Snapshot().NumEdges(), sg.Snapshot.NumNodes(), sg.Snapshot.NumEdges())
	}
	for _, o := range sg.Owners {
		got, want := f.Profiles().Get(o), sg.Profiles.Get(o)
		if (got == nil) != (want == nil) {
			t.Fatalf("owner %d profile presence differs after round trip", o)
		}
	}
	if f.Profiles().NumProfiles() != sg.Profiles.NumProfiles() {
		t.Fatalf("profile count changed: %d vs %d", f.Profiles().NumProfiles(), sg.Profiles.NumProfiles())
	}
}

func TestGenerateScaleRejectsBadConfig(t *testing.T) {
	for _, cfg := range []ScaleConfig{
		{Nodes: 1},
		{Nodes: 100, AvgDegree: 0},
		{Nodes: 100, AvgDegree: 200},
		{Nodes: 100, AvgDegree: 10, Exponent: 1},
		{Nodes: 100, AvgDegree: 10, Exponent: 2.6, ProfileFrac: 1.5},
	} {
		if _, err := GenerateScale(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}
