package synthetic

import (
	"fmt"
	"math/rand"

	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/profile"
)

// StudyConfig sizes a whole study population.
type StudyConfig struct {
	// Seed drives the whole generation deterministically.
	Seed int64
	// Owners is the number of study participants (paper: 47).
	Owners int
	// Ego configures each owner's ego network; Friends and Strangers
	// are jittered ±Jitter around the configured values so owners
	// differ in scale.
	Ego    EgoConfig
	Jitter float64 // relative jitter applied to Friends/Strangers counts
	// GenderDominantFrac is the fraction of owners whose primary
	// labeling signal is gender (Table I: 34/47 ≈ 0.72).
	GenderDominantFrac float64
}

// DefaultStudyConfig reproduces the paper's population: 47 owners,
// mean 3,661 strangers each (~172k stranger profiles in total).
func DefaultStudyConfig() StudyConfig {
	return StudyConfig{
		Seed:               1,
		Owners:             47,
		Ego:                DefaultEgoConfig(),
		Jitter:             0.25,
		GenderDominantFrac: 34.0 / 47,
	}
}

// SmallStudyConfig is a laptop-fast population for tests and examples:
// 8 owners with ~400 strangers each.
func SmallStudyConfig() StudyConfig {
	cfg := DefaultStudyConfig()
	cfg.Owners = 8
	cfg.Ego.Friends = 60
	cfg.Ego.Strangers = 400
	return cfg
}

// ownerDemographics mirrors the paper's participant table: 32 male /
// 15 female; 17 TR, 5 IT, 9 US, 1 India (no IN locale in Table V — we
// map it to en_GB, the closest interface language), 7 PL, and the
// remaining 8 participants (unreported in the paper) spread over the
// remaining Table V locales.
func ownerDemographics(n int, rng *rand.Rand) (genders, locales []string) {
	genders = make([]string, n)
	locales = make([]string, n)
	for i := 0; i < n; i++ {
		if i < int(float64(n)*32.0/47+0.5) {
			genders[i] = GenderMale
		} else {
			genders[i] = GenderFemale
		}
	}
	base := []string{}
	quota := []struct {
		locale string
		count  int
	}{
		{LocaleTR, 17}, {LocaleIT, 5}, {LocaleUS, 9}, {LocaleGB, 1}, {LocalePL, 7},
		{LocaleDE, 3}, {LocaleES, 3}, {LocaleGB, 2},
	}
	for _, q := range quota {
		for i := 0; i < q.count; i++ {
			base = append(base, q.locale)
		}
	}
	for i := 0; i < n; i++ {
		if i < len(base) {
			locales[i] = base[i*len(base)/n] // proportional when n != 47
		} else {
			all := Locales()
			locales[i] = all[rng.Intn(len(all))]
		}
	}
	rng.Shuffle(n, func(i, j int) { genders[i], genders[j] = genders[j], genders[i] })
	rng.Shuffle(n, func(i, j int) { locales[i], locales[j] = locales[j], locales[i] })
	return genders, locales
}

// Study is a full generated population: one graph holding every
// owner's ego network (as disjoint components), all profiles, and the
// simulated owners.
type Study struct {
	Graph    *graph.Graph   // every ego network, as disjoint components
	Profiles *profile.Store // profiles for all generated users
	Owners   []*Owner       // the simulated participants
}

// TotalStrangers sums the stranger counts over all owners.
func (s *Study) TotalStrangers() int {
	total := 0
	for _, o := range s.Owners {
		total += len(o.Net.Strangers)
	}
	return total
}

// MeanStrangers returns the mean stranger count per owner.
func (s *Study) MeanStrangers() float64 {
	if len(s.Owners) == 0 {
		return 0
	}
	return float64(s.TotalStrangers()) / float64(len(s.Owners))
}

// GenerateStudy builds the study population deterministically from the
// config seed.
func GenerateStudy(cfg StudyConfig) (*Study, error) {
	if cfg.Owners < 1 {
		return nil, fmt.Errorf("synthetic: Owners must be >= 1, got %d", cfg.Owners)
	}
	if err := cfg.Ego.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New()
	store := profile.NewStore()
	ids := &idAllocator{}
	study := &Study{Graph: g, Profiles: store}

	genders, locales := ownerDemographics(cfg.Owners, rng)

	for i := 0; i < cfg.Owners; i++ {
		ego := cfg.Ego
		ego.Friends = jitter(rng, ego.Friends, cfg.Jitter)
		ego.Strangers = jitter(rng, ego.Strangers, cfg.Jitter)
		net, err := generateEgo(rng, g, store, ids, ego, locales[i], genders[i], (i+1)*1000)
		if err != nil {
			return nil, fmt.Errorf("synthetic: owner %d: %w", i, err)
		}
		genderDominant := rng.Float64() < cfg.GenderDominantFrac
		owner := &Owner{
			ID:         net.Owner,
			Net:        net,
			Theta:      drawTheta(rng),
			Confidence: clamp(78.39+8*rng.NormFloat64(), 60, 95),
			Attitude:   drawAttitude(rng, genders[i], genderDominant),
			g:          g,
			store:      store,
			cache:      make(map[graph.UserID]label.Label),
		}
		study.Owners = append(study.Owners, owner)
	}
	return study, nil
}

func jitter(rng *rand.Rand, v int, frac float64) int {
	if frac <= 0 {
		return v
	}
	delta := 1 + frac*(2*rng.Float64()-1)
	out := int(float64(v) * delta)
	if out < 2 {
		out = 2
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
