package synthetic

import "testing"

// TestOwnerFingerprintsDeterministic regenerates the same seeded study
// and demands bit-identical owner fingerprints for every topology —
// the study-construction half of the determinism audit. This is the
// regression test for the map-iteration float summations (cut-point
// offsets, visibility marginal means, θ normalization) that used to
// give cut points and visibility bits ULP-level noise between runs.
func TestOwnerFingerprintsDeterministic(t *testing.T) {
	for _, topo := range []Topology{Communities, SmallWorld, ScaleFree} {
		cfg := SmallStudyConfig()
		cfg.Owners = 6
		cfg.Ego.Topology = topo
		a, err := GenerateStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := GenerateStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Owners {
			fa, fb := a.Owners[i].Fingerprint(), b.Owners[i].Fingerprint()
			if fa != fb {
				t.Errorf("%s: owner %d fingerprint %016x vs %016x", topo, a.Owners[i].ID, fa, fb)
			}
		}
	}
}

// TestOwnerFingerprintSensitive: different seeds must produce
// different fingerprints — a fingerprint that never varies would make
// the audit's study-construction check vacuous.
func TestOwnerFingerprintSensitive(t *testing.T) {
	cfg := SmallStudyConfig()
	cfg.Owners = 2
	a, err := GenerateStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := GenerateStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Owners[0].Fingerprint() == b.Owners[0].Fingerprint() {
		t.Fatal("fingerprints identical across different seeds")
	}
}
