package synthetic

import (
	"math"
	"math/rand"
	"testing"

	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

func smallStudy(t *testing.T, seed int64) *Study {
	t.Helper()
	cfg := SmallStudyConfig()
	cfg.Owners = 3
	cfg.Ego.Strangers = 200
	cfg.Seed = seed
	study, err := GenerateStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return study
}

func TestGenerateStudyBasics(t *testing.T) {
	study := smallStudy(t, 1)
	if len(study.Owners) != 3 {
		t.Fatalf("owners = %d, want 3", len(study.Owners))
	}
	if study.TotalStrangers() == 0 {
		t.Fatal("no strangers generated")
	}
	if got := study.MeanStrangers(); got <= 0 {
		t.Fatalf("mean strangers = %g", got)
	}
}

func TestGenerateStudyValidation(t *testing.T) {
	cfg := SmallStudyConfig()
	cfg.Owners = 0
	if _, err := GenerateStudy(cfg); err == nil {
		t.Fatal("zero owners accepted")
	}
	cfg = SmallStudyConfig()
	cfg.Ego.Friends = 1
	if _, err := GenerateStudy(cfg); err == nil {
		t.Fatal("one friend accepted")
	}
	cfg = SmallStudyConfig()
	cfg.Ego.MutualExponent = 0
	if _, err := GenerateStudy(cfg); err == nil {
		t.Fatal("zero mutual exponent accepted")
	}
}

func TestStrangersMatchGraph(t *testing.T) {
	// The generator's stranger roster must coincide with the graph's
	// second-hop definition.
	study := smallStudy(t, 2)
	for _, o := range study.Owners {
		fromGraph := study.Graph.Strangers(o.ID)
		roster := map[graph.UserID]bool{}
		for _, s := range o.Strangers() {
			roster[s] = true
		}
		if len(fromGraph) != len(roster) {
			t.Fatalf("owner %d: graph says %d strangers, roster %d", o.ID, len(fromGraph), len(roster))
		}
		for _, s := range fromGraph {
			if !roster[s] {
				t.Fatalf("owner %d: graph stranger %d missing from roster", o.ID, s)
			}
		}
	}
}

func TestEveryoneHasCompleteProfile(t *testing.T) {
	study := smallStudy(t, 3)
	for _, u := range study.Graph.Nodes() {
		p := study.Profiles.Get(u)
		if p == nil {
			t.Fatalf("user %d has no profile", u)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("user %d: %v", u, err)
		}
		for _, a := range profile.AllAttributes() {
			if p.Attr(a) == "" {
				t.Fatalf("user %d missing attribute %s", u, a)
			}
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := smallStudy(t, 7)
	b := smallStudy(t, 7)
	if a.Graph.NumNodes() != b.Graph.NumNodes() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for i := range a.Owners {
		sa, sb := a.Owners[i].Strangers(), b.Owners[i].Strangers()
		if len(sa) != len(sb) {
			t.Fatalf("owner %d stranger counts differ", i)
		}
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatal("stranger rosters differ")
			}
			if a.Owners[i].LabelStranger(sa[j]) != b.Owners[i].LabelStranger(sb[j]) {
				t.Fatal("same seed produced different labels")
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := smallStudy(t, 1)
	b := smallStudy(t, 99)
	if a.Graph.NumEdges() == b.Graph.NumEdges() && a.TotalStrangers() == b.TotalStrangers() {
		t.Fatal("different seeds produced identical populations (suspicious)")
	}
}

func TestOwnerLabelingDeterministicAndMemoized(t *testing.T) {
	study := smallStudy(t, 4)
	o := study.Owners[0]
	s := o.Strangers()[0]
	first := o.LabelStranger(s)
	for i := 0; i < 5; i++ {
		if got := o.LabelStranger(s); got != first {
			t.Fatalf("labeling not stable: %v then %v", first, got)
		}
	}
	if !first.Valid() {
		t.Fatalf("invalid label %d", int(first))
	}
}

func TestOwnerScoreRange(t *testing.T) {
	study := smallStudy(t, 5)
	for _, o := range study.Owners {
		for _, s := range o.Strangers() {
			score := o.Score(s)
			if score < 0 || score > 1 {
				t.Fatalf("score %g out of [0,1]", score)
			}
		}
	}
}

func TestAttitudeCutPointsOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		att := drawAttitude(rng, GenderMale, i%3 != 0)
		if !(att.T1 < att.T2) {
			t.Fatalf("cut points unordered: T1=%g T2=%g", att.T1, att.T2)
		}
		if att.T1 <= 0 || att.T2 >= 1 {
			t.Fatalf("cut points out of (0,1): T1=%g T2=%g", att.T1, att.T2)
		}
		if att.WGender < 0 || att.WLocale < 0 || att.WNS < 0 {
			t.Fatal("negative attitude weight")
		}
		if att.RiskyGender != GenderMale && att.RiskyGender != GenderFemale {
			t.Fatalf("bad risky gender %q", att.RiskyGender)
		}
	}
}

func TestAllThreeLabelsOccur(t *testing.T) {
	study := smallStudy(t, 6)
	counts := map[int]int{}
	for _, o := range study.Owners {
		for _, s := range o.Strangers() {
			counts[int(o.LabelStranger(s))]++
		}
	}
	for l := 1; l <= 3; l++ {
		if counts[l] == 0 {
			t.Fatalf("label %d never assigned: %v", l, counts)
		}
	}
}

func TestThetaDrawsNearPaper(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		th := drawTheta(rng)
		if err := th.Validate(); err != nil {
			t.Fatalf("drawn theta invalid: %v", err)
		}
		sum := 0.0
		for _, v := range th {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("drawn theta sums to %g", sum)
		}
	}
}

func TestVisibilityCalibration(t *testing.T) {
	// Marginal visibility rates of a large sample must track the
	// calibrated paper rates within a few points.
	cfg := SmallStudyConfig()
	cfg.Owners = 6
	cfg.Ego.Strangers = 800
	cfg.Seed = 11
	study, err := GenerateStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var males, females []graph.UserID
	for _, o := range study.Owners {
		for _, s := range o.Strangers() {
			switch study.Profiles.Get(s).Attr(profile.AttrGender) {
			case GenderMale:
				males = append(males, s)
			case GenderFemale:
				females = append(females, s)
			}
		}
	}
	// Numeric tolerance is loose (±0.08): gender marginals couple to
	// the population's locale mix (see visibilityProb), so only rough
	// agreement with Table IV is achievable.
	for _, tt := range []struct {
		users  []graph.UserID
		gender string
	}{{males, GenderMale}, {females, GenderFemale}} {
		for _, item := range profile.Items() {
			got := study.Profiles.VisibilityRate(tt.users, item)
			want := PaperGenderVisibility(item, tt.gender)
			if math.Abs(got-want) > 0.08 {
				t.Errorf("%s/%s visibility = %.3f, paper %.3f", tt.gender, item, got, want)
			}
		}
	}
	// The structural Table IV claim: female strangers are less visible
	// on every item except photos, where the rates are nearly equal.
	for _, item := range profile.Items() {
		m := study.Profiles.VisibilityRate(males, item)
		f := study.Profiles.VisibilityRate(females, item)
		if item == profile.ItemPhoto {
			if math.Abs(m-f) > 0.05 {
				t.Errorf("photo visibility gap = %.3f, want ≈ 0", m-f)
			}
			continue
		}
		if f >= m {
			t.Errorf("%s: female visibility %.3f >= male %.3f, want lower", item, f, m)
		}
	}
}

func TestVisibilityProbClamped(t *testing.T) {
	for _, item := range profile.Items() {
		for _, g := range []string{GenderMale, GenderFemale, "unknown"} {
			for _, l := range append(Locales(), "zz_ZZ") {
				p := visibilityProb(item, g, l)
				if p < 0.01 || p > 0.99 {
					t.Fatalf("visibilityProb(%s,%s,%s) = %g", item, g, l, p)
				}
			}
		}
	}
}

func TestOwnerDemographics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	genders, locales := ownerDemographics(47, rng)
	males := 0
	for _, g := range genders {
		if g == GenderMale {
			males++
		}
	}
	if males < 28 || males > 36 {
		t.Fatalf("males = %d, want ≈ 32", males)
	}
	byLocale := map[string]int{}
	for _, l := range locales {
		byLocale[l]++
	}
	if byLocale[LocaleTR] < 10 {
		t.Fatalf("TR owners = %d, want the plurality (≈17)", byLocale[LocaleTR])
	}
	for _, l := range locales {
		found := false
		for _, known := range Locales() {
			if l == known {
				found = true
			}
		}
		if !found {
			t.Fatalf("unknown owner locale %q", l)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		v := jitter(rng, 100, 0.25)
		if v < 75 || v > 125 {
			t.Fatalf("jitter(100, 0.25) = %d", v)
		}
	}
	if jitter(rng, 100, 0) != 100 {
		t.Fatal("zero jitter changed value")
	}
	if jitter(rng, 1, 0.9) < 2 {
		t.Fatal("jitter floor violated")
	}
}

func TestExpectedBenefitOffsetSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		att := drawAttitude(rng, GenderFemale, true)
		off := expectedBenefitOffset(att)
		if math.Abs(off) > 0.2 {
			t.Fatalf("benefit offset %g implausibly large", off)
		}
	}
}

func TestHashUnitDeterministicUniform(t *testing.T) {
	if hashUnit(1, 2, 3) != hashUnit(1, 2, 3) {
		t.Fatal("hashUnit not deterministic")
	}
	if hashUnit(1, 2, 3) == hashUnit(1, 2, 4) {
		t.Fatal("hashUnit collision on adjacent input (suspicious)")
	}
	// Rough uniformity: mean of many draws near 0.5.
	sum := 0.0
	const n = 10000
	for i := uint64(0); i < n; i++ {
		v := hashUnit(42, i, i*7+1)
		if v < 0 || v >= 1 {
			t.Fatalf("hashUnit out of [0,1): %g", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("hashUnit mean = %g, want ≈ 0.5", mean)
	}
}

func TestMutualFriendCap(t *testing.T) {
	// NS must stay below ~0.6 (paper Fig. 4: no stranger above 0.6).
	study := smallStudy(t, 8)
	for _, o := range study.Owners {
		for _, s := range o.Strangers() {
			m := len(study.Graph.MutualFriends(o.ID, s))
			if m > study.Graph.Degree(o.ID)*2/5+1 {
				t.Fatalf("stranger %d has %d mutual friends, owner degree %d", s, m, study.Graph.Degree(o.ID))
			}
		}
	}
}

func TestChurnAddsEdgesAndMovesNS(t *testing.T) {
	study := smallStudy(t, 9)
	o := study.Owners[0]
	before := study.Graph.NumEdges()
	added, err := Churn(study, o, 80, 4)
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("churn added nothing")
	}
	if got := study.Graph.NumEdges() - before; got != added {
		t.Fatalf("edge delta %d != reported %d", got, added)
	}
	// Stranger set unchanged (new edges keep strangers at distance 2).
	after := study.Graph.Strangers(o.ID)
	if len(after) != len(o.Strangers()) {
		t.Fatalf("stranger count changed: %d -> %d", len(o.Strangers()), len(after))
	}
	// The mutual-friend cap that keeps Figure 4's NS ceiling holds.
	limit := study.Graph.Degree(o.ID)*2/5 + 1
	for _, s := range after {
		if m := len(study.Graph.MutualFriends(o.ID, s)); m > limit {
			t.Fatalf("stranger %d has %d mutual friends after churn (limit %d)", s, m, limit)
		}
	}
}

func TestChurnValidation(t *testing.T) {
	study := smallStudy(t, 9)
	if _, err := Churn(nil, study.Owners[0], 5, 1); err == nil {
		t.Fatal("nil study accepted")
	}
	if _, err := Churn(study, nil, 5, 1); err == nil {
		t.Fatal("nil owner accepted")
	}
	if _, err := Churn(study, study.Owners[0], -1, 1); err == nil {
		t.Fatal("negative edge count accepted")
	}
	if n, err := Churn(study, study.Owners[0], 0, 1); err != nil || n != 0 {
		t.Fatalf("zero churn = (%d, %v)", n, err)
	}
}

func TestTopologies(t *testing.T) {
	for _, topo := range []Topology{Communities, SmallWorld, ScaleFree} {
		cfg := SmallStudyConfig()
		cfg.Owners = 1
		cfg.Ego.Strangers = 150
		cfg.Ego.Topology = topo
		cfg.Seed = 12
		study, err := GenerateStudy(cfg)
		if err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
		o := study.Owners[0]
		if len(o.Strangers()) == 0 {
			t.Fatalf("%v: no strangers", topo)
		}
		// Friend circles stay connected enough to carry NS density.
		friends := study.Graph.Friends(o.ID)
		edges := study.Graph.InducedEdges(friends)
		if edges == 0 {
			t.Fatalf("%v: no friend-friend edges", topo)
		}
		// Strangers remain exactly at distance 2.
		for _, s := range o.Strangers() {
			if study.Graph.HasEdge(o.ID, s) {
				t.Fatalf("%v: stranger %d is a direct friend", topo, s)
			}
		}
	}
	if got := Topology(9).String(); got != "Topology(9)" {
		t.Fatalf("unknown topology string = %q", got)
	}
	if Communities.String() != "communities" || SmallWorld.String() != "small-world" || ScaleFree.String() != "scale-free" {
		t.Fatal("topology names wrong")
	}
}

func TestUnknownTopologyRejected(t *testing.T) {
	cfg := SmallStudyConfig()
	cfg.Ego.Topology = Topology(42)
	if _, err := GenerateStudy(cfg); err == nil {
		t.Fatal("unknown topology accepted")
	}
}
