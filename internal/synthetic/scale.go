package synthetic

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"sightrisk/internal/graph"
	"sightrisk/internal/graph/snapfile"
	"sightrisk/internal/profile"
)

// ScaleConfig sizes a GenerateScale run. Unlike StudyConfig — which
// models the paper's 47-owner ego-network study in full detail — this
// targets raw social-graph scale: a single connected-ish population of
// 10⁶–10⁷ nodes with a SNAP-Facebook-like heavy-tailed degree
// distribution, generated straight into CSR arrays (no map-of-maps
// Graph is ever built, which is what makes 10⁷ feasible).
type ScaleConfig struct {
	// Seed drives the whole generation deterministically.
	Seed int64
	// Nodes is the population size (>= 2).
	Nodes int
	// AvgDegree is the target mean friend count (default 16, the rough
	// SNAP ego-Facebook mean when subsampled).
	AvgDegree float64
	// Exponent is the degree power-law exponent γ (default 2.6; social
	// graphs measure 2–3).
	Exponent float64
	// MaxDegree caps a node's expected degree (default 1000), the
	// finite-size cutoff real crawls show.
	MaxDegree int
	// ProfileFrac is the fraction of nodes carrying a profile. The risk
	// engine requires every pool member to have one, so benchmark runs
	// want 1; lower fractions exercise the snapshot format's
	// absent-profile rows.
	ProfileFrac float64
	// Owners is how many benchmark owners to select (moderate-degree
	// nodes with profiles, spread over the population).
	Owners int
}

// DefaultScaleConfig returns a ready configuration for the given
// population size.
func DefaultScaleConfig(nodes int) ScaleConfig {
	return ScaleConfig{
		Seed:        1,
		Nodes:       nodes,
		AvgDegree:   16,
		Exponent:    2.6,
		MaxDegree:   1000,
		ProfileFrac: 1,
		Owners:      8,
	}
}

// ScaleGraph is a generated large population, already frozen: the CSR
// snapshot, the interned columnar profiles, and the selected benchmark
// owners. Feed Snapshot+Profiles straight to snapfile.Write to
// produce a .snap file.
type ScaleGraph struct {
	// Snapshot is the frozen graph.
	Snapshot *graph.Snapshot
	// Profiles is the interned profile table over the same node ids.
	Profiles *snapfile.ProfileTable
	// Owners are benchmark owner ids: profile-carrying nodes with
	// moderate degree, in ascending order.
	Owners []graph.UserID
}

// aliasTable samples indices from a fixed discrete distribution in
// O(1) per draw (Vose's alias method) — the only way drawing the
// ~10⁸ edge endpoints of a 10⁷-node graph stays cheap.
type aliasTable struct {
	prob  []float64
	alias []int32
}

func newAliasTable(weights []float64) *aliasTable {
	n := len(weights)
	t := &aliasTable{prob: make([]float64, n), alias: make([]int32, n)}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		t.prob[i] = 1
	}
	for _, i := range small {
		t.prob[i] = 1
	}
	return t
}

func (t *aliasTable) sample(rng *rand.Rand) int32 {
	i := int32(rng.Intn(len(t.prob)))
	if rng.Float64() < t.prob[i] {
		return i
	}
	return t.alias[i]
}

// GenerateScale builds the population deterministically from the seed:
// a Chung–Lu random graph whose expected degrees follow a truncated
// power law, plus interned profiles. Node ids are dense 1..Nodes.
func GenerateScale(cfg ScaleConfig) (*ScaleGraph, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("synthetic: scale Nodes must be >= 2, got %d", cfg.Nodes)
	}
	if cfg.AvgDegree <= 0 || cfg.AvgDegree >= float64(cfg.Nodes) {
		return nil, fmt.Errorf("synthetic: scale AvgDegree must be in (0, Nodes), got %g", cfg.AvgDegree)
	}
	if cfg.Exponent <= 1 {
		return nil, fmt.Errorf("synthetic: scale Exponent must be > 1, got %g", cfg.Exponent)
	}
	if cfg.ProfileFrac < 0 || cfg.ProfileFrac > 1 {
		return nil, fmt.Errorf("synthetic: scale ProfileFrac must be in [0,1], got %g", cfg.ProfileFrac)
	}
	n := cfg.Nodes
	maxDeg := cfg.MaxDegree
	if maxDeg <= 0 || maxDeg >= n {
		maxDeg = min(1000, n-1)
	}

	// Target expected degrees: d_i ∝ (i+i0)^(-1/(γ-1)), the rank-size
	// form of a γ power law, capped at maxDeg and rescaled to the
	// configured mean. i0 smooths the head so the top nodes are hubs,
	// not a single super-hub.
	alpha := 1 / (cfg.Exponent - 1)
	weights := make([]float64, n)
	total := 0.0
	for i := range weights {
		weights[i] = math.Pow(float64(i+10), -alpha)
		total += weights[i]
	}
	scale := cfg.AvgDegree * float64(n) / total
	capped := 0.0
	for i := range weights {
		weights[i] = math.Min(weights[i]*scale, float64(maxDeg))
		capped += weights[i]
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	at := newAliasTable(weights)
	targetEdges := int(capped / 2)
	keys := make([]uint64, 0, targetEdges)
	for k := 0; k < targetEdges; k++ {
		a, b := at.sample(rng), at.sample(rng)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		keys = append(keys, uint64(a)<<32|uint64(b))
	}
	slices.Sort(keys)
	keys = slices.Compact(keys)

	// Assemble the CSR arrays directly. Iterating the sorted key list
	// twice fills every adjacency row already sorted: a row receives
	// first its smaller neighbors (keys where it is the hi end, in lo
	// order) and then its larger ones (keys where it is the lo end, in
	// hi order).
	ids := make([]graph.UserID, n)
	for i := range ids {
		ids[i] = graph.UserID(i + 1)
	}
	offsets := make([]int32, n+1)
	for _, k := range keys {
		offsets[(k>>32)+1]++
		offsets[(k&0xFFFFFFFF)+1]++
	}
	for i := 0; i < n; i++ {
		offsets[i+1] += offsets[i]
	}
	adj := make([]graph.UserID, 2*len(keys))
	adjIdx := make([]int32, 2*len(keys))
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for _, k := range keys {
		a, b := int32(k>>32), int32(k&0xFFFFFFFF)
		adj[cursor[a]], adjIdx[cursor[a]] = graph.UserID(b+1), b
		cursor[a]++
		adj[cursor[b]], adjIdx[cursor[b]] = graph.UserID(a+1), a
		cursor[b]++
	}
	snap, err := graph.SnapshotFromCSR(ids, offsets, adj, adjIdx, len(keys))
	if err != nil {
		return nil, fmt.Errorf("synthetic: scale CSR: %w", err)
	}

	table, err := scaleProfiles(cfg, ids)
	if err != nil {
		return nil, err
	}

	owners := scaleOwners(cfg, snap, table)
	return &ScaleGraph{Snapshot: snap, Profiles: table, Owners: owners}, nil
}

// scaleProfiles fills the interned profile columns with paper-shaped
// categorical values, one cheap rng pass over the population (no
// per-node map allocation).
func scaleProfiles(cfg ScaleConfig, ids []graph.UserID) (*snapfile.ProfileTable, error) {
	b := snapfile.NewTableBuilder(ids)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	locales := Locales()
	lastNames := make([]string, 500)
	for i := range lastNames {
		lastNames[i] = fmt.Sprintf("ln%03d", i)
	}
	towns := make([]string, 64)
	for i := range towns {
		towns[i] = fmt.Sprintf("ht%02d", i)
	}
	schools := make([]string, 48)
	for i := range schools {
		schools[i] = fmt.Sprintf("school%02d", i)
	}
	companies := make([]string, 80)
	for i := range companies {
		companies[i] = fmt.Sprintf("co%02d", i)
	}
	items := profile.Items()
	for i := range ids {
		if rng.Float64() >= cfg.ProfileFrac {
			continue
		}
		gender := GenderMale
		if rng.Float64() < 0.47 {
			gender = GenderFemale
		}
		if err := b.SetAttrAt(i, profile.AttrGender, gender); err != nil {
			return nil, err
		}
		// Zipf-ish locale pick: the square keeps a handful dominant.
		loc := locales[int(float64(len(locales))*rng.Float64()*rng.Float64())]
		if err := b.SetAttrAt(i, profile.AttrLocale, loc); err != nil {
			return nil, err
		}
		if err := b.SetAttrAt(i, profile.AttrLastName, lastNames[rng.Intn(len(lastNames))]); err != nil {
			return nil, err
		}
		if rng.Float64() < 0.6 {
			if err := b.SetAttrAt(i, profile.AttrHometown, towns[rng.Intn(len(towns))]); err != nil {
				return nil, err
			}
		}
		if rng.Float64() < 0.5 {
			if err := b.SetAttrAt(i, profile.AttrEducation, schools[rng.Intn(len(schools))]); err != nil {
				return nil, err
			}
		}
		if rng.Float64() < 0.4 {
			if err := b.SetAttrAt(i, profile.AttrWork, companies[rng.Intn(len(companies))]); err != nil {
				return nil, err
			}
		}
		vis := byte(rng.Intn(128))
		for j, it := range items {
			if err := b.SetVisibleAt(i, it, vis&(1<<uint(j)) != 0); err != nil {
				return nil, err
			}
		}
	}
	return b.Table(), nil
}

// scaleOwners picks cfg.Owners profile-carrying nodes with degree in
// [10, 120] — the ego sizes the paper studies — spread evenly over the
// population, ascending.
func scaleOwners(cfg ScaleConfig, snap *graph.Snapshot, table *snapfile.ProfileTable) []graph.UserID {
	want := cfg.Owners
	if want <= 0 {
		want = 8
	}
	var owners []graph.UserID
	n := snap.NumNodes()
	stride := n / (want * 8)
	if stride < 1 {
		stride = 1
	}
	for start := 0; start < stride && len(owners) < want; start++ {
		for i := start; i < n && len(owners) < want; i += stride {
			id := snap.IDAt(int32(i))
			d := snap.Degree(id)
			if d < 10 || d > 120 {
				continue
			}
			if table.ProfileAt(i) == nil {
				continue
			}
			owners = append(owners, id)
		}
	}
	slices.Sort(owners)
	return owners
}
