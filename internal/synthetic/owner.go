package synthetic

import (
	"math"
	"math/rand"
	"sort"

	"sightrisk/internal/benefit"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/obs"
	"sightrisk/internal/profile"
	"sightrisk/internal/similarity"
)

// Attitude is a simulated owner's latent risk attitude: the weights a
// real annotator's gut feeling places on the signals the paper
// identifies (network similarity, profile homophily, benefits), plus
// label noise. The distributions the weights are drawn from are
// calibrated so the population-level mining results reproduce the
// paper's Tables I-III (gender ≫ locale ≫ last name; photos the most
// label-relevant benefit item).
type Attitude struct {
	// WNS scales how strongly network closeness reduces perceived risk
	// (Figure 7's effect).
	WNS float64
	// WGender is added when the stranger's gender equals RiskyGender;
	// a fraction of it is subtracted otherwise.
	WGender float64
	// RiskyGender is the gender this owner considers riskier.
	RiskyGender string
	// WLocale is added when the stranger's locale differs from the
	// owner's.
	WLocale float64
	// WLastName is subtracted when the stranger shares the owner's
	// last name (a weak kinship signal; near zero per Table I).
	WLastName float64
	// BenefitShift[i] moves the risk score by BenefitShift[i] ·
	// (visible(i) - 0.5): per-item visibility sensitivity, signed —
	// some owners read openness as safety, others as exposure.
	BenefitShift map[profile.Item]float64
	// NoiseScale is the amplitude of the deterministic per-stranger
	// label noise (annotator inconsistency).
	NoiseScale float64
	// T1 and T2 are the label cut points: score < T1 → not risky,
	// score < T2 → risky, else very risky.
	T1, T2 float64
	// NoiseSeed decorrelates noise across owners.
	NoiseSeed uint64
}

// benefitShiftScale gives the relative magnitude of each item's
// visibility sensitivity, ordered like the paper's Table II mined
// importances (photo first, wall/location last). Photo's lead is
// larger than its Table II importance because the information-gain
// ratio divides by split information, and photo's highly skewed
// visibility (≈87% visible) gives it a small split info — the label
// effect must be strong for the ratio to surface it at all.
var benefitShiftScale = map[profile.Item]float64{
	profile.ItemPhoto:    0.32,
	profile.ItemEdu:      0.15,
	profile.ItemWork:     0.14,
	profile.ItemFriend:   0.12,
	profile.ItemHometown: 0.10,
	profile.ItemLocation: 0.085,
	profile.ItemWall:     0.085,
}

// drawAttitude samples one owner's attitude. genderDominant selects
// whether gender (most owners, 34/47 in Table I) or locale is this
// owner's primary signal.
//
// The label cut points T1 and T2 are not arbitrary: a human annotator
// applies a consistent internal scale, so the cut points sit *between*
// the score levels their own attitude produces for the four
// (gender match × locale match) cells. We therefore compute the four
// cell means implied by the drawn weights and place T1 and T2 at the
// midpoints of the two largest gaps (with a little jitter). This keeps
// all three labels populated, keeps both gender and locale informative
// (Table I), and keeps labels predictable enough for the classifier to
// reach the paper's ~83% exact-match accuracy.
func drawAttitude(rng *rand.Rand, ownerGender string, genderDominant bool) Attitude {
	a := Attitude{
		WNS:          0.25 + 0.20*rng.Float64(),
		WLastName:    0.02 * rng.Float64(),
		NoiseScale:   0.06,
		BenefitShift: make(map[profile.Item]float64, len(benefitShiftScale)),
		NoiseSeed:    rng.Uint64(),
	}
	if genderDominant {
		a.WGender = 0.16 + 0.14*rng.Float64()
		a.WLocale = 0.06 + 0.08*rng.Float64()
	} else {
		a.WGender = 0.03 + 0.05*rng.Float64()
		a.WLocale = 0.16 + 0.12*rng.Float64()
	}
	// Owners most often deem the opposite gender riskier; a minority
	// fix on their own.
	a.RiskyGender = GenderMale
	if ownerGender == GenderMale && rng.Float64() < 0.7 {
		a.RiskyGender = GenderFemale
	}
	if ownerGender == GenderFemale && rng.Float64() < 0.3 {
		a.RiskyGender = GenderFemale
	}
	for _, item := range profile.Items() { // fixed order keeps rng use deterministic
		scale := benefitShiftScale[item]
		mag := scale * (0.16 + 0.12*rng.Float64()) // see benefitShiftScale
		if rng.Float64() < 0.5 {
			mag = -mag
		}
		a.BenefitShift[item] = mag
	}
	a.NoiseScale = 0.04
	a.T1, a.T2 = cutPoints(a, rng)
	return a
}

// expectedBenefitOffset is the population-mean contribution of the
// benefit terms to the attitude's score: items are not 50% visible on
// average (photos ≈ 87%, work ≈ 15%), so the visibility sensitivities
// shift every stranger's score by a predictable amount the annotator's
// internal scale absorbs.
func expectedBenefitOffset(a Attitude) float64 {
	// Summed in fixed item order: float addition is not associative, so
	// ranging over the map directly would give the offset — and through
	// it the T1/T2 cut points — ULP-level noise between runs of the same
	// seed. Strangers whose score lands inside that noise band then flip
	// labels run to run (the scale-free robustness flake).
	off := 0.0
	for _, item := range profile.Items() {
		if shift, ok := a.BenefitShift[item]; ok {
			off += shift * (itemMean(item) - 0.5)
		}
	}
	return off
}

// cutPoints places the two label thresholds at the midpoints of the
// two widest gaps between the four (gender, locale) cell means the
// attitude induces, including the expected benefit offset — a human
// annotator's "risky" bar sits between the score levels their own
// attitude actually produces.
func cutPoints(a Attitude, rng *rand.Rand) (t1, t2 float64) {
	off := 0.5 + expectedBenefitOffset(a)
	cells := []float64{
		off - 0.5*a.WGender,             // safe gender, same locale
		off - 0.5*a.WGender + a.WLocale, // safe gender, other locale
		off + a.WGender,                 // risky gender, same locale
		off + a.WGender + a.WLocale,     // risky gender, other locale
	}
	sort.Float64s(cells)
	type gap struct {
		mid, width float64
	}
	gaps := make([]gap, 0, 3)
	for i := 0; i < 3; i++ {
		gaps = append(gaps, gap{mid: (cells[i] + cells[i+1]) / 2, width: cells[i+1] - cells[i]})
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i].width > gaps[j].width })
	picked := []float64{gaps[0].mid, gaps[1].mid}
	sort.Float64s(picked)
	jitter := func() float64 { return 0.015 * (2*rng.Float64() - 1) }
	return picked[0] + jitter(), picked[1] + jitter()
}

// Owner is one simulated study participant: their node, profile,
// benefit weights, confidence and latent attitude.
type Owner struct {
	ID         graph.UserID  // the owner's node id
	Net        *EgoNet       // the owner's ego network
	Theta      benefit.Theta // benefit weights for the risk model
	Confidence float64       // labeling confidence in (0,1]
	Attitude   Attitude      // latent privacy attitude

	g     *graph.Graph
	store *profile.Store
	cache map[graph.UserID]label.Label
}

// Profile returns the owner's own profile.
func (o *Owner) Profile() *profile.Profile { return o.store.Get(o.ID) }

// Strangers returns the owner's stranger set (second-hop contacts).
func (o *Owner) Strangers() []graph.UserID { return o.Net.Strangers }

// Score returns the owner's latent risk score for the stranger in
// [0,1]. Deterministic: asking twice gives the same answer.
func (o *Owner) Score(s graph.UserID) float64 {
	att := o.Attitude
	sp := o.store.Get(s)
	op := o.Profile()

	score := 0.5
	// Owners perceive network closeness coarsely — in bands rather
	// than as a continuous value — so the closeness discount is
	// quantized to tenths of NS (the same granularity as the α = 10
	// network similarity groups). Above NS = 0.5 the discount
	// saturates.
	ns := similarity.NS(o.g, o.ID, s)
	nsNorm := math.Floor(ns*10) / 10 / 0.5
	if nsNorm > 1 {
		nsNorm = 1
	}
	score -= att.WNS * nsNorm

	if sp != nil && op != nil {
		if sp.Attr(profile.AttrGender) == att.RiskyGender {
			score += att.WGender
		} else {
			score -= 0.5 * att.WGender
		}
		if sp.Attr(profile.AttrLocale) != op.Attr(profile.AttrLocale) {
			score += att.WLocale
		}
		if sp.Attr(profile.AttrLastName) == op.Attr(profile.AttrLastName) {
			score -= att.WLastName
		}
		for _, item := range profile.Items() { // fixed order: keep scoring deterministic
			shift, ok := att.BenefitShift[item]
			if !ok {
				continue
			}
			v := -0.5
			if sp.IsVisible(item) {
				v = 0.5
			}
			score += shift * v
		}
	}
	score += att.NoiseScale * (hashUnit(att.NoiseSeed, uint64(o.ID), uint64(s)) - 0.5)

	if score < 0 {
		return 0
	}
	if score > 1 {
		return 1
	}
	return score
}

// LabelStranger implements active.Annotator: the owner's risk label
// for the stranger, memoized for consistency across repeated queries.
func (o *Owner) LabelStranger(s graph.UserID) label.Label {
	if l, ok := o.cache[s]; ok {
		return l
	}
	score := o.Score(s)
	var l label.Label
	switch {
	case score < o.Attitude.T1:
		l = label.NotRisky
	case score < o.Attitude.T2:
		l = label.Risky
	default:
		l = label.VeryRisky
	}
	o.cache[s] = l
	return l
}

// Benefit returns B(o,s) under the owner's θ weights.
func (o *Owner) Benefit(s graph.UserID) float64 {
	return benefit.Score(o.Theta, o.store.Get(s))
}

// Fingerprint digests everything that determines the owner's labeling
// behavior — attitude weights, cut points (bit-exact), noise, θ and
// confidence — into one order-stable FNV-64a value. Two study builds
// whose owners fingerprint identically answer every query identically,
// so the determinism audit compares fingerprints before running the
// pipeline: a divergence in study construction is then caught at its
// source instead of surfacing rounds later as a flipped label.
func (o *Owner) Fingerprint() uint64 {
	a := o.Attitude
	d := obs.NewDigest().
		Int(int64(o.ID)).
		Float(a.WNS).Float(a.WGender).Str(a.RiskyGender).
		Float(a.WLocale).Float(a.WLastName).
		Float(a.NoiseScale).Float(a.T1).Float(a.T2).
		Uint(a.NoiseSeed).Float(o.Confidence)
	for _, item := range profile.Items() { // fixed order: digest must not see map order
		if shift, ok := a.BenefitShift[item]; ok {
			d = d.Str(string(item)).Float(shift)
		}
	}
	items := make([]profile.Item, 0, len(o.Theta))
	for item := range o.Theta {
		items = append(items, item)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	for _, item := range items {
		d = d.Str(string(item)).Float(o.Theta[item])
	}
	return uint64(d)
}

// drawTheta samples an owner θ vector around the paper's Table III
// means. The items are drawn in sorted order: ranging over the Theta
// map directly would consume the RNG in map-iteration order, making θ
// vectors vary between runs of the same seed.
func drawTheta(rng *rand.Rand) benefit.Theta {
	means := benefit.PaperTheta()
	items := make([]profile.Item, 0, len(means))
	for item := range means {
		items = append(items, item)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	t := make(benefit.Theta, len(items))
	for _, item := range items {
		v := means[item] + 0.03*(rng.Float64()-0.5)
		if v < 0.01 {
			v = 0.01
		}
		t[item] = v
	}
	return t.Normalized()
}

// hashUnit maps (seed, a, b) to a uniform float64 in [0,1) via a
// SplitMix64-style mix — deterministic annotator noise without any
// shared RNG state.
func hashUnit(seed, a, b uint64) float64 {
	x := seed ^ (a * 0x9E3779B97F4A7C15) ^ (b * 0xBF58476D1CE4E5B9)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
