package synthetic

import (
	"math/rand"
	"sort"

	"sightrisk/internal/profile"
)

// Visibility model: each benefit item of a stranger's profile is
// visible to non-friends with a probability combining a gender effect
// (paper Table IV) and a locale effect (paper Table V). The two
// measured marginals are blended per item so that regenerating either
// table from a synthetic sample lands near the paper's numbers.

// genderVisibility is Table IV: per-item visibility rate by gender.
var genderVisibility = map[profile.Item]map[string]float64{
	profile.ItemWall:     {GenderMale: 0.25, GenderFemale: 0.16},
	profile.ItemPhoto:    {GenderMale: 0.88, GenderFemale: 0.87},
	profile.ItemFriend:   {GenderMale: 0.56, GenderFemale: 0.47},
	profile.ItemLocation: {GenderMale: 0.42, GenderFemale: 0.32},
	profile.ItemEdu:      {GenderMale: 0.35, GenderFemale: 0.28},
	profile.ItemWork:     {GenderMale: 0.20, GenderFemale: 0.12},
	profile.ItemHometown: {GenderMale: 0.41, GenderFemale: 0.30},
}

// localeVisibility is Table V: per-item visibility rate by locale.
var localeVisibility = map[profile.Item]map[string]float64{
	profile.ItemWall: {
		LocaleTR: 0.20, LocaleDE: 0.20, LocaleUS: 0.17, LocaleIT: 0.27,
		LocaleGB: 0.12, LocaleES: 0.22, LocalePL: 0.31,
	},
	profile.ItemPhoto: {
		LocaleTR: 0.84, LocaleDE: 0.77, LocaleUS: 0.89, LocaleIT: 0.92,
		LocaleGB: 0.91, LocaleES: 0.87, LocalePL: 0.95,
	},
	profile.ItemFriend: {
		LocaleTR: 0.41, LocaleDE: 0.46, LocaleUS: 0.52, LocaleIT: 0.68,
		LocaleGB: 0.46, LocaleES: 0.63, LocalePL: 0.72,
	},
	profile.ItemLocation: {
		LocaleTR: 0.36, LocaleDE: 0.34, LocaleUS: 0.42, LocaleIT: 0.32,
		LocaleGB: 0.38, LocaleES: 0.37, LocalePL: 0.33,
	},
	profile.ItemEdu: {
		LocaleTR: 0.31, LocaleDE: 0.17, LocaleUS: 0.34, LocaleIT: 0.38,
		LocaleGB: 0.25, LocaleES: 0.28, LocalePL: 0.23,
	},
	profile.ItemWork: {
		LocaleTR: 0.15, LocaleDE: 0.17, LocaleUS: 0.18, LocaleIT: 0.14,
		LocaleGB: 0.17, LocaleES: 0.13, LocalePL: 0.13,
	},
	profile.ItemHometown: {
		LocaleTR: 0.32, LocaleDE: 0.34, LocaleUS: 0.37, LocaleIT: 0.41,
		LocaleGB: 0.32, LocaleES: 0.37, LocalePL: 0.31,
	},
}

// PaperGenderVisibility exposes the Table IV calibration rate.
func PaperGenderVisibility(item profile.Item, gender string) float64 {
	return genderVisibility[item][gender]
}

// PaperLocaleVisibility exposes the Table V calibration rate.
func PaperLocaleVisibility(item profile.Item, locale string) float64 {
	return localeVisibility[item][locale]
}

// visibilityProb blends the two calibrated marginals multiplicatively:
//
//	p(item | g, l) = clamp( lRate(item, l) · gRate(item, g) / gMean(item) )
//
// The locale rate is the base and the gender effect is a ratio around
// the item's mean gender rate. With balanced genders the locale
// marginal is preserved exactly (Table V), and the gender marginal
// deviates from Table IV only by the population's locale mix — an
// unavoidable coupling, since the paper's two tables are marginals of
// one joint distribution measured on a locale-skewed population.
func visibilityProb(item profile.Item, gender, locale string) float64 {
	p, okl := localeVisibility[item][locale]
	if !okl {
		p = itemMean(item)
	}
	if g, okg := genderVisibility[item][gender]; okg {
		if mean := genderMean(item); mean > 0 {
			p *= g / mean
		}
	}
	if p < 0.01 {
		p = 0.01
	}
	if p > 0.99 {
		p = 0.99
	}
	return p
}

func genderMean(item profile.Item) float64 {
	rates := genderVisibility[item]
	if len(rates) == 0 {
		return 0
	}
	return sortedMean(rates)
}

func itemMean(item profile.Item) float64 {
	rates := localeVisibility[item]
	if len(rates) == 0 {
		return 0.5
	}
	return sortedMean(rates)
}

// sortedMean averages the map values in sorted key order. Float
// addition is not associative, so a map-order sum varies at the ULP
// level between runs; that noise reaches visibilityProb, where a
// uniform draw landing inside the band flips a visibility bit and the
// whole downstream pipeline with it.
func sortedMean(rates map[string]float64) float64 {
	keys := make([]string, 0, len(rates))
	for k := range rates {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sum := 0.0
	for _, k := range keys {
		sum += rates[k]
	}
	return sum / float64(len(rates))
}

// fillVisibility samples every benefit item's visibility bit for the
// profile, using its gender and locale attributes.
func fillVisibility(rng *rand.Rand, p *profile.Profile) {
	gender := p.Attr(profile.AttrGender)
	locale := p.Attr(profile.AttrLocale)
	for _, item := range profile.Items() {
		p.SetVisible(item, rng.Float64() < visibilityProb(item, gender, locale))
	}
}
