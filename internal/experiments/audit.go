package experiments

import (
	"fmt"
	"math"
	"strings"

	"sightrisk/internal/core"
	"sightrisk/internal/obs"
	"sightrisk/internal/synthetic"
)

// AuditVerdict is the determinism auditor's outcome for one topology
// of the robustness matrix.
type AuditVerdict struct {
	// Topology names the audited generator variant.
	Topology string
	// Passed reports that both runs were identical end to end: owner
	// fingerprints, the full event trail (with stage digests), and the
	// headline row.
	Passed bool
	// Events is the number of audited events per run.
	Events int
	// Detail localizes the divergence when Passed is false: the first
	// owner whose study fingerprint differs (the source), and the first
	// divergent pipeline event (the symptom).
	Detail string
}

// AuditRobustness is the determinism audit: it executes the whole
// robustness pipeline twice per topology — study generation, pooling,
// every learning session, headline aggregation — with the event-trail
// auditor attached and stage digests enabled, and diffs the two runs.
//
// Divergences are localized on two levels. The event trail pinpoints
// the first pipeline event (query, round digest, pool digest) where the
// runs disagree — the symptom, attributed to an exact owner, pool and
// round. The per-owner study fingerprints (synthetic.Owner.Fingerprint)
// say whether the divergence was born even earlier, in study
// construction — the source. This is the harness that localized the
// scale-free robustness flake to map-iteration-order float summation in
// the synthetic owners' cut-point placement.
func AuditRobustness(studyCfg synthetic.StudyConfig, coreCfg core.Config) ([]AuditVerdict, error) {
	var out []AuditVerdict
	for _, topo := range []synthetic.Topology{synthetic.Communities, synthetic.SmallWorld, synthetic.ScaleFree} {
		cfg := studyCfg
		cfg.Ego.Topology = topo
		runA, err := auditedRun(cfg, coreCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: audit %s run A: %w", topo, err)
		}
		runB, err := auditedRun(cfg, coreCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: audit %s run B: %w", topo, err)
		}

		var detail []string
		for i := range runA.study.Owners {
			fa, fb := runA.study.Owners[i].Fingerprint(), runB.study.Owners[i].Fingerprint()
			if fa != fb {
				detail = append(detail, fmt.Sprintf("study build diverged at owner %d: fingerprint %016x vs %016x",
					runA.study.Owners[i].ID, fa, fb))
				break
			}
		}
		if d, diverged := obs.FirstDivergence(runA.trail, runB.trail); diverged {
			detail = append(detail, d.String())
		} else if !rowsEqual(runA.row, runB.row) {
			detail = append(detail, fmt.Sprintf("headline rows differ with identical event trails: %+v vs %+v", runA.row, runB.row))
		}
		out = append(out, AuditVerdict{
			Topology: topo.String(),
			Passed:   len(detail) == 0,
			Events:   len(runA.trail),
			Detail:   strings.Join(detail, "\n"),
		})
	}
	return out, nil
}

// rowsEqual compares two rows bit-exactly, treating NaN as equal to
// itself (a row with no validation comparisons must not read as a
// divergence).
func rowsEqual(a, b RobustnessRow) bool {
	feq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return a.Topology == b.Topology &&
		a.MaxOccupiedGroup == b.MaxOccupiedGroup &&
		feq(a.Group1Share, b.Group1Share) &&
		feq(a.ExactMatch, b.ExactMatch) &&
		feq(a.MeanRounds, b.MeanRounds) &&
		feq(a.MeanLabels, b.MeanLabels)
}

// auditedRun is one full robustness-row computation with the auditor
// recording every event and stage digest.
type auditedResult struct {
	study *synthetic.Study
	trail []obs.Record
	row   RobustnessRow
}

func auditedRun(studyCfg synthetic.StudyConfig, coreCfg core.Config) (*auditedResult, error) {
	env, err := NewEnv(studyCfg, coreCfg)
	if err != nil {
		return nil, err
	}
	aud := obs.NewAuditor()
	env.Cfg.Observer = aud
	env.Cfg.Trace.Digests = true
	fig4, err := Fig4(env)
	if err != nil {
		return nil, err
	}
	h, err := ComputeHeadline(env)
	if err != nil {
		return nil, err
	}
	row := RobustnessRow{
		Topology:    studyCfg.Ego.Topology.String(),
		Group1Share: fig4[0].Share,
		ExactMatch:  h.ExactMatchRate,
		MeanRounds:  h.MeanRounds,
		MeanLabels:  h.MeanLabels,
	}
	for _, r := range fig4 {
		if r.Count > 0 && r.Group > row.MaxOccupiedGroup {
			row.MaxOccupiedGroup = r.Group
		}
	}
	return &auditedResult{study: env.Study, trail: aud.Trail(), row: row}, nil
}
