package experiments

import (
	"testing"

	"sightrisk/internal/core"
	"sightrisk/internal/synthetic"
)

// TestAuditRobustnessPasses runs the determinism auditor on a reduced
// robustness matrix and demands a clean verdict for every topology —
// the in-suite version of `make audit`. Any reintroduced source of
// run-to-run noise (map-order float summation, unseeded RNG, racy
// merge order) fails here with the first divergent owner or event in
// the message.
func TestAuditRobustnessPasses(t *testing.T) {
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 4
	cfg.Ego.Strangers = 250
	coreCfg := core.DefaultConfig()
	coreCfg.Workers = 4
	verdicts, err := AuditRobustness(cfg, coreCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 3 {
		t.Fatalf("got %d verdicts, want 3", len(verdicts))
	}
	for _, v := range verdicts {
		if v.Events == 0 {
			t.Errorf("%s: no events audited", v.Topology)
		}
		if !v.Passed {
			t.Errorf("%s diverged:\n%s", v.Topology, v.Detail)
		}
	}
}

// TestAuditDetectsDivergence: feeding the differ two runs of different
// seeds must localize a divergence — otherwise a pass proves nothing.
func TestAuditDetectsDivergence(t *testing.T) {
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 2
	cfg.Ego.Strangers = 150
	coreCfg := core.DefaultConfig()
	a, err := auditedRun(cfg, coreCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	b, err := auditedRun(cfg, coreCfg)
	if err != nil {
		t.Fatal(err)
	}
	var detail []string
	for i := range a.study.Owners {
		if a.study.Owners[i].Fingerprint() != b.study.Owners[i].Fingerprint() {
			detail = append(detail, "fingerprint mismatch")
			break
		}
	}
	if len(detail) == 0 {
		t.Fatal("different seeds produced identical owner fingerprints")
	}
	if rowsEqual(a.row, b.row) && a.trail[len(a.trail)-1].Chain == b.trail[len(b.trail)-1].Chain {
		t.Fatal("different seeds produced identical trails and rows")
	}
}
