package experiments

import (
	"math"
	"sync"
	"testing"

	"sightrisk/internal/core"
	"sightrisk/internal/synthetic"
)

// tinyEnv is shared across tests in this package: experiments are
// read-only over the cached runs, so one environment serves them all.
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		cfg := synthetic.SmallStudyConfig()
		cfg.Owners = 6
		cfg.Ego.Strangers = 300
		cfg.Seed = 21
		envVal, envErr = NewEnv(cfg, core.DefaultConfig())
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestFig4Shape(t *testing.T) {
	env := testEnv(t)
	rows, err := Fig4(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != env.Cfg.Pool.Alpha {
		t.Fatalf("rows = %d, want alpha", len(rows))
	}
	total, shares := 0, 0.0
	for _, r := range rows {
		total += r.Count
		shares += r.Share
	}
	if total != env.Study.TotalStrangers() {
		t.Fatalf("fig4 total %d, study has %d", total, env.Study.TotalStrangers())
	}
	if math.Abs(shares-1) > 1e-9 {
		t.Fatalf("shares sum to %g", shares)
	}
	// Paper shape: group 1 dominates; nothing above NS = 0.6.
	if rows[0].Count <= rows[1].Count {
		t.Fatalf("group 1 (%d) not dominant over group 2 (%d)", rows[0].Count, rows[1].Count)
	}
	for _, r := range rows[6:] {
		if r.Count != 0 {
			t.Fatalf("group %d (NS >= 0.6) holds %d strangers, want 0", r.Group, r.Count)
		}
	}
}

func TestHeadlineSanity(t *testing.T) {
	env := testEnv(t)
	h, err := ComputeHeadline(env)
	if err != nil {
		t.Fatal(err)
	}
	if h.Owners != 6 {
		t.Fatalf("owners = %d", h.Owners)
	}
	if h.MeanStrangers <= 0 || h.MeanLabels <= 0 {
		t.Fatalf("population stats: %+v", h)
	}
	// The reproduction criteria: accuracy far above random (33%) and
	// majority (~50%), stabilization within a handful of rounds, RMSE
	// under the paper's 0.5 bar.
	if h.ExactMatchRate < 0.6 {
		t.Fatalf("exact match %.3f, want > 0.6", h.ExactMatchRate)
	}
	if h.MeanRounds < 1 || h.MeanRounds > 8 {
		t.Fatalf("mean rounds %.2f out of plausible range", h.MeanRounds)
	}
	if h.MeanRMSE >= 0.5 {
		t.Fatalf("mean final RMSE %.3f, want < 0.5", h.MeanRMSE)
	}
	if h.MeanConfidence < 60 || h.MeanConfidence > 95 {
		t.Fatalf("mean confidence %.2f", h.MeanConfidence)
	}
	// Owner effort is a small fraction of the stranger count.
	if h.MeanLabels >= h.MeanStrangers/2 {
		t.Fatalf("labels %.1f vs strangers %.1f: effort not reduced", h.MeanLabels, h.MeanStrangers)
	}
}

func TestFig5NPPBeatsNSP(t *testing.T) {
	env := testEnv(t)
	rows, err := Fig5(env, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !math.IsNaN(rows[0].NPP) || !math.IsNaN(rows[0].NSP) {
		t.Fatal("round 1 must have no RMSE")
	}
	// Aggregate over the early rounds (where most sessions live):
	// NPP's error stays below NSP's.
	nppSum, nspSum, n := 0.0, 0.0, 0
	for _, r := range rows[1:4] {
		if math.IsNaN(r.NPP) || math.IsNaN(r.NSP) {
			continue
		}
		nppSum += r.NPP
		nspSum += r.NSP
		n++
	}
	if n == 0 {
		t.Fatal("no comparable rounds")
	}
	if nppSum >= nspSum {
		t.Fatalf("NPP mean RMSE %.3f not below NSP %.3f", nppSum/float64(n), nspSum/float64(n))
	}
}

func TestFig6NPPStabilizesFaster(t *testing.T) {
	env := testEnv(t)
	rows, err := Fig6(env, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].NPPSessions != 0 {
		t.Fatal("round 1 must have no stabilization measurements")
	}
	// Round 2 (all sessions alive): NPP has fewer unstabilized labels.
	if math.IsNaN(rows[1].NPP) || math.IsNaN(rows[1].NSP) {
		t.Fatal("round 2 missing data")
	}
	if rows[1].NPP >= rows[1].NSP {
		t.Fatalf("round 2: NPP %.2f not below NSP %.2f", rows[1].NPP, rows[1].NSP)
	}
}

func TestFig7Decreasing(t *testing.T) {
	env := testEnv(t)
	rows, err := Fig7(env)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the populated low groups against the populated high
	// groups: the very-risky share must fall substantially.
	var first, last float64 = math.NaN(), math.NaN()
	for _, r := range rows {
		if r.Strangers >= 20 {
			if math.IsNaN(first) {
				first = r.VeryRisky
			}
			last = r.VeryRisky
		}
	}
	if math.IsNaN(first) {
		t.Fatal("no populated groups")
	}
	if !(last < first) {
		t.Fatalf("very-risky share did not decrease: first %.3f last %.3f", first, last)
	}
}

func TestTable1GenderDominates(t *testing.T) {
	env := testEnv(t)
	rows := Table1(env)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Name != "gender" {
		t.Fatalf("top attribute = %s, want gender", rows[0].Name)
	}
	if rows[2].Name != "last name" {
		t.Fatalf("bottom attribute = %s, want last name", rows[2].Name)
	}
	// Normalized importances sum to ~1.
	sum := 0.0
	for _, r := range rows {
		sum += r.AvgImportance
		if len(r.RankCounts) != 3 {
			t.Fatalf("rank counts = %v", r.RankCounts)
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("importances sum to %g", sum)
	}
	// Rank counts per position sum to the owner count.
	for pos := 0; pos < 3; pos++ {
		n := 0
		for _, r := range rows {
			n += r.RankCounts[pos]
		}
		if n != len(env.Study.Owners) {
			t.Fatalf("position %d rank counts sum to %d", pos+1, n)
		}
	}
}

func TestTable2PhotoLeads(t *testing.T) {
	env := testEnv(t)
	rows := Table2(env)
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Photo must rank in the top two: at tiny scale (4 owners) exact
	// first place can wobble, but the paper's headline item must not
	// sink into the pack.
	if rows[0].Name != "photo" && rows[1].Name != "photo" {
		t.Fatalf("photo not in top two: %v, %v", rows[0].Name, rows[1].Name)
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.AvgImportance
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("importances sum to %g", sum)
	}
}

func TestTable3ThetaNearPaper(t *testing.T) {
	env := testEnv(t)
	rows := Table3(env)
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	paper := PaperTheta()
	for _, r := range rows {
		want := 0.0
		for item, v := range paper {
			if string(item) == r.Item {
				want = v
			}
		}
		if math.Abs(r.AvgTheta-want) > 0.03 {
			t.Errorf("theta[%s] = %.4f, paper %.4f", r.Item, r.AvgTheta, want)
		}
	}
	// Sorted descending.
	for i := 1; i < len(rows); i++ {
		if rows[i].AvgTheta > rows[i-1].AvgTheta {
			t.Fatal("table 3 not sorted")
		}
	}
}

func TestTable4GenderGap(t *testing.T) {
	env := testEnv(t)
	rows := Table4(env)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want male+female", len(rows))
	}
	if rows[0].Slice != synthetic.GenderMale || rows[1].Slice != synthetic.GenderFemale {
		t.Fatalf("slice order: %s, %s", rows[0].Slice, rows[1].Slice)
	}
	male, female := rows[0], rows[1]
	lower := 0
	for item, m := range male.Rates {
		if female.Rates[item] < m {
			lower++
		}
	}
	if lower < 5 {
		t.Fatalf("female visibility lower on only %d of 7 items", lower)
	}
}

func TestTable5LocaleShape(t *testing.T) {
	env := testEnv(t)
	rows := Table5(env)
	if len(rows) == 0 {
		t.Fatal("no locale rows")
	}
	for _, r := range rows {
		if r.N < 1 {
			t.Fatalf("locale %s has no strangers", r.Slice)
		}
		// Structural claims of Table V on reasonably sampled slices:
		// photos highest, work among the lowest.
		if r.N < 100 {
			continue
		}
		photo := r.Rates["photo"]
		for item, rate := range r.Rates {
			if item == "photo" {
				continue
			}
			if rate > photo {
				t.Errorf("locale %s: %s visibility %.2f above photo %.2f", r.Slice, item, rate, photo)
			}
		}
		if r.Rates["work"] > 0.3 {
			t.Errorf("locale %s: work visibility %.2f, want low", r.Slice, r.Rates["work"])
		}
	}
}

func TestEnvCaching(t *testing.T) {
	env := testEnv(t)
	a, err := env.NPPRuns()
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.NPPRuns()
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("NPP runs recomputed instead of cached")
	}
}

func TestSmallAndFullEnvConstructors(t *testing.T) {
	env, err := SmallEnv(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Study.Owners) != 8 {
		t.Fatalf("small env owners = %d", len(env.Study.Owners))
	}
	if env.Owner(0) == nil {
		t.Fatal("Owner accessor broken")
	}
	// FullEnv is only constructed (not run) here: generation alone
	// must scale to the paper's population.
	full, err := FullEnv(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Study.Owners) != 47 {
		t.Fatalf("full env owners = %d, want 47", len(full.Study.Owners))
	}
	if full.Study.TotalStrangers() < 100000 {
		t.Fatalf("full env strangers = %d, want paper scale (~172k)", full.Study.TotalStrangers())
	}
}
