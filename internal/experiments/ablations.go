package experiments

import (
	"context"
	"fmt"
	"math"

	"sightrisk/internal/active"
	"sightrisk/internal/classify"
	"sightrisk/internal/cluster"
	"sightrisk/internal/core"
	"sightrisk/internal/profile"
	"sightrisk/internal/similarity"
)

// AblationResult summarizes one configuration variant of the pipeline:
// the owner effort it costs, how fast sessions stabilize, and how
// accurate the predictions are.
type AblationResult struct {
	Name string
	// MeanLabels is the mean owner labels per owner.
	MeanLabels float64
	// MeanRounds is the mean session length over non-trivial pools.
	MeanRounds float64
	// ExactMatch is the share of validated predictions matching owner
	// labels.
	ExactMatch float64
	// MeanRMSE is the mean final validation RMSE.
	MeanRMSE float64
}

// runVariant executes the full per-owner pipeline under a modified
// configuration and aggregates the headline statistics. When
// useOwnerConfidence is false, the variant's Learn.Confidence applies
// to every owner instead of their personal confidence — required by
// variants that manipulate the confidence itself.
func runVariant(e *Env, name string, useOwnerConfidence bool, mutate func(*core.Config)) (AblationResult, error) {
	cfg := e.Cfg
	mutate(&cfg)
	engine := core.New(cfg)

	var labels, rounds, rmses []float64
	matches, comparisons := 0, 0
	for _, o := range e.Study.Owners {
		confidence := o.Confidence
		if !useOwnerConfidence {
			confidence = math.NaN() // keep the variant's Learn.Confidence
		}
		run, err := engine.RunOwner(context.Background(), e.Study.Graph, e.Study.Profiles, o.ID, active.Infallible(o), confidence)
		if err != nil {
			return AblationResult{}, fmt.Errorf("experiments: variant %s owner %d: %w", name, o.ID, err)
		}
		labels = append(labels, float64(run.QueriedCount()))
		if r := run.MeanRoundsToStop(); !math.IsNaN(r) {
			rounds = append(rounds, r)
		}
		if r := run.FinalRMSE(); !math.IsNaN(r) {
			rmses = append(rmses, r)
		}
		for _, pr := range run.Pools {
			m, t := pr.Result.ExactMatchStats()
			matches += m
			comparisons += t
		}
	}
	res := AblationResult{Name: name, MeanLabels: mean(labels), MeanRounds: mean(rounds), MeanRMSE: mean(rmses)}
	if comparisons > 0 {
		res.ExactMatch = float64(matches) / float64(comparisons)
	} else {
		res.ExactMatch = math.NaN()
	}
	return res, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// AblationClassifiers compares the paper's harmonic-function
// classifier against the majority-vote and weighted-kNN baselines.
func AblationClassifiers(e *Env) ([]AblationResult, error) {
	variants := []struct {
		name string
		clf  classify.Classifier
	}{
		{"harmonic (paper)", nil}, // nil = engine default
		{"majority", classify.Majority{}},
		{"knn3", classify.NewKNN(3)},
		{"knn7", classify.NewKNN(7)},
	}
	var out []AblationResult
	for _, v := range variants {
		clf := v.clf
		res, err := runVariant(e, v.name, true, func(c *core.Config) { c.Learn.Classifier = clf })
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// AblationAlpha sweeps the number of network similarity groups around
// the paper's α = 10.
func AblationAlpha(e *Env, alphas []int) ([]AblationResult, error) {
	if len(alphas) == 0 {
		alphas = []int{5, 10, 20}
	}
	var out []AblationResult
	for _, a := range alphas {
		alpha := a
		res, err := runVariant(e, fmt.Sprintf("alpha=%d", alpha), true, func(c *core.Config) { c.Pool.Alpha = alpha })
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// AblationBeta sweeps Squeezer's new-cluster threshold around the
// paper's β = 0.4.
func AblationBeta(e *Env, betas []float64) ([]AblationResult, error) {
	if len(betas) == 0 {
		betas = []float64{0.2, 0.4, 0.6}
	}
	var out []AblationResult
	for _, b := range betas {
		beta := b
		res, err := runVariant(e, fmt.Sprintf("beta=%.1f", beta), true, func(c *core.Config) { c.Pool.Squeezer.Beta = beta })
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// AblationStopping isolates the two halves of the paper's combined
// stopping rule. "accuracy only" neutralizes stabilization by setting
// confidence 0 (tolerance 2: only a full not-risky→very-risky flip
// counts as change); "stabilization only" neutralizes the RMSE bar by
// raising the threshold to the maximum error.
func AblationStopping(e *Env) ([]AblationResult, error) {
	variants := []struct {
		name      string
		ownerConf bool
		mut       func(*core.Config)
	}{
		{"combined (paper)", true, func(*core.Config) {}},
		{"accuracy only", false, func(c *core.Config) {
			c.Learn.Confidence = 0
		}},
		{"stabilization only", true, func(c *core.Config) {
			c.Learn.RMSEThreshold = 2.1
		}},
	}
	var out []AblationResult
	for _, v := range variants {
		res, err := runVariant(e, v.name, v.ownerConf, v.mut)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// AblationWeightExponent sweeps the classifier edge-weight sharpening
// exponent (DESIGN.md: the categorical analogue of Zhu's RBF kernel
// width).
func AblationWeightExponent(e *Env, exps []float64) ([]AblationResult, error) {
	if len(exps) == 0 {
		exps = []float64{1, 2, 4, 8}
	}
	var out []AblationResult
	for _, x := range exps {
		exp := x
		res, err := runVariant(e, fmt.Sprintf("ps^%.0f", exp), true, func(c *core.Config) { c.WeightExponent = exp })
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// AblationSqueezerWeights compares equal clustering weights (the
// engine default) against weighting attributes by their Table I mined
// importances — the customization the paper's Squeezer discussion
// suggests.
func AblationSqueezerWeights(e *Env) ([]AblationResult, error) {
	tableI := map[profile.Attribute]float64{
		profile.AttrGender:   0.6231,
		profile.AttrLocale:   0.3226,
		profile.AttrLastName: 0.0542,
	}
	variants := []struct {
		name    string
		weights map[profile.Attribute]float64
	}{
		{"equal weights (paper default)", nil},
		{"Table I importances", tableI},
		{"gender only", map[profile.Attribute]float64{profile.AttrGender: 1}},
	}
	var out []AblationResult
	for _, v := range variants {
		w := v.weights
		res, err := runVariant(e, v.name, true, func(c *core.Config) { c.Pool.Squeezer.Weights = w })
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// AblationPoolStrategy compares NPP against NSP end-to-end (the
// aggregate view of Figures 5 and 6).
func AblationPoolStrategy(e *Env) ([]AblationResult, error) {
	variants := []struct {
		name     string
		strategy cluster.Strategy
	}{
		{"NPP (paper)", cluster.NPP},
		{"NSP baseline", cluster.NSP},
	}
	var out []AblationResult
	for _, v := range variants {
		s := v.strategy
		res, err := runVariant(e, v.name, true, func(c *core.Config) { c.Pool.Strategy = s })
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// AblationSamplers compares the paper's uniform in-pool sampling with
// the informativeness-based strategies of the active-learning
// literature the paper cites (Settles' survey): uncertainty, density
// and combined uncertainty-density sampling.
func AblationSamplers(e *Env) ([]AblationResult, error) {
	variants := []struct {
		name    string
		sampler active.Sampler
	}{
		{"random (paper)", active.RandomSampler{}},
		{"uncertainty", active.UncertaintySampler{}},
		{"density", active.DensitySampler{}},
		{"uncertainty-density", active.UncertaintyDensitySampler{}},
	}
	var out []AblationResult
	for _, v := range variants {
		s := v.sampler
		res, err := runVariant(e, v.name, true, func(c *core.Config) { c.Learn.Sampler = s })
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// AblationStoppers compares the paper's combined stopping rule with
// the multi-criteria alternatives of Zhu, Wang & Hovy (citation [19]):
// max-confidence and overall-uncertainty stopping.
func AblationStoppers(e *Env) ([]AblationResult, error) {
	variants := []struct {
		name    string
		stopper active.Stopper
	}{
		{"combined (paper)", nil}, // nil = engine default from thresholds
		{"max-confidence 0.9", active.MaxConfidenceStopper{Confidence: 0.9}},
		{"overall-uncertainty 0.4", active.OverallUncertaintyStopper{Threshold: 0.4}},
	}
	var out []AblationResult
	for _, v := range variants {
		s := v.stopper
		res, err := runVariant(e, v.name, true, func(c *core.Config) { c.Learn.Stopper = s })
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// AblationNetworkMeasure swaps the paper's NS measure for the
// classical network-similarity measures of the comparison it cites
// (Spertus et al., KDD 2005) in the NSG bucketing.
func AblationNetworkMeasure(e *Env) ([]AblationResult, error) {
	var out []AblationResult
	for _, name := range similarity.MeasureNames() {
		m, err := similarity.MeasureByName(name)
		if err != nil {
			return nil, err
		}
		display := name
		if name == "NS" {
			display = "NS (paper)"
		}
		res, err := runVariant(e, display, true, func(c *core.Config) { c.Pool.NetworkSim = m })
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
