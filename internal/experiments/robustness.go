package experiments

import (
	"sightrisk/internal/core"
	"sightrisk/internal/synthetic"
)

// RobustnessRow summarizes one topology variant of the robustness
// experiment.
type RobustnessRow struct {
	Topology string
	// Group1Share is the share of strangers in the weakest NSG group
	// (Figure 4's dominant bar).
	Group1Share float64
	// MaxOccupiedGroup is the highest NSG group holding any stranger
	// (the paper observed nothing above group 6).
	MaxOccupiedGroup int
	// ExactMatch, MeanRounds and MeanLabels are the headline numbers
	// under this topology.
	ExactMatch float64
	MeanRounds float64
	MeanLabels float64
}

// Robustness re-runs the headline pipeline over study populations
// whose friend circles are wired with different graph topologies
// (communities / small-world / scale-free). The paper's claims are
// about the *method*, not the generator: the Figure 4 shape (mass in
// the weak groups, bounded NS) and the headline accuracy band should
// survive the topology swap.
func Robustness(studyCfg synthetic.StudyConfig, coreCfg core.Config) ([]RobustnessRow, error) {
	var out []RobustnessRow
	for _, topo := range []synthetic.Topology{synthetic.Communities, synthetic.SmallWorld, synthetic.ScaleFree} {
		cfg := studyCfg
		cfg.Ego.Topology = topo
		env, err := NewEnv(cfg, coreCfg)
		if err != nil {
			return nil, err
		}
		fig4, err := Fig4(env)
		if err != nil {
			return nil, err
		}
		h, err := ComputeHeadline(env)
		if err != nil {
			return nil, err
		}
		row := RobustnessRow{
			Topology:    topo.String(),
			Group1Share: fig4[0].Share,
			ExactMatch:  h.ExactMatchRate,
			MeanRounds:  h.MeanRounds,
			MeanLabels:  h.MeanLabels,
		}
		for _, r := range fig4 {
			if r.Count > 0 && r.Group > row.MaxOccupiedGroup {
				row.MaxOccupiedGroup = r.Group
			}
		}
		out = append(out, row)
	}
	return out, nil
}
