package experiments

import (
	"math"
	"testing"

	"sightrisk/internal/core"
	"sightrisk/internal/synthetic"
)

func checkAblationRows(t *testing.T, rows []AblationResult, want int) {
	t.Helper()
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Name == "" {
			t.Fatal("unnamed variant")
		}
		if r.MeanLabels <= 0 {
			t.Fatalf("%s: labels = %g", r.Name, r.MeanLabels)
		}
		if !math.IsNaN(r.ExactMatch) && (r.ExactMatch < 0 || r.ExactMatch > 1) {
			t.Fatalf("%s: exact match = %g", r.Name, r.ExactMatch)
		}
	}
}

func TestAblationPoolStrategyShape(t *testing.T) {
	env := testEnv(t)
	rows, err := AblationPoolStrategy(env)
	if err != nil {
		t.Fatal(err)
	}
	checkAblationRows(t, rows, 2)
	// The paper's central comparison: NPP pools predict better than
	// NSP pools.
	var npp, nsp AblationResult
	for _, r := range rows {
		switch r.Name {
		case "NPP (paper)":
			npp = r
		case "NSP baseline":
			nsp = r
		}
	}
	if !(npp.ExactMatch > nsp.ExactMatch) {
		t.Fatalf("NPP accuracy %.3f not above NSP %.3f", npp.ExactMatch, nsp.ExactMatch)
	}
}

func TestAblationStoppingShape(t *testing.T) {
	env := testEnv(t)
	rows, err := AblationStopping(env)
	if err != nil {
		t.Fatal(err)
	}
	checkAblationRows(t, rows, 3)
}

func TestAblationAlphaShape(t *testing.T) {
	env := testEnv(t)
	rows, err := AblationAlpha(env, []int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	checkAblationRows(t, rows, 2)
	// Coarser grouping (fewer pools) costs less owner effort.
	if rows[0].MeanLabels >= rows[1].MeanLabels {
		t.Fatalf("alpha=5 labels %.1f not below alpha=10 labels %.1f",
			rows[0].MeanLabels, rows[1].MeanLabels)
	}
}

func TestAblationClassifiersShape(t *testing.T) {
	env := testEnv(t)
	rows, err := AblationClassifiers(env)
	if err != nil {
		t.Fatal(err)
	}
	checkAblationRows(t, rows, 4)
	// The paper's harmonic classifier must be competitive with every
	// baseline (within a small tolerance for sampling noise).
	var harmonic float64
	for _, r := range rows {
		if r.Name == "harmonic (paper)" {
			harmonic = r.ExactMatch
		}
	}
	for _, r := range rows {
		if r.ExactMatch > harmonic+0.05 {
			t.Fatalf("%s accuracy %.3f clearly above harmonic %.3f", r.Name, r.ExactMatch, harmonic)
		}
	}
}

func TestPrivacyScoreContrast(t *testing.T) {
	env := testEnv(t)
	rows, err := PrivacyScoreContrast(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]ContrastRow{}
	for _, r := range rows {
		byName[r.Signal] = r
		if r.MeanAbsCorr < 0 || r.MeanAbsCorr > 1 {
			t.Fatalf("%s: abs corr = %g", r.Signal, r.MeanAbsCorr)
		}
	}
	// The paper's related-work argument, quantified: privacy scores
	// track the stranger's exposure (strong positive correlation with
	// benefit), while their relation to risk labels is owner-specific
	// in sign, so the population mean is much weaker.
	pb := byName["Liu-Terzi naive vs benefit"]
	pl := byName["Liu-Terzi naive score vs labels"]
	if pb.MeanCorr < 0.5 {
		t.Fatalf("privacy score vs benefit corr = %.3f, want strongly positive", pb.MeanCorr)
	}
	if math.Abs(pl.MeanCorr) > pb.MeanCorr/2 {
		t.Fatalf("privacy score vs labels corr %.3f not clearly weaker than vs benefit %.3f",
			pl.MeanCorr, pb.MeanCorr)
	}
	// Network similarity relates to risk consistently (negative: close
	// strangers are judged safer — Figure 7's effect).
	ns := byName["network similarity vs labels"]
	if ns.MeanCorr >= 0 {
		t.Fatalf("NS vs labels corr = %.3f, want negative", ns.MeanCorr)
	}
}

func TestContrastPropagationRows(t *testing.T) {
	env := testEnv(t)
	rows, err := PrivacyScoreContrast(env)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ContrastRow{}
	for _, r := range rows {
		byName[r.Signal] = r
	}
	// Propagation risk is structural: it must track network similarity
	// strongly (both grow with connectivity) ...
	pn := byName["propagation risk [21] vs NS"]
	if pn.MeanCorr < 0.5 {
		t.Fatalf("propagation vs NS corr = %.3f, want strongly positive", pn.MeanCorr)
	}
	// ... which makes its label correlation the *opposite* sign of a
	// naive "more reachable = more risky" reading: well-connected
	// strangers are judged safer (Figure 7).
	pl := byName["propagation risk [21] vs labels"]
	if pl.MeanCorr >= 0 {
		t.Fatalf("propagation vs labels corr = %.3f, want negative", pl.MeanCorr)
	}
}

func TestDynamics(t *testing.T) {
	// A private env: Dynamics mutates the study graph.
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 1
	cfg.Ego.Strangers = 250
	cfg.Seed = 33
	env, err := NewEnv(cfg, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Dynamics(env, 0, 3, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want initial + 3 steps", len(rows))
	}
	if rows[0].Step != 0 || rows[0].EdgesAdded != 0 {
		t.Fatalf("initial row = %+v", rows[0])
	}
	for _, r := range rows[1:] {
		if r.EdgesAdded == 0 {
			t.Fatalf("step %d added no edges", r.Step)
		}
		// Churn must visibly move strangers between similarity groups
		// and the re-run must absorb it without collapsing accuracy.
		if r.Migrated == 0 {
			t.Fatalf("step %d migrated no strangers", r.Step)
		}
		if !math.IsNaN(r.ExactMatch) && r.ExactMatch < 0.5 {
			t.Fatalf("step %d accuracy collapsed to %.2f", r.Step, r.ExactMatch)
		}
	}
	if _, err := Dynamics(env, 99, 1, 1); err == nil {
		t.Fatal("bad owner index accepted")
	}
}

func TestRobustnessShape(t *testing.T) {
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 2
	cfg.Ego.Strangers = 250
	cfg.Seed = 5
	rows, err := Robustness(cfg, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Figure 4 shape holds per topology: weak group dominates,
		// nothing above NS = 0.6 (group 6).
		if r.Group1Share < 0.5 {
			t.Errorf("%s: group-1 share %.2f, want dominant", r.Topology, r.Group1Share)
		}
		if r.MaxOccupiedGroup > 6 {
			t.Errorf("%s: max occupied group %d, want <= 6", r.Topology, r.MaxOccupiedGroup)
		}
		// Headline band holds per topology.
		if !math.IsNaN(r.ExactMatch) && r.ExactMatch < 0.6 {
			t.Errorf("%s: accuracy %.2f collapsed", r.Topology, r.ExactMatch)
		}
	}
}
