package experiments

import (
	"context"
	"fmt"
	"time"

	"sightrisk/internal/active"
	"sightrisk/internal/core"
	"sightrisk/internal/faults"
)

// FaultOverheadRow measures one fault scenario: how much robustness
// machinery (retries, checkpoint recording) costs relative to the
// clean pipeline, and what it absorbs.
type FaultOverheadRow struct {
	Scenario   string
	Owners     int
	MeanLabels float64 // owner labels per owner (must match baseline for transient-only faults)
	Failures   int     // transient failures injected (= retry attempts spent recovering)
	Queries    int     // total annotator attempts including retried ones
	Partial    int     // owners that degraded to a partial run
	Elapsed    time.Duration
}

// FaultOverhead reruns the full per-owner pipeline under increasing
// annotator flakiness and reports the robustness overhead. Transient
// failures are injected deterministically (seeded) and absorbed by
// the retry policy, so every flaky scenario must converge to the
// baseline's label counts — the rows make the cost of that guarantee
// visible.
func FaultOverhead(e *Env, probs []float64, retry active.RetryPolicy) ([]FaultOverheadRow, error) {
	// Default policy: enough attempts that even a 20% flake rate has a
	// negligible chance of exhausting retries anywhere in a study, and
	// near-zero backoff so rows measure machinery, not sleeping.
	if retry.MaxAttempts < 2 {
		retry = active.RetryPolicy{MaxAttempts: 10, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
	}
	scenarios := []struct {
		name string
		prob float64
	}{{"baseline", 0}}
	for _, p := range probs {
		scenarios = append(scenarios, struct {
			name string
			prob float64
		}{fmt.Sprintf("flaky-%g%%", p*100), p})
	}

	var rows []FaultOverheadRow
	for _, sc := range scenarios {
		cfg := e.Cfg
		if sc.prob > 0 {
			cfg.Retry = retry
		}
		engine := core.New(cfg)
		row := FaultOverheadRow{Scenario: sc.name, Owners: len(e.Study.Owners)}
		start := time.Now()
		var labels float64
		for _, o := range e.Study.Owners {
			var ann active.FallibleAnnotator = active.Infallible(o)
			var inj *faults.Injector
			if sc.prob > 0 {
				var err error
				inj, err = faults.Wrap(ann, faults.Config{Seed: e.Cfg.Seed + int64(o.ID), FailProb: sc.prob})
				if err != nil {
					return nil, err
				}
				ann = inj
			}
			run, err := engine.RunOwner(context.Background(), e.Study.Graph, e.Study.Profiles, o.ID, ann, o.Confidence)
			if err != nil {
				return nil, fmt.Errorf("experiments: fault scenario %s owner %d: %w", sc.name, o.ID, err)
			}
			labels += float64(run.QueriedCount())
			if run.Partial {
				row.Partial++
			}
			if inj != nil {
				st := inj.Stats()
				row.Failures += st.Failures
				row.Queries += st.Queries
			}
		}
		row.Elapsed = time.Since(start)
		if row.Owners > 0 {
			row.MeanLabels = labels / float64(row.Owners)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
