package experiments

import (
	"math"

	"sightrisk/internal/cluster"
	"sightrisk/internal/core"
	"sightrisk/internal/stats"
)

// Fig4Row is one bar of Figure 4: a network similarity group and the
// number of strangers falling into it (aggregated over all owners).
type Fig4Row struct {
	Group int // 1-based NSG index; group g covers NS ∈ [(g-1)/α, g/α)
	Count int
	Share float64 // fraction of all strangers
}

// Fig4 reproduces Figure 4: stranger counts per network similarity
// group. It only needs the NSG bucketing, not the learning pipeline.
// The paper's shape: heavily skewed toward the weakly connected
// groups, with no stranger above NS = 0.6.
func Fig4(e *Env) ([]Fig4Row, error) {
	alpha := e.Cfg.Pool.Alpha
	counts := make([]int, alpha)
	total := 0
	for _, o := range e.Study.Owners {
		nsg, err := cluster.BuildNSG(e.Study.Graph, o.ID, o.Strangers(), alpha)
		if err != nil {
			return nil, err
		}
		for i, c := range nsg.Counts() {
			counts[i] += c
			total += c
		}
	}
	rows := make([]Fig4Row, alpha)
	for i := range rows {
		rows[i] = Fig4Row{Group: i + 1, Count: counts[i]}
		if total > 0 {
			rows[i].Share = float64(counts[i]) / float64(total)
		}
	}
	return rows, nil
}

// RoundSeriesRow is one x-position of Figures 5 and 6: the per-round
// mean of a session statistic for NPP and NSP pools.
type RoundSeriesRow struct {
	Round int
	// NPP and NSP are the mean statistic at this round for sessions
	// under each pooling strategy (NaN when no session reached the
	// round).
	NPP, NSP float64
	// NPPSessions / NSPSessions count the sessions contributing.
	NPPSessions, NSPSessions int
}

// seriesKind selects which per-round statistic a series aggregates.
type seriesKind int

const (
	seriesRMSE seriesKind = iota
	seriesUnstabilized
)

func roundSeries(runs []*core.OwnerRun, kind seriesKind, maxRound int) ([]float64, []int) {
	sums := make([]float64, maxRound)
	counts := make([]int, maxRound)
	for _, run := range runs {
		for _, pr := range run.Pools {
			for _, rd := range pr.Result.Rounds {
				if rd.Number < 1 || rd.Number > maxRound {
					continue
				}
				var v float64
				switch kind {
				case seriesRMSE:
					if math.IsNaN(rd.RMSE) {
						continue
					}
					v = rd.RMSE
				case seriesUnstabilized:
					if rd.Unstabilized < 0 {
						continue
					}
					v = float64(rd.Unstabilized)
				}
				sums[rd.Number-1] += v
				counts[rd.Number-1]++
			}
		}
	}
	means := make([]float64, maxRound)
	for i := range means {
		if counts[i] == 0 {
			means[i] = math.NaN()
			continue
		}
		means[i] = sums[i] / float64(counts[i])
	}
	return means, counts
}

// Fig5 reproduces Figure 5: mean validation RMSE per labeling round,
// NPP vs NSP. The paper's shape: both decline with rounds, NPP below
// NSP.
func Fig5(e *Env, maxRound int) ([]RoundSeriesRow, error) {
	return buildRoundSeries(e, seriesRMSE, maxRound)
}

// Fig6 reproduces Figure 6: mean number of unstabilized labels per
// round, NPP vs NSP. The paper's shape: both decline, NPP stabilizes
// faster.
func Fig6(e *Env, maxRound int) ([]RoundSeriesRow, error) {
	return buildRoundSeries(e, seriesUnstabilized, maxRound)
}

func buildRoundSeries(e *Env, kind seriesKind, maxRound int) ([]RoundSeriesRow, error) {
	if maxRound < 1 {
		maxRound = 8
	}
	npp, err := e.NPPRuns()
	if err != nil {
		return nil, err
	}
	nsp, err := e.NSPRuns()
	if err != nil {
		return nil, err
	}
	nppMeans, nppCounts := roundSeries(npp, kind, maxRound)
	nspMeans, nspCounts := roundSeries(nsp, kind, maxRound)
	rows := make([]RoundSeriesRow, maxRound)
	for i := range rows {
		rows[i] = RoundSeriesRow{
			Round:       i + 1,
			NPP:         nppMeans[i],
			NSP:         nspMeans[i],
			NPPSessions: nppCounts[i],
			NSPSessions: nspCounts[i],
		}
	}
	return rows, nil
}

// Fig7Row is one bar of Figure 7: the share of very-risky labels in a
// network similarity group, aggregated over owners.
type Fig7Row struct {
	Group     int
	VeryRisky float64 // share of strangers in the group labeled very risky
	Strangers int
}

// Fig7 reproduces Figure 7: percentage of very risky strangers per
// network similarity group. The paper's shape: consistently
// decreasing with increasing network similarity.
func Fig7(e *Env) ([]Fig7Row, error) {
	runs, err := e.NPPRuns()
	if err != nil {
		return nil, err
	}
	alpha := e.Cfg.Pool.Alpha
	very := make([]int, alpha)
	total := make([]int, alpha)
	for _, run := range runs {
		labels := run.Labels()
		for gi, members := range run.NSG.Groups {
			for _, m := range members {
				total[gi]++
				if labels[m] == 3 {
					very[gi]++
				}
			}
		}
	}
	rows := make([]Fig7Row, 0, alpha)
	for gi := 0; gi < alpha; gi++ {
		row := Fig7Row{Group: gi + 1, Strangers: total[gi]}
		if total[gi] > 0 {
			row.VeryRisky = float64(very[gi]) / float64(total[gi])
		} else {
			row.VeryRisky = math.NaN()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Headline gathers the scalar results of Section IV-C.
type Headline struct {
	// Owners, MeanStrangers and MeanLabels describe the population
	// (paper: 47 owners, 3,661 strangers and 86 labels per owner).
	Owners        int
	MeanStrangers float64
	MeanLabels    float64
	// MeanConfidence is the mean owner confidence (paper: 78.39).
	MeanConfidence float64
	// MeanRounds is the mean rounds to stabilization (paper: 3.29).
	MeanRounds float64
	// ExactMatchRate is the share of validated predictions exactly
	// matching owner labels (paper: 83.36%).
	ExactMatchRate float64
	// MeanRMSE is the mean final validation RMSE (paper: < 0.5).
	MeanRMSE float64
}

// ComputeHeadline reproduces the headline numbers of Section IV-C
// from the NPP runs.
func ComputeHeadline(e *Env) (Headline, error) {
	runs, err := e.NPPRuns()
	if err != nil {
		return Headline{}, err
	}
	var labels, confidences, rounds, rmses []float64
	matches, comparisons := 0, 0
	strangers := 0
	for i, run := range runs {
		strangers += len(run.Strangers)
		labels = append(labels, float64(run.QueriedCount()))
		confidences = append(confidences, e.Study.Owners[i].Confidence)
		if r := run.MeanRoundsToStop(); !math.IsNaN(r) {
			rounds = append(rounds, r)
		}
		if r := run.FinalRMSE(); !math.IsNaN(r) {
			rmses = append(rmses, r)
		}
		for _, pr := range run.Pools {
			m, t := pr.Result.ExactMatchStats()
			matches += m
			comparisons += t
		}
	}
	h := Headline{
		Owners:         len(runs),
		MeanStrangers:  float64(strangers) / float64(len(runs)),
		MeanLabels:     stats.Mean(labels),
		MeanConfidence: stats.Mean(confidences),
		MeanRounds:     stats.Mean(rounds),
		MeanRMSE:       stats.Mean(rmses),
	}
	if comparisons > 0 {
		h.ExactMatchRate = float64(matches) / float64(comparisons)
	} else {
		h.ExactMatchRate = math.NaN()
	}
	return h, nil
}
