package experiments

import (
	"sort"

	"sightrisk/internal/benefit"
	"sightrisk/internal/graph"
	"sightrisk/internal/infogain"
	"sightrisk/internal/profile"
	"sightrisk/internal/synthetic"
)

// ImportanceRow is one row of Table I / Table II: an attribute (or
// benefit item), how many owners ranked it at each importance
// position, and its mean normalized importance.
type ImportanceRow struct {
	Name string
	// RankCounts[k] is the number of owners for which this attribute
	// was the (k+1)-th most important (the paper's I1, I2, ... columns).
	RankCounts []int
	// AvgImportance is the mean Definition 6 importance over owners.
	AvgImportance float64
}

// ownerLabelSamples builds (value, class) samples for one attribute
// over every stranger of the owner, using the owner's ground-truth
// judgment (the simulated annotator can label everyone, mirroring the
// paper's mining over collected labels).
func ownerLabelSamples(o *synthetic.Owner, store *profile.Store, attr profile.Attribute) []infogain.Sample {
	strangers := o.Strangers()
	samples := make([]infogain.Sample, 0, len(strangers))
	for _, s := range strangers {
		p := store.Get(s)
		if p == nil {
			continue
		}
		samples = append(samples, infogain.Sample{
			Value: p.Attr(attr),
			Class: int(o.LabelStranger(s)),
		})
	}
	return samples
}

// ownerBenefitSamples is the Table II analogue: the attribute value is
// the visibility bit of one benefit item ("0"/"1").
func ownerBenefitSamples(o *synthetic.Owner, store *profile.Store, item profile.Item) []infogain.Sample {
	strangers := o.Strangers()
	samples := make([]infogain.Sample, 0, len(strangers))
	for _, s := range strangers {
		p := store.Get(s)
		if p == nil {
			continue
		}
		v := "0"
		if p.IsVisible(item) {
			v = "1"
		}
		samples = append(samples, infogain.Sample{Value: v, Class: int(o.LabelStranger(s))})
	}
	return samples
}

// importanceTable runs the Definition 6 mining for a set of named
// sample builders and aggregates rank counts and mean importance over
// owners. Rows come back sorted by descending average importance.
func importanceTable(e *Env, names []string, build func(o *synthetic.Owner, name string) []infogain.Sample) []ImportanceRow {
	n := len(names)
	rankCounts := make(map[string][]int, n)
	sumImp := make(map[string]float64, n)
	for _, name := range names {
		rankCounts[name] = make([]int, n)
	}
	for _, o := range e.Study.Owners {
		ratios := make(map[string]float64, n)
		for _, name := range names {
			ratios[name] = infogain.GainRatio(build(o, name))
		}
		imp := infogain.Importance(ratios)
		ranked := infogain.Rank(imp)
		for pos, r := range ranked {
			rankCounts[r.Attribute][pos]++
			sumImp[r.Attribute] += r.Importance
		}
	}
	rows := make([]ImportanceRow, 0, n)
	for _, name := range names {
		rows = append(rows, ImportanceRow{
			Name:          name,
			RankCounts:    rankCounts[name],
			AvgImportance: sumImp[name] / float64(len(e.Study.Owners)),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].AvgImportance != rows[j].AvgImportance {
			return rows[i].AvgImportance > rows[j].AvgImportance
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// Table1 reproduces Table I: the importance of the clustering profile
// attributes (gender, locale, last name) in owner risk judgments.
// Paper shape: gender dominates (I1 for 34/47 owners, avg 0.6231),
// locale second, last name marginal.
func Table1(e *Env) []ImportanceRow {
	attrs := profile.ClusteringAttributes()
	names := make([]string, len(attrs))
	for i, a := range attrs {
		names[i] = string(a)
	}
	return importanceTable(e, names, func(o *synthetic.Owner, name string) []infogain.Sample {
		return ownerLabelSamples(o, e.Study.Profiles, profile.Attribute(name))
	})
}

// Table2 reproduces Table II: the mined importance of benefit-item
// visibility in owner risk judgments. Paper shape: photo clearly
// first (avg 0.27), wall and location at the bottom.
func Table2(e *Env) []ImportanceRow {
	items := profile.Items()
	names := make([]string, len(items))
	for i, it := range items {
		names[i] = string(it)
	}
	return importanceTable(e, names, func(o *synthetic.Owner, name string) []infogain.Sample {
		return ownerBenefitSamples(o, e.Study.Profiles, profile.Item(name))
	})
}

// ThetaRow is one row of Table III: a benefit item and the mean
// owner-given θ weight.
type ThetaRow struct {
	Item     string
	AvgTheta float64
}

// Table3 reproduces Table III: average owner-given θ weights per
// benefit item, sorted descending. Paper: hometown 0.155 down to work
// 0.1321 — a narrow band, which is exactly the paper's point that
// system-suggested weights can serve for some items.
func Table3(e *Env) []ThetaRow {
	sums := make(map[profile.Item]float64)
	for _, o := range e.Study.Owners {
		for item, w := range o.Theta {
			sums[item] += w
		}
	}
	rows := make([]ThetaRow, 0, len(sums))
	for item, sum := range sums {
		rows = append(rows, ThetaRow{Item: string(item), AvgTheta: sum / float64(len(e.Study.Owners))})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].AvgTheta != rows[j].AvgTheta {
			return rows[i].AvgTheta > rows[j].AvgTheta
		}
		return rows[i].Item < rows[j].Item
	})
	return rows
}

// VisibilityRow is one row of Table IV / Table V: a population slice
// (gender or locale) and its per-item visibility rates.
type VisibilityRow struct {
	Slice string
	Rates map[profile.Item]float64
	N     int
}

// allStrangers collects every stranger over all owners.
func allStrangers(e *Env) []graph.UserID {
	var out []graph.UserID
	for _, o := range e.Study.Owners {
		out = append(out, o.Strangers()...)
	}
	return out
}

// visibilityBySlice computes item visibility rates for strangers
// partitioned by one profile attribute, with slices emitted in the
// given order (unknown slice values are appended alphabetically).
func visibilityBySlice(e *Env, attr profile.Attribute, order []string) []VisibilityRow {
	store := e.Study.Profiles
	bySlice := make(map[string][]graph.UserID)
	for _, s := range allStrangers(e) {
		p := store.Get(s)
		if p == nil {
			continue
		}
		v := p.Attr(attr)
		if v == "" {
			continue
		}
		bySlice[v] = append(bySlice[v], s)
	}
	var slices []string
	inOrder := make(map[string]bool, len(order))
	for _, s := range order {
		if _, ok := bySlice[s]; ok {
			slices = append(slices, s)
			inOrder[s] = true
		}
	}
	var extra []string
	for s := range bySlice {
		if !inOrder[s] {
			extra = append(extra, s)
		}
	}
	sort.Strings(extra)
	slices = append(slices, extra...)

	rows := make([]VisibilityRow, 0, len(slices))
	for _, sl := range slices {
		users := bySlice[sl]
		row := VisibilityRow{Slice: sl, Rates: make(map[profile.Item]float64, 7), N: len(users)}
		for _, item := range profile.Items() {
			row.Rates[item] = store.VisibilityRate(users, item)
		}
		rows = append(rows, row)
	}
	return rows
}

// Table4 reproduces Table IV: benefit-item visibility by stranger
// gender. Paper shape: female strangers consistently less visible,
// except photos (≈ equal at 88% / 87%).
func Table4(e *Env) []VisibilityRow {
	return visibilityBySlice(e, profile.AttrGender, []string{synthetic.GenderMale, synthetic.GenderFemale})
}

// Table5 reproduces Table V: benefit-item visibility by stranger
// locale over the paper's seven locales. Paper shape: work lowest
// everywhere, photos highest (77-95%), friends 41-72%.
func Table5(e *Env) []VisibilityRow {
	return visibilityBySlice(e, profile.AttrLocale, synthetic.Locales())
}

// PaperTheta re-exports the paper's Table III means so reports can
// print paper-vs-measured columns.
func PaperTheta() map[profile.Item]float64 {
	t := benefit.PaperTheta()
	out := make(map[profile.Item]float64, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}
