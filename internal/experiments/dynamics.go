package experiments

import (
	"context"
	"fmt"

	"sightrisk/internal/active"
	"sightrisk/internal/cluster"
	"sightrisk/internal/core"
	"sightrisk/internal/synthetic"
)

// DynamicsRow traces one churn step of the dynamic-graph experiment.
type DynamicsRow struct {
	// Step is the churn round (0 = the initial run).
	Step int
	// EdgesAdded is the number of new stranger-friend edges injected
	// before this step's re-run.
	EdgesAdded int
	// Migrated counts strangers whose network-similarity group changed
	// relative to the previous step.
	Migrated int
	// LabelChanges counts strangers whose final risk label changed
	// relative to the previous step.
	LabelChanges int
	// LabelsRequested is the owner effort of this step's re-run.
	LabelsRequested int
	// ExactMatch is the validation accuracy of this step's re-run.
	ExactMatch float64
}

// Dynamics validates the design requirement that motivated on-the-fly
// pool construction (Section III): "changes in the social graph are
// immediately reflected". It runs the pipeline for one owner, injects
// graph churn (strangers gaining connections to the owner's friends),
// re-runs, and reports how many strangers migrated between network
// similarity groups, how many labels moved, and whether accuracy
// holds.
//
// The expected shape: churn moves strangers toward higher NSG groups,
// the re-run keeps the accuracy of the initial run, and the labels of
// migrated strangers drift toward less risky (Figure 7's closeness
// effect, applied dynamically).
func Dynamics(e *Env, ownerIdx, steps, edgesPerStep int) ([]DynamicsRow, error) {
	if ownerIdx < 0 || ownerIdx >= len(e.Study.Owners) {
		return nil, fmt.Errorf("experiments: owner index %d out of range", ownerIdx)
	}
	if steps < 1 {
		steps = 3
	}
	if edgesPerStep < 1 {
		edgesPerStep = 50
	}
	owner := e.Study.Owners[ownerIdx]
	engine := core.New(e.Cfg)

	run := func() (*core.OwnerRun, error) {
		return engine.RunOwner(context.Background(), e.Study.Graph, e.Study.Profiles, owner.ID, active.Infallible(owner), owner.Confidence)
	}
	groupOf := func(nsg *cluster.NSG) map[int64]int {
		out := make(map[int64]int)
		for gi, members := range nsg.Groups {
			for _, m := range members {
				out[int64(m)] = gi + 1
			}
		}
		return out
	}

	prev, err := run()
	if err != nil {
		return nil, err
	}
	prevGroups := groupOf(prev.NSG)
	prevLabels := prev.Labels()
	rate, _ := prev.ExactMatchRate()
	rows := []DynamicsRow{{Step: 0, LabelsRequested: prev.QueriedCount(), ExactMatch: rate}}

	for step := 1; step <= steps; step++ {
		added, err := synthetic.Churn(e.Study, owner, edgesPerStep, int64(1000*step)+int64(owner.ID))
		if err != nil {
			return nil, err
		}
		cur, err := run()
		if err != nil {
			return nil, err
		}
		curGroups := groupOf(cur.NSG)
		curLabels := cur.Labels()
		migrated, changed := 0, 0
		for s, g := range curGroups {
			if prevGroups[s] != g {
				migrated++
			}
		}
		for s, l := range curLabels {
			if prevLabels[s] != l {
				changed++
			}
		}
		rate, _ := cur.ExactMatchRate()
		rows = append(rows, DynamicsRow{
			Step:            step,
			EdgesAdded:      added,
			Migrated:        migrated,
			LabelChanges:    changed,
			LabelsRequested: cur.QueriedCount(),
			ExactMatch:      rate,
		})
		prevGroups, prevLabels = curGroups, curLabels
	}
	return rows, nil
}
