// Package experiments regenerates every table and figure of the
// paper's evaluation (Section IV) on the synthetic study population.
// Each experiment is a pure function from an Env to typed rows, so the
// riskbench command, the test suite and the benchmarks all share one
// implementation.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"sightrisk/internal/active"
	"sightrisk/internal/cluster"
	"sightrisk/internal/core"
	"sightrisk/internal/synthetic"
)

// Env is a generated study plus the engine configuration, with the
// expensive full pipeline runs computed once and cached.
type Env struct {
	Study *synthetic.Study
	Cfg   core.Config
	// Wrap, when non-nil, decorates each owner's annotator before the
	// run — the hook riskbench uses to inject faults (latency,
	// flakiness, abandonment) without the experiments knowing.
	Wrap func(active.FallibleAnnotator) active.FallibleAnnotator

	mu      sync.Mutex
	nppRuns []*core.OwnerRun
	nspRuns []*core.OwnerRun
}

// NewEnv generates the study population and prepares the engine
// configuration. Unless the caller brings their own, the Env installs
// a shared content-keyed weight-matrix cache (cluster.WeightCache):
// every experiment that re-runs the pipeline over the same owners then
// reuses the pool weight matrices instead of rebuilding them — results
// are unchanged (the cache is keyed by pool content, attributes and
// exponent), only repeated work disappears.
func NewEnv(studyCfg synthetic.StudyConfig, coreCfg core.Config) (*Env, error) {
	study, err := synthetic.GenerateStudy(studyCfg)
	if err != nil {
		return nil, err
	}
	if coreCfg.Weights == nil {
		coreCfg.Weights = cluster.NewWeightCache()
	}
	return &Env{Study: study, Cfg: coreCfg}, nil
}

// SmallEnv returns a laptop-fast environment (8 owners × ~400
// strangers) with the paper's engine defaults — used by tests and the
// default riskbench scale.
func SmallEnv(seed int64) (*Env, error) {
	cfg := synthetic.SmallStudyConfig()
	cfg.Seed = seed
	return NewEnv(cfg, core.DefaultConfig())
}

// FullEnv returns the paper-scale environment: 47 owners, mean 3,661
// strangers each.
func FullEnv(seed int64) (*Env, error) {
	cfg := synthetic.DefaultStudyConfig()
	cfg.Seed = seed
	return NewEnv(cfg, core.DefaultConfig())
}

// runAll executes the full pipeline for every owner under the given
// pooling strategy. Each owner uses their own confidence, like the
// paper's participants did.
//
// NSP runs are capped at 10 rounds when no explicit cap is set: they
// only feed the per-round series of Figures 5 and 6 (plotted over the
// first ~8 rounds), and without profile refinement the giant
// one-group-per-pool sessions otherwise run toward exhaustion —
// thousands of rounds on paper-scale neighborhoods. The cap changes
// nothing in any reported series.
func (e *Env) runAll(strategy cluster.Strategy) ([]*core.OwnerRun, error) {
	cfg := e.Cfg
	cfg.Pool.Strategy = strategy
	if strategy == cluster.NSP && cfg.Learn.MaxRounds == 0 {
		cfg.Learn.MaxRounds = 10
	}
	engine := core.New(cfg)
	runs := make([]*core.OwnerRun, 0, len(e.Study.Owners))
	for _, o := range e.Study.Owners {
		ann := active.Infallible(o)
		if e.Wrap != nil {
			ann = e.Wrap(ann)
		}
		run, err := engine.RunOwner(context.Background(), e.Study.Graph, e.Study.Profiles, o.ID, ann, o.Confidence)
		if err != nil {
			return nil, fmt.Errorf("experiments: owner %d: %w", o.ID, err)
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// NPPRuns returns (computing once) the full per-owner pipeline runs
// with the paper's NPP pools.
func (e *Env) NPPRuns() ([]*core.OwnerRun, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.nppRuns == nil {
		runs, err := e.runAll(cluster.NPP)
		if err != nil {
			return nil, err
		}
		e.nppRuns = runs
	}
	return e.nppRuns, nil
}

// NSPRuns returns (computing once) the runs with the baseline NSP
// pools.
func (e *Env) NSPRuns() ([]*core.OwnerRun, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.nspRuns == nil {
		runs, err := e.runAll(cluster.NSP)
		if err != nil {
			return nil, err
		}
		e.nspRuns = runs
	}
	return e.nspRuns, nil
}

// Owner returns the simulated owner behind a run.
func (e *Env) Owner(i int) *synthetic.Owner { return e.Study.Owners[i] }
