package experiments

import (
	"math"

	"sightrisk/internal/benefit"
	"sightrisk/internal/graph"
	"sightrisk/internal/privscore"
	"sightrisk/internal/propagation"
	"sightrisk/internal/similarity"
	"sightrisk/internal/stats"
)

// ContrastRow is one signal's relationship to owner risk labels,
// averaged over owners.
type ContrastRow struct {
	Signal string
	// MeanCorr is the mean Pearson correlation between the signal and
	// the owner's risk labels over their strangers.
	MeanCorr float64
	// MeanAbsCorr averages the absolute correlations — high when the
	// signal matters per owner but with owner-specific sign.
	MeanAbsCorr float64
}

// PrivacyScoreContrast quantifies the paper's related-work argument
// against reading Liu & Terzi's privacy score [29] as interaction
// risk. For every owner it correlates four per-stranger signals with
// the owner's risk labels:
//
//   - the stranger's Liu-Terzi naive privacy score,
//   - the stranger's Liu-Terzi IRT privacy score,
//   - the benefit B(o,s) the stranger's profile offers the owner,
//   - the network similarity NS(o,s).
//
// The paper's position predicts the shape: privacy scores measure the
// stranger's own exposure (they track benefits, whose risk reading is
// owner-specific in sign), while network similarity relates to risk
// consistently (Figure 7). A fifth row reports the privacy-score ↔
// benefit correlation directly.
func PrivacyScoreContrast(e *Env) ([]ContrastRow, error) {
	type corrs struct {
		naive, irt, benefitC, ns, naiveBenefit, prop, propNS []float64
	}
	var c corrs
	for _, o := range e.Study.Owners {
		strangers := o.Strangers()
		if len(strangers) < 3 {
			continue
		}
		matrix := privscore.BuildMatrix(e.Study.Profiles, strangers)
		naive, err := privscore.Naive(matrix)
		if err != nil {
			return nil, err
		}
		irt, err := privscore.IRT(matrix, privscore.IRTConfig{})
		if err != nil {
			return nil, err
		}
		propRisk, err := propagation.PathLowerBound(e.Study.Graph, o.ID, strangers, propagation.DefaultConfig())
		if err != nil {
			return nil, err
		}
		labels := make(map[graph.UserID]float64, len(strangers))
		benefits := make(map[graph.UserID]float64, len(strangers))
		nsScores := make(map[graph.UserID]float64, len(strangers))
		for _, s := range strangers {
			labels[s] = float64(o.LabelStranger(s))
			benefits[s] = benefit.Score(o.Theta, e.Study.Profiles.Get(s))
			nsScores[s] = similarity.NS(e.Study.Graph, o.ID, s)
		}
		push := func(dst *[]float64, v float64) {
			if !math.IsNaN(v) {
				*dst = append(*dst, v)
			}
		}
		push(&c.naive, privscore.PearsonByUser(naive.ByUser, labels))
		push(&c.irt, privscore.PearsonByUser(irt.ByUser, labels))
		push(&c.benefitC, privscore.PearsonByUser(benefits, labels))
		push(&c.ns, privscore.PearsonByUser(nsScores, labels))
		push(&c.naiveBenefit, privscore.PearsonByUser(naive.ByUser, benefits))
		push(&c.prop, privscore.PearsonByUser(propRisk, labels))
		push(&c.propNS, privscore.PearsonByUser(propRisk, nsScores))
	}
	row := func(name string, vals []float64) ContrastRow {
		abs := make([]float64, len(vals))
		for i, v := range vals {
			abs[i] = math.Abs(v)
		}
		return ContrastRow{Signal: name, MeanCorr: stats.Mean(vals), MeanAbsCorr: stats.Mean(abs)}
	}
	return []ContrastRow{
		row("Liu-Terzi naive score vs labels", c.naive),
		row("Liu-Terzi IRT score vs labels", c.irt),
		row("benefit B(o,s) vs labels", c.benefitC),
		row("network similarity vs labels", c.ns),
		row("Liu-Terzi naive vs benefit", c.naiveBenefit),
		row("propagation risk [21] vs labels", c.prop),
		row("propagation risk [21] vs NS", c.propNS),
	}, nil
}
