package autotune

import (
	"math"
	"math/rand"
	"testing"

	"sightrisk/internal/cluster"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/profile"
)

func TestSuggestAlphaEmpty(t *testing.T) {
	if got := SuggestAlpha(nil, 10); got != 10 {
		t.Fatalf("SuggestAlpha(empty) = %d, want paper default 10", got)
	}
}

func TestSuggestAlphaFineForDenseData(t *testing.T) {
	// Plenty of strangers spread over [0, 0.5): the finest candidate
	// keeping every occupied bucket populated should win.
	rng := rand.New(rand.NewSource(1))
	scores := make([]float64, 5000)
	for i := range scores {
		scores[i] = rng.Float64() * 0.5
	}
	got := SuggestAlpha(scores, 20)
	if got < 20 {
		t.Fatalf("SuggestAlpha(dense) = %d, want >= 20", got)
	}
}

func TestSuggestAlphaCoarseForSparseData(t *testing.T) {
	// Eight strangers spread over [0, 0.2): at α = 10 each occupied
	// decile holds only 4 (< minGroup 6), so only α = 5 qualifies —
	// its single occupied bucket holds all 8.
	var scores []float64
	for i := 0; i < 4; i++ {
		scores = append(scores, 0.05+float64(i)*0.01) // [0, 0.1)
		scores = append(scores, 0.15+float64(i)*0.01) // [0.1, 0.2)
	}
	got := SuggestAlpha(scores, 6)
	if got != 5 {
		t.Fatalf("SuggestAlpha(sparse) = %d, want coarse (5)", got)
	}
}

func TestSuggestAlphaOutliersClamped(t *testing.T) {
	// Scores outside [0,1] must not panic.
	if got := SuggestAlpha([]float64{-0.5, 1.5, 0.2}, 1); got < 5 {
		t.Fatalf("SuggestAlpha = %d", got)
	}
}

func mkStore(n int, locales int) (*profile.Store, []graph.UserID) {
	store := profile.NewStore()
	ids := make([]graph.UserID, n)
	for i := 0; i < n; i++ {
		p := profile.NewProfile(graph.UserID(i + 1))
		if i%2 == 0 {
			p.SetAttr(profile.AttrGender, "male")
		} else {
			p.SetAttr(profile.AttrGender, "female")
		}
		p.SetAttr(profile.AttrLocale, string(rune('a'+i%locales)))
		p.SetAttr(profile.AttrLastName, string(rune('A'+i%17)))
		p.SetVisible(profile.ItemPhoto, i%10 != 0) // common
		p.SetVisible(profile.ItemWork, i%10 == 0)  // scarce
		store.Put(p)
		ids[i] = p.User
	}
	return store, ids
}

func TestSuggestBeta(t *testing.T) {
	store, ids := mkStore(200, 3)
	cfg := cluster.DefaultSqueezerConfig()
	beta, err := SuggestBeta(store, ids, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if beta < 0.1 || beta > 0.9 {
		t.Fatalf("beta = %g out of range", beta)
	}
	// The suggested β must actually satisfy the bound it was chosen
	// for.
	cfg.Beta = beta
	clusters, err := cluster.Squeezer(store, ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sizes := 0
	for _, c := range clusters {
		sizes += len(c)
	}
	if sizes != len(ids) {
		t.Fatalf("clusters cover %d of %d", sizes, len(ids))
	}
}

func TestSuggestBetaEmptySample(t *testing.T) {
	store, _ := mkStore(10, 2)
	beta, err := SuggestBeta(store, nil, cluster.DefaultSqueezerConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if beta != 0.4 {
		t.Fatalf("beta = %g, want paper fallback 0.4", beta)
	}
}

func TestSuggestBetaImpossibleBound(t *testing.T) {
	// Median-size bound larger than the sample: fall back to 0.4.
	store, ids := mkStore(10, 5)
	beta, err := SuggestBeta(store, ids, cluster.DefaultSqueezerConfig(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if beta != 0.4 {
		t.Fatalf("beta = %g, want fallback 0.4", beta)
	}
}

func TestSuggestWeightsFindsInformativeAttribute(t *testing.T) {
	store, ids := mkStore(300, 3)
	// Labels determined purely by gender.
	labels := map[graph.UserID]label.Label{}
	for _, u := range ids {
		if store.Get(u).Attr(profile.AttrGender) == "male" {
			labels[u] = label.VeryRisky
		} else {
			labels[u] = label.NotRisky
		}
	}
	w := SuggestWeights(store, labels, nil)
	if len(w) != 3 {
		t.Fatalf("weights = %v", w)
	}
	if w[profile.AttrGender] < 0.8 {
		t.Fatalf("gender weight = %g, want dominant", w[profile.AttrGender])
	}
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %g", sum)
	}
}

func TestSuggestWeightsUninformativeLabels(t *testing.T) {
	store, ids := mkStore(50, 2)
	labels := map[graph.UserID]label.Label{}
	for _, u := range ids {
		labels[u] = label.Risky // constant: nothing to explain
	}
	w := SuggestWeights(store, labels, nil)
	for a, v := range w {
		if math.Abs(v-1.0/3) > 1e-9 {
			t.Fatalf("weight[%s] = %g, want uniform fallback", a, v)
		}
	}
}

func TestSuggestWeightsSkipsMissingProfiles(t *testing.T) {
	store, ids := mkStore(20, 2)
	labels := map[graph.UserID]label.Label{9999: label.Risky} // no profile
	for _, u := range ids[:5] {
		labels[u] = label.Risky
	}
	w := SuggestWeights(store, labels, nil)
	if len(w) != 3 {
		t.Fatalf("weights = %v", w)
	}
}

func TestSuggestThetaScarcityPricing(t *testing.T) {
	store, ids := mkStore(200, 2)
	theta := SuggestTheta(store, ids)
	if len(theta) != 7 {
		t.Fatalf("theta items = %d", len(theta))
	}
	sum := 0.0
	for _, v := range theta {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("theta sums to %g", sum)
	}
	// Work is scarce (10% visible) and photo common (90%): scarcity
	// pricing must weight work above photo.
	if theta[profile.ItemWork] <= theta[profile.ItemPhoto] {
		t.Fatalf("work %g not above photo %g", theta[profile.ItemWork], theta[profile.ItemPhoto])
	}
}
