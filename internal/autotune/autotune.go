// Package autotune mines parameter values from the data instead of
// fixing them by hand — the direction the paper's conclusion
// (Section VI) names: "develop techniques to mine from the data most
// of the values for the parameters on which our learning process
// relies".
//
// Three parameters are tuned:
//
//   - α, the network-similarity group count, from the empirical NS
//     distribution;
//   - β, Squeezer's new-cluster threshold, from the cluster-size
//     profile it induces on a sample;
//   - the Squeezer attribute weights, from the information-gain ratio
//     of already-collected owner labels (closing the loop with the
//     paper's Table I analysis).
package autotune

import (
	"math"
	"sort"

	"sightrisk/internal/cluster"
	"sightrisk/internal/graph"
	"sightrisk/internal/infogain"
	"sightrisk/internal/label"
	"sightrisk/internal/profile"
)

// SuggestAlpha picks the finest α (from candidates 5, 10, 20, 25) such
// that every non-empty network-similarity group still holds at least
// minGroup strangers — fine enough to resolve the NS distribution,
// coarse enough that no group is too small to learn in. scores are the
// NS values of the owner's strangers. Defaults to 10 (the paper's
// setting) when no candidate qualifies or there is no data.
func SuggestAlpha(scores []float64, minGroup int) int {
	const fallback = 10
	if len(scores) == 0 {
		return fallback
	}
	if minGroup < 1 {
		minGroup = 1
	}
	best := 0
	for _, alpha := range []int{5, 10, 20, 25} {
		counts := make([]int, alpha)
		for _, s := range scores {
			idx := int(math.Floor(s * float64(alpha)))
			if idx < 0 {
				idx = 0
			}
			if idx >= alpha {
				idx = alpha - 1
			}
			counts[idx]++
		}
		ok := true
		for _, c := range counts {
			if c > 0 && c < minGroup {
				ok = false
				break
			}
		}
		if ok && alpha > best {
			best = alpha
		}
	}
	if best == 0 {
		return fallback
	}
	return best
}

// SuggestBeta searches β ∈ {0.1 … 0.9} for the smallest threshold
// whose Squeezer run on the sample produces clusters with a median
// size of at least minMedian — the paper's concern that "increasing β
// could result in too many profile based clusters each of which with
// few strangers". Returns the paper's 0.4 when no threshold qualifies.
func SuggestBeta(store *profile.Store, sample []graph.UserID, cfg cluster.SqueezerConfig, minMedian int) (float64, error) {
	const fallback = 0.4
	if len(sample) == 0 {
		return fallback, nil
	}
	if minMedian < 1 {
		minMedian = 1
	}
	best := -1.0
	for beta := 0.9; beta >= 0.1-1e-9; beta -= 0.1 {
		c := cfg
		c.Beta = beta
		clusters, err := cluster.Squeezer(store, sample, c)
		if err != nil {
			return 0, err
		}
		sizes := make([]int, len(clusters))
		for i, cl := range clusters {
			sizes[i] = len(cl)
		}
		sort.Ints(sizes)
		median := sizes[len(sizes)/2]
		if median >= minMedian {
			// Largest β (finest clustering) still meeting the bound.
			best = beta
			break
		}
	}
	if best < 0 {
		return fallback, nil
	}
	return math.Round(best*10) / 10, nil
}

// SuggestWeights mines Squeezer attribute weights from collected owner
// labels: each attribute's weight is its normalized information-gain
// ratio over the labeled strangers (Definition 6 — exactly the Table I
// computation, fed back into clustering as the paper's Squeezer
// discussion suggests). Attributes explaining no label variation get
// equal residual weight so the clusterer never divides by zero.
func SuggestWeights(store *profile.Store, labels map[graph.UserID]label.Label, attrs []profile.Attribute) map[profile.Attribute]float64 {
	if len(attrs) == 0 {
		attrs = profile.ClusteringAttributes()
	}
	ratios := make(map[string]float64, len(attrs))
	for _, a := range attrs {
		var samples []infogain.Sample
		for u, l := range labels {
			p := store.Get(u)
			if p == nil {
				continue
			}
			samples = append(samples, infogain.Sample{Value: p.Attr(a), Class: int(l)})
		}
		ratios[string(a)] = infogain.GainRatio(samples)
	}
	imp := infogain.Importance(ratios)
	out := make(map[profile.Attribute]float64, len(attrs))
	for _, a := range attrs {
		out[a] = imp[string(a)]
	}
	return out
}

// SuggestTheta proposes system-suggested benefit weights from the
// population: an item is worth more when it is rarely visible
// (scarcity pricing — the heterophily reading of benefits). The paper
// observes (Table III discussion) that "for some benefit items it is
// better to use system suggested weights" than owner-given ones.
func SuggestTheta(store *profile.Store, sample []graph.UserID) map[profile.Item]float64 {
	items := profile.Items()
	raw := make(map[profile.Item]float64, len(items))
	total := 0.0
	for _, item := range items {
		rate := store.VisibilityRate(sample, item)
		v := 1 - rate // scarce items are valuable
		if v < 0.05 {
			v = 0.05
		}
		raw[item] = v
		total += v
	}
	for item := range raw {
		raw[item] /= total
	}
	return raw
}
