package graph

import (
	"math/rand"
	"testing"
)

// randomSparseGraph builds a seeded random graph with n nodes and ~m
// edges, with ids spread out (non-contiguous) to exercise the index
// mapping.
func randomSparseGraph(seed int64, n, m int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	ids := make([]UserID, n)
	for i := range ids {
		ids[i] = UserID(i*7 + 3)
		g.AddNode(ids[i])
	}
	for k := 0; k < m; k++ {
		a := ids[rng.Intn(n)]
		b := ids[rng.Intn(n)]
		if a != b {
			_ = g.AddEdge(a, b)
		}
	}
	return g
}

func equalIDs(a, b []UserID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSnapshotEquivalence is the snapshot/live-graph property test:
// every structural query the risk pipeline uses must return identical
// results on a frozen Snapshot and on the mutable Graph it was taken
// from, across seeded random graphs.
func TestSnapshotEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g := randomSparseGraph(seed, 60, 240)
		s := g.Snapshot()

		if s.NumNodes() != g.NumNodes() {
			t.Fatalf("seed %d: NumNodes %d != %d", seed, s.NumNodes(), g.NumNodes())
		}
		if s.NumEdges() != g.NumEdges() {
			t.Fatalf("seed %d: NumEdges %d != %d", seed, s.NumEdges(), g.NumEdges())
		}
		if !equalIDs(s.Nodes(), g.Nodes()) {
			t.Fatalf("seed %d: Nodes mismatch", seed)
		}

		nodes := g.Nodes()
		probe := append(append([]UserID{}, nodes...), 99999) // absent id probes too
		for _, a := range probe {
			if s.HasNode(a) != g.HasNode(a) {
				t.Fatalf("seed %d: HasNode(%d) mismatch", seed, a)
			}
			if s.Degree(a) != g.Degree(a) {
				t.Fatalf("seed %d: Degree(%d) mismatch", seed, a)
			}
			if !equalIDs(s.Friends(a), g.Friends(a)) {
				t.Fatalf("seed %d: Friends(%d) mismatch: %v vs %v", seed, a, s.Friends(a), g.Friends(a))
			}
			if !equalIDs(s.Strangers(a), g.Strangers(a)) {
				t.Fatalf("seed %d: Strangers(%d) mismatch", seed, a)
			}
		}

		rng := rand.New(rand.NewSource(seed + 1000))
		for k := 0; k < 300; k++ {
			a := nodes[rng.Intn(len(nodes))]
			b := nodes[rng.Intn(len(nodes))]
			if s.HasEdge(a, b) != g.HasEdge(a, b) {
				t.Fatalf("seed %d: HasEdge(%d,%d) mismatch", seed, a, b)
			}
			sm, gm := s.MutualFriends(a, b), g.MutualFriends(a, b)
			if !equalIDs(sm, gm) {
				t.Fatalf("seed %d: MutualFriends(%d,%d) = %v, want %v", seed, a, b, sm, gm)
			}
			if got := s.CountMutualFriends(a, b); got != len(gm) {
				t.Fatalf("seed %d: CountMutualFriends(%d,%d) = %d, want %d", seed, a, b, got, len(gm))
			}
			// Random node subsets for the induced-subgraph queries,
			// including duplicates and absent ids.
			sub := make([]UserID, 0, 12)
			for j := 0; j < 10; j++ {
				sub = append(sub, nodes[rng.Intn(len(nodes))])
			}
			sub = append(sub, 99999, sub[0])
			if s.InducedEdges(sub) != g.InducedEdges(sub) {
				t.Fatalf("seed %d: InducedEdges(%v) = %d, want %d", seed, sub, s.InducedEdges(sub), g.InducedEdges(sub))
			}
			if s.InducedDensity(sub) != g.InducedDensity(sub) {
				t.Fatalf("seed %d: InducedDensity(%v) mismatch", seed, sub)
			}
		}
	}
}

// TestSnapshotImmutableAfterMutation pins the freeze semantics: a
// snapshot does not observe later graph mutations.
func TestSnapshotImmutableAfterMutation(t *testing.T) {
	g := New()
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(2, 3)
	s := g.Snapshot()
	_ = g.AddEdge(1, 3)
	g.RemoveEdge(2, 3)
	if s.HasEdge(1, 3) {
		t.Fatal("snapshot observed edge added after freeze")
	}
	if !s.HasEdge(2, 3) {
		t.Fatal("snapshot lost edge removed after freeze")
	}
	if s.NumEdges() != 2 {
		t.Fatalf("snapshot edge count changed: %d", s.NumEdges())
	}
}

// TestAppendMutualFriendsReuse verifies the allocation-free reuse
// contract of the intersection buffer.
func TestAppendMutualFriendsReuse(t *testing.T) {
	g := randomSparseGraph(3, 40, 200)
	s := g.Snapshot()
	nodes := g.Nodes()
	buf := make([]UserID, 0, 64)
	for _, a := range nodes[:10] {
		for _, b := range nodes[10:20] {
			buf = s.AppendMutualFriends(buf[:0], a, b)
			if !equalIDs(buf, g.MutualFriends(a, b)) {
				t.Fatalf("AppendMutualFriends(%d,%d) mismatch", a, b)
			}
		}
	}
}

// BenchmarkMutualFriends contrasts the mutable graph's map-walk-and-
// sort against the snapshot's sorted-slice intersection.
func BenchmarkMutualFriends(b *testing.B) {
	g := randomSparseGraph(1, 500, 8000)
	s := g.Snapshot()
	nodes := g.Nodes()
	b.Run("graph", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = g.MutualFriends(nodes[i%100], nodes[100+i%100])
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]UserID, 0, 256)
		for i := 0; i < b.N; i++ {
			buf = s.AppendMutualFriends(buf[:0], nodes[i%100], nodes[100+i%100])
		}
	})
}
