package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// edgeList is the JSON wire format of a graph: the node list keeps
// isolated nodes, the edge list keeps each undirected edge once with
// A < B.
type edgeList struct {
	Nodes []UserID    `json:"nodes"`
	Edges [][2]UserID `json:"edges"`
}

// MarshalJSON encodes the graph as a node list plus a canonical edge
// list (each edge once, smaller endpoint first, sorted).
func (g *Graph) MarshalJSON() ([]byte, error) {
	return json.Marshal(g.toEdgeList())
}

func (g *Graph) toEdgeList() edgeList {
	g.mu.RLock()
	defer g.mu.RUnlock()
	el := edgeList{Nodes: make([]UserID, 0, len(g.adj))}
	for id := range g.adj {
		el.Nodes = append(el.Nodes, id)
	}
	sortIDs(el.Nodes)
	for _, a := range el.Nodes {
		neigh := sortedKeysLocked(g.adj[a])
		for _, b := range neigh {
			if a < b {
				el.Edges = append(el.Edges, [2]UserID{a, b})
			}
		}
	}
	return el
}

// UnmarshalJSON decodes a graph previously encoded by MarshalJSON.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var el edgeList
	if err := json.Unmarshal(data, &el); err != nil {
		return fmt.Errorf("graph: decode: %w", err)
	}
	g.mu.Lock()
	g.adj = make(map[UserID]map[UserID]struct{}, len(el.Nodes))
	g.edgeCount = 0
	g.mu.Unlock()
	for _, n := range el.Nodes {
		g.AddNode(n)
	}
	for _, e := range el.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return err
		}
	}
	return nil
}

// WriteTo streams the JSON encoding of the graph to w.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	data, err := g.MarshalJSON()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	return int64(n), err
}

// Save writes the graph to the named file.
func (g *Graph) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: save: %w", err)
	}
	bw := bufio.NewWriter(f)
	if _, err := g.WriteTo(bw); err != nil {
		f.Close()
		return fmt.Errorf("graph: save: %w", err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("graph: save: %w", err)
	}
	return f.Close()
}

// Load reads a graph from the named file.
func Load(path string) (*Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("graph: load: %w", err)
	}
	g := New()
	if err := g.UnmarshalJSON(data); err != nil {
		return nil, fmt.Errorf("graph: load %s: %w", path, err)
	}
	return g, nil
}
