package graph

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// MaxDecodeBytes bounds the JSON documents UnmarshalJSON and Load
// accept (1 GiB). Graphs beyond it belong in the snapfile binary
// format, which mmaps instead of parsing; the limit keeps a hostile or
// runaway file from ballooning the decoder's intermediate allocations.
const MaxDecodeBytes = 1 << 30

// ErrMalformed tags decode failures: syntactically broken JSON, self
// loops, or any other constraint violation. Test with errors.Is.
var ErrMalformed = errors.New("graph: malformed graph encoding")

// ErrTooLarge tags inputs rejected for exceeding MaxDecodeBytes before
// any decoding work is done. Test with errors.Is.
var ErrTooLarge = errors.New("graph: encoding exceeds size limit")

// edgeList is the JSON wire format of a graph: the node list keeps
// isolated nodes, the edge list keeps each undirected edge once with
// A < B.
type edgeList struct {
	Nodes []UserID    `json:"nodes"`
	Edges [][2]UserID `json:"edges"`
}

// MarshalJSON encodes the graph as a node list plus a canonical edge
// list (each edge once, smaller endpoint first, sorted).
func (g *Graph) MarshalJSON() ([]byte, error) {
	return json.Marshal(g.toEdgeList())
}

func (g *Graph) toEdgeList() edgeList {
	g.mu.RLock()
	defer g.mu.RUnlock()
	el := edgeList{Nodes: make([]UserID, 0, len(g.adj))}
	for id := range g.adj {
		el.Nodes = append(el.Nodes, id)
	}
	sortIDs(el.Nodes)
	for _, a := range el.Nodes {
		neigh := sortedKeysLocked(g.adj[a])
		for _, b := range neigh {
			if a < b {
				el.Edges = append(el.Edges, [2]UserID{a, b})
			}
		}
	}
	return el
}

// UnmarshalJSON decodes a graph previously encoded by MarshalJSON.
// Inputs larger than MaxDecodeBytes fail with ErrTooLarge; any decode
// failure is tagged ErrMalformed. The receiver is only replaced after
// the whole document decoded cleanly — on error it keeps exactly the
// nodes and edges it had before the call.
func (g *Graph) UnmarshalJSON(data []byte) error {
	if len(data) > MaxDecodeBytes {
		return fmt.Errorf("graph: decode: %d bytes: %w", len(data), ErrTooLarge)
	}
	var el edgeList
	if err := json.Unmarshal(data, &el); err != nil {
		return fmt.Errorf("graph: decode: %w: %w", ErrMalformed, err)
	}
	// Build into a scratch graph so a bad edge cannot leave the
	// receiver half-mutated.
	tmp := New()
	for _, n := range el.Nodes {
		tmp.addNodeLocked(n)
	}
	for _, e := range el.Edges {
		if err := tmp.AddEdge(e[0], e[1]); err != nil {
			return fmt.Errorf("graph: decode: %w: %w", ErrMalformed, err)
		}
	}
	g.mu.Lock()
	g.adj = tmp.adj
	g.edgeCount = tmp.edgeCount
	g.mu.Unlock()
	return nil
}

// WriteTo streams the JSON encoding of the graph to w.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	data, err := g.MarshalJSON()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	return int64(n), err
}

// Save writes the graph to the named file.
func (g *Graph) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: save: %w", err)
	}
	bw := bufio.NewWriter(f)
	if _, err := g.WriteTo(bw); err != nil {
		f.Close()
		return fmt.Errorf("graph: save: %w", err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("graph: save: %w", err)
	}
	return f.Close()
}

// Load reads a graph from the named file. Files beyond MaxDecodeBytes
// are rejected with ErrTooLarge before being read into memory;
// malformed content fails with an error tagged ErrMalformed.
func Load(path string) (*Graph, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("graph: load: %w", err)
	}
	if fi.Size() > MaxDecodeBytes {
		return nil, fmt.Errorf("graph: load %s: %d bytes: %w", path, fi.Size(), ErrTooLarge)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("graph: load: %w", err)
	}
	g := New()
	if err := g.UnmarshalJSON(data); err != nil {
		return nil, fmt.Errorf("graph: load %s: %w", path, err)
	}
	return g, nil
}
