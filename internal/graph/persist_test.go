package graph

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	g := New()
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	g.AddNode(42) // isolated node must survive

	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.NumNodes() != 4 || back.NumEdges() != 2 {
		t.Fatalf("round trip: %d nodes %d edges, want 4/2", back.NumNodes(), back.NumEdges())
	}
	if !back.HasNode(42) {
		t.Fatal("isolated node lost in round trip")
	}
	if !back.HasEdge(1, 2) || !back.HasEdge(2, 3) {
		t.Fatal("edges lost in round trip")
	}
}

func TestJSONCanonical(t *testing.T) {
	// Two graphs built in different edge orders encode identically.
	a := New()
	mustEdge(t, a, 3, 1)
	mustEdge(t, a, 2, 1)
	b := New()
	mustEdge(t, b, 1, 2)
	mustEdge(t, b, 1, 3)
	da, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Fatalf("encodings differ:\n%s\n%s", da, db)
	}
}

func TestUnmarshalBadJSON(t *testing.T) {
	var g Graph
	if err := g.UnmarshalJSON([]byte("{nope")); err == nil {
		t.Fatal("UnmarshalJSON accepted invalid JSON")
	}
	if err := g.UnmarshalJSON([]byte(`{"nodes":[1],"edges":[[1,1]]}`)); err == nil {
		t.Fatal("UnmarshalJSON accepted a self loop")
	}
}

func TestUnmarshalMalformedTyped(t *testing.T) {
	var g Graph
	for _, data := range []string{"{nope", `{"nodes":[1],"edges":[[1,1]]}`, `[1,2]`} {
		err := g.UnmarshalJSON([]byte(data))
		if !errors.Is(err, ErrMalformed) {
			t.Fatalf("UnmarshalJSON(%q) = %v, want ErrMalformed", data, err)
		}
	}
}

// TestUnmarshalNoPartialMutation is the regression test for the
// historical half-mutation bug: a decode error mid-edge-list used to
// leave the receiver with the nodes and any edges added before the
// failure. The receiver must keep its prior contents on any error.
func TestUnmarshalNoPartialMutation(t *testing.T) {
	g := New()
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)

	// Valid prefix (nodes plus one good edge) before the bad self loop.
	bad := []byte(`{"nodes":[7,8,9],"edges":[[7,8],[9,9]]}`)
	if err := g.UnmarshalJSON(bad); !errors.Is(err, ErrMalformed) {
		t.Fatalf("UnmarshalJSON = %v, want ErrMalformed", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("receiver mutated by failed decode: %d nodes %d edges, want 3/2", g.NumNodes(), g.NumEdges())
	}
	if g.HasNode(7) || g.HasNode(9) {
		t.Fatal("failed decode leaked nodes into the receiver")
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 3) {
		t.Fatal("failed decode dropped the receiver's prior edges")
	}
}

func TestUnmarshalSizeLimit(t *testing.T) {
	huge := make([]byte, MaxDecodeBytes+1)
	var g Graph
	if err := g.UnmarshalJSON(huge); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("UnmarshalJSON(%d bytes) = %v, want ErrTooLarge", len(huge), err)
	}
}

func TestLoadSizeLimit(t *testing.T) {
	// A sparse file trips the pre-read stat check without ever
	// materializing MaxDecodeBytes of data.
	path := filepath.Join(t.TempDir(), "huge.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(MaxDecodeBytes + 1); err != nil {
		f.Close()
		t.Skipf("cannot create sparse file: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Load = %v, want ErrTooLarge", err)
	}
}

func TestLoadMalformedTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"nodes":[1],"edges":[[1,1]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrMalformed) {
		t.Fatalf("Load = %v, want ErrMalformed", err)
	}
}

func TestSaveLoad(t *testing.T) {
	g := New()
	mustEdge(t, g, 10, 20)
	mustEdge(t, g, 20, 30)
	path := filepath.Join(t.TempDir(), "g.json")
	if err := g.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if back.NumNodes() != 3 || back.NumEdges() != 2 {
		t.Fatalf("loaded %d nodes %d edges, want 3/2", back.NumNodes(), back.NumEdges())
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("Load of missing file succeeded")
	}
}

func TestWriteTo(t *testing.T) {
	g := New()
	mustEdge(t, g, 1, 2)
	var buf bytes.Buffer
	n, err := g.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Fatalf("WriteTo returned %d, buffer has %d", n, buf.Len())
	}
	var back Graph
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("unmarshal written bytes: %v", err)
	}
	if !back.HasEdge(1, 2) {
		t.Fatal("edge lost through WriteTo")
	}
}

func TestWriteDOT(t *testing.T) {
	g := New()
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	g.AddNode(9)
	var buf bytes.Buffer
	err := g.WriteDOT(&buf, DOTOptions{
		Name:      "test",
		Highlight: map[UserID]string{2: "red"},
		Label:     map[UserID]string{1: "owner"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`graph "test" {`, "n1 -- n2;", "n2 -- n3;",
		`fillcolor="red"`, `label="owner"`, "n9 [];",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	if err := g.WriteDOT(&buf2, DOTOptions{Name: "test", Highlight: map[UserID]string{2: "red"}, Label: map[UserID]string{1: "owner"}}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("DOT export not deterministic")
	}
}

func TestWriteDOTMaxNodes(t *testing.T) {
	g := New()
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, DOTOptions{MaxNodes: 2}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "n3") {
		t.Fatalf("truncation kept node 3:\n%s", out)
	}
	if !strings.Contains(out, "n1 -- n2;") {
		t.Fatalf("kept edge missing:\n%s", out)
	}
}
