package graph

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraph builds a graph from a seeded random edge script.
func randomGraph(seed int64, n, edges int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(UserID(i))
	}
	for i := 0; i < edges; i++ {
		a := UserID(rng.Intn(n))
		b := UserID(rng.Intn(n))
		if a != b {
			_ = g.AddEdge(a, b)
		}
	}
	return g
}

// TestPropEdgeSymmetry: every edge is visible from both endpoints and
// the edge count equals the number of canonical pairs.
func TestPropEdgeSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 30, 80)
		count := 0
		for _, a := range g.Nodes() {
			for _, b := range g.Friends(a) {
				if !g.HasEdge(b, a) {
					return false
				}
				if a < b {
					count++
				}
			}
		}
		return count == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropStrangersDisjoint: strangers never include the owner or the
// owner's direct friends, and every stranger is at distance exactly 2.
func TestPropStrangersDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 40, 100)
		owner := UserID(int(uint64(seed) % 40))
		friends := g.FriendSet(owner)
		dist := g.BFSDistances(owner)
		for _, s := range g.Strangers(owner) {
			if s == owner {
				return false
			}
			if _, ok := friends[s]; ok {
				return false
			}
			if dist[s] != 2 {
				return false
			}
		}
		// Conversely every distance-2 node is a stranger.
		strangerSet := map[UserID]struct{}{}
		for _, s := range g.Strangers(owner) {
			strangerSet[s] = struct{}{}
		}
		for id, d := range dist {
			if d == 2 {
				if _, ok := strangerSet[id]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropInducedBounds: induced edge counts and densities stay within
// combinatorial bounds.
func TestPropInducedBounds(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 25, 70)
		rng := rand.New(rand.NewSource(seed ^ 0x5555))
		nodes := g.Nodes()
		k := 1 + rng.Intn(len(nodes))
		subset := nodes[:k]
		edges := g.InducedEdges(subset)
		maxEdges := k * (k - 1) / 2
		if edges < 0 || edges > maxEdges {
			return false
		}
		d := g.InducedDensity(subset)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropJSONRoundTrip: marshal → unmarshal is the identity on the
// (nodes, edges) structure for arbitrary random graphs.
func TestPropJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 20, 40)
		data, err := json.Marshal(g)
		if err != nil {
			return false
		}
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			return false
		}
		for _, a := range g.Nodes() {
			for _, b := range g.Friends(a) {
				if !back.HasEdge(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropCloneEqualButIndependent: clones match structurally and stay
// independent after mutation.
func TestPropCloneEqualButIndependent(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 20, 50)
		c := g.Clone()
		if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
			return false
		}
		before := g.NumEdges()
		// Remove everything from the clone; original must be intact.
		for _, n := range c.Nodes() {
			c.RemoveNode(n)
		}
		return g.NumEdges() == before && c.NumEdges() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropRemoveNodeCleansEdges: after removing any node no edges
// reference it and the edge count is consistent.
func TestPropRemoveNodeCleansEdges(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 20, 60)
		victim := UserID(int(uint64(seed) % 20))
		g.RemoveNode(victim)
		count := 0
		for _, a := range g.Nodes() {
			if a == victim {
				return false
			}
			for _, b := range g.Friends(a) {
				if b == victim {
					return false
				}
				if a < b {
					count++
				}
			}
		}
		return count == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
