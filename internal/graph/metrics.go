package graph

import "sort"

// ClusteringCoefficient returns the local clustering coefficient of
// id: the edge density among its friends. Nodes with fewer than two
// friends have coefficient 0.
func (g *Graph) ClusteringCoefficient(id UserID) float64 {
	friends := g.Friends(id)
	if len(friends) < 2 {
		return 0
	}
	return g.InducedDensity(friends)
}

// MeanClusteringCoefficient averages the local clustering coefficient
// over all nodes with degree >= 2 (0 when none qualify).
func (g *Graph) MeanClusteringCoefficient() float64 {
	total, n := 0.0, 0
	for _, id := range g.Nodes() {
		if g.Degree(id) < 2 {
			continue
		}
		total += g.ClusteringCoefficient(id)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// ConnectedComponents returns the sizes of the graph's connected
// components in descending order.
func (g *Graph) ConnectedComponents() []int {
	seen := make(map[UserID]bool, g.NumNodes())
	var sizes []int
	for _, start := range g.Nodes() {
		if seen[start] {
			continue
		}
		size := 0
		queue := []UserID{start}
		seen[start] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			size++
			for _, n := range g.Friends(cur) {
				if !seen[n] {
					seen[n] = true
					queue = append(queue, n)
				}
			}
		}
		sizes = append(sizes, size)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// DegreeHistogram buckets node degrees into the given boundaries:
// bucket i counts nodes with degree in [bounds[i-1]+1, bounds[i]]
// (bucket 0 covers [0, bounds[0]]); a final overflow bucket counts
// degrees above the last boundary. Returns one count per bucket plus
// the overflow.
func (g *Graph) DegreeHistogram(bounds []int) []int {
	out := make([]int, len(bounds)+1)
	for _, id := range g.Nodes() {
		d := g.Degree(id)
		placed := false
		for i, b := range bounds {
			if d <= b {
				out[i]++
				placed = true
				break
			}
		}
		if !placed {
			out[len(bounds)]++
		}
	}
	return out
}
