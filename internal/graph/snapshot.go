package graph

import (
	"fmt"
	"sort"
)

// Snapshot is an immutable, frozen view of a Graph in compressed
// sparse row (CSR) form: node ids in ascending order, one sorted
// adjacency slice per node, and a parallel slice of neighbor *indices*
// for index-based traversals. It exists because the structural hot
// paths of the risk pipeline — NS() over every stranger, Monte Carlo
// propagation over every frontier node, NSG construction — pay map
// iteration, per-call sorting and per-call allocation on the mutable
// Graph. A Snapshot pays those costs once at build time; every read
// afterwards is a lock-free slice walk or binary search.
//
// Snapshots are safe for unsynchronized concurrent use (they are never
// mutated after construction) and are the unit of sharing in the
// multi-tenant fleet scheduler: one frozen graph serves every tenant's
// owner runs. A Snapshot does not observe later Graph mutations; take
// a new one after churn.
//
// Every query is defined to return exactly what the corresponding
// Graph method returned at freeze time — the snapshot/live equivalence
// property tests pin this down — so routing a computation through a
// Snapshot can never change results, only speed.
type Snapshot struct {
	ids     []UserID         // all node ids, ascending
	index   map[UserID]int32 // id -> position in ids; nil = binary-search lookups
	offsets []int32          // CSR row offsets, len(ids)+1
	adj     []UserID         // concatenated adjacency rows, each sorted ascending
	adjIdx  []int32          // adj[k]'s position in ids (rows sorted, since id order == index order)
	edges   int
}

// SnapshotFromCSR assembles a Snapshot directly from pre-built CSR
// arrays: ids ascending, offsets of length len(ids)+1 delimiting each
// node's sorted adjacency row in adj, and adjIdx carrying the dense
// index of every adj entry. The slices are adopted, not copied — they
// may alias an mmap'd file (package snapfile) or a generator's arena
// (package synthetic) — so callers must not mutate them afterwards.
//
// No id→index map is built: lookups by UserID fall back to binary
// search over ids, which keeps construction O(1) regardless of graph
// size (the zero-parse property the snapfile format depends on).
// Queries return exactly what a map-backed Snapshot of the same arrays
// returns.
//
// Only shape invariants are checked here (lengths, offset bounds, edge
// count). Content invariants — ascending ids, sorted rows, symmetric
// edges, adjIdx consistency — are the caller's responsibility;
// snapfile.Open verifies them before trusting a file.
func SnapshotFromCSR(ids []UserID, offsets []int32, adj []UserID, adjIdx []int32, edges int) (*Snapshot, error) {
	if len(offsets) != len(ids)+1 {
		return nil, fmt.Errorf("graph: csr: %d offsets for %d ids (want ids+1)", len(offsets), len(ids))
	}
	if len(adj) != len(adjIdx) {
		return nil, fmt.Errorf("graph: csr: %d adj entries but %d adj indices", len(adj), len(adjIdx))
	}
	if offsets[0] != 0 || int(offsets[len(offsets)-1]) != len(adj) {
		return nil, fmt.Errorf("graph: csr: offsets span [%d,%d], adjacency holds %d entries",
			offsets[0], offsets[len(offsets)-1], len(adj))
	}
	if 2*edges != len(adj) {
		return nil, fmt.Errorf("graph: csr: edge count %d inconsistent with %d adjacency entries", edges, len(adj))
	}
	return &Snapshot{ids: ids, offsets: offsets, adj: adj, adjIdx: adjIdx, edges: edges}, nil
}

// CSR exposes the snapshot's raw arrays: node ids (ascending), row
// offsets, the concatenated adjacency rows and their dense-index
// mirror. The slices share the snapshot's backing memory — callers
// must not modify them. This is the surface the snapfile binary
// format serializes.
func (s *Snapshot) CSR() (ids []UserID, offsets []int32, adj []UserID, adjIdx []int32) {
	return s.ids, s.offsets, s.adj, s.adjIdx
}

// indexOf resolves a node id to its dense index, via the map when one
// was built (Graph.Snapshot) or binary search over the ascending ids
// otherwise (SnapshotFromCSR). Both paths return identical results.
func (s *Snapshot) indexOf(id UserID) (int32, bool) {
	if s.index != nil {
		i, ok := s.index[id]
		return i, ok
	}
	j := sort.Search(len(s.ids), func(k int) bool { return s.ids[k] >= id })
	if j < len(s.ids) && s.ids[j] == id {
		return int32(j), true
	}
	return 0, false
}

// Snapshot freezes the graph's current structure into an immutable CSR
// view. Cost: O(V + E log d) for the per-row sorts.
func (g *Graph) Snapshot() *Snapshot {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := len(g.adj)
	s := &Snapshot{
		ids:     make([]UserID, 0, n),
		index:   make(map[UserID]int32, n),
		offsets: make([]int32, n+1),
		adj:     make([]UserID, 0, 2*g.edgeCount),
		adjIdx:  make([]int32, 0, 2*g.edgeCount),
		edges:   g.edgeCount,
	}
	for id := range g.adj {
		s.ids = append(s.ids, id)
	}
	sortIDs(s.ids)
	for i, id := range s.ids {
		s.index[id] = int32(i)
	}
	for i, id := range s.ids {
		row := s.adj[len(s.adj):]
		for nb := range g.adj[id] {
			row = append(row, nb)
		}
		sortIDs(row)
		s.adj = s.adj[:len(s.adj)+len(row)]
		for _, nb := range row {
			s.adjIdx = append(s.adjIdx, s.index[nb])
		}
		s.offsets[i+1] = int32(len(s.adj))
	}
	return s
}

// NumNodes returns the node count at freeze time.
func (s *Snapshot) NumNodes() int { return len(s.ids) }

// NumEdges returns the undirected edge count at freeze time.
func (s *Snapshot) NumEdges() int { return s.edges }

// Nodes returns all node ids in ascending order. The slice is shared;
// callers must not modify it.
func (s *Snapshot) Nodes() []UserID { return s.ids }

// HasNode reports whether the node existed at freeze time.
func (s *Snapshot) HasNode(id UserID) bool {
	_, ok := s.indexOf(id)
	return ok
}

// IndexOf returns the dense index of id (its position in Nodes), or
// false if the node is absent.
func (s *Snapshot) IndexOf(id UserID) (int32, bool) {
	return s.indexOf(id)
}

// IDAt returns the node id at dense index i.
func (s *Snapshot) IDAt(i int32) UserID { return s.ids[i] }

// Degree returns the friend count of id, or 0 if absent.
func (s *Snapshot) Degree(id UserID) int {
	i, ok := s.indexOf(id)
	if !ok {
		return 0
	}
	return int(s.offsets[i+1] - s.offsets[i])
}

// Friends returns id's friends in ascending order, or nil if absent.
// The slice aliases the snapshot's backing array: zero allocation, and
// callers must not modify it.
func (s *Snapshot) Friends(id UserID) []UserID {
	i, ok := s.indexOf(id)
	if !ok {
		return nil
	}
	return s.adj[s.offsets[i]:s.offsets[i+1]]
}

// FriendIndexesAt returns, for the node at dense index i, the dense
// indices of its friends in ascending order. Shared backing array;
// do not modify.
func (s *Snapshot) FriendIndexesAt(i int32) []int32 {
	return s.adjIdx[s.offsets[i]:s.offsets[i+1]]
}

// HasEdge reports whether a and b were friends at freeze time, via
// binary search on the smaller adjacency row.
func (s *Snapshot) HasEdge(a, b UserID) bool {
	ra, rb := s.Friends(a), s.Friends(b)
	if len(rb) < len(ra) {
		ra, b = rb, a
	}
	j := sort.Search(len(ra), func(k int) bool { return ra[k] >= b })
	return j < len(ra) && ra[j] == b
}

// MutualFriends returns the users that are friends of both a and b, in
// ascending order.
func (s *Snapshot) MutualFriends(a, b UserID) []UserID {
	return s.AppendMutualFriends(nil, a, b)
}

// AppendMutualFriends appends the mutual friends of a and b (ascending)
// to dst and returns the extended slice. With a pre-grown dst this is
// the allocation-free sorted-slice intersection the NS hot path runs
// on; dst[:0] reuse across calls amortizes the buffer to zero
// allocations.
func (s *Snapshot) AppendMutualFriends(dst []UserID, a, b UserID) []UserID {
	ra, rb := s.Friends(a), s.Friends(b)
	i, j := 0, 0
	for i < len(ra) && j < len(rb) {
		switch {
		case ra[i] < rb[j]:
			i++
		case ra[i] > rb[j]:
			j++
		default:
			dst = append(dst, ra[i])
			i++
			j++
		}
	}
	return dst
}

// CountMutualFriends returns |F(a) ∩ F(b)| without materializing the
// intersection.
func (s *Snapshot) CountMutualFriends(a, b UserID) int {
	ra, rb := s.Friends(a), s.Friends(b)
	i, j, n := 0, 0, 0
	for i < len(ra) && j < len(rb) {
		switch {
		case ra[i] < rb[j]:
			i++
		case ra[i] > rb[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// InducedEdgesSorted returns the number of edges of the subgraph
// induced by the given ascending-sorted node set. Nodes absent from
// the snapshot contribute nothing. This is the allocation-free core
// behind NS's mutual-community density: intersection outputs are
// already sorted, so no scratch copy is needed.
func (s *Snapshot) InducedEdgesSorted(sorted []UserID) int {
	count := 0
	for _, u := range sorted {
		row := s.Friends(u)
		i, j := 0, 0
		for i < len(row) && j < len(sorted) {
			switch {
			case row[i] < sorted[j]:
				i++
			case row[i] > sorted[j]:
				j++
			default:
				count++
				i++
				j++
			}
		}
	}
	return count / 2
}

// InducedEdges returns the number of edges of the subgraph induced by
// the node set, matching Graph.InducedEdges (absent nodes ignored,
// input order irrelevant).
func (s *Snapshot) InducedEdges(nodes []UserID) int {
	sorted := make([]UserID, 0, len(nodes))
	for _, n := range nodes {
		if s.HasNode(n) {
			sorted = append(sorted, n)
		}
	}
	sortIDs(sorted)
	sorted = dedupSorted(sorted)
	return s.InducedEdgesSorted(sorted)
}

// InducedDensity returns the edge density of the subgraph induced by
// the node set, matching Graph.InducedDensity.
func (s *Snapshot) InducedDensity(nodes []UserID) float64 {
	n := 0
	for _, id := range nodes {
		if s.HasNode(id) {
			n++
		}
	}
	if n < 2 {
		return 0
	}
	possible := float64(n) * float64(n-1) / 2
	return float64(s.InducedEdges(nodes)) / possible
}

// inducedDensitySorted is InducedDensity for an ascending, de-duplicated
// node set known to be present in the snapshot (e.g. a mutual-friend
// intersection) — the zero-allocation variant the NS hot path uses.
func (s *Snapshot) inducedDensitySorted(sorted []UserID) float64 {
	if len(sorted) < 2 {
		return 0
	}
	possible := float64(len(sorted)) * float64(len(sorted)-1) / 2
	return float64(s.InducedEdgesSorted(sorted)) / possible
}

// DensityOfMutualSorted exposes inducedDensitySorted for callers that
// hold a sorted present-node set (the similarity package's NS).
func (s *Snapshot) DensityOfMutualSorted(sorted []UserID) float64 {
	return s.inducedDensitySorted(sorted)
}

// Strangers returns the owner's second-hop contacts in ascending
// order, matching Graph.Strangers.
func (s *Snapshot) Strangers(owner UserID) []UserID {
	oi, ok := s.indexOf(owner)
	if !ok {
		return nil
	}
	mark := make([]bool, len(s.ids)) // true = owner, direct friend, or already seen
	friends := s.FriendIndexesAt(oi)
	mark[oi] = true
	for _, fi := range friends {
		mark[fi] = true
	}
	var out []UserID
	for _, fi := range friends {
		for _, ffi := range s.FriendIndexesAt(fi) {
			if !mark[ffi] {
				mark[ffi] = true
				out = append(out, s.ids[ffi])
			}
		}
	}
	sortIDs(out)
	return out
}

// dedupSorted removes adjacent duplicates from an ascending slice in
// place.
func dedupSorted(ids []UserID) []UserID {
	if len(ids) < 2 {
		return ids
	}
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}
