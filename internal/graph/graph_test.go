package graph

import (
	"sync"
	"testing"
)

func mustEdge(t *testing.T, g *Graph, a, b UserID) {
	t.Helper()
	if err := g.AddEdge(a, b); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", a, b, err)
	}
}

// triangle returns a graph with edges 1-2, 2-3, 3-1.
func triangle(t *testing.T) *Graph {
	t.Helper()
	g := New()
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 3, 1)
	return g
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	g.AddNode(1)
	g.AddNode(1)
	if got := g.NumNodes(); got != 1 {
		t.Fatalf("NumNodes = %d, want 1", got)
	}
	if !g.HasNode(1) {
		t.Fatal("HasNode(1) = false")
	}
	if g.HasNode(2) {
		t.Fatal("HasNode(2) = true for absent node")
	}
}

func TestAddEdgeCreatesNodes(t *testing.T) {
	g := New()
	mustEdge(t, g, 1, 2)
	if !g.HasNode(1) || !g.HasNode(2) {
		t.Fatal("AddEdge did not create endpoints")
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("edge not symmetric")
	}
	if got := g.NumEdges(); got != 1 {
		t.Fatalf("NumEdges = %d, want 1", got)
	}
}

func TestAddEdgeDuplicate(t *testing.T) {
	g := New()
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 1)
	if got := g.NumEdges(); got != 1 {
		t.Fatalf("NumEdges after duplicate = %d, want 1", got)
	}
}

func TestAddEdgeSelfLoop(t *testing.T) {
	g := New()
	if err := g.AddEdge(5, 5); err == nil {
		t.Fatal("AddEdge(5,5) succeeded, want error")
	}
	if g.HasNode(5) {
		t.Fatal("self-loop attempt created a node")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := triangle(t)
	g.RemoveEdge(1, 2)
	if g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Fatal("edge still present after RemoveEdge")
	}
	if got := g.NumEdges(); got != 2 {
		t.Fatalf("NumEdges = %d, want 2", got)
	}
	// Removing a non-existent edge is a no-op.
	g.RemoveEdge(1, 2)
	g.RemoveEdge(9, 10)
	if got := g.NumEdges(); got != 2 {
		t.Fatalf("NumEdges after no-op removals = %d, want 2", got)
	}
}

func TestRemoveNode(t *testing.T) {
	g := triangle(t)
	g.RemoveNode(2)
	if g.HasNode(2) {
		t.Fatal("node present after RemoveNode")
	}
	if got := g.NumEdges(); got != 1 {
		t.Fatalf("NumEdges = %d, want 1 (only 1-3 left)", got)
	}
	if g.HasEdge(1, 2) || g.HasEdge(2, 3) {
		t.Fatal("incident edges survived RemoveNode")
	}
	g.RemoveNode(42) // absent: no-op
	if got := g.NumNodes(); got != 2 {
		t.Fatalf("NumNodes = %d, want 2", got)
	}
}

func TestDegree(t *testing.T) {
	g := triangle(t)
	for _, id := range []UserID{1, 2, 3} {
		if got := g.Degree(id); got != 2 {
			t.Fatalf("Degree(%d) = %d, want 2", id, got)
		}
	}
	if got := g.Degree(99); got != 0 {
		t.Fatalf("Degree(absent) = %d, want 0", got)
	}
}

func TestNodesSorted(t *testing.T) {
	g := New()
	for _, id := range []UserID{5, 1, 9, 3} {
		g.AddNode(id)
	}
	got := g.Nodes()
	want := []UserID{1, 3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("Nodes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes = %v, want %v", got, want)
		}
	}
}

func TestFriendsSorted(t *testing.T) {
	g := New()
	mustEdge(t, g, 1, 9)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 1, 5)
	got := g.Friends(1)
	want := []UserID{3, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Friends = %v, want %v", got, want)
		}
	}
	if got := g.Friends(42); len(got) != 0 {
		t.Fatalf("Friends(absent) = %v, want empty", got)
	}
}

func TestFriendSetIsCopy(t *testing.T) {
	g := triangle(t)
	set := g.FriendSet(1)
	delete(set, 2)
	if !g.HasEdge(1, 2) {
		t.Fatal("mutating FriendSet result affected graph")
	}
}

func TestMutualFriends(t *testing.T) {
	g := New()
	// 1 and 2 share friends 10, 11; 1 also knows 12, 2 also knows 13.
	for _, f := range []UserID{10, 11, 12} {
		mustEdge(t, g, 1, f)
	}
	for _, f := range []UserID{10, 11, 13} {
		mustEdge(t, g, 2, f)
	}
	got := g.MutualFriends(1, 2)
	if len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Fatalf("MutualFriends = %v, want [10 11]", got)
	}
	// Symmetric.
	rev := g.MutualFriends(2, 1)
	if len(rev) != 2 || rev[0] != 10 || rev[1] != 11 {
		t.Fatalf("MutualFriends reversed = %v, want [10 11]", rev)
	}
	if got := g.MutualFriends(1, 99); len(got) != 0 {
		t.Fatalf("MutualFriends with absent = %v, want empty", got)
	}
}

func TestInducedEdges(t *testing.T) {
	g := triangle(t)
	mustEdge(t, g, 3, 4)
	tests := []struct {
		nodes []UserID
		want  int
	}{
		{[]UserID{1, 2, 3}, 3},
		{[]UserID{1, 2}, 1},
		{[]UserID{1, 4}, 0},
		{[]UserID{1, 2, 3, 4}, 4},
		{[]UserID{1}, 0},
		{nil, 0},
		{[]UserID{1, 99}, 0}, // absent nodes ignored
	}
	for _, tt := range tests {
		if got := g.InducedEdges(tt.nodes); got != tt.want {
			t.Errorf("InducedEdges(%v) = %d, want %d", tt.nodes, got, tt.want)
		}
	}
}

func TestInducedDensity(t *testing.T) {
	g := triangle(t)
	mustEdge(t, g, 3, 4)
	if got := g.InducedDensity([]UserID{1, 2, 3}); got != 1 {
		t.Fatalf("triangle density = %g, want 1", got)
	}
	if got := g.InducedDensity([]UserID{1, 4}); got != 0 {
		t.Fatalf("disconnected pair density = %g, want 0", got)
	}
	if got := g.InducedDensity([]UserID{1}); got != 0 {
		t.Fatalf("singleton density = %g, want 0", got)
	}
	// 4 nodes, 4 edges of possible 6.
	got := g.InducedDensity([]UserID{1, 2, 3, 4})
	if want := 4.0 / 6.0; got != want {
		t.Fatalf("density = %g, want %g", got, want)
	}
}

func TestStrangers(t *testing.T) {
	g := New()
	// owner 1; friends 2, 3; friend-of-friend 4 (via 2), 5 (via 3);
	// 6 is 3 hops away (via 4); 3 is both friend and friend-of-friend.
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 4)
	mustEdge(t, g, 3, 5)
	mustEdge(t, g, 2, 3) // friends know each other
	mustEdge(t, g, 4, 6)
	got := g.Strangers(1)
	want := []UserID{4, 5}
	if len(got) != len(want) {
		t.Fatalf("Strangers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Strangers = %v, want %v", got, want)
		}
	}
}

func TestStrangersExcludesOwnerAndFriends(t *testing.T) {
	g := triangle(t) // everyone is friends; no strangers
	if got := g.Strangers(1); len(got) != 0 {
		t.Fatalf("Strangers of triangle = %v, want empty", got)
	}
	if got := g.Strangers(42); len(got) != 0 {
		t.Fatalf("Strangers of absent owner = %v, want empty", got)
	}
}

func TestBFSDistances(t *testing.T) {
	g := New()
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 3, 4)
	g.AddNode(99) // unreachable
	dist := g.BFSDistances(1)
	want := map[UserID]int{1: 0, 2: 1, 3: 2, 4: 3}
	if len(dist) != len(want) {
		t.Fatalf("BFSDistances = %v, want %v", dist, want)
	}
	for id, d := range want {
		if dist[id] != d {
			t.Fatalf("dist[%d] = %d, want %d", id, dist[id], d)
		}
	}
	if got := g.BFSDistances(12345); len(got) != 0 {
		t.Fatalf("BFS from absent node = %v, want empty", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := triangle(t)
	c := g.Clone()
	c.RemoveEdge(1, 2)
	if !g.HasEdge(1, 2) {
		t.Fatal("mutating clone affected original")
	}
	mustEdge(t, g, 1, 7)
	if c.HasNode(7) {
		t.Fatal("mutating original affected clone")
	}
	if c.NumEdges() != 2 || g.NumEdges() != 4 {
		t.Fatalf("edge counts: clone %d (want 2), original %d (want 4)", c.NumEdges(), g.NumEdges())
	}
}

func TestDegreeStats(t *testing.T) {
	g := New()
	if st := g.Degrees(); st != (DegreeStats{}) {
		t.Fatalf("empty graph stats = %+v, want zero", st)
	}
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 1, 3)
	g.AddNode(9)
	st := g.Degrees()
	if st.Min != 0 || st.Max != 2 {
		t.Fatalf("stats = %+v, want min 0 max 2", st)
	}
	if want := 4.0 / 4.0; st.Mean != want {
		t.Fatalf("mean = %g, want %g", st.Mean, want)
	}
}

func TestConcurrentAccess(t *testing.T) {
	g := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := UserID(w * 1000)
			for i := 0; i < 100; i++ {
				_ = g.AddEdge(base, base+UserID(i)+1)
				g.Degree(base)
				g.MutualFriends(base, base+1)
				g.Strangers(base)
			}
		}(w)
	}
	wg.Wait()
	if got := g.NumEdges(); got != 800 {
		t.Fatalf("NumEdges = %d, want 800", got)
	}
}
