// Package graph provides the in-memory undirected social graph that all
// higher layers of sightrisk are built on.
//
// The graph stores users as nodes identified by a stable UserID and
// friendship links as undirected edges. It supports the structural
// queries the ICDE 2012 risk paper relies on: mutual friends of two
// users, the edge count and density of the subgraph induced by a node
// set (used by the network-similarity measure), and enumeration of an
// owner's strangers, i.e. second-hop contacts that are not already
// friends of the owner.
//
// All mutating and reading methods are safe for concurrent use.
// Iteration orders are deterministic (sorted by UserID) so that
// experiments are reproducible.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// UserID identifies a user (node) in the social graph.
type UserID int64

// Graph is an undirected social graph. The zero value is not usable;
// call New.
type Graph struct {
	mu  sync.RWMutex
	adj map[UserID]map[UserID]struct{}

	edgeCount int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[UserID]map[UserID]struct{})}
}

// AddNode inserts the node if it is not already present.
func (g *Graph) AddNode(id UserID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.addNodeLocked(id)
}

func (g *Graph) addNodeLocked(id UserID) {
	if _, ok := g.adj[id]; !ok {
		g.adj[id] = make(map[UserID]struct{})
	}
}

// AddEdge inserts an undirected friendship edge between a and b,
// creating either node if needed. Self loops are rejected.
func (g *Graph) AddEdge(a, b UserID) error {
	if a == b {
		return fmt.Errorf("graph: self loop on user %d", a)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.addNodeLocked(a)
	g.addNodeLocked(b)
	if _, ok := g.adj[a][b]; ok {
		return nil
	}
	g.adj[a][b] = struct{}{}
	g.adj[b][a] = struct{}{}
	g.edgeCount++
	return nil
}

// RemoveEdge deletes the edge between a and b if present.
func (g *Graph) RemoveEdge(a, b UserID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.adj[a][b]; !ok {
		return
	}
	delete(g.adj[a], b)
	delete(g.adj[b], a)
	g.edgeCount--
}

// RemoveNode deletes the node and all its incident edges.
func (g *Graph) RemoveNode(id UserID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	neigh, ok := g.adj[id]
	if !ok {
		return
	}
	for n := range neigh {
		delete(g.adj[n], id)
		g.edgeCount--
	}
	delete(g.adj, id)
}

// HasNode reports whether the node exists.
func (g *Graph) HasNode(id UserID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.adj[id]
	return ok
}

// HasEdge reports whether a and b are friends.
func (g *Graph) HasEdge(a, b UserID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.adj[a][b]
	return ok
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.adj)
}

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.edgeCount
}

// Degree returns the number of friends of id, or 0 if id is absent.
func (g *Graph) Degree(id UserID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.adj[id])
}

// Nodes returns all node ids in ascending order.
func (g *Graph) Nodes() []UserID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]UserID, 0, len(g.adj))
	for id := range g.adj {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

// Friends returns the friends of id in ascending order.
func (g *Graph) Friends(id UserID) []UserID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return sortedKeysLocked(g.adj[id])
}

// FriendSet returns a copy of id's adjacency set.
func (g *Graph) FriendSet(id UserID) map[UserID]struct{} {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[UserID]struct{}, len(g.adj[id]))
	for n := range g.adj[id] {
		out[n] = struct{}{}
	}
	return out
}

// MutualFriends returns the users that are friends of both a and b,
// in ascending order.
func (g *Graph) MutualFriends(a, b UserID) []UserID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	na, nb := g.adj[a], g.adj[b]
	if len(nb) < len(na) {
		na, nb = nb, na
	}
	var out []UserID
	for n := range na {
		if _, ok := nb[n]; ok {
			out = append(out, n)
		}
	}
	sortIDs(out)
	return out
}

// InducedEdges returns the number of edges of the subgraph induced by
// the given node set. Nodes absent from the graph are ignored.
func (g *Graph) InducedEdges(nodes []UserID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	set := make(map[UserID]struct{}, len(nodes))
	for _, n := range nodes {
		if _, ok := g.adj[n]; ok {
			set[n] = struct{}{}
		}
	}
	count := 0
	for n := range set {
		for m := range g.adj[n] {
			if _, ok := set[m]; ok {
				count++
			}
		}
	}
	return count / 2
}

// InducedDensity returns the edge density (in [0,1]) of the subgraph
// induced by the node set: edges / C(n,2). Sets with fewer than two
// nodes have density 0.
func (g *Graph) InducedDensity(nodes []UserID) float64 {
	n := 0
	g.mu.RLock()
	for _, id := range nodes {
		if _, ok := g.adj[id]; ok {
			n++
		}
	}
	g.mu.RUnlock()
	if n < 2 {
		return 0
	}
	possible := float64(n) * float64(n-1) / 2
	return float64(g.InducedEdges(nodes)) / possible
}

// Strangers returns the owner's second-hop contacts: users at exactly
// distance two, i.e. friends of the owner's friends that are neither
// the owner nor the owner's direct friends. This is the stranger set
// So of the paper (Section II). Result is in ascending order.
func (g *Graph) Strangers(owner UserID) []UserID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	own := g.adj[owner]
	seen := make(map[UserID]struct{})
	for f := range own {
		for ff := range g.adj[f] {
			if ff == owner {
				continue
			}
			if _, direct := own[ff]; direct {
				continue
			}
			seen[ff] = struct{}{}
		}
	}
	return sortedKeysLocked(seen)
}

// BFSDistances returns the hop distance from src to every reachable
// node (src itself has distance 0).
func (g *Graph) BFSDistances(src UserID) map[UserID]int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	dist := map[UserID]int{}
	if _, ok := g.adj[src]; !ok {
		return dist
	}
	dist[src] = 0
	queue := []UserID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for n := range g.adj[cur] {
			if _, ok := dist[n]; !ok {
				dist[n] = dist[cur] + 1
				queue = append(queue, n)
			}
		}
	}
	return dist
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	g.mu.RLock()
	defer g.mu.RUnlock()
	c := New()
	c.edgeCount = g.edgeCount
	for id, neigh := range g.adj {
		set := make(map[UserID]struct{}, len(neigh))
		for n := range neigh {
			set[n] = struct{}{}
		}
		c.adj[id] = set
	}
	return c
}

// DegreeStats summarizes the degree distribution.
type DegreeStats struct {
	Min, Max int     // smallest and largest node degree
	Mean     float64 // average degree (2·edges/nodes)
}

// Degrees returns summary statistics over all node degrees. An empty
// graph yields the zero value.
func (g *Graph) Degrees() DegreeStats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if len(g.adj) == 0 {
		return DegreeStats{}
	}
	st := DegreeStats{Min: int(^uint(0) >> 1)}
	total := 0
	for _, neigh := range g.adj {
		d := len(neigh)
		total += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
	}
	st.Mean = float64(total) / float64(len(g.adj))
	return st
}

func sortIDs(ids []UserID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func sortedKeysLocked(set map[UserID]struct{}) []UserID {
	out := make([]UserID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}
