package snapfile

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"

	"sightrisk/internal/graph"
)

// fuzzSeeds builds the seed inputs: valid files of several shapes plus
// systematic corruptions (bit flips, truncations) of each. The same
// set is committed under testdata/fuzz/FuzzSnapfileOpen by
// TestWriteFuzzCorpus.
func fuzzSeeds(t testing.TB) [][]byte {
	t.Helper()
	var seeds [][]byte

	// Empty graph.
	var buf bytes.Buffer
	if _, err := Write(&buf, Contents{Snapshot: graph.New().Snapshot()}); err != nil {
		t.Fatal(err)
	}
	seeds = append(seeds, append([]byte(nil), buf.Bytes()...))

	// Small graph with profiles and aux — every section kind.
	full := validBytes(t)
	seeds = append(seeds, full)

	// A medium graph without profiles.
	g := graph.New()
	for i := graph.UserID(0); i < 40; i++ {
		j := (i*7 + 1) % 41
		if j == i {
			continue
		}
		if err := g.AddEdge(i, j); err != nil {
			t.Fatal(err)
		}
	}
	buf.Reset()
	if _, err := Write(&buf, Contents{Snapshot: g.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	seeds = append(seeds, append([]byte(nil), buf.Bytes()...))

	// Corruptions of the full file: single bit flips spread over the
	// whole layout, and truncations at structure boundaries.
	for _, pos := range []int{0, 9, offSections, offNumNodes, headerSize + 4, headerSize + tableEntrySize + 8, len(full) / 2, len(full) - 1} {
		c := append([]byte(nil), full...)
		c[pos%len(c)] ^= 0x40
		seeds = append(seeds, c)
	}
	for _, cut := range []int{0, 7, headerSize - 1, headerSize, headerSize + tableEntrySize, len(full) - 9, len(full) - 1} {
		if cut <= len(full) {
			seeds = append(seeds, append([]byte(nil), full[:cut]...))
		}
	}
	return seeds
}

// FuzzSnapfileOpen is the decoder robustness target: for arbitrary
// bytes, Open must either fail with a clean error or return a
// structurally consistent snapshot — never panic, read out of bounds,
// or hand back a silently wrong graph. Open (the real mmap path) and
// OpenBytes must also agree on acceptance.
func FuzzSnapfileOpen(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	dir := f.TempDir()
	n := 0
	f.Fuzz(func(t *testing.T, data []byte) {
		n++
		path := filepath.Join(dir, "f"+strconv.Itoa(n%8)+".snap")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		file, err := Open(path)
		bfile, berr := OpenBytes(data, Options{})
		if (err == nil) != (berr == nil) {
			t.Fatalf("Open err=%v but OpenBytes err=%v", err, berr)
		}
		if berr == nil {
			bfile.Close()
		}
		if err != nil {
			return
		}
		defer file.Close()

		// Accepted: the snapshot must be self-consistent under the
		// queries the engine runs, whatever the input was.
		snap := file.Snapshot()
		nodes := snap.Nodes()
		if len(nodes) != snap.NumNodes() {
			t.Fatalf("NumNodes %d != len(Nodes) %d", snap.NumNodes(), len(nodes))
		}
		deg2 := 0
		for _, id := range nodes {
			fr := snap.Friends(id)
			deg2 += len(fr)
			if !sort.SliceIsSorted(fr, func(a, b int) bool { return fr[a] < fr[b] }) {
				t.Fatalf("Friends(%d) not sorted", id)
			}
			for _, nb := range fr {
				if nb == id {
					t.Fatalf("self loop on %d", id)
				}
				if !snap.HasEdge(nb, id) {
					t.Fatalf("edge %d-%d not symmetric", id, nb)
				}
			}
		}
		if deg2 != 2*snap.NumEdges() {
			t.Fatalf("degree sum %d != 2·NumEdges %d", deg2, 2*snap.NumEdges())
		}
		if table := file.Profiles(); table != nil {
			for i := 0; i < table.Len(); i++ {
				if p := table.ProfileAt(i); p != nil && p.User != nodes[i] {
					t.Fatalf("profile at %d claims user %d, node is %d", i, p.User, nodes[i])
				}
			}
		}
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzSnapfileOpen when UPDATE_FUZZ_CORPUS=1 is set;
// otherwise it verifies every committed entry still decodes or fails
// cleanly (no panics), keeping the corpus honest as the format
// evolves.
func TestWriteFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzSnapfileOpen")
	if os.Getenv("UPDATE_FUZZ_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range fuzzSeeds(t) {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
			name := filepath.Join(dir, "seed-"+strconv.Itoa(i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seed corpus missing (run with UPDATE_FUZZ_CORPUS=1 to generate): %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("seed corpus directory is empty")
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		// Corpus entries are "go test fuzz v1" files with one quoted
		// []byte literal; decode it and run the decoder on it.
		lines := bytes.SplitN(raw, []byte("\n"), 3)
		if len(lines) < 2 {
			t.Fatalf("%s: malformed corpus entry", e.Name())
		}
		lit := string(lines[1])
		lit = lit[len("[]byte(") : len(lit)-1]
		data, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if f, err := OpenBytes([]byte(data), Options{}); err == nil {
			f.Close()
		}
	}
}
