package snapfile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

// validBytes encodes a small valid file: a 5-node graph with profiles
// and an aux payload — every section kind represented.
func validBytes(t testing.TB) []byte {
	t.Helper()
	g := graph.New()
	for _, e := range [][2]graph.UserID{{1, 2}, {2, 3}, {3, 4}, {1, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g.AddNode(9)
	store := profile.NewStore()
	p := profile.NewProfile(2)
	p.SetAttr(profile.AttrGender, "male")
	p.SetAttr(profile.AttrLocale, "en_US")
	p.SetVisible(profile.ItemWall, true)
	store.Put(p)
	snap := g.Snapshot()
	table, err := TableFromStore(snap.Nodes(), store)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Write(&buf, Contents{Snapshot: snap, Profiles: table, Aux: []byte("aux")}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fixCRCs recomputes every checksum (sections, table, header) from the
// current content, so corruption tests can target one specific
// validation layer without tripping the checksums in front of it.
func fixCRCs(t testing.TB, data []byte) {
	t.Helper()
	count := binary.LittleEndian.Uint32(data[offSections:])
	tableEnd := headerSize + int(count)*tableEntrySize
	for i := 0; i < int(count); i++ {
		e := data[headerSize+i*tableEntrySize:]
		off := binary.LittleEndian.Uint64(e[8:])
		size := binary.LittleEndian.Uint64(e[16:])
		if off+size <= uint64(len(data)) {
			binary.LittleEndian.PutUint32(e[24:], checksum(data[off:off+size]))
		}
	}
	binary.LittleEndian.PutUint32(data[offTableCRC:], checksum(data[headerSize:tableEnd]))
	binary.LittleEndian.PutUint32(data[offHeaderCRC:], checksum(data[:offHeaderCRC]))
}

// openBytesViaFile round-trips the bytes through a real file and Open,
// exercising the mmap path the corruption matrix is about.
func openBytesViaFile(t testing.TB, data []byte) error {
	t.Helper()
	path := filepath.Join(t.TempDir(), "c.snap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err == nil {
		f.Close()
	}
	return err
}

// sectionEntry returns the table byte offset of the entry for kind.
func sectionEntry(t testing.TB, data []byte, kind uint32) int {
	t.Helper()
	count := binary.LittleEndian.Uint32(data[offSections:])
	for i := 0; i < int(count); i++ {
		pos := headerSize + i*tableEntrySize
		if binary.LittleEndian.Uint32(data[pos:]) == kind {
			return pos
		}
	}
	t.Fatalf("no section of kind %d", kind)
	return -1
}

func TestCorruptionMatrix(t *testing.T) {
	cases := map[string]struct {
		mutate func(t testing.TB, data []byte) []byte
		want   error
	}{
		"bad magic": {
			mutate: func(t testing.TB, d []byte) []byte { d[0] ^= 0xFF; return d },
			want:   ErrCorrupt,
		},
		"wrong version": {
			mutate: func(t testing.TB, d []byte) []byte {
				binary.LittleEndian.PutUint32(d[offVersion:], Version+1)
				fixCRCs(t, d)
				return d
			},
			want: ErrVersion,
		},
		"unknown flags": {
			mutate: func(t testing.TB, d []byte) []byte {
				binary.LittleEndian.PutUint32(d[offFlags:], 0xBEEF)
				fixCRCs(t, d)
				return d
			},
			want: ErrCorrupt,
		},
		"header checksum mismatch": {
			mutate: func(t testing.TB, d []byte) []byte {
				binary.LittleEndian.PutUint32(d[offHeaderCRC:], binary.LittleEndian.Uint32(d[offHeaderCRC:])^1)
				return d
			},
			want: ErrCorrupt,
		},
		"section checksum mismatch": {
			mutate: func(t testing.TB, d []byte) []byte {
				// Flip a byte in the ids section payload only.
				pos := sectionEntry(t, d, SectionIDs)
				off := binary.LittleEndian.Uint64(d[pos+8:])
				d[off] ^= 0xFF
				return d
			},
			want: ErrCorrupt,
		},
		"table checksum mismatch": {
			mutate: func(t testing.TB, d []byte) []byte {
				binary.LittleEndian.PutUint32(d[offTableCRC:], binary.LittleEndian.Uint32(d[offTableCRC:])^1)
				fixHeaderOnly(t, d)
				return d
			},
			want: ErrCorrupt,
		},
		"truncated header": {
			mutate: func(t testing.TB, d []byte) []byte { return d[:headerSize-8] },
			want:   ErrCorrupt,
		},
		"truncated tail": {
			mutate: func(t testing.TB, d []byte) []byte { return d[:len(d)-3] },
			want:   ErrCorrupt,
		},
		"empty file": {
			mutate: func(t testing.TB, d []byte) []byte { return nil },
			want:   ErrCorrupt,
		},
		"section count zero": {
			mutate: func(t testing.TB, d []byte) []byte {
				binary.LittleEndian.PutUint32(d[offSections:], 0)
				fixHeaderOnly(t, d)
				return d
			},
			want: ErrCorrupt,
		},
		"section count over limit": {
			mutate: func(t testing.TB, d []byte) []byte {
				binary.LittleEndian.PutUint32(d[offSections:], maxSections+1)
				fixHeaderOnly(t, d)
				return d
			},
			want: ErrCorrupt,
		},
		"section overlap": {
			mutate: func(t testing.TB, d []byte) []byte {
				// Point the adjacency section at the ids section's range.
				src := sectionEntry(t, d, SectionIDs)
				dst := sectionEntry(t, d, SectionAdj)
				binary.LittleEndian.PutUint64(d[dst+8:], binary.LittleEndian.Uint64(d[src+8:]))
				fixCRCs(t, d)
				return d
			},
			want: ErrCorrupt,
		},
		"section out of bounds": {
			mutate: func(t testing.TB, d []byte) []byte {
				pos := sectionEntry(t, d, SectionAux)
				binary.LittleEndian.PutUint64(d[pos+16:], uint64(len(d))+64)
				fixCRCs(t, d)
				return d
			},
			want: ErrCorrupt,
		},
		"section misaligned": {
			mutate: func(t testing.TB, d []byte) []byte {
				pos := sectionEntry(t, d, SectionAux)
				binary.LittleEndian.PutUint64(d[pos+8:], binary.LittleEndian.Uint64(d[pos+8:])+1)
				fixCRCs(t, d)
				return d
			},
			want: ErrCorrupt,
		},
		"unknown section kind": {
			mutate: func(t testing.TB, d []byte) []byte {
				pos := sectionEntry(t, d, SectionAux)
				binary.LittleEndian.PutUint32(d[pos:], 99)
				fixCRCs(t, d)
				return d
			},
			want: ErrCorrupt,
		},
		"duplicate section kind": {
			mutate: func(t testing.TB, d []byte) []byte {
				pos := sectionEntry(t, d, SectionAux)
				binary.LittleEndian.PutUint32(d[pos:], SectionIDs)
				fixCRCs(t, d)
				return d
			},
			want: ErrCorrupt,
		},
		"missing required section": {
			mutate: func(t testing.TB, d []byte) []byte {
				// Retype adjIdx as vis: adjIdx goes missing (and vis
				// duplicates) — either check firing is a clean rejection.
				pos := sectionEntry(t, d, SectionAdjIdx)
				binary.LittleEndian.PutUint32(d[pos:], SectionVis)
				fixCRCs(t, d)
				return d
			},
			want: ErrCorrupt,
		},
		"profile sections not all-or-none": {
			mutate: func(t testing.TB, d []byte) []byte {
				// Swap the vis and aux kinds: the profile group loses its
				// real vis section, so whichever check fires first
				// (group completeness or the vis size) must reject.
				vis := sectionEntry(t, d, SectionVis)
				aux := sectionEntry(t, d, SectionAux)
				binary.LittleEndian.PutUint32(d[vis:], SectionAux)
				binary.LittleEndian.PutUint32(d[aux:], SectionVis)
				fixCRCs(t, d)
				return d
			},
			want: ErrCorrupt,
		},
		"node count beyond int32": {
			mutate: func(t testing.TB, d []byte) []byte {
				binary.LittleEndian.PutUint64(d[offNumNodes:], 1<<40)
				fixHeaderOnly(t, d)
				return d
			},
			want: ErrCorrupt,
		},
		"ids section size mismatch": {
			mutate: func(t testing.TB, d []byte) []byte {
				binary.LittleEndian.PutUint64(d[offNumNodes:], binary.LittleEndian.Uint64(d[offNumNodes:])+1)
				fixHeaderOnly(t, d)
				return d
			},
			want: ErrCorrupt,
		},
		"edge count mismatch": {
			mutate: func(t testing.TB, d []byte) []byte {
				binary.LittleEndian.PutUint64(d[offNumEdges:], binary.LittleEndian.Uint64(d[offNumEdges:])+1)
				fixHeaderOnly(t, d)
				return d
			},
			want: ErrCorrupt,
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			data := tc.mutate(t, validBytes(t))
			err := openBytesViaFile(t, data)
			if !errors.Is(err, tc.want) {
				t.Fatalf("Open = %v, want %v", err, tc.want)
			}
			// OpenBytes agrees with Open on every corruption.
			if _, berr := OpenBytes(data, Options{}); !errors.Is(berr, tc.want) {
				t.Fatalf("OpenBytes = %v, want %v", berr, tc.want)
			}
		})
	}
}

// fixHeaderOnly recomputes only the header checksum, leaving table and
// section checksums untouched (for corruptions upstream of them).
func fixHeaderOnly(t testing.TB, data []byte) {
	t.Helper()
	binary.LittleEndian.PutUint32(data[offHeaderCRC:], checksum(data[:offHeaderCRC]))
}

// badCSR builds file bytes from raw CSR arrays that pass the writer's
// shape checks but violate a content invariant Open must catch.
func badCSR(t testing.TB, ids []graph.UserID, offsets []int32, adj []graph.UserID, adjIdx []int32, edges int) []byte {
	t.Helper()
	snap, err := graph.SnapshotFromCSR(ids, offsets, adj, adjIdx, edges)
	if err != nil {
		t.Fatalf("SnapshotFromCSR rejected shape: %v", err)
	}
	var buf bytes.Buffer
	if _, err := Write(&buf, Contents{Snapshot: snap}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStructuralCorruption: files whose envelope (checksums, geometry)
// is perfectly valid but whose CSR content lies must still be
// rejected — the "silent wrong graph" half of the decoder contract.
func TestStructuralCorruption(t *testing.T) {
	cases := map[string]func(t testing.TB) []byte{
		"ids not ascending": func(t testing.TB) []byte {
			return badCSR(t, []graph.UserID{2, 1}, []int32{0, 0, 0}, nil, nil, 0)
		},
		"duplicate ids": func(t testing.TB) []byte {
			return badCSR(t, []graph.UserID{1, 1}, []int32{0, 0, 0}, nil, nil, 0)
		},
		"self loop": func(t testing.TB) []byte {
			return badCSR(t, []graph.UserID{1, 2},
				[]int32{0, 1, 2}, []graph.UserID{1, 2}, []int32{0, 1}, 1)
		},
		"asymmetric edge": func(t testing.TB) []byte {
			// 1 lists 2 as a friend; 2 lists 3.
			return badCSR(t, []graph.UserID{1, 2, 3},
				[]int32{0, 1, 2, 2}, []graph.UserID{2, 3}, []int32{1, 2}, 1)
		},
		"adjIdx names wrong id": func(t testing.TB) []byte {
			return badCSR(t, []graph.UserID{1, 2, 3},
				[]int32{0, 1, 2, 2}, []graph.UserID{2, 1}, []int32{2, 0}, 1)
		},
		"adjIdx out of range": func(t testing.TB) []byte {
			return badCSR(t, []graph.UserID{1, 2},
				[]int32{0, 1, 2}, []graph.UserID{2, 1}, []int32{5, 0}, 1)
		},
		"row not sorted": func(t testing.TB) []byte {
			return badCSR(t, []graph.UserID{1, 2, 3},
				[]int32{0, 2, 3, 4}, []graph.UserID{3, 2, 1, 1}, []int32{2, 1, 0, 0}, 2)
		},
		"offsets decrease": func(t testing.TB) []byte {
			// Writer shape checks require first 0 and last == len(adj);
			// a dip in the middle is content, not shape.
			return badCSR(t, []graph.UserID{1, 2, 3},
				[]int32{0, 2, 1, 2}, []graph.UserID{2, 1}, []int32{1, 0}, 1)
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			data := build(t)
			err := openBytesViaFile(t, data)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open = %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestSkipChecksums: the option skips CRC verification only —
// structural validation still rejects a wrong graph.
func TestSkipChecksums(t *testing.T) {
	data := validBytes(t)
	// Corrupt the header CRC: rejected normally, accepted with the skip.
	broken := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(broken[offHeaderCRC:], 0xDEAD)
	if _, err := OpenBytes(broken, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt CRC with checksums on = %v, want ErrCorrupt", err)
	}
	f, err := OpenBytes(broken, Options{SkipChecksums: true})
	if err != nil {
		t.Fatalf("corrupt CRC with checksums skipped = %v, want nil", err)
	}
	f.Close()
	// A structural lie is rejected regardless of the option.
	bad := badCSR(t, []graph.UserID{2, 1}, []int32{0, 0, 0}, nil, nil, 0)
	if _, err := OpenBytes(bad, Options{SkipChecksums: true}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("structural corruption with checksums skipped = %v, want ErrCorrupt", err)
	}
}

// TestTrailingGarbage: bytes past the last section are rejected — a
// complete file accounts for every byte.
func TestTrailingGarbage(t *testing.T) {
	data := append(validBytes(t), 0, 0, 0, 0, 0, 0, 0, 0)
	if err := openBytesViaFile(t, data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}
