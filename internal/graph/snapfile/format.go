package snapfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"unsafe"
)

// Magic is the 8-byte signature every snapshot file starts with.
const Magic = "SIGHTSNP"

// Version is the current format version. Readers reject any other
// value; see docs/FORMAT.md for the versioning rules.
const Version = 1

// Layout constants of the fixed-size structures. The header is the
// first headerSize bytes of the file; the section table follows
// immediately with one tableEntrySize record per section.
const (
	headerSize     = 48
	tableEntrySize = 32
	maxSections    = 64
	sectionAlign   = 8
)

// Header field offsets (bytes from start of file). The magic occupies
// [0,8); headerCRC covers [0, offHeaderCRC).
const (
	offVersion   = 8
	offFlags     = 12
	offSections  = 16
	offReserved  = 20
	offNumNodes  = 24
	offNumEdges  = 32
	offTableCRC  = 40
	offHeaderCRC = 44
)

// Section kinds. Kinds 1–4 carry the CSR arrays and are mandatory;
// kinds 5–9 carry the interned profile columns and appear all
// together or not at all; kind 10 is an opaque payload for the
// embedding application (package dataset stores its owner records
// there).
const (
	// SectionIDs holds the ascending node ids as little-endian int64.
	SectionIDs = 1
	// SectionOffsets holds the CSR row offsets as int32, numNodes+1 entries.
	SectionOffsets = 2
	// SectionAdj holds the concatenated adjacency rows as int64, 2·numEdges entries.
	SectionAdj = 3
	// SectionAdjIdx holds the dense-index mirror of SectionAdj as int32.
	SectionAdjIdx = 4
	// SectionAttrNames is a string list naming the profile attributes.
	SectionAttrNames = 5
	// SectionAttrDicts holds one string list per attribute: the interned
	// value dictionary, whose entry 0 must be "" (meaning unset).
	SectionAttrDicts = 6
	// SectionAttrVals holds uint32 dictionary indices, column-major:
	// attribute a's value for node i sits at a·numNodes + i.
	SectionAttrVals = 7
	// SectionItemNames is a string list naming the benefit items (≤7).
	SectionItemNames = 8
	// SectionVis holds one byte per node: bit 7 set when the node has a
	// profile, bits 0..len(items)-1 the item visibility flags.
	SectionVis = 9
	// SectionAux is an opaque application payload, not interpreted here.
	SectionAux = 10
)

// visPresent is the SectionVis bit marking "this node has a profile".
const visPresent = 0x80

// maxItems is the most benefit items a file may declare: the per-node
// visibility byte spends bit 7 on presence, leaving 7 item bits.
const maxItems = 7

// ErrCorrupt tags every structural decode failure Open can report: bad
// magic, checksum mismatches, out-of-range offsets, broken CSR
// invariants, and so on. Test with errors.Is; the message names the
// specific violation.
var ErrCorrupt = errors.New("snapfile: corrupt file")

// ErrVersion tags rejection of a well-formed file whose version this
// reader does not speak. Test with errors.Is.
var ErrVersion = errors.New("snapfile: unsupported format version")

// ErrBigEndian is returned on big-endian hosts: the format is defined
// little-endian and this implementation maps sections in place rather
// than byte-swapping.
var ErrBigEndian = errors.New("snapfile: big-endian hosts are not supported")

// castagnoli is the CRC-32C polynomial table used for every checksum
// in the format.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// hostLittleEndian reports whether this machine stores integers
// little-endian. The format maps typed arrays in place, so the writer
// and reader both refuse to run where that would flip bytes.
func hostLittleEndian() bool {
	var probe uint16 = 1
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// section is one parsed table entry.
type section struct {
	kind uint32
	off  uint64
	size uint64
	crc  uint32
}

// appendStringList encodes a length-prefixed string list: u32 count,
// then u32 length + raw bytes per string.
func appendStringList(dst []byte, list []string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(list)))
	for _, s := range list {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

// readStringList decodes one string list from the front of b and
// returns it with the number of bytes consumed. Counts and lengths
// are validated against the bytes actually present before any
// allocation is sized from them, so a hostile header cannot balloon
// memory.
func readStringList(b []byte, what string) ([]string, int, error) {
	if len(b) < 4 {
		return nil, 0, corruptf("%s: truncated string list", what)
	}
	count := binary.LittleEndian.Uint32(b)
	pos := 4
	// Each string costs at least its 4-byte length prefix, bounding
	// count by the bytes available.
	if uint64(count) > uint64(len(b)-pos)/4 {
		return nil, 0, corruptf("%s: string count %d exceeds section bytes", what, count)
	}
	out := make([]string, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(b)-pos < 4 {
			return nil, 0, corruptf("%s: truncated string length at entry %d", what, i)
		}
		n := binary.LittleEndian.Uint32(b[pos:])
		pos += 4
		if uint64(n) > uint64(len(b)-pos) {
			return nil, 0, corruptf("%s: string %d length %d exceeds section bytes", what, i, n)
		}
		out = append(out, string(b[pos:pos+int(n)]))
		pos += int(n)
	}
	return out, pos, nil
}

// alignUp rounds n up to the next multiple of sectionAlign.
func alignUp(n uint64) uint64 {
	return (n + sectionAlign - 1) &^ uint64(sectionAlign-1)
}

// bytesOfInt64 views an int64 slice as raw little-endian bytes without
// copying. Caller has already established the host is little-endian.
func bytesOfInt64(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

// bytesOfInt32 views an int32 slice as raw little-endian bytes without
// copying.
func bytesOfInt32(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

// bytesOfUint32 views a uint32 slice as raw little-endian bytes
// without copying.
func bytesOfUint32(s []uint32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

// int64sOf views an 8-aligned byte slice as int64s without copying.
func int64sOf(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// int32sOf views a 4-aligned byte slice as int32s without copying.
func int32sOf(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// uint32sOf views a 4-aligned byte slice as uint32s without copying.
func uint32sOf(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}
