package snapfile_test

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	sight "sightrisk"
	"sightrisk/internal/graph"
	"sightrisk/internal/graph/snapfile"
	"sightrisk/internal/profile"
	"sightrisk/internal/synthetic"
)

// packStudy writes the study's graph and profiles to a .snap file in a
// test temp dir and reopens it.
func packStudy(t *testing.T, study *synthetic.Study) *snapfile.File {
	t.Helper()
	snap := study.Graph.Snapshot()
	table, err := snapfile.TableFromStore(snap.Nodes(), study.Profiles)
	if err != nil {
		t.Fatalf("TableFromStore: %v", err)
	}
	return packContents(t, snapfile.Contents{Snapshot: snap, Profiles: table})
}

func packContents(t *testing.T, c snapfile.Contents) *snapfile.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.snap")
	if err := snapfile.Create(path, c); err != nil {
		t.Fatalf("Create: %v", err)
	}
	f, err := snapfile.Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func smallStudy(t *testing.T, topo synthetic.Topology) *synthetic.Study {
	t.Helper()
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 2
	cfg.Ego.Friends = 30
	cfg.Ego.Strangers = 120
	cfg.Ego.Topology = topo
	study, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return study
}

// equalSnapshots compares every query surface the round-trip property
// promises: NumNodes, NumEdges, Friends, HasEdge, MutualFriends.
func equalSnapshots(t *testing.T, want, got *graph.Snapshot) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() {
		t.Fatalf("NumNodes: got %d, want %d", got.NumNodes(), want.NumNodes())
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("NumEdges: got %d, want %d", got.NumEdges(), want.NumEdges())
	}
	nodes := want.Nodes()
	gotNodes := got.Nodes()
	for i, id := range nodes {
		if gotNodes[i] != id {
			t.Fatalf("node %d: got id %d, want %d", i, gotNodes[i], id)
		}
	}
	for _, id := range nodes {
		wf, gf := want.Friends(id), got.Friends(id)
		if len(wf) != len(gf) {
			t.Fatalf("Friends(%d): got %d entries, want %d", id, len(gf), len(wf))
		}
		for k := range wf {
			if wf[k] != gf[k] {
				t.Fatalf("Friends(%d)[%d]: got %d, want %d", id, k, gf[k], wf[k])
			}
		}
	}
	// HasEdge and MutualFriends on a sample of pairs: every real edge,
	// plus striding non-edges.
	for i, a := range nodes {
		for _, b := range want.Friends(a) {
			if !got.HasEdge(a, b) {
				t.Fatalf("HasEdge(%d,%d): lost edge", a, b)
			}
		}
		b := nodes[(i*7+3)%len(nodes)]
		if want.HasEdge(a, b) != got.HasEdge(a, b) {
			t.Fatalf("HasEdge(%d,%d) diverges", a, b)
		}
		wm, gm := want.MutualFriends(a, b), got.MutualFriends(a, b)
		if len(wm) != len(gm) {
			t.Fatalf("MutualFriends(%d,%d): got %d, want %d", a, b, len(gm), len(wm))
		}
		for k := range wm {
			if wm[k] != gm[k] {
				t.Fatalf("MutualFriends(%d,%d)[%d] diverges", a, b, k)
			}
		}
	}
}

func TestRoundTripTopologies(t *testing.T) {
	for _, topo := range []synthetic.Topology{synthetic.Communities, synthetic.SmallWorld, synthetic.ScaleFree} {
		t.Run(topo.String(), func(t *testing.T) {
			study := smallStudy(t, topo)
			want := study.Graph.Snapshot()
			f := packStudy(t, study)
			equalSnapshots(t, want, f.Snapshot())

			// Every profile survives the interning round trip.
			table := f.Profiles()
			if table == nil {
				t.Fatal("profile sections missing")
			}
			for _, u := range want.Nodes() {
				orig := study.Profiles.Get(u)
				back := table.Get(u)
				if (orig == nil) != (back == nil) {
					t.Fatalf("user %d: presence diverges (orig %v, back %v)", u, orig != nil, back != nil)
				}
				if orig == nil {
					continue
				}
				for _, a := range profile.AllAttributes() {
					if orig.Attr(a) != back.Attr(a) {
						t.Fatalf("user %d attr %q: got %q, want %q", u, a, back.Attr(a), orig.Attr(a))
					}
				}
				for _, it := range profile.Items() {
					if orig.IsVisible(it) != back.IsVisible(it) {
						t.Fatalf("user %d item %q visibility diverges", u, it)
					}
				}
			}
		})
	}
}

func TestRoundTripEdgeCases(t *testing.T) {
	cases := map[string]func() *graph.Graph{
		"empty":       func() *graph.Graph { return graph.New() },
		"single-node": func() *graph.Graph { g := graph.New(); g.AddNode(7); return g },
		"isolated-nodes": func() *graph.Graph {
			g := graph.New()
			if err := g.AddEdge(1, 2); err != nil {
				panic(err)
			}
			g.AddNode(10)
			g.AddNode(20)
			g.AddNode(30)
			return g
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			g := build()
			want := g.Snapshot()
			f := packContents(t, snapfile.Contents{Snapshot: want})
			equalSnapshots(t, want, f.Snapshot())
			if f.Profiles() != nil {
				t.Fatal("profile table materialized from a file without profile sections")
			}
		})
	}
}

func TestRoundTripAux(t *testing.T) {
	g := graph.New()
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	aux := []byte(`{"owners":[{"id":1}]}`)
	f := packContents(t, snapfile.Contents{Snapshot: g.Snapshot(), Aux: aux})
	if !bytes.Equal(f.Aux(), aux) {
		t.Fatalf("aux round trip: got %q, want %q", f.Aux(), aux)
	}
}

// TestOpenBytesMatchesOpen: the two entry points decode identically.
func TestOpenBytesMatchesOpen(t *testing.T) {
	study := smallStudy(t, synthetic.Communities)
	snap := study.Graph.Snapshot()
	var buf bytes.Buffer
	if _, err := snapfile.Write(&buf, snapfile.Contents{Snapshot: snap}); err != nil {
		t.Fatal(err)
	}
	f, err := snapfile.OpenBytes(buf.Bytes(), snapfile.Options{})
	if err != nil {
		t.Fatalf("OpenBytes: %v", err)
	}
	defer f.Close()
	equalSnapshots(t, snap, f.Snapshot())
}

// TestWriterDeterministic: packing the same study twice — with the
// profile table built in different insertion orders — yields identical
// bytes, the canonical-encoding property the shared page cache relies
// on.
func TestWriterDeterministic(t *testing.T) {
	study := smallStudy(t, synthetic.Communities)
	snap := study.Graph.Snapshot()
	encode := func(reverse bool) []byte {
		b := snapfile.NewTableBuilder(snap.Nodes())
		users := study.Profiles.Users()
		if reverse {
			for i := len(users) - 1; i >= 0; i-- {
				if err := b.Add(study.Profiles.Get(users[i])); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for _, u := range users {
				if err := b.Add(study.Profiles.Get(u)); err != nil {
					t.Fatal(err)
				}
			}
		}
		var buf bytes.Buffer
		if _, err := snapfile.Write(&buf, snapfile.Contents{Snapshot: snap, Profiles: b.Table()}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(encode(false), encode(true)) {
		t.Fatal("encoding depends on profile insertion order")
	}
}

func eqNaN(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// diffReports returns "" when two sight reports are identical.
func diffReports(a, b *sight.Report) string {
	switch {
	case a.Owner != b.Owner:
		return "owner differs"
	case a.LabelsRequested != b.LabelsRequested:
		return "labels requested differ"
	case a.Pools != b.Pools:
		return "pool counts differ"
	case !eqNaN(a.MeanRounds, b.MeanRounds):
		return "mean rounds differ"
	case !eqNaN(a.ExactMatchRate, b.ExactMatchRate):
		return "exact-match rates differ"
	case len(a.Strangers) != len(b.Strangers):
		return "stranger counts differ"
	}
	for i := range a.Strangers {
		if a.Strangers[i] != b.Strangers[i] {
			return "stranger entry " + a.Strangers[i].Pool + " differs"
		}
	}
	for k, v := range a.PoolStatus {
		if b.PoolStatus[k] != v {
			return "pool status of " + k + " differs"
		}
	}
	return ""
}

// TestEstimateRiskIdenticalMmapVsMemory is the standing invariant at
// the file boundary: a full EstimateRisk report computed on the
// mmap-backed snapshot (graph-free, lazy profiles) is identical to the
// in-memory build, at every worker count.
func TestEstimateRiskIdenticalMmapVsMemory(t *testing.T) {
	study := smallStudy(t, synthetic.Communities)
	f := packStudy(t, study)

	annotator := func(net *sight.Network) sight.AnnotatorFunc {
		return func(s sight.UserID) sight.Label {
			switch {
			case net.Attribute(s, sight.AttrLocale) != "en_US":
				return sight.VeryRisky
			case net.Attribute(s, sight.AttrGender) == "male":
				return sight.Risky
			default:
				return sight.NotRisky
			}
		}
	}
	memNet := sight.WrapNetwork(study.Graph, study.Profiles)
	mmapNet := sight.WrapSnapshot(f.Snapshot(), f.Profiles().Store())
	owner := study.Owners[0].ID

	for _, workers := range []int{1, 2, 4} {
		opts := sight.DefaultOptions()
		opts.Workers = workers
		want, err := sight.EstimateRisk(context.Background(), memNet, owner, annotator(memNet), opts)
		if err != nil {
			t.Fatalf("workers=%d in-memory: %v", workers, err)
		}
		got, err := sight.EstimateRisk(context.Background(), mmapNet, owner, annotator(mmapNet), opts)
		if err != nil {
			t.Fatalf("workers=%d mmap: %v", workers, err)
		}
		if d := diffReports(want, got); d != "" {
			t.Fatalf("workers=%d: mmap report differs from in-memory: %s", workers, d)
		}
	}
}

// TestWrapSnapshotReadOnly pins the mutation contract of
// snapshot-backed networks.
func TestWrapSnapshotReadOnly(t *testing.T) {
	g := graph.New()
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	net := sight.WrapSnapshot(g.Snapshot(), profile.NewStore())
	if err := net.AddFriendship(3, 4); err != sight.ErrReadOnly {
		t.Fatalf("AddFriendship = %v, want ErrReadOnly", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddUser on snapshot-backed network did not panic")
		}
	}()
	net.AddUser(9)
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := snapfile.Open(filepath.Join(t.TempDir(), "absent.snap")); err == nil {
		t.Fatal("Open of missing file succeeded")
	}
}

func TestFileAccessors(t *testing.T) {
	g := graph.New()
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.snap")
	if err := snapfile.Create(path, snapfile.Contents{Snapshot: g.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := snapfile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != fi.Size() {
		t.Fatalf("Size = %d, file is %d", f.Size(), fi.Size())
	}
	if !f.Mapped() {
		t.Fatal("expected an mmap-backed file on this platform")
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
