package snapfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"unsafe"

	"sightrisk/internal/graph"
)

// Contents is what one snapshot file holds: the frozen graph,
// optionally its profile table, and optionally an opaque auxiliary
// payload for the embedding application.
type Contents struct {
	// Snapshot is the frozen graph to encode. Required.
	Snapshot *graph.Snapshot
	// Profiles, when non-nil, adds the interned profile sections. Its
	// node universe must be the snapshot's.
	Profiles *ProfileTable
	// Aux, when non-empty, is stored verbatim in an opaque section.
	Aux []byte
}

// WriteTo encodes the contents to w in the snapfile format, making
// Contents an io.WriterTo. It returns the number of bytes written.
func (c Contents) WriteTo(w io.Writer) (int64, error) {
	return Write(w, c)
}

// Write encodes the contents to w in the snapfile format and returns
// the number of bytes written. The writer runs on little-endian hosts
// only (ErrBigEndian otherwise) and never mutates the snapshot.
func Write(w io.Writer, c Contents) (int64, error) {
	if !hostLittleEndian() {
		return 0, ErrBigEndian
	}
	if c.Snapshot == nil {
		return 0, fmt.Errorf("snapfile: write: nil snapshot")
	}
	ids, offsets, adj, adjIdx := c.Snapshot.CSR()
	if len(ids) > math.MaxInt32-1 {
		return 0, fmt.Errorf("snapfile: write: %d nodes exceed int32 indexing", len(ids))
	}

	type payload struct {
		kind uint32
		data []byte
	}
	payloads := []payload{
		{SectionIDs, bytesOfInt64(idsAsInt64(ids))},
		{SectionOffsets, bytesOfInt32(offsets)},
		{SectionAdj, bytesOfInt64(idsAsInt64(adj))},
		{SectionAdjIdx, bytesOfInt32(adjIdx)},
	}
	if t := c.Profiles; t != nil {
		if len(t.ids) != len(ids) {
			return 0, fmt.Errorf("snapfile: write: profile table covers %d nodes, snapshot has %d", len(t.ids), len(ids))
		}
		if len(t.items) > maxItems {
			return 0, fmt.Errorf("snapfile: write: %d benefit items exceed the %d-bit visibility byte", len(t.items), maxItems)
		}
		attrNames := make([]string, len(t.attrs))
		for i, a := range t.attrs {
			attrNames[i] = string(a)
		}
		itemNames := make([]string, len(t.items))
		for i, it := range t.items {
			itemNames[i] = string(it)
		}
		var dicts []byte
		for _, d := range t.dicts {
			dicts = appendStringList(dicts, d)
		}
		payloads = append(payloads,
			payload{SectionAttrNames, appendStringList(nil, attrNames)},
			payload{SectionAttrDicts, dicts},
			payload{SectionAttrVals, bytesOfUint32(t.vals)},
			payload{SectionItemNames, appendStringList(nil, itemNames)},
			payload{SectionVis, t.vis},
		)
	}
	if len(c.Aux) > 0 {
		payloads = append(payloads, payload{SectionAux, c.Aux})
	}

	// Lay the sections out back to back, each 8-aligned, after the table.
	table := make([]byte, len(payloads)*tableEntrySize)
	off := alignUp(uint64(headerSize + len(table)))
	for i, p := range payloads {
		e := table[i*tableEntrySize:]
		binary.LittleEndian.PutUint32(e[0:], p.kind)
		binary.LittleEndian.PutUint64(e[8:], off)
		binary.LittleEndian.PutUint64(e[16:], uint64(len(p.data)))
		binary.LittleEndian.PutUint32(e[24:], checksum(p.data))
		off = alignUp(off + uint64(len(p.data)))
	}

	header := make([]byte, headerSize)
	copy(header, Magic)
	binary.LittleEndian.PutUint32(header[offVersion:], Version)
	binary.LittleEndian.PutUint32(header[offSections:], uint32(len(payloads)))
	binary.LittleEndian.PutUint64(header[offNumNodes:], uint64(len(ids)))
	binary.LittleEndian.PutUint64(header[offNumEdges:], uint64(c.Snapshot.NumEdges()))
	binary.LittleEndian.PutUint32(header[offTableCRC:], checksum(table))
	binary.LittleEndian.PutUint32(header[offHeaderCRC:], checksum(header[:offHeaderCRC]))

	cw := &countWriter{w: w}
	if _, err := cw.Write(header); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write(table); err != nil {
		return cw.n, err
	}
	var pad [sectionAlign]byte
	for _, p := range payloads {
		if gap := int64(alignUp(uint64(cw.n))) - cw.n; gap > 0 {
			if _, err := cw.Write(pad[:gap]); err != nil {
				return cw.n, err
			}
		}
		if _, err := cw.Write(p.data); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// Create writes the contents to the named file, replacing it
// atomically enough for the single-writer packing workflow (write to
// the final path, buffered, fsync-free).
func Create(path string, c Contents) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("snapfile: create: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err := Write(bw, c); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("snapfile: create %s: %w", path, err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("snapfile: create %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("snapfile: create %s: %w", path, err)
	}
	return nil
}

// idsAsInt64 views a []graph.UserID as []int64 (UserID's underlying
// type) without copying.
func idsAsInt64(ids []graph.UserID) []int64 {
	if len(ids) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&ids[0])), len(ids))
}

// countWriter tracks bytes written.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
