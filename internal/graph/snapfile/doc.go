// Package snapfile is the on-disk binary container for frozen graph
// snapshots: the CSR arrays of a graph.Snapshot plus an interned,
// columnar encoding of the categorical profiles that ride with a
// dataset. Its reason to exist is load cost at social-graph scale —
// parsing a million-node graph out of JSON takes tens of seconds and
// doubles peak memory, while Open mmaps a .snap file and returns a
// Snapshot whose slices point straight into the mapped pages: no
// copy, no parse, and the page cache is shared by every replica that
// opens the same file.
//
// The format is versioned and checksummed (magic, fixed header,
// section table, CRC-32C per section) and Open trusts nothing: every
// offset, length, index and invariant is validated before a byte is
// handed to the engine, so a truncated or bit-flipped file yields a
// clean error rather than a panic, an out-of-bounds read, or a
// silently wrong graph. docs/FORMAT.md specifies the exact layout and
// the versioning rules; the corruption and fuzz tests in this package
// pin the decoder down.
//
// Estimates computed from an mmap-backed Snapshot are byte-identical
// to those from the in-memory build — the snapshot/live equivalence
// property extends to the file boundary, and the determinism auditor
// (riskbench -audit) re-verifies it on every run.
package snapfile
