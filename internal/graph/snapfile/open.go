package snapfile

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sort"
	"unsafe"

	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

// Options tunes Open.
type Options struct {
	// SkipChecksums skips the per-section and table CRC verification
	// (for benchmarking the pure mapping cost). Structural validation —
	// bounds, alignment, CSR invariants — always runs: checksums protect
	// against rot, structure protects against memory unsafety and
	// silently wrong graphs, and only the former is optional.
	SkipChecksums bool
}

// File is an opened snapshot file. The Snapshot and ProfileTable it
// returns alias the mapped pages; they must not be used after Close.
type File struct {
	data     []byte
	snap     *graph.Snapshot
	profiles *ProfileTable
	aux      []byte
	mapped   bool
	unmap    func() error
}

// Snapshot returns the frozen graph backed by the mapped file.
func (f *File) Snapshot() *graph.Snapshot { return f.snap }

// Profiles returns the profile table, or nil when the file carries no
// profile sections.
func (f *File) Profiles() *ProfileTable { return f.profiles }

// Aux returns the opaque application payload, or nil when absent. The
// slice aliases the mapped pages; do not modify.
func (f *File) Aux() []byte { return f.aux }

// Size returns the file size in bytes.
func (f *File) Size() int64 { return int64(len(f.data)) }

// Mapped reports whether the file is memory-mapped (true on unix) as
// opposed to read into heap memory (the portable fallback and
// OpenBytes).
func (f *File) Mapped() bool { return f.mapped }

// Close releases the mapping. Every Snapshot, ProfileTable and Aux
// slice obtained from the file becomes invalid.
func (f *File) Close() error {
	f.snap, f.profiles, f.aux, f.data = nil, nil, nil, nil
	if f.unmap != nil {
		u := f.unmap
		f.unmap = nil
		return u()
	}
	return nil
}

// Open maps the named snapshot file and returns it fully validated:
// checksums verified, every offset bounds-checked, every CSR and
// profile invariant confirmed. The returned Snapshot's slices point
// directly into the mapping — opening is O(validation), not O(parse) —
// and the page cache backing them is shared with every other process
// mapping the same file.
func Open(path string) (*File, error) {
	return OpenWith(path, Options{})
}

// OpenWith is Open with explicit Options.
func OpenWith(path string, opts Options) (*File, error) {
	if !hostLittleEndian() {
		return nil, ErrBigEndian
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapfile: open: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("snapfile: open: %w", err)
	}
	data, unmap, mapped, err := mmapFile(f, fi.Size())
	// The fd is not needed once the mapping exists (or the fallback has
	// read the bytes); the mapping keeps its own reference to the file.
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("snapfile: open %s: %w", path, err)
	}
	out, err := decode(data, opts)
	if err != nil {
		unmap()
		return nil, fmt.Errorf("snapfile: open %s: %w", path, err)
	}
	out.mapped = mapped
	out.unmap = unmap
	return out, nil
}

// OpenBytes decodes a snapshot from an in-memory buffer, applying
// exactly the validation Open applies to a file. The bytes are copied
// into an aligned buffer first, so callers (fuzzers included) may pass
// arbitrarily aligned slices.
func OpenBytes(data []byte, opts Options) (*File, error) {
	if !hostLittleEndian() {
		return nil, ErrBigEndian
	}
	// Back the copy with an int64 arena to guarantee the 8-byte section
	// alignment the in-place casts rely on.
	arena := make([]int64, (len(data)+7)/8)
	aligned := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(arena))), len(data))
	if len(data) == 0 {
		aligned = nil
	}
	copy(aligned, data)
	out, err := decode(aligned, opts)
	if err != nil {
		return nil, fmt.Errorf("snapfile: decode: %w", err)
	}
	return out, nil
}

// decode validates data as a complete snapshot file and assembles the
// File aliasing it. It is the single decoder both Open and OpenBytes
// run; nothing in it may index data without a prior bounds check.
func decode(data []byte, opts Options) (*File, error) {
	secs, numNodes, numEdges, err := parseEnvelope(data, opts)
	if err != nil {
		return nil, err
	}
	byKind := make(map[uint32][]byte, len(secs))
	for _, s := range secs {
		byKind[s.kind] = data[s.off : s.off+s.size]
	}

	snap, err := decodeGraph(byKind, numNodes, numEdges)
	if err != nil {
		return nil, err
	}
	table, err := decodeProfiles(byKind, snap.Nodes())
	if err != nil {
		return nil, err
	}
	return &File{data: data, snap: snap, profiles: table, aux: byKind[SectionAux]}, nil
}

// parseEnvelope checks magic, version, header and table checksums, and
// the section table's geometry: known kinds, no duplicates, in-bounds,
// aligned, non-overlapping, and jointly accounting for the whole file.
func parseEnvelope(data []byte, opts Options) ([]section, uint64, uint64, error) {
	if len(data) < headerSize {
		return nil, 0, 0, corruptf("%d bytes, need at least the %d-byte header", len(data), headerSize)
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, 0, 0, corruptf("bad magic %q", data[:len(Magic)])
	}
	if !opts.SkipChecksums {
		if got, want := checksum(data[:offHeaderCRC]), binary.LittleEndian.Uint32(data[offHeaderCRC:]); got != want {
			return nil, 0, 0, corruptf("header checksum %08x, recorded %08x", got, want)
		}
	}
	if v := binary.LittleEndian.Uint32(data[offVersion:]); v != Version {
		return nil, 0, 0, fmt.Errorf("%w: file version %d, reader speaks %d", ErrVersion, v, Version)
	}
	if flags := binary.LittleEndian.Uint32(data[offFlags:]); flags != 0 {
		return nil, 0, 0, corruptf("unknown flags %#x", flags)
	}
	if r := binary.LittleEndian.Uint32(data[offReserved:]); r != 0 {
		return nil, 0, 0, corruptf("reserved header field %#x", r)
	}
	count := binary.LittleEndian.Uint32(data[offSections:])
	if count == 0 || count > maxSections {
		return nil, 0, 0, corruptf("section count %d outside [1,%d]", count, maxSections)
	}
	tableEnd := uint64(headerSize) + uint64(count)*tableEntrySize
	if tableEnd > uint64(len(data)) {
		return nil, 0, 0, corruptf("section table extends to %d, file has %d bytes", tableEnd, len(data))
	}
	table := data[headerSize:tableEnd]
	if !opts.SkipChecksums {
		if got, want := checksum(table), binary.LittleEndian.Uint32(data[offTableCRC:]); got != want {
			return nil, 0, 0, corruptf("section table checksum %08x, recorded %08x", got, want)
		}
	}

	secs := make([]section, count)
	seen := make(map[uint32]bool, count)
	for i := range secs {
		e := table[i*tableEntrySize:]
		s := section{
			kind: binary.LittleEndian.Uint32(e[0:]),
			off:  binary.LittleEndian.Uint64(e[8:]),
			size: binary.LittleEndian.Uint64(e[16:]),
			crc:  binary.LittleEndian.Uint32(e[24:]),
		}
		if s.kind < SectionIDs || s.kind > SectionAux {
			return nil, 0, 0, corruptf("section %d: unknown kind %d", i, s.kind)
		}
		if seen[s.kind] {
			return nil, 0, 0, corruptf("section kind %d appears twice", s.kind)
		}
		seen[s.kind] = true
		if binary.LittleEndian.Uint32(e[4:]) != 0 || binary.LittleEndian.Uint32(e[28:]) != 0 {
			return nil, 0, 0, corruptf("section %d: nonzero padding", i)
		}
		if s.off%sectionAlign != 0 {
			return nil, 0, 0, corruptf("section kind %d: offset %d not %d-aligned", s.kind, s.off, sectionAlign)
		}
		if s.off < tableEnd || s.off > uint64(len(data)) || s.size > uint64(len(data))-s.off {
			return nil, 0, 0, corruptf("section kind %d: range [%d,%d+%d) outside file of %d bytes",
				s.kind, s.off, s.off, s.size, len(data))
		}
		secs[i] = s
	}

	ordered := append([]section(nil), secs...)
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].off != ordered[b].off {
			return ordered[a].off < ordered[b].off
		}
		return ordered[a].size < ordered[b].size
	})
	end := tableEnd
	for _, s := range ordered {
		if s.off < end {
			return nil, 0, 0, corruptf("section kind %d at %d overlaps preceding bytes ending at %d", s.kind, s.off, end)
		}
		end = s.off + s.size
	}
	if end != uint64(len(data)) {
		return nil, 0, 0, corruptf("sections end at %d, file has %d bytes", end, len(data))
	}

	for _, k := range []uint32{SectionIDs, SectionOffsets, SectionAdj, SectionAdjIdx} {
		if !seen[k] {
			return nil, 0, 0, corruptf("required section kind %d missing", k)
		}
	}
	profilePresent := 0
	for _, k := range []uint32{SectionAttrNames, SectionAttrDicts, SectionAttrVals, SectionItemNames, SectionVis} {
		if seen[k] {
			profilePresent++
		}
	}
	if profilePresent != 0 && profilePresent != 5 {
		return nil, 0, 0, corruptf("profile sections are all-or-none, found %d of 5", profilePresent)
	}

	if !opts.SkipChecksums {
		for _, s := range secs {
			if got := checksum(data[s.off : s.off+s.size]); got != s.crc {
				return nil, 0, 0, corruptf("section kind %d: checksum %08x, recorded %08x", s.kind, got, s.crc)
			}
		}
	}
	numNodes := binary.LittleEndian.Uint64(data[offNumNodes:])
	numEdges := binary.LittleEndian.Uint64(data[offNumEdges:])
	return secs, numNodes, numEdges, nil
}

// decodeGraph casts the four CSR sections in place and verifies every
// structural invariant a Graph-built Snapshot guarantees: ascending
// ids, monotone offsets, sorted self-loop-free rows, a consistent
// dense-index mirror, and edge symmetry. A file that passes is
// query-for-query indistinguishable from the in-memory build.
func decodeGraph(byKind map[uint32][]byte, numNodes, numEdges uint64) (*graph.Snapshot, error) {
	if numNodes > math.MaxInt32-1 {
		return nil, corruptf("%d nodes exceed int32 indexing", numNodes)
	}
	if numEdges > math.MaxInt32/2 {
		return nil, corruptf("%d edges exceed int32 indexing", numEdges)
	}
	n := int(numNodes)
	deg2 := 2 * int(numEdges)
	if got, want := uint64(len(byKind[SectionIDs])), numNodes*8; got != want {
		return nil, corruptf("ids section %d bytes, want %d for %d nodes", got, want, numNodes)
	}
	if got, want := uint64(len(byKind[SectionOffsets])), (numNodes+1)*4; got != want {
		return nil, corruptf("offsets section %d bytes, want %d", got, want)
	}
	if got, want := uint64(len(byKind[SectionAdj])), uint64(deg2)*8; got != want {
		return nil, corruptf("adjacency section %d bytes, want %d for %d edges", got, want, numEdges)
	}
	if got, want := uint64(len(byKind[SectionAdjIdx])), uint64(deg2)*4; got != want {
		return nil, corruptf("adjacency index section %d bytes, want %d", got, want)
	}

	ids := idsOf(byKind[SectionIDs])
	offsets := int32sOf(byKind[SectionOffsets])
	adj := idsOf(byKind[SectionAdj])
	adjIdx := int32sOf(byKind[SectionAdjIdx])

	for i := 1; i < n; i++ {
		if ids[i] <= ids[i-1] {
			return nil, corruptf("node ids not strictly ascending at index %d", i)
		}
	}
	if offsets[0] != 0 {
		return nil, corruptf("first row offset %d, want 0", offsets[0])
	}
	for i := 1; i <= n; i++ {
		if offsets[i] < offsets[i-1] {
			return nil, corruptf("row offsets decrease at index %d", i)
		}
	}
	if int(offsets[n]) != deg2 {
		return nil, corruptf("row offsets end at %d, adjacency holds %d entries", offsets[n], deg2)
	}
	for i := 0; i < n; i++ {
		lo, hi := offsets[i], offsets[i+1]
		for k := lo; k < hi; k++ {
			j := adjIdx[k]
			if j < 0 || int(j) >= n {
				return nil, corruptf("adjacency index %d out of range at entry %d", j, k)
			}
			if ids[j] != adj[k] {
				return nil, corruptf("adjacency entry %d names id %d but indexes id %d", k, adj[k], ids[j])
			}
			if int(j) == i {
				return nil, corruptf("self loop on node %d", ids[i])
			}
			if k > lo && adj[k] <= adj[k-1] {
				return nil, corruptf("adjacency row of node %d not strictly ascending at entry %d", ids[i], k)
			}
			if int(j) > i {
				// Symmetry: the reverse entry must exist in row j. Rows
				// are checked sorted in their own iteration, so on any
				// file that ultimately validates this search is exact.
				row := adj[offsets[j]:offsets[j+1]]
				want := ids[i]
				p := sort.Search(len(row), func(q int) bool { return row[q] >= want })
				if p >= len(row) || row[p] != want {
					return nil, corruptf("edge %d–%d has no reverse entry", ids[i], ids[j])
				}
			}
		}
	}
	return graph.SnapshotFromCSR(ids, offsets, adj, adjIdx, int(numEdges))
}

// decodeProfiles validates and assembles the profile table, or returns
// nil when the file carries no profile sections.
func decodeProfiles(byKind map[uint32][]byte, ids []graph.UserID) (*ProfileTable, error) {
	if _, ok := byKind[SectionAttrNames]; !ok {
		return nil, nil
	}
	n := len(ids)
	attrNames, used, err := readStringList(byKind[SectionAttrNames], "attribute names")
	if err != nil {
		return nil, err
	}
	if used != len(byKind[SectionAttrNames]) {
		return nil, corruptf("attribute names: %d trailing bytes", len(byKind[SectionAttrNames])-used)
	}
	if len(attrNames) > maxSections {
		return nil, corruptf("%d attributes exceed the format limit %d", len(attrNames), maxSections)
	}
	itemNames, used, err := readStringList(byKind[SectionItemNames], "item names")
	if err != nil {
		return nil, err
	}
	if used != len(byKind[SectionItemNames]) {
		return nil, corruptf("item names: %d trailing bytes", len(byKind[SectionItemNames])-used)
	}
	if len(itemNames) > maxItems {
		return nil, corruptf("%d items exceed the %d-bit visibility byte", len(itemNames), maxItems)
	}

	dictBytes := byKind[SectionAttrDicts]
	dicts := make([][]string, len(attrNames))
	pos := 0
	for a := range dicts {
		d, used, err := readStringList(dictBytes[pos:], fmt.Sprintf("dictionary of %q", attrNames[a]))
		if err != nil {
			return nil, err
		}
		if len(d) == 0 || d[0] != "" {
			return nil, corruptf("dictionary of %q: entry 0 must be the empty string", attrNames[a])
		}
		dicts[a] = d
		pos += used
	}
	if pos != len(dictBytes) {
		return nil, corruptf("attribute dictionaries: %d trailing bytes", len(dictBytes)-pos)
	}

	if got, want := uint64(len(byKind[SectionAttrVals])), uint64(len(attrNames))*uint64(n)*4; got != want {
		return nil, corruptf("attribute values section %d bytes, want %d", got, want)
	}
	vals := uint32sOf(byKind[SectionAttrVals])
	vis := byKind[SectionVis]
	if len(vis) != n {
		return nil, corruptf("visibility section %d bytes, want one per node (%d)", len(vis), n)
	}
	allowed := byte(visPresent) | byte((1<<uint(len(itemNames)))-1)
	for i, v := range vis {
		if v&^allowed != 0 {
			return nil, corruptf("visibility byte of node %d sets undefined bits %#x", ids[i], v&^allowed)
		}
		if v&visPresent == 0 && v != 0 {
			return nil, corruptf("node %d has visibility bits but no profile", ids[i])
		}
	}
	for a := range dicts {
		dlen := uint32(len(dicts[a]))
		col := vals[a*n : (a+1)*n]
		for i, v := range col {
			if v >= dlen {
				return nil, corruptf("node %d: %q value index %d outside dictionary of %d", ids[i], attrNames[a], v, dlen)
			}
			if vis[i]&visPresent == 0 && v != 0 {
				return nil, corruptf("node %d has attribute values but no profile", ids[i])
			}
		}
	}

	t := &ProfileTable{
		ids:   ids,
		attrs: make([]profile.Attribute, len(attrNames)),
		items: make([]profile.Item, len(itemNames)),
		dicts: dicts,
		vals:  vals,
		vis:   vis,
	}
	for i, s := range attrNames {
		t.attrs[i] = profile.Attribute(s)
	}
	for i, s := range itemNames {
		t.items[i] = profile.Item(s)
	}
	return t, nil
}

// idsOf views an 8-aligned byte slice as node ids without copying.
func idsOf(b []byte) []graph.UserID {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*graph.UserID)(unsafe.Pointer(&b[0])), len(b)/8)
}
