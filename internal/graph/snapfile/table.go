package snapfile

import (
	"fmt"
	"sort"

	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

// ProfileTable is the interned, columnar profile encoding a snapshot
// file carries: one string dictionary per attribute, one uint32
// dictionary index per (attribute, node), and one visibility byte per
// node. It materializes *profile.Profile values on demand — an opened
// multi-gigabyte file never decodes profiles it is not asked about —
// and a table read back from a file keeps its columns aliased to the
// mapped pages.
type ProfileTable struct {
	ids   []graph.UserID // ascending, aliases the snapshot's node ids
	attrs []profile.Attribute
	items []profile.Item
	dicts [][]string // per attribute; entry 0 is always ""
	vals  []uint32   // column-major: attrs[a] of node i at a*len(ids)+i
	vis   []byte     // per node: visPresent | item bits
}

// Attributes returns the attribute columns the table stores, in file
// order. The slice is shared; do not modify.
func (t *ProfileTable) Attributes() []profile.Attribute { return t.attrs }

// Items returns the benefit items whose visibility the table stores,
// in file order (= bit order). The slice is shared; do not modify.
func (t *ProfileTable) Items() []profile.Item { return t.items }

// Len returns the number of node rows (present or not).
func (t *ProfileTable) Len() int { return len(t.ids) }

// NumProfiles counts the rows that carry a profile.
func (t *ProfileTable) NumProfiles() int {
	n := 0
	for _, v := range t.vis {
		if v&visPresent != 0 {
			n++
		}
	}
	return n
}

// ProfileAt materializes the profile of the node at dense index i, or
// nil when that node has none. Each call builds a fresh Profile.
func (t *ProfileTable) ProfileAt(i int) *profile.Profile {
	if i < 0 || i >= len(t.ids) || t.vis[i]&visPresent == 0 {
		return nil
	}
	p := profile.NewProfile(t.ids[i])
	n := len(t.ids)
	for a, attr := range t.attrs {
		if v := t.dicts[a][t.vals[a*n+i]]; v != "" {
			p.Attrs[attr] = v
		}
	}
	for j, item := range t.items {
		if t.vis[i]&(1<<uint(j)) != 0 {
			p.Visible[item] = true
		}
	}
	return p
}

// Get materializes the profile of the given user via binary search
// over the id column, or nil when the user is absent or has no
// profile.
func (t *ProfileTable) Get(u graph.UserID) *profile.Profile {
	j := sort.Search(len(t.ids), func(k int) bool { return t.ids[k] >= u })
	if j >= len(t.ids) || t.ids[j] != u {
		return nil
	}
	return t.ProfileAt(j)
}

// Store wraps the table as a lazy profile.Store: profiles materialize
// on first access and are cached, so the engine's read paths see one
// stable pointer per user while untouched rows stay encoded on the
// mapped pages.
func (t *ProfileTable) Store() *profile.Store {
	return profile.NewLazyStore(t.Get)
}

// TableBuilder assembles a ProfileTable for a fixed node universe.
// Attribute and item layout follow profile.AllAttributes and
// profile.Items, so two builders fed equivalent profiles produce
// byte-identical tables regardless of insertion order.
type TableBuilder struct {
	t       *ProfileTable
	attrPos map[profile.Attribute]int
	itemPos map[profile.Item]int
	intern  []map[string]uint32 // per attribute: value -> dictionary index
}

// NewTableBuilder returns a builder over the given ascending node ids
// (normally the snapshot's Nodes slice, which it aliases).
func NewTableBuilder(ids []graph.UserID) *TableBuilder {
	attrs := profile.AllAttributes()
	items := profile.Items()
	b := &TableBuilder{
		t: &ProfileTable{
			ids:   ids,
			attrs: attrs,
			items: items,
			dicts: make([][]string, len(attrs)),
			vals:  make([]uint32, len(attrs)*len(ids)),
			vis:   make([]byte, len(ids)),
		},
		attrPos: make(map[profile.Attribute]int, len(attrs)),
		itemPos: make(map[profile.Item]int, len(items)),
		intern:  make([]map[string]uint32, len(attrs)),
	}
	for i, a := range attrs {
		b.attrPos[a] = i
		b.t.dicts[i] = []string{""}
		b.intern[i] = map[string]uint32{"": 0}
	}
	for i, it := range items {
		b.itemPos[it] = i
	}
	return b
}

// Add records one profile. The user must be a node of the universe and
// must not carry attributes or items outside the fixed layout.
func (b *TableBuilder) Add(p *profile.Profile) error {
	ids := b.t.ids
	j := sort.Search(len(ids), func(k int) bool { return ids[k] >= p.User })
	if j >= len(ids) || ids[j] != p.User {
		return fmt.Errorf("snapfile: profile for user %d: not a graph node", p.User)
	}
	vis := byte(visPresent)
	for item, on := range p.Visible {
		pos, ok := b.itemPos[item]
		if !ok {
			return fmt.Errorf("snapfile: profile for user %d: unknown item %q", p.User, item)
		}
		if on {
			vis |= 1 << uint(pos)
		}
	}
	n := len(ids)
	for attr, v := range p.Attrs {
		pos, ok := b.attrPos[attr]
		if !ok {
			return fmt.Errorf("snapfile: profile for user %d: unknown attribute %q", p.User, attr)
		}
		idx, ok := b.intern[pos][v]
		if !ok {
			idx = uint32(len(b.t.dicts[pos]))
			b.t.dicts[pos] = append(b.t.dicts[pos], v)
			b.intern[pos][v] = idx
		}
		b.t.vals[pos*n+j] = idx
	}
	b.t.vis[j] = vis
	return nil
}

// MarkPresentAt marks the node at dense index i as carrying a
// (possibly empty) profile. The index-addressed builder surface —
// MarkPresentAt, SetAttrAt, SetVisibleAt — exists for bulk producers
// (the scale generator) that would otherwise materialize millions of
// map-backed Profile values just to feed Add.
func (b *TableBuilder) MarkPresentAt(i int) error {
	if i < 0 || i >= len(b.t.ids) {
		return fmt.Errorf("snapfile: node index %d out of range", i)
	}
	b.t.vis[i] |= visPresent
	return nil
}

// SetAttrAt sets one attribute value for the node at dense index i,
// marking it present.
func (b *TableBuilder) SetAttrAt(i int, a profile.Attribute, v string) error {
	if i < 0 || i >= len(b.t.ids) {
		return fmt.Errorf("snapfile: node index %d out of range", i)
	}
	pos, ok := b.attrPos[a]
	if !ok {
		return fmt.Errorf("snapfile: unknown attribute %q", a)
	}
	idx, ok := b.intern[pos][v]
	if !ok {
		idx = uint32(len(b.t.dicts[pos]))
		b.t.dicts[pos] = append(b.t.dicts[pos], v)
		b.intern[pos][v] = idx
	}
	b.t.vals[pos*len(b.t.ids)+i] = idx
	b.t.vis[i] |= visPresent
	return nil
}

// SetVisibleAt sets one benefit-item visibility bit for the node at
// dense index i, marking it present.
func (b *TableBuilder) SetVisibleAt(i int, it profile.Item, on bool) error {
	if i < 0 || i >= len(b.t.ids) {
		return fmt.Errorf("snapfile: node index %d out of range", i)
	}
	pos, ok := b.itemPos[it]
	if !ok {
		return fmt.Errorf("snapfile: unknown item %q", it)
	}
	if on {
		b.t.vis[i] |= 1 << uint(pos)
	} else {
		b.t.vis[i] &^= 1 << uint(pos)
	}
	b.t.vis[i] |= visPresent
	return nil
}

// Table finalizes and returns the built table. Dictionaries are
// re-sorted into ascending value order (with "" pinned at 0) and every
// value column rewritten accordingly, so the encoding is canonical:
// independent of the order profiles were added.
func (b *TableBuilder) Table() *ProfileTable {
	t := b.t
	n := len(t.ids)
	for a := range t.dicts {
		dict := t.dicts[a]
		if len(dict) <= 2 {
			continue
		}
		sorted := append([]string(nil), dict[1:]...)
		sort.Strings(sorted)
		remap := make([]uint32, len(dict))
		for newIdx, v := range sorted {
			remap[b.intern[a][v]] = uint32(newIdx + 1)
		}
		t.dicts[a] = append([]string{""}, sorted...)
		col := t.vals[a*n : (a+1)*n]
		for i, old := range col {
			col[i] = remap[old]
		}
	}
	b.t = nil
	return t
}

// TableFromStore builds a table holding every profile the store has
// for the given ascending node ids; users without a profile become
// absent rows. It is the packing path from a JSON dataset to a .snap
// file.
func TableFromStore(ids []graph.UserID, store *profile.Store) (*ProfileTable, error) {
	b := NewTableBuilder(ids)
	for _, u := range ids {
		if p := store.Get(u); p != nil {
			if err := b.Add(p); err != nil {
				return nil, err
			}
		}
	}
	return b.Table(), nil
}
