//go:build !unix

package snapfile

import (
	"io"
	"os"
	"unsafe"
)

// mmapFile is the portable fallback: read the whole file into an
// 8-aligned heap buffer. Same semantics as the unix mapping minus the
// shared page cache; Mapped() reports false so tools can tell.
func mmapFile(f *os.File, size int64) (data []byte, unmap func() error, mapped bool, err error) {
	if size < 0 || size != int64(int(size)) {
		return nil, nil, false, os.ErrInvalid
	}
	arena := make([]int64, (size+7)/8)
	if size == 0 {
		return nil, func() error { return nil }, false, nil
	}
	buf := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(arena))), size)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, nil, false, err
	}
	return buf, func() error { return nil }, false, nil
}
