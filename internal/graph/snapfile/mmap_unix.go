//go:build unix

package snapfile

import (
	"os"
	"syscall"
)

// mmapFile maps the whole file read-only and shared, so every replica
// mapping the same .snap file serves it from one set of page-cache
// pages. Returns the mapping, its release function, and mapped=true.
func mmapFile(f *os.File, size int64) (data []byte, unmap func() error, mapped bool, err error) {
	if size == 0 {
		return nil, func() error { return nil }, true, nil
	}
	if size < 0 || size != int64(int(size)) {
		return nil, nil, false, syscall.EFBIG
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, false, err
	}
	return data, func() error { return syscall.Munmap(data) }, true, nil
}
