package graph

import "testing"

func TestClusteringCoefficient(t *testing.T) {
	g := triangle(t)
	for _, id := range []UserID{1, 2, 3} {
		if got := g.ClusteringCoefficient(id); got != 1 {
			t.Fatalf("triangle coefficient of %d = %g, want 1", id, got)
		}
	}
	// Star center: friends unconnected → 0.
	star := New()
	for _, f := range []UserID{2, 3, 4} {
		mustEdge(t, star, 1, f)
	}
	if got := star.ClusteringCoefficient(1); got != 0 {
		t.Fatalf("star coefficient = %g, want 0", got)
	}
	// Degree-1 node: 0 by definition.
	if got := star.ClusteringCoefficient(2); got != 0 {
		t.Fatalf("leaf coefficient = %g, want 0", got)
	}
	// Half-connected: 1 has friends {2,3,4}, only 2-3 connected → 1/3.
	mustEdge(t, star, 2, 3)
	if got := star.ClusteringCoefficient(1); got != 1.0/3 {
		t.Fatalf("coefficient = %g, want 1/3", got)
	}
}

func TestMeanClusteringCoefficient(t *testing.T) {
	g := triangle(t)
	if got := g.MeanClusteringCoefficient(); got != 1 {
		t.Fatalf("mean = %g, want 1", got)
	}
	if got := New().MeanClusteringCoefficient(); got != 0 {
		t.Fatalf("empty graph mean = %g, want 0", got)
	}
	// Degree-1 nodes are excluded, not counted as zero.
	g2 := New()
	mustEdge(t, g2, 1, 2)
	if got := g2.MeanClusteringCoefficient(); got != 0 {
		t.Fatalf("pair mean = %g, want 0 (no qualifying nodes)", got)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New()
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 10, 11)
	g.AddNode(99)
	sizes := g.ConnectedComponents()
	if len(sizes) != 3 {
		t.Fatalf("components = %v", sizes)
	}
	if sizes[0] != 3 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("component sizes = %v, want [3 2 1]", sizes)
	}
	if got := New().ConnectedComponents(); len(got) != 0 {
		t.Fatalf("empty graph components = %v", got)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := New()
	// Degrees: node 1 has 3, nodes 2-4 have 1, node 99 has 0.
	for _, f := range []UserID{2, 3, 4} {
		mustEdge(t, g, 1, f)
	}
	g.AddNode(99)
	h := g.DegreeHistogram([]int{0, 1, 2})
	// Buckets: [0], [1], [2], overflow(>2).
	if h[0] != 1 || h[1] != 3 || h[2] != 0 || h[3] != 1 {
		t.Fatalf("histogram = %v, want [1 3 0 1]", h)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != g.NumNodes() {
		t.Fatalf("histogram total %d != nodes %d", total, g.NumNodes())
	}
}
