package graph

import (
	"encoding/json"
	"testing"
)

// FuzzUnmarshalJSON: arbitrary bytes never panic the decoder, and any
// accepted graph satisfies the structural invariants (edge symmetry,
// no self loops, consistent edge count).
func FuzzUnmarshalJSON(f *testing.F) {
	f.Add([]byte(`{"nodes":[1,2],"edges":[[1,2]]}`))
	f.Add([]byte(`{"nodes":[],"edges":[]}`))
	f.Add([]byte(`{"nodes":[5],"edges":[[5,5]]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"nodes":[1,1,1],"edges":[[1,2],[2,1]]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return // rejected input is fine
		}
		count := 0
		for _, a := range g.Nodes() {
			for _, b := range g.Friends(a) {
				if a == b {
					t.Fatal("self loop survived decoding")
				}
				if !g.HasEdge(b, a) {
					t.Fatal("asymmetric edge after decoding")
				}
				if a < b {
					count++
				}
			}
		}
		if count != g.NumEdges() {
			t.Fatalf("edge count %d, canonical pairs %d", g.NumEdges(), count)
		}
	})
}
