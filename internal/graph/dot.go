package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// DOTOptions customizes DOT (Graphviz) export.
type DOTOptions struct {
	// Name is the graph name (default "sightrisk").
	Name string
	// Highlight maps nodes to fill colors (e.g. risk-label colors);
	// highlighted nodes render filled.
	Highlight map[UserID]string
	// Label maps nodes to display labels; absent nodes show their id.
	Label map[UserID]string
	// MaxNodes truncates the export for very large graphs (0 = no
	// limit); truncation keeps the lowest ids and drops edges with
	// dropped endpoints.
	MaxNodes int
}

// WriteDOT exports the graph in Graphviz DOT format, deterministically
// (nodes and edges sorted by id), so neighborhoods and risk reports
// can be rendered with standard tooling.
func (g *Graph) WriteDOT(w io.Writer, opts DOTOptions) error {
	bw := bufio.NewWriter(w)
	name := opts.Name
	if name == "" {
		name = "sightrisk"
	}
	nodes := g.Nodes()
	if opts.MaxNodes > 0 && len(nodes) > opts.MaxNodes {
		nodes = nodes[:opts.MaxNodes]
	}
	included := make(map[UserID]bool, len(nodes))
	for _, n := range nodes {
		included[n] = true
	}

	fmt.Fprintf(bw, "graph %q {\n", name)
	fmt.Fprintf(bw, "  node [shape=circle fontsize=10];\n")
	for _, n := range nodes {
		attrs := ""
		if l, ok := opts.Label[n]; ok {
			attrs += fmt.Sprintf(" label=%q", l)
		}
		if c, ok := opts.Highlight[n]; ok {
			attrs += fmt.Sprintf(" style=filled fillcolor=%q", c)
		}
		fmt.Fprintf(bw, "  n%d [%s];\n", n, trimSpaceLeft(attrs))
	}
	var edges [][2]UserID
	for _, a := range nodes {
		for _, b := range g.Friends(a) {
			if a < b && included[b] {
				edges = append(edges, [2]UserID{a, b})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		fmt.Fprintf(bw, "  n%d -- n%d;\n", e[0], e[1])
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

func trimSpaceLeft(s string) string {
	for len(s) > 0 && s[0] == ' ' {
		s = s[1:]
	}
	return s
}
