// Package advisor implements the applications the paper's conclusion
// (Section VI) envisions for risk labels: label-based access control,
// friendship-request triage, and privacy-settings suggestions.
//
// Everything here consumes the output of the risk pipeline (per-
// stranger labels plus similarity/benefit context) and produces
// actionable artifacts: an access policy mapping each profile item to
// the riskiest label still allowed to see it, a per-request
// recommendation, and a ranked list of settings changes.
package advisor

import (
	"fmt"
	"sort"

	"sightrisk/internal/benefit"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/profile"
)

// Sensitivity expresses how private the owner considers each of their
// own profile items, in [0,1] (1 = most sensitive). The benefit θ
// vector is a reasonable default: items the owner values seeing on
// others are items they consider significant.
type Sensitivity map[profile.Item]float64

// DefaultSensitivity derives sensitivities from the paper's Table III
// θ weights, min-max rescaled to [0,1] (the raw weights sit in a
// narrow band — 0.1321 to 0.155 — so plain proportional scaling would
// collapse every item into the same policy tier).
func DefaultSensitivity() Sensitivity {
	theta := benefit.PaperTheta()
	lo, hi := 1.0, 0.0
	for _, v := range theta {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	s := make(Sensitivity, len(theta))
	for item, v := range theta {
		if hi > lo {
			s[item] = (v - lo) / (hi - lo)
		} else {
			s[item] = 0.5
		}
	}
	return s
}

// Policy is a label-based access-control policy: for each profile item
// of the owner, the riskiest stranger label still allowed to see it.
// MaxLabel = NotRisky means "only strangers I consider not risky";
// MaxLabel = 0 means "no stranger at all" (friends only).
type Policy struct {
	// Rules maps each covered item to the riskiest admitted label.
	Rules map[profile.Item]label.Label
}

// Allows reports whether a stranger with label l may see item i under
// the policy. Items without a rule default to friends-only.
func (p Policy) Allows(i profile.Item, l label.Label) bool {
	maxL, ok := p.Rules[i]
	if !ok {
		return false
	}
	return l.Valid() && l <= maxL
}

// String renders the policy as one line per item.
func (p Policy) String() string {
	items := make([]profile.Item, 0, len(p.Rules))
	for i := range p.Rules {
		items = append(items, i)
	}
	sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
	out := ""
	for _, i := range items {
		switch p.Rules[i] {
		case 0:
			out += fmt.Sprintf("%-10s -> friends only\n", i)
		case label.NotRisky:
			out += fmt.Sprintf("%-10s -> not-risky strangers\n", i)
		case label.Risky:
			out += fmt.Sprintf("%-10s -> up to risky strangers\n", i)
		case label.VeryRisky:
			out += fmt.Sprintf("%-10s -> everyone\n", i)
		}
	}
	return out
}

// BuildPolicy derives a label-based access-control policy from the
// owner's item sensitivities: the more sensitive an item, the lower
// the riskiest label allowed to see it.
//
//	sensitivity > 0.8  → friends only
//	sensitivity > 0.55 → not-risky strangers only
//	sensitivity > 0.3  → up to risky strangers
//	otherwise          → everyone
func BuildPolicy(s Sensitivity) Policy {
	p := Policy{Rules: make(map[profile.Item]label.Label, len(s))}
	for item, v := range s {
		switch {
		case v > 0.8:
			p.Rules[item] = 0
		case v > 0.55:
			p.Rules[item] = label.NotRisky
		case v > 0.3:
			p.Rules[item] = label.Risky
		default:
			p.Rules[item] = label.VeryRisky
		}
	}
	return p
}

// Verdict is a friendship-request recommendation.
type Verdict string

// Recommendation outcomes.
const (
	Accept  Verdict = "accept"
	Review  Verdict = "review"
	Decline Verdict = "decline"
)

// RequestContext is everything known about an incoming friendship
// request from a stranger.
type RequestContext struct {
	// Stranger is the requesting user.
	Stranger graph.UserID
	// Label is the risk label the pipeline assigned.
	Label label.Label
	// NetworkSimilarity is NS(owner, stranger).
	NetworkSimilarity float64
	// OwnerLabeled marks a direct owner judgment (predictions carry
	// less certainty).
	OwnerLabeled bool
	// Fallback marks a label assigned by the graceful-degradation
	// fallback of an interrupted session rather than learned — the
	// weakest evidence tier, never strong enough to auto-decide.
	Fallback bool
}

// Recommendation is the advisor's answer to a friendship request.
type Recommendation struct {
	// Verdict is the accept/review/decline outcome.
	Verdict Verdict
	// Reason explains the verdict in one sentence.
	Reason string
}

// TriageRequest recommends how to handle a friendship request:
//
//   - very risky → decline (review instead when only predicted and the
//     stranger is genuinely close to the owner's circle — a likely
//     false positive worth a human look);
//   - risky → review;
//   - not risky → accept when meaningfully connected, review when the
//     request comes from a complete outsider (NS ≈ 0 contradicts a
//     benign label: the pipeline only scores second-hop contacts, so
//     an unconnected requester bypassed it).
//
// Fallback labels — assigned when the labeling session was interrupted
// and the pipeline degraded gracefully instead of learning — are never
// auto-decided: whatever the label says, the request goes to review.
func TriageRequest(ctx RequestContext) Recommendation {
	if ctx.Fallback {
		return Recommendation{Review, "label is an interrupted-session fallback, not learned — re-run the session or check manually"}
	}
	switch ctx.Label {
	case label.VeryRisky:
		if !ctx.OwnerLabeled && ctx.NetworkSimilarity >= 0.3 {
			return Recommendation{Review, "predicted very risky, but strongly connected to your circle — verify"}
		}
		return Recommendation{Decline, "labeled very risky"}
	case label.Risky:
		return Recommendation{Review, "labeled risky — check the profile before accepting"}
	case label.NotRisky:
		if ctx.NetworkSimilarity < 0.05 {
			return Recommendation{Review, "labeled not risky but barely connected — confirm you know them"}
		}
		return Recommendation{Accept, "labeled not risky and connected to your circle"}
	default:
		return Recommendation{Review, "no risk label available"}
	}
}

// Exposure quantifies how much of the owner's risky audience one
// profile item reaches under a given audience setting.
type Exposure struct {
	// Item is the profile item the row describes.
	Item profile.Item
	// RiskyReach is the number of risky or very-risky strangers that
	// would see the item if it were visible to friends of friends.
	RiskyReach int
	// VeryRiskyReach counts only the very-risky ones.
	VeryRiskyReach int
	// Sensitivity echoes the owner's sensitivity for the item.
	Sensitivity float64
	// Suggestion is a human-readable settings recommendation.
	Suggestion string
}

// SuggestSettings ranks the owner's profile items by how badly their
// friends-of-friends audience collides with the risk labels: an item
// both sensitive and reachable by many risky strangers should be
// restricted first. labels holds the pipeline's output for every
// stranger.
func SuggestSettings(labels map[graph.UserID]label.Label, sens Sensitivity) []Exposure {
	risky, very := 0, 0
	for _, l := range labels {
		switch l {
		case label.Risky:
			risky++
		case label.VeryRisky:
			very++
		}
	}
	out := make([]Exposure, 0, len(sens))
	for item, s := range sens {
		e := Exposure{
			Item:           item,
			RiskyReach:     risky + very,
			VeryRiskyReach: very,
			Sensitivity:    s,
		}
		score := s * float64(e.RiskyReach)
		switch {
		case score == 0:
			e.Suggestion = "no change needed"
		case s > 0.55 && very > 0:
			e.Suggestion = "restrict to friends only"
		case s > 0.3:
			e.Suggestion = "hide from friends of friends you have not cleared"
		default:
			e.Suggestion = "current audience acceptable"
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		si := out[i].Sensitivity * float64(out[i].RiskyReach)
		sj := out[j].Sensitivity * float64(out[j].RiskyReach)
		if si != sj {
			return si > sj
		}
		return out[i].Item < out[j].Item
	})
	return out
}
