package advisor

import (
	"testing"

	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/profile"
)

func enforcerWorld(t *testing.T) (*graph.Graph, graph.UserID) {
	t.Helper()
	g := graph.New()
	owner := graph.UserID(1)
	// friend 2; strangers 3 (not risky), 4 (risky), 5 (very risky);
	// 6 unlabeled stranger; 7 disconnected.
	if err := g.AddEdge(owner, 2); err != nil {
		t.Fatal(err)
	}
	for _, s := range []graph.UserID{3, 4, 5, 6} {
		if err := g.AddEdge(2, s); err != nil {
			t.Fatal(err)
		}
	}
	g.AddNode(7)
	return g, owner
}

func testPolicy() Policy {
	return BuildPolicy(Sensitivity{
		profile.ItemWall:  0.95, // friends only
		profile.ItemPhoto: 0.6,  // not-risky strangers
		profile.ItemWork:  0.4,  // up to risky
		profile.ItemEdu:   0.1,  // everyone labeled
	})
}

func newTestEnforcer(t *testing.T) *Enforcer {
	t.Helper()
	g, owner := enforcerWorld(t)
	labels := map[graph.UserID]label.Label{
		3: label.NotRisky, 4: label.Risky, 5: label.VeryRisky,
	}
	e, err := NewEnforcer(g, owner, labels, testPolicy())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEnforcerValidation(t *testing.T) {
	g, owner := enforcerWorld(t)
	if _, err := NewEnforcer(nil, owner, nil, testPolicy()); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewEnforcer(g, 999, nil, testPolicy()); err == nil {
		t.Fatal("unknown owner accepted")
	}
}

func TestCanSeeOwnerAndFriends(t *testing.T) {
	e := newTestEnforcer(t)
	for _, item := range profile.Items() {
		if d := e.CanSee(1, item); !d.Allow {
			t.Fatalf("owner denied %s: %s", item, d.Reason)
		}
		if d := e.CanSee(2, item); !d.Allow {
			t.Fatalf("friend denied %s: %s", item, d.Reason)
		}
	}
}

func TestCanSeeByLabel(t *testing.T) {
	e := newTestEnforcer(t)
	cases := []struct {
		viewer graph.UserID
		item   profile.Item
		allow  bool
	}{
		{3, profile.ItemWall, false}, // friends only
		{3, profile.ItemPhoto, true},
		{3, profile.ItemWork, true},
		{3, profile.ItemEdu, true},
		{4, profile.ItemPhoto, false}, // risky blocked from not-risky tier
		{4, profile.ItemWork, true},
		{5, profile.ItemWork, false},     // very risky blocked
		{5, profile.ItemEdu, true},       // open tier
		{3, profile.ItemHometown, false}, // no rule → friends only
	}
	for _, tt := range cases {
		d := e.CanSee(tt.viewer, tt.item)
		if d.Allow != tt.allow {
			t.Errorf("CanSee(%d, %s) = %v (%s), want %v", tt.viewer, tt.item, d.Allow, d.Reason, tt.allow)
		}
		if d.Reason == "" {
			t.Errorf("CanSee(%d, %s): empty reason", tt.viewer, tt.item)
		}
	}
}

func TestCanSeeUnlabeledDenied(t *testing.T) {
	e := newTestEnforcer(t)
	for _, viewer := range []graph.UserID{6, 7} {
		for _, item := range profile.Items() {
			if d := e.CanSee(viewer, item); d.Allow {
				t.Fatalf("unlabeled viewer %d allowed %s", viewer, item)
			}
		}
	}
}

func TestCanSeeInvalidLabelDenied(t *testing.T) {
	g, owner := enforcerWorld(t)
	e, err := NewEnforcer(g, owner, map[graph.UserID]label.Label{3: label.Label(9)}, testPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if d := e.CanSee(3, profile.ItemEdu); d.Allow {
		t.Fatal("invalid label admitted")
	}
}

func TestVisibleItems(t *testing.T) {
	e := newTestEnforcer(t)
	got := e.VisibleItems(3) // not risky: photo, work, education
	want := map[profile.Item]bool{profile.ItemPhoto: true, profile.ItemWork: true, profile.ItemEdu: true}
	if len(got) != len(want) {
		t.Fatalf("visible items = %v", got)
	}
	for _, item := range got {
		if !want[item] {
			t.Fatalf("unexpected visible item %s", item)
		}
	}
	if items := e.VisibleItems(7); len(items) != 0 {
		t.Fatalf("disconnected viewer sees %v", items)
	}
}

func TestAudience(t *testing.T) {
	e := newTestEnforcer(t)
	aud := e.Audience()
	// Wall: friends only → 0 of the labeled strangers.
	if aud[profile.ItemWall] != 0 {
		t.Fatalf("wall audience = %d", aud[profile.ItemWall])
	}
	// Photo: only the not-risky stranger.
	if aud[profile.ItemPhoto] != 1 {
		t.Fatalf("photo audience = %d", aud[profile.ItemPhoto])
	}
	// Work: not-risky + risky.
	if aud[profile.ItemWork] != 2 {
		t.Fatalf("work audience = %d", aud[profile.ItemWork])
	}
	// Education: all three labeled strangers.
	if aud[profile.ItemEdu] != 3 {
		t.Fatalf("education audience = %d", aud[profile.ItemEdu])
	}
}
