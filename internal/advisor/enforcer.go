package advisor

import (
	"fmt"

	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/profile"
)

// Decision is the outcome of an access check.
type Decision struct {
	// Allow reports whether access is granted.
	Allow bool
	// Reason explains the decision in one sentence.
	Reason string
}

// Enforcer answers "may viewer see item i of the owner's profile?"
// under label-based access control — the enforcement half of the
// paper's §VI vision. The rules, in order:
//
//  1. the owner always sees their own items;
//  2. direct friends always see everything (the paper's baseline
//     trust assumption: friends are authorized recipients);
//  3. strangers (second-hop contacts) are admitted per item when
//     their risk label passes the policy's bar;
//  4. everyone else — unlabeled strangers included — is denied:
//     no label, no access.
type Enforcer struct {
	g      *graph.Graph
	owner  graph.UserID
	labels map[graph.UserID]label.Label
	policy Policy
}

// NewEnforcer builds an enforcer from the owner's risk labels and an
// access policy.
func NewEnforcer(g *graph.Graph, owner graph.UserID, labels map[graph.UserID]label.Label, policy Policy) (*Enforcer, error) {
	if g == nil {
		return nil, fmt.Errorf("advisor: nil graph")
	}
	if !g.HasNode(owner) {
		return nil, fmt.Errorf("advisor: owner %d not in graph", owner)
	}
	return &Enforcer{g: g, owner: owner, labels: labels, policy: policy}, nil
}

// CanSee decides whether viewer may see the owner's item.
func (e *Enforcer) CanSee(viewer graph.UserID, item profile.Item) Decision {
	if viewer == e.owner {
		return Decision{true, "owner"}
	}
	if e.g.HasEdge(e.owner, viewer) {
		return Decision{true, "direct friend"}
	}
	l, ok := e.labels[viewer]
	if !ok {
		return Decision{false, "no risk label for this user"}
	}
	if !l.Valid() {
		return Decision{false, "invalid risk label"}
	}
	if e.policy.Allows(item, l) {
		return Decision{true, fmt.Sprintf("stranger labeled %s admitted by policy", l)}
	}
	return Decision{false, fmt.Sprintf("stranger labeled %s blocked by policy", l)}
}

// VisibleItems lists the owner items the viewer may see, in the
// canonical item order.
func (e *Enforcer) VisibleItems(viewer graph.UserID) []profile.Item {
	var out []profile.Item
	for _, item := range profile.Items() {
		if e.CanSee(viewer, item).Allow {
			out = append(out, item)
		}
	}
	return out
}

// Audience counts, per item, how many of the labeled strangers the
// policy admits — the number the owner sees when previewing a policy
// change.
func (e *Enforcer) Audience() map[profile.Item]int {
	out := make(map[profile.Item]int, 7)
	for _, item := range profile.Items() {
		n := 0
		for s := range e.labels {
			if e.CanSee(s, item).Allow {
				n++
			}
		}
		out[item] = n
	}
	return out
}
