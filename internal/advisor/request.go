package advisor

import (
	"fmt"

	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/profile"
)

// ItemRiskDelta is the change in one profile item's exposure if a
// friendship request were accepted: the policy-admitted stranger
// audience before and after the candidate edge is added, and how much
// of that audience the risk pipeline flagged.
type ItemRiskDelta struct {
	// Item is the profile item the row describes.
	Item profile.Item
	// MaxLabel is the policy rule for the item: the riskiest stranger
	// label still admitted (0 = friends only).
	MaxLabel label.Label
	// AudienceBefore counts the labeled strangers the policy admits to
	// the item today.
	AudienceBefore int
	// AudienceAfter counts the admitted strangers in the counterfactual
	// graph with the candidate edge accepted.
	AudienceAfter int
	// RiskyBefore counts the admitted strangers labeled risky or very
	// risky today (non-zero only for items whose rule admits them).
	RiskyBefore int
	// RiskyAfter is RiskyBefore evaluated on the counterfactual.
	RiskyAfter int
	// GainsAccess marks items the candidate cannot see today but would
	// see after acceptance: friends see every item, while a stranger is
	// admitted per item only when their label passes the policy bar.
	GainsAccess bool
}

// RequestAssessment is the full pre-acceptance evaluation of a
// friendship request: the triage verdict, the global before/after risk
// reach, and a per-item exposure delta, all derived from the owner's
// current run and the counterfactual run with the candidate edge added.
type RequestAssessment struct {
	// Verdict is the accept/review/decline recommendation.
	Verdict Verdict
	// Reason explains the verdict in one sentence.
	Reason string
	// Candidate is the requesting stranger.
	Candidate graph.UserID
	// Label is the candidate's current risk label (0 when the pipeline
	// never scored them — e.g. a requester outside the 2-hop view).
	Label label.Label
	// NetworkSimilarity is NS(owner, candidate) from the current run.
	NetworkSimilarity float64
	// NewStrangers counts users who enter the owner's 2-hop stranger
	// view through the accepted edge (the candidate's friends).
	NewStrangers int
	// LostStrangers counts users who leave the stranger view (at
	// minimum the candidate, who becomes a friend).
	LostStrangers int
	// RiskyBefore counts strangers labeled risky or very risky today.
	RiskyBefore int
	// RiskyAfter is RiskyBefore evaluated on the counterfactual.
	RiskyAfter int
	// VeryRiskyBefore counts only the very-risky strangers today.
	VeryRiskyBefore int
	// VeryRiskyAfter is VeryRiskyBefore on the counterfactual.
	VeryRiskyAfter int
	// Items holds the per-item exposure deltas in the canonical
	// profile.Items order, one row per item the policy covers.
	Items []ItemRiskDelta
}

// riskReach tallies a label map: strangers labeled at least risky, and
// the very-risky subset.
func riskReach(m map[graph.UserID]label.Label) (risky, very int) {
	for _, l := range m {
		switch l {
		case label.Risky:
			risky++
		case label.VeryRisky:
			risky++
			very++
		}
	}
	return risky, very
}

// itemReach tallies the strangers a policy admits to one item, and the
// at-least-risky subset of that audience.
func itemReach(m map[graph.UserID]label.Label, p Policy, item profile.Item) (audience, risky int) {
	for _, l := range m {
		if !p.Allows(item, l) {
			continue
		}
		audience++
		if l >= label.Risky {
			risky++
		}
	}
	return audience, risky
}

// AssessRequest evaluates a friendship request against the
// counterfactual run: before and after are the per-stranger label maps
// of the owner's current run and of the run with the candidate edge
// added (the candidate is absent from after — acceptance makes them a
// friend). The verdict starts from TriageRequest and is escalated from
// accept to review when the counterfactual shows the accepted edge
// pulling new very-risky strangers into the owner's 2-hop view. Item
// rows come out in the canonical profile.Items order, so the
// assessment is deterministic for fixed inputs.
func AssessRequest(ctx RequestContext, before, after map[graph.UserID]label.Label, policy Policy) RequestAssessment {
	riskyB, veryB := riskReach(before)
	riskyA, veryA := riskReach(after)

	a := RequestAssessment{
		Candidate:         ctx.Stranger,
		Label:             ctx.Label,
		NetworkSimilarity: ctx.NetworkSimilarity,
		RiskyBefore:       riskyB,
		RiskyAfter:        riskyA,
		VeryRiskyBefore:   veryB,
		VeryRiskyAfter:    veryA,
	}
	for s := range after {
		if _, ok := before[s]; !ok {
			a.NewStrangers++
		}
	}
	for s := range before {
		if _, ok := after[s]; !ok {
			a.LostStrangers++
		}
	}

	for _, item := range profile.Items() {
		maxL, ok := policy.Rules[item]
		if !ok {
			continue
		}
		audB, rB := itemReach(before, policy, item)
		audA, rA := itemReach(after, policy, item)
		a.Items = append(a.Items, ItemRiskDelta{
			Item:           item,
			MaxLabel:       maxL,
			AudienceBefore: audB,
			AudienceAfter:  audA,
			RiskyBefore:    rB,
			RiskyAfter:     rA,
			GainsAccess:    !policy.Allows(item, ctx.Label),
		})
	}

	rec := TriageRequest(ctx)
	if rec.Verdict == Accept && veryA > veryB {
		rec = Recommendation{Review, fmt.Sprintf(
			"labeled not risky, but accepting adds %d very-risky stranger(s) to your extended circle", veryA-veryB)}
	}
	a.Verdict, a.Reason = rec.Verdict, rec.Reason
	return a
}
