package advisor

import (
	"strings"
	"testing"

	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/profile"
)

func TestDefaultSensitivity(t *testing.T) {
	s := DefaultSensitivity()
	if len(s) != 7 {
		t.Fatalf("items = %d", len(s))
	}
	lo, hi := 1.0, 0.0
	for item, v := range s {
		if v < 0 || v > 1 {
			t.Fatalf("sensitivity[%s] = %g", item, v)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi != 1 || lo != 0 {
		t.Fatalf("min-max rescale broken: lo=%g hi=%g", lo, hi)
	}
	// Table III ordering: hometown is the top-weighted item.
	if s[profile.ItemHometown] != 1 {
		t.Fatalf("hometown sensitivity = %g, want 1", s[profile.ItemHometown])
	}
}

func TestBuildPolicyThresholds(t *testing.T) {
	s := Sensitivity{
		profile.ItemWall:     0.9, // friends only
		profile.ItemPhoto:    0.6, // not-risky only
		profile.ItemWork:     0.4, // up to risky
		profile.ItemLocation: 0.1, // everyone
	}
	p := BuildPolicy(s)
	if p.Rules[profile.ItemWall] != 0 {
		t.Fatalf("wall rule = %v", p.Rules[profile.ItemWall])
	}
	if p.Rules[profile.ItemPhoto] != label.NotRisky {
		t.Fatalf("photo rule = %v", p.Rules[profile.ItemPhoto])
	}
	if p.Rules[profile.ItemWork] != label.Risky {
		t.Fatalf("work rule = %v", p.Rules[profile.ItemWork])
	}
	if p.Rules[profile.ItemLocation] != label.VeryRisky {
		t.Fatalf("location rule = %v", p.Rules[profile.ItemLocation])
	}
}

func TestPolicyAllows(t *testing.T) {
	p := BuildPolicy(Sensitivity{
		profile.ItemWall:  0.9,
		profile.ItemPhoto: 0.6,
		profile.ItemWork:  0.4,
	})
	// Wall: nobody.
	for _, l := range label.All() {
		if p.Allows(profile.ItemWall, l) {
			t.Fatalf("wall visible to %v", l)
		}
	}
	// Photo: not-risky only.
	if !p.Allows(profile.ItemPhoto, label.NotRisky) {
		t.Fatal("photo hidden from not-risky")
	}
	if p.Allows(profile.ItemPhoto, label.Risky) {
		t.Fatal("photo visible to risky")
	}
	// Work: risky allowed, very risky not.
	if !p.Allows(profile.ItemWork, label.Risky) {
		t.Fatal("work hidden from risky")
	}
	if p.Allows(profile.ItemWork, label.VeryRisky) {
		t.Fatal("work visible to very risky")
	}
	// Unknown item: friends only.
	if p.Allows(profile.ItemHometown, label.NotRisky) {
		t.Fatal("unruled item visible")
	}
	// Invalid label never allowed.
	if p.Allows(profile.ItemWork, label.Label(9)) {
		t.Fatal("invalid label allowed")
	}
}

func TestPolicyString(t *testing.T) {
	p := BuildPolicy(Sensitivity{
		profile.ItemWall:     0.9,
		profile.ItemPhoto:    0.6,
		profile.ItemWork:     0.4,
		profile.ItemLocation: 0.1,
	})
	out := p.String()
	for _, want := range []string{"friends only", "not-risky strangers", "up to risky strangers", "everyone"} {
		if !strings.Contains(out, want) {
			t.Fatalf("policy string missing %q:\n%s", want, out)
		}
	}
}

func TestTriageRequest(t *testing.T) {
	cases := []struct {
		name string
		ctx  RequestContext
		want Verdict
	}{
		{"very risky owner-labeled", RequestContext{Label: label.VeryRisky, OwnerLabeled: true, NetworkSimilarity: 0.5}, Decline},
		{"very risky predicted, distant", RequestContext{Label: label.VeryRisky, NetworkSimilarity: 0.1}, Decline},
		{"very risky predicted, close", RequestContext{Label: label.VeryRisky, NetworkSimilarity: 0.4}, Review},
		{"risky", RequestContext{Label: label.Risky, NetworkSimilarity: 0.3}, Review},
		{"not risky connected", RequestContext{Label: label.NotRisky, NetworkSimilarity: 0.2}, Accept},
		{"not risky unconnected", RequestContext{Label: label.NotRisky, NetworkSimilarity: 0.0}, Review},
		{"unlabeled", RequestContext{}, Review},
	}
	for _, tt := range cases {
		got := TriageRequest(tt.ctx)
		if got.Verdict != tt.want {
			t.Errorf("%s: verdict = %s, want %s", tt.name, got.Verdict, tt.want)
		}
		if got.Reason == "" {
			t.Errorf("%s: empty reason", tt.name)
		}
	}
}

func TestSuggestSettings(t *testing.T) {
	labels := map[graph.UserID]label.Label{
		1: label.NotRisky, 2: label.Risky, 3: label.VeryRisky, 4: label.VeryRisky,
	}
	sens := Sensitivity{
		profile.ItemWall:  0.9,
		profile.ItemPhoto: 0.4,
		profile.ItemWork:  0.1,
	}
	out := SuggestSettings(labels, sens)
	if len(out) != 3 {
		t.Fatalf("exposures = %d", len(out))
	}
	// Ranked by sensitivity × risky reach: wall first.
	if out[0].Item != profile.ItemWall {
		t.Fatalf("top exposure = %s, want wall", out[0].Item)
	}
	if out[0].RiskyReach != 3 || out[0].VeryRiskyReach != 2 {
		t.Fatalf("reach = %d/%d, want 3/2", out[0].RiskyReach, out[0].VeryRiskyReach)
	}
	if !strings.Contains(out[0].Suggestion, "friends only") {
		t.Fatalf("wall suggestion = %q", out[0].Suggestion)
	}
	if out[2].Item != profile.ItemWork {
		t.Fatalf("bottom exposure = %s, want work", out[2].Item)
	}
}

func TestSuggestSettingsNoRisk(t *testing.T) {
	labels := map[graph.UserID]label.Label{1: label.NotRisky}
	out := SuggestSettings(labels, Sensitivity{profile.ItemWall: 0.9})
	if out[0].RiskyReach != 0 {
		t.Fatalf("reach = %d", out[0].RiskyReach)
	}
	if out[0].Suggestion != "no change needed" {
		t.Fatalf("suggestion = %q", out[0].Suggestion)
	}
}
