package prompt

import (
	"strings"
	"testing"

	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/profile"
)

func world(t *testing.T) (*graph.Graph, *profile.Store, graph.UserID, graph.UserID) {
	t.Helper()
	g := graph.New()
	owner, friend, stranger := graph.UserID(1), graph.UserID(2), graph.UserID(3)
	if err := g.AddEdge(owner, friend); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(friend, stranger); err != nil {
		t.Fatal(err)
	}
	store := profile.NewStore()
	p := profile.NewProfile(stranger)
	p.SetAttr(profile.AttrLastName, "Rossi-1")
	p.SetVisible(profile.ItemPhoto, true)
	store.Put(p)
	return g, store, owner, stranger
}

func TestParse(t *testing.T) {
	cases := map[string]struct {
		want label.Label
		ok   bool
	}{
		"1": {label.NotRisky, true}, "2": {label.Risky, true}, "3": {label.VeryRisky, true},
		"not risky": {label.NotRisky, true}, "RISKY": {label.Risky, true},
		"Very Risky": {label.VeryRisky, true}, "v": {label.VeryRisky, true},
		" 2 ": {label.Risky, true},
		"":    {0, false}, "4": {0, false}, "maybe": {0, false},
	}
	for in, want := range cases {
		got, ok := Parse(in)
		if ok != want.ok || got != want.want {
			t.Errorf("Parse(%q) = (%v, %v), want (%v, %v)", in, got, ok, want.want, want.ok)
		}
	}
}

func TestQuestionContainsContext(t *testing.T) {
	g, store, owner, stranger := world(t)
	a := New(strings.NewReader(""), &strings.Builder{}, g, store, owner, nil)
	q := a.Question(stranger)
	for _, want := range []string{"Rossi-1", "/100 similar", "/100 benefits", "[1] not risky"} {
		if !strings.Contains(q, want) {
			t.Fatalf("question missing %q:\n%s", want, q)
		}
	}
}

func TestLabelStrangerReadsAnswer(t *testing.T) {
	g, store, owner, stranger := world(t)
	var out strings.Builder
	a := New(strings.NewReader("3\n"), &out, g, store, owner, nil)
	if got := a.LabelStranger(stranger); got != label.VeryRisky {
		t.Fatalf("label = %v, want very risky", got)
	}
	if !strings.Contains(out.String(), "risky to establish a relationship") {
		t.Fatal("question not printed")
	}
}

func TestLabelStrangerRepromptsOnGarbage(t *testing.T) {
	g, store, owner, stranger := world(t)
	var out strings.Builder
	a := New(strings.NewReader("banana\n1\n"), &out, g, store, owner, nil)
	if got := a.LabelStranger(stranger); got != label.NotRisky {
		t.Fatalf("label = %v, want not risky after re-prompt", got)
	}
	if !strings.Contains(out.String(), "please answer") {
		t.Fatal("re-prompt not printed")
	}
}

func TestLabelStrangerFallsBackOnEOF(t *testing.T) {
	g, store, owner, stranger := world(t)
	a := New(strings.NewReader(""), &strings.Builder{}, g, store, owner, nil)
	a.Default = label.VeryRisky
	if got := a.LabelStranger(stranger); got != label.VeryRisky {
		t.Fatalf("label = %v, want configured default", got)
	}
	b := New(strings.NewReader(""), &strings.Builder{}, g, store, owner, nil)
	b.Default = 0 // invalid: falls back to Risky
	if got := b.LabelStranger(stranger); got != label.Risky {
		t.Fatalf("label = %v, want risky fallback", got)
	}
}

func TestLabelStrangerGivesUpAfterMaxAttempts(t *testing.T) {
	g, store, owner, stranger := world(t)
	a := New(strings.NewReader("x\ny\nz\nw\n1\n"), &strings.Builder{}, g, store, owner, nil)
	a.MaxAttempts = 2
	if got := a.LabelStranger(stranger); got != label.Risky {
		t.Fatalf("label = %v, want default after giving up", got)
	}
}
