package prompt

import "testing"

// FuzzParse: Parse never panics and only returns valid labels.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{"1", "2", "3", "not risky", "VERY RISKY", "", "banana", " 2 ", "99", "-1", "ريسكي", "\x00\x01"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		l, ok := Parse(in)
		if ok && !l.Valid() {
			t.Fatalf("Parse(%q) returned ok with invalid label %d", in, int(l))
		}
		if !ok && l != 0 {
			t.Fatalf("Parse(%q) returned !ok with non-zero label %d", in, int(l))
		}
	})
}
