// Package prompt implements an interactive owner annotator: it asks
// the paper's labeling question (Section III-A) on a terminal,
// presenting the similarity and benefit context the Sight extension
// showed ("You and stranger name are x/100 similar and he/she provides
// you y/100 benefits ..."), and reads back one of the three risk
// labels.
package prompt

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"sightrisk/internal/benefit"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/profile"
	"sightrisk/internal/similarity"
)

// Annotator prompts for labels over in/out. It implements
// active.Annotator.
type Annotator struct {
	in  *bufio.Reader
	out io.Writer

	g     *graph.Graph
	store *profile.Store
	owner graph.UserID
	theta benefit.Theta

	// Default is returned when input is exhausted or unparsable after
	// MaxAttempts; zero (invalid) makes LabelStranger fall back to
	// Risky.
	Default label.Label
	// MaxAttempts bounds re-prompts per stranger (default 3).
	MaxAttempts int
}

// New builds an interactive annotator for the owner. theta weights the
// benefit figure shown in the prompt (nil means the paper's Table III
// averages).
func New(in io.Reader, out io.Writer, g *graph.Graph, store *profile.Store, owner graph.UserID, theta benefit.Theta) *Annotator {
	if theta == nil {
		theta = benefit.PaperTheta()
	}
	return &Annotator{
		in:          bufio.NewReader(in),
		out:         out,
		g:           g,
		store:       store,
		owner:       owner,
		theta:       theta,
		Default:     label.Risky,
		MaxAttempts: 3,
	}
}

// Question renders the paper's labeling question for the stranger,
// with the similarity and benefit percentages filled in.
func (a *Annotator) Question(s graph.UserID) string {
	sim := 100 * similarity.NS(a.g, a.owner, s)
	ben := benefit.Percent(a.theta, a.store.Get(s))
	name := fmt.Sprintf("stranger %d", s)
	if p := a.store.Get(s); p != nil {
		if last := p.Attr(profile.AttrLastName); last != "" {
			name = fmt.Sprintf("stranger %d (%s)", s, last)
		}
	}
	return fmt.Sprintf(
		"You and %s are %.0f/100 similar and he/she provides you %.0f/100 benefits\n"+
			"in terms of information you are allowed to see now on his/her profile.\n"+
			"Do you think it might be risky to establish a relationship with %s?\n"+
			"(benefits might increase once you become friends, if privacy settings allow)\n"+
			"  [1] not risky   [2] risky   [3] very risky\n> ",
		name, sim, ben, name)
}

// LabelStranger implements active.Annotator: print the question, read
// an answer, re-prompt on garbage, fall back to Default (or Risky)
// when input runs out.
func (a *Annotator) LabelStranger(s graph.UserID) label.Label {
	attempts := a.MaxAttempts
	if attempts < 1 {
		attempts = 3
	}
	fmt.Fprint(a.out, a.Question(s))
	for try := 0; try < attempts; try++ {
		line, err := a.in.ReadString('\n')
		line = strings.TrimSpace(line)
		if l, ok := Parse(line); ok {
			return l
		}
		if err != nil { // EOF or read error: stop asking
			break
		}
		fmt.Fprintf(a.out, "please answer 1, 2 or 3\n> ")
	}
	if a.Default.Valid() {
		return a.Default
	}
	return label.Risky
}

// Parse interprets a user answer: the digits 1-3 or the label names
// (case-insensitive, with or without spaces).
func Parse(answer string) (label.Label, bool) {
	switch strings.ToLower(strings.ReplaceAll(strings.TrimSpace(answer), " ", "")) {
	case "1", "notrisky", "not", "n", "safe":
		return label.NotRisky, true
	case "2", "risky", "r":
		return label.Risky, true
	case "3", "veryrisky", "very", "v":
		return label.VeryRisky, true
	default:
		return 0, false
	}
}
