package ldp

import "math"

// Noise streams. Every random draw in a Report comes from a
// splitmix64 counter stream keyed by (seed, statistic, user dense
// index). Keying by user — not by draw order — gives the common
// random numbers property the benchmark leans on: given the same raw
// Seed, a user draws the *same* noise under ModeVisibilityAware and
// ModeAllEdge, so the all-edge baseline differs from the
// visibility-aware release only by the extra noise of the users VA
// left exact. It also makes the release independent of iteration
// order and of which users happen to be in the noising set. Sharing a
// raw seed across parameter combinations is strictly a benchmarking
// device: served releases derive their seed with SeedFor, which folds
// (ε, mode, generation) in, so no two distinct charged releases ever
// share a stream (see the Seed and SeedFor docs).

// Per-statistic stream identifiers. These are part of the release
// semantics (changing one changes every seeded report), so they are
// fixed constants, never iota over a reorderable list.
const (
	statEdges = 1
	statHist  = 2
	statTri   = 3
	stat2Star = 4
	stat3Star = 5
	statVis   = 6
)

// splitmix64 is the finalizer of Vigna's SplitMix64 generator: a
// bijective avalanche mix. Used both to fold keys and to advance
// streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// stream is a tiny counter-based PRNG: state advances by the SplitMix64
// increment, output is the SplitMix64 finalizer. Each (seed, stat,
// user) triple owns an independent stream.
type stream struct{ s uint64 }

// newStream derives the stream for one user's report on one statistic.
func newStream(seed Seed, stat uint64, user int32) stream {
	s := splitmix64(uint64(seed) ^ 0xa076_1d64_78bd_642f)
	s = splitmix64(s ^ stat)
	s = splitmix64(s ^ uint64(uint32(user)))
	return stream{s: s}
}

// next returns the next 64 uniform bits.
func (st *stream) next() uint64 {
	st.s += 0x9e3779b97f4a7c15
	z := st.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// uniform returns a double in the open interval (0, 1): 53 uniform
// bits offset by half an ulp, so 0 and 1 are unreachable and the
// Laplace inverse CDF below never sees log(0).
func (st *stream) uniform() float64 {
	return (float64(st.next()>>11) + 0.5) / (1 << 53)
}

// laplace returns one Laplace(0, b) draw via the inverse CDF. b = 0
// (a statistic with zero sensitivity, e.g. k-stars on a degree-1
// graph) returns 0 without consuming a draw — there is nothing to
// hide, so there is nothing to randomize.
func (st *stream) laplace(b float64) float64 {
	if b == 0 {
		return 0
	}
	u := st.uniform() - 0.5
	if u < 0 {
		return b * math.Log(1+2*u)
	}
	return -b * math.Log(1-2*u)
}

// rrKeep reports whether a k-ary randomized responder keeps its true
// category (probability p = e^ε/(e^ε+B-1)) and, when it lies, which of
// the B-1 other categories it reports (uniformly). truth and the
// return value are category indices in [0, B).
func (st *stream) rrCategory(truth, B int, eps float64) int {
	expE := math.Exp(eps)
	pKeep := expE / (expE + float64(B-1))
	if st.uniform() < pKeep {
		return truth
	}
	// Uniform over the B-1 categories != truth.
	k := int(st.uniform() * float64(B-1))
	if k >= B-1 { // guard the (0,1) upper edge
		k = B - 2
	}
	if k >= truth {
		k++
	}
	return k
}

// rrBit flips a binary report: the truth is kept with probability
// q = e^ε/(1+e^ε) and inverted otherwise (binary randomized response,
// Warner 1965).
func (st *stream) rrBit(truth bool, eps float64) bool {
	q := math.Exp(eps) / (1 + math.Exp(eps))
	if st.uniform() < q {
		return truth
	}
	return !truth
}

// krrDebias converts an observed k-ary RR category count into an
// unbiased estimate of the true count: n̂_b = (c_b − m·q) / (p − q)
// with p = e^ε/(e^ε+B-1), q = (1−p)/(B−1), over m responders.
func krrDebias(observed, m, B int, eps float64) float64 {
	if m == 0 {
		return 0
	}
	expE := math.Exp(eps)
	p := expE / (expE + float64(B-1))
	q := (1 - p) / float64(B-1)
	return (float64(observed) - float64(m)*q) / (p - q)
}

// krrSE is the standard error of krrDebias under the worst-case
// responder variance (each randomized report is Bernoulli in the
// bucket with variance at most 1/4): sqrt(m/4)/(p−q). An upper bound,
// reported so consumers can judge bucket estimates without knowing
// the true distribution.
func krrSE(m, B int, eps float64) float64 {
	if m == 0 {
		return 0
	}
	expE := math.Exp(eps)
	p := expE / (expE + float64(B-1))
	q := (1 - p) / float64(B-1)
	return math.Sqrt(float64(m)/4) / (p - q)
}

// brrDebias converts an observed binary RR positive count into an
// unbiased estimate of the true positive count over m responders:
// n̂₁ = (c₁ − m(1−q)) / (2q − 1) with q = e^ε/(1+e^ε).
func brrDebias(observed, m int, eps float64) float64 {
	if m == 0 {
		return 0
	}
	q := math.Exp(eps) / (1 + math.Exp(eps))
	return (float64(observed) - float64(m)*(1-q)) / (2*q - 1)
}

// brrSE is the worst-case standard error of brrDebias:
// sqrt(m/4)/(2q−1).
func brrSE(m int, eps float64) float64 {
	if m == 0 {
		return 0
	}
	q := math.Exp(eps) / (1 + math.Exp(eps))
	return math.Sqrt(float64(m)/4) / (2*q - 1)
}
