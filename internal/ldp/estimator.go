package ldp

import (
	"math"
	"math/bits"

	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

// DegreeBuckets are the fixed log-scale degree-histogram buckets every
// Report uses, in order: 0, 1, 2–3, 4–7, …, 128 and above. A fixed
// bucket universe is what lets private users answer the histogram with
// k-ary randomized response — the category set must be public and
// data-independent.
var DegreeBuckets = []string{"0", "1", "2-3", "4-7", "8-15", "16-31", "32-63", "64-127", "128+"}

// bucketOf maps a degree to its DegreeBuckets index.
func bucketOf(d int) int {
	if d <= 0 {
		return 0
	}
	b := bits.Len(uint(d)) // 1 for d=1, 2 for 2-3, ...
	if b > len(DegreeBuckets)-1 {
		b = len(DegreeBuckets) - 1
	}
	return b
}

// Estimate is one scalar statistic release: the (possibly noised)
// value, the analytic standard error of the noise that went into it
// (0 when exact), and how many users' reports were randomized.
type Estimate struct {
	// Value is the unbiased estimate. Noise can push it below zero or
	// past any structural bound; it is released un-clamped because
	// clamping would bias repeated-release averages.
	Value float64 `json:"value"`
	// SE is the standard error contributed by the mechanism's noise
	// (not sampling error — the graph is the whole population).
	SE float64 `json:"se"`
	// NoisedUsers is the number of users whose report was randomized.
	NoisedUsers int `json:"noised_users"`
}

// Bucket is one degree-histogram cell.
type Bucket struct {
	// Label names the degree range, e.g. "4-7" (see DegreeBuckets).
	Label string `json:"label"`
	// Count is the estimated number of users in the range.
	Count float64 `json:"count"`
}

// ItemRate is one visibility-rate release: the estimated fraction of
// profiled users whose benefit item is visible to non-friends — the
// statistic of the paper's Tables IV and V.
type ItemRate struct {
	// Item is the benefit item name (profile.Items order).
	Item string `json:"item"`
	// Rate is the estimated visible fraction over all profiled users.
	Rate float64 `json:"rate"`
	// SE is the standard error of the rate (0 when exact).
	SE float64 `json:"se"`
}

// Report is one full statistics release. Given equal (Estimator,
// Params, Seed) it is bit-for-bit identical across calls, processes
// and in-memory vs mmap'd snapshot builds — the reproducibility
// property the server's free-replay budget rule depends on.
type Report struct {
	// Mode is the noise regime the report was computed under.
	Mode Mode `json:"mode"`
	// Epsilon is the per-mechanism budget used (omitted when exact).
	Epsilon float64 `json:"epsilon,omitempty"`
	// Nodes is the graph's node count (public metadata).
	Nodes int `json:"nodes"`
	// Profiles is the number of users carrying a profile — the
	// denominator of every visibility rate.
	Profiles int `json:"profiles"`
	// PublicUsers is the number of users whose friend list is visible
	// to non-friends. Visibility policies are public metadata.
	PublicUsers int `json:"public_users"`
	// PublicEdges is the exact public-edge count (either endpoint
	// public); it is computable from public information alone.
	PublicEdges int `json:"public_edges"`
	// DegreeCap is the sensitivity cap used by the star mechanisms.
	// Derived from the data in this reproduction — see the caveat in
	// docs/ANALYTICS.md; production should fix it a priori.
	DegreeCap int `json:"degree_cap"`
	// TriangleCap bounds how many triangles one edge can close — the
	// Laplace sensitivity of the triangle mechanism (same caveat).
	TriangleCap int `json:"triangle_cap"`
	// EdgeCount estimates the total undirected edge count.
	EdgeCount Estimate `json:"edge_count"`
	// Triangles estimates the total triangle count.
	Triangles Estimate `json:"triangles"`
	// TwoStars estimates the number of 2-stars (paths of length 2).
	TwoStars Estimate `json:"two_stars"`
	// ThreeStars estimates the number of 3-stars (claws).
	ThreeStars Estimate `json:"three_stars"`
	// DegreeHist estimates the degree distribution over DegreeBuckets.
	DegreeHist []Bucket `json:"degree_hist"`
	// DegreeHistSE is the per-bucket worst-case standard error of the
	// randomized-response histogram (0 when exact).
	DegreeHistSE float64 `json:"degree_hist_se"`
	// Visibility estimates the per-item visibility rates.
	Visibility []ItemRate `json:"visibility"`
}

// Estimator precomputes, from one frozen snapshot and its profiles,
// everything a Report needs: per-user degrees split into public and
// private incident edges, per-user triangle counts split the same way,
// visibility bits, and the sensitivity caps. Building it costs one
// triangle enumeration (O(Σ_(u,v)∈E min(d_u, d_v)) merge
// intersections); every Report afterwards is a single cheap pass that
// only draws noise, so a server can cache one Estimator per dataset
// generation and serve releases from it.
//
// An Estimator is immutable after construction and safe for
// unsynchronized concurrent use. It reads the snapshot only through
// the CSR dense-index surface, so a snapfile-mmap'd snapshot and an
// in-memory build of the same graph yield bit-identical reports.
type Estimator struct {
	n        int
	profiles int
	pubUsers int
	pubEdges int
	edges    int
	degCap   int
	triCap   int

	pub        []bool // friend list visible to non-friends
	hasProfile []bool
	visBits    []uint8 // item-visibility bitmask, profile.Items order
	deg        []int32
	pubDeg     []int32 // incident edges with either endpoint public
	tri        []int32 // triangles through the node
	triPub     []int32 // triangles whose three edges are all public
	noisyTri   []bool  // must randomize the triangle report
}

// NewEstimator builds the estimator for one frozen snapshot.
// profiles may be a lazy (snapfile-backed) store; users without a
// profile count as private and carry no visibility bits.
func NewEstimator(snap *graph.Snapshot, profiles *profile.Store) *Estimator {
	n := snap.NumNodes()
	e := &Estimator{
		n:          n,
		edges:      snap.NumEdges(),
		pub:        make([]bool, n),
		hasProfile: make([]bool, n),
		visBits:    make([]uint8, n),
		deg:        make([]int32, n),
		pubDeg:     make([]int32, n),
		tri:        make([]int32, n),
		triPub:     make([]int32, n),
		noisyTri:   make([]bool, n),
	}
	items := profile.Items()
	for i, id := range snap.Nodes() {
		p := profiles.Get(id)
		if p == nil {
			continue
		}
		e.hasProfile[i] = true
		e.profiles++
		var b uint8
		for k, it := range items {
			if p.IsVisible(it) {
				b |= 1 << k
			}
		}
		e.visBits[i] = b
		if p.IsVisible(profile.ItemFriend) {
			e.pub[i] = true
			e.pubUsers++
		}
	}

	// Degrees, their public split, and the triangle-noising set: a
	// user must randomize the triangle report unless they are public
	// AND at most one neighbor is private — only a pair of private
	// neighbors can close a private triangle through a public node,
	// and a private node's own incident edges are already private.
	// Both conditions read only visibility policies and public friend
	// lists, so the noising set itself leaks nothing.
	pubEdgeEnds := 0
	for i := 0; i < n; i++ {
		row := snap.FriendIndexesAt(int32(i))
		e.deg[i] = int32(len(row))
		if len(row) > e.degCap {
			e.degCap = len(row)
		}
		privNbrs := 0
		for _, j := range row {
			if !e.pub[j] {
				privNbrs++
			}
		}
		if e.pub[i] {
			e.pubDeg[i] = int32(len(row))
			e.noisyTri[i] = privNbrs >= 2
		} else {
			e.pubDeg[i] = int32(len(row) - privNbrs)
			e.noisyTri[i] = true
		}
		pubEdgeEnds += int(e.pubDeg[i])
	}
	e.pubEdges = pubEdgeEnds / 2

	// Canonical triangle enumeration (i < j < k) by merge-intersecting
	// sorted dense-index rows, tracking per-edge triangle support for
	// the triangle sensitivity cap. A triangle's three edges are all
	// public iff at least two of its corners are public.
	_, offsets, _, _ := snap.CSR()
	support := make([]int32, 0)
	if e.edges > 0 {
		support = make([]int32, 2*e.edges)
	}
	for i := 0; i < n; i++ {
		ri := snap.FriendIndexesAt(int32(i))
		for ji, j := range ri {
			if j <= int32(i) {
				continue
			}
			rj := snap.FriendIndexesAt(j)
			a, b := 0, 0
			for a < len(ri) && b < len(rj) {
				switch {
				case ri[a] < rj[b]:
					a++
				case ri[a] > rj[b]:
					b++
				default:
					if k := ri[a]; k > j {
						e.tri[i]++
						e.tri[j]++
						e.tri[k]++
						pubCorners := 0
						if e.pub[i] {
							pubCorners++
						}
						if e.pub[j] {
							pubCorners++
						}
						if e.pub[k] {
							pubCorners++
						}
						if pubCorners >= 2 {
							e.triPub[i]++
							e.triPub[j]++
							e.triPub[k]++
						}
						support[int(offsets[i])+ji]++
						support[int(offsets[i])+a]++
						support[int(offsets[j])+b]++
					}
					a++
					b++
				}
			}
		}
	}
	e.triCap = 1
	for _, s := range support {
		if int(s) > e.triCap {
			e.triCap = int(s)
		}
	}
	return e
}

// Nodes returns the node count.
func (e *Estimator) Nodes() int { return e.n }

// PublicUsers returns the number of users with a visible friend list.
func (e *Estimator) PublicUsers() int { return e.pubUsers }

// PublicEdges returns the exact public-edge count.
func (e *Estimator) PublicEdges() int { return e.pubEdges }

// PrivateEdges returns the exact private-edge count. Library-only
// ground truth for benchmarks — it is never released over the wire.
func (e *Estimator) PrivateEdges() int { return e.edges - e.pubEdges }

// DegreeCap returns the sensitivity cap of the star mechanisms.
func (e *Estimator) DegreeCap() int { return e.degCap }

// TriangleCap returns the sensitivity cap of the triangle mechanism.
func (e *Estimator) TriangleCap() int { return e.triCap }

// Exact returns the true statistics with no noise — the benchmark's
// ground truth. Never served remotely.
func (e *Estimator) Exact() *Report {
	r, _ := e.Report(Params{Mode: ModeExact}, 0)
	return r
}

// choose2 is C(d, 2) in float64.
func choose2(d int) float64 { return float64(d) * float64(d-1) / 2 }

// choose3 is C(d, 3) in float64.
func choose3(d int) float64 { return float64(d) * float64(d-1) * float64(d-2) / 6 }

// Report computes one statistics release under the given parameters
// and seed. Equal inputs yield bit-identical reports; distinct seeds
// yield independent noise. The error return is reserved for invalid
// Params.
func (e *Estimator) Report(p Params, seed Seed) (*Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	mode := p.mode()
	r := &Report{
		Mode:        mode,
		Nodes:       e.n,
		Profiles:    e.profiles,
		PublicUsers: e.pubUsers,
		PublicEdges: e.pubEdges,
		DegreeCap:   e.degCap,
		TriangleCap: e.triCap,
	}
	if mode != ModeExact {
		r.Epsilon = p.Epsilon
	}
	e.edgeCount(r, mode, p.Epsilon, seed)
	e.degreeHist(r, mode, p.Epsilon, seed)
	e.triangles(r, mode, p.Epsilon, seed)
	e.stars(r, mode, p.Epsilon, seed)
	e.visibility(r, mode, p.Epsilon, seed)
	return r, nil
}

// edgeCount fills r.EdgeCount. Visibility-aware: the public edge count
// is exact; every private user reports their private-incident-edge
// count plus Laplace(1/ε) and the halved sum is added. All-edge: every
// user noises their full degree.
func (e *Estimator) edgeCount(r *Report, mode Mode, eps float64, seed Seed) {
	if mode == ModeExact {
		r.EdgeCount = Estimate{Value: float64(e.edges)}
		return
	}
	b := 1 / eps
	sum, m := 0.0, 0
	for i := 0; i < e.n; i++ {
		if mode == ModeVisibilityAware && e.pub[i] {
			continue
		}
		st := newStream(seed, statEdges, int32(i))
		truth := e.deg[i]
		if mode == ModeVisibilityAware {
			truth -= e.pubDeg[i]
		}
		sum += float64(truth) + st.laplace(b)
		m++
	}
	v := sum / 2
	if mode == ModeVisibilityAware {
		v += float64(e.pubEdges)
	}
	r.EdgeCount = Estimate{Value: v, SE: math.Sqrt(float64(m)*2*b*b) / 2, NoisedUsers: m}
}

// degreeHist fills r.DegreeHist. Public users contribute their exact
// degree bucket; private users answer with k-ary randomized response
// over the fixed bucket universe and the observed counts are debiased.
func (e *Estimator) degreeHist(r *Report, mode Mode, eps float64, seed Seed) {
	B := len(DegreeBuckets)
	exact := make([]int, B)
	observed := make([]int, B)
	m := 0
	for i := 0; i < e.n; i++ {
		truth := bucketOf(int(e.deg[i]))
		switch {
		case mode == ModeExact, mode == ModeVisibilityAware && e.pub[i]:
			exact[truth]++
		default:
			st := newStream(seed, statHist, int32(i))
			observed[st.rrCategory(truth, B, eps)]++
			m++
		}
	}
	r.DegreeHist = make([]Bucket, B)
	for b := 0; b < B; b++ {
		r.DegreeHist[b] = Bucket{
			Label: DegreeBuckets[b],
			Count: float64(exact[b]) + krrDebias(observed[b], m, B, eps),
		}
	}
	if m > 0 {
		r.DegreeHistSE = krrSE(m, B, eps)
	}
}

// triangles fills r.Triangles. The all-public triangle total is exact;
// users in the triangle-noising set (see NewEstimator) report their
// remaining triangle count plus Laplace(TriangleCap/ε), and the
// corner-summed remainder is divided by 3.
func (e *Estimator) triangles(r *Report, mode Mode, eps float64, seed Seed) {
	if mode == ModeExact {
		t := 0
		for i := 0; i < e.n; i++ {
			t += int(e.tri[i])
		}
		r.Triangles = Estimate{Value: float64(t) / 3}
		return
	}
	b := float64(e.triCap) / eps
	sum, m, exact := 0.0, 0, 0
	for i := 0; i < e.n; i++ {
		if mode == ModeVisibilityAware {
			exact += int(e.triPub[i])
			if !e.noisyTri[i] {
				continue
			}
		}
		st := newStream(seed, statTri, int32(i))
		truth := e.tri[i]
		if mode == ModeVisibilityAware {
			truth -= e.triPub[i]
		}
		sum += float64(truth) + st.laplace(b)
		m++
	}
	r.Triangles = Estimate{
		Value:       (float64(exact) + sum) / 3,
		SE:          math.Sqrt(float64(m)*2*b*b) / 3,
		NoisedUsers: m,
	}
}

// stars fills r.TwoStars and r.ThreeStars. The k-star count through
// public incident edges, Σ_v C(pubdeg_v, k), is exact; private users
// report their remainder C(d_v, k) − C(pubdeg_v, k) plus
// Laplace(C(DegreeCap−1, k−1)/ε).
func (e *Estimator) stars(r *Report, mode Mode, eps float64, seed Seed) {
	star := func(stat uint64, choose func(int) float64, delta float64) Estimate {
		if mode == ModeExact {
			t := 0.0
			for i := 0; i < e.n; i++ {
				t += choose(int(e.deg[i]))
			}
			return Estimate{Value: t}
		}
		b := delta / eps
		sum, m := 0.0, 0
		exact := 0.0
		for i := 0; i < e.n; i++ {
			if mode == ModeVisibilityAware {
				exact += choose(int(e.pubDeg[i]))
				if e.pub[i] {
					continue
				}
			}
			st := newStream(seed, stat, int32(i))
			truth := choose(int(e.deg[i]))
			if mode == ModeVisibilityAware {
				truth -= choose(int(e.pubDeg[i]))
			}
			sum += truth + st.laplace(b)
			m++
		}
		return Estimate{Value: exact + sum, SE: math.Sqrt(float64(m) * 2 * b * b), NoisedUsers: m}
	}
	d2 := float64(e.degCap - 1)
	if d2 < 0 {
		d2 = 0
	}
	r.TwoStars = star(stat2Star, choose2, d2)
	r.ThreeStars = star(stat3Star, choose3, choose2(e.degCap-1))
}

// visibility fills r.Visibility. Public users' item bits are exact;
// private users answer each item with binary randomized response and
// the positive counts are debiased. Users without a profile are
// outside the population (they have no visibility settings at all).
// Each item bit is an independent ε mechanism, so the protected unit
// is a single bit — the analog of a single edge in the graph
// mechanisms — not the whole 7-bit vector, which is 7ε-LDP by basic
// composition (docs/ANALYTICS.md §2).
func (e *Estimator) visibility(r *Report, mode Mode, eps float64, seed Seed) {
	items := profile.Items()
	exact := make([]int, len(items))
	observed := make([]int, len(items))
	m := 0
	for i := 0; i < e.n; i++ {
		if !e.hasProfile[i] {
			continue
		}
		switch {
		case mode == ModeExact, mode == ModeVisibilityAware && e.pub[i]:
			for k := range items {
				if e.visBits[i]&(1<<k) != 0 {
					exact[k]++
				}
			}
		default:
			st := newStream(seed, statVis, int32(i))
			for k := range items {
				if st.rrBit(e.visBits[i]&(1<<k) != 0, eps) {
					observed[k]++
				}
			}
			m++
		}
	}
	r.Visibility = make([]ItemRate, len(items))
	for k, it := range items {
		rate, se := 0.0, 0.0
		if e.profiles > 0 {
			rate = (float64(exact[k]) + brrDebias(observed[k], m, eps)) / float64(e.profiles)
			se = brrSE(m, eps) / float64(e.profiles)
		}
		r.Visibility[k] = ItemRate{Item: string(it), Rate: rate, SE: se}
	}
}
