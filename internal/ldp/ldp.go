// Package ldp estimates aggregate graph and visibility statistics
// under edge-level local differential privacy (edge-LDP) with
// visibility-aware noise.
//
// The paper's core observation is that privacy risk flows through
// visibility: what a stranger can see of a user's neighborhood is
// exactly what that user chose to expose. The same observation powers
// the estimators here. Every user is classified as *public* (their
// friend list is visible to non-friends, i.e. the "friend" benefit
// item of profile.Item is visible) or *private*. An edge is public
// when either endpoint is public — one exposed friend list suffices
// for a non-friend to observe the edge — and private only when both
// endpoints hide their lists.
//
// Public edges carry no secret, so their contribution to any statistic
// is reported exactly. Only the private remainder is protected by an
// ε-LDP mechanism (Laplace noise on counts, randomized response on
// categorical reports). Users whose local view contains no private
// contribution report exactly and consume no noise at all. The
// resulting estimators are unbiased with strictly smaller variance
// than the conventional all-edge baseline, which noises every user's
// report regardless of visibility; package riskbench's -ldp mode
// measures the gap across ε.
//
// Five statistic families are estimated, mirroring the aggregate
// tables of the source paper: edge count, degree distribution
// (log-scale histogram), triangle count, k-star counts (k = 2, 3) and
// the per-item visibility rates of Tables IV/V.
//
// All randomness is drawn from deterministic counter-based streams
// keyed by (seed, statistic, user). Given the same Seed — derived via
// SeedFor from the full release identity (tenant, dataset, epoch,
// dataset generation, ε, mode) — a Report is bit-for-bit
// reproducible, so repeated queries re-serve the *same* noisy release
// instead of drawing fresh noise. That is what makes repeated queries
// free under sequential composition: no new randomness, no new
// leakage, no extra ε spent. Conversely, releases that differ in ANY
// identity coordinate — a new epoch, a new dataset generation, a
// different ε or mode — draw independent noise; correlated noise
// across distinct charged releases would let them be combined to
// cancel the noise out (see docs/ANALYTICS.md §3).
package ldp

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Mode selects which noise regime a Report is computed under.
type Mode string

// The supported noise regimes.
const (
	// ModeVisibilityAware reports public contributions exactly and
	// noises only private ones — the package's reason to exist.
	ModeVisibilityAware Mode = "visibility_aware"
	// ModeAllEdge is the conventional edge-LDP baseline: every user
	// noises their full local view, visible or not. It satisfies the
	// same ε-LDP guarantee with strictly more variance; it exists for
	// the benchmark comparison.
	ModeAllEdge Mode = "all_edge"
	// ModeExact computes the true statistics with no noise. Library
	// only: the server never serves it, since exact private counts are
	// precisely what the mechanism exists to protect.
	ModeExact Mode = "exact"
)

// ParseMode maps a wire string to a Mode. The empty string selects
// ModeVisibilityAware. ModeExact is deliberately not parseable from
// the wire; it is reachable only by constructing Params directly.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", string(ModeVisibilityAware):
		return ModeVisibilityAware, nil
	case string(ModeAllEdge):
		return ModeAllEdge, nil
	default:
		return "", fmt.Errorf("ldp: unknown noise mode %q (want %q or %q)",
			s, ModeVisibilityAware, ModeAllEdge)
	}
}

// Mechanisms is the number of independent ε-LDP mechanisms one full
// Report invokes: edge count, degree histogram, triangles, 2-stars,
// 3-stars and the visibility-rate report. Under sequential composition
// a Report at per-mechanism budget ε therefore costs Mechanisms·ε of a
// tenant's total budget (see the server's ledger).
//
// The ε of each mechanism is per protected *unit*, and the unit is
// deliberately fine-grained: one edge for the graph mechanisms
// (edge-LDP, not node-LDP) and, analogously, one visibility item bit
// for the visibility report — each of a profile's items is randomized
// independently at the full ε, so the whole 7-bit vector is only
// 7ε-LDP by basic composition. A tenant needing whole-vector (or
// whole-neighborhood) protection at level ε must divide the requested
// ε accordingly; docs/ANALYTICS.md §2 spells this out.
const Mechanisms = 6

// Params configures one Report.
type Params struct {
	// Epsilon is the per-mechanism privacy budget. Required (finite,
	// > 0) for the noised modes; ignored by ModeExact.
	Epsilon float64
	// Mode selects the noise regime. Empty means ModeVisibilityAware.
	Mode Mode
}

// Validate reports the first problem with the parameters, or nil.
func (p Params) Validate() error {
	switch p.Mode {
	case ModeExact:
		return nil
	case "", ModeVisibilityAware, ModeAllEdge:
		if math.IsNaN(p.Epsilon) || math.IsInf(p.Epsilon, 0) || p.Epsilon <= 0 {
			return fmt.Errorf("ldp: epsilon must be a finite positive number, got %v", p.Epsilon)
		}
		return nil
	default:
		return fmt.Errorf("ldp: unknown mode %q", p.Mode)
	}
}

// mode returns the effective mode with the empty-string default
// applied.
func (p Params) mode() Mode {
	if p.Mode == "" {
		return ModeVisibilityAware
	}
	return p.Mode
}

// Seed keys every noise stream of one Report. Equal seeds yield
// bit-identical reports; distinct seeds yield independent noise.
//
// A raw Seed deliberately does NOT encode the Params it is used with,
// so a caller that passes one Seed to Report under two different
// Params gets common random numbers: the shared users draw the same
// standardized noise in both releases. That is a feature for paired
// benchmarking against ground truth the caller already holds
// (riskbench -ldp) and a privacy hazard everywhere else — two
// released values T + G/ε₁ and T + G/ε₂ with shared G solve exactly
// for the private T. Production releases must therefore derive seeds
// with SeedFor, which folds the parameters in.
type Seed uint64

// SeedFor derives the canonical seed for one release identity: the
// (tenant, dataset, epoch) coordinates chosen by the caller, the
// dataset's update generation, and the noise parameters (ε bits and
// normalized mode). FNV-1a over the NUL-separated names followed by
// the big-endian epoch, generation and float64 bits of ε, then the
// mode string.
//
// The same identity always maps to the same seed — the property the
// server's free-replay rule and the reproducibility audit rest on.
// Just as load-bearing is the converse: identities differing in any
// coordinate draw independent noise. ε and mode are folded in so two
// charged releases at the same epoch can never share standardized
// draws (shared draws would make the pair linearly solvable for the
// exact private counts, invalidating sequential-composition
// accounting); the generation is folded in so noise is re-drawn when
// the data changes (re-serving old noise against new truth would
// reveal v_new − v_old = T_new − T_old, the exact private delta).
func SeedFor(tenant, dataset string, epoch, generation uint64, p Params) Seed {
	h := fnv.New64a()
	h.Write([]byte(tenant))
	h.Write([]byte{0})
	h.Write([]byte(dataset))
	h.Write([]byte{0})
	var e [8]byte
	binary.BigEndian.PutUint64(e[:], epoch)
	h.Write(e[:])
	binary.BigEndian.PutUint64(e[:], generation)
	h.Write(e[:])
	binary.BigEndian.PutUint64(e[:], math.Float64bits(p.Epsilon))
	h.Write(e[:])
	h.Write([]byte(p.mode()))
	return Seed(h.Sum64())
}
