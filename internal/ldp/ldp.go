// Package ldp estimates aggregate graph and visibility statistics
// under edge-level local differential privacy (edge-LDP) with
// visibility-aware noise.
//
// The paper's core observation is that privacy risk flows through
// visibility: what a stranger can see of a user's neighborhood is
// exactly what that user chose to expose. The same observation powers
// the estimators here. Every user is classified as *public* (their
// friend list is visible to non-friends, i.e. the "friend" benefit
// item of profile.Item is visible) or *private*. An edge is public
// when either endpoint is public — one exposed friend list suffices
// for a non-friend to observe the edge — and private only when both
// endpoints hide their lists.
//
// Public edges carry no secret, so their contribution to any statistic
// is reported exactly. Only the private remainder is protected by an
// ε-LDP mechanism (Laplace noise on counts, randomized response on
// categorical reports). Users whose local view contains no private
// contribution report exactly and consume no noise at all. The
// resulting estimators are unbiased with strictly smaller variance
// than the conventional all-edge baseline, which noises every user's
// report regardless of visibility; package riskbench's -ldp mode
// measures the gap across ε.
//
// Five statistic families are estimated, mirroring the aggregate
// tables of the source paper: edge count, degree distribution
// (log-scale histogram), triangle count, k-star counts (k = 2, 3) and
// the per-item visibility rates of Tables IV/V.
//
// All randomness is drawn from deterministic counter-based streams
// keyed by (seed, statistic, user). Given the same Seed — derived from
// (tenant, dataset, epoch) via SeedFor — a Report is bit-for-bit
// reproducible, so repeated queries re-serve the *same* noisy release
// instead of drawing fresh noise. That is what makes repeated queries
// free under sequential composition: no new randomness, no new
// leakage, no extra ε spent (see docs/ANALYTICS.md).
package ldp

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Mode selects which noise regime a Report is computed under.
type Mode string

// The supported noise regimes.
const (
	// ModeVisibilityAware reports public contributions exactly and
	// noises only private ones — the package's reason to exist.
	ModeVisibilityAware Mode = "visibility_aware"
	// ModeAllEdge is the conventional edge-LDP baseline: every user
	// noises their full local view, visible or not. It satisfies the
	// same ε-LDP guarantee with strictly more variance; it exists for
	// the benchmark comparison.
	ModeAllEdge Mode = "all_edge"
	// ModeExact computes the true statistics with no noise. Library
	// only: the server never serves it, since exact private counts are
	// precisely what the mechanism exists to protect.
	ModeExact Mode = "exact"
)

// ParseMode maps a wire string to a Mode. The empty string selects
// ModeVisibilityAware. ModeExact is deliberately not parseable from
// the wire; it is reachable only by constructing Params directly.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", string(ModeVisibilityAware):
		return ModeVisibilityAware, nil
	case string(ModeAllEdge):
		return ModeAllEdge, nil
	default:
		return "", fmt.Errorf("ldp: unknown noise mode %q (want %q or %q)",
			s, ModeVisibilityAware, ModeAllEdge)
	}
}

// Mechanisms is the number of independent ε-LDP mechanisms one full
// Report invokes: edge count, degree histogram, triangles, 2-stars,
// 3-stars and the visibility-rate report. Under sequential composition
// a Report at per-mechanism budget ε therefore costs Mechanisms·ε of a
// tenant's total budget (see the server's ledger).
const Mechanisms = 6

// Params configures one Report.
type Params struct {
	// Epsilon is the per-mechanism privacy budget. Required (finite,
	// > 0) for the noised modes; ignored by ModeExact.
	Epsilon float64
	// Mode selects the noise regime. Empty means ModeVisibilityAware.
	Mode Mode
}

// Validate reports the first problem with the parameters, or nil.
func (p Params) Validate() error {
	switch p.Mode {
	case ModeExact:
		return nil
	case "", ModeVisibilityAware, ModeAllEdge:
		if math.IsNaN(p.Epsilon) || math.IsInf(p.Epsilon, 0) || p.Epsilon <= 0 {
			return fmt.Errorf("ldp: epsilon must be a finite positive number, got %v", p.Epsilon)
		}
		return nil
	default:
		return fmt.Errorf("ldp: unknown mode %q", p.Mode)
	}
}

// mode returns the effective mode with the empty-string default
// applied.
func (p Params) mode() Mode {
	if p.Mode == "" {
		return ModeVisibilityAware
	}
	return p.Mode
}

// Seed keys every noise stream of one Report. Equal seeds yield
// bit-identical reports; distinct seeds yield independent noise.
type Seed uint64

// SeedFor derives the canonical release seed for a (tenant, dataset,
// epoch) triple: FNV-1a over the NUL-separated tenant and dataset
// names followed by the big-endian epoch. The same triple always maps
// to the same seed — the property the server's free-replay rule and
// the reproducibility audit both rest on.
func SeedFor(tenant, dataset string, epoch uint64) Seed {
	h := fnv.New64a()
	h.Write([]byte(tenant))
	h.Write([]byte{0})
	h.Write([]byte(dataset))
	h.Write([]byte{0})
	var e [8]byte
	binary.BigEndian.PutUint64(e[:], epoch)
	h.Write(e[:])
	return Seed(h.Sum64())
}
