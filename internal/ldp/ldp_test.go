package ldp

import (
	"encoding/json"
	"math"
	"path/filepath"
	"testing"

	"sightrisk/internal/dataset"
	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
	"sightrisk/internal/synthetic"
)

// buildFixture assembles a graph and profile store from an edge list
// and a friend-list-visibility map. Every user in vis gets a profile;
// the remaining item bits follow a fixed per-user pattern so the
// visibility-rate estimators have non-trivial truth.
func buildFixture(t *testing.T, edges [][2]graph.UserID, vis map[graph.UserID]bool) (*graph.Snapshot, *profile.Store) {
	t.Helper()
	g := graph.New()
	for u, public := range vis {
		g.AddNode(u)
		_ = public
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", e[0], e[1], err)
		}
	}
	store := profile.NewStore()
	for u, public := range vis {
		p := profile.NewProfile(u)
		p.SetVisible(profile.ItemFriend, public)
		for k, it := range profile.Items() {
			if it == profile.ItemFriend {
				continue
			}
			p.SetVisible(it, (int64(u)+int64(k))%3 == 0)
		}
		store.Put(p)
	}
	return g.Snapshot(), store
}

// k4plusTail is K4 on {1,2,3,4} with a pendant edge 4–5: 7 edges,
// 4 triangles, 15 two-stars, 7 three-stars, degrees {3,3,3,4,1}.
func k4plusTail() [][2]graph.UserID {
	return [][2]graph.UserID{
		{1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}, {4, 5},
	}
}

func allPublic(ids ...graph.UserID) map[graph.UserID]bool {
	m := make(map[graph.UserID]bool)
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func TestExactKnownGraph(t *testing.T) {
	snap, store := buildFixture(t, k4plusTail(), allPublic(1, 2, 3, 4, 5))
	e := NewEstimator(snap, store)
	r := e.Exact()
	if r.EdgeCount.Value != 7 {
		t.Errorf("edge count = %v, want 7", r.EdgeCount.Value)
	}
	if r.Triangles.Value != 4 {
		t.Errorf("triangles = %v, want 4", r.Triangles.Value)
	}
	if r.TwoStars.Value != 15 {
		t.Errorf("two-stars = %v, want 15", r.TwoStars.Value)
	}
	if r.ThreeStars.Value != 7 {
		t.Errorf("three-stars = %v, want 7", r.ThreeStars.Value)
	}
	want := map[string]float64{"1": 1, "2-3": 3, "4-7": 1}
	for _, b := range r.DegreeHist {
		if b.Count != want[b.Label] {
			t.Errorf("bucket %q = %v, want %v", b.Label, b.Count, want[b.Label])
		}
	}
	if r.PublicEdges != 7 || r.PublicUsers != 5 || r.Profiles != 5 {
		t.Errorf("metadata = (%d pub edges, %d pub users, %d profiles), want (7, 5, 5)",
			r.PublicEdges, r.PublicUsers, r.Profiles)
	}
	// Friend item: all visible. Wall (k=0): visible iff u%3==0 → users 3: 1/5.
	for _, ir := range r.Visibility {
		if ir.Item == string(profile.ItemFriend) && ir.Rate != 1 {
			t.Errorf("friend visibility rate = %v, want 1", ir.Rate)
		}
		if ir.Item == string(profile.ItemWall) && ir.Rate != 0.2 {
			t.Errorf("wall visibility rate = %v, want 0.2", ir.Rate)
		}
	}
}

// TestAllPublicIsExact pins the visibility-aware theorem's base case:
// when every friend list is visible there are no private edges, no
// user randomizes anything, and the ε=0.5 release equals ground truth.
func TestAllPublicIsExact(t *testing.T) {
	snap, store := buildFixture(t, k4plusTail(), allPublic(1, 2, 3, 4, 5))
	e := NewEstimator(snap, store)
	exact := e.Exact()
	p := Params{Epsilon: 0.5, Mode: ModeVisibilityAware}
	noised, err := e.Report(p, SeedFor("t", "d", 3, 0, p))
	if err != nil {
		t.Fatal(err)
	}
	for name, pair := range map[string][2]Estimate{
		"edge_count":  {exact.EdgeCount, noised.EdgeCount},
		"triangles":   {exact.Triangles, noised.Triangles},
		"two_stars":   {exact.TwoStars, noised.TwoStars},
		"three_stars": {exact.ThreeStars, noised.ThreeStars},
	} {
		if pair[1].Value != pair[0].Value || pair[1].NoisedUsers != 0 {
			t.Errorf("%s: visibility-aware on all-public graph = %+v, want exact %v with 0 noised users",
				name, pair[1], pair[0].Value)
		}
	}
	for i, b := range noised.DegreeHist {
		if b.Count != exact.DegreeHist[i].Count {
			t.Errorf("bucket %q = %v, want exact %v", b.Label, b.Count, exact.DegreeHist[i].Count)
		}
	}
	for i, ir := range noised.Visibility {
		if ir.Rate != exact.Visibility[i].Rate {
			t.Errorf("visibility %q = %v, want exact %v", ir.Item, ir.Rate, exact.Visibility[i].Rate)
		}
	}
}

// studyFixture generates a small single-owner study population with
// the synthetic generator's realistic visibility mix (roughly half the
// users expose their friend list).
func studyFixture(t *testing.T, strangers int, seed int64) (*synthetic.Study, *graph.Snapshot) {
	t.Helper()
	cfg := synthetic.SmallStudyConfig()
	cfg.Seed = seed
	cfg.Owners = 1
	cfg.Ego.Strangers = strangers
	study, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return study, study.Graph.Snapshot()
}

func TestSeededReproducibility(t *testing.T) {
	study, snap := studyFixture(t, 300, 7)
	e := NewEstimator(snap, study.Profiles)
	p := Params{Epsilon: 1, Mode: ModeVisibilityAware}
	seed := SeedFor("tenant-a", "study", 42, 0, p)
	r1, err := e.Report(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Report(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if string(b1) != string(b2) {
		t.Fatalf("same seed produced different releases:\n%s\n%s", b1, b2)
	}
	r3, err := e.Report(p, SeedFor("tenant-a", "study", 43, 0, p))
	if err != nil {
		t.Fatal(err)
	}
	b3, _ := json.Marshal(r3)
	if string(b1) == string(b3) {
		t.Fatal("different epochs produced identical noise")
	}
}

// TestSeedForBindsReleaseIdentity: the seed must distinguish every
// coordinate of the release identity — tenant, dataset, epoch,
// generation, ε and mode — while normalizing the empty-string mode
// default. Distinct seeds per (ε, mode, generation) are the defense
// against the correlated-noise attacks of docs/ANALYTICS.md §3.
func TestSeedForBindsReleaseIdentity(t *testing.T) {
	p := Params{Epsilon: 1, Mode: ModeVisibilityAware}
	base := SeedFor("a", "b", 1, 0, p)
	for name, other := range map[string]Seed{
		"swapped names":  SeedFor("b", "a", 1, 0, p),
		"shifted epoch":  SeedFor("a", "b", 2, 0, p),
		"bumped gen":     SeedFor("a", "b", 1, 1, p),
		"different eps":  SeedFor("a", "b", 1, 0, Params{Epsilon: 2, Mode: ModeVisibilityAware}),
		"different mode": SeedFor("a", "b", 1, 0, Params{Epsilon: 1, Mode: ModeAllEdge}),
	} {
		if other == base {
			t.Errorf("SeedFor collides on %s", name)
		}
	}
	if SeedFor("a", "b", 1, 0, Params{Epsilon: 1}) != base {
		t.Error("SeedFor does not normalize the empty mode to visibility_aware")
	}
}

// TestDistinctEpsilonsDrawIndependentNoise pins the fix for the
// correlated-noise attack: when two charged releases at the same
// (tenant, dataset, epoch, generation) share their uniform draws, the
// Laplace noise is one standardized draw G scaled by 1/ε — so
// v₁ = T + N/ε₁ and v₂ = T + N/ε₂ solve exactly as
// T = (ε₁v₁ − ε₂v₂)/(ε₁ − ε₂), recovering the true private count at a
// ledger cost of only 6(ε₁+ε₂). With ε folded into the seed the
// reconstruction must miss.
func TestDistinctEpsilonsDrawIndependentNoise(t *testing.T) {
	study, snap := studyFixture(t, 250, 19)
	e := NewEstimator(snap, study.Profiles)
	truth := e.Exact().EdgeCount.Value
	p1 := Params{Epsilon: 1, Mode: ModeVisibilityAware}
	p2 := Params{Epsilon: 2, Mode: ModeVisibilityAware}
	r1, err := e.Report(p1, SeedFor("t", "d", 5, 0, p1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Report(p2, SeedFor("t", "d", 5, 0, p2))
	if err != nil {
		t.Fatal(err)
	}
	recon := (p1.Epsilon*r1.EdgeCount.Value - p2.Epsilon*r2.EdgeCount.Value) / (p1.Epsilon - p2.Epsilon)
	if math.Abs(recon-truth) < 1e-6 {
		t.Fatalf("two-ε linear reconstruction recovered the exact edge count %v — ε is not salted into the noise seed", truth)
	}
	// Sanity: had the draws been shared, the reconstruction would be
	// exact — verify by replaying both ε through one raw seed.
	raw := Seed(12345)
	c1, _ := e.Report(p1, raw)
	c2, _ := e.Report(p2, raw)
	shared := (p1.Epsilon*c1.EdgeCount.Value - p2.Epsilon*c2.EdgeCount.Value) / (p1.Epsilon - p2.Epsilon)
	if math.Abs(shared-truth) > 1e-6 {
		t.Fatalf("attack model check: shared-seed reconstruction = %v, want exact truth %v", shared, truth)
	}
}

// TestGenerationDrawsFreshNoise pins the cross-generation fix: the
// same (tenant, dataset, epoch, ε, mode) at a new dataset generation
// must draw independent noise — reusing the old draws against updated
// truth would reveal v_new − v_old = T_new − T_old, the exact private
// delta.
func TestGenerationDrawsFreshNoise(t *testing.T) {
	study, snap := studyFixture(t, 250, 23)
	e := NewEstimator(snap, study.Profiles)
	p := Params{Epsilon: 1, Mode: ModeVisibilityAware}
	r0, err := e.Report(p, SeedFor("t", "d", 1, 0, p))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e.Report(p, SeedFor("t", "d", 1, 1, p))
	if err != nil {
		t.Fatal(err)
	}
	if r0.EdgeCount.Value == r1.EdgeCount.Value {
		t.Fatal("generation bump reused the previous noise draws")
	}
}

// relErr is |est−truth| / max(1, |truth|).
func relErr(est, truth float64) float64 {
	d := math.Abs(truth)
	if d < 1 {
		d = 1
	}
	return math.Abs(est-truth) / d
}

// histL1 is the L1 distance between a released histogram and the
// exact one, normalized by the node count.
func histL1(got, want []Bucket, n int) float64 {
	s := 0.0
	for i := range got {
		s += math.Abs(got[i].Count - want[i].Count)
	}
	return s / float64(n)
}

// visL1 sums per-item absolute rate errors.
func visL1(got, want []ItemRate) float64 {
	s := 0.0
	for i := range got {
		s += math.Abs(got[i].Rate - want[i].Rate)
	}
	return s
}

// TestUnbiasedness averages each scalar estimator over many epochs and
// requires the mean within 5 standard errors of the mean of ground
// truth, in both noise modes.
func TestUnbiasedness(t *testing.T) {
	study, snap := studyFixture(t, 250, 11)
	e := NewEstimator(snap, study.Profiles)
	exact := e.Exact()
	const K = 300
	for _, mode := range []Mode{ModeVisibilityAware, ModeAllEdge} {
		sums := make(map[string]float64)
		var se map[string]float64
		for k := 0; k < K; k++ {
			p := Params{Epsilon: 1, Mode: mode}
			r, err := e.Report(p, SeedFor("t", "d", uint64(k), 0, p))
			if err != nil {
				t.Fatal(err)
			}
			sums["edge_count"] += r.EdgeCount.Value
			sums["triangles"] += r.Triangles.Value
			sums["two_stars"] += r.TwoStars.Value
			sums["three_stars"] += r.ThreeStars.Value
			if se == nil {
				se = map[string]float64{
					"edge_count":  r.EdgeCount.SE,
					"triangles":   r.Triangles.SE,
					"two_stars":   r.TwoStars.SE,
					"three_stars": r.ThreeStars.SE,
				}
			}
		}
		truth := map[string]float64{
			"edge_count":  exact.EdgeCount.Value,
			"triangles":   exact.Triangles.Value,
			"two_stars":   exact.TwoStars.Value,
			"three_stars": exact.ThreeStars.Value,
		}
		for name, want := range truth {
			mean := sums[name] / K
			tol := 5 * se[name] / math.Sqrt(K)
			if tol == 0 {
				tol = 1e-9
			}
			if math.Abs(mean-want) > tol {
				t.Errorf("%s mode %s: mean over %d epochs = %v, truth %v, tolerance %v",
					name, mode, K, mean, want, tol)
			}
		}
	}
}

// TestVisibilityAwareBeatsAllEdge measures per-statistic RMS relative
// error over many epochs and requires the visibility-aware release
// strictly more accurate than the all-edge baseline on every
// statistic — the package's headline claim, which riskbench -ldp
// re-verifies across the full ε sweep.
func TestVisibilityAwareBeatsAllEdge(t *testing.T) {
	study, snap := studyFixture(t, 250, 13)
	e := NewEstimator(snap, study.Profiles)
	if e.PublicUsers() == 0 || e.PublicUsers() == e.Nodes() {
		t.Fatalf("fixture needs a visibility mix, got %d/%d public", e.PublicUsers(), e.Nodes())
	}
	exact := e.Exact()
	const K = 200
	rms := map[Mode]map[string]float64{ModeVisibilityAware: {}, ModeAllEdge: {}}
	for mode, acc := range rms {
		for k := 0; k < K; k++ {
			// Deliberately one raw seed shared across both modes: the
			// common-random-numbers pairing that makes the strict
			// ordering deterministic (see noise.go). Served releases
			// never share seeds across modes — SeedFor folds the mode
			// in — but the library comparison may, since the test
			// already holds the ground truth.
			r, err := e.Report(Params{Epsilon: 1, Mode: mode}, Seed(1000+k))
			if err != nil {
				t.Fatal(err)
			}
			acc["edge_count"] += sq(relErr(r.EdgeCount.Value, exact.EdgeCount.Value))
			acc["triangles"] += sq(relErr(r.Triangles.Value, exact.Triangles.Value))
			acc["two_stars"] += sq(relErr(r.TwoStars.Value, exact.TwoStars.Value))
			acc["three_stars"] += sq(relErr(r.ThreeStars.Value, exact.ThreeStars.Value))
			acc["degree_hist"] += sq(histL1(r.DegreeHist, exact.DegreeHist, r.Nodes))
			acc["visibility"] += sq(visL1(r.Visibility, exact.Visibility))
		}
	}
	for stat, va := range rms[ModeVisibilityAware] {
		ae := rms[ModeAllEdge][stat]
		if !(va < ae) {
			t.Errorf("%s: visibility-aware RMS error %v not below all-edge %v",
				stat, math.Sqrt(va/K), math.Sqrt(ae/K))
		}
	}
}

func sq(x float64) float64 { return x * x }

// TestSnapfileEquivalence packs the study into a .snap container,
// reopens it mmap'd with lazy profiles, and requires the release
// bytes identical to the in-memory build — the property that lets
// /v1/stats serve packed datasets with no special casing.
func TestSnapfileEquivalence(t *testing.T) {
	study, snap := studyFixture(t, 300, 17)
	mem := NewEstimator(snap, study.Profiles)

	path := filepath.Join(t.TempDir(), "study.snap")
	if err := dataset.PackSnap(dataset.FromStudy(study, true), path); err != nil {
		t.Fatal(err)
	}
	rt, err := dataset.OpenRuntime(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if !rt.Mapped() {
		t.Fatal("runtime is not snapshot-backed")
	}
	mapped := NewEstimator(rt.Snapshot, rt.Profiles)

	for _, p := range []Params{
		{Mode: ModeExact},
		{Epsilon: 0.5, Mode: ModeVisibilityAware},
		{Epsilon: 2, Mode: ModeAllEdge},
	} {
		seed := SeedFor("tenant", "study", 9, 0, p)
		a, err := mem.Report(p, seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := mapped.Report(p, seed)
		if err != nil {
			t.Fatal(err)
		}
		ab, _ := json.Marshal(a)
		bb, _ := json.Marshal(b)
		if string(ab) != string(bb) {
			t.Errorf("mode %s: mmap'd release differs from in-memory:\n%s\n%s", p.Mode, ab, bb)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	for _, bad := range []Params{
		{},
		{Epsilon: 0},
		{Epsilon: -1, Mode: ModeVisibilityAware},
		{Epsilon: math.NaN(), Mode: ModeAllEdge},
		{Epsilon: math.Inf(1), Mode: ModeAllEdge},
		{Epsilon: 1, Mode: Mode("bogus")},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", bad)
		}
	}
	for _, good := range []Params{
		{Mode: ModeExact},
		{Epsilon: 0.5},
		{Epsilon: 4, Mode: ModeAllEdge},
	} {
		if err := good.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", good, err)
		}
	}
}

func TestParseMode(t *testing.T) {
	if m, err := ParseMode(""); err != nil || m != ModeVisibilityAware {
		t.Errorf(`ParseMode("") = (%v, %v), want visibility_aware`, m, err)
	}
	if m, err := ParseMode("all_edge"); err != nil || m != ModeAllEdge {
		t.Errorf(`ParseMode("all_edge") = (%v, %v)`, m, err)
	}
	for _, bad := range []string{"exact", "laplace", "va"} {
		if _, err := ParseMode(bad); err == nil {
			t.Errorf("ParseMode(%q) accepted", bad)
		}
	}
}
