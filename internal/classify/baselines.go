package classify

import (
	"fmt"
	"sort"

	"sightrisk/internal/label"
)

// Majority predicts the most frequent labeled class for every
// unlabeled item, ignoring the graph entirely. It is the weakest
// sensible baseline: any informative classifier must beat it.
type Majority struct{}

// Name implements Classifier.
func (Majority) Name() string { return "majority" }

// Predict implements Classifier.
func (Majority) Predict(weights [][]float64, labeled map[int]label.Label) ([]Prediction, error) {
	n := len(weights)
	if len(labeled) == 0 {
		return nil, fmt.Errorf("classify: majority needs at least one labeled item")
	}
	var counts [3]int
	for _, l := range labeled {
		counts[int(l)-1]++
	}
	maj := label.NotRisky
	best := -1
	for c := 0; c < 3; c++ {
		// >= breaks ties toward the riskier label, like Harmonic.
		if counts[c] >= best {
			best = counts[c]
			maj = label.Label(c + 1)
		}
	}
	total := float64(len(labeled))
	var scores [3]float64
	for c := 0; c < 3; c++ {
		scores[c] = float64(counts[c]) / total
	}
	expected := scores[0]*1 + scores[1]*2 + scores[2]*3

	out := make([]Prediction, n)
	for i := range out {
		if l, ok := labeled[i]; ok {
			out[i] = Prediction{Label: l, Scores: oneHot(l), Expected: float64(l)}
			continue
		}
		out[i] = Prediction{Label: maj, Scores: scores, Expected: expected}
	}
	return out, nil
}

// KNN predicts by weighted vote of the K most similar labeled items
// (by the pool's weight matrix). With fewer than K labeled items all
// of them vote.
type KNN struct {
	K int
}

// NewKNN returns a weighted kNN baseline with the given K (values < 1
// are treated as 3).
func NewKNN(k int) *KNN {
	if k < 1 {
		k = 3
	}
	return &KNN{K: k}
}

// Name implements Classifier.
func (k *KNN) Name() string { return fmt.Sprintf("knn%d", k.K) }

// Predict implements Classifier.
func (k *KNN) Predict(weights [][]float64, labeled map[int]label.Label) ([]Prediction, error) {
	n := len(weights)
	if len(labeled) == 0 {
		return nil, fmt.Errorf("classify: knn needs at least one labeled item")
	}
	type neighbor struct {
		idx int
		w   float64
	}
	labeledIdx := make([]int, 0, len(labeled))
	for idx := range labeled {
		labeledIdx = append(labeledIdx, idx)
	}
	sort.Ints(labeledIdx)

	out := make([]Prediction, n)
	for i := 0; i < n; i++ {
		if l, ok := labeled[i]; ok {
			out[i] = Prediction{Label: l, Scores: oneHot(l), Expected: float64(l)}
			continue
		}
		neigh := make([]neighbor, 0, len(labeledIdx))
		for _, j := range labeledIdx {
			neigh = append(neigh, neighbor{idx: j, w: weights[i][j]})
		}
		sort.Slice(neigh, func(a, b int) bool {
			if neigh[a].w != neigh[b].w {
				return neigh[a].w > neigh[b].w
			}
			return neigh[a].idx < neigh[b].idx
		})
		if len(neigh) > k.K {
			neigh = neigh[:k.K]
		}
		var scores [3]float64
		total := 0.0
		for _, nb := range neigh {
			w := nb.w
			if w <= 0 {
				w = 1e-9 // keep zero-similarity neighbors from dividing by zero
			}
			scores[int(labeled[nb.idx])-1] += w
			total += w
		}
		for c := 0; c < 3; c++ {
			scores[c] /= total
		}
		out[i] = Prediction{
			Label:    argmaxLabel(scores),
			Scores:   scores,
			Expected: scores[0]*1 + scores[1]*2 + scores[2]*3,
		}
	}
	return out, nil
}

func oneHot(l label.Label) [3]float64 {
	var s [3]float64
	s[int(l)-1] = 1
	return s
}
