package classify

import (
	"math/rand"
	"testing"

	"sightrisk/internal/label"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestMajorityPredictsMode(t *testing.T) {
	w := blockMatrix(3, 3, 0.5, 0.5)
	labeled := map[int]label.Label{
		0: label.NotRisky, 1: label.NotRisky, 2: label.VeryRisky,
	}
	preds, err := Majority{}.Predict(w, labeled)
	if err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 6; i++ {
		if preds[i].Label != label.NotRisky {
			t.Fatalf("node %d = %v, want majority not-risky", i, preds[i].Label)
		}
	}
	// Labeled nodes echo their labels.
	if preds[2].Label != label.VeryRisky {
		t.Fatalf("labeled node = %v", preds[2].Label)
	}
}

func TestMajorityTieBreaksRisky(t *testing.T) {
	w := blockMatrix(2, 2, 0.5, 0.5)
	labeled := map[int]label.Label{0: label.NotRisky, 1: label.VeryRisky}
	preds, err := Majority{}.Predict(w, labeled)
	if err != nil {
		t.Fatal(err)
	}
	if preds[2].Label != label.VeryRisky {
		t.Fatalf("tie resolved to %v, want very risky", preds[2].Label)
	}
}

func TestMajorityNoLabels(t *testing.T) {
	if _, err := (Majority{}).Predict(blockMatrix(2, 2, 0.5, 0.5), nil); err == nil {
		t.Fatal("majority accepted empty label set")
	}
}

func TestMajorityName(t *testing.T) {
	if (Majority{}).Name() != "majority" {
		t.Fatal("majority name wrong")
	}
}

func TestKNNPredictsByNearest(t *testing.T) {
	// Node 3 is close to the not-risky pair, node 4 to the very-risky
	// pair.
	w := [][]float64{
		{0, 0.9, 0.1, 0.9, 0.1},
		{0.9, 0, 0.1, 0.9, 0.1},
		{0.1, 0.1, 0, 0.1, 0.9},
		{0.9, 0.9, 0.1, 0, 0.1},
		{0.1, 0.1, 0.9, 0.1, 0},
	}
	labeled := map[int]label.Label{0: label.NotRisky, 1: label.NotRisky, 2: label.VeryRisky}
	preds, err := NewKNN(2).Predict(w, labeled)
	if err != nil {
		t.Fatal(err)
	}
	if preds[3].Label != label.NotRisky {
		t.Fatalf("node 3 = %v, want not risky", preds[3].Label)
	}
	if preds[4].Label != label.VeryRisky {
		t.Fatalf("node 4 = %v, want very risky", preds[4].Label)
	}
}

func TestKNNFewerLabeledThanK(t *testing.T) {
	w := blockMatrix(2, 2, 0.5, 0.5)
	labeled := map[int]label.Label{0: label.Risky}
	preds, err := NewKNN(10).Predict(w, labeled)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if preds[i].Label != label.Risky {
			t.Fatalf("node %d = %v, want risky", i, preds[i].Label)
		}
	}
}

func TestKNNZeroSimilarityNeighbors(t *testing.T) {
	// All-zero weights: kNN must not divide by zero and still predict.
	w := [][]float64{{0, 0}, {0, 0}}
	labeled := map[int]label.Label{0: label.Risky}
	preds, err := NewKNN(3).Predict(w, labeled)
	if err != nil {
		t.Fatal(err)
	}
	if preds[1].Label != label.Risky {
		t.Fatalf("node 1 = %v, want risky", preds[1].Label)
	}
}

func TestKNNNoLabels(t *testing.T) {
	if _, err := NewKNN(3).Predict(blockMatrix(2, 2, 0.5, 0.5), nil); err == nil {
		t.Fatal("knn accepted empty label set")
	}
}

func TestKNNKClamp(t *testing.T) {
	if NewKNN(0).K != 3 || NewKNN(-5).K != 3 {
		t.Fatal("non-positive K not clamped to 3")
	}
	if NewKNN(7).K != 7 {
		t.Fatal("valid K altered")
	}
	if NewKNN(7).Name() != "knn7" {
		t.Fatalf("name = %q", NewKNN(7).Name())
	}
}

func TestClassifiersAgreeOnSeparableData(t *testing.T) {
	// Clean two-clique structure with labels in both cliques: all
	// three classifiers should produce the same labeling.
	w := blockMatrix(6, 6, 0.9, 0.02)
	labeled := map[int]label.Label{
		0: label.NotRisky, 1: label.NotRisky,
		6: label.VeryRisky, 7: label.VeryRisky,
	}
	classifiers := []Classifier{NewHarmonic(), NewKNN(2)}
	for _, c := range classifiers {
		preds, err := c.Predict(w, labeled)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		for i := 2; i < 6; i++ {
			if preds[i].Label != label.NotRisky {
				t.Fatalf("%s node %d = %v, want not risky", c.Name(), i, preds[i].Label)
			}
		}
		for i := 8; i < 12; i++ {
			if preds[i].Label != label.VeryRisky {
				t.Fatalf("%s node %d = %v, want very risky", c.Name(), i, preds[i].Label)
			}
		}
	}
}
