package classify

import (
	"math"
	"testing"
	"testing/quick"

	"sightrisk/internal/label"
)

// blockMatrix builds a weight matrix with two cliques of size a and b:
// intra-clique weight hi, cross-clique weight lo.
func blockMatrix(a, b int, hi, lo float64) [][]float64 {
	n := a + b
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if i == j {
				continue
			}
			sameBlock := (i < a) == (j < a)
			if sameBlock {
				m[i][j] = hi
			} else {
				m[i][j] = lo
			}
		}
	}
	return m
}

func TestHarmonicTwoCliques(t *testing.T) {
	// One label per clique; every unlabeled node must adopt its
	// clique's label.
	w := blockMatrix(5, 5, 0.9, 0.05)
	labeled := map[int]label.Label{0: label.NotRisky, 5: label.VeryRisky}
	preds, err := NewHarmonic().Predict(w, labeled)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if preds[i].Label != label.NotRisky {
			t.Fatalf("node %d predicted %v, want not risky", i, preds[i].Label)
		}
	}
	for i := 5; i < 10; i++ {
		if preds[i].Label != label.VeryRisky {
			t.Fatalf("node %d predicted %v, want very risky", i, preds[i].Label)
		}
	}
}

func TestHarmonicClampsLabeled(t *testing.T) {
	w := blockMatrix(4, 4, 0.9, 0.9) // fully connected: everything mixes
	labeled := map[int]label.Label{0: label.NotRisky, 1: label.VeryRisky}
	preds, err := NewHarmonic().Predict(w, labeled)
	if err != nil {
		t.Fatal(err)
	}
	if preds[0].Label != label.NotRisky || preds[1].Label != label.VeryRisky {
		t.Fatal("labeled nodes not clamped")
	}
	if preds[0].Expected != 1 || preds[1].Expected != 3 {
		t.Fatalf("clamped expected values: %g, %g", preds[0].Expected, preds[1].Expected)
	}
}

func TestHarmonicScoresNormalized(t *testing.T) {
	w := blockMatrix(3, 3, 0.8, 0.1)
	labeled := map[int]label.Label{0: label.Risky}
	preds, err := NewHarmonic().Predict(w, labeled)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range preds {
		sum := p.Scores[0] + p.Scores[1] + p.Scores[2]
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("node %d scores sum to %g", i, sum)
		}
		if p.Expected < 1 || p.Expected > 3 {
			t.Fatalf("node %d expected label %g out of [1,3]", i, p.Expected)
		}
	}
}

func TestHarmonicIsolatedNodeStaysUniform(t *testing.T) {
	// Node 2 has zero weight to everyone: keeps the uniform prior and
	// the riskier tie-break label.
	w := [][]float64{
		{0, 0.9, 0},
		{0.9, 0, 0},
		{0, 0, 0},
	}
	labeled := map[int]label.Label{0: label.NotRisky}
	preds, err := NewHarmonic().Predict(w, labeled)
	if err != nil {
		t.Fatal(err)
	}
	if preds[1].Label != label.NotRisky {
		t.Fatalf("connected node predicted %v", preds[1].Label)
	}
	p := preds[2]
	if math.Abs(p.Scores[0]-p.Scores[1]) > 1e-9 || math.Abs(p.Scores[1]-p.Scores[2]) > 1e-9 {
		t.Fatalf("isolated node scores not uniform: %v", p.Scores)
	}
	// Ties break toward the riskier label.
	if p.Label != label.VeryRisky {
		t.Fatalf("isolated node label %v, want very risky tie-break", p.Label)
	}
}

func TestHarmonicTieBreaksRisky(t *testing.T) {
	// Symmetric pull between not-risky and very-risky: the midpoint
	// node must resolve to the riskier side (paper: overestimating
	// risk only costs vigilance; underestimating hides a threat).
	w := [][]float64{
		{0, 0, 0.5},
		{0, 0, 0.5},
		{0.5, 0.5, 0},
	}
	labeled := map[int]label.Label{0: label.NotRisky, 1: label.VeryRisky}
	preds, err := NewHarmonic().Predict(w, labeled)
	if err != nil {
		t.Fatal(err)
	}
	if preds[2].Label != label.VeryRisky {
		t.Fatalf("midpoint label %v, want very risky", preds[2].Label)
	}
}

func TestHarmonicErrors(t *testing.T) {
	w := blockMatrix(2, 2, 0.5, 0.5)
	if _, err := NewHarmonic().Predict(w, nil); err == nil {
		t.Fatal("no labels accepted")
	}
	if _, err := NewHarmonic().Predict(w, map[int]label.Label{9: label.Risky}); err == nil {
		t.Fatal("out-of-range labeled index accepted")
	}
	if _, err := NewHarmonic().Predict(w, map[int]label.Label{0: label.Label(7)}); err == nil {
		t.Fatal("invalid label accepted")
	}
	bad := [][]float64{{0, 1}, {1}}
	if _, err := NewHarmonic().Predict(bad, map[int]label.Label{0: label.Risky}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestHarmonicEmptyPool(t *testing.T) {
	preds, err := NewHarmonic().Predict(nil, nil)
	if err != nil {
		t.Fatalf("empty pool: %v", err)
	}
	if len(preds) != 0 {
		t.Fatalf("empty pool predictions: %v", preds)
	}
}

func TestHarmonicAllLabeled(t *testing.T) {
	w := blockMatrix(2, 1, 0.5, 0.5)
	labeled := map[int]label.Label{0: label.NotRisky, 1: label.Risky, 2: label.VeryRisky}
	preds, err := NewHarmonic().Predict(w, labeled)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []label.Label{label.NotRisky, label.Risky, label.VeryRisky} {
		if preds[i].Label != want {
			t.Fatalf("node %d = %v, want %v", i, preds[i].Label, want)
		}
	}
}

func TestHarmonicMinWeightSparsification(t *testing.T) {
	// With MinWeight above the cross-clique weight, the second clique
	// becomes unreachable from the labeled node and stays uniform.
	w := blockMatrix(2, 2, 0.9, 0.1)
	h := &Harmonic{MaxIter: 200, Tol: 1e-9, MinWeight: 0.5}
	preds, err := h.Predict(w, map[int]label.Label{0: label.NotRisky})
	if err != nil {
		t.Fatal(err)
	}
	if preds[1].Label != label.NotRisky {
		t.Fatalf("same-clique node = %v", preds[1].Label)
	}
	if math.Abs(preds[2].Scores[0]-1.0/3) > 1e-9 {
		t.Fatalf("cut-off node scores = %v, want uniform", preds[2].Scores)
	}
}

func TestHarmonicDefaultsApplied(t *testing.T) {
	// Zero-valued settings fall back to sane defaults rather than
	// looping zero times.
	h := &Harmonic{}
	w := blockMatrix(3, 3, 0.9, 0.05)
	preds, err := h.Predict(w, map[int]label.Label{0: label.NotRisky, 3: label.VeryRisky})
	if err != nil {
		t.Fatal(err)
	}
	if preds[1].Label != label.NotRisky || preds[4].Label != label.VeryRisky {
		t.Fatal("default-config harmonic did not converge to clique labels")
	}
}

// TestPropHarmonicInterpolates: harmonic predictions never leave the
// convex hull of the labeled values — expected labels stay within
// [min label, max label] used.
func TestPropHarmonicInterpolates(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRand(seed)
		n := 4 + rng.Intn(8)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := rng.Float64()
				w[i][j] = v
				w[j][i] = v
			}
		}
		labeled := map[int]label.Label{}
		lo, hi := label.VeryRisky, label.NotRisky
		for i := 0; i < 1+rng.Intn(n-1); i++ {
			l := label.Label(1 + rng.Intn(3))
			labeled[rng.Intn(n)] = l
			if l < lo {
				lo = l
			}
			if l > hi {
				hi = l
			}
		}
		preds, err := NewHarmonic().Predict(w, labeled)
		if err != nil {
			return false
		}
		// Slack covers the iteration-stopping tolerance (1e-6 per
		// coordinate, up to ~3e-6 on the expected label).
		const slack = 1e-4
		for _, p := range preds {
			if p.Expected < float64(lo)-slack || p.Expected > float64(hi)+slack {
				return false
			}
			if p.Label < lo || p.Label > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictFromWarmStartSameFixedPoint(t *testing.T) {
	// Warm starting from an arbitrary (even adversarial) init must
	// converge to the same labeling as a cold start: the harmonic
	// fixed point is unique given the labels.
	w := blockMatrix(6, 6, 0.9, 0.05)
	labeled := map[int]label.Label{0: label.NotRisky, 6: label.VeryRisky}
	h := &Harmonic{MaxIter: 500, Tol: 1e-9}
	cold, err := h.Predict(w, labeled)
	if err != nil {
		t.Fatal(err)
	}
	// Adversarial init: everything pinned to "risky".
	init := make([][3]float64, len(w))
	for i := range init {
		init[i] = [3]float64{0, 1, 0}
	}
	warm, err := h.PredictFrom(w, labeled, init)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold {
		if cold[i].Label != warm[i].Label {
			t.Fatalf("node %d: cold %v vs warm %v", i, cold[i].Label, warm[i].Label)
		}
		if math.Abs(cold[i].Expected-warm[i].Expected) > 1e-4 {
			t.Fatalf("node %d: expected values diverge: %g vs %g", i, cold[i].Expected, warm[i].Expected)
		}
	}
}

func TestPredictFromWrongInitLengthIgnored(t *testing.T) {
	// A mismatched init length falls back to the uniform start rather
	// than panicking.
	w := blockMatrix(3, 3, 0.9, 0.05)
	labeled := map[int]label.Label{0: label.NotRisky, 3: label.VeryRisky}
	preds, err := NewHarmonic().PredictFrom(w, labeled, make([][3]float64, 2))
	if err != nil {
		t.Fatal(err)
	}
	if preds[1].Label != label.NotRisky || preds[4].Label != label.VeryRisky {
		t.Fatal("fallback start did not converge")
	}
}
