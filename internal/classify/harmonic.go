// Package classify implements the graph-based semi-supervised
// classifier the risk paper adopts — the Gaussian fields / harmonic
// functions approach of Zhu, Ghahramani & Lafferty (ICML 2003) — plus
// simpler baselines (majority vote, weighted kNN) used by the ablation
// benches.
//
// In the paper's setting the nodes of the classification graph are the
// strangers of one pool, edge weights are profile similarities
// (categorical data, so PS() replaces the usual Euclidean/RBF kernel),
// labeled strangers are clamped to the owner's labels, and unlabeled
// strangers receive the harmonic solution, which coincides with
// absorbing random-walk hitting probabilities into each label class.
package classify

import (
	"fmt"
	"math"

	"sightrisk/internal/label"
)

// Classifier predicts risk labels for all items of a pool given the
// currently labeled subset. Implementations receive the full symmetric
// weight matrix of the pool (weights[i][j] ∈ [0,1], diagonal ignored)
// and a sparse map of known labels keyed by item index; they return a
// prediction for every index (including labeled ones, which echo their
// clamped label).
type Classifier interface {
	// Name identifies the classifier in reports and benches.
	Name() string
	// Predict returns one Prediction per item index.
	Predict(weights [][]float64, labeled map[int]label.Label) ([]Prediction, error)
}

// Prediction is one item's predicted label plus the continuous class
// scores behind it. Expected is the probability-weighted mean label
// value in [1,3]; useful for error analysis.
type Prediction struct {
	Label    label.Label
	Scores   [3]float64 // P(class = 1,2,3), summing to 1 for solved nodes
	Expected float64
}

// Harmonic is the Zhu et al. harmonic-function classifier. The class
// distribution of every unlabeled node is the weighted average of its
// neighbors', with labeled nodes clamped; the fixed point is computed
// by Jacobi-style iteration, which converges because the update matrix
// is row-stochastic with the labeled rows absorbing.
type Harmonic struct {
	// MaxIter bounds the iteration count (default 200).
	MaxIter int
	// Tol stops iteration when the max coordinate change drops below it
	// (default 1e-6).
	Tol float64
	// MinWeight drops edges below this weight, sparsifying the graph
	// (0 keeps everything).
	MinWeight float64
	// Iterations, when non-nil, is invoked after every solve with the
	// number of Jacobi iterations executed — the engine's observability
	// layer counts solver work through it. The hook may be called from
	// concurrent sessions sharing this instance, so it must be
	// thread-safe (the engine's hook only touches atomics).
	Iterations func(iters int)
}

// NewHarmonic returns a Harmonic classifier with default settings.
func NewHarmonic() *Harmonic { return &Harmonic{MaxIter: 200, Tol: 1e-6} }

// Name implements Classifier.
func (h *Harmonic) Name() string { return "harmonic" }

// Predict implements Classifier. With no labeled items it returns an
// error: the harmonic system is unconstrained.
func (h *Harmonic) Predict(weights [][]float64, labeled map[int]label.Label) ([]Prediction, error) {
	return h.PredictFrom(weights, labeled, nil)
}

// PredictFrom is Predict with a warm start: init, when non-nil,
// provides the starting class masses for unlabeled nodes (typically
// the previous round's solution). The harmonic fixed point is unique
// given the labels, so warm starting changes only the convergence
// path — in an active-learning session it cuts the iteration count
// dramatically because each round's labels only perturb the previous
// solution locally.
func (h *Harmonic) PredictFrom(weights [][]float64, labeled map[int]label.Label, init [][3]float64) ([]Prediction, error) {
	n := len(weights)
	if n == 0 {
		return nil, nil
	}
	for i, row := range weights {
		if len(row) != n {
			return nil, fmt.Errorf("classify: weight row %d has %d entries, want %d", i, len(row), n)
		}
	}
	if len(labeled) == 0 {
		return nil, fmt.Errorf("classify: harmonic needs at least one labeled item")
	}
	for idx, l := range labeled {
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("classify: labeled index %d out of range [0,%d)", idx, n)
		}
		if !l.Valid() {
			return nil, fmt.Errorf("classify: invalid label %d for item %d", int(l), idx)
		}
	}

	maxIter := h.MaxIter
	if maxIter <= 0 {
		maxIter = 200
	}
	tol := h.Tol
	if tol <= 0 {
		tol = 1e-6
	}

	// f[i][c] is the class-c mass of node i. Labeled nodes are one-hot
	// and never updated.
	f := make([][3]float64, n)
	next := make([][3]float64, n)
	for idx, l := range labeled {
		f[idx][int(l)-1] = 1
	}
	// Unlabeled nodes start from the warm-start masses when provided,
	// uniform otherwise.
	useInit := len(init) == n
	for i := range f {
		if _, ok := labeled[i]; ok {
			continue
		}
		if useInit {
			f[i] = init[i]
			continue
		}
		f[i] = [3]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	}

	iters := 0
	for iter := 0; iter < maxIter; iter++ {
		iters++
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			if _, ok := labeled[i]; ok {
				next[i] = f[i]
				continue
			}
			var acc [3]float64
			total := 0.0
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				w := weights[i][j]
				if w <= h.MinWeight {
					continue
				}
				total += w
				acc[0] += w * f[j][0]
				acc[1] += w * f[j][1]
				acc[2] += w * f[j][2]
			}
			if total == 0 {
				// Isolated node: keep the uniform prior.
				next[i] = f[i]
				continue
			}
			for c := 0; c < 3; c++ {
				acc[c] /= total
				if d := math.Abs(acc[c] - f[i][c]); d > maxDelta {
					maxDelta = d
				}
			}
			next[i] = acc
		}
		f, next = next, f
		if maxDelta < tol {
			break
		}
	}
	if h.Iterations != nil {
		h.Iterations(iters)
	}

	return decisions(f, labeled), nil
}

// decisions converts class-mass rows into Predictions; labeled nodes
// echo their clamped label.
func decisions(f [][3]float64, labeled map[int]label.Label) []Prediction {
	out := make([]Prediction, len(f))
	for i := range f {
		var p Prediction
		p.Scores = f[i]
		sum := p.Scores[0] + p.Scores[1] + p.Scores[2]
		if sum > 0 {
			for c := 0; c < 3; c++ {
				p.Scores[c] /= sum
			}
		}
		p.Expected = p.Scores[0]*1 + p.Scores[1]*2 + p.Scores[2]*3
		if l, ok := labeled[i]; ok {
			p.Label = l
		} else {
			p.Label = argmaxLabel(p.Scores)
		}
		out[i] = p
	}
	return out
}

// argmaxLabel picks the class with the largest mass; ties break toward
// the riskier label, matching the paper's observation that predicting
// too high "poses no immediate threat to privacy; it only calls for
// more vigilance" while predicting too low hides a real threat.
func argmaxLabel(scores [3]float64) label.Label {
	best, bestV := 0, scores[0]
	for c := 1; c < 3; c++ {
		if scores[c] >= bestV {
			best, bestV = c, scores[c]
		}
	}
	return label.Label(best + 1)
}
