package parallel

import "sync"

// Gate serializes critical sections across a fixed set of n
// participants (slots 0..n-1) in a deterministic rotation. The turn
// starts at slot 0 and advances cyclically over the slots that have
// not declared Done; crucially, the rotation *waits* on the slot it
// points at until that slot either enters its critical section
// (Acquire) or leaves the rotation for good (Done). Because each
// slot's own sequence of Acquire/Done calls is a deterministic
// function of its inputs, the global order of granted sections is too
// — independent of goroutine scheduling, CPU count, or how many
// worker permits exist.
//
// The engine uses one slot per learning pool and routes every
// annotator (owner) query through the gate, which yields exactly the
// contract the public API documents: with any Workers > 1 the owner
// sees one question at a time, in an order that depends only on the
// study inputs.
//
// Usage per slot: any number of Acquire/Release pairs, then exactly
// one Done. Calling Done with the slot's turn pending releases the
// rotation to the next live slot.
//
// A gate can be aborted (Abort): every waiter wakes immediately and
// every current or future Acquire returns false without entering the
// critical section. The engine aborts the gate when the run's context
// is canceled, so sessions blocked waiting for their turn unblock
// promptly instead of waiting out other pools' compute.
type Gate struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	turn    int
	holding bool
	aborted bool
	done    []bool
	live    int
}

// NewGate returns a gate over n slots with the turn at slot 0. A gate
// over 0 slots is valid and inert.
func NewGate(n int) *Gate {
	g := &Gate{n: n, done: make([]bool, n), live: n}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Acquire blocks until the rotation reaches slot and enters the
// critical section, returning true. Must not be called after
// Done(slot). When the gate has been aborted, Acquire returns false
// immediately (or as soon as the waiter wakes) and the caller must NOT
// Release.
func (g *Gate) Acquire(slot int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for (g.turn != slot || g.holding) && !g.aborted {
		g.cond.Wait()
	}
	if g.aborted {
		return false
	}
	g.holding = true
	return true
}

// Abort wakes every waiter and makes all current and future Acquire
// calls return false. Release and Done stay safe to call after Abort,
// so in-flight critical sections unwind normally.
func (g *Gate) Abort() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.aborted = true
	g.cond.Broadcast()
}

// Release ends slot's critical section and advances the rotation to
// the next slot that has not declared Done.
func (g *Gate) Release(slot int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.holding = false
	g.advanceFrom(slot)
	g.cond.Broadcast()
}

// Done removes slot from the rotation permanently. If the rotation is
// currently waiting on slot, it moves on to the next live slot.
func (g *Gate) Done(slot int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.done[slot] {
		return
	}
	g.done[slot] = true
	g.live--
	if g.turn == slot && !g.holding {
		g.advanceFrom(slot)
	}
	g.cond.Broadcast()
}

// advanceFrom moves the turn to the next non-done slot after from,
// cyclically. With no live slots left the turn is parked on from
// (nobody can be waiting). Callers hold g.mu.
func (g *Gate) advanceFrom(from int) {
	if g.live == 0 {
		return
	}
	next := from
	for i := 0; i < g.n; i++ {
		next = (next + 1) % g.n
		if !g.done[next] {
			g.turn = next
			return
		}
	}
}
