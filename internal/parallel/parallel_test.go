package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupRunsAllTasksIndexOrderedResults(t *testing.T) {
	const n = 100
	results := make([]int, n)
	g := NewGroup(4)
	for i := 0; i < n; i++ {
		i := i
		g.Go(i, func() error {
			results[i] = i * i
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, v := range results {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestGroupBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	g := NewGroup(workers)
	for i := 0; i < 50; i++ {
		g.Go(i, func() error {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, want <= %d", p, workers)
	}
}

func TestGroupReportsLowestIndexError(t *testing.T) {
	g := NewGroup(8)
	for i := 0; i < 20; i++ {
		i := i
		g.Go(i, func() error {
			if i%2 == 1 { // 1, 3, 5, ... fail
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
	}
	err := g.Wait()
	if err == nil || err.Error() != "task 1 failed" {
		t.Fatalf("got %v, want the lowest-index failure (task 1)", err)
	}
	if !g.Canceled() {
		t.Fatal("group not canceled after failure")
	}
}

func TestGroupPrefersRootCauseOverCancellation(t *testing.T) {
	g := NewGroup(2)
	// Lower index carries cancellation fallout; higher index has the
	// real error. Wait must surface the real one.
	g.Go(0, func() error { return fmt.Errorf("pool a: %w", ErrCanceled) })
	g.Go(5, func() error { return errors.New("root cause") })
	err := g.Wait()
	if err == nil || err.Error() != "root cause" {
		t.Fatalf("got %v, want root cause", err)
	}
}

func TestGroupAllCanceledStillReturnsError(t *testing.T) {
	g := NewGroup(2)
	g.Go(3, func() error { return fmt.Errorf("b: %w", ErrCanceled) })
	g.Go(1, func() error { return fmt.Errorf("a: %w", ErrCanceled) })
	err := g.Wait()
	if err == nil || !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want a canceled error", err)
	}
	if err.Error() != fmt.Sprintf("a: %v", ErrCanceled) {
		t.Fatalf("got %q, want the lowest-index cancellation", err)
	}
}

func TestLimiterBoundsConcurrency(t *testing.T) {
	const permits = 2
	l := NewLimiter(permits)
	var cur, peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Do(func() {
				c := cur.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				time.Sleep(100 * time.Microsecond)
				cur.Add(-1)
			})
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > permits {
		t.Fatalf("observed %d concurrent sections, want <= %d", p, permits)
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("ResolveWorkers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := ResolveWorkers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("ResolveWorkers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := ResolveWorkers(7); got != 7 {
		t.Fatalf("ResolveWorkers(7) = %d, want 7", got)
	}
}

// gateParticipant drives one slot: `sections` critical sections with a
// tiny compute pause between them, recording the global grant order.
func gateParticipant(g *Gate, slot, sections int, order *[]int, mu *sync.Mutex, wg *sync.WaitGroup) {
	defer wg.Done()
	defer g.Done(slot)
	for s := 0; s < sections; s++ {
		g.Acquire(slot)
		mu.Lock()
		*order = append(*order, slot)
		mu.Unlock()
		g.Release(slot)
		time.Sleep(time.Duration(slot%3) * 50 * time.Microsecond) // desynchronize
	}
}

// TestGateDeterministicRotation runs uneven participants repeatedly
// and checks the grant order is identical every time — the property
// the engine's annotator-query ordering is built on.
func TestGateDeterministicRotation(t *testing.T) {
	// Slot i performs i+1 sections: uneven exits exercise Done-skipping.
	sections := []int{3, 1, 4, 2, 5}
	var want []int
	for trial := 0; trial < 25; trial++ {
		g := NewGate(len(sections))
		var mu sync.Mutex
		var order []int
		var wg sync.WaitGroup
		for slot, n := range sections {
			wg.Add(1)
			go gateParticipant(g, slot, n, &order, &mu, &wg)
		}
		wg.Wait()
		total := 0
		for _, n := range sections {
			total += n
		}
		if len(order) != total {
			t.Fatalf("trial %d: %d grants, want %d", trial, len(order), total)
		}
		if trial == 0 {
			want = append([]int(nil), order...)
			continue
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("trial %d: grant %d went to slot %d, previously slot %d (order must be deterministic)\nwant %v\n got %v",
					trial, i, order[i], want[i], want, order)
			}
		}
	}
}

// TestGateRotationOrder pins the exact rotation semantics on a small
// case: 3 slots doing {2, 1, 2} sections each must interleave
// 0,1,2,0,2 — cyclic, skipping finished slots.
func TestGateRotationOrder(t *testing.T) {
	sections := []int{2, 1, 2}
	g := NewGate(len(sections))
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for slot, n := range sections {
		wg.Add(1)
		go gateParticipant(g, slot, n, &order, &mu, &wg)
	}
	wg.Wait()
	want := []int{0, 1, 2, 0, 2}
	if len(order) != len(want) {
		t.Fatalf("grants %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grants %v, want %v", order, want)
		}
	}
}

// TestGateMutualExclusion checks no two critical sections overlap.
func TestGateMutualExclusion(t *testing.T) {
	const slots = 8
	g := NewGate(slots)
	var inside atomic.Int32
	var wg sync.WaitGroup
	for slot := 0; slot < slots; slot++ {
		slot := slot
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer g.Done(slot)
			for s := 0; s < 20; s++ {
				g.Acquire(slot)
				if n := inside.Add(1); n != 1 {
					t.Errorf("%d goroutines inside the gate", n)
				}
				inside.Add(-1)
				g.Release(slot)
			}
		}()
	}
	wg.Wait()
}

// TestGateDoneWithoutAcquire: a slot may leave the rotation without
// ever entering a section (e.g. a pool whose session fails to start).
func TestGateDoneWithoutAcquire(t *testing.T) {
	g := NewGate(3)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Slot 1 acquires while slot 0 bails out immediately.
		g.Done(0)
		g.Acquire(1)
		g.Release(1)
		g.Done(1)
		g.Acquire(2)
		g.Release(2)
		g.Done(2)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("gate deadlocked after Done without Acquire")
	}
}

func TestGateZeroSlots(t *testing.T) {
	NewGate(0) // must not panic
}

// TestGateAbortWakesWaiters: Abort must fail every pending and future
// Acquire so canceled sessions stop at their next query boundary
// instead of deadlocking in the rotation.
func TestGateAbortWakesWaiters(t *testing.T) {
	g := NewGate(3)
	if !g.Acquire(0) {
		t.Fatal("first Acquire refused")
	}
	denied := make(chan bool, 2)
	for _, slot := range []int{1, 2} {
		slot := slot
		go func() { denied <- g.Acquire(slot) }() // blocks: slot 0 holds the gate
	}
	time.Sleep(10 * time.Millisecond) // let both park in Acquire
	g.Abort()
	for i := 0; i < 2; i++ {
		select {
		case ok := <-denied:
			if ok {
				t.Fatal("Acquire granted after Abort")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Abort did not wake a blocked Acquire")
		}
	}
	// The holder can still release, leave, and is refused re-entry.
	g.Release(0)
	if g.Acquire(0) {
		t.Fatal("Acquire granted after Abort")
	}
	g.Done(0)
	g.Done(1)
	g.Done(2)
	g.Abort() // idempotent
}
