// Package parallel is the small concurrency toolkit the risk pipeline
// is built on. It provides three primitives, all tuned for determinism
// rather than raw throughput:
//
//   - Group: a bounded worker pool with errgroup-style first-error
//     semantics and deterministic index-ordered error selection — when
//     several tasks fail, Wait reports the failure of the *lowest task
//     index*, not whichever goroutine lost the race, so error output is
//     reproducible run to run.
//   - Limiter: a counting semaphore bounding how many CPU-heavy
//     sections (weight-matrix builds, classifier solves) run at once.
//   - Gate: a turn-taking lock that serializes critical sections across
//     a fixed set of participants in a deterministic rotation — the
//     mechanism behind the engine's guarantee that owner (annotator)
//     queries stay one-at-a-time and deterministically ordered even
//     when pool sessions run concurrently.
//
// The pipeline's determinism story rests on a simple split: anything
// that affects *results* (sampling RNGs, annotator answers, classifier
// fixed points) is either per-pool state or serialized through the
// Gate in an order independent of goroutine scheduling; anything the
// scheduler may reorder (which solve runs first, which matrix build
// finishes first) only affects *timing*.
package parallel

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrCanceled is the sentinel a cooperative task should return when it
// aborts because the group was canceled by an earlier failure. Group
// deprioritizes it during error selection so the root cause, not the
// cancellation fallout, is what Wait reports.
var ErrCanceled = errors.New("parallel: canceled")

// ResolveWorkers maps a Workers configuration value to an effective
// worker count: values <= 0 mean "one worker per available CPU"
// (runtime.GOMAXPROCS(0)).
func ResolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Group runs indexed tasks on at most a fixed number of concurrent
// goroutines. The first failure flips the group's canceled flag; tasks
// observe it via Canceled (cooperative cancellation — a task already
// running is never interrupted, which is what keeps partially-run
// sessions from leaving shared structures half-updated).
type Group struct {
	sem      chan struct{}
	wg       sync.WaitGroup
	canceled atomic.Bool

	mu   sync.Mutex
	errs map[int]error
}

// NewGroup returns a group that runs at most workers tasks at once
// (workers <= 0 means GOMAXPROCS).
func NewGroup(workers int) *Group {
	return &Group{
		sem:  make(chan struct{}, ResolveWorkers(workers)),
		errs: make(map[int]error),
	}
}

// Go schedules fn as task index. The call never blocks; the task
// itself blocks until a worker slot frees up. Each index should be
// used at most once — a second error under the same index overwrites
// the first.
func (g *Group) Go(index int, fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		g.sem <- struct{}{}
		defer func() { <-g.sem }()
		if err := fn(); err != nil {
			g.canceled.Store(true)
			g.mu.Lock()
			g.errs[index] = err
			g.mu.Unlock()
		}
	}()
}

// Canceled reports whether any task has failed. Long-running tasks may
// poll it to stop early; tasks that were queued but not started must
// still run (Group never skips a scheduled task, because pipeline
// stages — the query Gate in particular — rely on every participant
// eventually checking in).
func (g *Group) Canceled() bool { return g.canceled.Load() }

// Cancel flips the canceled flag without recording an error — for
// callers that detect a failure outside any task.
func (g *Group) Cancel() { g.canceled.Store(true) }

// Wait blocks until every scheduled task finished and returns the
// error of the lowest-indexed task that failed with a real error
// (ErrCanceled fallout is reported only when no root cause exists).
// The index ordering makes the reported error deterministic even when
// several tasks fail in scheduler-dependent order.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.errs) == 0 {
		return nil
	}
	var firstReal, firstAny error
	realIdx, anyIdx := -1, -1
	for idx, err := range g.errs {
		if anyIdx == -1 || idx < anyIdx {
			anyIdx, firstAny = idx, err
		}
		if !errors.Is(err, ErrCanceled) && (realIdx == -1 || idx < realIdx) {
			realIdx, firstReal = idx, err
		}
	}
	if firstReal != nil {
		return firstReal
	}
	return firstAny
}

// Limiter is a counting semaphore for CPU-heavy sections. It exists
// separately from Group because the session stage needs one goroutine
// per pool (the Gate's rotation must be able to wait on any pool) while
// still bounding how much CPU work runs at once.
type Limiter struct {
	sem chan struct{}
}

// NewLimiter returns a limiter with the given number of permits
// (permits <= 0 means GOMAXPROCS).
func NewLimiter(permits int) *Limiter {
	return &Limiter{sem: make(chan struct{}, ResolveWorkers(permits))}
}

// Do runs fn while holding one permit.
func (l *Limiter) Do(fn func()) {
	l.sem <- struct{}{}
	defer func() { <-l.sem }()
	fn()
}
