package cluster

import (
	"fmt"

	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

// SqueezerConfig parameterizes the Squeezer run: the categorical
// attributes to cluster on, their weights (Definition 2's wᵢ), and the
// similarity threshold β below which a stranger opens a new cluster.
type SqueezerConfig struct {
	Attributes []profile.Attribute
	// Weights maps each attribute to its wᵢ. A nil map means equal
	// weights; a non-nil map is authoritative and attributes missing
	// from it get weight 0. Weights are normalized to sum to 1 so that
	// Sim(s,c) ∈ [0,1].
	Weights map[profile.Attribute]float64
	// Beta is the new-cluster threshold (the paper uses β = 0.4).
	Beta float64
}

// DefaultSqueezerConfig returns the paper's setting: the three
// clustering attributes with equal weights and β = 0.4. With equal
// weights, joining an existing cluster effectively requires matching
// the cluster's dominant gender and locale (2/3 ≥ β) — last-name
// support adds a weak kinship pull — which yields the homogeneous
// pools the classifier needs. The paper's remark that per-item weights
// can encode attribute relevance is exposed via the Weights field
// (see the riskbench Squeezer-weight ablation).
func DefaultSqueezerConfig() SqueezerConfig {
	return SqueezerConfig{
		Attributes: profile.ClusteringAttributes(),
		Beta:       0.4,
	}
}

func (c SqueezerConfig) normalizedWeights() []float64 {
	w := make([]float64, len(c.Attributes))
	total := 0.0
	for i, a := range c.Attributes {
		v := 1.0
		if c.Weights != nil {
			v = c.Weights[a] // authoritative: missing attributes get 0
		}
		if v < 0 {
			v = 0
		}
		w[i] = v
		total += v
	}
	if total == 0 {
		for i := range w {
			w[i] = 1 / float64(len(w))
		}
		return w
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// squeezerCluster is one in-progress cluster: its members plus, per
// attribute, the support (member count) of every value — exactly what
// Definition 2's Sup() needs, maintained incrementally so the
// algorithm stays one-pass.
type squeezerCluster struct {
	members []graph.UserID
	support []map[string]int // indexed like config.Attributes
}

func newSqueezerCluster(nAttrs int) *squeezerCluster {
	c := &squeezerCluster{support: make([]map[string]int, nAttrs)}
	for i := range c.support {
		c.support[i] = make(map[string]int)
	}
	return c
}

func (c *squeezerCluster) add(u graph.UserID, values []string) {
	c.members = append(c.members, u)
	for i, v := range values {
		c.support[i][v]++
	}
}

// sim is Definition 2: Sim(s,c) = Σᵢ wᵢ · Sup(s.paᵢ) / Σ_{x∈VAL_i(c)} Sup(x).
// The denominator equals |c| (every member contributes one value per
// attribute), so the per-attribute term is the fraction of cluster
// members sharing s's value.
func (c *squeezerCluster) sim(values []string, weights []float64) float64 {
	n := float64(len(c.members))
	if n == 0 {
		return 0
	}
	total := 0.0
	for i, v := range values {
		total += weights[i] * float64(c.support[i][v]) / n
	}
	return total
}

// Squeezer runs the adapted Squeezer algorithm (He, Xu, Deng 2002;
// Section III-B of the risk paper) over the strangers of one network
// similarity group: the first stranger opens a cluster; each following
// stranger joins the most similar cluster per Definition 2, or opens a
// new cluster when the best similarity falls below β. The pass is
// strictly one-shot and processes strangers in the given order.
//
// Strangers without a stored profile are placed in their own singleton
// clusters (they carry no categorical signal to group on).
func Squeezer(store *profile.Store, strangers []graph.UserID, cfg SqueezerConfig) ([][]graph.UserID, error) {
	if len(cfg.Attributes) == 0 {
		return nil, fmt.Errorf("cluster: squeezer needs at least one attribute")
	}
	if cfg.Beta < 0 || cfg.Beta > 1 {
		return nil, fmt.Errorf("cluster: beta must be in [0,1], got %g", cfg.Beta)
	}
	weights := cfg.normalizedWeights()

	var clusters []*squeezerCluster
	var orphans [][]graph.UserID
	values := make([]string, len(cfg.Attributes))

	for _, s := range strangers {
		p := store.Get(s)
		if p == nil {
			orphans = append(orphans, []graph.UserID{s})
			continue
		}
		for i, a := range cfg.Attributes {
			values[i] = p.Attr(a)
		}
		best, bestSim := -1, -1.0
		for i, c := range clusters {
			if sim := c.sim(values, weights); sim > bestSim {
				best, bestSim = i, sim
			}
		}
		if best < 0 || bestSim < cfg.Beta {
			c := newSqueezerCluster(len(cfg.Attributes))
			c.add(s, values)
			clusters = append(clusters, c)
			continue
		}
		clusters[best].add(s, values)
	}

	out := make([][]graph.UserID, 0, len(clusters)+len(orphans))
	for _, c := range clusters {
		out = append(out, c.members)
	}
	out = append(out, orphans...)
	return out, nil
}
