package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"sightrisk/internal/obs"
	"sightrisk/internal/profile"
	"sightrisk/internal/similarity"
)

// Key is the content hash a pool's weight artifacts are cached under:
// a digest of everything the weight matrix depends on (exponent,
// attribute list, member ids and every member's attribute values).
// Two pools map to the same Key exactly when PoolWeights would compute
// the same matrix for both, which also makes the Key the engine's
// pool-level invalidation check for incremental re-estimation: a prior
// pool result is reusable iff its Key still matches.
type Key [sha256.Size]byte

// IsZero reports whether the key is unset (never computed).
func (k Key) IsZero() bool { return k == Key{} }

// PoolKey returns the content Key PoolWeights would cache this pool's
// artifacts under. It never touches the cache; callers use it to test
// whether a pool's weight content changed between two graph states.
func PoolKey(store *profile.Store, pool Pool, attrs []profile.Attribute, exponent float64) Key {
	return weightKey(store, pool, attrs, exponent)
}

// WeightCache is a process-wide, content-keyed cache for the expensive
// per-pool similarity artifacts: the PSContext frequency tables and the
// exponentiated PS weight matrix. The key is a hash of everything the
// artifacts depend on — exponent, attribute list, member ids, and every
// member's attribute values — so two pools hit the same entry exactly
// when PoolWeights would compute the same matrix for both. That makes
// the cache safe to share across owners, tenants, and even graph churn:
// dynamics experiments mutate edges, and edges are not part of the
// weight computation.
//
// The multi-tenant fleet scheduler is the intended customer (N tenants
// replaying the same study build each pool's weights once instead of N
// times), but single-run pipelines benefit too whenever owners share
// pool compositions.
//
// Returned matrices and contexts are shared and must be treated as
// read-only; PoolWeights bakes the exponent in before insertion, and
// the engine only ever reads the weights.
//
// The cache can be bounded with SetMaxEntries; under graph churn stale
// content keys would otherwise accumulate forever. Eviction never
// changes results — a victim that is still live simply costs one
// rebuild on its next lookup — so the determinism invariant holds at
// any cap.
type WeightCache struct {
	mu      sync.RWMutex
	entries map[Key]*weightEntry
	max     int

	// Hit-path counters are atomics so a cache hit completes under
	// RLock alone; taking the exclusive lock just to count would
	// serialize all concurrent readers (it used to).
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	metrics   atomic.Pointer[obs.Metrics]
}

// SetMetrics mirrors hit/miss/eviction counts into m (in addition to
// the cache's own Stats). The engine wires its configured Metrics in
// here automatically; passing nil detaches.
func (c *WeightCache) SetMetrics(m *obs.Metrics) {
	c.metrics.Store(m)
}

// SetMaxEntries bounds the cache to at most n entries; inserting past
// the cap evicts arbitrary existing entries first (cheap map-order
// eviction — no recency bookkeeping on the hot hit path). n <= 0
// removes the bound. Shrinking below the current size evicts
// immediately.
func (c *WeightCache) SetMaxEntries(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.max = n
	if n > 0 {
		c.evictLocked(len(c.entries) - n)
	}
}

// evictLocked removes n arbitrary entries (mu must be held).
func (c *WeightCache) evictLocked(n int) {
	if n <= 0 {
		return
	}
	m := c.metrics.Load()
	for k := range c.entries {
		if n <= 0 {
			break
		}
		delete(c.entries, k)
		c.evictions.Add(1)
		if m != nil {
			m.CacheEvictions.Add(1)
		}
		n--
	}
}

type weightEntry struct {
	ctx     *similarity.PSContext
	weights [][]float64
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	// Entries is the live entry count.
	Entries int
	// Hits counts lookups served from the cache.
	Hits uint64
	// Misses counts lookups that had to build the artifacts.
	Misses uint64
	// Evictions counts entries removed to honor the entry cap.
	Evictions uint64
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewWeightCache returns an empty, unbounded cache, safe for
// concurrent use.
func NewWeightCache() *WeightCache {
	return &WeightCache{entries: make(map[Key]*weightEntry)}
}

// PoolWeights returns the pool's weight matrix, computing and caching
// it on first sight of this (members, attribute values, attrs,
// exponent) content. The returned matrix is shared: callers must not
// modify it.
func (c *WeightCache) PoolWeights(store *profile.Store, pool Pool, attrs []profile.Attribute, exponent float64) ([][]float64, error) {
	e, err := c.entry(store, pool, attrs, exponent)
	if err != nil {
		return nil, err
	}
	return e.weights, nil
}

// Context returns the cached PSContext for the pool (built alongside
// the weight matrix). Shared; read-only.
func (c *WeightCache) Context(store *profile.Store, pool Pool, attrs []profile.Attribute, exponent float64) (*similarity.PSContext, error) {
	e, err := c.entry(store, pool, attrs, exponent)
	if err != nil {
		return nil, err
	}
	return e.ctx, nil
}

// hit counts one cache hit without taking any lock.
func (c *WeightCache) hit() {
	c.hits.Add(1)
	if m := c.metrics.Load(); m != nil {
		m.CacheHits.Add(1)
	}
}

func (c *WeightCache) entry(store *profile.Store, pool Pool, attrs []profile.Attribute, exponent float64) (*weightEntry, error) {
	key := weightKey(store, pool, attrs, exponent)

	c.mu.RLock()
	e, ok := c.entries[key]
	c.mu.RUnlock()
	if ok {
		c.hit()
		return e, nil
	}

	// Build outside the lock: matrix construction is the expensive part
	// and must not serialize concurrent misses on different pools.
	ctx := similarity.NewPSContext(store, pool.Members, attrs)
	weights := ctx.Matrix(store.Profiles(pool.Members))
	if len(weights) != len(pool.Members) {
		return nil, fmt.Errorf("cluster: pool %s: %d profiles for %d members (missing profiles)", pool.ID(), len(weights), len(pool.Members))
	}
	if exponent != 1 {
		for i := range weights {
			for j := range weights[i] {
				weights[i][j] = math.Pow(weights[i][j], exponent)
			}
		}
	}
	built := &weightEntry{ctx: ctx, weights: weights}

	c.mu.Lock()
	if prev, raced := c.entries[key]; raced {
		// Another goroutine built the same content first; keep one copy.
		c.mu.Unlock()
		c.hit()
		return prev, nil
	}
	if c.max > 0 {
		c.evictLocked(len(c.entries) + 1 - c.max)
	}
	c.entries[key] = built
	c.mu.Unlock()
	c.misses.Add(1)
	if m := c.metrics.Load(); m != nil {
		m.CacheMisses.Add(1)
	}
	return built, nil
}

// Stats returns current cache counters.
func (c *WeightCache) Stats() CacheStats {
	c.mu.RLock()
	n := len(c.entries)
	c.mu.RUnlock()
	return CacheStats{
		Entries:   n,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}

// weightKey hashes the full content the weight matrix depends on. Every
// variable-length field is length-prefixed so distinct contents can
// never produce the same byte stream.
func weightKey(store *profile.Store, pool Pool, attrs []profile.Attribute, exponent float64) Key {
	if len(attrs) == 0 {
		attrs = profile.ClusteringAttributes()
	}
	h := sha256.New()
	var scratch [8]byte
	writeUint := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	writeString := func(s string) {
		writeUint(uint64(len(s)))
		h.Write([]byte(s))
	}
	writeUint(math.Float64bits(exponent))
	writeUint(uint64(len(attrs)))
	for _, a := range attrs {
		writeString(string(a))
	}
	writeUint(uint64(len(pool.Members)))
	for _, m := range pool.Members {
		writeUint(uint64(m))
		p := store.Get(m)
		if p == nil {
			writeUint(^uint64(0)) // distinguish "no profile" from "no values"
			continue
		}
		writeUint(uint64(len(attrs)))
		for _, a := range attrs {
			writeString(p.Attr(a))
		}
	}
	var key Key
	h.Sum(key[:0])
	return key
}
