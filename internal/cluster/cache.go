package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"sightrisk/internal/obs"
	"sightrisk/internal/profile"
	"sightrisk/internal/similarity"
)

// WeightCache is a process-wide, content-keyed cache for the expensive
// per-pool similarity artifacts: the PSContext frequency tables and the
// exponentiated PS weight matrix. The key is a hash of everything the
// artifacts depend on — exponent, attribute list, member ids, and every
// member's attribute values — so two pools hit the same entry exactly
// when PoolWeights would compute the same matrix for both. That makes
// the cache safe to share across owners, tenants, and even graph churn:
// dynamics experiments mutate edges, and edges are not part of the
// weight computation.
//
// The multi-tenant fleet scheduler is the intended customer (N tenants
// replaying the same study build each pool's weights once instead of N
// times), but single-run pipelines benefit too whenever owners share
// pool compositions.
//
// Returned matrices and contexts are shared and must be treated as
// read-only; PoolWeights bakes the exponent in before insertion, and
// the engine only ever reads the weights.
type WeightCache struct {
	mu      sync.RWMutex
	entries map[[sha256.Size]byte]*weightEntry
	hits    uint64
	misses  uint64
	metrics *obs.Metrics
}

// SetMetrics mirrors hit/miss counts into m (in addition to the
// cache's own Stats). The engine wires its configured Metrics in here
// automatically; passing nil detaches.
func (c *WeightCache) SetMetrics(m *obs.Metrics) {
	c.mu.Lock()
	c.metrics = m
	c.mu.Unlock()
}

type weightEntry struct {
	ctx     *similarity.PSContext
	weights [][]float64
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Entries int
	Hits    uint64
	Misses  uint64
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewWeightCache returns an empty cache, safe for concurrent use.
func NewWeightCache() *WeightCache {
	return &WeightCache{entries: make(map[[sha256.Size]byte]*weightEntry)}
}

// PoolWeights returns the pool's weight matrix, computing and caching
// it on first sight of this (members, attribute values, attrs,
// exponent) content. The returned matrix is shared: callers must not
// modify it.
func (c *WeightCache) PoolWeights(store *profile.Store, pool Pool, attrs []profile.Attribute, exponent float64) ([][]float64, error) {
	e, err := c.entry(store, pool, attrs, exponent)
	if err != nil {
		return nil, err
	}
	return e.weights, nil
}

// Context returns the cached PSContext for the pool (built alongside
// the weight matrix). Shared; read-only.
func (c *WeightCache) Context(store *profile.Store, pool Pool, attrs []profile.Attribute, exponent float64) (*similarity.PSContext, error) {
	e, err := c.entry(store, pool, attrs, exponent)
	if err != nil {
		return nil, err
	}
	return e.ctx, nil
}

func (c *WeightCache) entry(store *profile.Store, pool Pool, attrs []profile.Attribute, exponent float64) (*weightEntry, error) {
	key := weightKey(store, pool, attrs, exponent)

	c.mu.RLock()
	e, ok := c.entries[key]
	c.mu.RUnlock()
	if ok {
		c.mu.Lock()
		c.hits++
		if c.metrics != nil {
			c.metrics.CacheHits.Add(1)
		}
		c.mu.Unlock()
		return e, nil
	}

	// Build outside the lock: matrix construction is the expensive part
	// and must not serialize concurrent misses on different pools.
	ctx := similarity.NewPSContext(store, pool.Members, attrs)
	weights := ctx.Matrix(store.Profiles(pool.Members))
	if len(weights) != len(pool.Members) {
		return nil, fmt.Errorf("cluster: pool %s: %d profiles for %d members (missing profiles)", pool.ID(), len(weights), len(pool.Members))
	}
	if exponent != 1 {
		for i := range weights {
			for j := range weights[i] {
				weights[i][j] = math.Pow(weights[i][j], exponent)
			}
		}
	}
	built := &weightEntry{ctx: ctx, weights: weights}

	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, raced := c.entries[key]; raced {
		// Another goroutine built the same content first; keep one copy.
		c.hits++
		if c.metrics != nil {
			c.metrics.CacheHits.Add(1)
		}
		return prev, nil
	}
	c.misses++
	if c.metrics != nil {
		c.metrics.CacheMisses.Add(1)
	}
	c.entries[key] = built
	return built, nil
}

// Stats returns current cache counters.
func (c *WeightCache) Stats() CacheStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return CacheStats{Entries: len(c.entries), Hits: c.hits, Misses: c.misses}
}

// weightKey hashes the full content the weight matrix depends on. Every
// variable-length field is length-prefixed so distinct contents can
// never produce the same byte stream.
func weightKey(store *profile.Store, pool Pool, attrs []profile.Attribute, exponent float64) [sha256.Size]byte {
	if len(attrs) == 0 {
		attrs = profile.ClusteringAttributes()
	}
	h := sha256.New()
	var scratch [8]byte
	writeUint := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	writeString := func(s string) {
		writeUint(uint64(len(s)))
		h.Write([]byte(s))
	}
	writeUint(math.Float64bits(exponent))
	writeUint(uint64(len(attrs)))
	for _, a := range attrs {
		writeString(string(a))
	}
	writeUint(uint64(len(pool.Members)))
	for _, m := range pool.Members {
		writeUint(uint64(m))
		p := store.Get(m)
		if p == nil {
			writeUint(^uint64(0)) // distinguish "no profile" from "no values"
			continue
		}
		writeUint(uint64(len(attrs)))
		for _, a := range attrs {
			writeString(p.Attr(a))
		}
	}
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}
