package cluster

import (
	"fmt"
	"math"

	"sightrisk/internal/profile"
	"sightrisk/internal/similarity"
)

// PoolWeights precomputes the symmetric PS() edge-weight matrix a
// pool's learning session classifies over: entry (i,j) is the profile
// similarity of Members[i] and Members[j] under the pool-local value
// frequencies, raised to exponent (the RBF-style sharpening the engine
// applies so same-attribute neighbors dominate label propagation; 1
// keeps raw PS). attrs empty means the paper's clustering attributes.
//
// The computation is self-contained per pool — it reads the store but
// writes only its own matrix — which is what lets the engine build
// many pools' weights concurrently.
func PoolWeights(store *profile.Store, pool Pool, attrs []profile.Attribute, exponent float64) ([][]float64, error) {
	psCtx := similarity.NewPSContext(store, pool.Members, attrs)
	weights := psCtx.Matrix(store.Profiles(pool.Members))
	if len(weights) != len(pool.Members) {
		return nil, fmt.Errorf("cluster: pool %s: %d profiles for %d members (missing profiles)", pool.ID(), len(weights), len(pool.Members))
	}
	if exponent != 1 {
		for i := range weights {
			for j := range weights[i] {
				weights[i][j] = math.Pow(weights[i][j], exponent)
			}
		}
	}
	return weights, nil
}
