package cluster

import (
	"reflect"
	"testing"

	"sightrisk/internal/graph"
	"sightrisk/internal/obs"
	"sightrisk/internal/profile"
)

// TestWeightCacheBounded: the entry cap is enforced on insert, every
// removal is counted, and an evicted entry's re-lookup rebuilds the
// exact same matrix (eviction only ever costs a rebuild).
func TestWeightCacheBounded(t *testing.T) {
	g, store, owner, strangers := testWorld(t, 12, 80)
	pools, _, err := BuildPools(g, store, owner, strangers, DefaultPoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pools) < 3 {
		t.Fatalf("need >= 3 pools, got %d", len(pools))
	}
	want := make([][][]float64, len(pools))
	for i, p := range pools {
		w, err := PoolWeights(store, p, nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}

	cache := NewWeightCache()
	m := &obs.Metrics{}
	cache.SetMetrics(m)
	cache.SetMaxEntries(2)
	for _, p := range pools {
		if _, err := cache.PoolWeights(store, p, nil, 4); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Entries > 2 {
		t.Fatalf("entries = %d, want <= 2", st.Entries)
	}
	wantEvict := uint64(len(pools) - 2)
	if st.Evictions != wantEvict {
		t.Fatalf("evictions = %d, want %d", st.Evictions, wantEvict)
	}
	if got := m.CacheEvictions.Load(); got != wantEvict {
		t.Fatalf("metrics evictions = %d, want %d", got, wantEvict)
	}

	// Every pool — evicted or not — still yields the identical matrix.
	for i, p := range pools {
		w, err := cache.PoolWeights(store, p, nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(w, want[i]) {
			t.Fatalf("pool %s: matrix after eviction differs from cold build", p.ID())
		}
	}

	// Shrinking below the live size evicts immediately.
	cache.SetMaxEntries(1)
	if st := cache.Stats(); st.Entries > 1 {
		t.Fatalf("entries after shrink = %d, want <= 1", st.Entries)
	}
	// Removing the bound lets the cache grow again.
	cache.SetMaxEntries(0)
	for _, p := range pools {
		if _, err := cache.PoolWeights(store, p, nil, 4); err != nil {
			t.Fatal(err)
		}
	}
	if st := cache.Stats(); st.Entries != len(pools) {
		t.Fatalf("unbounded entries = %d, want %d", st.Entries, len(pools))
	}
}

// TestPoolKeyTracksContent: PoolKey is stable for identical content,
// ignores the pool's label, and changes when a member's attribute
// value, the attribute list, the exponent, or the membership changes —
// the exact invalidation rule incremental re-estimation relies on.
func TestPoolKeyTracksContent(t *testing.T) {
	store := profile.NewStore()
	members := []graph.UserID{1, 2, 3}
	for _, m := range members {
		p := profile.NewProfile(m)
		p.SetAttr(profile.AttrGender, "male")
		p.SetAttr(profile.AttrLocale, "en_US")
		store.Put(p)
	}
	pool := Pool{NSGIndex: 1, ClusterIndex: 1, Members: members}
	base := PoolKey(store, pool, nil, 4)
	if base.IsZero() {
		t.Fatal("PoolKey returned the zero key")
	}
	if again := PoolKey(store, pool, nil, 4); again != base {
		t.Fatal("PoolKey not stable for identical content")
	}
	renamed := Pool{NSGIndex: 9, ClusterIndex: 7, Members: members}
	if PoolKey(store, renamed, nil, 4) != base {
		t.Fatal("PoolKey depends on the pool label; must be content-only")
	}
	if PoolKey(store, pool, nil, 1) == base {
		t.Fatal("PoolKey ignored the exponent")
	}
	if PoolKey(store, pool, []profile.Attribute{profile.AttrGender}, 4) == base {
		t.Fatal("PoolKey ignored the attribute list")
	}
	shrunk := Pool{NSGIndex: 1, ClusterIndex: 1, Members: members[:2]}
	if PoolKey(store, shrunk, nil, 4) == base {
		t.Fatal("PoolKey ignored the membership")
	}
	store.Get(2).SetAttr(profile.AttrLocale, "it_IT")
	if PoolKey(store, pool, nil, 4) == base {
		t.Fatal("PoolKey ignored a member's attribute change")
	}
}

// BenchmarkWeightCacheHitParallel measures the hot hit path under
// concurrent readers. Hits complete under RLock with atomic counters,
// so throughput should scale with GOMAXPROCS; before the fix every hit
// took the exclusive lock to bump counters, serializing all readers.
func BenchmarkWeightCacheHitParallel(b *testing.B) {
	g, store, owner, strangers := testWorld(b, 12, 200)
	pools, _, err := BuildPools(g, store, owner, strangers, DefaultPoolConfig())
	if err != nil {
		b.Fatal(err)
	}
	pool := pools[0]
	for _, p := range pools {
		if len(p.Members) > len(pool.Members) {
			pool = p
		}
	}
	cache := NewWeightCache()
	if _, err := cache.PoolWeights(store, pool, nil, 4); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := cache.PoolWeights(store, pool, nil, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}
