package cluster

import (
	"fmt"

	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
	"sightrisk/internal/similarity"
)

// Pool is one disjoint set of strangers that runs its own active-
// learning session. NSGIndex is the 1-based network similarity group
// the pool came from; ClusterIndex distinguishes profile clusters
// within the group (0 when profile clustering was not applied, i.e.
// NSP pools).
type Pool struct {
	NSGIndex     int
	ClusterIndex int
	Members      []graph.UserID
}

// ID returns a stable human-readable pool identifier.
func (p Pool) ID() string {
	return fmt.Sprintf("nsg%02d/psg%03d", p.NSGIndex, p.ClusterIndex)
}

// Strategy selects how pools are formed from the stranger set.
type Strategy int

const (
	// NPP builds network-and-profile based pools (Definition 3): NSG
	// buckets refined by Squeezer profile clusters. This is the paper's
	// proposed strategy.
	NPP Strategy = iota
	// NSP builds pools from network similarity groups only — the
	// baseline the paper compares against in Figures 5 and 6.
	NSP
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case NPP:
		return "NPP"
	case NSP:
		return "NSP"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// PoolConfig parameterizes pool construction.
type PoolConfig struct {
	Alpha    int // number of network similarity groups (paper: 10)
	Strategy Strategy
	Squeezer SqueezerConfig // used by NPP only
	// NetworkSim is the network-similarity measure driving the NSG
	// bucketing; nil means the paper's NS.
	NetworkSim similarity.NetworkMeasure
}

// DefaultPoolConfig returns the paper's experimental setting:
// α = 10, NPP strategy, Squeezer with β = 0.4 and equal weights.
func DefaultPoolConfig() PoolConfig {
	return PoolConfig{Alpha: 10, Strategy: NPP, Squeezer: DefaultSqueezerConfig()}
}

// Validate checks the pool configuration and returns a descriptive
// error for out-of-range fields (α <= 0, unknown strategy, β outside
// [0,1]).
func (c PoolConfig) Validate() error {
	if c.Alpha <= 0 {
		return fmt.Errorf("cluster: Alpha (number of network similarity groups) must be > 0, got %d", c.Alpha)
	}
	if c.Strategy != NPP && c.Strategy != NSP {
		return fmt.Errorf("cluster: unknown strategy %v", c.Strategy)
	}
	if c.Strategy == NPP {
		if c.Squeezer.Beta < 0 || c.Squeezer.Beta > 1 {
			return fmt.Errorf("cluster: Squeezer.Beta must be in [0,1], got %g", c.Squeezer.Beta)
		}
	}
	return nil
}

// BuildPools groups the owner's strangers into disjoint pools
// according to the configured strategy and returns the pools together
// with the underlying NSG (useful for reporting Figure 4 / Figure 7
// style series).
func BuildPools(g *graph.Graph, store *profile.Store, owner graph.UserID, strangers []graph.UserID, cfg PoolConfig) ([]Pool, *NSG, error) {
	nsg, err := BuildNSGWith(g, owner, strangers, cfg.Alpha, cfg.NetworkSim)
	if err != nil {
		return nil, nil, err
	}
	pools, err := poolsFromNSG(store, nsg, cfg)
	if err != nil {
		return nil, nil, err
	}
	return pools, nsg, nil
}

// Validate checks the disjointness and coverage invariants of a pool
// set against the original stranger list. Used by tests and by the
// property-based suite.
func Validate(pools []Pool, strangers []graph.UserID) error {
	seen := make(map[graph.UserID]string, len(strangers))
	for _, p := range pools {
		for _, m := range p.Members {
			if prev, dup := seen[m]; dup {
				return fmt.Errorf("cluster: stranger %d in both %s and %s", m, prev, p.ID())
			}
			seen[m] = p.ID()
		}
	}
	for _, s := range strangers {
		if _, ok := seen[s]; !ok {
			return fmt.Errorf("cluster: stranger %d not covered by any pool", s)
		}
	}
	if len(seen) != len(strangers) {
		return fmt.Errorf("cluster: pools contain %d strangers, expected %d", len(seen), len(strangers))
	}
	return nil
}
