package cluster

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

// testWorld builds an owner graph plus stranger profiles for pool
// tests: friends 100..100+f-1, strangers with varying mutual-friend
// counts and alternating profiles.
func testWorld(t testing.TB, friends, strangers int) (*graph.Graph, *profile.Store, graph.UserID, []graph.UserID) {
	t.Helper()
	g := graph.New()
	store := profile.NewStore()
	owner := graph.UserID(1)
	fs := make([]graph.UserID, friends)
	for i := range fs {
		fs[i] = graph.UserID(100 + i)
		if err := g.AddEdge(owner, fs[i]); err != nil {
			t.Fatal(err)
		}
	}
	genders := []string{"male", "female"}
	locales := []string{"en_US", "it_IT", "tr_TR"}
	var ss []graph.UserID
	for i := 0; i < strangers; i++ {
		s := graph.UserID(1000 + i)
		ss = append(ss, s)
		m := 1 + i%(friends/2)
		for j := 0; j < m; j++ {
			if err := g.AddEdge(s, fs[j]); err != nil {
				t.Fatal(err)
			}
		}
		p := profile.NewProfile(s)
		p.SetAttr(profile.AttrGender, genders[i%2])
		p.SetAttr(profile.AttrLocale, locales[i%3])
		p.SetAttr(profile.AttrLastName, locales[i%3]+"-fam")
		store.Put(p)
	}
	return g, store, owner, ss
}

func TestBuildPoolsNPPPartition(t *testing.T) {
	g, store, owner, strangers := testWorld(t, 12, 60)
	pools, nsg, err := BuildPools(g, store, owner, strangers, DefaultPoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	if nsg == nil {
		t.Fatal("nil NSG")
	}
	if err := Validate(pools, strangers); err != nil {
		t.Fatalf("NPP pools not a partition: %v", err)
	}
	// Pool ids carry their NSG and cluster indices.
	for _, p := range pools {
		if p.NSGIndex < 1 || p.NSGIndex > 10 {
			t.Fatalf("pool %s has NSG index %d", p.ID(), p.NSGIndex)
		}
		if p.ClusterIndex < 1 {
			t.Fatalf("NPP pool %s has cluster index %d, want >= 1", p.ID(), p.ClusterIndex)
		}
	}
}

func TestBuildPoolsNSPPartition(t *testing.T) {
	g, store, owner, strangers := testWorld(t, 12, 60)
	cfg := DefaultPoolConfig()
	cfg.Strategy = NSP
	pools, _, err := BuildPools(g, store, owner, strangers, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(pools, strangers); err != nil {
		t.Fatalf("NSP pools not a partition: %v", err)
	}
	for _, p := range pools {
		if p.ClusterIndex != 0 {
			t.Fatalf("NSP pool %s has cluster index %d, want 0", p.ID(), p.ClusterIndex)
		}
	}
	// NSP pools = one per non-empty NSG group.
	nsg, err := BuildNSG(g, owner, strangers, cfg.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	if len(pools) != len(nsg.NonEmpty()) {
		t.Fatalf("NSP pools = %d, want %d", len(pools), len(nsg.NonEmpty()))
	}
}

func TestNPPRefinesNSP(t *testing.T) {
	g, store, owner, strangers := testWorld(t, 12, 60)
	npp, _, err := BuildPools(g, store, owner, strangers, DefaultPoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultPoolConfig()
	cfg.Strategy = NSP
	nsp, _, err := BuildPools(g, store, owner, strangers, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(npp) < len(nsp) {
		t.Fatalf("NPP produced %d pools, NSP %d; NPP must refine NSP", len(npp), len(nsp))
	}
	// Every NPP pool is contained in exactly one NSG group.
	bySlot := map[int]map[graph.UserID]bool{}
	for _, p := range nsp {
		set := map[graph.UserID]bool{}
		for _, m := range p.Members {
			set[m] = true
		}
		bySlot[p.NSGIndex] = set
	}
	for _, p := range npp {
		set := bySlot[p.NSGIndex]
		for _, m := range p.Members {
			if !set[m] {
				t.Fatalf("NPP pool %s member %d escapes NSG group %d", p.ID(), m, p.NSGIndex)
			}
		}
	}
}

func TestBuildPoolsUnknownStrategy(t *testing.T) {
	g, store, owner, strangers := testWorld(t, 6, 10)
	cfg := DefaultPoolConfig()
	cfg.Strategy = Strategy(42)
	if _, _, err := BuildPools(g, store, owner, strangers, cfg); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestBuildPoolsDeterministic(t *testing.T) {
	g, store, owner, strangers := testWorld(t, 12, 60)
	a, _, err := BuildPools(g, store, owner, strangers, DefaultPoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := BuildPools(g, store, owner, strangers, DefaultPoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("BuildPools is not deterministic")
	}
}

func TestStrategyString(t *testing.T) {
	if NPP.String() != "NPP" || NSP.String() != "NSP" {
		t.Fatalf("strings: %s / %s", NPP, NSP)
	}
	if got := Strategy(9).String(); got != "Strategy(9)" {
		t.Fatalf("unknown strategy string = %q", got)
	}
}

func TestValidateDetectsViolations(t *testing.T) {
	strangers := []graph.UserID{1, 2, 3}
	// Missing coverage.
	pools := []Pool{{NSGIndex: 1, Members: []graph.UserID{1, 2}}}
	if err := Validate(pools, strangers); err == nil {
		t.Fatal("missing coverage not detected")
	}
	// Duplicate membership.
	pools = []Pool{
		{NSGIndex: 1, Members: []graph.UserID{1, 2}},
		{NSGIndex: 2, Members: []graph.UserID{2, 3}},
	}
	if err := Validate(pools, strangers); err == nil {
		t.Fatal("duplicate membership not detected")
	}
	// Valid partition passes.
	pools = []Pool{
		{NSGIndex: 1, Members: []graph.UserID{1, 2}},
		{NSGIndex: 2, Members: []graph.UserID{3}},
	}
	if err := Validate(pools, strangers); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
}

// TestPropPoolsAlwaysPartition: pools partition the stranger set for
// random worlds under both strategies and several α/β settings.
func TestPropPoolsAlwaysPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		store := profile.NewStore()
		owner := graph.UserID(1)
		nf := 5 + rng.Intn(10)
		fs := make([]graph.UserID, nf)
		for i := range fs {
			fs[i] = graph.UserID(100 + i)
			_ = g.AddEdge(owner, fs[i])
		}
		genders := []string{"male", "female"}
		locales := []string{"en_US", "it_IT"}
		for i := 0; i < 40; i++ {
			s := graph.UserID(1000 + i)
			m := 1 + rng.Intn(nf)
			for j := 0; j < m; j++ {
				_ = g.AddEdge(s, fs[j])
			}
			if rng.Float64() < 0.9 { // some strangers lack profiles
				p := profile.NewProfile(s)
				p.SetAttr(profile.AttrGender, genders[rng.Intn(2)])
				p.SetAttr(profile.AttrLocale, locales[rng.Intn(2)])
				p.SetAttr(profile.AttrLastName, "x")
				store.Put(p)
			}
		}
		strangers := g.Strangers(owner)
		for _, strat := range []Strategy{NPP, NSP} {
			for _, alpha := range []int{1, 5, 10} {
				cfg := DefaultPoolConfig()
				cfg.Alpha = alpha
				cfg.Strategy = strat
				cfg.Squeezer.Beta = float64(rng.Intn(10)) / 10
				pools, _, err := BuildPools(g, store, owner, strangers, cfg)
				if err != nil {
					return false
				}
				if Validate(pools, strangers) != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
