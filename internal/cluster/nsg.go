// Package cluster implements the stranger-grouping machinery of the
// ICDE 2012 risk paper: network similarity groups (Definition 1), the
// Squeezer one-pass categorical clustering algorithm with the profile
// similarity of Definition 2, and the network-and-profile based pools
// of Definition 3 together with the network-similarity-only baseline
// pools (NSP) used in the paper's sampling comparison.
package cluster

import (
	"fmt"
	"math"

	"sightrisk/internal/graph"
	"sightrisk/internal/similarity"
)

// NSG holds the α network similarity groups for one owner
// (Definition 1): group x (1-based) contains the strangers s with
// (x-1)/α ≤ NS(o,s) < x/α; the last group is closed above so NS = 1
// is not lost.
type NSG struct {
	Alpha  int
	Groups [][]graph.UserID
	// Score keeps the computed NS(o, s) for every grouped stranger.
	Score map[graph.UserID]float64
}

// BuildNSG computes NS(owner, s) for every stranger and buckets them
// into alpha equal-width groups. Strangers follow the order returned
// within each bucket (ascending UserID, since inputs come from
// graph.Strangers).
func BuildNSG(g *graph.Graph, owner graph.UserID, strangers []graph.UserID, alpha int) (*NSG, error) {
	return BuildNSGWith(g, owner, strangers, alpha, similarity.NS)
}

// BuildNSGWith is BuildNSG with a custom network-similarity measure —
// used by the measure ablation, which swaps the paper's NS for the
// classical alternatives.
func BuildNSGWith(g *graph.Graph, owner graph.UserID, strangers []graph.UserID, alpha int, measure similarity.NetworkMeasure) (*NSG, error) {
	if alpha < 1 {
		return nil, fmt.Errorf("cluster: alpha must be >= 1, got %d", alpha)
	}
	if measure == nil {
		measure = similarity.NS
	}
	out := &NSG{
		Alpha:  alpha,
		Groups: make([][]graph.UserID, alpha),
		Score:  make(map[graph.UserID]float64, len(strangers)),
	}
	for _, s := range strangers {
		ns := measure(g, owner, s)
		out.Score[s] = ns
		idx := int(math.Floor(ns * float64(alpha)))
		if idx >= alpha { // NS exactly 1 lands in the top group
			idx = alpha - 1
		}
		out.Groups[idx] = append(out.Groups[idx], s)
	}
	return out, nil
}

// GroupOf returns the 1-based group index the stranger was bucketed
// into, or 0 if the stranger was not grouped.
func (n *NSG) GroupOf(s graph.UserID) int {
	ns, ok := n.Score[s]
	if !ok {
		return 0
	}
	idx := int(math.Floor(ns * float64(n.Alpha)))
	if idx >= n.Alpha {
		idx = n.Alpha - 1
	}
	return idx + 1
}

// Counts returns the per-group stranger counts (index 0 = group 1).
// This is the series of the paper's Figure 4.
func (n *NSG) Counts() []int {
	out := make([]int, n.Alpha)
	for i, g := range n.Groups {
		out[i] = len(g)
	}
	return out
}

// NonEmpty returns the 1-based indices of groups holding at least one
// stranger.
func (n *NSG) NonEmpty() []int {
	var out []int
	for i, g := range n.Groups {
		if len(g) > 0 {
			out = append(out, i+1)
		}
	}
	return out
}
