package cluster

import (
	"testing"

	"sightrisk/internal/graph"
)

// starGraph builds an owner with f friends and strangers attached to
// the given numbers of mutual friends.
func starGraph(t *testing.T, friends int, mutuals []int) (*graph.Graph, graph.UserID, []graph.UserID) {
	t.Helper()
	g := graph.New()
	owner := graph.UserID(1)
	fs := make([]graph.UserID, friends)
	for i := range fs {
		fs[i] = graph.UserID(100 + i)
		if err := g.AddEdge(owner, fs[i]); err != nil {
			t.Fatal(err)
		}
	}
	var strangers []graph.UserID
	for si, m := range mutuals {
		s := graph.UserID(1000 + si)
		strangers = append(strangers, s)
		for i := 0; i < m && i < friends; i++ {
			if err := g.AddEdge(s, fs[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g, owner, strangers
}

func TestBuildNSGValidation(t *testing.T) {
	g, owner, strangers := starGraph(t, 5, []int{1})
	if _, err := BuildNSG(g, owner, strangers, 0); err == nil {
		t.Fatal("alpha 0 accepted")
	}
	if _, err := BuildNSG(g, owner, strangers, -3); err == nil {
		t.Fatal("negative alpha accepted")
	}
}

func TestBuildNSGBucketing(t *testing.T) {
	g, owner, strangers := starGraph(t, 10, []int{1, 2, 5, 9})
	nsg, err := BuildNSG(g, owner, strangers, 10)
	if err != nil {
		t.Fatal(err)
	}
	if nsg.Alpha != 10 || len(nsg.Groups) != 10 {
		t.Fatalf("alpha/groups = %d/%d", nsg.Alpha, len(nsg.Groups))
	}
	// Every stranger is in exactly one group, matching its score.
	total := 0
	for gi, members := range nsg.Groups {
		total += len(members)
		for _, m := range members {
			score := nsg.Score[m]
			lo := float64(gi) / 10
			hi := float64(gi+1) / 10
			if score < lo || (score >= hi && !(gi == 9 && score == 1)) {
				t.Fatalf("stranger %d with NS %g in group %d [%g,%g)", m, score, gi+1, lo, hi)
			}
			if got := nsg.GroupOf(m); got != gi+1 {
				t.Fatalf("GroupOf(%d) = %d, want %d", m, got, gi+1)
			}
		}
	}
	if total != len(strangers) {
		t.Fatalf("grouped %d strangers, want %d", total, len(strangers))
	}
}

func TestNSGGroupOfUnknown(t *testing.T) {
	g, owner, strangers := starGraph(t, 5, []int{1})
	nsg, err := BuildNSG(g, owner, strangers, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := nsg.GroupOf(99999); got != 0 {
		t.Fatalf("GroupOf(unknown) = %d, want 0", got)
	}
}

func TestNSGCountsAndNonEmpty(t *testing.T) {
	g, owner, strangers := starGraph(t, 10, []int{1, 1, 9})
	nsg, err := BuildNSG(g, owner, strangers, 5)
	if err != nil {
		t.Fatal(err)
	}
	counts := nsg.Counts()
	if len(counts) != 5 {
		t.Fatalf("counts len %d, want 5", len(counts))
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != 3 {
		t.Fatalf("counts sum %d, want 3", sum)
	}
	for _, gi := range nsg.NonEmpty() {
		if counts[gi-1] == 0 {
			t.Fatalf("NonEmpty includes empty group %d", gi)
		}
	}
}

func TestNSGTopBucketClosed(t *testing.T) {
	// NS = 1 must land in the last group, not overflow.
	g := graph.New()
	owner := graph.UserID(1)
	s := graph.UserID(2)
	// Shared dense community of 2 friends → NS capped at 1.
	for _, f := range []graph.UserID{10, 11} {
		if err := g.AddEdge(owner, f); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(s, f); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(10, 11); err != nil {
		t.Fatal(err)
	}
	nsg, err := BuildNSG(g, owner, []graph.UserID{s}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(nsg.Groups[9]) != 1 {
		t.Fatalf("NS=1 stranger not in top group: %v", nsg.Counts())
	}
	if got := nsg.GroupOf(s); got != 10 {
		t.Fatalf("GroupOf = %d, want 10", got)
	}
}

func TestBuildNSGWithCustomMeasure(t *testing.T) {
	g, owner, strangers := starGraph(t, 10, []int{1, 5, 9})
	constant := func(*graph.Graph, graph.UserID, graph.UserID) float64 { return 0.55 }
	nsg, err := BuildNSGWith(g, owner, strangers, 10, constant)
	if err != nil {
		t.Fatal(err)
	}
	// Everything lands in group 6 ([0.5, 0.6)).
	if len(nsg.Groups[5]) != len(strangers) {
		t.Fatalf("counts = %v, want all in group 6", nsg.Counts())
	}
	// Nil measure falls back to NS.
	withNil, err := BuildNSGWith(g, owner, strangers, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	withNS, err := BuildNSG(g, owner, strangers, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range strangers {
		if withNil.Score[s] != withNS.Score[s] {
			t.Fatal("nil measure does not match NS")
		}
	}
}
