package cluster

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

// randomOwnerWorld builds a seeded random graph around an owner with a
// mix of friends and second-hop strangers.
func randomOwnerWorld(seed int64, friends, extra, edges int) (*graph.Graph, graph.UserID) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	owner := graph.UserID(1)
	n := friends + extra
	ids := make([]graph.UserID, n)
	for i := range ids {
		ids[i] = graph.UserID(10 + i*3)
		g.AddNode(ids[i])
	}
	for i := 0; i < friends; i++ {
		_ = g.AddEdge(owner, ids[i])
	}
	for k := 0; k < edges; k++ {
		a := ids[rng.Intn(n)]
		b := ids[rng.Intn(n)]
		if a != b {
			_ = g.AddEdge(a, b)
		}
	}
	return g, owner
}

// TestNSGSnapshotEquivalence: BuildNSGSnapshot buckets every stranger
// exactly as BuildNSG does on the live graph — identical scores
// (bit-for-bit), identical group membership and order — across seeded
// random graphs. This is the NSG leg of the snapshot/live equivalence
// property test.
func TestNSGSnapshotEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g, owner := randomOwnerWorld(seed, 15, 60, 300)
		strangers := g.Strangers(owner)
		if len(strangers) == 0 {
			t.Fatalf("seed %d: no strangers", seed)
		}
		s := g.Snapshot()
		for _, alpha := range []int{1, 4, 10} {
			want, err := BuildNSG(g, owner, strangers, alpha)
			if err != nil {
				t.Fatal(err)
			}
			got, err := BuildNSGSnapshot(s, owner, strangers, alpha)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Score, want.Score) {
				t.Fatalf("seed %d alpha %d: Score maps differ", seed, alpha)
			}
			if !reflect.DeepEqual(got.Groups, want.Groups) {
				t.Fatalf("seed %d alpha %d: Groups differ:\n got %v\nwant %v", seed, alpha, got.Groups, want.Groups)
			}
		}
	}
}

// TestBuildPoolsSnapshotEquivalence: the full pool construction agrees
// between the snapshot path and the live-graph path, for both
// strategies.
func TestBuildPoolsSnapshotEquivalence(t *testing.T) {
	g, store, owner, strangers := testWorld(t, 12, 60)
	s := g.Snapshot()
	for _, strat := range []Strategy{NPP, NSP} {
		cfg := DefaultPoolConfig()
		cfg.Strategy = strat
		wantPools, wantNSG, err := BuildPools(g, store, owner, strangers, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gotPools, gotNSG, err := BuildPoolsSnapshot(s, store, owner, strangers, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotPools, wantPools) {
			t.Fatalf("%v: pools differ:\n got %v\nwant %v", strat, gotPools, wantPools)
		}
		if !reflect.DeepEqual(gotNSG.Score, wantNSG.Score) {
			t.Fatalf("%v: NSG scores differ", strat)
		}
	}
}

// TestBuildPoolsSnapshotRejectsCustomMeasure: ablations with a custom
// network measure must stay on the live-graph path.
func TestBuildPoolsSnapshotRejectsCustomMeasure(t *testing.T) {
	g, store, owner, strangers := testWorld(t, 6, 12)
	cfg := DefaultPoolConfig()
	cfg.NetworkSim = func(g *graph.Graph, a, b graph.UserID) float64 { return 0.5 }
	if _, _, err := BuildPoolsSnapshot(g.Snapshot(), store, owner, strangers, cfg); err == nil {
		t.Fatal("expected error for custom NetworkSim on snapshot path")
	}
}

// TestWeightCacheMatchesPoolWeights: a cached matrix is exactly the
// matrix PoolWeights computes, and repeated lookups hit.
func TestWeightCacheMatchesPoolWeights(t *testing.T) {
	g, store, owner, strangers := testWorld(t, 12, 60)
	pools, _, err := BuildPools(g, store, owner, strangers, DefaultPoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewWeightCache()
	for _, exp := range []float64{1, 4} {
		for _, p := range pools {
			want, err := PoolWeights(store, p, nil, exp)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cache.PoolWeights(store, p, nil, exp)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("pool %s exp %g: cached weights differ", p.ID(), exp)
			}
			again, err := cache.PoolWeights(store, p, nil, exp)
			if err != nil {
				t.Fatal(err)
			}
			if &got[0][0] != &again[0][0] {
				t.Fatalf("pool %s exp %g: second lookup did not return the shared matrix", p.ID(), exp)
			}
		}
	}
	st := cache.Stats()
	if st.Misses != uint64(2*len(pools)) {
		t.Fatalf("misses = %d, want %d", st.Misses, 2*len(pools))
	}
	if st.Hits != uint64(2*len(pools)) {
		t.Fatalf("hits = %d, want %d", st.Hits, 2*len(pools))
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", st.HitRate())
	}
}

// TestWeightCacheKeyedByContent: same membership but different
// attribute values, attrs, or exponent must land in different entries;
// identical content in a differently-named pool must hit.
func TestWeightCacheKeyedByContent(t *testing.T) {
	store := profile.NewStore()
	members := []graph.UserID{1, 2, 3}
	for _, m := range members {
		p := profile.NewProfile(m)
		p.SetAttr(profile.AttrGender, "male")
		p.SetAttr(profile.AttrLocale, "en_US")
		store.Put(p)
	}
	cache := NewWeightCache()
	pool := Pool{NSGIndex: 1, ClusterIndex: 1, Members: members}
	if _, err := cache.PoolWeights(store, pool, nil, 4); err != nil {
		t.Fatal(err)
	}

	// Same content under a different pool label: hit.
	renamed := Pool{NSGIndex: 9, ClusterIndex: 7, Members: members}
	if _, err := cache.PoolWeights(store, renamed, nil, 4); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("after rename lookup: %+v, want 1 hit / 1 miss", st)
	}

	// Different exponent: miss.
	if _, err := cache.PoolWeights(store, pool, nil, 1); err != nil {
		t.Fatal(err)
	}
	// Different attrs: miss.
	if _, err := cache.PoolWeights(store, pool, []profile.Attribute{profile.AttrGender}, 4); err != nil {
		t.Fatal(err)
	}
	// Mutated profile content: miss.
	store.Get(2).SetAttr(profile.AttrLocale, "it_IT")
	if _, err := cache.PoolWeights(store, pool, nil, 4); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != 4 {
		t.Fatalf("misses = %d, want 4 (exponent, attrs, content all keyed)", st.Misses)
	}
}

// TestWeightCacheConcurrent hammers one cache from many goroutines —
// run under -race this is the scheduler-sharing safety test.
func TestWeightCacheConcurrent(t *testing.T) {
	g, store, owner, strangers := testWorld(t, 12, 60)
	pools, _, err := BuildPools(g, store, owner, strangers, DefaultPoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewWeightCache()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				for _, p := range pools {
					if _, err := cache.PoolWeights(store, p, nil, 4); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if st := cache.Stats(); st.Entries != len(pools) {
		t.Fatalf("entries = %d, want %d", st.Entries, len(pools))
	}
}

// BenchmarkWeightCache contrasts a cold build against a cache hit.
func BenchmarkWeightCache(b *testing.B) {
	g, store, owner, strangers := testWorld(b, 12, 200)
	pools, _, err := BuildPools(g, store, owner, strangers, DefaultPoolConfig())
	if err != nil {
		b.Fatal(err)
	}
	pool := pools[0]
	for _, p := range pools {
		if len(p.Members) > len(pool.Members) {
			pool = p
		}
	}
	b.Run("build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := PoolWeights(store, pool, nil, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		cache := NewWeightCache()
		if _, err := cache.PoolWeights(store, pool, nil, 4); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := cache.PoolWeights(store, pool, nil, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}
