package cluster

import (
	"testing"

	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
)

func mkProfile(u graph.UserID, gender, locale, last string) *profile.Profile {
	p := profile.NewProfile(u)
	p.SetAttr(profile.AttrGender, gender)
	p.SetAttr(profile.AttrLocale, locale)
	p.SetAttr(profile.AttrLastName, last)
	return p
}

func storeOf(profiles ...*profile.Profile) (*profile.Store, []graph.UserID) {
	s := profile.NewStore()
	var ids []graph.UserID
	for _, p := range profiles {
		s.Put(p)
		ids = append(ids, p.User)
	}
	return s, ids
}

func TestSqueezerValidation(t *testing.T) {
	store, ids := storeOf(mkProfile(1, "m", "us", "a"))
	if _, err := Squeezer(store, ids, SqueezerConfig{Beta: 0.4}); err == nil {
		t.Fatal("no attributes accepted")
	}
	cfg := DefaultSqueezerConfig()
	cfg.Beta = 1.5
	if _, err := Squeezer(store, ids, cfg); err == nil {
		t.Fatal("beta > 1 accepted")
	}
	cfg.Beta = -0.1
	if _, err := Squeezer(store, ids, cfg); err == nil {
		t.Fatal("beta < 0 accepted")
	}
}

func TestSqueezerIdenticalJoinOneCluster(t *testing.T) {
	var profiles []*profile.Profile
	for i := 0; i < 5; i++ {
		profiles = append(profiles, mkProfile(graph.UserID(i), "male", "en_US", "Smith-1"))
	}
	store, ids := storeOf(profiles...)
	clusters, err := Squeezer(store, ids, DefaultSqueezerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 || len(clusters[0]) != 5 {
		t.Fatalf("clusters = %v, want one cluster of 5", clusters)
	}
}

func TestSqueezerBetaOneSingletons(t *testing.T) {
	// With β = 1, only perfect matches join. Distinct last names keep
	// everyone apart.
	store, ids := storeOf(
		mkProfile(1, "male", "en_US", "A-1"),
		mkProfile(2, "male", "en_US", "B-2"),
		mkProfile(3, "male", "en_US", "C-3"),
	)
	cfg := DefaultSqueezerConfig()
	cfg.Beta = 1
	clusters, err := Squeezer(store, ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 3 {
		t.Fatalf("clusters = %d, want 3 singletons", len(clusters))
	}
}

func TestSqueezerBetaZeroOneCluster(t *testing.T) {
	store, ids := storeOf(
		mkProfile(1, "male", "en_US", "A-1"),
		mkProfile(2, "female", "it_IT", "B-2"),
		mkProfile(3, "male", "tr_TR", "C-3"),
	)
	cfg := DefaultSqueezerConfig()
	cfg.Beta = 0
	clusters, err := Squeezer(store, ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 || len(clusters[0]) != 3 {
		t.Fatalf("clusters = %v, want one cluster of 3", clusters)
	}
}

func TestSqueezerDefinition2Math(t *testing.T) {
	// Equal weights 1/3 each, β = 0.4. Walk the one-pass algorithm:
	//   1 (male,en_US,A-1)   seeds cluster c1
	//   2 (male,en_US,B-2)   sim(c1) = (1/1 + 1/1 + 0)/3 = 0.667 → joins c1
	//   3 (male,en_US,C-3)   sim(c1) = (2/2 + 2/2 + 0)/3 = 0.667 → joins c1
	//   4 (female,en_US,D-4) sim(c1) = (0/3 + 3/3 + 0)/3 = 0.333 < β → seeds c2
	//   5 (male,en_US,E-5)   sim(c1) = 0.667, sim(c2) = 0.333 → joins c1
	//   6 (female,it_IT,F-6) sim(c1) = 0, sim(c2) = (1+0+0)/3 = 0.333 < β → seeds c3
	store, ids := storeOf(
		mkProfile(1, "male", "en_US", "A-1"),
		mkProfile(2, "male", "en_US", "B-2"),
		mkProfile(3, "male", "en_US", "C-3"),
		mkProfile(4, "female", "en_US", "D-4"),
		mkProfile(5, "male", "en_US", "E-5"),
		mkProfile(6, "female", "it_IT", "F-6"),
	)
	clusters, err := Squeezer(store, ids, DefaultSqueezerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 3 {
		t.Fatalf("clusters = %d, want 3 (%v)", len(clusters), clusters)
	}
	if got := clusters[0]; len(got) != 4 || got[0] != 1 || got[3] != 5 {
		t.Fatalf("first cluster = %v, want [1 2 3 5]", got)
	}
	if len(clusters[1]) != 1 || clusters[1][0] != 4 {
		t.Fatalf("second cluster = %v, want [4]", clusters[1])
	}
	if len(clusters[2]) != 1 || clusters[2][0] != 6 {
		t.Fatalf("third cluster = %v, want [6]", clusters[2])
	}
}

func TestSqueezerOnePass(t *testing.T) {
	// Order dependence is inherent to Squeezer's one-pass design: a
	// borderline stranger processed first seeds its own cluster.
	// Verify the pass processes in the given order by checking the
	// first stranger always lands in the first cluster.
	store, _ := storeOf(
		mkProfile(1, "male", "en_US", "A-1"),
		mkProfile(2, "female", "it_IT", "B-2"),
	)
	clusters, err := Squeezer(store, []graph.UserID{2, 1}, DefaultSqueezerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if clusters[0][0] != 2 {
		t.Fatalf("first cluster seeded by %d, want 2", clusters[0][0])
	}
}

func TestSqueezerWeights(t *testing.T) {
	// With all weight on gender, locale differences cannot prevent
	// joining.
	store, ids := storeOf(
		mkProfile(1, "male", "en_US", "A-1"),
		mkProfile(2, "male", "it_IT", "B-2"),
		mkProfile(3, "male", "tr_TR", "C-3"),
	)
	cfg := SqueezerConfig{
		Attributes: profile.ClusteringAttributes(),
		Weights:    map[profile.Attribute]float64{profile.AttrGender: 1},
		Beta:       0.9,
	}
	clusters, err := Squeezer(store, ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 {
		t.Fatalf("clusters = %d, want 1 with gender-only weights", len(clusters))
	}
}

func TestSqueezerNegativeWeightClamped(t *testing.T) {
	store, ids := storeOf(
		mkProfile(1, "male", "en_US", "A-1"),
		mkProfile(2, "male", "en_US", "A-1"),
	)
	cfg := SqueezerConfig{
		Attributes: profile.ClusteringAttributes(),
		Weights: map[profile.Attribute]float64{
			profile.AttrGender:   -5, // clamped to 0
			profile.AttrLocale:   1,
			profile.AttrLastName: 1,
		},
		Beta: 0.9,
	}
	clusters, err := Squeezer(store, ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 {
		t.Fatalf("clusters = %d, want 1", len(clusters))
	}
}

func TestSqueezerAllZeroWeightsFallBackToUniform(t *testing.T) {
	store, ids := storeOf(
		mkProfile(1, "male", "en_US", "A-1"),
		mkProfile(2, "male", "en_US", "A-1"),
	)
	cfg := SqueezerConfig{
		Attributes: profile.ClusteringAttributes(),
		Weights:    map[profile.Attribute]float64{profile.AttrGender: 0, profile.AttrLocale: 0, profile.AttrLastName: 0},
		Beta:       0.5,
	}
	clusters, err := Squeezer(store, ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 {
		t.Fatalf("clusters = %d, want 1 (uniform fallback)", len(clusters))
	}
}

func TestSqueezerMissingProfilesBecomeSingletons(t *testing.T) {
	store, _ := storeOf(mkProfile(1, "male", "en_US", "A-1"))
	clusters, err := Squeezer(store, []graph.UserID{1, 99, 98}, DefaultSqueezerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 3 {
		t.Fatalf("clusters = %d, want 3 (1 real + 2 orphans)", len(clusters))
	}
	total := 0
	for _, c := range clusters {
		total += len(c)
	}
	if total != 3 {
		t.Fatalf("total members %d, want 3", total)
	}
}

func TestSqueezerEmptyInput(t *testing.T) {
	store, _ := storeOf()
	clusters, err := Squeezer(store, nil, DefaultSqueezerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 0 {
		t.Fatalf("clusters = %v, want none", clusters)
	}
}
