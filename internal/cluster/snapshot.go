package cluster

import (
	"fmt"
	"math"

	"sightrisk/internal/graph"
	"sightrisk/internal/profile"
	"sightrisk/internal/similarity"
)

// BuildNSGSnapshot is BuildNSG over a frozen graph snapshot: the NS of
// every stranger is computed with the allocation-free sorted-slice
// intersection (one reused scratch buffer for the whole stranger set)
// instead of per-call map walks. Scores and bucketing are bit-identical
// to BuildNSG on the graph the snapshot was taken from — the same
// integer counts feed the same float expressions — which the
// snapshot/live equivalence property test pins down.
//
// The snapshot path always uses the paper's NS; ablations with a custom
// NetworkMeasure stay on the *graph.Graph path (the engine gates on
// PoolConfig.NetworkSim == nil before routing here).
func BuildNSGSnapshot(s *graph.Snapshot, owner graph.UserID, strangers []graph.UserID, alpha int) (*NSG, error) {
	if alpha < 1 {
		return nil, fmt.Errorf("cluster: alpha must be >= 1, got %d", alpha)
	}
	out := &NSG{
		Alpha:  alpha,
		Groups: make([][]graph.UserID, alpha),
		Score:  make(map[graph.UserID]float64, len(strangers)),
	}
	buf := make([]graph.UserID, 0, 64)
	for _, st := range strangers {
		var ns float64
		ns, buf = similarity.NSInto(s, owner, st, buf)
		out.Score[st] = ns
		idx := int(math.Floor(ns * float64(alpha)))
		if idx >= alpha { // NS exactly 1 lands in the top group
			idx = alpha - 1
		}
		out.Groups[idx] = append(out.Groups[idx], st)
	}
	return out, nil
}

// BuildPoolsSnapshot is BuildPools over a frozen graph snapshot. It
// requires cfg.NetworkSim == nil (the snapshot fast path implements the
// paper's NS only); callers running a measure ablation must use
// BuildPools on the mutable graph.
func BuildPoolsSnapshot(s *graph.Snapshot, store *profile.Store, owner graph.UserID, strangers []graph.UserID, cfg PoolConfig) ([]Pool, *NSG, error) {
	if cfg.NetworkSim != nil {
		return nil, nil, fmt.Errorf("cluster: BuildPoolsSnapshot supports only the paper's NS; use BuildPools for custom measures")
	}
	nsg, err := BuildNSGSnapshot(s, owner, strangers, cfg.Alpha)
	if err != nil {
		return nil, nil, err
	}
	pools, err := poolsFromNSG(store, nsg, cfg)
	if err != nil {
		return nil, nil, err
	}
	return pools, nsg, nil
}

// poolsFromNSG refines the NSG buckets into pools per the configured
// strategy — the shared back half of BuildPools and BuildPoolsSnapshot.
func poolsFromNSG(store *profile.Store, nsg *NSG, cfg PoolConfig) ([]Pool, error) {
	var pools []Pool
	for gi, members := range nsg.Groups {
		if len(members) == 0 {
			continue
		}
		switch cfg.Strategy {
		case NSP:
			pools = append(pools, Pool{NSGIndex: gi + 1, Members: members})
		case NPP:
			clusters, err := Squeezer(store, members, cfg.Squeezer)
			if err != nil {
				return nil, err
			}
			for ci, c := range clusters {
				pools = append(pools, Pool{
					NSGIndex:     gi + 1,
					ClusterIndex: ci + 1,
					Members:      c,
				})
			}
		default:
			return nil, fmt.Errorf("cluster: unknown strategy %v", cfg.Strategy)
		}
	}
	return pools, nil
}
