package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"time"

	sight "sightrisk"
	"sightrisk/client"
	"sightrisk/internal/active"
	"sightrisk/internal/core"
	"sightrisk/internal/dataset"
	"sightrisk/internal/delta"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
)

// Pre-acceptance friendship-request risk over the wire:
//
//	POST /v1/advise   evaluate a pending (owner, candidate) friendship
//	                  request against the counterfactual graph with the
//	                  edge added, before the owner accepts it
//
// The evaluation is synchronous (no job is created): the owner's
// current run is taken from memory when a finished estimate for the
// same dataset, owner, seed and update generation is still held, and
// recomputed from the frozen snapshot otherwise — the latter is the
// path a checkpoint-reconstructed (restarted or failed-over) node
// takes, and the deterministic engine makes both produce the same
// bytes. The counterfactual side rides the delta engine: the candidate
// edge is applied to a clone of the live graph and delta.Revise
// recomputes only the pools the edge dirties, splicing the rest from
// the current run.

// handleAdvise serves POST /v1/advise.
func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeErr(w, http.StatusServiceUnavailable, "draining", "server is draining; retry against a live replica", time.Second)
		return
	}
	var req client.AdviseRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "malformed request body: "+err.Error(), 0)
		return
	}
	if req.Dataset == "" {
		writeErr(w, http.StatusBadRequest, "bad_request", "dataset is required", 0)
		return
	}
	rt, ok := s.runtimes[req.Dataset]
	if !ok {
		writeErr(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("unknown dataset %q", req.Dataset), 0)
		return
	}
	if req.Candidate == req.Owner {
		writeErr(w, http.StatusBadRequest, "bad_request", "candidate must differ from owner", 0)
		return
	}
	// Route by owner, like /v1/updates and the estimate endpoints: the
	// ring owner of req.Owner is where a reusable prior run lives.
	if s.clustered() && r.Header.Get(ForwardHeader) == "" {
		if node, _ := s.cluster.Owner(req.Owner); node.ID != s.nodeID {
			if s.forwardOwner(w, r, req.Owner, "POST", "/v1/advise", &req) {
				return
			}
		}
	}
	if rt.Graph == nil {
		writeErr(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("dataset %q is snapshot-backed and read-only; advise needs a mutable dataset", req.Dataset), 0)
		return
	}
	owner, cand := graph.UserID(req.Owner), graph.UserID(req.Candidate)
	rec, ok := rt.Owner(owner)
	if !ok {
		writeErr(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("dataset %q has no stored labels for owner %d; advise needs the stored annotator", req.Dataset, req.Owner), 0)
		return
	}
	opts, err := optionsFrom(req.Options)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "invalid options: "+err.Error(), 0)
		return
	}
	ecfg, err := opts.EngineConfig()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "invalid options: "+err.Error(), 0)
		return
	}
	ecfg.Metrics = s.metrics
	ecfg.Tenant = "advise"

	// Capture a consistent view: applyMu quiesces update drains, so the
	// clone, the snapshot, the profile store and the generation all
	// describe the same dataset state.
	s.applyMu.Lock()
	s.mu.Lock()
	snap, store, gen := rt.Snapshot, rt.Profiles, s.dsGen[req.Dataset]
	s.mu.Unlock()
	if !rt.Graph.HasNode(cand) {
		s.applyMu.Unlock()
		writeErr(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("candidate %d is not in the network", req.Candidate), 0)
		return
	}
	if rt.Graph.HasEdge(owner, cand) {
		s.applyMu.Unlock()
		writeErr(w, http.StatusConflict, "conflict",
			fmt.Sprintf("users %d and %d are already friends", req.Owner, req.Candidate), 0)
		return
	}
	gc := rt.Graph.Clone()
	s.applyMu.Unlock()

	ann := active.Infallible(dataset.StoredAnnotator{Labels: rec.Labels, Fallback: label.Risky})

	// Current side: reuse a finished run still held in memory when it
	// matches this dataset state and seed; otherwise recompute from the
	// frozen snapshot. The recompute branch is what a restarted or
	// adopted node runs (held runs do not survive the process), and the
	// deterministic engine guarantees it produces the same bytes.
	before := s.heldRun(req.Dataset, owner, gen, ecfg.Seed)
	reused := before != nil
	if before == nil {
		bcfg := ecfg
		bcfg.Snapshot = snap
		before, err = core.New(bcfg).RunOwner(r.Context(), nil, store, owner, ann, math.NaN())
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "internal", err.Error(), 0)
			return
		}
	}

	// Counterfactual side: add the candidate edge on the clone and let
	// the delta engine revise against the current run.
	batch := delta.Batch{{Kind: delta.EdgeAdd, A: owner, B: cand}}
	if err := batch.Apply(gc, store); err != nil {
		writeErr(w, http.StatusInternalServerError, "internal", err.Error(), 0)
		return
	}
	after, stats, err := delta.Revise(r.Context(), ecfg, gc, store, owner, ann, math.NaN(), before, batch)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "internal", err.Error(), 0)
		return
	}

	policy := sight.BuildAccessPolicy(sight.DefaultSensitivity())
	assess, err := policy.AssessRequest(sight.AssembleReport(before), sight.AssembleReport(after), cand)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "internal", err.Error(), 0)
		return
	}
	s.logf("sightd: advise dataset %s owner %d candidate %d: %s (prior reused=%v, pools reused %d/%d)",
		req.Dataset, req.Owner, req.Candidate, assess.Verdict, reused, stats.PoolsReused, stats.PoolsTotal)
	writeJSON(w, http.StatusOK, adviseWire(req.Dataset, req.Owner, assess))
}

// heldRun returns a finished, non-partial prior run for (dataset,
// owner) computed at the given update generation and seed, when some
// completed job still holds one in memory; nil otherwise. Any match is
// byte-equivalent to any other (the engine is deterministic for fixed
// inputs), so the scan needs no tie-break.
func (s *Server) heldRun(ds string, owner graph.UserID, gen uint64, seed int64) *core.OwnerRun {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		if j.req.Dataset != ds || j.owner != owner {
			continue
		}
		run, g := j.reusable()
		if run == nil || run.Partial || g != gen || run.Seed != seed {
			continue
		}
		return run
	}
	return nil
}

// adviseWire renders an assessment as the deterministic wire response.
func adviseWire(ds string, owner int64, a *sight.FriendRequestAssessment) *client.AdviseResponse {
	resp := &client.AdviseResponse{
		Dataset:           ds,
		Owner:             owner,
		Candidate:         int64(a.Candidate),
		Verdict:           a.Verdict,
		Reason:            a.Reason,
		Label:             int(a.Label),
		NetworkSimilarity: a.NetworkSimilarity,
		NewStrangers:      a.NewStrangers,
		LostStrangers:     a.LostStrangers,
		RiskyBefore:       a.RiskyBefore,
		RiskyAfter:        a.RiskyAfter,
		VeryRiskyBefore:   a.VeryRiskyBefore,
		VeryRiskyAfter:    a.VeryRiskyAfter,
	}
	for _, it := range a.Items {
		resp.Items = append(resp.Items, client.AdviseItemDelta{
			Item:           it.Item,
			MaxLabel:       int(it.MaxLabel),
			AudienceBefore: it.AudienceBefore,
			AudienceAfter:  it.AudienceAfter,
			RiskyBefore:    it.RiskyBefore,
			RiskyAfter:     it.RiskyAfter,
			GainsAccess:    it.GainsAccess,
		})
	}
	return resp
}
