// Package server implements sightd's HTTP/JSON serving layer: a
// net/http front end over the fleet scheduler that accepts
// risk-estimate jobs, carries the paper's owner question/answer loop
// over the wire via long-poll, and persists checkpoints so jobs
// survive server restarts. The wire types live in the client package
// (both sides import it); the endpoint reference is docs/API.md.
//
// Served runs execute the exact serial engine path through
// fleet.Scheduler and assemble reports with sight.AssembleReport, so a
// served report is byte-identical to what an in-process
// sight.EstimateRisk call would produce for the same inputs — the
// end-to-end tests pin this down, including across an injected
// mid-run server restart.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	sight "sightrisk"
	"sightrisk/client"
	"sightrisk/internal/active"
	"sightrisk/internal/core"
	"sightrisk/internal/dataset"
	"sightrisk/internal/fleet"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/obs"
	"sightrisk/internal/place"
)

// maxLongPoll caps the server-side questions wait regardless of the
// client's wait_ms.
const maxLongPoll = time.Minute

// Config parameterizes New.
type Config struct {
	// Datasets are the preloaded studies jobs may reference by name
	// (EstimateRequest.Dataset). Each gets one frozen graph snapshot
	// shared by all of its jobs.
	Datasets map[string]*dataset.Dataset
	// Runtimes are preloaded datasets already in serving shape —
	// typically mmap-backed snapshot files via dataset.OpenRuntime.
	// They share the Datasets namespace; a duplicate name is a
	// configuration error.
	Runtimes map[string]*dataset.Runtime
	// Workers bounds how many jobs run concurrently across all tenants
	// (the fleet scheduler's shared budget). 0 means one per CPU.
	Workers int
	// StateDir, when non-"", persists job records, per-round
	// checkpoints and final reports so jobs survive server restarts.
	// "" disables durability. Shorthand for Store =
	// NewDirStore(StateDir); ignored when Store is set.
	StateDir string
	// Store overrides the durable state backend. In cluster mode every
	// replica must share one store (a common directory works) — it is
	// the channel checkpoints hand off through when a node dies.
	Store Store
	// Cluster enables multi-node operation: this replica serves the
	// shards the placement assigns it and forwards everything else to
	// the ring owner. nil means single-node (exactly the old behavior).
	// Requires a Store (or StateDir).
	Cluster place.Placement
	// Transport is the HTTP transport for peer forwarding and probing;
	// nil means http.DefaultTransport. Tests inject fault transports
	// (faults.Partition) here.
	Transport http.RoundTripper
	// OnCheckpoint, when non-nil, runs after each durable checkpoint
	// write with the job id. Fault harnesses hang node-kill tripwires
	// off it ("die right after round k checkpoints").
	OnCheckpoint func(jobID string)
	// ProbeInterval, when > 0, runs a peer health prober at that period
	// so node death is detected even without request traffic. Only
	// meaningful in cluster mode.
	ProbeInterval time.Duration
	// Limits holds per-tenant admission limits, applied at startup.
	Limits map[string]fleet.TenantLimits
	// StatsBudget caps the ε a (tenant, dataset) pair may spend on
	// /v1/stats releases within one dataset generation; <= 0 selects
	// DefaultStatsBudget. See docs/ANALYTICS.md for the accounting
	// rules.
	StatsBudget float64
	// Metrics accumulates pipeline counters across all jobs and feeds
	// /varz; a private one is created when nil.
	Metrics *obs.Metrics
	// Logf receives operational log lines; log.Printf when nil.
	Logf func(format string, args ...any)
}

// Server is the sightd HTTP handler plus the job state behind it.
// Construct with New, mount via ServeHTTP, stop with Drain.
type Server struct {
	runtimes map[string]*dataset.Runtime
	store    Store
	metrics  *obs.Metrics
	logf     func(string, ...any)
	sched    *fleet.Scheduler
	mux      *http.ServeMux

	// Cluster state: nil cluster means single-node. nodeID caches
	// cluster.Self().ID (""), forward is the peer HTTP client.
	cluster      place.Placement
	nodeID       string
	forward      *http.Client
	onCheckpoint func(string)

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	nextID   int
	draining bool
	killed   bool

	// Dataset update state: updMu guards the per-dataset coalescing
	// queues and dsGen; applyMu is held only while a drained batch
	// actually mutates a runtime (and by /v1/advise while it clones a
	// quiescent graph). The swap of a runtime's snapshot/profile
	// pointers happens under mu, so readers never block on an apply.
	// dsGen counts applied drains per dataset — the freshness check
	// behind revise's owner-level fast path. Batches that arrive while
	// an apply is in flight queue up and are merged (delta.Coalesce)
	// into the next drain: one graph mutation, one generation bump, one
	// dirty-owner invalidation per drain, however fast the crawler feed
	// posts. updDrainHook, when non-nil, observes each drain before it
	// applies (tests only).
	updMu        sync.Mutex
	updQ         map[string]*updQueue
	applyMu      sync.Mutex
	dsGen        map[string]uint64
	updDrainHook func(dataset string, merged int)

	// LDP analytics state (stats.go): per-dataset estimator cache keyed
	// by update generation and the per-(tenant, dataset) ε ledgers.
	// ldpMu guards only the cheap map and ledger operations; estimator
	// construction runs under the dataset's entry in ldpBuilds so a
	// slow build never blocks other datasets' stats traffic, budget
	// charging or /varz. statsBudget is immutable after New.
	ldpMu       sync.Mutex
	ldpEst      map[string]*ldpEntry
	ldpBuilds   map[string]*sync.Mutex
	ldpLedgers  map[string]*ldpLedger
	statsBudget float64
}

// New builds a server: it validates the engine defaults, stands up the
// fleet scheduler, freezes one graph snapshot per dataset, and — when
// Config.StateDir is set — recovers persisted jobs, requeueing
// unfinished ones with their checkpoints so they resume where the
// previous process stopped.
func New(cfg Config) (*Server, error) {
	ecfg, err := sight.DefaultOptions().EngineConfig()
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	metrics := cfg.Metrics
	if metrics == nil {
		metrics = &obs.Metrics{}
	}
	sched, err := fleet.NewScheduler(fleet.SchedulerConfig{Engine: ecfg, Workers: cfg.Workers})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	for tenant, lim := range cfg.Limits {
		sched.Limit(tenant, lim)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	s := &Server{
		runtimes:     make(map[string]*dataset.Runtime, len(cfg.Datasets)+len(cfg.Runtimes)),
		store:        cfg.Store,
		metrics:      metrics,
		logf:         logf,
		sched:        sched,
		cluster:      cfg.Cluster,
		onCheckpoint: cfg.OnCheckpoint,
		baseCtx:      baseCtx,
		baseCancel:   baseCancel,
		jobs:         map[string]*job{},
		updQ:         map[string]*updQueue{},
		dsGen:        map[string]uint64{},
		ldpEst:       map[string]*ldpEntry{},
		ldpBuilds:    map[string]*sync.Mutex{},
		ldpLedgers:   map[string]*ldpLedger{},
		statsBudget:  cfg.StatsBudget,
	}
	if s.statsBudget <= 0 {
		s.statsBudget = DefaultStatsBudget
	}
	if s.store == nil && cfg.StateDir != "" {
		st, err := NewDirStore(cfg.StateDir)
		if err != nil {
			baseCancel()
			return nil, err
		}
		s.store = st
	}
	for name, ds := range cfg.Datasets {
		s.runtimes[name] = ds.Runtime()
	}
	for name, rt := range cfg.Runtimes {
		if _, dup := s.runtimes[name]; dup {
			baseCancel()
			return nil, fmt.Errorf("server: dataset %q configured twice", name)
		}
		s.runtimes[name] = rt
	}
	if s.cluster != nil {
		if s.store == nil {
			baseCancel()
			return nil, fmt.Errorf("server: cluster mode requires a shared store (set Store or StateDir)")
		}
		s.nodeID = s.cluster.Self().ID
		s.forward = &http.Client{Transport: cfg.Transport}
		s.cluster.OnChange(func(int) { s.scheduleRebalance() })
	}
	s.mux = s.routes()
	if s.store != nil {
		if err := s.recoverJobs(); err != nil {
			baseCancel()
			return nil, fmt.Errorf("server: recover state: %w", err)
		}
	}
	if s.cluster != nil && cfg.ProbeInterval > 0 {
		s.wg.Add(1)
		go s.probeLoop(cfg.ProbeInterval)
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// routes builds the endpoint table (Go 1.22 method+wildcard patterns).
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/estimates", s.handleSubmit)
	mux.HandleFunc("GET /v1/estimates/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/estimates/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/estimates/{id}/questions", s.handleQuestions)
	mux.HandleFunc("POST /v1/estimates/{id}/answers", s.handleAnswers)
	mux.HandleFunc("GET /v1/estimates/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/estimates/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/estimates/{id}/revise", s.handleRevise)
	mux.HandleFunc("POST /v1/updates", s.handleUpdates)
	mux.HandleFunc("POST /v1/advise", s.handleAdvise)
	mux.HandleFunc("GET /v1/stats", s.handleStatsGet)
	mux.HandleFunc("POST /v1/stats", s.handleStatsPost)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /varz", s.handleVarz)
	return mux
}

// Drain stops the server gracefully: new submissions are rejected with
// 503, running jobs are interrupted (they checkpoint and park, so a
// restarted server resumes them), and Drain waits for every job
// goroutine to finish — bounded by ctx.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.baseCancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.sched.Close()
	return nil
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// ---- handlers ----

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeErr(w, http.StatusServiceUnavailable, "draining", "server is draining; retry against a live replica", time.Second)
		return
	}
	var req client.EstimateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "malformed request body: "+err.Error(), 0)
		return
	}
	if _, apiErr := s.resolve(&req); apiErr != nil {
		writeAPIErr(w, http.StatusBadRequest, apiErr)
		return
	}
	// Cluster routing: the ring owner runs the job. Forwarded requests
	// are always accepted locally (single hop); if every live owner is
	// unreachable the ring collapses onto us and we serve the job —
	// the lone-survivor degradation.
	if s.clustered() && r.Header.Get(ForwardHeader) == "" {
		if node, _ := s.cluster.Owner(req.Owner); node.ID != s.nodeID {
			if s.forwardSubmit(w, r, &req) {
				return
			}
		}
	}
	adm, err := s.sched.Admit(req.Tenant)
	if err != nil {
		var over *fleet.OverBudgetError
		if errors.As(err, &over) {
			retry := over.RetryAfter
			if retry <= 0 {
				retry = time.Second
			}
			writeErr(w, http.StatusTooManyRequests, "over_budget",
				fmt.Sprintf("tenant %q over budget: %s", over.Tenant, over.Reason), retry)
			return
		}
		writeErr(w, http.StatusServiceUnavailable, "draining", err.Error(), time.Second)
		return
	}
	j := s.allocJob(req)
	if j == nil {
		adm.Cancel()
		writeErr(w, http.StatusServiceUnavailable, "draining", "server is draining; retry against a live replica", time.Second)
		return
	}
	if err := s.persistJob(j); err != nil {
		s.logf("sightd: persist job %s: %v", j.id, err)
	}
	s.launch(j, adm, nil)
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.routeJob(w, r)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.routeJob(w, r)
	if j == nil {
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleQuestions(w http.ResponseWriter, r *http.Request) {
	j := s.routeJob(w, r)
	if j == nil {
		return
	}
	wait := client.DefaultLongPoll
	if ms := r.URL.Query().Get("wait_ms"); ms != "" {
		v, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || v < 0 {
			writeErr(w, http.StatusBadRequest, "bad_request", "wait_ms must be a non-negative integer", 0)
			return
		}
		wait = time.Duration(v) * time.Millisecond
	}
	if wait > maxLongPoll {
		wait = maxLongPoll
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		ch := j.watch() // before reading state, so no change is missed
		qs := j.questions()
		if len(qs) > 0 || j.terminal() {
			writeJSON(w, http.StatusOK, client.QuestionsResponse{Status: j.currentStatus(), Questions: qs})
			return
		}
		select {
		case <-ch:
		case <-deadline.C:
			writeJSON(w, http.StatusOK, client.QuestionsResponse{
				Status: j.currentStatus(), Questions: []client.Question{},
			})
			return
		case <-r.Context().Done():
			// Client went away mid-long-poll: just unwind — nothing is
			// registered anywhere, so nothing leaks.
			return
		}
	}
}

func (s *Server) handleAnswers(w http.ResponseWriter, r *http.Request) {
	j := s.routeJob(w, r)
	if j == nil {
		return
	}
	var req client.AnswersRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "malformed request body: "+err.Error(), 0)
		return
	}
	for _, a := range req.Answers {
		if !label.Label(a.Label).Valid() {
			writeErr(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("invalid label %d for stranger %d (want 1, 2 or 3)", a.Label, a.Stranger), 0)
			return
		}
	}
	if j.terminal() {
		writeErr(w, http.StatusConflict, "conflict", "estimate already finished", 0)
		return
	}
	writeJSON(w, http.StatusOK, client.AnswersResponse{Accepted: j.acceptAnswers(req.Answers)})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.routeJob(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	j.trace.WriteTo(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	counts := map[string]int{}
	for _, j := range s.jobs {
		counts[j.currentStatus()]++
	}
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	h := client.HealthResponse{Status: status, Draining: draining, Ready: !draining, Jobs: counts}
	if s.clustered() {
		// Shard-ownership and readiness fields: a load balancer (or the
		// peer prober) reads these to tell a draining replica — reachable
		// but not accepting work — from a dead one, and to see how much
		// of the ring each replica currently owns.
		h.Node = s.nodeID
		h.RingVersion = s.cluster.Version()
		h.ShardsOwned = s.cluster.SelfSlots()
		h.ShardsTotal = s.cluster.RingSize()
		h.Peers = map[string]string{}
		for _, m := range s.cluster.Members() {
			state := "alive"
			if !m.Alive {
				state = "dead"
			}
			h.Peers[m.Node.ID] = state
		}
	}
	writeJSON(w, http.StatusOK, h)
}

// handleVarz dumps the process-wide expvar registry plus the server's
// own sections (pipeline metrics, scheduler stats, job counts) as one
// JSON object, per-instance and without global registration so many
// servers can coexist in one process (tests do this constantly).
func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	out := map[string]json.RawMessage{}
	expvar.Do(func(kv expvar.KeyValue) {
		out[kv.Key] = json.RawMessage(kv.Value.String())
	})
	put := func(key string, v any) {
		b, err := json.Marshal(v)
		if err != nil {
			return
		}
		out[key] = b
	}
	put("sightd_metrics", s.metrics.Snapshot())
	put("sightd_scheduler", s.sched.Stats())
	s.mu.Lock()
	counts := map[string]int{}
	for _, j := range s.jobs {
		counts[j.currentStatus()]++
	}
	s.mu.Unlock()
	put("sightd_jobs", counts)
	put("sightd_ldp", s.ldpVarz())
	if s.clustered() {
		put("sightd_cluster", map[string]any{
			"node":         s.nodeID,
			"ring_version": s.cluster.Version(),
			"shards_owned": s.cluster.SelfSlots(),
			"members":      s.cluster.Members(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// allocJob registers a new job under a fresh id, or returns nil when
// the server is draining. Node-prefixed ids keep replicas sharing a
// store from ever colliding; single-node ids stay exactly as before.
func (s *Server) allocJob(req client.EstimateRequest) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil
	}
	s.nextID++
	id := fmt.Sprintf("e%06d", s.nextID)
	if s.nodeID != "" {
		id = s.nodeID + "-" + id
	}
	j := newJob(id, req)
	j.node = s.nodeID
	s.jobs[j.id] = j
	return j
}

// job looks a job up by id.
func (s *Server) job(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// ---- job execution ----

// resolved is a validated, materialized estimate request.
type resolved struct {
	net    *sight.Network
	snap   *graph.Snapshot
	ecfg   core.Config
	stored *dataset.StoredAnnotator // nil for wire annotators
	gen    uint64                   // dataset update generation at resolve time
}

// resolve validates the request and materializes its network, options
// and annotator source. It is called at submit time (so malformed
// requests fail with 400 before anything is queued) and again when a
// recovered job relaunches after a restart.
func (s *Server) resolve(req *client.EstimateRequest) (*resolved, *client.APIError) {
	bad := func(format string, args ...any) *client.APIError {
		return &client.APIError{Code: "bad_request", Message: fmt.Sprintf(format, args...)}
	}
	if req.TimeoutMillis < 0 {
		return nil, bad("timeout_ms must be >= 0")
	}
	res := &resolved{}
	switch {
	case req.Dataset != "" && req.Network != nil:
		return nil, bad("set exactly one of dataset and network, not both")
	case req.Dataset == "" && req.Network == nil:
		return nil, bad("set exactly one of dataset and network")
	case req.Dataset != "":
		rt, ok := s.runtimes[req.Dataset]
		if !ok {
			return nil, bad("unknown dataset %q", req.Dataset)
		}
		// Every dataset job runs off the frozen snapshot view — for
		// mmap'd .snap files because there is no live graph at all, and
		// for graph-backed datasets so POST /v1/updates can mutate the
		// live graph without racing running estimates. The snapshot,
		// profile store and update generation are read under one lock
		// acquisition, so a job never sees a half-applied batch.
		s.mu.Lock()
		snap, profiles, gen := rt.Snapshot, rt.Profiles, s.dsGen[req.Dataset]
		s.mu.Unlock()
		res.net = sight.WrapSnapshot(snap, profiles)
		res.snap = snap
		res.gen = gen
	default:
		net, err := buildNetwork(req.Network)
		if err != nil {
			return nil, bad("invalid network payload: %v", err)
		}
		res.net = net
	}
	owner := graph.UserID(req.Owner)
	if !res.net.HasUser(owner) {
		return nil, bad("owner %d is not in the network", req.Owner)
	}
	switch req.Annotator {
	case "", client.AnnotatorRemote:
		// Questions go over the wire; nothing to materialize.
	case client.AnnotatorStored:
		if req.Dataset == "" {
			return nil, bad("annotator %q requires a dataset reference", client.AnnotatorStored)
		}
		rec, ok := s.runtimes[req.Dataset].Owner(owner)
		if !ok {
			return nil, bad("dataset %q has no stored labels for owner %d", req.Dataset, req.Owner)
		}
		res.stored = &dataset.StoredAnnotator{Labels: rec.Labels, Fallback: label.Risky}
	default:
		return nil, bad("unknown annotator %q (want %q or %q)", req.Annotator, client.AnnotatorStored, client.AnnotatorRemote)
	}
	opts, err := optionsFrom(req.Options)
	if err != nil {
		return nil, bad("invalid options: %v", err)
	}
	res.ecfg, err = opts.EngineConfig()
	if err != nil {
		return nil, bad("invalid options: %v", err)
	}
	return res, nil
}

// buildNetwork materializes an inline network payload.
func buildNetwork(p *client.NetworkPayload) (*sight.Network, error) {
	net := sight.NewNetwork()
	for _, u := range p.Users {
		net.AddUser(graph.UserID(u))
	}
	for _, e := range p.Edges {
		if err := net.AddFriendship(graph.UserID(e[0]), graph.UserID(e[1])); err != nil {
			return nil, err
		}
	}
	for u, attrs := range p.Attributes {
		for name, value := range attrs {
			net.SetAttribute(graph.UserID(u), name, value)
		}
	}
	for u, items := range p.Visibility {
		for item, visible := range items {
			net.SetVisibility(graph.UserID(u), item, visible)
		}
	}
	return net, nil
}

// optionsFrom maps the wire options onto sight.Options, starting from
// the paper defaults.
func optionsFrom(p *client.OptionsPayload) (sight.Options, error) {
	o := sight.DefaultOptions()
	if p == nil {
		return o, nil
	}
	if p.Seed != nil {
		o.Seed = *p.Seed
	}
	if p.Alpha != nil {
		o.Pooling.Alpha = *p.Alpha
	}
	if p.Beta != nil {
		o.Pooling.Beta = *p.Beta
	}
	if p.Strategy != nil {
		switch *p.Strategy {
		case "npp":
			o.Pooling.Strategy = sight.PoolNPP
		case "nsp":
			o.Pooling.Strategy = sight.PoolNSP
		default:
			return o, fmt.Errorf("unknown strategy %q (want \"npp\" or \"nsp\")", *p.Strategy)
		}
	}
	if p.PerRound != nil {
		o.Learning.PerRound = *p.PerRound
	}
	if p.Confidence != nil {
		o.Learning.Confidence = *p.Confidence
	}
	if p.StableRounds != nil {
		o.Learning.StableRounds = *p.StableRounds
	}
	if p.RMSEThreshold != nil {
		o.Learning.RMSEThreshold = *p.RMSEThreshold
	}
	if p.MaxRounds != nil {
		o.Learning.MaxRounds = *p.MaxRounds
	}
	if p.Sampler != nil {
		o.Learning.Sampler = *p.Sampler
	}
	if p.Stopper != nil {
		o.Learning.Stopper = *p.Stopper
	}
	return o, nil
}

// launch runs the job on its admission in a tracked goroutine.
func (s *Server) launch(j *job, adm *fleet.Admission, resume *core.Checkpoint) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.runJob(j, adm, resume)
	}()
}

// runJob executes one estimate end to end: materialize the request,
// wire up checkpointing/observability, run the exact serial engine
// path through the scheduler, and record the outcome. Drain
// interruptions park the job (its checkpoint survives; a restarted
// server resumes it); everything else — completion, deadline expiry,
// client cancellation, hard failure — is terminal and persisted.
func (s *Server) runJob(j *job, adm *fleet.Admission, resume *core.Checkpoint) {
	res, apiErr := s.resolve(&j.req)
	if apiErr != nil {
		adm.Cancel()
		j.fail(apiErr)
		s.persistFinal(j)
		return
	}
	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if j.req.TimeoutMillis > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(j.req.TimeoutMillis)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	defer cancel()
	j.setCancel(cancel)
	j.setGen(res.gen)

	ecfg := res.ecfg
	ecfg.Observer = j.trace
	ecfg.Metrics = s.metrics
	ecfg.Resume = resume
	// Incremental plumbing: revisions splice unchanged pools from the
	// prior run, and every job streams per-pool report deltas as its
	// pools finish (GET /v1/estimates/{id}/stream).
	ecfg.Reuse = j.reuseRun()
	ecfg.OnPool = func(run *core.OwnerRun, pr core.PoolRun, index, total int) {
		j.addPoolDelta(poolDelta(run, pr, index, total))
	}
	if s.store != nil {
		id := j.id
		ecfg.Checkpoint = func(cp *core.Checkpoint) error {
			if s.isKilled() {
				// A dead node must not keep writing to the shared store —
				// the run is being torn down anyway.
				return nil
			}
			if err := s.store.PutCheckpoint(id, cp); err != nil {
				return err
			}
			if s.onCheckpoint != nil {
				s.onCheckpoint(id)
			}
			return nil
		}
	}
	var ann active.FallibleAnnotator
	if res.stored != nil {
		ann = countingAnnotator{inner: active.Infallible(*res.stored), j: j}
	} else {
		ann = wireAnnotator{j: j}
	}

	run, err := adm.Run(ctx, fleet.Job{
		Graph:      res.net.Graph(),
		Store:      res.net.Profiles(),
		Snapshot:   res.snap,
		Owner:      j.owner,
		Annotator:  ann,
		Confidence: math.NaN(),
		Configure: func(c *core.Config) {
			// Replace the scheduler's default engine config with the
			// job's, keeping the fields the scheduler owns.
			snap, tenant := c.Snapshot, c.Tenant
			*c = ecfg
			c.Snapshot, c.Tenant = snap, tenant
			j.markRunning()
		},
	})
	drained := s.isDraining() && !j.wasUserCanceled()
	if err != nil {
		if drained && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			j.park()
			return
		}
		code := "internal"
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			code = "canceled"
		}
		j.fail(&client.APIError{Code: code, Message: err.Error()})
		s.persistFinal(j)
		return
	}
	if run.Partial && drained {
		// The drain interrupted a running job: its answers are
		// checkpointed, so park it for the next process instead of
		// publishing a partial report.
		j.park()
		return
	}
	rep := client.FromReport(sight.AssembleReport(run))
	j.setLastRun(run)
	j.complete(rep, run.QueriedCount())
	s.persistFinal(j)
}

// ---- response helpers ----

// writeJSON writes v as the response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// writeErr writes the unified error envelope (docs/API.md):
// {"error":{"code","message","retry_after_ms"}}. retryAfter > 0 adds
// the millisecond retry hint plus a Retry-After header (whole seconds,
// rounded up); zero means no hint. Every /v1 endpoint reports failures
// through this one shape.
func writeErr(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	apiErr := &client.APIError{Code: code, Message: msg}
	if retryAfter > 0 {
		apiErr.RetryAfterMillis = retryAfter.Milliseconds()
		if apiErr.RetryAfterMillis == 0 {
			apiErr.RetryAfterMillis = 1 // sub-millisecond hints still round up to a hint
		}
	}
	writeAPIErr(w, status, apiErr)
}

// writeAPIErr writes an already built APIError in the unified
// envelope, filling whichever of the two retry fields (canonical
// milliseconds, legacy whole seconds) is missing so clients of either
// generation see a coherent hint.
func writeAPIErr(w http.ResponseWriter, status int, apiErr *client.APIError) {
	if apiErr.RetryAfterMillis == 0 && apiErr.RetryAfter > 0 {
		apiErr.RetryAfterMillis = int64(apiErr.RetryAfter) * 1000
	}
	if apiErr.RetryAfter == 0 && apiErr.RetryAfterMillis > 0 {
		apiErr.RetryAfter = int((apiErr.RetryAfterMillis + 999) / 1000)
	}
	if apiErr.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(apiErr.RetryAfter))
	}
	writeJSON(w, status, map[string]*client.APIError{"error": apiErr})
}
