package server

import (
	"runtime"
	"sync"
	"testing"

	"sightrisk/client"
	"sightrisk/internal/dataset"
	"sightrisk/internal/delta"
	"sightrisk/internal/graph"
	"sightrisk/internal/synthetic"
)

// TestUpdatesCoalescePerDrain: concurrent update requests against one
// dataset are drained by a single leader, coalesced into one batch and
// applied with ONE generation bump (pool invalidation) per drain — not
// one per request. A high-rate crawler feed must not turn every edge
// into its own snapshot swap.
func TestUpdatesCoalescePerDrain(t *testing.T) {
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = 1
	cfg.Ego.Strangers = 60
	cfg.Seed = 91
	study, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.FromStudy(study, true)
	srv, err := New(Config{Datasets: map[string]*dataset.Dataset{"study": ds}, Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Kill()
	rt := srv.runtimes["study"]

	const followers = 8
	block := make(chan struct{})
	var hookMu sync.Mutex
	var drains []int
	first := true
	srv.updDrainHook = func(name string, merged int) {
		hookMu.Lock()
		wait := first
		first = false
		drains = append(drains, merged)
		hookMu.Unlock()
		if wait {
			// Hold the leader's first drain open so the followers pile up
			// behind it in the queue.
			<-block
		}
	}

	genAt := func() uint64 {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return srv.dsGen["study"]
	}
	genBefore := genAt()

	type result struct {
		resp *client.UpdatesResponse
		err  error
	}
	results := make(chan result, followers+1)
	apply := func(node int64) {
		resp, _, err := srv.applyUpdates("study", rt, delta.Batch{{Kind: delta.NodeAdd, A: graph.UserID(node)}})
		results <- result{resp, err}
	}

	// Leader: enters the drain loop and blocks inside the hook.
	go apply(910000)
	// Wait until the leader is inside its first drain.
	for {
		hookMu.Lock()
		started := len(drains) > 0
		hookMu.Unlock()
		if started {
			break
		}
		runtime.Gosched()
	}
	// Followers: all enqueue behind the blocked leader.
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			apply(int64(910001 + i))
		}(i)
	}
	// Give the followers a chance to enqueue, then release the leader.
	for {
		srv.updMu.Lock()
		queued := len(srv.updQ["study"].pending)
		srv.updMu.Unlock()
		if queued == followers {
			break
		}
		runtime.Gosched()
	}
	close(block)
	wg.Wait()

	var merged []int
	for i := 0; i < followers+1; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		// Every waiter in a drain shares the drain's response: Applied is
		// the coalesced batch size, which here (distinct nodes, nothing
		// deduplicated) equals the number of merged requests.
		if r.resp.Applied != r.resp.Merged {
			t.Errorf("applied = %d, merged = %d; want equal for distinct updates", r.resp.Applied, r.resp.Merged)
		}
		merged = append(merged, r.resp.Merged)
	}

	// Exactly two drains: the leader's own request, then one coalesced
	// drain carrying all followers — so exactly two generation bumps.
	hookMu.Lock()
	gotDrains := append([]int(nil), drains...)
	hookMu.Unlock()
	if len(gotDrains) != 2 {
		t.Fatalf("drains = %v, want exactly 2 (leader, then coalesced followers)", gotDrains)
	}
	if gotDrains[0] != 1 || gotDrains[1] != followers {
		t.Errorf("drain sizes = %v, want [1 %d]", gotDrains, followers)
	}
	if got := genAt() - genBefore; got != 2 {
		t.Errorf("generation bumped %d times for %d requests, want 2 (one invalidation per drain)", got, followers+1)
	}
	sawCoalesced := 0
	for _, m := range merged {
		if m == followers {
			sawCoalesced++
		}
	}
	if sawCoalesced != followers {
		t.Errorf("merged counts = %v, want %d responses reporting Merged=%d", merged, followers, followers)
	}

	// All nine nodes landed despite only two applies.
	for i := int64(910000); i <= int64(910000+followers); i++ {
		if !rt.Graph.HasNode(graph.UserID(i)) {
			t.Errorf("node %d missing after coalesced drains", i)
		}
	}
}
