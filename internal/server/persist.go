package server

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sightrisk/client"
	"sightrisk/internal/core"
)

// Durability sits behind the pluggable Store (state.go). Per job id the
// store holds the submission record, the per-round checkpoint and the
// terminal outcome; a job with a record but no final outcome did not
// finish and is requeued on recovery (single node) or adopted by the
// ring owner (cluster). The checkpoint stores only owner answers, so a
// resumed run replays them and never re-asks — and, because question
// order is deterministic, finishes byte-identical to an uninterrupted
// run on whichever replica resumes it.

// persistJob durably records a submission (no-op without a store, and
// after Kill — a dead node writes nothing).
func (s *Server) persistJob(j *job) error {
	if s.store == nil || s.isKilled() {
		return nil
	}
	return s.store.PutJob(JobRecord{ID: j.id, Node: s.nodeID, Request: j.req})
}

// persistFinal durably records a terminal outcome; failures are logged
// rather than failing the job (the in-memory result is still served).
func (s *Server) persistFinal(j *job) {
	if s.store == nil || s.isKilled() {
		return
	}
	st := j.snapshot()
	err := s.store.PutFinal(j.id, FinalRecord{
		Status: st.Status, Queries: st.Queries, Report: st.Report, Error: st.Error,
	})
	if err != nil {
		s.logf("sightd: persist final state of %s: %v", j.id, err)
	}
}

// recoverJobs rebuilds job state from the store: finished jobs come
// back queryable (status, report), unfinished ones are requeued with
// their checkpoints so they resume where the previous process stopped.
// In cluster mode only jobs this node currently owns on the ring are
// restored; the rest belong to peers (rebalance adopts them if
// ownership later shifts here). Called from New before the server
// accepts traffic.
func (s *Server) recoverJobs() error {
	ids, err := s.store.Jobs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		rec, err := s.store.GetJob(id)
		if err != nil {
			s.logf("sightd: skip unreadable job record %s: %v", id, err)
			continue
		}
		if s.cluster != nil {
			if node, _ := s.cluster.Owner(rec.Request.Owner); node.ID != s.nodeID {
				continue
			}
		}
		if _, err := s.restoreJob(rec); err != nil {
			return fmt.Errorf("restore %s: %w", id, err)
		}
	}
	return nil
}

// restoreJob materializes a persisted job into the in-memory table:
// terminal outcomes come back queryable, unfinished jobs are admitted
// and relaunched from their checkpoint. Idempotent — an id already in
// the table is returned as-is. This is the shared path behind restart
// recovery and cluster adoption.
func (s *Server) restoreJob(rec JobRecord) (*job, error) {
	s.mu.Lock()
	if j := s.jobs[rec.ID]; j != nil {
		s.mu.Unlock()
		return j, nil
	}
	j := newJob(rec.ID, rec.Request)
	j.node = s.nodeID
	s.jobs[rec.ID] = j
	s.mu.Unlock()
	s.trackID(rec.ID)
	fin, err := s.store.GetFinal(rec.ID)
	switch {
	case err == nil:
		// Finished in a previous process: restore the outcome. The JSONL
		// trace was in-memory in that process and is gone.
		j.mu.Lock()
		j.status = fin.Status
		j.queries = fin.Queries
		j.report = fin.Report
		j.apiErr = fin.Error
		j.mu.Unlock()
	case errors.Is(err, os.ErrNotExist):
		// Unfinished: requeue, resuming from the checkpoint if the
		// previous owner got far enough to write one.
		var resume *core.Checkpoint
		if cp, err := s.store.GetCheckpoint(rec.ID); err == nil {
			resume = cp
		} else if !errors.Is(err, os.ErrNotExist) {
			s.logf("sightd: ignore unreadable checkpoint for %s: %v", rec.ID, err)
		}
		adm, err := s.sched.Admit(rec.Request.Tenant)
		if err != nil {
			j.fail(&client.APIError{Code: "over_budget", Message: fmt.Sprintf("requeue after restart: %v", err)})
		} else {
			s.launch(j, adm, resume)
		}
	default:
		return nil, err
	}
	return j, nil
}

// trackID advances the id counter past a recovered job's id so new
// submissions never collide with persisted ones. In cluster mode only
// this node's own "<node>-e<n>" ids count; peer ids live in peer
// counters.
func (s *Server) trackID(id string) {
	if s.nodeID != "" {
		prefix := s.nodeID + "-"
		if !strings.HasPrefix(id, prefix) {
			return
		}
		id = strings.TrimPrefix(id, prefix)
	}
	n, err := strconv.Atoi(strings.TrimPrefix(id, "e"))
	if err != nil {
		return
	}
	s.mu.Lock()
	if n > s.nextID {
		s.nextID = n
	}
	s.mu.Unlock()
}
