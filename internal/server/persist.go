package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"sightrisk/client"
	"sightrisk/internal/core"
)

// State-directory layout, per job id:
//
//	<id>.job.json     the normalized EstimateRequest (written at submit)
//	<id>.cp.json      the engine checkpoint (rewritten every round)
//	<id>.final.json   the terminal outcome (report or error)
//
// A job with a .job.json but no .final.json did not finish in the
// previous process: recovery requeues it, resuming from the checkpoint
// when one exists. The checkpoint stores only owner answers, so a
// resumed run replays them and never re-asks — and, because question
// order is deterministic, finishes byte-identical to an uninterrupted
// run.

// jobRecord is the persisted submission.
type jobRecord struct {
	ID      string                 `json:"id"`
	Request client.EstimateRequest `json:"request"`
}

// finalRecord is the persisted terminal outcome.
type finalRecord struct {
	Status  string           `json:"status"`
	Queries int              `json:"queries"`
	Report  *client.Report   `json:"report,omitempty"`
	Error   *client.APIError `json:"error,omitempty"`
}

func (s *Server) jobPath(id string) string {
	return filepath.Join(s.stateDir, id+".job.json")
}

func (s *Server) checkpointPath(id string) string {
	return filepath.Join(s.stateDir, id+".cp.json")
}

func (s *Server) finalPath(id string) string {
	return filepath.Join(s.stateDir, id+".final.json")
}

// persistJob durably records a submission (no-op without a state dir).
func (s *Server) persistJob(j *job) error {
	if s.stateDir == "" {
		return nil
	}
	b, err := json.Marshal(jobRecord{ID: j.id, Request: j.req})
	if err != nil {
		return err
	}
	return atomicWrite(s.jobPath(j.id), b)
}

// persistFinal durably records a terminal outcome; failures are logged
// rather than failing the job (the in-memory result is still served).
func (s *Server) persistFinal(j *job) {
	if s.stateDir == "" {
		return
	}
	st := j.snapshot()
	b, err := json.Marshal(finalRecord{
		Status: st.Status, Queries: st.Queries, Report: st.Report, Error: st.Error,
	})
	if err == nil {
		err = atomicWrite(s.finalPath(j.id), b)
	}
	if err != nil {
		s.logf("sightd: persist final state of %s: %v", j.id, err)
	}
}

// atomicWrite writes via a temp file + rename so readers (and crashes)
// never observe a half-written file.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// recoverJobs rebuilds job state from the state directory: finished
// jobs come back queryable (status, report), unfinished ones are
// requeued with their checkpoints so they resume where the previous
// process stopped. Called from New before the server accepts traffic.
func (s *Server) recoverJobs() error {
	if err := os.MkdirAll(s.stateDir, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(s.stateDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".job.json") {
			continue
		}
		id := strings.TrimSuffix(name, ".job.json")
		var rec jobRecord
		if err := readJSON(s.jobPath(id), &rec); err != nil {
			s.logf("sightd: skip unreadable job record %s: %v", name, err)
			continue
		}
		if rec.ID == "" {
			rec.ID = id
		}
		j := newJob(rec.ID, rec.Request)
		s.trackID(rec.ID)
		var fin finalRecord
		switch err := readJSON(s.finalPath(id), &fin); {
		case err == nil:
			// Finished in a previous process: restore the outcome. The
			// JSONL trace was in-memory in that process and is gone.
			j.mu.Lock()
			j.status = fin.Status
			j.queries = fin.Queries
			j.report = fin.Report
			j.apiErr = fin.Error
			j.mu.Unlock()
		case errors.Is(err, os.ErrNotExist):
			// Unfinished: requeue, resuming from the checkpoint if the
			// previous process got far enough to write one.
			var resume *core.Checkpoint
			if cp, err := core.LoadCheckpointFile(s.checkpointPath(id)); err == nil {
				resume = cp
			} else if !errors.Is(err, os.ErrNotExist) {
				s.logf("sightd: ignore unreadable checkpoint for %s: %v", id, err)
			}
			adm, err := s.sched.Admit(rec.Request.Tenant)
			if err != nil {
				j.fail(&client.APIError{Code: "over_budget", Message: fmt.Sprintf("requeue after restart: %v", err)})
			} else {
				s.launch(j, adm, resume)
			}
		default:
			return fmt.Errorf("read %s: %w", s.finalPath(id), err)
		}
		s.mu.Lock()
		s.jobs[rec.ID] = j
		s.mu.Unlock()
	}
	return nil
}

// trackID advances the id counter past a recovered job's id so new
// submissions never collide with persisted ones.
func (s *Server) trackID(id string) {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "e"))
	if err != nil {
		return
	}
	s.mu.Lock()
	if n > s.nextID {
		s.nextID = n
	}
	s.mu.Unlock()
}

// readJSON reads and unmarshals one file.
func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}
