package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"sightrisk/client"
	"sightrisk/internal/core"
	"sightrisk/internal/dataset"
	"sightrisk/internal/delta"
	"sightrisk/internal/fleet"
	"sightrisk/internal/graph"
)

// Incremental re-estimation over the wire:
//
//	POST /v1/updates                 apply a graph/profile delta batch
//	                                 to a mutable dataset
//	POST /v1/estimates/{id}/revise   re-estimate a finished job against
//	                                 the updated dataset, splicing every
//	                                 pool the updates left untouched
//	GET  /v1/estimates/{id}/stream   NDJSON per-pool report deltas
//
// Updates swap a dataset runtime's frozen snapshot and (copy-on-write)
// profile store under the server mutex; running estimates keep the
// view they resolved, new jobs see the post-batch view. A revision's
// report is byte-identical to a from-scratch submission against the
// updated dataset — the engine's Reuse splice only skips pools whose
// content key proves their inputs unchanged.

// toBatch converts wire updates to engine delta records.
func toBatch(us []client.Update) delta.Batch {
	b := make(delta.Batch, len(us))
	for i, u := range us {
		b[i] = delta.Update{
			Kind:    delta.Kind(u.Kind),
			A:       graph.UserID(u.A),
			B:       graph.UserID(u.B),
			Attr:    u.Attr,
			Value:   u.Value,
			Visible: u.Visible,
		}
	}
	return b
}

// poolDelta renders one finished pool as its wire report delta — the
// same entries AssembleReport will emit for the pool, so a client
// concatenating the stream reconstructs the report's stranger list.
func poolDelta(run *core.OwnerRun, pr core.PoolRun, index, total int) client.PoolDelta {
	d := client.PoolDelta{
		Pool:   pr.Pool.ID(),
		Index:  index,
		Total:  total,
		Status: string(pr.Status),
		Reused: pr.Reused,
	}
	for _, m := range pr.Pool.Members {
		d.Strangers = append(d.Strangers, client.StrangerRisk{
			User:              int64(m),
			Label:             int(pr.Result.Labels[m]),
			OwnerLabeled:      pr.Result.OwnerLabeled[m],
			NetworkSimilarity: run.NSG.Score[m],
			Pool:              pr.Pool.ID(),
			Fallback:          pr.Fallback[m],
		})
	}
	return d
}

// handleUpdates applies a delta batch to a mutable dataset. In cluster
// mode the batch is forwarded to the replica owning UpdatesRequest.
// Owner, so a follow-up revision for that owner (routed identically)
// sees the updated graph.
func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeErr(w, http.StatusServiceUnavailable, "draining", "server is draining; retry against a live replica", time.Second)
		return
	}
	var req client.UpdatesRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "malformed request body: "+err.Error(), 0)
		return
	}
	if req.Dataset == "" {
		writeErr(w, http.StatusBadRequest, "bad_request", "dataset is required", 0)
		return
	}
	rt, ok := s.runtimes[req.Dataset]
	if !ok {
		writeErr(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("unknown dataset %q", req.Dataset), 0)
		return
	}
	if len(req.Updates) == 0 {
		writeErr(w, http.StatusBadRequest, "bad_request", "updates must not be empty", 0)
		return
	}
	batch := toBatch(req.Updates)
	if err := batch.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	if s.clustered() && r.Header.Get(ForwardHeader) == "" {
		if node, _ := s.cluster.Owner(req.Owner); node.ID != s.nodeID {
			if s.forwardOwner(w, r, req.Owner, "POST", "/v1/updates", &req) {
				return
			}
		}
	}
	if rt.Graph == nil {
		writeErr(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("dataset %q is snapshot-backed and read-only; updates need a mutable dataset", req.Dataset), 0)
		return
	}
	resp, _, err := s.applyUpdates(req.Dataset, rt, batch)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "internal", err.Error(), 0)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// updWaiter is one queued update request awaiting a drain: its batch,
// a channel closed when the drain carrying it lands, and the drain's
// shared outcome.
type updWaiter struct {
	batch delta.Batch
	done  chan struct{}
	resp  *client.UpdatesResponse
	gen   uint64
	err   error
}

// updQueue is one dataset's same-tick batch queue: pending holds the
// requests that arrived while a drain was in flight, active marks a
// drain leader at work. Guarded by Server.updMu.
type updQueue struct {
	active  bool
	pending []*updWaiter
}

// applyUpdates hands a validated batch to the dataset's drain queue.
// The first arrival becomes the drain leader: it repeatedly takes
// everything pending — its own batch plus whatever queued while the
// previous drain was applying — merges the batches into one
// (delta.Coalesce) and applies that once. High-rate crawler feeds
// therefore cost one graph mutation, one snapshot, one generation bump
// and one dirty-owner invalidation per drain, however many requests
// merged into it. Followers just enqueue and wait; every request
// merged into a drain shares its response, with Merged counting the
// requests. Returns the wire response and the dataset's new
// generation.
func (s *Server) applyUpdates(name string, rt *dataset.Runtime, b delta.Batch) (*client.UpdatesResponse, uint64, error) {
	wtr := &updWaiter{batch: b, done: make(chan struct{})}
	s.updMu.Lock()
	q := s.updQ[name]
	if q == nil {
		q = &updQueue{}
		s.updQ[name] = q
	}
	q.pending = append(q.pending, wtr)
	if q.active {
		s.updMu.Unlock()
		<-wtr.done
		return wtr.resp, wtr.gen, wtr.err
	}
	q.active = true
	for len(q.pending) > 0 {
		drain := q.pending
		q.pending = nil
		s.updMu.Unlock()
		if s.updDrainHook != nil {
			s.updDrainHook(name, len(drain))
		}
		batches := make([]delta.Batch, len(drain))
		for i, dw := range drain {
			batches[i] = dw.batch
		}
		resp, gen, err := s.applyDrain(name, rt, delta.Coalesce(batches), len(drain))
		for _, dw := range drain {
			dw.resp, dw.gen, dw.err = resp, gen, err
			close(dw.done)
		}
		s.updMu.Lock()
	}
	q.active = false
	s.updMu.Unlock()
	return wtr.resp, wtr.gen, wtr.err
}

// applyDrain applies one coalesced drain to the dataset: the live
// graph mutates in place (no running job reads it — they all hold the
// previous frozen snapshot), the profile store is replaced by a
// copy-on-write clone, and a fresh snapshot is swapped in under the
// server mutex together with the bumped update generation. applyMu is
// held across the mutation so readers that need a consistent clone of
// the live graph (/v1/advise) can quiesce it.
func (s *Server) applyDrain(name string, rt *dataset.Runtime, b delta.Batch, merged int) (*client.UpdatesResponse, uint64, error) {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	s.mu.Lock()
	store := rt.Profiles
	s.mu.Unlock()
	next, err := b.ApplyCloned(rt.Graph, store)
	if err != nil {
		return nil, 0, err
	}
	snap := rt.Graph.Snapshot()
	owners := make([]graph.UserID, 0, len(rt.Owners))
	for _, rec := range rt.Owners {
		owners = append(owners, rec.ID)
	}
	var dirty []int64
	for _, o := range delta.DirtyOwners(rt.Graph, owners, b) {
		dirty = append(dirty, int64(o))
	}
	s.mu.Lock()
	rt.Snapshot, rt.Profiles = snap, next
	s.dsGen[name]++
	gen := s.dsGen[name]
	s.mu.Unlock()
	s.logf("sightd: dataset %s: applied %d updates from %d request(s) (gen %d, %d dirty owners)", name, len(b), merged, gen, len(dirty))
	return &client.UpdatesResponse{Dataset: name, Applied: len(b), DirtyOwners: dirty, Node: s.nodeID, Merged: merged}, gen, nil
}

// handleRevise re-estimates a finished job as a new job, reusing
// whatever the updates since the prior run left untouched. The
// request's updates (if any) are applied first, exactly like
// POST /v1/updates. Two reuse levels apply:
//
//   - owner level: when the prior run is held in memory, no other
//     update batch landed since it ran, and the request's batch
//     provably cannot reach the owner's 2-hop view, the prior report
//     is served as an immediately-done job — no pipeline work at all;
//   - pool level: otherwise the pipeline re-runs with the prior run
//     spliced in, recomputing only pools whose membership or weight
//     content changed.
func (s *Server) handleRevise(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeErr(w, http.StatusServiceUnavailable, "draining", "server is draining; retry against a live replica", time.Second)
		return
	}
	j := s.routeJob(w, r)
	if j == nil {
		return
	}
	var req client.ReviseRequest
	if r.Body != nil {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			writeErr(w, http.StatusBadRequest, "bad_request", "malformed request body: "+err.Error(), 0)
			return
		}
	}
	if j.req.Dataset == "" {
		writeErr(w, http.StatusBadRequest, "bad_request", "revise requires a dataset-backed estimate", 0)
		return
	}
	if j.currentStatus() != client.StatusDone {
		writeErr(w, http.StatusConflict, "conflict", "estimate has not finished; revise a completed job", 0)
		return
	}
	batch := toBatch(req.Updates)
	if err := batch.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	rt, ok := s.runtimes[j.req.Dataset]
	if !ok {
		writeErr(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("unknown dataset %q", j.req.Dataset), 0)
		return
	}
	prior, priorGen := j.reusable()
	var genNow uint64
	solo := true // our batch (if any) was the only request in its drain
	if len(batch) > 0 {
		if rt.Graph == nil {
			writeErr(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("dataset %q is snapshot-backed and read-only; updates need a mutable dataset", j.req.Dataset), 0)
			return
		}
		resp, gen, err := s.applyUpdates(j.req.Dataset, rt, batch)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "internal", err.Error(), 0)
			return
		}
		genNow, solo = gen, resp.Merged <= 1
	} else {
		s.mu.Lock()
		genNow = s.dsGen[j.req.Dataset]
		s.mu.Unlock()
	}
	// Owner-level fast path: the prior run is current (the only updates
	// since it ran are this request's, if any — a drain that merged
	// other requests' batches disqualifies, since their updates share
	// our generation bump) and the batch cannot reach the owner's 2-hop
	// view.
	expectGen := priorGen
	if len(batch) > 0 {
		expectGen++
	}
	if prior != nil && !prior.Partial && genNow == expectGen && solo && !delta.Affected(rt.Graph, j.owner, batch) {
		j2 := s.allocJob(j.req)
		if j2 == nil {
			writeErr(w, http.StatusServiceUnavailable, "draining", "server is draining; retry against a live replica", time.Second)
			return
		}
		j2.setGen(genNow)
		j2.setLastRun(prior)
		if err := s.persistJob(j2); err != nil {
			s.logf("sightd: persist job %s: %v", j2.id, err)
		}
		st := j.snapshot()
		j2.complete(st.Report, prior.QueriedCount())
		s.persistFinal(j2)
		s.logf("sightd: job %s revised as %s without recompute (no reachable updates)", j.id, j2.id)
		writeJSON(w, http.StatusAccepted, j2.snapshot())
		return
	}
	adm, err := s.sched.Admit(j.req.Tenant)
	if err != nil {
		var over *fleet.OverBudgetError
		if errors.As(err, &over) {
			retry := over.RetryAfter
			if retry <= 0 {
				retry = time.Second
			}
			writeErr(w, http.StatusTooManyRequests, "over_budget",
				fmt.Sprintf("tenant %q over budget: %s", over.Tenant, over.Reason), retry)
			return
		}
		writeErr(w, http.StatusServiceUnavailable, "draining", err.Error(), time.Second)
		return
	}
	j2 := s.allocJob(j.req)
	if j2 == nil {
		adm.Cancel()
		writeErr(w, http.StatusServiceUnavailable, "draining", "server is draining; retry against a live replica", time.Second)
		return
	}
	j2.reuse = prior // set before launch; never mutated afterwards
	if err := s.persistJob(j2); err != nil {
		s.logf("sightd: persist job %s: %v", j2.id, err)
	}
	s.launch(j2, adm, nil)
	writeJSON(w, http.StatusAccepted, j2.snapshot())
}

// handleStream serves the job's per-pool report deltas as NDJSON: one
// line per finished pool (replayed from the start on reconnect), then
// a terminal line with Done set carrying the final status and report
// or error.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.routeJob(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	cursor := 0
	for {
		ch := j.watch() // before reading state, so no change is missed
		ds, terminal := j.deltasSince(cursor)
		for _, d := range ds {
			if err := enc.Encode(d); err != nil {
				return
			}
		}
		cursor += len(ds)
		if len(ds) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			st := j.snapshot()
			enc.Encode(client.PoolDelta{Done: true, JobStatus: st.Status, Report: st.Report, Error: st.Error})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}
