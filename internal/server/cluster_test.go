package server_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"sightrisk/client"
	"sightrisk/internal/dataset"
	"sightrisk/internal/faults"
	"sightrisk/internal/obs"
	"sightrisk/internal/place"
	"sightrisk/internal/server"
)

// handlerHolder lets the httptest listener come up before the server
// it will serve exists — the roster needs every node's URL, and every
// node's server needs the roster.
type handlerHolder struct {
	mu sync.Mutex
	h  http.Handler
}

func (hh *handlerHolder) set(h http.Handler) {
	hh.mu.Lock()
	hh.h = h
	hh.mu.Unlock()
}

func (hh *handlerHolder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	hh.mu.Lock()
	h := hh.h
	hh.mu.Unlock()
	if h == nil {
		http.Error(w, "node not up yet", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// testCluster is an in-process N-replica sightd cluster over one
// shared state directory.
type testCluster struct {
	nodes   []place.Node
	srvs    []*server.Server
	hss     []*httptest.Server
	killed  []bool
	metrics []*obs.Metrics
}

// newTestCluster stands up n replicas named n1..nN behind httptest
// listeners, sharing stateDir. customize (optional) tweaks each node's
// config before the server is built.
func newTestCluster(t *testing.T, n int, stateDir string, mkDatasets func() map[string]*dataset.Dataset, customize func(i int, cfg *server.Config)) *testCluster {
	t.Helper()
	tc := &testCluster{
		srvs:    make([]*server.Server, n),
		hss:     make([]*httptest.Server, n),
		killed:  make([]bool, n),
		metrics: make([]*obs.Metrics, n),
	}
	holders := make([]*handlerHolder, n)
	for i := 0; i < n; i++ {
		holders[i] = &handlerHolder{}
		tc.hss[i] = httptest.NewServer(holders[i])
		tc.nodes = append(tc.nodes, place.Node{ID: nodeName(i), URL: tc.hss[i].URL})
	}
	for i := 0; i < n; i++ {
		roster, err := place.NewRoster(nodeName(i), tc.nodes)
		if err != nil {
			t.Fatal(err)
		}
		tc.metrics[i] = &obs.Metrics{}
		cfg := server.Config{
			Datasets:      mkDatasets(),
			Workers:       1,
			StateDir:      stateDir,
			Cluster:       roster,
			Metrics:       tc.metrics[i],
			ProbeInterval: 25 * time.Millisecond,
			Logf:          t.Logf,
		}
		if customize != nil {
			customize(i, &cfg)
		}
		srv, err := server.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tc.srvs[i] = srv
		holders[i].set(srv)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for i := range tc.srvs {
			if !tc.killed[i] {
				tc.srvs[i].Drain(ctx)
				tc.hss[i].Close()
			}
		}
	})
	return tc
}

func nodeName(i int) string { return string(rune('n')) + string(rune('1'+i)) }

// kill simulates the abrupt death of node i: the server stops writing
// to the shared store and the listener goes away so peers see
// connection failures — the closest an in-process harness gets to
// SIGKILL.
func (tc *testCluster) kill(i int) {
	tc.killed[i] = true
	tc.srvs[i].Kill()
	tc.hss[i].CloseClientConnections()
	tc.hss[i].Close()
}

// clusterClient builds a client-side router over the cluster with fast
// long-polls.
func (tc *testCluster) clusterClient(t *testing.T) *client.Cluster {
	t.Helper()
	var cns []client.ClusterNode
	for _, n := range tc.nodes {
		cns = append(cns, client.ClusterNode{ID: n.ID, URL: n.URL})
	}
	cl, err := client.NewCluster(cns)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cl.Clients {
		c.LongPoll = 250 * time.Millisecond
	}
	return cl
}

// ringOwner computes which node the cluster will place the owner on —
// the same pure function every replica evaluates.
func ringOwner(nodes []place.Node, owner int64) string {
	ids := make([]string, len(nodes))
	for i, n := range nodes {
		ids[i] = n.ID
	}
	return place.BuildRing(1, ids).Owner(owner)
}

// TestClusterRoutesByOwner: any replica accepts any submission, but
// the ring owner runs it — and the served report stays byte-identical
// to the serial run no matter which door it came in through.
func TestClusterRoutesByOwner(t *testing.T) {
	mk := func() map[string]*dataset.Dataset {
		return map[string]*dataset.Dataset{"study": testDataset(t, 4, 80, 61)}
	}
	tc := newTestCluster(t, 2, t.TempDir(), mk, nil)
	ds := testDataset(t, 4, 80, 61)
	ctx := context.Background()

	// Every request goes through node n1's front door.
	front := client.New(tc.nodes[0].URL)
	front.NoRetry = true
	sawRemote := false
	for _, rec := range ds.Owners {
		want := serialWireBytes(t, ds, rec.ID)
		st, err := front.Submit(ctx, &client.EstimateRequest{
			Dataset: "study", Owner: int64(rec.ID), Annotator: client.AnnotatorStored,
		})
		if err != nil {
			t.Fatal(err)
		}
		wantNode := ringOwner(tc.nodes, int64(rec.ID))
		if st.Node != wantNode {
			t.Errorf("owner %d placed on %q, ring says %q", rec.ID, st.Node, wantNode)
		}
		if wantNode != "n1" {
			sawRemote = true
		}
		fin, err := front.Wait(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if fin.Status != client.StatusDone {
			t.Fatalf("owner %d: status %q, error %v", rec.ID, fin.Status, fin.Error)
		}
		if got := wireBytes(t, fin.Report); !bytes.Equal(got, want) {
			t.Errorf("owner %d: clustered report differs from serial run\nserved: %s\nserial: %s", rec.ID, got, want)
		}
	}
	if !sawRemote {
		t.Skip("all owners hashed onto the front-door node; forwarding not exercised at this seed")
	}
	if tc.metrics[0].ClusterForwards.Load() == 0 {
		t.Error("owners placed remotely but node n1 recorded no forwards")
	}
}

// TestClusterKillMidRunResumesByteIdentical is the tentpole
// acceptance test: a remote-annotated job's owning replica is killed
// (SIGKILL-style, via a checkpoint tripwire after round k) mid-run;
// the survivor adopts the job from the shared checkpoint store,
// resumes it without re-asking committed questions, and the final
// report is byte-identical to the uninterrupted single-node serial
// run. Survivors must not leak goroutines.
func TestClusterKillMidRunResumesByteIdentical(t *testing.T) {
	runtime.GC()
	beforeGoroutines := runtime.NumGoroutine()

	mk := func() map[string]*dataset.Dataset {
		return map[string]*dataset.Dataset{"study": testDataset(t, 1, 120, 63)}
	}
	ds := testDataset(t, 1, 120, 63)
	owner := ds.Owners[0].ID
	want := serialWireBytes(t, ds, owner)

	// Kill the owning node right after the 3rd checkpoint flush — a few
	// committed rounds, strictly mid-run.
	killNow := make(chan struct{})
	trip := faults.NewTripwire(3, func() { close(killNow) })
	tc := newTestCluster(t, 2, t.TempDir(), mk, func(i int, cfg *server.Config) {
		cfg.OnCheckpoint = func(string) { trip.Observe() }
	})
	victim := ringOwner(tc.nodes, int64(owner))
	cl := tc.clusterClient(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	st, err := cl.Submit(ctx, &client.EstimateRequest{Dataset: "study", Owner: int64(owner)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Node != victim {
		t.Fatalf("job placed on %q, ring says %q", st.Node, victim)
	}

	type driven struct {
		rep *client.Report
		err error
	}
	done := make(chan driven, 1)
	go func() {
		rep, err := cl.Drive(ctx, st.ID, answerFromDataset(ds, owner))
		done <- driven{rep, err}
	}()

	select {
	case <-killNow:
	case d := <-done:
		t.Fatalf("job finished before the tripwire fired (rep=%v err=%v)", d.rep != nil, d.err)
	case <-ctx.Done():
		t.Fatal("tripwire never fired")
	}
	for i, n := range tc.nodes {
		if n.ID == victim {
			tc.kill(i)
		}
	}

	d := <-done
	if d.err != nil {
		t.Fatalf("drive across node death: %v", d.err)
	}
	if d.rep.Partial {
		t.Fatalf("failover run ended partial: interrupt %q", d.rep.Interrupt)
	}
	if got := wireBytes(t, d.rep); !bytes.Equal(got, want) {
		t.Errorf("post-failover report differs from serial run\nserved: %s\nserial: %s", got, want)
	}

	// The survivor must report having adopted the job, and the final
	// status must name it as the host.
	fin, err := cl.Get(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Node == victim || fin.Node == "" {
		t.Errorf("finished job reports node %q, want a survivor", fin.Node)
	}
	adoptions := uint64(0)
	for i, n := range tc.nodes {
		if n.ID != victim {
			adoptions += tc.metrics[i].ClusterAdoptions.Load()
		}
	}
	if adoptions == 0 {
		t.Error("no survivor recorded an adoption")
	}

	// No goroutine leaks on survivors: drain everything and compare
	// against the pre-test count (with slack for runtime pools).
	drainCtx, drainCancel := context.WithTimeout(context.Background(), 30*time.Second)
	for i := range tc.srvs {
		if !tc.killed[i] {
			if err := tc.srvs[i].Drain(drainCtx); err != nil {
				t.Errorf("drain survivor %s: %v", tc.nodes[i].ID, err)
			}
			tc.hss[i].Close()
			tc.killed[i] = true // cleanup already handled
		}
	}
	drainCancel()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= beforeGoroutines+5 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked on survivors: before=%d now=%d\n%s", beforeGoroutines, n, buf)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestClusterHealthz: the health surface carries shard ownership and
// readiness, and distinguishes a draining replica (reachable,
// ready=false) from a dead one (peers map flips to "dead").
func TestClusterHealthz(t *testing.T) {
	mk := func() map[string]*dataset.Dataset {
		return map[string]*dataset.Dataset{"study": testDataset(t, 1, 60, 65)}
	}
	tc := newTestCluster(t, 2, t.TempDir(), mk, nil)
	ctx := context.Background()
	c1 := client.New(tc.nodes[0].URL)

	h, err := c1.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Node != "n1" || !h.Ready || h.RingVersion < 1 {
		t.Fatalf("healthz = %+v, want node n1, ready, ring version >= 1", h)
	}
	if h.ShardsOwned == 0 || h.ShardsOwned >= h.ShardsTotal {
		t.Errorf("shards %d/%d on a live 2-node ring, want a strict share", h.ShardsOwned, h.ShardsTotal)
	}
	if h.Peers["n2"] != "alive" {
		t.Errorf("peers = %v, want n2 alive", h.Peers)
	}

	// Kill n2; n1's prober must mark it dead and absorb its shards.
	tc.kill(1)
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, err = c1.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.Peers["n2"] == "dead" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("n1 never marked n2 dead: %+v", h)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if h.ShardsOwned != h.ShardsTotal {
		t.Errorf("after n2's death n1 owns %d of %d shards — ring did not collapse onto the survivor", h.ShardsOwned, h.ShardsTotal)
	}

	// A draining node answers healthz with ready=false — alive but not
	// accepting work, which is exactly what a balancer must distinguish
	// from dead.
	drainCtx, drainCancel := context.WithTimeout(ctx, 30*time.Second)
	tc.srvs[0].Drain(drainCtx)
	drainCancel()
	h, err = c1.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Ready || h.Status != "draining" {
		t.Errorf("draining healthz = %+v, want ready=false status=draining", h)
	}
}

// TestClusterPartitionFallsBackToSelf: when the forwarding link to the
// ring owner is severed (network partition, not node death), the
// receiving node marks it dead and serves the job itself — requests
// keep succeeding on whichever side the client can reach.
func TestClusterPartitionFallsBackToSelf(t *testing.T) {
	mk := func() map[string]*dataset.Dataset {
		return map[string]*dataset.Dataset{"study": testDataset(t, 4, 80, 67)}
	}
	part := faults.NewPartition(nil)
	tc := newTestCluster(t, 2, t.TempDir(), mk, func(i int, cfg *server.Config) {
		if i == 0 {
			cfg.Transport = part
			cfg.ProbeInterval = 0 // the probe would re-heal liveness mid-test
		}
	})
	ds := testDataset(t, 4, 80, 67)
	ctx := context.Background()

	// Find an owner the ring places on n2, then cut n1 → n2.
	var remote int64 = -1
	for _, rec := range ds.Owners {
		if ringOwner(tc.nodes, int64(rec.ID)) == "n2" {
			remote = int64(rec.ID)
			break
		}
	}
	if remote < 0 {
		t.Skip("no owner hashed onto n2 at this seed")
	}
	u, err := url.Parse(tc.nodes[1].URL)
	if err != nil {
		t.Fatal(err)
	}
	part.Block(u.Host)

	front := client.New(tc.nodes[0].URL)
	front.NoRetry = true
	st, err := front.Submit(ctx, &client.EstimateRequest{
		Dataset: "study", Owner: remote, Annotator: client.AnnotatorStored,
	})
	if err != nil {
		t.Fatalf("submit across partition: %v", err)
	}
	if st.Node != "n1" {
		t.Errorf("partitioned submit ran on %q, want local fallback n1", st.Node)
	}
	if tc.metrics[0].ClusterDeaths.Load() == 0 {
		t.Error("n1 never marked the unreachable owner dead")
	}
	fin, err := front.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Status != client.StatusDone {
		t.Fatalf("status %q, error %v", fin.Status, fin.Error)
	}
	want := serialWireBytes(t, ds, ds.Owners[0].ID)
	_ = want // byte-identity for this owner is covered by the routing test; here the point is availability.
}

// TestDirStore pins the Store contract: round trips, os.ErrNotExist
// for absent records, and no temp-file litter after writes.
func TestDirStore(t *testing.T) {
	dir := t.TempDir()
	st, err := server.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.GetJob("nope"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("GetJob(absent) = %v, want ErrNotExist", err)
	}
	if _, err := st.GetFinal("nope"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("GetFinal(absent) = %v, want ErrNotExist", err)
	}
	if _, err := st.GetCheckpoint("nope"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("GetCheckpoint(absent) = %v, want ErrNotExist", err)
	}

	rec := server.JobRecord{ID: "n1-e000001", Node: "n1", Request: client.EstimateRequest{Dataset: "study", Owner: 7}}
	if err := st.PutJob(rec); err != nil {
		t.Fatal(err)
	}
	got, err := st.GetJob(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Node != "n1" || got.Request.Owner != 7 {
		t.Errorf("GetJob = %+v", got)
	}
	ids, err := st.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != rec.ID {
		t.Errorf("Jobs = %v", ids)
	}
	fin := server.FinalRecord{Status: client.StatusDone, Queries: 3}
	if err := st.PutFinal(rec.ID, fin); err != nil {
		t.Fatal(err)
	}
	gotFin, err := st.GetFinal(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if gotFin.Status != client.StatusDone || gotFin.Queries != 3 {
		t.Errorf("GetFinal = %+v", gotFin)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if name := e.Name(); name[0] == '.' {
			t.Errorf("temp-file litter in store dir: %s", name)
		}
	}
}
