package server_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	sight "sightrisk"
	"sightrisk/client"
	"sightrisk/internal/dataset"
	"sightrisk/internal/graph"
	"sightrisk/internal/server"
)

// reviseBatch builds an update batch that reaches the owner's 2-hop
// view: one stranger's clustering attribute changes and a brand-new
// stranger arrives via one of the owner's friends.
func reviseBatch(t testing.TB, ds *dataset.Dataset, owner int64) []client.Update {
	t.Helper()
	strangers := ds.Graph.Strangers(graph.UserID(owner))
	friends := ds.Graph.Friends(graph.UserID(owner))
	if len(strangers) < 5 || len(friends) < 2 {
		t.Fatal("test dataset too small")
	}
	return []client.Update{
		{Kind: "profile_set", A: int64(strangers[2]), Attr: sight.AttrLocale, Value: "xx_XX"},
		{Kind: "node_add", A: 900001},
		{Kind: "edge_add", A: 900001, B: int64(friends[0])},
		{Kind: "profile_set", A: 900001, Attr: sight.AttrGender, Value: "female"},
	}
}

// TestUpdatesAndReviseByteIdentical is the serving layer's tentpole
// invariant: apply updates, revise the standing estimate, and the
// revised report is byte-identical to a from-scratch submission
// against the updated dataset — while the delta stream shows pools
// actually being reused.
func TestUpdatesAndReviseByteIdentical(t *testing.T) {
	ds := testDataset(t, 2, 200, 71)
	_, _, c := newTestServer(t, server.Config{Datasets: map[string]*dataset.Dataset{"study": ds}, Workers: 2})
	owner := int64(ds.Owners[0].ID)
	ctx := context.Background()

	req := &client.EstimateRequest{Dataset: "study", Owner: owner, Annotator: client.AnnotatorStored}
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID); err != nil || st.Status != client.StatusDone {
		t.Fatalf("base job: %v status=%v", err, st)
	}
	baseID := st.ID

	ur, err := c.Updates(ctx, &client.UpdatesRequest{Dataset: "study", Owner: owner, Updates: reviseBatch(t, ds, owner)})
	if err != nil {
		t.Fatal(err)
	}
	if ur.Applied != 4 {
		t.Fatalf("applied = %d, want 4", ur.Applied)
	}
	foundDirty := false
	for _, d := range ur.DirtyOwners {
		if d == owner {
			foundDirty = true
		}
	}
	if !foundDirty {
		t.Fatalf("owner %d missing from dirty set %v", owner, ur.DirtyOwners)
	}

	// Revise (no further updates: the batch already landed).
	rst, err := c.Revise(ctx, baseID, nil)
	if err != nil {
		t.Fatal(err)
	}
	reused := 0
	final, err := c.StreamDeltas(ctx, rst.ID, func(d client.PoolDelta) error {
		if d.Reused {
			reused++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.JobStatus != client.StatusDone || final.Report == nil {
		t.Fatalf("terminal delta line: %+v", final)
	}
	if reused == 0 {
		t.Fatal("revision reused no pools; incremental path not exercised")
	}

	// Reference: a from-scratch submission against the updated dataset.
	ref, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if ref, err = c.Wait(ctx, ref.ID); err != nil || ref.Status != client.StatusDone {
		t.Fatalf("reference job: %v status=%v", err, ref)
	}
	if !bytes.Equal(wireBytes(t, final.Report), wireBytes(t, ref.Report)) {
		t.Fatal("revised report differs from from-scratch recompute")
	}
}

// TestReviseNoOpServesPrior: revising a finished job with no updates
// (and none applied since it ran) completes instantly with the prior
// report — the owner-level fast path.
func TestReviseNoOpServesPrior(t *testing.T) {
	ds := testDataset(t, 1, 120, 73)
	_, _, c := newTestServer(t, server.Config{Datasets: map[string]*dataset.Dataset{"study": ds}, Workers: 1})
	owner := int64(ds.Owners[0].ID)
	ctx := context.Background()

	st, err := c.Submit(ctx, &client.EstimateRequest{Dataset: "study", Owner: owner, Annotator: client.AnnotatorStored})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID); err != nil || st.Status != client.StatusDone {
		t.Fatalf("base job: %v status=%v", err, st)
	}
	rst, err := c.Revise(ctx, st.ID, &client.ReviseRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if rst.Status != client.StatusDone {
		t.Fatalf("no-op revision status = %q, want immediate done", rst.Status)
	}
	if !bytes.Equal(wireBytes(t, rst.Report), wireBytes(t, st.Report)) {
		t.Fatal("no-op revision changed the report")
	}
	// Its delta stream is just the terminal line.
	n := 0
	final, err := c.StreamDeltas(ctx, rst.ID, func(client.PoolDelta) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || !final.Done || final.JobStatus != client.StatusDone {
		t.Fatalf("no-op stream: %d deltas, final %+v", n, final)
	}
}

// TestDeltaStreamMatchesReport: the concatenated pool deltas of a
// normal job reconstruct the report's stranger list exactly, and the
// terminal line carries the same report the status endpoint serves.
func TestDeltaStreamMatchesReport(t *testing.T) {
	ds := testDataset(t, 1, 120, 75)
	_, _, c := newTestServer(t, server.Config{Datasets: map[string]*dataset.Dataset{"study": ds}, Workers: 1})
	owner := int64(ds.Owners[0].ID)
	ctx := context.Background()

	st, err := c.Submit(ctx, &client.EstimateRequest{Dataset: "study", Owner: owner, Annotator: client.AnnotatorStored})
	if err != nil {
		t.Fatal(err)
	}
	var streamed []client.StrangerRisk
	seq := 0
	final, err := c.StreamDeltas(ctx, st.ID, func(d client.PoolDelta) error {
		seq++
		if d.Seq != seq {
			t.Errorf("delta seq %d out of order (want %d)", d.Seq, seq)
		}
		if d.Status != "complete" {
			t.Errorf("pool %s streamed status %q", d.Pool, d.Status)
		}
		streamed = append(streamed, d.Strangers...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Report == nil {
		t.Fatalf("terminal line without report: %+v", final)
	}
	if len(streamed) != len(final.Report.Strangers) {
		t.Fatalf("streamed %d strangers, report has %d", len(streamed), len(final.Report.Strangers))
	}
	for i, sr := range final.Report.Strangers {
		if streamed[i] != sr {
			t.Fatalf("stranger %d: streamed %+v, report %+v", i, streamed[i], sr)
		}
	}
	stNow, err := c.Get(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wireBytes(t, final.Report), wireBytes(t, stNow.Report)) {
		t.Fatal("stream terminal report differs from status report")
	}
}

// TestClusterUpdatesRouteToOwner: an update batch posted to any
// replica lands on the ring owner of UpdatesRequest.Owner — the same
// replica that serves the owner's estimates — so a follow-up revision
// through any front door sees the applied batch and stays
// byte-identical to a from-scratch submission.
func TestClusterUpdatesRouteToOwner(t *testing.T) {
	mk := func() map[string]*dataset.Dataset {
		return map[string]*dataset.Dataset{"study": testDataset(t, 4, 80, 61)}
	}
	tc := newTestCluster(t, 2, t.TempDir(), mk, nil)
	ds := testDataset(t, 4, 80, 61)
	ctx := context.Background()

	// Pick an owner the ring places away from the front door, so both
	// the estimate and the update batch must be forwarded.
	var owner int64
	for _, rec := range ds.Owners {
		if ringOwner(tc.nodes, int64(rec.ID)) != tc.nodes[0].ID {
			owner = int64(rec.ID)
			break
		}
	}
	if owner == 0 {
		t.Skip("every owner hashed onto the front-door node at this seed")
	}
	wantNode := ringOwner(tc.nodes, owner)

	front := client.New(tc.nodes[0].URL)
	front.NoRetry = true
	front.LongPoll = 250 * time.Millisecond

	st, err := front.Submit(ctx, &client.EstimateRequest{Dataset: "study", Owner: owner, Annotator: client.AnnotatorStored})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = front.Wait(ctx, st.ID); err != nil || st.Status != client.StatusDone {
		t.Fatalf("base job: %v status=%v", err, st)
	}

	ur, err := front.Updates(ctx, &client.UpdatesRequest{Dataset: "study", Owner: owner, Updates: reviseBatch(t, ds, owner)})
	if err != nil {
		t.Fatal(err)
	}
	if ur.Node != wantNode {
		t.Fatalf("updates applied on node %q, ring owner is %q", ur.Node, wantNode)
	}

	rst, err := front.Revise(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rst, err = front.Wait(ctx, rst.ID); err != nil || rst.Status != client.StatusDone {
		t.Fatalf("revision: %v status=%v", err, rst)
	}
	ref, err := front.Submit(ctx, &client.EstimateRequest{Dataset: "study", Owner: owner, Annotator: client.AnnotatorStored})
	if err != nil {
		t.Fatal(err)
	}
	if ref, err = front.Wait(ctx, ref.ID); err != nil || ref.Status != client.StatusDone {
		t.Fatalf("reference job: %v status=%v", err, ref)
	}
	if !bytes.Equal(wireBytes(t, rst.Report), wireBytes(t, ref.Report)) {
		t.Fatal("clustered revision differs from from-scratch recompute on the owning node")
	}
}

// TestUpdatesValidation: the updates endpoint rejects unknown
// datasets, empty and malformed batches with structured 400s.
func TestUpdatesValidation(t *testing.T) {
	ds := testDataset(t, 1, 60, 77)
	_, hs, c := newTestServer(t, server.Config{Datasets: map[string]*dataset.Dataset{"study": ds}, Workers: 1})
	ctx := context.Background()

	cases := []struct {
		name string
		req  *client.UpdatesRequest
	}{
		{"unknown dataset", &client.UpdatesRequest{Dataset: "nope", Updates: []client.Update{{Kind: "node_add", A: 1}}}},
		{"missing dataset", &client.UpdatesRequest{Updates: []client.Update{{Kind: "node_add", A: 1}}}},
		{"empty batch", &client.UpdatesRequest{Dataset: "study"}},
		{"self loop", &client.UpdatesRequest{Dataset: "study", Updates: []client.Update{{Kind: "edge_add", A: 5, B: 5}}}},
		{"unknown kind", &client.UpdatesRequest{Dataset: "study", Updates: []client.Update{{Kind: "bogus", A: 5}}}},
		{"unknown attribute", &client.UpdatesRequest{Dataset: "study", Updates: []client.Update{{Kind: "profile_set", A: 5, Attr: "shoe size"}}}},
	}
	for _, tc := range cases {
		if _, err := c.Updates(ctx, tc.req); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// Revising an unfinished or network-backed job fails cleanly too.
	resp := postJSON(t, hs.URL+"/v1/estimates/nope/revise", `{}`)
	if resp.StatusCode != 404 {
		t.Fatalf("revise of unknown job: %d", resp.StatusCode)
	}
	resp.Body.Close()
}
