package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	sight "sightrisk"
	"sightrisk/client"
	"sightrisk/internal/dataset"
	"sightrisk/internal/fleet"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/server"
	"sightrisk/internal/synthetic"
)

// testDataset generates a deterministic small study with stored
// ground-truth labels. Same seed → content-identical dataset, which is
// what the restart test relies on.
func testDataset(t testing.TB, owners, strangers int, seed int64) *dataset.Dataset {
	t.Helper()
	cfg := synthetic.SmallStudyConfig()
	cfg.Owners = owners
	cfg.Ego.Strangers = strangers
	cfg.Seed = seed
	s, err := synthetic.GenerateStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dataset.FromStudy(s, true)
}

// newTestServer stands a server up behind httptest and returns a
// client pointed at it (with a short long-poll for fast tests).
func newTestServer(t testing.TB, cfg server.Config) (*server.Server, *httptest.Server, *client.Client) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	c := client.New(hs.URL)
	c.LongPoll = 250 * time.Millisecond
	// The 429/503 tests assert on the first response; retries would turn
	// those immediate rejections into sleeps.
	c.NoRetry = true
	return srv, hs, c
}

// serialWireBytes runs the owner in-process on the serial path —
// exactly what a library user gets — and renders the wire encoding.
func serialWireBytes(t testing.TB, ds *dataset.Dataset, owner graph.UserID) []byte {
	t.Helper()
	rec, ok := ds.Owner(owner)
	if !ok {
		t.Fatalf("owner %d not in dataset", owner)
	}
	net := sight.WrapNetwork(ds.Graph, ds.ProfileStore())
	ann := dataset.StoredAnnotator{Labels: rec.Labels, Fallback: label.Risky}
	rep, err := sight.EstimateRisk(context.Background(), net, owner, ann, sight.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(client.FromReport(rep))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// wireBytes renders a wire report's canonical JSON.
func wireBytes(t testing.TB, rep *client.Report) []byte {
	t.Helper()
	if rep == nil {
		t.Fatal("nil report")
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// answerFromDataset builds the client-side owner: answers questions
// from the dataset's stored labels, like a user following the paper's
// labeling questionnaire.
func answerFromDataset(ds *dataset.Dataset, owner graph.UserID) client.AnswerFunc {
	rec, _ := ds.Owner(owner)
	return func(stranger int64) (int, error) {
		if l, ok := rec.Labels[graph.UserID(stranger)]; ok {
			return int(l), nil
		}
		return int(label.Risky), nil
	}
}

func postJSON(t testing.TB, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeEnvelope reads {"error": {...}} from a failed response.
func decodeEnvelope(t testing.TB, resp *http.Response) *client.APIError {
	t.Helper()
	defer resp.Body.Close()
	var env struct {
		Error *client.APIError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode error envelope: %v", err)
	}
	if env.Error == nil {
		t.Fatal("response has no error envelope")
	}
	return env.Error
}

// TestMalformedRequests: every malformed submission fails fast with a
// structured 400 envelope, before anything is queued.
func TestMalformedRequests(t *testing.T) {
	ds := testDataset(t, 1, 60, 31)
	_, hs, _ := newTestServer(t, server.Config{Datasets: map[string]*dataset.Dataset{"study": ds}, Workers: 1})
	owner := ds.Owners[0].ID

	cases := []struct {
		name string
		body string
	}{
		{"invalid json", `{"owner": `},
		{"unknown field", `{"owner": 1, "bogus": true}`},
		{"no source", fmt.Sprintf(`{"owner": %d}`, owner)},
		{"both sources", fmt.Sprintf(`{"owner": %d, "dataset": "study", "network": {"edges": [[1,2]]}}`, owner)},
		{"unknown dataset", fmt.Sprintf(`{"owner": %d, "dataset": "nope"}`, owner)},
		{"owner not in network", `{"owner": 99999, "dataset": "study"}`},
		{"stored without dataset", `{"owner": 1, "network": {"edges": [[1,2]]}, "annotator": "stored"}`},
		{"unknown annotator", fmt.Sprintf(`{"owner": %d, "dataset": "study", "annotator": "psychic"}`, owner)},
		{"bad strategy", fmt.Sprintf(`{"owner": %d, "dataset": "study", "options": {"strategy": "magic"}}`, owner)},
		{"bad alpha", fmt.Sprintf(`{"owner": %d, "dataset": "study", "options": {"alpha": -1}}`, owner)},
		{"negative timeout", fmt.Sprintf(`{"owner": %d, "dataset": "study", "timeout_ms": -5}`, owner)},
		{"self loop edge", `{"owner": 1, "network": {"edges": [[1,1]]}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, hs.URL+"/v1/estimates", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			if e := decodeEnvelope(t, resp); e.Code != "bad_request" {
				t.Errorf("code = %q, want %q", e.Code, "bad_request")
			}
		})
	}
}

// TestUnknownEstimate404: every per-estimate route 404s with the
// envelope for an unknown id.
func TestUnknownEstimate404(t *testing.T) {
	_, _, c := newTestServer(t, server.Config{Workers: 1})
	ctx := context.Background()
	if _, err := c.Get(ctx, "e999999"); !isAPIStatus(err, http.StatusNotFound) {
		t.Errorf("Get: %v, want 404 APIError", err)
	}
	if _, err := c.Questions(ctx, "e999999"); !isAPIStatus(err, http.StatusNotFound) {
		t.Errorf("Questions: %v, want 404 APIError", err)
	}
	if _, err := c.Answer(ctx, "e999999", []client.Answer{{Stranger: 1, Label: 1}}); !isAPIStatus(err, http.StatusNotFound) {
		t.Errorf("Answer: %v, want 404 APIError", err)
	}
	if _, err := c.Trace(ctx, "e999999"); !isAPIStatus(err, http.StatusNotFound) {
		t.Errorf("Trace: %v, want 404 APIError", err)
	}
}

func isAPIStatus(err error, status int) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.Status == status
}

// TestAnswerValidation: invalid labels are rejected with 400 and
// answers to finished jobs with 409.
func TestAnswerValidation(t *testing.T) {
	ds := testDataset(t, 1, 60, 33)
	_, hs, c := newTestServer(t, server.Config{Datasets: map[string]*dataset.Dataset{"study": ds}, Workers: 1})
	ctx := context.Background()
	owner := ds.Owners[0].ID

	st, err := c.Submit(ctx, &client.EstimateRequest{Dataset: "study", Owner: int64(owner), Annotator: client.AnnotatorStored})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	// Invalid label beats the terminal-state check: still a 400.
	resp := postJSON(t, hs.URL+"/v1/estimates/"+st.ID+"/answers", `{"answers": [{"stranger": 1, "label": 9}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid label: status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	// Valid label against a finished job: conflict.
	if _, err := c.Answer(ctx, st.ID, []client.Answer{{Stranger: 1, Label: 2}}); !isAPIStatus(err, http.StatusConflict) {
		t.Errorf("answer after done: %v, want 409 APIError", err)
	}
}

// TestQueryBudget429: a tenant over its query budget gets 429 with a
// Retry-After hint, per-tenant (other tenants are unaffected).
func TestQueryBudget429(t *testing.T) {
	ds := testDataset(t, 1, 80, 35)
	_, _, c := newTestServer(t, server.Config{
		Datasets: map[string]*dataset.Dataset{"study": ds},
		Workers:  1,
		Limits:   map[string]fleet.TenantLimits{"metered": {MaxQueries: 1}},
	})
	ctx := context.Background()
	owner := ds.Owners[0].ID
	req := &client.EstimateRequest{Tenant: "metered", Dataset: "study", Owner: int64(owner), Annotator: client.AnnotatorStored}

	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Queries < 1 {
		t.Fatalf("job spent %d queries, test needs >= 1", fin.Queries)
	}
	_, err = c.Submit(ctx, req)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("resubmit over budget: %v, want APIError", err)
	}
	if apiErr.Status != http.StatusTooManyRequests || apiErr.Code != "over_budget" {
		t.Errorf("got status %d code %q, want 429 over_budget", apiErr.Status, apiErr.Code)
	}
	if apiErr.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %d, want > 0", apiErr.RetryAfter)
	}
	// A different tenant still gets in.
	other := *req
	other.Tenant = "fresh"
	if st, err := c.Submit(ctx, &other); err != nil {
		t.Errorf("fresh tenant rejected: %v", err)
	} else if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Errorf("fresh tenant job: %v", err)
	}
}

// TestActiveLimit429: a tenant at its concurrency cap is rejected with
// 429 until its running job finishes.
func TestActiveLimit429(t *testing.T) {
	ds := testDataset(t, 1, 80, 37)
	_, _, c := newTestServer(t, server.Config{
		Datasets: map[string]*dataset.Dataset{"study": ds},
		Workers:  2,
		Limits:   map[string]fleet.TenantLimits{"capped": {MaxActive: 1}},
	})
	ctx := context.Background()
	owner := ds.Owners[0].ID
	req := &client.EstimateRequest{Tenant: "capped", Dataset: "study", Owner: int64(owner)} // remote: blocks on answers

	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(ctx, req)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("second submit: %v, want 429 APIError", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %d, want > 0", apiErr.RetryAfter)
	}
	if err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	// The slot freed: admission works again.
	st2, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit after slot freed: %v", err)
	}
	c.Cancel(ctx, st2.ID)
	c.Wait(ctx, st2.ID)
}

// TestCancelYieldsPartialReport: DELETE mid-run completes the job with
// a partial report (graceful degradation), not an error.
func TestCancelYieldsPartialReport(t *testing.T) {
	ds := testDataset(t, 1, 80, 39)
	_, _, c := newTestServer(t, server.Config{Datasets: map[string]*dataset.Dataset{"study": ds}, Workers: 1})
	ctx := context.Background()
	owner := ds.Owners[0].ID

	st, err := c.Submit(ctx, &client.EstimateRequest{Dataset: "study", Owner: int64(owner)})
	if err != nil {
		t.Fatal(err)
	}
	waitForQuestion(t, c, st.ID)
	if err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Status != client.StatusDone {
		t.Fatalf("status = %q (error: %v), want done with partial report", fin.Status, fin.Error)
	}
	if fin.Report == nil || !fin.Report.Partial {
		t.Errorf("report = %+v, want Partial", fin.Report)
	}
	if fin.Report != nil && fin.Report.Interrupt == "" {
		t.Errorf("partial report has no interrupt cause")
	}
}

// TestCancelQueuedJobFails: a job canceled while still waiting for a
// worker slot never ran, so it ends failed with code "canceled" — no
// partial report exists to publish (contrast TestCancelYieldsPartialReport).
func TestCancelQueuedJobFails(t *testing.T) {
	ds := testDataset(t, 1, 80, 41)
	_, _, c := newTestServer(t, server.Config{Datasets: map[string]*dataset.Dataset{"study": ds}, Workers: 1})
	ctx := context.Background()
	owner := ds.Owners[0].ID
	req := &client.EstimateRequest{Dataset: "study", Owner: int64(owner)} // remote: blocks on answers

	running, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	waitForQuestion(t, c, running.ID) // the single worker slot is now held
	queued, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Status != client.StatusFailed {
		t.Fatalf("status = %q, want failed (job never started)", fin.Status)
	}
	if fin.Error == nil || fin.Error.Code != "canceled" {
		t.Errorf("error = %+v, want code \"canceled\"", fin.Error)
	}
	if fin.Report != nil {
		t.Errorf("queued-cancel produced a report: %+v", fin.Report)
	}
	c.Cancel(ctx, running.ID)
	c.Wait(ctx, running.ID)
}

// waitForQuestion polls until the job surfaces a pending question.
func waitForQuestion(t testing.TB, c *client.Client, id string) client.Question {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		qr, err := c.Questions(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if len(qr.Questions) > 0 {
			return qr.Questions[0]
		}
		if qr.Status == client.StatusDone || qr.Status == client.StatusFailed {
			t.Fatalf("job reached %q before asking anything", qr.Status)
		}
	}
	t.Fatal("no question within deadline")
	return client.Question{}
}

// TestLongPollDisconnectDoesNotLeak: clients that vanish mid-long-poll
// must not leave goroutines behind. The handler blocks on channels
// selected against the request context, so disconnects unwind
// immediately; assert with NumGoroutine deltas.
func TestLongPollDisconnectDoesNotLeak(t *testing.T) {
	ds := testDataset(t, 1, 80, 41)
	_, hs, c := newTestServer(t, server.Config{Datasets: map[string]*dataset.Dataset{"study": ds}, Workers: 1})
	ctx := context.Background()
	owner := ds.Owners[0].ID

	st, err := c.Submit(ctx, &client.EstimateRequest{Dataset: "study", Owner: int64(owner)})
	if err != nil {
		t.Fatal(err)
	}
	waitForQuestion(t, c, st.ID)
	// Answer it so subsequent long-polls actually block waiting.
	// (The engine asks the next question; we poll for it, then leave
	// pollers hanging on the one after.)
	runtime.GC()
	before := runtime.NumGoroutine()

	for i := 0; i < 25; i++ {
		reqCtx, cancel := context.WithTimeout(ctx, 15*time.Millisecond)
		req, _ := http.NewRequestWithContext(reqCtx, http.MethodGet,
			hs.URL+"/v1/estimates/"+st.ID+"/questions?wait_ms=30000", nil)
		// The question is pending, so this returns instantly; hit the
		// blocking path by asking for a job state that can't change —
		// poll a second time after draining the pending question list
		// is not possible without answering, so instead rely on the
		// request timeout: the handler returns when the client is gone.
		resp, err := hs.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
		cancel()
	}
	// Also hammer a blocking poll: a fresh submit whose question we
	// never answer, polled by clients that give up.
	for i := 0; i < 25; i++ {
		reqCtx, cancel := context.WithTimeout(ctx, 15*time.Millisecond)
		req, _ := http.NewRequestWithContext(reqCtx, http.MethodGet,
			hs.URL+"/healthz", nil)
		resp, err := hs.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
		cancel()
	}

	// Let the server unwind, then compare goroutine counts with slack
	// for the runtime's own pool.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+5 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d now=%d", before, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
	c.Cancel(ctx, st.ID)
	c.Wait(ctx, st.ID)
}

// TestHealthzVarzTrace: the monitoring surfaces report real state.
func TestHealthzVarzTrace(t *testing.T) {
	ds := testDataset(t, 1, 60, 43)
	_, hs, c := newTestServer(t, server.Config{Datasets: map[string]*dataset.Dataset{"study": ds}, Workers: 1})
	ctx := context.Background()
	owner := ds.Owners[0].ID

	st, err := c.Submit(ctx, &client.EstimateRequest{Dataset: "study", Owner: int64(owner), Annotator: client.AnnotatorStored})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	hr, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.Draining {
		t.Errorf("health = %+v, want ok / not draining", hr)
	}
	if hr.Jobs[client.StatusDone] < 1 {
		t.Errorf("health jobs = %v, want >= 1 done", hr.Jobs)
	}

	resp, err := http.Get(hs.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	var varz map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&varz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, key := range []string{"sightd_metrics", "sightd_scheduler", "sightd_jobs"} {
		if _, ok := varz[key]; !ok {
			t.Errorf("varz missing %q", key)
		}
	}
	var metrics struct {
		Runs uint64 `json:"runs"`
	}
	if err := json.Unmarshal(varz["sightd_metrics"], &metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Runs < 1 {
		t.Errorf("varz runs = %d, want >= 1", metrics.Runs)
	}

	trace, err := c.Trace(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(trace)), "\n")
	if len(lines) < 3 {
		t.Fatalf("trace has %d lines, want a real event stream", len(lines))
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("trace line 0 is not JSON: %v", err)
	}
}

// TestDrainRejectsSubmissions: a draining server answers reads but
// 503s new work.
func TestDrainRejectsSubmissions(t *testing.T) {
	ds := testDataset(t, 1, 60, 45)
	srv, _, c := newTestServer(t, server.Config{Datasets: map[string]*dataset.Dataset{"study": ds}, Workers: 1})
	ctx := context.Background()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	_, err := c.Submit(ctx, &client.EstimateRequest{Dataset: "study", Owner: int64(ds.Owners[0].ID)})
	if !isAPIStatus(err, http.StatusServiceUnavailable) {
		t.Fatalf("submit while draining: %v, want 503", err)
	}
	hr, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !hr.Draining {
		t.Error("health does not report draining")
	}
}

// TestSnapshotBackedDataset: a dataset preloaded from a packed .snap
// file (mmap-backed runtime, no live graph) serves reports
// byte-identical to both the JSON-backed dataset and the in-process
// serial run.
func TestSnapshotBackedDataset(t *testing.T) {
	ds := testDataset(t, 1, 80, 41)
	owner := ds.Owners[0].ID
	want := serialWireBytes(t, ds, owner)

	snapPath := filepath.Join(t.TempDir(), "study.snap")
	if err := dataset.PackSnap(ds, snapPath); err != nil {
		t.Fatal(err)
	}
	rt, err := dataset.OpenRuntime(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if !rt.Mapped() || rt.Graph != nil {
		t.Fatalf("runtime not snapshot-backed: mapped=%v graph=%v", rt.Mapped(), rt.Graph != nil)
	}

	_, _, c := newTestServer(t, server.Config{
		Runtimes: map[string]*dataset.Runtime{"study": rt},
		Workers:  1,
	})
	ctx := context.Background()
	st, err := c.Submit(ctx, &client.EstimateRequest{Dataset: "study", Owner: int64(owner), Annotator: client.AnnotatorStored})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Status != client.StatusDone {
		t.Fatalf("status %q: %v", fin.Status, fin.Error)
	}
	if got := wireBytes(t, fin.Report); string(got) != string(want) {
		t.Fatalf("snapshot-backed report differs from serial in-process report:\n got %s\nwant %s", got, want)
	}

	// The same name in both Datasets and Runtimes is a config error.
	if _, err := server.New(server.Config{
		Datasets: map[string]*dataset.Dataset{"study": ds},
		Runtimes: map[string]*dataset.Runtime{"study": rt},
	}); err == nil {
		t.Fatal("duplicate dataset name accepted")
	}
}
