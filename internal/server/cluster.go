package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"os"
	"time"

	"sightrisk/client"
	"sightrisk/internal/place"
)

// Cluster mode: every replica shares one Store and one static member
// list, and each owner id hashes to exactly one live replica on the
// consistent-hash ring (internal/place). A request landing on the
// wrong replica is forwarded to the ring owner; a forward that fails
// marks the target dead, which rebuilds the ring and triggers
// rebalance — surviving replicas adopt the dead node's jobs from the
// shared checkpoint store and resume them. Because checkpoints store
// only owner answers and the engine is deterministic, the adopted run
// finishes byte-identical to an uninterrupted single-node run. The
// full routing rules, handoff protocol and failure matrix are in
// docs/CLUSTER.md.

// ForwardHeader marks a proxied request so the receiving replica
// always handles it locally — one hop, never a forwarding loop. Its
// value is the sending node's id.
const ForwardHeader = "X-Sightd-Forwarded"

// maxRouteAttempts bounds how many ring owners a request is tried
// against before giving up with 503. Each failed attempt marks the
// target dead, so the next attempt consults a smaller ring.
const maxRouteAttempts = 3

// routeBackoffBase is the first retry's backoff; attempts are jittered
// and grow linearly, keeping worst-case added latency well under a
// second.
const routeBackoffBase = 25 * time.Millisecond

// clustered reports whether this server runs as a cluster replica.
func (s *Server) clustered() bool { return s.cluster != nil }

// isKilled reports whether Kill tore this replica down.
func (s *Server) isKilled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.killed
}

// Kill simulates the abrupt death of this replica — the node-kill
// fault mode. Unlike Drain it does not park or persist anything: runs
// are cut mid-flight, no further store writes happen (the store keeps
// whatever the last completed round checkpointed) and handlers stop
// accepting work. Internal goroutines are still reaped (in-process
// harnesses would otherwise leak them); callers should also close the
// node's listener so peers see connection failures.
func (s *Server) Kill() {
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return
	}
	s.killed = true
	s.draining = true
	s.mu.Unlock()
	s.baseCancel()
	go func() {
		s.wg.Wait()
		s.sched.Close()
	}()
}

// routeBackoff sleeps before a routing retry: jittered linear backoff,
// honoring the request context.
func routeBackoff(ctx context.Context, attempt int) {
	d := routeBackoffBase * time.Duration(attempt+1)
	d += time.Duration(rand.Int63n(int64(routeBackoffBase)))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// markPeerDead records a failed forward to the node and logs the
// resulting membership change (if it is one). Rebalance fires via the
// placement's OnChange hook.
func (s *Server) markPeerDead(n place.Node) {
	if n.ID == s.nodeID {
		return
	}
	if s.cluster.MarkDead(n.ID) {
		s.metrics.ClusterDeaths.Add(1)
		s.logf("sightd: node %s unreachable, marked dead (ring v%d)", n.ID, s.cluster.Version())
	}
}

// forwardSubmit proxies a validated submission to its ring owner,
// retrying against the shrinking ring when owners fail. It returns
// false when every attempt failed transport-wise (the caller decides
// between serving locally and erroring); any HTTP response from an
// owner — success or error — is relayed verbatim and ends the request.
func (s *Server) forwardSubmit(w http.ResponseWriter, r *http.Request, req *client.EstimateRequest) bool {
	return s.forwardOwner(w, r, req.Owner, "POST", "/v1/estimates", req)
}

// forwardOwner proxies a request to the ring owner of the given user
// id, with the same retry/dead-marking behavior as forwardSubmit; the
// updates endpoint routes through it too, so an update batch lands on
// the replica that will serve the owner's revisions.
func (s *Server) forwardOwner(w http.ResponseWriter, r *http.Request, owner int64, method, uri string, payload any) bool {
	body, err := json.Marshal(payload)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "internal", err.Error(), 0)
		return true
	}
	for attempt := 0; attempt < maxRouteAttempts; attempt++ {
		node, _ := s.cluster.Owner(owner)
		if node.ID == s.nodeID {
			return false // ownership collapsed onto us; serve locally
		}
		if s.proxy(w, r, node, method, uri, body) {
			return true
		}
		s.markPeerDead(node)
		routeBackoff(r.Context(), attempt)
	}
	return false
}

// routeJob resolves a per-job request to a local job, forwarding to
// the ring owner when the job lives elsewhere. It returns the local
// job to serve, or nil when the request was already answered (proxied
// response, 404, or routing failure). Forwarded requests are always
// served locally — the ForwardHeader guarantees a single hop.
func (s *Server) routeJob(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	if j := s.job(id); j != nil {
		return j
	}
	if !s.clustered() || s.store == nil {
		writeErr(w, http.StatusNotFound, "not_found", "no such estimate", 0)
		return nil
	}
	rec, err := s.store.GetJob(id)
	if errors.Is(err, os.ErrNotExist) {
		// The shared store is authoritative: no record means the id never
		// existed on any replica.
		writeErr(w, http.StatusNotFound, "not_found", "no such estimate", 0)
		return nil
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "internal", err.Error(), 0)
		return nil
	}
	if r.Header.Get(ForwardHeader) != "" {
		// A peer already routed this here: we are the believed owner, so
		// adopt rather than bounce it onward.
		return s.adoptForRequest(w, rec)
	}
	var body []byte
	if r.Body != nil {
		body, err = io.ReadAll(r.Body)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
			return nil
		}
	}
	for attempt := 0; attempt < maxRouteAttempts; attempt++ {
		node, _ := s.cluster.Owner(rec.Request.Owner)
		if node.ID == s.nodeID {
			// Serving locally after all: hand the handler back the body
			// we drained for proxying.
			r.Body = io.NopCloser(bytes.NewReader(body))
			return s.adoptForRequest(w, rec)
		}
		if s.proxy(w, r, node, r.Method, r.URL.RequestURI(), body) {
			return nil
		}
		s.markPeerDead(node)
		routeBackoff(r.Context(), attempt)
	}
	writeErr(w, http.StatusServiceUnavailable, "unroutable",
		"no live replica owns this estimate; retry shortly", 1)
	return nil
}

// adoptForRequest adopts a persisted job this node now owns, writing
// the error response itself when adoption fails.
func (s *Server) adoptForRequest(w http.ResponseWriter, rec JobRecord) *job {
	j, err := s.adoptJob(rec)
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, "draining", err.Error(), time.Second)
		return nil
	}
	return j
}

// adoptJob takes ownership of a persisted job: it restores the
// terminal outcome if one exists, otherwise admits the job and resumes
// it from its latest shared checkpoint. Idempotent per id.
func (s *Server) adoptJob(rec JobRecord) (*job, error) {
	if s.isDraining() {
		return nil, errors.New("server is draining; retry against a live replica")
	}
	adopting := s.job(rec.ID) == nil
	j, err := s.restoreJob(rec)
	if err != nil {
		return nil, err
	}
	if adopting {
		s.metrics.ClusterAdoptions.Add(1)
		s.logf("sightd: node %s adopted job %s (owner %d)", s.nodeID, rec.ID, rec.Request.Owner)
	}
	return j, nil
}

// rebalance scans the shared store and adopts every job whose ring
// owner is now this node. It runs after every membership change — this
// is the failover path that picks up a dead replica's jobs.
func (s *Server) rebalance() {
	if !s.clustered() || s.store == nil {
		return
	}
	ids, err := s.store.Jobs()
	if err != nil {
		s.logf("sightd: rebalance: list jobs: %v", err)
		return
	}
	for _, id := range ids {
		if s.job(id) != nil {
			continue
		}
		rec, err := s.store.GetJob(id)
		if err != nil {
			s.logf("sightd: rebalance: skip unreadable job %s: %v", id, err)
			continue
		}
		if node, _ := s.cluster.Owner(rec.Request.Owner); node.ID != s.nodeID {
			continue
		}
		if _, err := s.adoptJob(rec); err != nil {
			s.logf("sightd: rebalance: adopt %s: %v", id, err)
		}
	}
}

// scheduleRebalance runs rebalance on a tracked goroutine; membership
// hooks call it so adoption never blocks the marking request.
func (s *Server) scheduleRebalance() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		s.rebalance()
	}()
}

// proxy forwards the request to the node and relays its response. It
// returns true when a response was relayed (the request is finished)
// and false on a transport-level failure (the node is unreachable; the
// caller should mark it dead and retry elsewhere).
func (s *Server) proxy(w http.ResponseWriter, r *http.Request, node place.Node, method, uri string, body []byte) bool {
	if node.URL == "" {
		return false
	}
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), method, node.URL+uri, rd)
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, s.nodeID)
	resp, err := s.forward.Do(req)
	if err != nil {
		if r.Context().Err() != nil {
			// The caller went away; nothing to relay and nobody to blame.
			return true
		}
		return false
	}
	defer resp.Body.Close()
	s.metrics.ClusterForwards.Add(1)
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// probeLoop periodically health-checks every peer, marking unreachable
// ones dead (which triggers rebalance) and ready ones alive. It is the
// failure detector for nodes that die between forwards.
func (s *Server) probeLoop(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.probeOnce()
		}
	}
}

// probeOnce probes each peer's /healthz once. A transport failure
// means dead; a response with ready=true means alive; a reachable but
// not-ready (draining) peer keeps its current state — that distinction
// is exactly what the readiness field exists for.
func (s *Server) probeOnce() {
	for _, m := range s.cluster.Members() {
		node := m.Node
		if node.ID == s.nodeID || node.URL == "" {
			continue
		}
		ctx, cancel := context.WithTimeout(s.baseCtx, 2*time.Second)
		req, err := http.NewRequestWithContext(ctx, "GET", node.URL+"/healthz", nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := s.forward.Do(req)
		if err != nil {
			cancel()
			s.markPeerDead(node)
			continue
		}
		var h client.HealthResponse
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		cancel()
		if err == nil && resp.StatusCode == http.StatusOK && h.Ready {
			if s.cluster.MarkAlive(node.ID) {
				s.logf("sightd: node %s is back (ring v%d)", node.ID, s.cluster.Version())
			}
		}
	}
}
