package server_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	sight "sightrisk"
	"sightrisk/client"
	"sightrisk/internal/dataset"
	"sightrisk/internal/server"
)

// TestServedStoredMatchesSerial is the tentpole guarantee: a report
// obtained through sightd + the typed client (stored annotator, no
// wire loop) is byte-identical to the in-process serial run.
func TestServedStoredMatchesSerial(t *testing.T) {
	ds := testDataset(t, 2, 120, 51)
	_, _, c := newTestServer(t, server.Config{Datasets: map[string]*dataset.Dataset{"study": ds}, Workers: 2})
	ctx := context.Background()

	for _, rec := range ds.Owners {
		want := serialWireBytes(t, ds, rec.ID)
		st, err := c.Submit(ctx, &client.EstimateRequest{
			Dataset: "study", Owner: int64(rec.ID), Annotator: client.AnnotatorStored,
		})
		if err != nil {
			t.Fatal(err)
		}
		fin, err := c.Wait(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if fin.Status != client.StatusDone {
			t.Fatalf("owner %d: status %q, error %v", rec.ID, fin.Status, fin.Error)
		}
		if got := wireBytes(t, fin.Report); !bytes.Equal(got, want) {
			t.Errorf("owner %d: served report differs from serial run\nserved: %s\nserial: %s", rec.ID, got, want)
		}
	}
}

// TestServedRemoteMatchesSerial: the same guarantee with the owner on
// the other end of the wire — questions long-polled, answers posted —
// which is the paper's deployment shape.
func TestServedRemoteMatchesSerial(t *testing.T) {
	ds := testDataset(t, 1, 120, 53)
	_, _, c := newTestServer(t, server.Config{Datasets: map[string]*dataset.Dataset{"study": ds}, Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	owner := ds.Owners[0].ID
	want := serialWireBytes(t, ds, owner)
	rep, err := c.Run(ctx, &client.EstimateRequest{Dataset: "study", Owner: int64(owner)},
		answerFromDataset(ds, owner))
	if err != nil {
		t.Fatal(err)
	}
	if got := wireBytes(t, rep); !bytes.Equal(got, want) {
		t.Errorf("remote-annotated report differs from serial run\nserved: %s\nserial: %s", got, want)
	}
}

// TestServedInlineNetworkMatchesSerial: an inline graph/profile
// payload round-trips through the wire and still reproduces the
// in-process run byte for byte.
func TestServedInlineNetworkMatchesSerial(t *testing.T) {
	ds := testDataset(t, 1, 100, 55)
	_, _, c := newTestServer(t, server.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	owner := ds.Owners[0].ID
	want := serialWireBytes(t, ds, owner)

	// Export the dataset's network as a wire payload.
	payload := client.NetworkFrom(sight.WrapNetwork(ds.Graph, ds.ProfileStore()))

	rep, err := c.Run(ctx, &client.EstimateRequest{Network: payload, Owner: int64(owner)},
		answerFromDataset(ds, owner))
	if err != nil {
		t.Fatal(err)
	}
	if got := wireBytes(t, rep); !bytes.Equal(got, want) {
		t.Errorf("inline-network report differs from serial run\nserved: %s\nserial: %s", got, want)
	}
}

// TestRestartResumeMatchesSerial is the acceptance criterion's hard
// case: a remote-annotated job is interrupted by a server drain
// mid-run, a new server process recovers the state directory, resumes
// the job from its checkpoint (never re-asking answered questions from
// committed rounds), and the final report is STILL byte-identical to
// the uninterrupted in-process serial run.
func TestRestartResumeMatchesSerial(t *testing.T) {
	stateDir := t.TempDir()
	mkConfig := func() server.Config {
		return server.Config{
			Datasets: map[string]*dataset.Dataset{"study": testDataset(t, 1, 120, 57)},
			Workers:  1,
			StateDir: stateDir,
		}
	}
	ds := testDataset(t, 1, 120, 57) // content-identical replica for the baseline and answers
	owner := ds.Owners[0].ID
	want := serialWireBytes(t, ds, owner)
	answer := answerFromDataset(ds, owner)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// --- first server: answer a handful of questions, then drain ---
	srvA, hsA, cA := newTestServer(t, mkConfig())
	st, err := cA.Submit(ctx, &client.EstimateRequest{Dataset: "study", Owner: int64(owner)})
	if err != nil {
		t.Fatal(err)
	}
	answered := 0
	for answered < 5 {
		q := waitForQuestion(t, cA, st.ID)
		lab, _ := answer(q.Stranger)
		if _, err := cA.Answer(ctx, st.ID, []client.Answer{{Stranger: q.Stranger, Label: lab}}); err != nil {
			t.Fatal(err)
		}
		answered++
	}
	// Wait for the next question so we drain strictly mid-run, with at
	// least one full round (3 answers) checkpointed.
	waitForQuestion(t, cA, st.ID)
	drainCtx, drainCancel := context.WithTimeout(ctx, 30*time.Second)
	if err := srvA.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	drainCancel()
	hsA.Close()

	// --- second server over the same state dir: resume and finish ---
	_, _, cB := newTestServer(t, mkConfig())
	got, err := cB.Get(ctx, st.ID)
	if err != nil {
		t.Fatalf("job not recovered after restart: %v", err)
	}
	if got.Status == client.StatusFailed {
		t.Fatalf("recovered job failed: %v", got.Error)
	}
	rep, err := cB.Drive(ctx, st.ID, answer)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial {
		t.Fatalf("resumed run ended partial: interrupt %q", rep.Interrupt)
	}
	if gotB := wireBytes(t, rep); !bytes.Equal(gotB, want) {
		t.Errorf("post-restart report differs from serial run\nserved: %s\nserial: %s", gotB, want)
	}
}

// TestRestartRecoversFinishedJobs: terminal results survive restarts.
func TestRestartRecoversFinishedJobs(t *testing.T) {
	stateDir := t.TempDir()
	mk := func() server.Config {
		return server.Config{
			Datasets: map[string]*dataset.Dataset{"study": testDataset(t, 1, 80, 59)},
			Workers:  1,
			StateDir: stateDir,
		}
	}
	ctx := context.Background()
	srvA, hsA, cA := newTestServer(t, mk())
	owner := testDataset(t, 1, 80, 59).Owners[0].ID
	st, err := cA.Submit(ctx, &client.EstimateRequest{Dataset: "study", Owner: int64(owner), Annotator: client.AnnotatorStored})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := cA.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := wireBytes(t, fin.Report)
	srvA.Drain(ctx)
	hsA.Close()

	_, _, cB := newTestServer(t, mk())
	got, err := cB.Get(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != client.StatusDone {
		t.Fatalf("recovered status = %q, want done", got.Status)
	}
	if b := wireBytes(t, got.Report); !bytes.Equal(b, want) {
		t.Errorf("recovered report differs:\nafter:  %s\nbefore: %s", b, want)
	}
}
