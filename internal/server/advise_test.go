package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"path/filepath"
	"testing"

	"sightrisk/client"
	"sightrisk/internal/dataset"
	"sightrisk/internal/fleet"
	"sightrisk/internal/graph"
	"sightrisk/internal/server"
)

// adviseCandidateFor picks a deterministic 2-hop stranger of the owner
// to play the friendship-request candidate.
func adviseCandidateFor(t testing.TB, ds *dataset.Dataset, owner graph.UserID) int64 {
	t.Helper()
	strangers := ds.Graph.Strangers(owner)
	if len(strangers) < 5 {
		t.Fatal("test dataset too small for an advise candidate")
	}
	return int64(strangers[len(strangers)/2])
}

func adviseBytes(t testing.TB, resp *client.AdviseResponse) []byte {
	t.Helper()
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestAdviseEndToEnd: POST /v1/advise returns a per-item before/after
// risk delta with a verdict, and the response bytes are identical
// whether the owner's current run is reused from a finished in-memory
// job or recomputed from the frozen snapshot (the restart /
// checkpoint-reconstruction path), and regardless of the server's
// worker setting.
func TestAdviseEndToEnd(t *testing.T) {
	ds := testDataset(t, 1, 120, 81)
	owner := ds.Owners[0].ID
	cand := adviseCandidateFor(t, ds, owner)
	ctx := context.Background()
	req := &client.AdviseRequest{Dataset: "study", Owner: int64(owner), Candidate: cand}

	// Server A holds a finished estimate for the owner, so advise reuses
	// the in-memory run.
	_, _, cA := newTestServer(t, server.Config{Datasets: map[string]*dataset.Dataset{"study": testDataset(t, 1, 120, 81)}, Workers: 2})
	st, err := cA.Submit(ctx, &client.EstimateRequest{Dataset: "study", Owner: int64(owner), Annotator: client.AnnotatorStored})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = cA.Wait(ctx, st.ID); err != nil || st.Status != client.StatusDone {
		t.Fatalf("base job: %v status=%v", err, st)
	}
	held, err := cA.Advise(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	if held.Owner != int64(owner) || held.Candidate != cand {
		t.Fatalf("echo mismatch: %+v", held)
	}
	switch held.Verdict {
	case "accept", "review", "decline":
	default:
		t.Fatalf("verdict = %q", held.Verdict)
	}
	if held.Reason == "" {
		t.Error("assessment has no reason")
	}
	if len(held.Items) == 0 {
		t.Fatal("assessment has no per-item deltas")
	}
	for _, it := range held.Items {
		if it.Item == "" {
			t.Fatalf("item delta without a name: %+v", it)
		}
		if it.AudienceBefore < 0 || it.AudienceAfter < 0 || it.RiskyBefore < 0 || it.RiskyAfter < 0 {
			t.Fatalf("incoherent item delta: %+v", it)
		}
		// GainsAccess is about the candidate themselves: a friend sees
		// every item, so it can only be set when the stranger-side policy
		// bars their label today — not tied to the audience counts.
	}
	if held.NewStrangers == 0 && held.LostStrangers == 0 && held.RiskyBefore == held.RiskyAfter {
		t.Log("candidate edge changed nothing; weak but legal")
	}

	// Server B never ran an estimate: advise must recompute the current
	// side from the snapshot — the path a restarted node takes — and
	// produce the same bytes.
	_, _, cB := newTestServer(t, server.Config{Datasets: map[string]*dataset.Dataset{"study": testDataset(t, 1, 120, 81)}, Workers: 1})
	fresh, err := cB.Advise(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(adviseBytes(t, held), adviseBytes(t, fresh)) {
		t.Fatalf("advise differs between held-run and recompute paths:\nheld:  %s\nfresh: %s",
			adviseBytes(t, held), adviseBytes(t, fresh))
	}

	// Advising twice is idempotent — no state was mutated.
	again, err := cA.Advise(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(adviseBytes(t, held), adviseBytes(t, again)) {
		t.Fatal("second advise of the same request returned different bytes")
	}
}

// TestAdviseValidation: every invalid advise request fails fast with
// the structured envelope and nothing is mutated.
func TestAdviseValidation(t *testing.T) {
	ds := testDataset(t, 1, 80, 83)
	owner := ds.Owners[0].ID
	friends := ds.Graph.Friends(owner)
	if len(friends) == 0 {
		t.Fatal("owner has no friends")
	}
	_, _, c := newTestServer(t, server.Config{Datasets: map[string]*dataset.Dataset{"study": ds}, Workers: 1})
	ctx := context.Background()

	cases := []struct {
		name   string
		req    *client.AdviseRequest
		status int
	}{
		{"missing dataset", &client.AdviseRequest{Owner: int64(owner), Candidate: 1}, 400},
		{"unknown dataset", &client.AdviseRequest{Dataset: "nope", Owner: int64(owner), Candidate: 1}, 400},
		{"self request", &client.AdviseRequest{Dataset: "study", Owner: int64(owner), Candidate: int64(owner)}, 400},
		{"candidate not in network", &client.AdviseRequest{Dataset: "study", Owner: int64(owner), Candidate: 987654}, 400},
		{"already friends", &client.AdviseRequest{Dataset: "study", Owner: int64(owner), Candidate: int64(friends[0])}, 409},
		{"no stored labels", &client.AdviseRequest{Dataset: "study", Owner: 987654, Candidate: int64(owner)}, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Advise(ctx, tc.req)
			var apiErr *client.APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("err = %v, want APIError", err)
			}
			if apiErr.Status != tc.status {
				t.Errorf("status = %d, want %d (%s)", apiErr.Status, tc.status, apiErr.Message)
			}
		})
	}

	// Snapshot-backed datasets are read-only: advise needs the mutable
	// graph to build the counterfactual.
	snapPath := filepath.Join(t.TempDir(), "study.snap")
	if err := dataset.PackSnap(ds, snapPath); err != nil {
		t.Fatal(err)
	}
	rt, err := dataset.OpenRuntime(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	_, _, cs := newTestServer(t, server.Config{Runtimes: map[string]*dataset.Runtime{"study": rt}, Workers: 1})
	_, err = cs.Advise(ctx, &client.AdviseRequest{Dataset: "study", Owner: int64(owner), Candidate: adviseCandidateFor(t, ds, owner)})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("advise on snapshot-backed dataset: %v, want 400 APIError", err)
	}
}

// TestErrorEnvelopeAllStatuses is the API-surface contract test: every
// error status any /v1 endpoint can produce arrives as the one JSON
// envelope {"error":{"code","message","retry_after_ms"}}, and client/
// round-trips it into a typed *client.APIError with coherent retry
// hints.
func TestErrorEnvelopeAllStatuses(t *testing.T) {
	ds := testDataset(t, 1, 80, 85)
	owner := int64(ds.Owners[0].ID)
	ctx := context.Background()

	cases := []struct {
		name      string
		status    int
		code      string
		wantRetry bool
		provoke   func(t *testing.T) error
	}{
		{"bad request 400", http.StatusBadRequest, "bad_request", false, func(t *testing.T) error {
			_, _, c := newTestServer(t, server.Config{Datasets: map[string]*dataset.Dataset{"study": ds}, Workers: 1})
			_, err := c.Submit(ctx, &client.EstimateRequest{Dataset: "nope", Owner: owner})
			return err
		}},
		{"not found 404", http.StatusNotFound, "not_found", false, func(t *testing.T) error {
			_, _, c := newTestServer(t, server.Config{Workers: 1})
			_, err := c.Get(ctx, "e999999")
			return err
		}},
		{"conflict 409", http.StatusConflict, "conflict", false, func(t *testing.T) error {
			_, _, c := newTestServer(t, server.Config{Datasets: map[string]*dataset.Dataset{"study": ds}, Workers: 1})
			friends := ds.Graph.Friends(graph.UserID(owner))
			_, err := c.Advise(ctx, &client.AdviseRequest{Dataset: "study", Owner: owner, Candidate: int64(friends[0])})
			return err
		}},
		{"over budget 429", http.StatusTooManyRequests, "over_budget", true, func(t *testing.T) error {
			_, _, c := newTestServer(t, server.Config{
				Datasets: map[string]*dataset.Dataset{"study": ds},
				Workers:  2,
				Limits:   map[string]fleet.TenantLimits{"capped": {MaxActive: 1}},
			})
			req := &client.EstimateRequest{Tenant: "capped", Dataset: "study", Owner: owner} // remote annotator: stays active
			st, err := c.Submit(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				c.Cancel(ctx, st.ID)
				c.Wait(ctx, st.ID)
			}()
			_, err = c.Submit(ctx, req)
			return err
		}},
		{"draining 503", http.StatusServiceUnavailable, "draining", true, func(t *testing.T) error {
			srv, _, c := newTestServer(t, server.Config{Datasets: map[string]*dataset.Dataset{"study": ds}, Workers: 1})
			if err := srv.Drain(ctx); err != nil {
				t.Fatal(err)
			}
			_, err := c.Submit(ctx, &client.EstimateRequest{Dataset: "study", Owner: owner})
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.provoke(t)
			var apiErr *client.APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("err = %v (%T), want *client.APIError", err, err)
			}
			if apiErr.Status != tc.status {
				t.Errorf("status = %d, want %d", apiErr.Status, tc.status)
			}
			if tc.code != "" && apiErr.Code != tc.code {
				t.Errorf("code = %q, want %q", apiErr.Code, tc.code)
			}
			if apiErr.Message == "" {
				t.Error("envelope has no message")
			}
			if tc.wantRetry {
				if apiErr.RetryAfterMillis <= 0 {
					t.Errorf("retry_after_ms = %d, want > 0", apiErr.RetryAfterMillis)
				}
				if apiErr.RetryAfter <= 0 {
					t.Errorf("legacy retry_after = %d, want > 0", apiErr.RetryAfter)
				}
				if apiErr.RetryDelay() <= 0 {
					t.Errorf("RetryDelay() = %v, want > 0", apiErr.RetryDelay())
				}
			} else if apiErr.RetryAfterMillis != 0 {
				t.Errorf("retry_after_ms = %d on a non-retryable error", apiErr.RetryAfterMillis)
			}
			if apiErr.Error() == "" {
				t.Error("APIError.Error() is empty")
			}
		})
	}
}

// TestClusterAdviseRoutesByOwner: /v1/advise is cluster-routed by
// owner affinity like /v1/updates — a request through any front door is
// forwarded to the ring owner of the estimate's owner — and killing the
// owning node mid-conversation leaves the survivor serving the exact
// same bytes from checkpoint reconstruction.
func TestClusterAdviseRoutesByOwner(t *testing.T) {
	mk := func() map[string]*dataset.Dataset {
		return map[string]*dataset.Dataset{"study": testDataset(t, 4, 80, 61)}
	}
	tc := newTestCluster(t, 2, t.TempDir(), mk, nil)
	ds := testDataset(t, 4, 80, 61)
	ctx := context.Background()

	// Pick an owner the ring places away from node n1 so the front-door
	// request must be forwarded.
	var owner int64
	for _, rec := range ds.Owners {
		if ringOwner(tc.nodes, int64(rec.ID)) != tc.nodes[0].ID {
			owner = int64(rec.ID)
			break
		}
	}
	if owner == 0 {
		t.Skip("every owner hashed onto the front-door node at this seed")
	}
	cand := adviseCandidateFor(t, ds, graph.UserID(owner))
	req := &client.AdviseRequest{Dataset: "study", Owner: owner, Candidate: cand}

	// Warm the owning node with a finished estimate so the forwarded
	// advise reuses a held run there.
	cl := tc.clusterClient(t)
	st, err := cl.Submit(ctx, &client.EstimateRequest{Dataset: "study", Owner: owner, Annotator: client.AnnotatorStored})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = cl.Wait(ctx, st.ID); err != nil || st.Status != client.StatusDone {
		t.Fatalf("base job: %v status=%v", err, st)
	}

	// Through n1's front door: the request is forwarded to the ring
	// owner and succeeds anyway.
	front := client.New(tc.nodes[0].URL)
	front.NoRetry = true
	forwarded, err := front.Advise(ctx, req)
	if err != nil {
		t.Fatalf("advise through non-owner front door: %v", err)
	}
	if forwards := tc.metrics[0].ClusterForwards.Load(); forwards == 0 {
		t.Error("front door recorded no forwards for the advise request")
	}

	// Routed by the cluster client (owner affinity): same bytes.
	routed, err := cl.Advise(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(adviseBytes(t, forwarded), adviseBytes(t, routed)) {
		t.Fatalf("forwarded and affinity-routed advise differ:\nfwd:    %s\nrouted: %s",
			adviseBytes(t, forwarded), adviseBytes(t, routed))
	}

	// Kill the owning node. The next advise lands on the survivor, which
	// has no held run and reconstructs the current side from its own
	// copy of the dataset — byte-identical output.
	for i, n := range tc.nodes {
		if n.ID == ringOwner(tc.nodes, owner) {
			tc.kill(i)
		}
	}
	after, err := cl.Advise(ctx, req)
	if err != nil {
		t.Fatalf("advise after killing the owning node: %v", err)
	}
	if !bytes.Equal(adviseBytes(t, routed), adviseBytes(t, after)) {
		t.Fatalf("post-failover advise differs from pre-kill advise:\nbefore: %s\nafter:  %s",
			adviseBytes(t, routed), adviseBytes(t, after))
	}
}
