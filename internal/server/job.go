package server

import (
	"context"
	"sync"

	"sightrisk/client"
	"sightrisk/internal/active"
	"sightrisk/internal/core"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
	"sightrisk/internal/obs"
)

// job is one estimate's server-side state. Its mutex guards every
// mutable field; state changes signal watchers (long-pollers, the wire
// annotator) by closing and replacing notify.
type job struct {
	id     string
	node   string // cluster node currently hosting the job ("" single-node)
	tenant string
	owner  graph.UserID
	req    client.EstimateRequest // normalized submission, as persisted

	mu     sync.Mutex
	notify chan struct{}

	status  string
	queries int
	report  *client.Report
	apiErr  *client.APIError
	trace   *obs.Log

	cancel       context.CancelFunc // cancels the run; set at launch
	userCanceled bool               // DELETE arrived (vs. server drain)

	// Wire annotator state: at most one question is pending at a time
	// (the engine serializes owner queries), but pending is a slice so
	// redelivered long-polls always see the full outstanding set.
	seq     int
	pending []client.Question
	answers map[int64]label.Label

	// Incremental re-estimation state (in-memory only — a restarted
	// server revises with a full recompute, which is still correct):
	// lastRun is the finished engine run a later revision can splice
	// pools from; reuse is the prior run this job revises against;
	// gen is the dataset update generation the run resolved at; deltas
	// accumulates the per-pool report deltas the stream endpoint serves.
	lastRun *core.OwnerRun
	reuse   *core.OwnerRun
	gen     uint64
	deltas  []client.PoolDelta
}

func newJob(id string, req client.EstimateRequest) *job {
	return &job{
		id:      id,
		tenant:  req.Tenant,
		owner:   graph.UserID(req.Owner),
		req:     req,
		notify:  make(chan struct{}),
		status:  client.StatusQueued,
		trace:   obs.NewLog(),
		answers: map[int64]label.Label{},
	}
}

// signalLocked wakes every watcher. Callers hold mu.
func (j *job) signalLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// watch returns the channel that closes on the next state change.
func (j *job) watch() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.notify
}

// snapshot renders the job's current wire status.
func (j *job) snapshot() client.EstimateStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return client.EstimateStatus{
		ID:      j.id,
		Node:    j.node,
		Status:  j.status,
		Tenant:  j.tenant,
		Owner:   int64(j.owner),
		Queries: j.queries,
		Report:  j.report,
		Error:   j.apiErr,
	}
}

func (j *job) currentStatus() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

func (j *job) terminal() bool {
	st := j.currentStatus()
	return st == client.StatusDone || st == client.StatusFailed
}

func (j *job) setCancel(cancel context.CancelFunc) {
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
}

// requestCancel implements DELETE: it marks the cancellation as
// client-initiated (so the partial result is persisted, unlike a
// server drain) and cancels the run.
func (j *job) requestCancel() {
	j.mu.Lock()
	j.userCanceled = true
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

func (j *job) wasUserCanceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.userCanceled
}

// markRunning flips queued → running (called once the scheduler hands
// the job a worker slot).
func (j *job) markRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == client.StatusQueued {
		j.status = client.StatusRunning
		j.signalLocked()
	}
}

// complete records the final report and wakes every watcher.
func (j *job) complete(rep *client.Report, queries int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status = client.StatusDone
	j.report = rep
	j.queries = queries
	j.pending = nil
	j.signalLocked()
}

// fail records a terminal error.
func (j *job) fail(apiErr *client.APIError) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status = client.StatusFailed
	j.apiErr = apiErr
	j.pending = nil
	j.signalLocked()
}

// park returns an interrupted-by-drain job to the queued state: its
// checkpoint survives on disk and a restarted server will requeue and
// resume it, so nothing terminal is recorded.
func (j *job) park() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status = client.StatusQueued
	j.pending = nil
	j.signalLocked()
}

// questions returns the currently pending owner questions.
func (j *job) questions() []client.Question {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]client.Question, len(j.pending))
	copy(out, j.pending)
	return out
}

// acceptAnswers stores answers that match pending questions and wakes
// the wire annotator. Answers for strangers without a pending question
// are ignored (long-poll redelivery makes duplicates routine).
func (j *job) acceptAnswers(answers []client.Answer) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	accepted := 0
	for _, a := range answers {
		for _, q := range j.pending {
			if q.Stranger == a.Stranger {
				j.answers[a.Stranger] = label.Label(a.Label)
				accepted++
				break
			}
		}
	}
	if accepted > 0 {
		j.signalLocked()
	}
	return accepted
}

// setGen records the dataset update generation the run resolved at.
func (j *job) setGen(gen uint64) {
	j.mu.Lock()
	j.gen = gen
	j.mu.Unlock()
}

// reusable returns the finished run a revision can splice pools from
// and the update generation it was computed at. Nil until the job
// completed in this process (recovered jobs revise from scratch).
func (j *job) reusable() (*core.OwnerRun, uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastRun, j.gen
}

// setLastRun retains the finished engine run for later revisions.
func (j *job) setLastRun(run *core.OwnerRun) {
	j.mu.Lock()
	j.lastRun = run
	j.mu.Unlock()
}

// reuseRun returns the prior run this job revises against (nil for
// from-scratch jobs).
func (j *job) reuseRun() *core.OwnerRun {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.reuse
}

// addPoolDelta appends one per-pool report delta and wakes stream
// watchers. Called from the engine's OnPool hook, in pool order.
func (j *job) addPoolDelta(d client.PoolDelta) {
	j.mu.Lock()
	d.Seq = len(j.deltas) + 1
	j.deltas = append(j.deltas, d)
	j.signalLocked()
	j.mu.Unlock()
}

// deltasSince returns the pool deltas past the cursor plus whether the
// job is terminal (the stream's stop condition).
func (j *job) deltasSince(cursor int) ([]client.PoolDelta, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []client.PoolDelta
	if cursor < len(j.deltas) {
		out = append(out, j.deltas[cursor:]...)
	}
	return out, j.status == client.StatusDone || j.status == client.StatusFailed
}

// countQuery bumps the live owner-label spend shown by GET status.
func (j *job) countQuery() {
	j.mu.Lock()
	j.queries++
	j.mu.Unlock()
}

// wireAnnotator bridges the engine's FallibleAnnotator contract to the
// HTTP question/answer loop: each owner query becomes a pending
// question surfaced by the long-poll endpoint, and the call blocks
// until a matching answer is posted (or ctx ends — the engine then
// degrades the run per its usual interruption contract).
type wireAnnotator struct{ j *job }

// LabelStranger implements active.FallibleAnnotator.
func (w wireAnnotator) LabelStranger(ctx context.Context, s graph.UserID) (label.Label, error) {
	j := w.j
	j.mu.Lock()
	j.seq++
	j.pending = append(j.pending, client.Question{Seq: j.seq, Stranger: int64(s)})
	j.signalLocked()
	for {
		if lab, ok := j.answers[int64(s)]; ok {
			delete(j.answers, int64(s))
			j.removePendingLocked(int64(s))
			j.queries++
			j.signalLocked()
			j.mu.Unlock()
			return lab, nil
		}
		ch := j.notify
		j.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			j.mu.Lock()
			j.removePendingLocked(int64(s))
			j.signalLocked()
			j.mu.Unlock()
			return 0, ctx.Err()
		}
		j.mu.Lock()
	}
}

// removePendingLocked drops the stranger's pending question. Callers
// hold mu.
func (j *job) removePendingLocked(stranger int64) {
	for i, q := range j.pending {
		if q.Stranger == stranger {
			j.pending = append(j.pending[:i], j.pending[i+1:]...)
			return
		}
	}
}

// countingAnnotator wraps a server-side annotator so the live status
// endpoint can report owner-label spend while the job runs.
type countingAnnotator struct {
	inner active.FallibleAnnotator
	j     *job
}

// LabelStranger implements active.FallibleAnnotator.
func (c countingAnnotator) LabelStranger(ctx context.Context, s graph.UserID) (label.Label, error) {
	lab, err := c.inner.LabelStranger(ctx, s)
	if err == nil {
		c.j.countQuery()
	}
	return lab, err
}
