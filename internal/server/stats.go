package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"sync"
	"time"

	"sightrisk/client"
	"sightrisk/internal/fleet"
	"sightrisk/internal/ldp"
)

// Privacy-preserving tenant analytics over the wire:
//
//	GET  /v1/stats    one statistics release, parameters in the query
//	POST /v1/stats    the same release, parameters in a JSON body
//
// Releases are computed by internal/ldp off the dataset's frozen
// snapshot: aggregate graph and visibility statistics under edge-level
// local differential privacy with visibility-aware noise (public edges
// exact, private edges noised — docs/ANALYTICS.md). The noise is
// seeded by the full release identity (tenant, dataset, epoch,
// dataset generation, ε, mode), so repeating a query re-serves
// byte-identical bytes while releases differing in any coordinate —
// including ε, mode and the generation — draw independent noise; the
// ε ledger below charges only the first occurrence of each distinct
// release. In cluster mode every release for one dataset routes to
// the dataset's ring owner so the ledger has a single home.

// DefaultStatsBudget is the per-(tenant, dataset) ε capacity when
// Config.StatsBudget is unset: at the default ε = 1 it admits eight
// distinct releases (6ε each) per dataset generation.
const DefaultStatsBudget = 48.0

// statsBudgetRetry is the retry hint returned with a budget-exhausted
// 429. The ledger refreshes when the dataset's update generation
// bumps, which the client cannot predict — a minute is a polite pause.
const statsBudgetRetry = time.Minute

// ldpEntry caches one dataset's estimator at the update generation it
// was built from; a generation bump invalidates it.
type ldpEntry struct {
	gen uint64
	est *ldp.Estimator
}

// ldpLedger tracks one (tenant, dataset) pair's ε spend within the
// current dataset generation. seen keys distinct releases
// (epoch|epsilon|noise); replays of a seen release are free — the
// seeded noise makes them byte-identical, so they leak nothing new.
type ldpLedger struct {
	gen     uint64
	spent   float64
	queries int
	replays int
	seen    map[string]struct{}
}

// handleStatsGet serves GET /v1/stats, mapping query parameters onto
// the POST body shape.
func (s *Server) handleStatsGet(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	req := client.StatsRequest{
		Dataset: q.Get("dataset"),
		Tenant:  q.Get("tenant"),
		Noise:   q.Get("noise"),
	}
	if v := q.Get("epoch"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", "epoch must be a non-negative integer", 0)
			return
		}
		req.Epoch = n
	}
	if v := q.Get("epsilon"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", "epsilon must be a number", 0)
			return
		}
		req.Epsilon = f
	}
	s.serveStats(w, r, &req)
}

// handleStatsPost serves POST /v1/stats.
func (s *Server) handleStatsPost(w http.ResponseWriter, r *http.Request) {
	var req client.StatsRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "malformed request body: "+err.Error(), 0)
		return
	}
	s.serveStats(w, r, &req)
}

// serveStats validates, routes, admits, charges and computes one
// release. Both methods funnel here; a GET is forwarded across the
// cluster as the equivalent POST.
func (s *Server) serveStats(w http.ResponseWriter, r *http.Request, req *client.StatsRequest) {
	if s.isDraining() {
		writeErr(w, http.StatusServiceUnavailable, "draining", "server is draining; retry against a live replica", time.Second)
		return
	}
	if req.Dataset == "" {
		writeErr(w, http.StatusBadRequest, "bad_request", "dataset is required", 0)
		return
	}
	if _, ok := s.runtimes[req.Dataset]; !ok {
		writeErr(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("unknown dataset %q", req.Dataset), 0)
		return
	}
	mode, err := ldp.ParseMode(req.Noise)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	if req.Epsilon == 0 {
		req.Epsilon = 1
	}
	params := ldp.Params{Epsilon: req.Epsilon, Mode: mode}
	if err := params.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	// Route by dataset, not owner: the dataset's ring owner keeps the
	// ε ledger, so budget accounting stays consistent however many
	// replicas receive queries.
	if s.clustered() && r.Header.Get(ForwardHeader) == "" {
		if node, _ := s.cluster.Owner(datasetRouteKey(req.Dataset)); node.ID != s.nodeID {
			if s.forwardOwner(w, r, datasetRouteKey(req.Dataset), "POST", "/v1/stats", req) {
				return
			}
		}
	}
	adm, err := s.sched.Admit(req.Tenant)
	if err != nil {
		var over *fleet.OverBudgetError
		if errors.As(err, &over) {
			retry := over.RetryAfter
			if retry <= 0 {
				retry = time.Second
			}
			writeErr(w, http.StatusTooManyRequests, "over_budget",
				fmt.Sprintf("tenant %q over budget: %s", over.Tenant, over.Reason), retry)
			return
		}
		writeErr(w, http.StatusServiceUnavailable, "draining", err.Error(), time.Second)
		return
	}
	defer adm.Cancel() // release the slot; no scheduler job runs

	est, gen, apiErr := s.ldpEstimator(req.Dataset)
	if apiErr != nil {
		writeAPIErr(w, http.StatusBadRequest, apiErr)
		return
	}
	charged, ok := s.chargeStats(req.Tenant, req.Dataset, gen, req.Epoch, req.Epsilon, mode)
	if !ok {
		writeErr(w, http.StatusTooManyRequests, "over_budget",
			fmt.Sprintf("tenant %q has exhausted its ε budget for dataset %q at generation %d (limit %g); the ledger refreshes when the dataset changes",
				req.Tenant, req.Dataset, gen, s.statsBudget), statsBudgetRetry)
		return
	}
	rep, err := est.Report(params, ldp.SeedFor(req.Tenant, req.Dataset, req.Epoch, gen, params))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	s.logf("sightd: stats dataset %s tenant %q epoch %d eps %g mode %s: charged %gε",
		req.Dataset, req.Tenant, req.Epoch, req.Epsilon, mode, charged)
	writeJSON(w, http.StatusOK, statsWire(req, gen, rep))
}

// datasetRouteKey hashes a dataset name into the int64 keyspace the
// placement ring shards on.
func datasetRouteKey(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64())
}

// ldpEstimator returns the dataset's cached estimator, rebuilding it
// when the update generation moved. The build (one triangle
// enumeration, potentially seconds on a large graph) runs under a
// per-dataset build lock, so concurrent first queries for one dataset
// build once and queue behind it while every other dataset's stats
// traffic, budget charging and /varz — all of which share only the
// cheap ldpMu — proceed unblocked.
func (s *Server) ldpEstimator(ds string) (*ldp.Estimator, uint64, *client.APIError) {
	s.mu.Lock()
	rt, ok := s.runtimes[ds]
	if !ok {
		s.mu.Unlock()
		return nil, 0, &client.APIError{Code: "bad_request", Message: fmt.Sprintf("unknown dataset %q", ds)}
	}
	snap, profiles, gen := rt.Snapshot, rt.Profiles, s.dsGen[ds]
	s.mu.Unlock()
	s.ldpMu.Lock()
	if e, ok := s.ldpEst[ds]; ok && e.gen == gen {
		s.ldpMu.Unlock()
		return e.est, gen, nil
	}
	build := s.ldpBuilds[ds]
	if build == nil {
		build = &sync.Mutex{}
		s.ldpBuilds[ds] = build
	}
	s.ldpMu.Unlock()

	build.Lock()
	defer build.Unlock()
	// A queued builder may find the estimator already built (for this
	// generation) by the query it waited on.
	s.ldpMu.Lock()
	if e, ok := s.ldpEst[ds]; ok && e.gen == gen {
		s.ldpMu.Unlock()
		return e.est, gen, nil
	}
	s.ldpMu.Unlock()
	est := ldp.NewEstimator(snap, profiles)
	s.ldpMu.Lock()
	// Keep the newest generation if a concurrent delta already moved
	// the cache past the snapshot this build started from.
	if e, ok := s.ldpEst[ds]; !ok || e.gen <= gen {
		s.ldpEst[ds] = &ldpEntry{gen: gen, est: est}
	}
	s.ldpMu.Unlock()
	return est, gen, nil
}

// chargeStats debits one release from the (tenant, dataset) ledger.
// Replays of a release already served at this generation are free;
// a generation bump resets the ledger (new data is a fresh release
// universe — sound because the generation is folded into the noise
// seed, so the new generation's releases draw independent noise
// rather than re-exposing the old draws against moved truth).
// Returns the ε charged and whether the release is admitted.
func (s *Server) chargeStats(tenant, ds string, gen, epoch uint64, eps float64, mode ldp.Mode) (float64, bool) {
	s.ldpMu.Lock()
	defer s.ldpMu.Unlock()
	key := tenant + "|" + ds
	led := s.ldpLedgers[key]
	if led == nil {
		led = &ldpLedger{gen: gen, seen: map[string]struct{}{}}
		s.ldpLedgers[key] = led
	}
	if led.gen != gen {
		led.gen = gen
		led.spent = 0
		led.seen = map[string]struct{}{}
	}
	qk := fmt.Sprintf("%d|%g|%s", epoch, eps, mode)
	if _, seen := led.seen[qk]; seen {
		led.replays++
		return 0, true
	}
	charge := ldp.Mechanisms * eps
	if led.spent+charge > s.statsBudget {
		return 0, false
	}
	led.seen[qk] = struct{}{}
	led.spent += charge
	led.queries++
	return charge, true
}

// ldpVarz renders the ε-budget accounting for /varz ("sightd_ldp").
func (s *Server) ldpVarz() map[string]any {
	s.ldpMu.Lock()
	defer s.ldpMu.Unlock()
	ledgers := map[string]map[string]any{}
	for key, led := range s.ldpLedgers {
		ledgers[key] = map[string]any{
			"generation": led.gen,
			"spent":      led.spent,
			"remaining":  s.statsBudget - led.spent,
			"queries":    led.queries,
			"replays":    led.replays,
		}
	}
	return map[string]any{"budget_limit": s.statsBudget, "ledgers": ledgers}
}

// statsWire renders a release as the deterministic wire response.
func statsWire(req *client.StatsRequest, gen uint64, rep *ldp.Report) *client.StatsResponse {
	resp := &client.StatsResponse{
		Dataset:      req.Dataset,
		Tenant:       req.Tenant,
		Epoch:        req.Epoch,
		Generation:   gen,
		Noise:        string(rep.Mode),
		Epsilon:      rep.Epsilon,
		Nodes:        rep.Nodes,
		Profiles:     rep.Profiles,
		PublicUsers:  rep.PublicUsers,
		PublicEdges:  rep.PublicEdges,
		DegreeCap:    rep.DegreeCap,
		TriangleCap:  rep.TriangleCap,
		EdgeCount:    statsEstimate(rep.EdgeCount),
		Triangles:    statsEstimate(rep.Triangles),
		TwoStars:     statsEstimate(rep.TwoStars),
		ThreeStars:   statsEstimate(rep.ThreeStars),
		DegreeHistSE: rep.DegreeHistSE,
	}
	for _, b := range rep.DegreeHist {
		resp.DegreeHist = append(resp.DegreeHist, client.StatsBucket{Label: b.Label, Count: b.Count})
	}
	for _, ir := range rep.Visibility {
		resp.Visibility = append(resp.Visibility, client.StatsItemRate{Item: ir.Item, Rate: ir.Rate, SE: ir.SE})
	}
	return resp
}

// statsEstimate maps one ldp.Estimate onto the wire.
func statsEstimate(e ldp.Estimate) client.StatsEstimate {
	return client.StatsEstimate{Value: e.Value, SE: e.SE, NoisedUsers: e.NoisedUsers}
}
