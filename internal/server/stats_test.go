package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"path/filepath"
	"sort"
	"testing"

	"sightrisk/client"
	"sightrisk/internal/dataset"
	"sightrisk/internal/graph"
	"sightrisk/internal/server"
)

// rawStats POSTs a stats request and returns the status code and the
// raw response bytes — the byte-identity assertions must see the
// wire bytes, not a decode/re-encode round trip.
func rawStats(t testing.TB, base string, req *client.StatsRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/stats", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestStatsEndToEnd: a single server serves /v1/stats with sane
// release contents, byte-identical repeats for the same (tenant,
// dataset, epoch), GET/POST equivalence, fresh noise per epoch, and
// 400s on malformed parameters.
func TestStatsEndToEnd(t *testing.T) {
	ds := testDataset(t, 1, 300, 5)
	_, hs, c := newTestServer(t, server.Config{
		Datasets: map[string]*dataset.Dataset{"study": ds},
		Workers:  1,
	})

	req := &client.StatsRequest{Dataset: "study", Tenant: "acme", Epoch: 1}
	sr, err := c.Stats(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Noise != "visibility_aware" || sr.Epsilon != 1 {
		t.Errorf("defaults = (%s, %g), want (visibility_aware, 1)", sr.Noise, sr.Epsilon)
	}
	if sr.Nodes == 0 || sr.Profiles == 0 || sr.PublicUsers == 0 {
		t.Errorf("empty release metadata: %+v", sr)
	}
	if sr.PublicUsers == sr.Nodes {
		t.Error("fixture has no private users; the noised paths are untested")
	}
	if len(sr.DegreeHist) != 9 || len(sr.Visibility) != 7 {
		t.Errorf("release shape = %d buckets, %d items; want 9, 7", len(sr.DegreeHist), len(sr.Visibility))
	}
	if sr.EdgeCount.NoisedUsers == 0 {
		t.Error("visibility-aware release noised nobody despite private users")
	}

	// Byte identity: repeated POSTs and the equivalent GET serve the
	// same bytes; a different epoch draws different noise.
	st1, b1 := rawStats(t, hs.URL, req)
	st2, b2 := rawStats(t, hs.URL, req)
	if st1 != http.StatusOK || st2 != http.StatusOK || !bytes.Equal(b1, b2) {
		t.Fatalf("repeated release not byte-identical (%d, %d):\n%s\n%s", st1, st2, b1, b2)
	}
	getResp, err := http.Get(hs.URL + "/v1/stats?dataset=study&tenant=acme&epoch=1")
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := io.ReadAll(getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusOK || !bytes.Equal(gb, b1) {
		t.Fatalf("GET release differs from POST (%d):\n%s\n%s", getResp.StatusCode, gb, b1)
	}
	_, b3 := rawStats(t, hs.URL, &client.StatsRequest{Dataset: "study", Tenant: "acme", Epoch: 2})
	if bytes.Equal(b1, b3) {
		t.Fatal("different epochs served identical noise")
	}

	// The all-edge baseline is served too, and noises more users.
	ae, err := c.Stats(context.Background(), &client.StatsRequest{Dataset: "study", Tenant: "acme", Epoch: 1, Noise: "all_edge"})
	if err != nil {
		t.Fatal(err)
	}
	if ae.EdgeCount.NoisedUsers <= sr.EdgeCount.NoisedUsers {
		t.Errorf("all_edge noised %d users, visibility_aware %d; want strictly more",
			ae.EdgeCount.NoisedUsers, sr.EdgeCount.NoisedUsers)
	}

	for name, bad := range map[string]*client.StatsRequest{
		"missing dataset": {},
		"unknown dataset": {Dataset: "nope"},
		"bad epsilon":     {Dataset: "study", Epsilon: -1},
		"bad noise":       {Dataset: "study", Noise: "exact"},
	} {
		if _, err := c.Stats(context.Background(), bad); !isAPIStatus(err, http.StatusBadRequest) {
			t.Errorf("%s: err = %v, want 400 APIError", name, err)
		}
	}
}

// TestStatsBudgetExhausted: distinct releases debit 6ε each until the
// configured cap, exhaustion yields 429 over_budget with a retry hint,
// and replays of already-served releases stay free — even after
// exhaustion.
func TestStatsBudgetExhausted(t *testing.T) {
	_, hs, c := newTestServer(t, server.Config{
		Datasets:    map[string]*dataset.Dataset{"study": testDataset(t, 1, 200, 6)},
		Workers:     1,
		StatsBudget: 12, // two ε=1 releases
	})
	ctx := context.Background()
	mk := func(epoch uint64) *client.StatsRequest {
		return &client.StatsRequest{Dataset: "study", Tenant: "acme", Epoch: epoch}
	}
	_, first := rawStats(t, hs.URL, mk(0))
	if _, err := c.Stats(ctx, mk(1)); err != nil {
		t.Fatalf("second release within budget: %v", err)
	}
	_, err := c.Stats(ctx, mk(2))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests || apiErr.Code != "over_budget" {
		t.Fatalf("third release = %v, want 429 over_budget", err)
	}
	if apiErr.RetryDelay() <= 0 {
		t.Errorf("429 carries no retry hint: %+v", apiErr)
	}
	// Replays stay free and byte-identical after exhaustion.
	st, replay := rawStats(t, hs.URL, mk(0))
	if st != http.StatusOK || !bytes.Equal(first, replay) {
		t.Fatalf("replay after exhaustion = %d, bytes identical = %v", st, bytes.Equal(first, replay))
	}
	// The ledger is visible in varz.
	resp, err := http.Get(hs.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	var varz struct {
		LDP struct {
			BudgetLimit float64                       `json:"budget_limit"`
			Ledgers     map[string]map[string]float64 `json:"ledgers"`
		} `json:"sightd_ldp"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&varz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	led, ok := varz.LDP.Ledgers["acme|study"]
	if varz.LDP.BudgetLimit != 12 || !ok {
		t.Fatalf("varz sightd_ldp = %+v, want limit 12 and an acme|study ledger", varz.LDP)
	}
	if led["spent"] != 12 || led["queries"] != 2 || led["replays"] != 1 {
		t.Errorf("ledger = %+v, want spent 12, queries 2, replays 1", led)
	}
}

// TestStatsSnapRuntimeMatchesInMemory: the same dataset served from a
// packed, mmap'd .snap runtime and from the in-memory graph produces
// byte-identical releases — /v1/stats has no materialization-dependent
// behavior.
func TestStatsSnapRuntimeMatchesInMemory(t *testing.T) {
	ds := testDataset(t, 1, 300, 7)
	path := filepath.Join(t.TempDir(), "study.snap")
	if err := dataset.PackSnap(ds, path); err != nil {
		t.Fatal(err)
	}
	rt, err := dataset.OpenRuntime(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Mapped() {
		t.Fatal("runtime is not snapshot-backed")
	}
	_, hsMem, _ := newTestServer(t, server.Config{
		Datasets: map[string]*dataset.Dataset{"study": ds}, Workers: 1,
	})
	_, hsMap, _ := newTestServer(t, server.Config{
		Runtimes: map[string]*dataset.Runtime{"study": rt}, Workers: 1,
	})
	for _, req := range []*client.StatsRequest{
		{Dataset: "study", Tenant: "acme", Epoch: 3},
		{Dataset: "study", Tenant: "acme", Epoch: 4, Epsilon: 0.5, Noise: "all_edge"},
	} {
		stA, a := rawStats(t, hsMem.URL, req)
		stB, b := rawStats(t, hsMap.URL, req)
		if stA != http.StatusOK || stB != http.StatusOK || !bytes.Equal(a, b) {
			t.Errorf("epoch %d: snap-backed release differs from in-memory (%d, %d):\n%s\n%s",
				req.Epoch, stA, stB, a, b)
		}
	}
}

// TestStatsEpsilonCorrelationResisted: two charged releases at the
// same epoch with different ε must draw independent noise. Were the
// standardized draws shared, the Laplace noise would be one draw G
// scaled by 1/ε — v₁ = T + G/ε₁, v₂ = T + G/ε₂ — and
// T = (ε₁v₁ − ε₂v₂)/(ε₁ − ε₂) would hand the tenant the exact total
// edge count for a spend the ledger happily admits (6·(ε₁+ε₂) of the
// default 48 budget).
func TestStatsEpsilonCorrelationResisted(t *testing.T) {
	ds := testDataset(t, 1, 200, 9)
	truth := float64(ds.Graph.NumEdges())
	_, _, c := newTestServer(t, server.Config{
		Datasets: map[string]*dataset.Dataset{"study": ds},
		Workers:  1,
	})
	ctx := context.Background()
	r1, err := c.Stats(ctx, &client.StatsRequest{Dataset: "study", Tenant: "acme", Epoch: 1, Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Stats(ctx, &client.StatsRequest{Dataset: "study", Tenant: "acme", Epoch: 1, Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	recon := (r1.Epsilon*r1.EdgeCount.Value - r2.Epsilon*r2.EdgeCount.Value) / (r1.Epsilon - r2.Epsilon)
	if math.Abs(recon-truth) < 1e-6 {
		t.Fatalf("two-ε linear reconstruction recovered the exact edge count %g — ε is not in the noise seed", truth)
	}
}

// TestStatsGenerationRedrawsNoise: delta batches that bump the dataset
// generation but restore the identical graph must still re-draw the
// release noise. Re-serving the old draws after real deltas would
// reveal v_new − v_old = T_new − T_old — the exact private change —
// even though the ledger charged the new generation as a fresh
// release.
func TestStatsGenerationRedrawsNoise(t *testing.T) {
	ds := testDataset(t, 1, 200, 10)
	// Two existing, non-adjacent users: adding then removing their edge
	// restores the exact original graph while bumping the update
	// generation twice.
	nodes := ds.Graph.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	a := nodes[0]
	var b graph.UserID
	found := false
	for _, cand := range nodes[1:] {
		if !ds.Graph.HasEdge(a, cand) {
			b, found = cand, true
			break
		}
	}
	if !found {
		t.Fatal("fixture's first node is adjacent to every other node")
	}
	_, _, c := newTestServer(t, server.Config{
		Datasets: map[string]*dataset.Dataset{"study": ds},
		Workers:  1,
	})
	ctx := context.Background()
	req := &client.StatsRequest{Dataset: "study", Tenant: "acme", Epoch: 1}
	before, err := c.Stats(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"edge_add", "edge_remove"} {
		if _, err := c.Updates(ctx, &client.UpdatesRequest{
			Dataset: "study",
			Updates: []client.Update{{Kind: kind, A: int64(a), B: int64(b)}},
		}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	after, err := c.Stats(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if after.Generation != before.Generation+2 {
		t.Fatalf("generation = %d, want %d", after.Generation, before.Generation+2)
	}
	if after.EdgeCount.Value == before.EdgeCount.Value {
		t.Fatal("generation bump re-served the old noise: identical release against an identical graph")
	}
}

// statsRouteKey mirrors the server's dataset routing hash.
func statsRouteKey(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64())
}

// TestClusterStatsRoutesByDataset: in a 2-replica cluster both doors
// serve byte-identical releases for the same triple, and the ε ledger
// lives only on the dataset's ring owner.
func TestClusterStatsRoutesByDataset(t *testing.T) {
	mk := func() map[string]*dataset.Dataset {
		return map[string]*dataset.Dataset{"study": testDataset(t, 1, 200, 8)}
	}
	tc := newTestCluster(t, 2, t.TempDir(), mk, nil)
	req := &client.StatsRequest{Dataset: "study", Tenant: "acme", Epoch: 5}

	var bodies [][]byte
	for i := range tc.srvs {
		st, b := rawStats(t, tc.hss[i].URL, req)
		if st != http.StatusOK {
			t.Fatalf("node %d: status %d: %s", i, st, b)
		}
		bodies = append(bodies, b)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("releases differ by door:\n%s\n%s", bodies[0], bodies[1])
	}
	// The typed cluster client works too and agrees.
	sr, err := tc.clusterClient(t).Stats(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var want client.StatsResponse
	if err := json.Unmarshal(bodies[0], &want); err != nil {
		t.Fatal(err)
	}
	if sr.EdgeCount != want.EdgeCount || sr.Generation != want.Generation {
		t.Errorf("cluster client release differs: %+v vs %+v", sr.EdgeCount, want.EdgeCount)
	}

	// Budget accounting happened once, on the ring owner of the
	// dataset hash; the other replica holds no ledger.
	owner := ringOwner(tc.nodes, statsRouteKey("study"))
	for i, n := range tc.nodes {
		resp, err := http.Get(tc.hss[i].URL + "/varz")
		if err != nil {
			t.Fatal(err)
		}
		var varz struct {
			LDP struct {
				Ledgers map[string]map[string]float64 `json:"ledgers"`
			} `json:"sightd_ldp"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&varz); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		led, has := varz.LDP.Ledgers["acme|study"]
		if n.ID == owner {
			if !has || led["queries"] != 1 || led["replays"] < 1 {
				t.Errorf("ring owner %s ledger = %+v, want 1 query and >= 1 replay", n.ID, led)
			}
		} else if has {
			t.Errorf("non-owner %s holds a ledger: %+v", n.ID, led)
		}
	}
}
