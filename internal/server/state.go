package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sightrisk/client"
	"sightrisk/internal/core"
)

// The durable job state behind the in-process job table. A Store holds
// three record kinds per job id:
//
//	job record     the normalized EstimateRequest (written at submit)
//	checkpoint     the engine checkpoint (rewritten every round)
//	final record   the terminal outcome (report or error)
//
// A job with a job record but no final record did not finish: recovery
// (single node) or adoption (cluster) requeues it, resuming from the
// checkpoint when one exists. In a cluster every replica points at the
// same Store — the shared checkpoint store is what lets a job resume
// on a different replica after its node dies (docs/CLUSTER.md).

// JobRecord is the persisted submission.
type JobRecord struct {
	// ID is the job id the record is stored under.
	ID string `json:"id"`
	// Node is the node that accepted the submission ("" single-node).
	Node string `json:"node,omitempty"`
	// Request is the normalized submission body.
	Request client.EstimateRequest `json:"request"`
}

// FinalRecord is the persisted terminal outcome.
type FinalRecord struct {
	// Status is the terminal status (done or failed).
	Status string `json:"status"`
	// Queries is the owner-label spend of the finished run.
	Queries int `json:"queries"`
	// Report is the final report (done jobs).
	Report *client.Report `json:"report,omitempty"`
	// Error is the terminal error (failed jobs).
	Error *client.APIError `json:"error,omitempty"`
}

// Store is the pluggable durable state backend behind the server's job
// table. Absent records return errors satisfying
// errors.Is(err, os.ErrNotExist). Implementations must be safe for
// concurrent use from multiple goroutines; DirStore additionally
// supports concurrent use from multiple processes (replicas sharing a
// directory).
type Store interface {
	// PutJob durably records a submission.
	PutJob(rec JobRecord) error
	// GetJob loads a submission by job id.
	GetJob(id string) (JobRecord, error)
	// Jobs lists the ids of every persisted submission, in no
	// particular order.
	Jobs() ([]string, error)
	// PutFinal durably records a job's terminal outcome.
	PutFinal(id string, fin FinalRecord) error
	// GetFinal loads a job's terminal outcome.
	GetFinal(id string) (FinalRecord, error)
	// PutCheckpoint durably replaces the job's engine checkpoint. The
	// write must be atomic: a reader (or a crash) may never observe a
	// truncated checkpoint.
	PutCheckpoint(id string, cp *core.Checkpoint) error
	// GetCheckpoint loads the job's latest engine checkpoint.
	GetCheckpoint(id string) (*core.Checkpoint, error)
}

// DirStore is the directory-backed Store: one JSON file per record,
// written atomically (temp file + fsync + rename + directory fsync) so
// that replicas sharing the directory — over NFS or a shared volume —
// and crash-recovery readers never observe half-written state. It is
// the shared checkpoint store of a multi-node cluster.
type DirStore struct {
	dir string
}

// NewDirStore creates (if needed) and opens a directory-backed store.
func NewDirStore(dir string) (*DirStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("server: state directory must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: state directory: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the backing directory.
func (st *DirStore) Dir() string { return st.dir }

func (st *DirStore) jobPath(id string) string   { return filepath.Join(st.dir, id+".job.json") }
func (st *DirStore) cpPath(id string) string    { return filepath.Join(st.dir, id+".cp.json") }
func (st *DirStore) finalPath(id string) string { return filepath.Join(st.dir, id+".final.json") }

// PutJob implements Store.
func (st *DirStore) PutJob(rec JobRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return atomicWrite(st.jobPath(rec.ID), b)
}

// GetJob implements Store.
func (st *DirStore) GetJob(id string) (JobRecord, error) {
	var rec JobRecord
	if err := readJSON(st.jobPath(id), &rec); err != nil {
		return JobRecord{}, err
	}
	if rec.ID == "" {
		rec.ID = id
	}
	return rec, nil
}

// Jobs implements Store.
func (st *DirStore) Jobs() ([]string, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".job.json") {
			ids = append(ids, strings.TrimSuffix(name, ".job.json"))
		}
	}
	return ids, nil
}

// PutFinal implements Store.
func (st *DirStore) PutFinal(id string, fin FinalRecord) error {
	b, err := json.Marshal(fin)
	if err != nil {
		return err
	}
	return atomicWrite(st.finalPath(id), b)
}

// GetFinal implements Store.
func (st *DirStore) GetFinal(id string) (FinalRecord, error) {
	var fin FinalRecord
	err := readJSON(st.finalPath(id), &fin)
	return fin, err
}

// PutCheckpoint implements Store.
func (st *DirStore) PutCheckpoint(id string, cp *core.Checkpoint) error {
	return core.SaveCheckpointFile(st.cpPath(id), cp)
}

// GetCheckpoint implements Store.
func (st *DirStore) GetCheckpoint(id string) (*core.Checkpoint, error) {
	return core.LoadCheckpointFile(st.cpPath(id))
}

// atomicWrite writes via a temp file + fsync + rename (+ directory
// fsync) so readers — including other replicas sharing the directory —
// and crashes never observe a half-written or unsynced file.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename survives power loss. Some
// filesystems refuse to fsync directories; that is not worth failing
// the write over.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

// readJSON reads and unmarshals one file.
func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}
