package place

import (
	"fmt"
	"sort"
	"strconv"
)

// slotsPerNode is the number of virtual slots each node contributes to
// the ring. 64 slots keep the owner load within a few percent of even
// for small clusters while the ring stays tiny (a 16-node ring is
// 1024 entries, one binary search per lookup).
const slotsPerNode = 64

// slot is one virtual node position on the ring.
type slot struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring mapping owner ids to node
// ids. Two rings built from the same node set are identical — every
// replica that agrees on the live membership agrees on every owner's
// placement, with no coordination. Build with BuildRing.
type Ring struct {
	version int
	nodes   []string
	slots   []slot
}

// hash64 is FNV-1a over the key — stable across processes and
// platforms, which is what makes placement a pure function of
// membership.
func hash64(key string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	// Finalize with a splitmix64-style mix: raw FNV-1a clusters the
	// short, similar keys we feed it (slot labels, decimal user ids),
	// which skews ring balance badly.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// BuildRing constructs the ring for the given node ids at the given
// membership version. Node order does not matter; duplicates are
// collapsed.
func BuildRing(version int, nodes []string) *Ring {
	seen := make(map[string]bool, len(nodes))
	sorted := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	r := &Ring{version: version, nodes: sorted}
	r.slots = make([]slot, 0, len(sorted)*slotsPerNode)
	for _, n := range sorted {
		for i := 0; i < slotsPerNode; i++ {
			r.slots = append(r.slots, slot{hash: hash64(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.slots, func(i, j int) bool {
		if r.slots[i].hash != r.slots[j].hash {
			return r.slots[i].hash < r.slots[j].hash
		}
		return r.slots[i].node < r.slots[j].node // tie-break keeps builds identical
	})
	return r
}

// Owner returns the node id that owns the given key (an owner user
// id), or "" on an empty ring: the key hashes onto the circle and the
// first slot clockwise claims it.
func (r *Ring) Owner(key int64) string {
	if len(r.slots) == 0 {
		return ""
	}
	h := hash64(strconv.FormatInt(key, 10))
	idx := sort.Search(len(r.slots), func(i int) bool { return r.slots[i].hash >= h })
	if idx == len(r.slots) {
		idx = 0
	}
	return r.slots[idx].node
}

// Version returns the membership version the ring was built at.
func (r *Ring) Version() int { return r.version }

// Size returns the total number of slots on the ring.
func (r *Ring) Size() int { return len(r.slots) }

// Nodes returns the ring's node ids, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// SlotsOwned counts the virtual slots the node holds — the
// "owned-shard count" surfaced by /healthz. It is slotsPerNode for
// every live member and 0 for nodes not on the ring.
func (r *Ring) SlotsOwned(node string) int {
	n := 0
	for _, s := range r.slots {
		if s.node == node {
			n++
		}
	}
	return n
}
