package place

import (
	"fmt"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	nodes := []string{"n3", "n1", "n2"}
	a := BuildRing(1, nodes)
	b := BuildRing(1, []string{"n1", "n2", "n3"}) // order must not matter
	for key := int64(0); key < 5000; key++ {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %d: %q vs %q — ring depends on node order", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingCoversAllNodes(t *testing.T) {
	r := BuildRing(1, []string{"n1", "n2", "n3", "n4"})
	seen := map[string]int{}
	for key := int64(0); key < 20000; key++ {
		seen[r.Owner(key)]++
	}
	if len(seen) != 4 {
		t.Fatalf("only %d of 4 nodes own keys: %v", len(seen), seen)
	}
	// Balance within a loose factor: no node should own more than half
	// or less than a twentieth of the keyspace sample.
	for id, n := range seen {
		if n < 1000 || n > 10000 {
			t.Errorf("node %s owns %d of 20000 keys — badly unbalanced ring", id, n)
		}
	}
}

// TestRingMinimalRemap: removing one node moves only that node's keys;
// every key owned by a survivor stays put. This is the property that
// makes node death cheap — surviving replicas keep their jobs.
func TestRingMinimalRemap(t *testing.T) {
	full := BuildRing(1, []string{"n1", "n2", "n3", "n4"})
	down := BuildRing(2, []string{"n1", "n2", "n4"}) // n3 died
	moved := 0
	for key := int64(0); key < 20000; key++ {
		before, after := full.Owner(key), down.Owner(key)
		if before == "n3" {
			if after == "n3" {
				t.Fatalf("key %d still owned by dead node", key)
			}
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %d moved %s→%s although %s survived", key, before, after, before)
		}
	}
	if moved == 0 {
		t.Fatal("dead node owned no keys — test is vacuous")
	}
}

func TestRingEmptyAndSlots(t *testing.T) {
	if got := BuildRing(1, nil).Owner(42); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
	r := BuildRing(1, []string{"a", "b"})
	if got := r.SlotsOwned("a"); got != slotsPerNode {
		t.Errorf("SlotsOwned(a) = %d, want %d", got, slotsPerNode)
	}
	if got := r.SlotsOwned("zz"); got != 0 {
		t.Errorf("SlotsOwned(zz) = %d, want 0", got)
	}
}

func TestRosterLifecycle(t *testing.T) {
	nodes := []Node{{ID: "n1", URL: "http://a"}, {ID: "n2", URL: "http://b"}, {ID: "n3", URL: "http://c"}}
	ro, err := NewRoster("n1", nodes)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Self().URL != "http://a" {
		t.Errorf("Self = %+v", ro.Self())
	}
	v0 := ro.Version()
	changes := 0
	ro.OnChange(func(int) { changes++ })

	// Find a key owned by n2 so the death visibly remaps it.
	var key int64 = -1
	for k := int64(0); k < 10000; k++ {
		if n, _ := ro.Owner(k); n.ID == "n2" {
			key = k
			break
		}
	}
	if key < 0 {
		t.Fatal("n2 owns nothing")
	}
	if !ro.MarkDead("n2") {
		t.Fatal("MarkDead(n2) reported no change")
	}
	if ro.MarkDead("n2") {
		t.Error("second MarkDead(n2) reported a change")
	}
	if ro.Version() <= v0 {
		t.Errorf("version did not bump: %d -> %d", v0, ro.Version())
	}
	if n, _ := ro.Owner(key); n.ID == "n2" {
		t.Error("dead node still owns keys")
	}
	if changes != 1 {
		t.Errorf("OnChange fired %d times, want 1", changes)
	}
	if !ro.MarkAlive("n2") {
		t.Error("MarkAlive(n2) reported no change")
	}
	if n, _ := ro.Owner(key); n.ID != "n2" {
		t.Errorf("after rejoin key %d owned by %s, want n2", key, n.ID)
	}

	// Self can never be marked dead; unknown ids are no-ops.
	if ro.MarkDead("n1") {
		t.Error("MarkDead(self) reported a change")
	}
	if ro.MarkDead("ghost") {
		t.Error("MarkDead(unknown) reported a change")
	}

	members := ro.Members()
	if len(members) != 3 || members[0].Node.ID != "n1" {
		t.Errorf("Members = %+v", members)
	}
}

// TestRosterLoneSurvivor: with every peer dead, self owns everything.
func TestRosterLoneSurvivor(t *testing.T) {
	ro, err := NewRoster("n1", []Node{{ID: "n1"}, {ID: "n2"}})
	if err != nil {
		t.Fatal(err)
	}
	ro.MarkDead("n2")
	for key := int64(0); key < 1000; key++ {
		if n, _ := ro.Owner(key); n.ID != "n1" {
			t.Fatalf("key %d owned by %q with one live node", key, n.ID)
		}
	}
	if ro.SelfSlots() != slotsPerNode {
		t.Errorf("SelfSlots = %d, want %d", ro.SelfSlots(), slotsPerNode)
	}
}

func TestRosterValidation(t *testing.T) {
	if _, err := NewRoster("", nil); err == nil {
		t.Error("empty self accepted")
	}
	if _, err := NewRoster("n1", []Node{{ID: "n2"}}); err == nil {
		t.Error("member list without self accepted")
	}
	if _, err := NewRoster("n1", []Node{{ID: "n1"}, {ID: "n1"}}); err == nil {
		t.Error("duplicate ids accepted")
	}
	if _, err := NewRoster("n1", []Node{{ID: "n1"}, {ID: ""}}); err == nil {
		t.Error("empty member id accepted")
	}
}

// TestRostersAgree: surviving replicas with the same liveness view
// place every owner identically — the property routing correctness
// rests on. The dead node's own roster is excluded: a replica never
// marks itself dead, and once it is dead its view stops mattering.
func TestRostersAgree(t *testing.T) {
	nodes := []Node{{ID: "n1"}, {ID: "n2"}, {ID: "n3"}, {ID: "n4"}}
	var survivors []*Roster
	for _, n := range nodes {
		ro, err := NewRoster(n.ID, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if n.ID != "n3" {
			survivors = append(survivors, ro)
		}
	}
	for _, ro := range survivors {
		if !ro.MarkDead("n3") {
			t.Fatalf("MarkDead(n3) no-op on roster %s", ro.Self().ID)
		}
	}
	for key := int64(0); key < 5000; key++ {
		want, _ := survivors[0].Owner(key)
		if want.ID == "n3" {
			t.Fatalf("key %d placed on the dead node", key)
		}
		for i, ro := range survivors[1:] {
			if got, _ := ro.Owner(key); got.ID != want.ID {
				t.Fatalf("key %d: survivor %d says %s, survivor 0 says %s", key, i+1, got.ID, want.ID)
			}
		}
	}
}

func TestSingle(t *testing.T) {
	ro := Single(Node{ID: "solo", URL: "http://x"})
	for key := int64(0); key < 100; key++ {
		if n, _ := ro.Owner(key); n.ID != "solo" {
			t.Fatalf("single placement sent key %d to %q", key, n.ID)
		}
	}
}

func ExampleBuildRing() {
	r := BuildRing(1, []string{"n1", "n2"})
	fmt.Println(len(r.Nodes()))
	// Output: 2
}
