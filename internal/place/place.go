// Package place implements owner→node placement for multi-node
// sightd: a consistent-hash ring over the replica set plus a roster
// that tracks which replicas are currently believed alive.
//
// Placement is deliberately coordination-free. Every replica is
// configured with the same static member list; the ring is a pure
// function of the ids believed alive, so replicas that agree on
// liveness agree on every owner's placement without talking to each
// other. Liveness is learned locally — a failed forward or health
// probe marks the target dead, rebuilds the ring and bumps the
// version — and converges because every replica that tries the dead
// node reaches the same conclusion. The failure matrix, routing rules
// and handoff protocol are documented in docs/CLUSTER.md.
package place

import (
	"fmt"
	"sort"
	"sync"
)

// Node identifies one sightd replica: a cluster-unique id and the base
// URL peers use to reach it.
type Node struct {
	// ID is the replica's cluster-unique name (e.g. "n1").
	ID string `json:"id"`
	// URL is the replica's base URL (scheme + host, no trailing path).
	URL string `json:"url"`
}

// Member is one roster entry: the node plus its liveness as currently
// believed by this replica.
type Member struct {
	// Node is the member's identity and address.
	Node Node `json:"node"`
	// Alive reports whether this replica currently believes the member
	// is serving.
	Alive bool `json:"alive"`
}

// Placement decides which replica serves which owner. The production
// implementation is *Roster; tests may substitute their own. A nil
// placement in the server config means single-node operation.
type Placement interface {
	// Self returns this replica's own identity.
	Self() Node
	// Owner returns the live node that owns the key and the membership
	// version the answer was computed at.
	Owner(key int64) (Node, int)
	// Version returns the current membership version; it increases on
	// every liveness change.
	Version() int
	// Members returns every configured member with its believed
	// liveness, sorted by id.
	Members() []Member
	// MarkDead records that the node failed; it returns true when this
	// changed the membership (and therefore the ring). Marking self or
	// an unknown id is a no-op.
	MarkDead(id string) bool
	// MarkAlive records that the node is serving again; it returns true
	// when this changed the membership.
	MarkAlive(id string) bool
	// SelfSlots counts the ring slots this replica currently owns (the
	// owned-shard count surfaced by /healthz).
	SelfSlots() int
	// RingSize counts all slots on the current ring; SelfSlots/RingSize
	// is the fraction of the keyspace this replica serves.
	RingSize() int
	// OnChange registers a callback invoked (on the mutating
	// goroutine) after every membership change, with the new version.
	OnChange(fn func(version int))
}

// Roster is the standard Placement: a static member list with local
// liveness tracking. All methods are safe for concurrent use.
type Roster struct {
	mu      sync.Mutex
	self    string
	members map[string]*Member
	ring    *Ring
	version int
	hooks   []func(int)
}

// NewRoster builds a roster for the replica named self over the full
// member list (which must include self). All members start alive.
func NewRoster(self string, nodes []Node) (*Roster, error) {
	if self == "" {
		return nil, fmt.Errorf("place: self node id must not be empty")
	}
	ro := &Roster{self: self, members: make(map[string]*Member, len(nodes)), version: 1}
	for _, n := range nodes {
		if n.ID == "" {
			return nil, fmt.Errorf("place: member with empty id (url %q)", n.URL)
		}
		if _, dup := ro.members[n.ID]; dup {
			return nil, fmt.Errorf("place: duplicate member id %q", n.ID)
		}
		ro.members[n.ID] = &Member{Node: n, Alive: true}
	}
	if _, ok := ro.members[self]; !ok {
		return nil, fmt.Errorf("place: member list does not include self (%q)", self)
	}
	ro.rebuildLocked()
	return ro, nil
}

// rebuildLocked rebuilds the ring from the live member set. Callers
// hold mu.
func (ro *Roster) rebuildLocked() {
	live := make([]string, 0, len(ro.members))
	for id, m := range ro.members {
		if m.Alive {
			live = append(live, id)
		}
	}
	ro.ring = BuildRing(ro.version, live)
}

// Self implements Placement.
func (ro *Roster) Self() Node {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	return ro.members[ro.self].Node
}

// Owner implements Placement. With every peer marked dead it degrades
// to self-ownership: a lone survivor serves everything.
func (ro *Roster) Owner(key int64) (Node, int) {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	id := ro.ring.Owner(key)
	if id == "" {
		id = ro.self
	}
	return ro.members[id].Node, ro.version
}

// Version implements Placement.
func (ro *Roster) Version() int {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	return ro.version
}

// Members implements Placement.
func (ro *Roster) Members() []Member {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	out := make([]Member, 0, len(ro.members))
	for _, m := range ro.members {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node.ID < out[j].Node.ID })
	return out
}

// setAlive flips one member's liveness, rebuilding the ring and firing
// hooks when the state actually changed.
func (ro *Roster) setAlive(id string, alive bool) bool {
	ro.mu.Lock()
	m, ok := ro.members[id]
	if !ok || id == ro.self || m.Alive == alive {
		ro.mu.Unlock()
		return false
	}
	m.Alive = alive
	ro.version++
	ro.rebuildLocked()
	version := ro.version
	hooks := append([]func(int){}, ro.hooks...)
	ro.mu.Unlock()
	for _, fn := range hooks {
		fn(version)
	}
	return true
}

// MarkDead implements Placement.
func (ro *Roster) MarkDead(id string) bool { return ro.setAlive(id, false) }

// MarkAlive implements Placement.
func (ro *Roster) MarkAlive(id string) bool { return ro.setAlive(id, true) }

// SelfSlots implements Placement.
func (ro *Roster) SelfSlots() int {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	return ro.ring.SlotsOwned(ro.self)
}

// RingSize implements Placement.
func (ro *Roster) RingSize() int {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	return ro.ring.Size()
}

// OnChange implements Placement.
func (ro *Roster) OnChange(fn func(version int)) {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	ro.hooks = append(ro.hooks, fn)
}

// Single returns a one-node placement: the degenerate cluster where
// self owns every shard. It behaves exactly like a single-node server
// but exercises the cluster code paths — tests use it to pin that the
// clustered request flow is byte-identical to the plain one.
func Single(self Node) *Roster {
	ro, err := NewRoster(self.ID, []Node{self})
	if err != nil {
		// Reachable only with an empty id, which is a programming error.
		panic(err)
	}
	return ro
}
