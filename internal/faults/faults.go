// Package faults injects deterministic annotator failures for tests
// and benchmarks. The paper's data collection fought exactly these
// conditions — API timeouts, rate limits, owners abandoning the
// "Sight" app mid-session — so the test suite needs a way to script
// them reproducibly: every Injector is seeded, and with the engine
// serializing annotator queries in a deterministic order, a given
// seed always fails the same queries.
package faults

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sightrisk/internal/active"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
)

// ErrInjected is the base error wrapped (as transient) into every
// scripted or probabilistic failure.
var ErrInjected = errors.New("faults: injected failure")

// Config scripts an Injector.
type Config struct {
	// Seed drives the flakiness RNG; same seed, same failure pattern.
	Seed int64
	// FailProb is the per-query probability of a transient failure in
	// [0,1].
	FailProb float64
	// Latency delays every answer; LatencyJitter adds a uniform random
	// extra in [0, LatencyJitter). Delays honor ctx cancellation.
	Latency       time.Duration
	LatencyJitter time.Duration
	// AbandonAfter, when > 0, makes the owner abandon for good after
	// that many successful answers: every later query returns
	// active.ErrAbandoned.
	AbandonAfter int
	// Script, when non-empty, forces the outcome of the first
	// len(Script) queries: entry q is the error for query q (nil =
	// answer normally). Scripted entries override FailProb.
	Script []error
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	if c.FailProb < 0 || c.FailProb > 1 {
		return fmt.Errorf("faults: FailProb must be in [0,1], got %g", c.FailProb)
	}
	if c.Latency < 0 || c.LatencyJitter < 0 {
		return fmt.Errorf("faults: latency must be >= 0 (latency %v, jitter %v)", c.Latency, c.LatencyJitter)
	}
	if c.AbandonAfter < 0 {
		return fmt.Errorf("faults: AbandonAfter must be >= 0, got %d", c.AbandonAfter)
	}
	return nil
}

// Stats counts what the injector did.
type Stats struct {
	Queries   int // LabelStranger calls observed
	Failures  int // transient failures injected
	Abandons  int // queries refused with ErrAbandoned
	Answered  int // queries answered successfully
	Scripted  int // outcomes forced by Script
	SleptFor  time.Duration
	Canceled  int // delays cut short by ctx cancellation
	LastQuery graph.UserID
}

// Injector wraps an annotator with scripted failures. The engine
// serializes annotator calls, but the injector locks anyway so tests
// may inspect Stats concurrently and `-race` stays clean.
type Injector struct {
	mu    sync.Mutex
	cfg   Config
	rng   *rand.Rand
	inner active.FallibleAnnotator
	stats Stats
}

// Wrap returns an Injector around the annotator.
func Wrap(inner active.FallibleAnnotator, cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if inner == nil {
		return nil, fmt.Errorf("faults: inner annotator must not be nil")
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), inner: inner}, nil
}

// WrapInfallible is Wrap over a legacy infallible annotator.
func WrapInfallible(inner active.Annotator, cfg Config) (*Injector, error) {
	return Wrap(active.Infallible(inner), cfg)
}

// LabelStranger implements active.FallibleAnnotator.
func (in *Injector) LabelStranger(ctx context.Context, s graph.UserID) (label.Label, error) {
	in.mu.Lock()
	q := in.stats.Queries
	in.stats.Queries++
	in.stats.LastQuery = s

	// Latency first: even failing calls take time in the real world.
	delay := in.cfg.Latency
	if in.cfg.LatencyJitter > 0 {
		delay += time.Duration(in.rng.Int63n(int64(in.cfg.LatencyJitter)))
	}

	var verdict error
	switch {
	case q < len(in.cfg.Script):
		verdict = in.cfg.Script[q]
		in.stats.Scripted++
	case in.cfg.AbandonAfter > 0 && in.stats.Answered >= in.cfg.AbandonAfter:
		verdict = active.ErrAbandoned
	case in.cfg.FailProb > 0 && in.rng.Float64() < in.cfg.FailProb:
		verdict = active.Transient(fmt.Errorf("%w: query %d (stranger %d)", ErrInjected, q, s))
	}
	switch {
	case verdict == nil:
	case errors.Is(verdict, active.ErrAbandoned):
		in.stats.Abandons++
	default:
		in.stats.Failures++
	}
	in.mu.Unlock()

	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			in.mu.Lock()
			in.stats.Canceled++
			in.mu.Unlock()
			return 0, ctx.Err()
		case <-t.C:
		}
		in.mu.Lock()
		in.stats.SleptFor += delay
		in.mu.Unlock()
	}
	if verdict != nil {
		return 0, verdict
	}
	l, err := in.inner.LabelStranger(ctx, s)
	if err == nil {
		in.mu.Lock()
		in.stats.Answered++
		in.mu.Unlock()
	}
	return l, err
}

// Stats returns a snapshot of the injector's counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}
