package faults

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"sightrisk/internal/active"
	"sightrisk/internal/graph"
	"sightrisk/internal/label"
)

func always(l label.Label) active.FallibleAnnotator {
	return active.FallibleFunc(func(context.Context, graph.UserID) (label.Label, error) {
		return l, nil
	})
}

func TestWrapValidation(t *testing.T) {
	if _, err := Wrap(nil, Config{}); err == nil {
		t.Fatal("nil inner accepted")
	}
	if _, err := Wrap(always(label.Risky), Config{FailProb: 1.1}); err == nil {
		t.Fatal("FailProb > 1 accepted")
	}
	if _, err := Wrap(always(label.Risky), Config{Latency: -time.Second}); err == nil {
		t.Fatal("negative latency accepted")
	}
	if _, err := Wrap(always(label.Risky), Config{AbandonAfter: -1}); err == nil {
		t.Fatal("negative AbandonAfter accepted")
	}
}

func TestFailuresDeterministicAndTransient(t *testing.T) {
	run := func() (failures []int, st Stats) {
		inj, err := Wrap(always(label.Risky), Config{Seed: 42, FailProb: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 200; q++ {
			_, err := inj.LabelStranger(context.Background(), graph.UserID(q))
			if err != nil {
				if !active.IsTransient(err) {
					t.Fatalf("query %d: injected failure not transient: %v", q, err)
				}
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("query %d: error does not wrap ErrInjected: %v", q, err)
				}
				failures = append(failures, q)
			}
		}
		return failures, inj.Stats()
	}
	f1, st1 := run()
	f2, st2 := run()
	if len(f1) == 0 || len(f1) == 200 {
		t.Fatalf("implausible failure count %d at prob 0.3", len(f1))
	}
	if fmt.Sprint(f1) != fmt.Sprint(f2) {
		t.Fatal("same seed produced different failure patterns")
	}
	if st1 != st2 {
		t.Fatalf("stats diverged: %+v vs %+v", st1, st2)
	}
	if st1.Queries != 200 || st1.Failures != len(f1) || st1.Answered != 200-len(f1) {
		t.Fatalf("inconsistent stats: %+v", st1)
	}
}

func TestScriptOverridesEverything(t *testing.T) {
	boom := active.Transient(errors.New("scripted boom"))
	inj, err := Wrap(always(label.NotRisky), Config{
		Seed:     1,
		FailProb: 1, // would fail every query if the script didn't win
		Script:   []error{nil, boom, nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantErr := []bool{false, true, false}
	for q, want := range wantErr {
		_, err := inj.LabelStranger(context.Background(), graph.UserID(q))
		if (err != nil) != want {
			t.Fatalf("scripted query %d: err=%v, want error=%v", q, err, want)
		}
	}
	// Past the script, FailProb 1 takes over.
	if _, err := inj.LabelStranger(context.Background(), 99); err == nil {
		t.Fatal("query past script did not fail at FailProb 1")
	}
	st := inj.Stats()
	if st.Scripted != 3 || st.Answered != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestAbandonAfterN(t *testing.T) {
	inj, err := Wrap(always(label.VeryRisky), Config{AbandonAfter: 5})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 5; q++ {
		if _, err := inj.LabelStranger(context.Background(), graph.UserID(q)); err != nil {
			t.Fatalf("query %d failed before abandonment: %v", q, err)
		}
	}
	for q := 5; q < 8; q++ {
		_, err := inj.LabelStranger(context.Background(), graph.UserID(q))
		if !errors.Is(err, active.ErrAbandoned) {
			t.Fatalf("query %d after abandonment: %v, want ErrAbandoned", q, err)
		}
		if active.IsTransient(err) {
			t.Fatal("ErrAbandoned classified transient")
		}
	}
	st := inj.Stats()
	if st.Answered != 5 || st.Abandons != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLatencyHonorsCancellation(t *testing.T) {
	inj, err := Wrap(always(label.Risky), Config{Latency: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := inj.LabelStranger(ctx, 1)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query did not return after cancellation")
	}
	if st := inj.Stats(); st.Canceled != 1 {
		t.Fatalf("Canceled counter %d, want 1", st.Canceled)
	}
}

func TestLatencyDelaysAnswers(t *testing.T) {
	inj, err := Wrap(always(label.Risky), Config{Latency: 5 * time.Millisecond, LatencyJitter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for q := 0; q < 3; q++ {
		if _, err := inj.LabelStranger(context.Background(), graph.UserID(q)); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("3 queries at 5ms latency took only %v", elapsed)
	}
	if st := inj.Stats(); st.SleptFor < 15*time.Millisecond {
		t.Fatalf("SleptFor %v, want >= 15ms", st.SleptFor)
	}
}
