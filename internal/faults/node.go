package faults

import (
	"fmt"
	"net/http"
	"sync"
)

// Node-level fault modes for the multi-node serving tier: Tripwire
// turns an observable event stream (checkpoint writes, usually) into a
// one-shot node kill at a precise, reproducible moment, and Partition
// is an http.RoundTripper that severs chosen links so replicas can be
// isolated without killing them. Both are deterministic: the same test
// wiring fires the same fault at the same point in every run, which is
// what lets the cluster tests assert byte-identical recovery.

// Tripwire fires a registered action exactly once, on the Nth
// observation. Wired into the server's checkpoint hook it implements
// the node-kill fault mode: "SIGKILL the owning replica right after
// round k checkpoints". Safe for concurrent use.
type Tripwire struct {
	mu     sync.Mutex
	after  int
	action func()
	count  int
	fired  bool
}

// NewTripwire returns a tripwire that calls action on the after-th
// Observe call (after <= 1 fires on the first).
func NewTripwire(after int, action func()) *Tripwire {
	if after < 1 {
		after = 1
	}
	return &Tripwire{after: after, action: action}
}

// Observe records one event, firing the action when the threshold is
// reached. The action runs on the observing goroutine, at most once.
func (t *Tripwire) Observe() {
	t.mu.Lock()
	t.count++
	fire := !t.fired && t.count >= t.after && t.action != nil
	if fire {
		t.fired = true
	}
	action := t.action
	t.mu.Unlock()
	if fire {
		action()
	}
}

// Fired reports whether the action has run.
func (t *Tripwire) Fired() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fired
}

// Count returns how many events have been observed.
func (t *Tripwire) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// PartitionError is the error returned for requests crossing a severed
// link.
type PartitionError struct {
	// Host is the blocked host:port the request tried to reach.
	Host string
}

// Error implements error.
func (e *PartitionError) Error() string {
	return fmt.Sprintf("faults: network partition: %s unreachable", e.Host)
}

// Partition is an http.RoundTripper that fails every request to a
// blocked host with *PartitionError, simulating a network partition
// between this process and those hosts. Inject it as the server's
// forwarding transport (or a client's) to cut specific links while the
// target keeps running. Safe for concurrent use.
type Partition struct {
	mu      sync.Mutex
	blocked map[string]bool

	// Base performs the unblocked requests; http.DefaultTransport when
	// nil.
	Base http.RoundTripper
}

// NewPartition returns a partition over base (nil = default
// transport) with no links severed.
func NewPartition(base http.RoundTripper) *Partition {
	return &Partition{blocked: map[string]bool{}, Base: base}
}

// Block severs the links to the given host:port targets.
func (p *Partition) Block(hosts ...string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, h := range hosts {
		p.blocked[h] = true
	}
}

// Unblock heals the links to the given host:port targets.
func (p *Partition) Unblock(hosts ...string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, h := range hosts {
		delete(p.blocked, h)
	}
}

// Blocked reports whether the host is currently unreachable.
func (p *Partition) Blocked(host string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blocked[host]
}

// RoundTrip implements http.RoundTripper.
func (p *Partition) RoundTrip(req *http.Request) (*http.Response, error) {
	if p.Blocked(req.URL.Host) {
		return nil, &PartitionError{Host: req.URL.Host}
	}
	base := p.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}
