// Package stats provides the small statistical and reporting helpers
// shared by the experiments: RMSE, means, histograms and plain-text
// table rendering for the riskbench output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// RMSE returns the root mean square error between two equal-length
// series. Empty input yields NaN; mismatched lengths panic (programmer
// error).
func RMSE(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic(fmt.Sprintf("stats: RMSE length mismatch %d vs %d", len(pred), len(actual)))
	}
	if len(pred) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := range pred {
		d := pred[i] - actual[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred)))
}

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation, or NaN for empty
// input.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Median returns the median, or NaN for empty input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MeanIgnoringNaN averages the finite entries only; NaN when none are.
func MeanIgnoringNaN(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		sum += x
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Histogram buckets values in [0,1] into n equal-width bins (the last
// bin is closed above). Out-of-range values clamp to the edge bins.
func Histogram(xs []float64, n int) []int {
	out := make([]int, n)
	for _, x := range xs {
		idx := int(math.Floor(x * float64(n)))
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		out[idx]++
	}
	return out
}

// Table renders rows as a padded plain-text table. The first row is
// treated as a header and underlined.
type Table struct {
	Title string
	rows  [][]string
}

// NewTable starts a table with a header row.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, rows: [][]string{header}}
}

// AddRow appends a row of cells; shorter rows are padded.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row applying Sprintf-style formatting per cell:
// cells come in (format, value) pairs when values are not strings.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows (excluding the header).
func (t *Table) NumRows() int {
	if len(t.rows) == 0 {
		return 0
	}
	return len(t.rows) - 1
}

// String renders the table.
func (t *Table) String() string {
	cols := 0
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	for ri, r := range t.rows {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i := 0; i < cols; i++ {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", widths[i]))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Pct formats a fraction in [0,1] as a percentage string like "83.4%".
func Pct(f float64) string {
	if math.IsNaN(f) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*f)
}
