package stats

import (
	"math"
	"strings"
	"testing"
)

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("RMSE identical = %g, want 0", got)
	}
	if got := RMSE([]float64{1, 3}, []float64{2, 2}); got != 1 {
		t.Fatalf("RMSE = %g, want 1", got)
	}
	if got := RMSE([]float64{0}, []float64{2}); got != 2 {
		t.Fatalf("RMSE = %g, want 2", got)
	}
	if !math.IsNaN(RMSE(nil, nil)) {
		t.Fatal("RMSE(empty) not NaN")
	}
}

func TestRMSEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RMSE length mismatch did not panic")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %g", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(empty) not NaN")
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Fatalf("StdDev constant = %g", got)
	}
	if got := StdDev([]float64{1, 3}); got != 1 {
		t.Fatalf("StdDev = %g, want 1", got)
	}
	if !math.IsNaN(StdDev(nil)) {
		t.Fatal("StdDev(empty) not NaN")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("Median odd = %g", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("Median even = %g", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("Median(empty) not NaN")
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Fatal("Median sorted its input")
	}
}

func TestMeanIgnoringNaN(t *testing.T) {
	if got := MeanIgnoringNaN([]float64{1, math.NaN(), 3}); got != 2 {
		t.Fatalf("MeanIgnoringNaN = %g", got)
	}
	if got := MeanIgnoringNaN([]float64{math.Inf(1), 4}); got != 4 {
		t.Fatalf("MeanIgnoringNaN with Inf = %g", got)
	}
	if !math.IsNaN(MeanIgnoringNaN([]float64{math.NaN()})) {
		t.Fatal("all-NaN input should yield NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0, 0.05, 0.15, 0.95, 1.0, -0.2, 1.7}, 10)
	if h[0] != 3 { // 0, 0.05 and clamped -0.2
		t.Fatalf("bin 0 = %d, want 3", h[0])
	}
	if h[1] != 1 {
		t.Fatalf("bin 1 = %d, want 1", h[1])
	}
	if h[9] != 3 { // 0.95, 1.0 (closed top) and clamped 1.7
		t.Fatalf("bin 9 = %d, want 3", h[9])
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 7 {
		t.Fatalf("histogram total = %d, want 7", total)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("My Title", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2)
	tb.AddRowf("gamma", 0.125)
	out := tb.String()
	if !strings.Contains(out, "My Title") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "-----") {
		t.Fatal("header underline missing")
	}
	for _, want := range []string{"alpha", "beta", "gamma", "0.125", "2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 3 {
		t.Fatalf("NumRows = %d, want 3", tb.NumRows())
	}
	// Ragged rows are padded, not panicking.
	tb.AddRow("only-one-cell")
	_ = tb.String()
}

func TestTableEmpty(t *testing.T) {
	tb := NewTable("", "h1")
	if tb.NumRows() != 0 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	if out := tb.String(); !strings.Contains(out, "h1") {
		t.Fatalf("header missing: %q", out)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.8336); got != "83.4%" {
		t.Fatalf("Pct = %q", got)
	}
	if got := Pct(math.NaN()); got != "n/a" {
		t.Fatalf("Pct(NaN) = %q", got)
	}
	if got := Pct(0); got != "0.0%" {
		t.Fatalf("Pct(0) = %q", got)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart([]string{"a", "bb"}, []float64{10, 5}, 10, "%.0f")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "##########") {
		t.Fatalf("max bar not full width: %q", lines[0])
	}
	if !strings.Contains(lines[1], "#####") || strings.Contains(lines[1], "######") {
		t.Fatalf("half bar wrong: %q", lines[1])
	}
	if !strings.Contains(lines[0], "10") || !strings.Contains(lines[1], "5") {
		t.Fatal("values missing")
	}
	// NaN renders as n/a without panicking; zero width defaults.
	out = BarChart([]string{"x"}, []float64{math.NaN()}, 0, "")
	if !strings.Contains(out, "n/a") {
		t.Fatalf("NaN row = %q", out)
	}
	// All-zero values yield empty bars.
	out = BarChart([]string{"z"}, []float64{0}, 5, "%.0f")
	if strings.Contains(out, "#") {
		t.Fatalf("zero value drew a bar: %q", out)
	}
}

func TestSeries(t *testing.T) {
	out := Series("round", []int{1, 2}, [2]string{"NPP", "NSP"},
		[]float64{math.NaN(), 0.25}, []float64{0.5}, "")
	if !strings.Contains(out, "NPP") || !strings.Contains(out, "NSP") {
		t.Fatal("headers missing")
	}
	if !strings.Contains(out, "0.250") || !strings.Contains(out, "0.500") {
		t.Fatalf("values missing:\n%s", out)
	}
	// NaN and short series render as '-'.
	if strings.Count(out, "-") < 2 {
		t.Fatalf("missing placeholders:\n%s", out)
	}
}
